(* An inventory service built on the B+tree — ordered persistent data
   with range queries, plus a volatile index (Vindex) accelerating the
   hot path exactly the way the paper's §3.9 motivates VWeak.

     dune exec examples/inventory.exe *)

open Corundum
module P = Pool.Make ()

type item = { sku : int; name : P.brand Pstring.t; stock : (int, P.brand) Pcell.t }

let item_ty =
  Ptype.record3 ~name:"item"
    ~inj:(fun sku name stock -> { sku; name; stock })
    ~proj:(fun i -> (i.sku, i.name, i.stock))
    Ptype.int (Pstring.ptype ())
    (Pcell.ptype Ptype.int)

(* items shared between the ordered catalog (by SKU) and a volatile
   name cache: Prc ownership in the tree, VWeak entries in the cache *)
let tree_ty = Pbtree.ptype (Prc.ptype item_ty)

let () =
  P.create ();
  let root = P.root ~ty:tree_ty ~init:(fun j -> Pbtree.make ~vty:(Prc.ptype item_ty) j) () in
  let catalog = Pbox.get root in
  let by_name : (string, item, P.brand) Vindex.t = Vindex.create () in

  (* stock the catalog *)
  P.transaction (fun j ->
      List.iter
        (fun (sku, name, stock) ->
          let rc =
            Prc.make ~ty:item_ty
              { sku; name = Pstring.make name j; stock = Pcell.make ~ty:Ptype.int stock }
              j
          in
          Vindex.add by_name name rc j;
          Pbtree.add catalog ~key:sku rc j)
        [
          (1004, "keyboard", 12);
          (1001, "mouse", 40);
          (1010, "monitor", 3);
          (1007, "dock", 7);
          (1002, "webcam", 0);
        ]);

  (* ordered range scan: which SKUs between 1001 and 1007 need restock? *)
  Printf.printf "SKUs 1001-1007 with low stock:\n";
  Pbtree.fold_range catalog ~lo:1001 ~hi:1007 ~init:() ~f:(fun () sku rc ->
      let item = Prc.get rc in
      let stock = Pcell.get item.stock in
      if stock < 10 then
        Printf.printf "  #%d %-10s stock=%d\n" sku (Pstring.get item.name) stock);

  (* hot path: lookup by name through the volatile index *)
  P.transaction (fun j ->
      (match Vindex.find by_name "monitor" j with
      | Some rc ->
          let item = Prc.get rc in
          Printf.printf "cache hit: #%d %s\n" item.sku (Pstring.get item.name);
          (* receive a shipment *)
          Pcell.update item.stock j (fun s -> s + 20);
          Prc.drop rc j
      | None -> print_endline "cache miss?!"));
  (match Pbtree.find catalog 1010 with
  | Some rc -> Printf.printf "monitor stock now %d\n" (Pcell.get (Prc.get rc).stock)
  | None -> assert false);

  (* discontinue an item: remove from the tree; the cache self-heals *)
  P.transaction (fun j -> ignore (Pbtree.remove catalog 1002 j));
  P.transaction (fun j ->
      match Vindex.find by_name "webcam" j with
      | Some _ -> print_endline "BUG: stale cache entry promoted!"
      | None -> print_endline "discontinued item: cache entry died safely");

  Crashtest.Leak_check.assert_clean (P.impl ()) ~root_ty:tree_ty;
  print_endline "inventory is consistent and leak-free."
