(* Quickstart: the paper's Listing 1 — a persistent linked list.

   A Node holds an integer and a link to the next node; the link is a
   PRefCell<Option<Pbox<Node>>> bound to pool P.  append() recursively
   finds the end of the list and adds a node, all inside one transaction.

   Run it twice:

     dune exec examples/quickstart.exe -- 7
     dune exec examples/quickstart.exe -- 9

   The second run finds the list the first run left behind in
   quickstart.pool and appends to it. *)

open Corundum
module P = Pool.Make ()

(* struct Node { val: i32, next: PRefCell<Option<Pbox<Node,P>>,P> } *)
type node = {
  value : int;
  next : ((node, P.brand) Pbox.t option, P.brand) Prefcell.t;
}

let rec node_ty_l : (node, P.brand) Ptype.t Lazy.t =
  lazy
    (Ptype.record2 ~name:"node"
       ~inj:(fun value next -> { value; next })
       ~proj:(fun n -> (n.value, n.next))
       Ptype.int
       (Prefcell.ptype (Ptype.option (Pbox.ptype_rec node_ty_l))))

let node_ty = Lazy.force node_ty_l
let link_ty = Ptype.option (Pbox.ptype_rec node_ty_l)

(* fn append(n: &Node, v: i32, j: &Journal<P>) — Listing 1, lines 6-16 *)
let rec append n v j =
  match Prefcell.borrow n.next with
  | Some succ -> append (Pbox.get succ) v j
  | None ->
      let node =
        Pbox.make ~ty:node_ty
          { value = v; next = Prefcell.make ~ty:link_ty None }
          j
      in
      Prefcell.set n.next (Some node) j

let rec to_list n =
  n.value
  ::
  (match Prefcell.borrow n.next with
  | None -> []
  | Some b -> to_list (Pbox.get b))

(* fn go(v: i32) — Listing 1, lines 17-22 *)
let () =
  let v = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 42 in
  P.load_or_create "quickstart.pool";
  let head =
    P.root ~ty:node_ty
      ~init:(fun _ -> { value = 0; next = Prefcell.make ~ty:link_ty None })
      ()
  in
  P.transaction (fun j -> append (Pbox.get head) v j);
  Printf.printf "list.pool now holds: %s\n"
    (String.concat " -> " (List.map string_of_int (to_list (Pbox.get head))));
  P.close ()
