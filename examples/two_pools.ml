(* Working with several pools at once — the paper's Listing 4 territory.

   Two pools are open simultaneously (a "catalog" and an "archive").
   Data can move between them only BY VALUE, inside nested transactions;
   storing a pointer from one pool inside the other does not type-check
   (see compile_fail/cross_pool_pointer.ml for the rejected program).

     dune exec examples/two_pools.exe *)

open Corundum
module Catalog = Pool.Make ()
module Archive = Pool.Make ()

(* the same item shape in both pools, each branded for its own pool *)
let item_ty (type p) () :
    ((int * p Pstring.t), p) Ptype.t =
  Ptype.pair Ptype.int (Pstring.ptype ())

let () =
  Catalog.create ();
  Archive.create ();

  let catalog =
    Catalog.root
      ~ty:(Pvec.ptype (item_ty ()))
      ~init:(fun j -> Pvec.make ~ty:(item_ty ()) j)
      ()
  in
  let archive =
    Archive.root
      ~ty:(Pvec.ptype (item_ty ()))
      ~init:(fun j -> Pvec.make ~ty:(item_ty ()) j)
      ()
  in

  (* stock the catalog *)
  Catalog.transaction (fun j ->
      let v = Pbox.get catalog in
      Pvec.push v (1, Pstring.make "keyboard" j) j;
      Pvec.push v (2, Pstring.make "trackball" j) j;
      Pvec.push v (3, Pstring.make "crt monitor" j) j);

  (* Archive item 3: nested transactions on both pools; the string's
     BYTES are copied — the Archive gets its own allocation, and the
     Catalog's is dropped with its entry.  Both pools commit when their
     own transaction ends, so each pool stays individually consistent. *)
  Catalog.transaction (fun jc ->
      let v = Pbox.get catalog in
      match Pvec.pop v jc with
      | None -> ()
      | Some (id, name) ->
          let text = Pstring.get name (* value crosses as an OCaml string *) in
          Archive.transaction (fun ja ->
              Pvec.push (Pbox.get archive) (id, Pstring.make text ja) ja);
          Pstring.drop name jc);

  let dump label box =
    Printf.printf "%s:\n" label;
    Pvec.iter (Pbox.get box) (fun (id, name) ->
        Printf.printf "  #%d %s\n" id (Pstring.get name))
  in
  dump "catalog" catalog;
  dump "archive" archive;

  (* each pool's heap is independently leak-free *)
  Crashtest.Leak_check.assert_clean (Catalog.impl ())
    ~root_ty:(Pvec.ptype (item_ty ()));
  Crashtest.Leak_check.assert_clean (Archive.impl ())
    ~root_ty:(Pvec.ptype (item_ty ()));
  print_endline "both pools are consistent and leak-free."
