(* Shared persistent objects with reference counting, weak references and
   volatile weak pointers — the Prc/PWeak/VWeak API tour.

   A catalog owns books through strong Prc references; a "recently
   viewed" list holds persistent weak references (they must not keep
   discarded books alive); and a volatile cache holds VWeak pointers,
   the only legal pointer from volatile memory into the pool — promote()
   tells us safely whether the book still exists.

     dune exec examples/library_catalog.exe *)

open Corundum
module P = Pool.Make ()

type book = { title : P.brand Pstring.t; year : int }

let book_ty =
  Ptype.record2 ~name:"book"
    ~inj:(fun title year -> { title; year })
    ~proj:(fun b -> (b.title, b.year))
    (Pstring.ptype ()) Ptype.int

let shelf_ty = Pvec.ptype (Prc.ptype book_ty)
let recent_ty = Pvec.ptype (Prc.weak_ptype book_ty)
let root_ty = Ptype.pair (Pbox.ptype shelf_ty) (Pbox.ptype recent_ty)

let () =
  P.create ~config:{ Pool_impl.size = 4 * 1024 * 1024; nslots = 2; slot_size = 64 * 1024 } ();
  let root =
    P.root ~ty:root_ty
      ~init:(fun j ->
        ( Pbox.make ~ty:shelf_ty (Pvec.make ~ty:(Prc.ptype book_ty) j) j,
          Pbox.make ~ty:recent_ty (Pvec.make ~ty:(Prc.weak_ptype book_ty) j) j ))
      ()
  in
  let shelf_box, recent_box = Pbox.get root in
  let shelf = Pbox.get shelf_box and recent = Pbox.get recent_box in

  (* Stock the shelf; mark two books as recently viewed (weak refs). *)
  let volatile_cache =
    P.transaction (fun j ->
        let add title year =
          let b =
            Prc.make ~ty:book_ty { title = Pstring.make title j; year } j
          in
          Pvec.push shelf (Prc.pclone b j) j;
          (* the shelf owns it *)
          let b' = b in
          Prc.drop b' j;
          Pvec.get shelf (Pvec.length shelf - 1)
        in
        let ocaml = add "Real World OCaml" 2013 in
        let rust = add "The Rust Programming Language" 2019 in
        let _ = add "The Art of Multiprocessor Programming" 2008 in
        Pvec.push recent (Prc.downgrade ocaml j) j;
        Pvec.push recent (Prc.downgrade rust j) j;
        (* volatile cache: VWeak is the only legal volatile->PM pointer *)
        [ Prc.demote ocaml j; Prc.demote rust j ])
  in

  Printf.printf "shelf:\n";
  Pvec.iter shelf (fun rc ->
      let b = Prc.get rc in
      Printf.printf "  %-40s (%d)  strong=%d weak=%d\n"
        (Pstring.get b.title) b.year (Prc.strong_count rc) (Prc.weak_count rc));

  (* Discard one book: the shelf's strong ref goes away; the weak refs
     and the volatile cache must observe the death, not resurrect it. *)
  P.transaction (fun j ->
      match Pvec.pop shelf j with
      | Some rc ->
          Printf.printf "\ndiscarding: %s\n" (Pstring.get (Prc.get rc).title);
          Prc.drop rc j
      | None -> assert false);

  P.transaction (fun j ->
      Printf.printf "\nrecently viewed (via PWeak.upgrade):\n";
      Pvec.iter recent (fun w ->
          match Prc.upgrade w j with
          | Some rc ->
              Printf.printf "  alive: %s\n" (Pstring.get (Prc.get rc).title);
              Prc.drop rc j
          | None -> Printf.printf "  (a book is gone)\n");
      Printf.printf "\nvolatile cache (via VWeak.promote):\n";
      List.iter
        (fun vw ->
          match Prc.promote vw j with
          | Some rc ->
              Printf.printf "  alive: %s\n" (Pstring.get (Prc.get rc).title);
              Prc.drop rc j
          | None -> Printf.printf "  (cache entry points to a dead book)\n")
        volatile_cache);

  (* After a crash+reopen, the volatile cache is stale by construction:
     promote refuses it rather than dereferencing a dangling pointer. *)
  P.crash_and_reopen ();
  P.transaction (fun j ->
      List.iter
        (fun vw ->
          match Prc.promote vw j with
          | Some _ -> Printf.printf "BUG: promote crossed a pool instance!\n"
          | None -> Printf.printf "after reopen: cache entry safely invalid\n")
        volatile_cache)
