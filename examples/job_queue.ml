(* A persistent job queue: jobs survive restarts, and a job is removed
   from the queue in the same transaction that records its result — so a
   crash can never lose a job or run it twice (exactly-once bookkeeping).

     dune exec examples/job_queue.exe -- submit "build the docs"
     dune exec examples/job_queue.exe -- submit "run the benchmarks"
     dune exec examples/job_queue.exe -- work        # process one job
     dune exec examples/job_queue.exe -- status *)

open Corundum
module P = Pool.Make ()

(* jobs are strings; results pair the job with its (string) outcome *)
let queue_ty = Pqueue.ptype (Pstring.ptype ())
let results_ty = Pvec.ptype (Ptype.pair (Pstring.ptype ()) (Pstring.ptype ()))
let root_ty = Ptype.pair (Pbox.ptype queue_ty) (Pbox.ptype results_ty)

let open_root () =
  P.load_or_create "jobs.pool";
  P.root ~ty:root_ty
    ~init:(fun j ->
      ( Pbox.make ~ty:queue_ty (Pqueue.make ~ty:(Pstring.ptype ()) j) j,
        Pbox.make ~ty:results_ty
          (Pvec.make ~ty:(Ptype.pair (Pstring.ptype ()) (Pstring.ptype ())) j)
          j ))
    ()

let perform job =
  (* stand-in for real work *)
  Printf.sprintf "done (%d characters of instructions)" (String.length job)

let () =
  let root = open_root () in
  let queue_box, results_box = Pbox.get root in
  let queue = Pbox.get queue_box and results = Pbox.get results_box in
  (match Array.to_list Sys.argv with
  | [ _; "submit"; job ] ->
      P.transaction (fun j -> Pqueue.push queue (Pstring.make job j) j);
      Printf.printf "queued: %s\n" job
  | [ _; "work" ] -> (
      (* Take the job and record its result atomically: if we crash
         mid-way the job stays queued; afterwards it is done exactly
         once. *)
      let outcome =
        P.transaction (fun j ->
            match Pqueue.pop queue j with
            | None -> None
            | Some ps ->
                let job = Pstring.get ps in
                let result = perform job in
                Pvec.push results (ps, Pstring.make result j) j;
                Some (job, result))
      in
      match outcome with
      | Some (job, result) -> Printf.printf "worked: %s -> %s\n" job result
      | None -> print_endline "(queue empty)")
  | [ _; "status" ] ->
      Printf.printf "pending (%d):\n" (Pqueue.length queue);
      Pqueue.iter queue (fun ps -> Printf.printf "  - %s\n" (Pstring.get ps));
      Printf.printf "completed (%d):\n" (Pvec.length results);
      Pvec.iter results (fun (jps, rps) ->
          Printf.printf "  * %s: %s\n" (Pstring.get jps) (Pstring.get rps))
  | _ ->
      prerr_endline "usage: job_queue (submit JOB | work | status)";
      exit 2);
  P.close ()
