(* Crash-resumable batch processing — the paper's "grep" MapReduce
   workload with the property persistent memory exists for: a long job
   whose progress survives power failures and resumes where it stopped,
   never double-counting and never losing a processed segment.

   Each segment is processed in one transaction that records its result
   and marks it done atomically.  The demo injects a power failure
   mid-job, recovers, resumes, and shows the result equals a crash-free
   run.

     dune exec examples/resumable_grep.exe *)

open Corundum
module P = Pool.Make ()

let pattern = "w7"

(* state: the segments and one result slot per segment (-1 = pending) *)
let root_ty =
  Ptype.pair (Pvec.ptype (Pstring.ptype ())) (Pvec.ptype Ptype.int)

let count_matches ~pattern text =
  let n = String.length text and m = String.length pattern in
  let hits = ref 0 in
  for i = 0 to n - m do
    if String.sub text i m = pattern then incr hits
  done;
  !hits

let fetch_root corpus () =
  P.root ~ty:root_ty
    ~init:(fun j ->
      let segs = Pvec.make ~ty:(Pstring.ptype ()) j in
      let results = Pvec.make ~ty:Ptype.int j in
      List.iter
        (fun s ->
          Pvec.push segs (Pstring.make s j) j;
          Pvec.push results (-1) j)
        corpus;
      (segs, results))
    ()

(* Process every pending segment; one transaction per segment makes each
   step failure-atomic. *)
let process corpus =
  let segs, results = Pbox.get (fetch_root corpus ()) in
  let processed = ref 0 in
  for i = 0 to Pvec.length segs - 1 do
    if Pvec.get results i = -1 then begin
      P.transaction (fun j ->
          let text = Pstring.get (Pvec.get segs i) in
          Pvec.set results i (count_matches ~pattern text) j);
      incr processed
    end
  done;
  !processed

let total corpus =
  let _, results = Pbox.get (fetch_root corpus ()) in
  Pvec.fold results ~init:0 ~f:(fun a r -> if r >= 0 then a + r else a)

let pending corpus =
  let _, results = Pbox.get (fetch_root corpus ()) in
  Pvec.fold results ~init:0 ~f:(fun a r -> if r = -1 then a + 1 else a)

let () =
  let corpus =
    Workloads.Wordcount.generate_corpus ~vocabulary:40 ~segments:60
      ~words_per_segment:200 ~seed:11 ()
  in
  P.create ();
  ignore (fetch_root corpus ());
  Printf.printf "job: count \"%s\" in %d segments\n" pattern
    (List.length corpus);

  (* First attempt: the power fails somewhere in the middle. *)
  let dev = Pool_impl.device (P.impl ()) in
  Pmem.Device.set_crash_countdown dev 400;
  (match process corpus with
  | n -> Printf.printf "first run finished all %d segments?!\n" n
  | exception Pmem.Device.Crashed ->
      Printf.printf "*** power failure mid-job ***\n");
  P.crash_and_reopen ();
  Printf.printf "after recovery: %d segments still pending\n" (pending corpus);

  (* Resume: only the pending segments are processed. *)
  let resumed = process corpus in
  Printf.printf "resumed run processed %d remaining segments\n" resumed;
  let got = total corpus in

  (* Compare with an uninterrupted run on fresh state. *)
  let expected =
    List.fold_left (fun a s -> a + count_matches ~pattern s) 0 corpus
  in
  Printf.printf "matches: %d (crash-free reference: %d)\n" got expected;
  if got <> expected then begin
    print_endline "MISMATCH: the job lost or double-counted work!";
    exit 1
  end;
  print_endline "resume was exact: nothing lost, nothing double-counted."
