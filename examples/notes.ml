(* A persistent notes application — the "many modules together" showcase:
   note bodies in Pbytes (editable blobs), an id index in Pmap (ordered
   listing), and an append-only Plog audit trail, all under one root and
   all crash-atomic per command.

     dune exec examples/notes.exe -- add "buy milk"
     dune exec examples/notes.exe -- add "write the paper"
     dune exec examples/notes.exe -- append 1 " and bread"
     dune exec examples/notes.exe -- list
     dune exec examples/notes.exe -- del 2
     dune exec examples/notes.exe -- history *)

open Corundum
module P = Pool.Make ()

type root = {
  next_id : (int, P.brand) Pcell.t;
  notes : (P.brand Pbytes.t, P.brand) Pmap.t;
  audit : P.brand Plog.t;
}

let root_ty =
  Ptype.record3 ~name:"notes-root"
    ~inj:(fun next_id notes audit -> { next_id; notes; audit })
    ~proj:(fun r -> (r.next_id, r.notes, r.audit))
    (Pcell.ptype Ptype.int)
    (Pmap.ptype (Pbytes.ptype ()))
    (Plog.ptype ())

let open_root () =
  P.load_or_create "notes.pool";
  Pbox.get
    (P.root ~ty:root_ty
       ~init:(fun j ->
         {
           next_id = Pcell.make ~ty:Ptype.int 1;
           notes = Pmap.make ~vty:(Pbytes.ptype ()) j;
           audit = Plog.make j;
         })
       ())

let log r fmt =
  Printf.ksprintf
    (fun line j -> Plog.append r.audit line j)
    fmt

let () =
  let r = open_root () in
  (match Array.to_list Sys.argv with
  | [ _; "add"; text ] ->
      let id =
        P.transaction (fun j ->
            let id = Pcell.get r.next_id in
            Pcell.set r.next_id (id + 1) j;
            Pmap.add r.notes ~key:id (Pbytes.of_string text j) j;
            log r "add #%d" id j;
            id)
      in
      Printf.printf "added note #%d\n" id
  | [ _; "append"; id; text ] ->
      let id = int_of_string id in
      let found =
        P.transaction (fun j ->
            match Pmap.find r.notes id with
            | Some body ->
                Pbytes.append body text j;
                log r "append #%d (%d bytes)" id (String.length text) j;
                true
            | None -> false)
      in
      if not found then begin
        Printf.eprintf "no note #%d\n" id;
        exit 1
      end
  | [ _; "del"; id ] ->
      let id = int_of_string id in
      let found =
        P.transaction (fun j ->
            let was = Pmap.remove r.notes id j in
            if was then log r "del #%d" id j;
            was)
      in
      if not found then begin
        Printf.eprintf "no note #%d\n" id;
        exit 1
      end
  | [ _; "list" ] ->
      Pmap.iter r.notes (fun id body ->
          Printf.printf "#%-3d %s\n" id (Pbytes.to_string body))
  | [ _; "history" ] -> Plog.iter r.audit print_endline
  | _ ->
      prerr_endline "usage: notes (add TEXT | append ID TEXT | del ID | list | history)";
      exit 2);
  P.close ()
