(* The paper's scalability workload as a standalone demo: one producer
   pushes text segments onto a persistent mutex-guarded stack, consumer
   domains pop and count words in thread-local tables.

     dune exec examples/wordcount_demo.exe -- 4      # 4 consumers *)

let () =
  let consumers =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  let corpus =
    Workloads.Wordcount.generate_corpus ~vocabulary:800 ~segments:200
      ~words_per_segment:500 ~seed:1 ()
  in
  Printf.printf "corpus: %d segments, %d words total\n" (List.length corpus)
    (200 * 500);
  let seq = Workloads.Wordcount.run_seq ~corpus () in
  Printf.printf "sequential: %.3f s (%d words, %d distinct)\n"
    seq.Workloads.Wordcount.seconds seq.Workloads.Wordcount.total_words
    seq.Workloads.Wordcount.distinct;
  let par = Workloads.Wordcount.run ~producers:1 ~consumers ~corpus () in
  Printf.printf "1 producer : %d consumers: %.3f s (%d words, %d distinct)\n"
    consumers par.Workloads.Wordcount.seconds
    par.Workloads.Wordcount.total_words par.Workloads.Wordcount.distinct;
  assert (par.Workloads.Wordcount.total_words = seq.Workloads.Wordcount.total_words);
  Printf.printf "speedup: %.2fx (on %d cores)\n"
    (seq.Workloads.Wordcount.seconds /. par.Workloads.Wordcount.seconds)
    (Domain.recommended_domain_count ())
