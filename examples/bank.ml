(* Crash-atomic bank transfers.

   A classic demonstration of why transactions matter on persistent
   memory: moving money between two accounts takes two writes, and a
   power failure between them would mint or destroy money if the writes
   were not atomic.  This example runs a batch of random transfers,
   injects a simulated power failure mid-stream, recovers, and shows that
   the books still balance.

     dune exec examples/bank.exe
     dune exec examples/bank.exe -- --trace bank_trace.json
     dune exec examples/bank.exe -- --psan

   With --trace, the whole run — transfers, the crash, recovery — is
   recorded as a Chrome trace_event file (load it in chrome://tracing or
   Perfetto), with a metrics dump written next to it.  --metrics FILE
   writes the metrics registry alone (no event ring retained); --psan
   runs the persistency sanitizer over the run, crash and recovery
   included, and exits non-zero on any violation. *)

open Corundum
module P = Pool.Make ()

let accounts = 8
let initial = 1000
let root_ty = Ptype.array accounts Ptype.int

let total root =
  Array.fold_left ( + ) 0 (Pbox.get root)

let print_books root =
  let a = Pbox.get root in
  Array.iteri (Printf.printf "  account %d: %5d\n") a;
  Printf.printf "  total: %d\n" (total root)

let transfer root src dst amount j =
  Pbox.modify root j (fun a ->
      let a = Array.copy a in
      a.(src) <- a.(src) - amount;
      a.(dst) <- a.(dst) + amount;
      a)

let trace_path, metrics_path, psan_on, psan_json =
  let rec parse trace metrics psan psan_json = function
    | [] -> (trace, metrics, psan || psan_json <> None, psan_json)
    | "--trace" :: f :: rest -> parse (Some f) metrics psan psan_json rest
    | "--metrics" :: f :: rest -> parse trace (Some f) psan psan_json rest
    | "--psan" :: rest -> parse trace metrics true psan_json rest
    | "--psan-json" :: f :: rest -> parse trace metrics psan (Some f) rest
    | _ ->
        prerr_endline
          "usage: bank [--trace FILE] [--metrics FILE] [--psan] [--psan-json \
           FILE]";
        exit 2
  in
  parse None None false None (List.tl (Array.to_list Sys.argv))

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let () =
  if psan_on then Psan.enable ();
  Option.iter
    (fun _ -> Ptelemetry.Trace.install_ring ~capacity:(1 lsl 16) ())
    trace_path;
  if trace_path = None && metrics_path <> None then
    Ptelemetry.Trace.install_null ();
  P.create
    ~config:{ Pool_impl.size = 4 * 1024 * 1024; nslots = 2; slot_size = 64 * 1024 }
    ~path:"bank.pool" ();
  let root = P.root ~ty:root_ty ~init:(fun _ -> Array.make accounts initial) () in
  Printf.printf "opening books:\n";
  print_books root;

  let rng = Random.State.make [| 2026 |] in
  let dev = Pool_impl.device (P.impl ()) in

  (* Schedule a power failure somewhere inside the upcoming batch. *)
  Pmem.Device.set_crash_countdown dev 23;
  let completed = ref 0 in
  (try
     for _ = 1 to 50 do
       let src = Random.State.int rng accounts
       and dst = Random.State.int rng accounts
       and amt = 1 + Random.State.int rng 200 in
       P.transaction (fun j -> transfer root src dst amt j);
       incr completed
     done
   with Pmem.Device.Crashed ->
     Printf.printf "\n*** power failure after %d committed transfers ***\n"
       !completed);

  (* Power cycle: recovery rolls the in-flight transfer back. *)
  P.crash_and_reopen ();
  let root = P.root ~ty:root_ty ~init:(fun _ -> assert false) () in
  Printf.printf "\nafter recovery:\n";
  print_books root;
  let t = total root in
  if t = accounts * initial then
    Printf.printf "\nbooks balance: no money created or destroyed.\n"
  else begin
    Printf.printf "\nBOOKS DO NOT BALANCE (total %d, expected %d)!\n" t
      (accounts * initial);
    exit 1
  end;
  (* and the pool keeps working *)
  P.transaction (fun j -> transfer root 0 1 5 j);
  assert (total root = accounts * initial);
  Crashtest.Leak_check.assert_clean (P.impl ()) ~root_ty;
  Printf.printf "post-recovery transfer committed; heap is leak-free.\n";
  (* save the crash-recovered image so tooling (pool_info fsck) can audit it *)
  P.save ();
  Printf.printf "recovered image saved to bank.pool.\n";
  Option.iter
    (fun path ->
      Ptelemetry.Trace.uninstall ();
      Ptelemetry.Trace.save_chrome path;
      write_file (path ^ ".metrics.json")
        (Ptelemetry.Json.to_string (Ptelemetry.Metrics.dump_json ()));
      Printf.printf "trace written to %s (%d events), metrics to %s.metrics.json\n"
        path
        (List.length (Ptelemetry.Trace.events ()))
        path)
    trace_path;
  Option.iter
    (fun path ->
      write_file path
        (Ptelemetry.Json.to_string (Ptelemetry.Metrics.dump_json ()));
      if trace_path = None then Ptelemetry.Trace.uninstall ();
      Printf.printf "metrics written to %s\n" path)
    metrics_path;
  if psan_on then begin
    Psan.disable ();
    print_string (Psan.report_text ());
    Option.iter (fun p -> write_file p (Psan.report_json ())) psan_json;
    if not (Psan.clean ()) then exit 1
  end
