(* A persistent key-value store with a command-line interface — the kind
   of small application the paper's KVStore microbenchmark models.  Keys
   and values are strings; the store survives process restarts through
   its pool file.

     dune exec examples/kvstore_cli.exe -- put lang ocaml
     dune exec examples/kvstore_cli.exe -- put paper corundum
     dune exec examples/kvstore_cli.exe -- get lang
     dune exec examples/kvstore_cli.exe -- list
     dune exec examples/kvstore_cli.exe -- del lang *)

open Corundum
module P = Pool.Make ()

(* Buckets of association chains: entry = (key, value, next). *)
type entry = {
  key : P.brand Pstring.t;
  value : P.brand Pstring.t;
  next : (link, P.brand) Prefcell.t;
}

and link = (entry, P.brand) Pbox.t option

let rec entry_ty_l : (entry, P.brand) Ptype.t Lazy.t =
  lazy
    (Ptype.record3 ~name:"kv-entry"
       ~inj:(fun key value next -> { key; value; next })
       ~proj:(fun e -> (e.key, e.value, e.next))
       (Pstring.ptype ()) (Pstring.ptype ())
       (Prefcell.ptype (Ptype.option (Pbox.ptype_rec entry_ty_l))))

let entry_ty = Lazy.force entry_ty_l
let link_ty = Ptype.option (Pbox.ptype_rec entry_ty_l)

let nbuckets = 64
let root_ty = Ptype.array nbuckets (Prefcell.ptype link_ty)

let bucket_of key = Hashtbl.hash key mod nbuckets

let find_entry buckets key =
  let rec go link =
    match Prefcell.borrow link with
    | None -> None
    | Some b ->
        let e = Pbox.get b in
        if String.equal (Pstring.get e.key) key then Some e else go e.next
  in
  go buckets.(bucket_of key)

(* Insert a fresh binding at the bucket head; the caller removes any
   previous binding first (put = del + insert, atomically in one tx). *)
let insert buckets key value j =
  let cell = buckets.(bucket_of key) in
  let entry =
    Pbox.make ~ty:entry_ty
      {
        key = Pstring.make key j;
        value = Pstring.make value j;
        next = Prefcell.make ~ty:link_ty None;
      }
      j
  in
  let old = Prefcell.replace cell (Some entry) j in
  Prefcell.set (Pbox.get entry).next old j

let del buckets key j =
  let rec unlink link =
    match Prefcell.borrow link with
    | None -> false
    | Some b when String.equal (Pstring.get (Pbox.get b).key) key ->
        let succ = Prefcell.replace (Pbox.get b).next None j in
        Prefcell.set link succ j;
        true
    | Some b -> unlink (Pbox.get b).next
  in
  unlink buckets.(bucket_of key)

let iter buckets f =
  Array.iter
    (fun cell ->
      let rec go link =
        match Prefcell.borrow link with
        | None -> ()
        | Some b ->
            let e = Pbox.get b in
            f (Pstring.get e.key) (Pstring.get e.value);
            go e.next
      in
      go cell)
    buckets

(* Strip leading instrumentation flags ([--trace FILE], [--metrics FILE],
   [--psan], [--psan-json FILE]) so any command can run instrumented. *)
let trace_path, metrics_path, psan_on, psan_json, argv =
  let rec strip trace metrics psan psan_json = function
    | "--trace" :: f :: rest -> strip (Some f) metrics psan psan_json rest
    | "--metrics" :: f :: rest -> strip trace (Some f) psan psan_json rest
    | "--psan" :: rest -> strip trace metrics true psan_json rest
    | "--psan-json" :: f :: rest -> strip trace metrics psan (Some f) rest
    | rest -> (trace, metrics, psan || psan_json <> None, psan_json, rest)
  in
  match Array.to_list Sys.argv with
  | prog :: rest ->
      let trace, metrics, psan, psan_json, rest =
        strip None None false None rest
      in
      (trace, metrics, psan, psan_json, prog :: rest)
  | [] -> (None, None, false, None, [])

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  output_char oc '\n';
  close_out oc

let () =
  if psan_on then Psan.enable ();
  Option.iter
    (fun _ -> Ptelemetry.Trace.install_ring ~capacity:(1 lsl 16) ())
    trace_path;
  if trace_path = None && metrics_path <> None then
    Ptelemetry.Trace.install_null ();
  P.load_or_create "kvstore.pool";
  let root =
    P.root ~ty:root_ty
      ~init:(fun _ -> Array.init nbuckets (fun _ -> Prefcell.make ~ty:link_ty None))
      ()
  in
  let buckets = Pbox.get root in
  (match argv with
  | [ _; "put"; k; v ] ->
      P.transaction (fun j ->
          ignore (del buckets k j : bool) (* replace = delete + insert *);
          insert buckets k v j);
      Printf.printf "put %s\n" k
  | [ _; "get"; k ] -> (
      match find_entry buckets k with
      | Some e -> print_endline (Pstring.get e.value)
      | None ->
          prerr_endline "(not found)";
          exit 1)
  | [ _; "del"; k ] ->
      let existed = P.transaction (fun j -> del buckets k j) in
      if not existed then begin
        prerr_endline "(not found)";
        exit 1
      end
  | [ _; "list" ] -> iter buckets (fun k v -> Printf.printf "%s=%s\n" k v)
  | _ ->
      prerr_endline
        "usage: kvstore_cli [--trace FILE] [--metrics FILE] [--psan] \
         [--psan-json FILE] (put K V | get K | del K | list)";
      exit 2);
  P.close ();
  Option.iter
    (fun path ->
      Ptelemetry.Trace.uninstall ();
      Ptelemetry.Trace.save_chrome path;
      Printf.eprintf "trace written to %s\n" path)
    trace_path;
  Option.iter
    (fun path ->
      write_file path
        (Ptelemetry.Json.to_string (Ptelemetry.Metrics.dump_json ()));
      if trace_path = None then Ptelemetry.Trace.uninstall ();
      Printf.eprintf "metrics written to %s\n" path)
    metrics_path;
  if psan_on then begin
    Psan.disable ();
    print_string (Psan.report_text ());
    Option.iter (fun p -> write_file p (Psan.report_json ())) psan_json;
    if not (Psan.clean ()) then exit 1
  end
