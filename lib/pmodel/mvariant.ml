(* Protocol variants: the correct protocol plus deliberately broken
   mutations, each known-unsafe, used as positive controls — the checker
   must produce a counterexample for every broken variant, mirroring the
   [Fault_profile] pattern psan's positive controls use. *)

type t =
  | Correct
  | Term_before_body
      (* the seal's flush covers the entry header and terminator but not
         the body words — the persist-ordering bug the sealed-CRC is
         there to catch: a durable header whose body never lands leaves
         the walk blind to the entry, so its target stores cannot be
         rolled back *)
  | Truncate_before_clears
      (* the truncate's header persist (log invalidation) runs BEFORE
         the batched table-clear persist, violating
         I-CLEARS-BEFORE-INVALIDATE: a crash in between leaves clears
         that can no longer be re-derived from the (now dead) log *)
  | Trust_advisory
      (* recovery believes the advisory header count instead of walking
         to the terminator: counts are never persisted during a
         transaction, so its durable entries are ignored and its
         partially-landed target stores survive recovery *)
  | Partial_merge
      (* the group-commit leader's merged flush drops every member's
         words but the first — the combiner bug the epoch batch exists
         to rule out: a member retires its log believing the shared
         fence covered it, but its target stores were never flushed *)
  | Swap_before_flush
      (* CoW-engine family ({!Mcow}): the packed root word is stored and
         flushed BEFORE the shadow/intent flush and the commit fence —
         the ordering bug the cow_commit_plan exists to rule out: a
         crash can land the new root while the data it points at (and
         the intent that would re-derive it) never reached media *)

let all =
  [
    Correct;
    Term_before_body;
    Truncate_before_clears;
    Trust_advisory;
    Partial_merge;
    Swap_before_flush;
  ]

let broken =
  [
    Term_before_body;
    Truncate_before_clears;
    Trust_advisory;
    Partial_merge;
    Swap_before_flush;
  ]

let name = function
  | Correct -> "correct"
  | Term_before_body -> "term-before-body"
  | Truncate_before_clears -> "truncate-before-clears"
  | Trust_advisory -> "trust-advisory"
  | Partial_merge -> "partial-merge"
  | Swap_before_flush -> "swap-before-flush"

let of_name s =
  List.find_opt (fun v -> name v = s) all

let describe = function
  | Correct -> "the shipped protocol (expected: zero violations)"
  | Term_before_body ->
      "seal persists header+terminator without the entry body"
  | Truncate_before_clears ->
      "truncate invalidates the log before persisting table clears"
  | Trust_advisory ->
      "recovery trusts the advisory count instead of the tail walk"
  | Partial_merge ->
      "group-commit leader flushes only the first member's lines"
  | Swap_before_flush ->
      "CoW root swap issued before the shadow flush and commit fence"
