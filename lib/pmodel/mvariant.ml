(* Protocol variants: the correct protocol plus deliberately broken
   mutations, each known-unsafe, used as positive controls — the checker
   must produce a counterexample for every broken variant, mirroring the
   [Fault_profile] pattern psan's positive controls use. *)

type t =
  | Correct
  | Term_before_body
      (* the seal's flush covers the entry header and terminator but not
         the body words — the persist-ordering bug the sealed-CRC is
         there to catch: a durable header whose body never lands leaves
         the walk blind to the entry, so its target stores cannot be
         rolled back *)
  | Truncate_before_clears
      (* the truncate's header persist (log invalidation) runs BEFORE
         the batched table-clear persist, violating
         I-CLEARS-BEFORE-INVALIDATE: a crash in between leaves clears
         that can no longer be re-derived from the (now dead) log *)
  | Trust_advisory
      (* recovery believes the advisory header count instead of walking
         to the terminator: a transaction without deferred frees never
         persists the count, so its durable entries are ignored and its
         partially-landed target stores survive recovery *)

let all = [ Correct; Term_before_body; Truncate_before_clears; Trust_advisory ]
let broken = [ Term_before_body; Truncate_before_clears; Trust_advisory ]

let name = function
  | Correct -> "correct"
  | Term_before_body -> "term-before-body"
  | Truncate_before_clears -> "truncate-before-clears"
  | Trust_advisory -> "trust-advisory"

let of_name s =
  List.find_opt (fun v -> name v = s) all

let describe = function
  | Correct -> "the shipped protocol (expected: zero violations)"
  | Term_before_body ->
      "seal persists header+terminator without the entry body"
  | Truncate_before_clears ->
      "truncate invalidates the log before persisting table clears"
  | Trust_advisory ->
      "recovery trusts the advisory count instead of the tail walk"
