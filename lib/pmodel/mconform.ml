(* Trace-driven conformance: replay a probe-captured execution of the
   REAL implementation against the model's protocol order.

   The model checker proves the modeled protocol safe; this module
   closes the loop by checking that the implementation actually follows
   that protocol.  It validates the ordering facts the model's safety
   argument rests on, against the event stream the live journal emits:

   - C-FENCE-AT-COMMIT: at a {!Ptelemetry.Probe.Commit_point}, every
     store and flush this transaction's domain issued is covered by a
     later fence on the device (the commit fence exists — under group
     commit it may have been issued by the epoch leader on another
     domain, which is exactly why the rule is "a fence after my last
     dirty work", not "a fence immediately before my commit point");
   - C-LOG-BEFORE-COMMIT: no log coverage ([Log]/[Alloc]) is added after
     the transaction's commit point;
   - C-DROP-AFTER-COMMIT: every [Drop_apply] happens inside a
     transaction, after its commit point (I-NO-ADVISORY-TRUST's writer
     half: drop records are durable before any clear);
   - C-CLEARS-BEFORE-INVALIDATE: between the commit point and the
     [Journal_truncate] that retires the log, table clears are flushed
     and fenced strictly before the header persist (I-CLEARS-BEFORE-
     INVALIDATE in trace form);
   - C-TRUNCATE-IN-TX: log retirement happens inside a transaction or
     inside a recovery ([Exempt]) window, never spontaneously;
   - C-COMMIT-RETIRES: a transaction that reached its commit point
     retires its log before [Tx_end];
   - C-EPOCH-MONOTONE: per slot, successive truncate epochs increase by
     exactly one (I-EPOCH);
   - C-GEOMETRY: log coverage and drop applications stay inside the
     heap (or a reserved spill region) of the attached pool.

   Transactions are per-DOMAIN: N domains sharing one pool interleave
   their event streams on one device, so every event carries the domain
   that emitted it (probe handlers run synchronously on the emitting
   thread) and the transactional state machine is keyed by
   (device, domain).  Fences are device-global — one domain's fence
   drains every domain's write-pending queue, the fact group commit is
   built on.

   The validator is pure: it consumes a captured event list and returns
   a verdict, so the same code judges live captures and replayed
   traces. *)

module Pr = Ptelemetry.Probe

type geom = {
  journal_base : int;
  slot_size : int;
  nslots : int;
  table_base : int;
  heap_base : int;
  heap_len : int;
  cow_base : int;
  cow_len : int;
}

type verdict = {
  events : int;
  txs : int;
  commit_points : int;
  truncates : int;
  drop_applies : int;
  violations : (int * string) list;  (* (event index, message) *)
}

let ok v = v.violations = []

(* Per-device validator state: geometry, slot epochs, spill regions and
   the index of the latest fence (fences drain the whole device). *)
type dstate = {
  mutable geom : geom option;
  mutable last_fence_i : int;
  epochs : (int, int) Hashtbl.t;  (* slot_base -> last truncate epoch *)
  mutable spills : (int * int) list;  (* reserved (off, len) regions *)
}

let fresh_dstate () =
  { geom = None; last_fence_i = -1; epochs = Hashtbl.create 4; spills = [] }

(* Per-(device, domain) transactional state. *)
type tstate = {
  mutable in_tx : bool;
  mutable saw_cp : bool;
  mutable tr_after_cp : bool;
  mutable is_cow : bool;  (* stored into the CoW root-cell region *)
  mutable exempt : int;
  mutable last_dirty_i : int;  (* latest Store/Flush by this domain *)
  mutable drops_since_cp : int;
  mutable since_cp : (int * Pr.event) list;  (* own events only, reversed *)
}

let fresh_tstate () =
  {
    in_tx = false;
    saw_cp = false;
    tr_after_cp = false;
    is_cow = false;
    exempt = 0;
    last_dirty_i = -1;
    drops_since_cp = 0;
    since_cp = [];
  }

let inter a alen b blen = a < b + blen && b < a + alen

let in_heap g off len =
  off >= g.heap_base && off + len <= g.heap_base + g.heap_len

let in_spill ds off len =
  List.exists (fun (so, sl) -> off >= so && off + len <= so + sl) ds.spills

(* C-CLEARS-BEFORE-INVALIDATE, judged at the truncate that retires a
   commit which applied drops: among this domain's events since its
   commit point, the last flush touching the allocation table must be
   followed by a fence, and the header persist (last flush touching the
   slot) must come after that table flush.  The truncate issues its own
   clear fence, so the domain's own stream contains everything the rule
   needs even when other domains interleave on the device. *)
let check_clears_order g ~slot_base evs =
  let evs = List.rev evs in
  let tmax = ref (-1) and smax = ref (-1) in
  List.iter
    (fun (i, e) ->
      match e with
      | Pr.Flush { off; len; _ } ->
          if inter off len g.table_base (g.heap_base - g.table_base) then
            tmax := i;
          if inter off len slot_base g.slot_size then smax := i
      | _ -> ())
    evs;
  if !tmax < 0 then
    Some "drops applied but no allocation-table flush before truncate"
  else if !smax < !tmax then
    Some "log invalidated by a header persist that precedes the table-clear flush"
  else if
    not
      (List.exists
         (fun (i, e) ->
           match e with Pr.Fence _ -> i > !tmax && i < !smax | _ -> false)
         evs)
  then Some "no fence between the table-clear flush and the header persist"
  else None

let validate (events : (int * Pr.event) list) : verdict =
  let devs : (int, dstate) Hashtbl.t = Hashtbl.create 4 in
  let dstate dev =
    match Hashtbl.find_opt devs dev with
    | Some d -> d
    | None ->
        let d = fresh_dstate () in
        Hashtbl.add devs dev d;
        d
  in
  let doms : (int * int, tstate) Hashtbl.t = Hashtbl.create 8 in
  let tstate dev dom =
    match Hashtbl.find_opt doms (dev, dom) with
    | Some t -> t
    | None ->
        let t = fresh_tstate () in
        Hashtbl.add doms (dev, dom) t;
        t
  in
  let violations = ref [] in
  let txs = ref 0 and cps = ref 0 and trs = ref 0 and das = ref 0 in
  let bad i fmt =
    Printf.ksprintf (fun msg -> violations := (i, msg) :: !violations) fmt
  in
  List.iteri
    (fun i (dom, ev) ->
      let dev =
        match ev with
        | Pr.Store { dev; _ } | Pr.Flush { dev; _ } | Pr.Fence { dev; _ }
        | Pr.Power_cycle { dev } | Pr.Pool_attach { dev; _ }
        | Pr.Tx_begin { dev; _ } | Pr.Tx_end { dev; _ } | Pr.Log { dev; _ }
        | Pr.Alloc { dev; _ } | Pr.Commit_point { dev; _ }
        | Pr.Region_reserve { dev; _ } | Pr.Region_release { dev; _ }
        | Pr.Exempt_push { dev } | Pr.Exempt_pop { dev }
        | Pr.Pool_layout { dev; _ } | Pr.Journal_truncate { dev; _ }
        | Pr.Drop_apply { dev; _ } | Pr.Recovery_phase { dev; _ }
        | Pr.Cow_shadow { dev; _ } | Pr.Cow_retire { dev; _ } ->
            dev
      in
      let ds = dstate dev in
      let ts = tstate dev dom in
      if ts.saw_cp then ts.since_cp <- (i, ev) :: ts.since_cp;
      match ev with
      | Pr.Pool_layout
          { journal_base; slot_size; nslots; table_base; heap_base; heap_len;
            cow_base; cow_len; _ } ->
          ds.geom <-
            Some
              { journal_base; slot_size; nslots; table_base; heap_base;
                heap_len; cow_base; cow_len }
      | Pr.Pool_attach _ | Pr.Recovery_phase _ | Pr.Cow_shadow _
      | Pr.Cow_retire _ ->
          ()
      | Pr.Store { off; len; _ } ->
          ts.last_dirty_i <- i;
          (* a store into the CoW root-cell region marks the transaction
             as CoW-committed: its "log" is the intent record, retired by
             the next generation's seal, not by a journal truncate *)
          (match ds.geom with
          | Some g when g.cow_len > 0 && inter off len g.cow_base g.cow_len ->
              ts.is_cow <- true
          | _ -> ())
      | Pr.Flush _ -> ts.last_dirty_i <- i
      | Pr.Fence _ -> ds.last_fence_i <- i
      | Pr.Power_cycle _ ->
          (* volatile context is gone with the power, on every domain *)
          ds.last_fence_i <- -1;
          Hashtbl.iter
            (fun (d, _) t ->
              if d = dev then begin
                t.in_tx <- false;
                t.saw_cp <- false;
                t.tr_after_cp <- false;
                t.is_cow <- false;
                t.exempt <- 0;
                t.last_dirty_i <- -1;
                t.drops_since_cp <- 0;
                t.since_cp <- []
              end)
            doms
      | Pr.Tx_begin _ ->
          if ts.in_tx then bad i "C-TRUNCATE-IN-TX: nested outermost Tx_begin";
          incr txs;
          ts.in_tx <- true;
          ts.saw_cp <- false;
          ts.tr_after_cp <- false;
          ts.is_cow <- false;
          ts.drops_since_cp <- 0;
          ts.since_cp <- []
      | Pr.Tx_end { outcome; _ } ->
          if not ts.in_tx then bad i "Tx_end without Tx_begin";
          if
            outcome = Pr.Commit && ts.saw_cp && not ts.tr_after_cp
            && not ts.is_cow
          then
            bad i
              "C-COMMIT-RETIRES: transaction reached its commit point but \
               never retired its log";
          ts.in_tx <- false;
          ts.saw_cp <- false;
          ts.tr_after_cp <- false;
          ts.is_cow <- false;
          ts.drops_since_cp <- 0;
          ts.since_cp <- []
      | Pr.Log { off; len; _ } ->
          if ts.in_tx && ts.saw_cp then
            bad i "C-LOG-BEFORE-COMMIT: log coverage added after the commit point";
          (* undo coverage may also name transactional pool-header fields
             (the root pointer), which live below the journal *)
          (match ds.geom with
          | Some g
            when not
                   (off + len <= g.journal_base
                   || in_heap g off len || in_spill ds off len) ->
              bad i "C-GEOMETRY: log coverage at %#x+%d outside the heap" off len
          | _ -> ())
      | Pr.Alloc { off; len; _ } ->
          if ts.in_tx && ts.saw_cp then
            bad i "C-LOG-BEFORE-COMMIT: log coverage added after the commit point";
          (match ds.geom with
          | Some g when not (in_heap g off len) ->
              bad i "C-GEOMETRY: allocation at %#x+%d outside the heap" off len
          | _ -> ())
      | Pr.Commit_point _ ->
          incr cps;
          if not ts.in_tx then bad i "commit point outside a transaction";
          if ds.last_fence_i <= ts.last_dirty_i then
            bad i
              "C-FENCE-AT-COMMIT: commit point with dirty work not covered \
               by a fence";
          ts.saw_cp <- true;
          ts.tr_after_cp <- false;
          ts.drops_since_cp <- 0;
          ts.since_cp <- []
      | Pr.Region_reserve { off; len; _ } -> ds.spills <- (off, len) :: ds.spills
      | Pr.Region_release { off; _ } ->
          ds.spills <- List.filter (fun (o, _) -> o <> off) ds.spills
      | Pr.Exempt_push _ -> ts.exempt <- ts.exempt + 1
      | Pr.Exempt_pop _ -> ts.exempt <- max 0 (ts.exempt - 1)
      | Pr.Journal_truncate { slot_base; epoch; _ } ->
          incr trs;
          if (not ts.in_tx) && ts.exempt = 0 then
            bad i
              "C-TRUNCATE-IN-TX: log retired outside any transaction or \
               recovery window";
          (match ds.geom with
          | Some g ->
              let rel = slot_base - g.journal_base in
              if
                rel < 0
                || rel mod g.slot_size <> 0
                || rel / g.slot_size >= g.nslots
              then bad i "C-GEOMETRY: truncate at %#x is not a slot base" slot_base
              else if ts.saw_cp && ts.drops_since_cp > 0 then (
                match check_clears_order g ~slot_base ts.since_cp with
                | Some msg -> bad i "C-CLEARS-BEFORE-INVALIDATE: %s" msg
                | None -> ())
          | None -> ());
          (match Hashtbl.find_opt ds.epochs slot_base with
          | Some prev when epoch <> prev + 1 ->
              bad i "C-EPOCH-MONOTONE: slot %#x epoch %d after %d" slot_base
                epoch prev
          | _ -> ());
          Hashtbl.replace ds.epochs slot_base epoch;
          if ts.saw_cp then ts.tr_after_cp <- true
      | Pr.Drop_apply { off; _ } ->
          incr das;
          if not (ts.in_tx && ts.saw_cp) then
            bad i
              "C-DROP-AFTER-COMMIT: deferred free applied outside a \
               committed transaction's post-fence window";
          if ts.tr_after_cp then
            bad i
              "C-DROP-AFTER-COMMIT: deferred free applied after the log \
               was already retired";
          ts.drops_since_cp <- ts.drops_since_cp + 1;
          (match ds.geom with
          | Some g when not (in_heap g off 1) ->
              bad i "C-GEOMETRY: drop applied at %#x outside the heap" off
          | _ -> ()))
    events;
  {
    events = List.length events;
    txs = !txs;
    commit_points = !cps;
    truncates = !trs;
    drop_applies = !das;
    violations = List.rev !violations;
  }

(* Validate an untagged single-threaded stream (hand-built test vectors,
   replayed captures from before domain tagging). *)
let validate_events (events : Pr.event list) : verdict =
  validate (List.map (fun e -> (0, e)) events)

(* Run [f] with a capturing subscriber installed; returns the captured
   events — each tagged with the domain that emitted it (handlers run
   synchronously on the emitting thread) — alongside [f]'s result.
   Thread-safe: concurrent emitters serialize on a mutex, and because a
   probe event is emitted at its action point, the captured order
   respects every cross-domain happens-before the pool establishes.
   Replaces any current subscriber for the duration. *)
let capture f =
  let acc = ref [] in
  let m = Mutex.create () in
  Pr.install (fun e ->
      let dom = (Domain.self () :> int) in
      Mutex.lock m;
      acc := (dom, e) :: !acc;
      Mutex.unlock m);
  let finish () = Pr.uninstall () in
  match f () with
  | v ->
      finish ();
      (List.rev !acc, v)
  | exception e ->
      finish ();
      raise e

let pp_verdict ppf v =
  Format.fprintf ppf
    "%d events, %d txs, %d commit points, %d truncates, %d drop applies: %s@."
    v.events v.txs v.commit_points v.truncates v.drop_applies
    (if ok v then "conformant"
     else Printf.sprintf "%d violations" (List.length v.violations));
  List.iter
    (fun (i, msg) -> Format.fprintf ppf "  at event %d: %s@." i msg)
    v.violations
