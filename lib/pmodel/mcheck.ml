(* The exhaustive crash-state checker.

   For every (config, program) pair it expands the writer schedule,
   crashes it before every persist point, enumerates EVERY torn-word
   outcome of the in-flight line set (all subsets of the write-pending
   queue), runs modeled recovery on each distinct durable image, and
   asserts durable linearizability:

   - I-ATOMIC: the recovered heap+table state equals SOME transactional
     composition (each transaction fully applied or fully rolled back);
   - I-COMMITTED-DURABLE: a transaction whose truncate retired the log
     is applied;
   - I-UNCOMMITTED-ROLLED-BACK: a transaction that never reached its
     commit fence is rolled back (between the fence and the truncate's
     header persist both outcomes are legal: committed-but-
     unacknowledged);
   - I-TABLE-LIVENESS: allocation-table codes agree with the chosen
     composition (no leaked or doubly-freed block);
   - I-QUIESCENT-LOG: after recovery every slot is retired — phase,
     advisory count and drop count zero, no walkable entry, no
     salt-valid drop slot;
   - I-IDEMPOTENT-RECOVERY: running recovery again changes nothing.

   Crashes at persist points INSIDE recovery are enumerated too
   (depth 1), each followed by a full re-recovery. *)

module Ms = Mstate
module Mj = Mjournal
module Mr = Mrecovery

(* {1 Transaction status at the crash point} *)

type status = NotStarted | InFlight | Window | Retired

let status_name = function
  | NotStarted -> "not-started"
  | InFlight -> "in-flight"
  | Window -> "committed-unacknowledged"
  | Retired -> "retired"

(* {1 Schedule execution} *)

type run = {
  m : Ms.mem;
  statuses : status array;
  crashed : bool;
  points : int;  (* persist points executed (= total on a full run) *)
}

let exec_schedule cfg ~init_live ~ntxs sched ~stop_at =
  let m = Ms.boot cfg (Ms.initial_state cfg ~init_live) in
  let statuses = Array.make ntxs NotStarted in
  let points = ref 0 in
  let rec go = function
    | [] -> false
    | s :: tl ->
        if Mj.is_persist_point s && !points = stop_at then true
        else begin
          if Mj.is_persist_point s then incr points;
          (match s.Mj.act with
          | Mj.St (w, v) -> Ms.store m w v
          | Mj.Fl ws -> Ms.flush_words m ws
          | Mj.Flw ws -> Ms.flush_words_only m ws
          | Mj.Fence -> Ms.fence m
          | Mj.Mark (Mj.M_start u) -> statuses.(u - 1) <- InFlight
          | Mj.Mark (Mj.M_commit_point u) -> statuses.(u - 1) <- Window
          | Mj.Mark (Mj.M_retired u) -> statuses.(u - 1) <- Retired);
          go tl
        end
  in
  let crashed = go sched in
  { m; statuses; crashed; points = !points }

(* {1 The oracle: expected states} *)

type outcome = Applied | Rolled_back

(* Replay a composition over the program: per-block heap generation and
   table code if each transaction's outcome is as given. *)
let expected prog sigma =
  let gens = Array.make Ms.nblocks 0 in
  let codes =
    Array.init Ms.nblocks (fun b ->
        if prog.Mj.init_live.(b) then Ms.order_of_block b + 1 else 0)
  in
  List.iteri
    (fun i tx ->
      if sigma.(i) = Applied then
        List.iter
          (fun op ->
            match op with
            | Mj.Set b -> gens.(b) <- i + 1
            | Mj.Alloc b -> codes.(b) <- Ms.order_of_block b + 1
            | Mj.Free b -> codes.(b) <- 0)
          tx.Mj.ops)
    prog.Mj.txs;
  (gens, codes)

(* A free block's heap contents are dead bytes — only live blocks'
   generations are compared. *)
let state_matches cfg (st : Ms.state) (gens, codes) ~heap_only =
  let ok = ref true in
  for b = 0 to Ms.nblocks - 1 do
    if codes.(b) > 0 && st.(Ms.heap_w cfg b) <> Ms.Gen gens.(b) then ok := false;
    if
      (not heap_only)
      && Ms.tab_get st.(Ms.table_w cfg b) (Ms.table_sub cfg b) <> codes.(b)
    then ok := false
  done;
  !ok

let allowed_outcomes (tx : Mj.tx) st =
  match (tx.Mj.k, st) with
  | Mj.Abort, _ -> [ Rolled_back ]
  | Mj.Commit, (NotStarted | InFlight) -> [ Rolled_back ]
  | Mj.Commit, Window -> [ Rolled_back; Applied ]
  | Mj.Commit, Retired -> [ Applied ]

let compositions choices_of txs statuses =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (List.concat_map
           (fun o -> List.map (fun tl -> o :: tl) acc)
           (choices_of (List.nth txs i) statuses.(i)))
  in
  List.map Array.of_list (go (List.length txs - 1) [ [] ])

let pp_outcomes ppf sigma =
  Array.iteri
    (fun i o ->
      Format.fprintf ppf "%stx%d:%s"
        (if i > 0 then " " else "")
        (i + 1)
        (match o with Applied -> "applied" | Rolled_back -> "rolled-back"))
    sigma

(* {1 The check} *)

(* Returns [Error (invariant, detail)] if the recovered durable image
   [st] violates durable linearizability for the given statuses. *)
let check_recovered cfg variant prog (statuses : status array) (st : Ms.state) =
  let legal = compositions allowed_outcomes prog.Mj.txs statuses in
  match
    List.find_opt
      (fun s -> state_matches cfg st (expected prog s) ~heap_only:false)
      legal
  with
  | Some _ ->
      (* the state is a legal composition; now the log must be quiescent
         and recovery idempotent *)
      let m = Ms.boot cfg st in
      let quiescent = ref (Ok ()) in
      for s = 0 to cfg.Ms.nslots - 1 do
        let epoch = Mr.as_int (Ms.read m (Ms.epoch_w cfg s)) in
        let entries, torn = Mr.walk m cfg s ~epoch in
        if
          Mr.as_int (Ms.read m (Ms.phase_w cfg s)) <> 0
          || Mr.as_int (Ms.read m (Ms.count_w cfg s)) <> 0
          || Mr.as_int (Ms.read m (Ms.drops_w cfg s)) <> 0
          || entries <> [] || torn
          || Mr.scan_drops m cfg s ~epoch <> []
        then
          quiescent :=
            Error
              ( "I-QUIESCENT-LOG",
                Printf.sprintf "slot %d still carries log residue" s )
      done;
      (match !quiescent with
      | Error _ as e -> e
      | Ok () ->
          let m2 = Ms.boot cfg st in
          Mr.recover ~variant (Mr.no_crash ()) m2;
          if not (Ms.equal_state (Ms.snapshot_durable m2) st) then
            Error
              ( "I-IDEMPOTENT-RECOVERY",
                "re-running recovery changed the durable image" )
          else Ok ())
  | None ->
      (* not legal — classify.  Relax to ALL compositions first: if some
         composition matches, the defect is an outcome forced the wrong
         way; otherwise the state is not transactional at all. *)
      let relaxed =
        compositions (fun _ _ -> [ Applied; Rolled_back ]) prog.Mj.txs statuses
      in
      let detail_of sigma =
        Format.asprintf "state realizes [%a] which the statuses forbid"
          pp_outcomes sigma
      in
      (match
         List.find_opt
           (fun s -> state_matches cfg st (expected prog s) ~heap_only:false)
           relaxed
       with
      | Some sigma ->
          let forced_applied = ref false in
          Array.iteri
            (fun i o ->
              if
                o = Applied
                && allowed_outcomes (List.nth prog.Mj.txs i) statuses.(i)
                   = [ Rolled_back ]
              then forced_applied := true)
            sigma;
          if !forced_applied then Error ("I-UNCOMMITTED-ROLLED-BACK", detail_of sigma)
          else Error ("I-COMMITTED-DURABLE", detail_of sigma)
      | None ->
          if
            List.exists
              (fun s -> state_matches cfg st (expected prog s) ~heap_only:true)
              relaxed
          then
            Error
              ( "I-TABLE-LIVENESS",
                "heap matches a composition but table codes match none" )
          else
            Error
              ( "I-ATOMIC",
                "state matches no transactional composition (partial effects)"
              ))

(* {1 Counterexamples and statistics} *)

type cex = {
  variant : Mvariant.t;
  cfg : Ms.cfg;
  pidx : int;  (* index into [Mjournal.programs cfg] *)
  prog : Mj.program;
  point : int;  (* writer persist point crashed before *)
  mask : int;  (* which in-flight words landed *)
  rpoint : int option;  (* nested: recovery persist point crashed before *)
  rmask : int option;
  invariant : string;
  detail : string;
  crash : Ms.state;  (* the durable image recovery was given *)
  recovered : Ms.state;
}

type stats = {
  mutable programs : int;
  mutable crash_points : int;
  mutable crash_branches : int;
  mutable distinct_states : int;
  mutable recovery_runs : int;
  mutable nested_points : int;
  mutable nested_branches : int;
}

let fresh_stats () =
  {
    programs = 0;
    crash_points = 0;
    crash_branches = 0;
    distinct_states = 0;
    recovery_runs = 0;
    nested_points = 0;
    nested_branches = 0;
  }

let stats_fields s =
  [
    ("programs", s.programs);
    ("crash_points", s.crash_points);
    ("crash_branches", s.crash_branches);
    ("distinct_states", s.distinct_states);
    ("recovery_runs", s.recovery_runs);
    ("nested_points", s.nested_points);
    ("nested_branches", s.nested_branches);
  ]

exception Found of cex

(* Run modeled recovery to completion on [st]; check the result. *)
let recover_and_check stats variant cfg pidx prog statuses st ~point ~mask
    ~rpoint ~rmask =
  let rm = Ms.boot cfg st in
  Mr.recover ~variant (Mr.no_crash ()) rm;
  stats.recovery_runs <- stats.recovery_runs + 1;
  let final = Ms.snapshot_durable rm in
  match check_recovered cfg variant prog statuses final with
  | Ok () -> ()
  | Error (invariant, detail) ->
      raise
        (Found
           {
             variant;
             cfg;
             pidx;
             prog;
             point;
             mask;
             rpoint;
             rmask;
             invariant;
             detail;
             crash = st;
             recovered = final;
           })

let seen_key st statuses = Marshal.to_string (st, statuses) []

let check_program stats variant cfg pidx prog ~nested =
  let sched = Mj.schedule cfg variant prog in
  let ntxs = List.length prog.Mj.txs in
  let init_live = prog.Mj.init_live in
  stats.programs <- stats.programs + 1;
  (* the crash-free run: natural outcomes, quiescent log *)
  let full = exec_schedule cfg ~init_live ~ntxs sched ~stop_at:(-1) in
  assert (not full.crashed);
  (match
     check_recovered cfg variant prog full.statuses
       (Ms.snapshot_durable full.m)
   with
  | Ok () -> ()
  | Error (invariant, detail) ->
      raise
        (Found
           {
             variant;
             cfg;
             pidx;
             prog;
             point = -1;
             mask = 0;
             rpoint = None;
             rmask = None;
             invariant;
             detail;
             crash = Ms.snapshot_durable full.m;
             recovered = Ms.snapshot_durable full.m;
           }));
  let seen = Hashtbl.create 1024 in
  for k = 0 to full.points - 1 do
    let r = exec_schedule cfg ~init_live ~ntxs sched ~stop_at:k in
    assert r.crashed;
    stats.crash_points <- stats.crash_points + 1;
    let n = List.length (Ms.wpq_words r.m) in
    assert (n <= Ms.max_branch_words);
    for mask = 0 to (1 lsl n) - 1 do
      stats.crash_branches <- stats.crash_branches + 1;
      let st = Ms.crash_state r.m ~mask in
      let key = seen_key st r.statuses in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        stats.distinct_states <- stats.distinct_states + 1;
        recover_and_check stats variant cfg pidx prog r.statuses st ~point:k
          ~mask ~rpoint:None ~rmask:None;
        if nested then begin
          (* crash recovery itself at each of ITS persist points *)
          let dry = Ms.boot cfg st in
          let dclk = Mr.no_crash () in
          Mr.recover ~variant dclk dry;
          stats.recovery_runs <- stats.recovery_runs + 1;
          for rk = 0 to dclk.Mr.points - 1 do
            stats.nested_points <- stats.nested_points + 1;
            let rm = Ms.boot cfg st in
            let clk = Mr.crash_at rk in
            (try
               Mr.recover ~variant clk rm;
               assert false
             with Mr.Crash_now -> ());
            let rn = List.length (Ms.wpq_words rm) in
            assert (rn <= Ms.max_branch_words);
            for rmask = 0 to (1 lsl rn) - 1 do
              stats.nested_branches <- stats.nested_branches + 1;
              let st2 = Ms.crash_state rm ~mask:rmask in
              let key2 = seen_key st2 r.statuses in
              if not (Hashtbl.mem seen key2) then begin
                Hashtbl.add seen key2 ();
                stats.distinct_states <- stats.distinct_states + 1;
                recover_and_check stats variant cfg pidx prog r.statuses st2
                  ~point:k ~mask ~rpoint:(Some rk) ~rmask:(Some rmask)
              end
            done
          done
        end
      end
    done
  done

(* {1 Entry points} *)

let default_cfgs =
  [
    { Ms.nslots = 1; Ms.table_split = false };
    { Ms.nslots = 1; Ms.table_split = true };
    { Ms.nslots = 2; Ms.table_split = true };
  ]

type report = { variant : Mvariant.t; stats : stats; cex : cex option }

let run ?(cfgs = default_cfgs) ?(nested = true) variant =
  let stats = fresh_stats () in
  try
    List.iter
      (fun cfg ->
        List.iteri
          (fun pidx prog -> check_program stats variant cfg pidx prog ~nested)
          (Mj.programs cfg))
      cfgs;
    { variant; stats; cex = None }
  with Found c -> { variant; stats; cex = Some c }

(* {1 Counterexample printing} *)

let pp_schedule cfg ppf sched =
  let pt = ref 0 in
  List.iter
    (fun s ->
      if Mj.is_persist_point s then begin
        Format.fprintf ppf "  p%-3d %a@." !pt (Mj.pp_step cfg) s;
        incr pt
      end
      else Format.fprintf ppf "       %a@." (Mj.pp_step cfg) s)
    sched

let repro_string (c : cex) =
  let base =
    Printf.sprintf "%s:%d:%d:%d:%d:%d"
      (Mvariant.name c.variant)
      c.cfg.Ms.nslots
      (if c.cfg.Ms.table_split then 1 else 0)
      c.pidx c.point c.mask
  in
  match (c.rpoint, c.rmask) with
  | Some rk, Some rm -> Printf.sprintf "%s:%d:%d" base rk rm
  | _ -> base

let pp_cex ppf (c : cex) =
  Format.fprintf ppf "counterexample (variant %s):@." (Mvariant.name c.variant);
  Format.fprintf ppf "  program   %s  (nslots=%d table_split=%b)@."
    c.prog.Mj.descr c.cfg.Ms.nslots c.cfg.Ms.table_split;
  if c.point < 0 then
    Format.fprintf ppf "  crash     none (crash-free run)@."
  else
    Format.fprintf ppf
      "  crash     before writer persist point p%d, landed-word mask 0x%x@."
      c.point c.mask;
  (match (c.rpoint, c.rmask) with
  | Some rk, Some rm ->
      Format.fprintf ppf
        "  nested    recovery crashed before its persist point %d, mask 0x%x@."
        rk rm
  | _ -> ());
  Format.fprintf ppf "  violates  %s: %s@." c.invariant c.detail;
  Format.fprintf ppf "  tx status %s@."
    (String.concat ", "
       (List.mapi
          (fun i tx -> Printf.sprintf "tx%d %s" (i + 1) (Mj.tx_name tx))
          c.prog.Mj.txs));
  Format.fprintf ppf "  replay    --repro '%s'@." (repro_string c);
  Format.fprintf ppf "  crash image:@.%a" (Ms.pp_state c.cfg) c.crash;
  Format.fprintf ppf "  recovered image:@.%a" (Ms.pp_state c.cfg) c.recovered;
  Format.fprintf ppf "  persist schedule:@.%a" (pp_schedule c.cfg)
    (Mj.schedule c.cfg c.variant c.prog)

(* {1 Replay} *)

(* Re-run one crash branch from its repro spec:
   VARIANT:NSLOTS:SPLIT:PROG:POINT:MASK[:RPOINT:RMASK] *)
let replay spec =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match String.split_on_char ':' spec with
  | vname :: nslots :: split :: pidx :: point :: mask :: rest -> (
      let ints =
        try
          Some
            ( int_of_string nslots,
              int_of_string split,
              int_of_string pidx,
              int_of_string point,
              int_of_string mask,
              match rest with
              | [] -> None
              | [ rk; rm ] -> Some (int_of_string rk, int_of_string rm)
              | _ -> raise Exit )
        with _ -> None
      in
      match (Mvariant.of_name vname, ints) with
      | None, _ -> fail "unknown variant %S" vname
      | _, None -> fail "malformed repro spec %S" spec
      | Some variant, Some (nslots, split, pidx, point, mask, nested) -> (
          let cfg = { Ms.nslots; Ms.table_split = split <> 0 } in
          let progs = Mj.programs cfg in
          if pidx < 0 || pidx >= List.length progs then
            fail "program index %d out of range" pidx
          else
            let prog = List.nth progs pidx in
            let sched = Mj.schedule cfg variant prog in
            let ntxs = List.length prog.Mj.txs in
            let r =
              exec_schedule cfg ~init_live:prog.Mj.init_live ~ntxs sched
                ~stop_at:point
            in
            if not r.crashed then fail "persist point %d out of range" point
            else
              let st = Ms.crash_state r.m ~mask in
              let st =
                match nested with
                | None -> Ok st
                | Some (rk, rmask) -> (
                    let rm = Ms.boot cfg st in
                    let clk = Mr.crash_at rk in
                    match Mr.recover ~variant clk rm with
                    | () -> fail "recovery point %d out of range" rk
                    | exception Mr.Crash_now ->
                        Ok (Ms.crash_state rm ~mask:rmask))
              in
              match st with
              | Error _ as e -> e
              | Ok st -> (
                  let stats = fresh_stats () in
                  let rpoint, rmask =
                    match nested with
                    | Some (rk, rm) -> (Some rk, Some rm)
                    | None -> (None, None)
                  in
                  match
                    recover_and_check stats variant cfg pidx prog r.statuses st
                      ~point ~mask ~rpoint ~rmask
                  with
                  | () -> Ok None
                  | exception Found c -> Ok (Some c))))
  | _ -> fail "malformed repro spec %S" spec
