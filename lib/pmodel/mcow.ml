(* Exhaustive crash-state checker for the CoW ("mod" engine) commit
   protocol: the {!Corundum.Cow_root} intent/swap/recovery family over
   {!Pjournal.Protocol.cow_commit_plan}.

   Same discipline as {!Mcheck}, own tiny machine and layout: crash the
   writer before every persist point, enumerate EVERY torn-word outcome
   of the write-pending queue, run a step-for-step mirror of
   [Cow_root.recover] on each distinct durable image, and assert
   durable linearizability plus intent quiescence and idempotent
   recovery.  Crashes at persist points inside recovery are enumerated
   too (depth 1).

   Aborts are not modeled: the engine's abort is purely volatile
   (reservations cancelled, nothing of an uncommitted transaction was
   ever flushed), so an aborting transaction contributes no persist
   point and no crash branch the empty schedule does not already cover.

   The CRC of the intent record is modeled structurally, as in
   {!Mstate}: the header value records the exact body words it covered,
   and verification is "every recorded word still reads back
   identically" — what the salted CRC certifies modulo collisions.

   Commit-word semantics mirrored here (and checked): for [Publish] the
   first publish word doubles as the commit indicator; for [Gen_only] /
   [Swap] the packed root word itself is the commit word; an
   intent-less bare swap fences first so its commit word can never land
   while a predecessor's unfenced tail is still in flight; recovery
   invalidates every intent it reads, including stale generations. *)

module Pt = Pjournal.Protocol

(* {1 Layout}

   One word = one 8-byte atomic unit; lines of 8 words.
   Line 0: the packed root word.  Lines 1-2: the two intent record
   slots (header + up to 5 body words each), sealed alternately by
   generation parity, like the engine's cell.  Line 3: the two
   allocation-table words (they share a flush line but tear
   independently).  Lines 4-5: the two heap blocks, one word of
   payload each. *)

let words_per_line = 8
let nblocks = 2
let nslots = 2
let root_w = 0
let ihdr_w s = 8 + (words_per_line * s)
let ibody_w s = ihdr_w s + 1 (* body words, up to 5 per slot *)
let slot_of_igen igen = igen land 1
let table_w b = 24 + b
let heap_w b = 32 + (words_per_line * b)
let nwords = 32 + (words_per_line * nblocks)
let order_of_block b = 3 - b
let block_name = function 0 -> "A" | 1 -> "B" | _ -> "?"

(* ptr encoding: 0 = no root, b+1 = block b *)
let ptr_name = function 0 -> "none" | p -> block_name (p - 1)

let word_name w =
  if w = root_w then "root"
  else if w >= ihdr_w 0 && w < ihdr_w nslots then
    let s = (w - ihdr_w 0) / words_per_line in
    let o = (w - ihdr_w s) in
    if o = 0 then Printf.sprintf "intent%d.hdr" s
    else Printf.sprintf "intent%d.body[%d]" s (o - 1)
  else if w = table_w 0 || w = table_w 1 then
    Printf.sprintf "table.%s" (block_name (w - table_w 0))
  else if w >= heap_w 0 then
    let b = (w - heap_w 0) / words_per_line in
    if w = heap_w b then Printf.sprintf "heap.%s" (block_name b)
    else Printf.sprintf "heap.pad%d" w
  else Printf.sprintf "w%d" w

(* {1 Values} *)

type ikind = K_gen | K_swap of int | K_pub of int (* the recorded ptr *)

type pub = { w : int; oldv : value; newv : value }

and ipay =
  | P_pub of pub
  | P_alloc of int (* block *)
  | P_free of int

and value =
  | Int of int
  | Gen of int (* heap word: data generation (0 = initial contents) *)
  | Root of { ptr : int; gen : int } (* the packed 8-byte root word *)
  | Tab of int (* table word: 0 = free, order+1 = live *)
  | Ihdr of { igen : int; kind : ikind; body : (int * value) list }
  | Ibody of { wid : int; pay : ipay }

let kind_name = function
  | K_gen -> "gen-only"
  | K_swap p -> Printf.sprintf "swap->%s" (ptr_name p)
  | K_pub p -> Printf.sprintf "publish->%s" (ptr_name p)

let pp_value ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Gen g -> Format.fprintf ppf "gen:%d" g
  | Root { ptr; gen } -> Format.fprintf ppf "root(%s,g%d)" (ptr_name ptr) gen
  | Tab c -> Format.fprintf ppf "tab:%d" c
  | Ihdr { igen; kind; body } ->
      Format.fprintf ppf "ihdr(g%d,%s,%dw)" igen (kind_name kind)
        (List.length body)
  | Ibody { wid; pay = _ } -> Format.fprintf ppf "body#%d" wid

(* {1 The machine — Mstate semantics, CoW layout} *)

type mem = {
  durable : value array;
  view : value array;
  line_dirty : bool array;
  wpq : (int, value) Hashtbl.t;
}

type state = value array

let initial_state ~init_live ~init_root : state =
  let d = Array.make nwords (Int 0) in
  d.(root_w) <- Root { ptr = init_root; gen = 0 };
  for b = 0 to nblocks - 1 do
    d.(heap_w b) <- Gen 0;
    d.(table_w b) <- Tab (if init_live.(b) then order_of_block b + 1 else 0)
  done;
  d

let boot (s : state) =
  {
    durable = Array.copy s;
    view = Array.copy s;
    line_dirty = Array.make ((nwords + words_per_line - 1) / words_per_line) false;
    wpq = Hashtbl.create 16;
  }

let read m w = m.view.(w)

let store m w v =
  m.view.(w) <- v;
  m.line_dirty.(w / words_per_line) <- true

let flush_words m ws =
  let lines = List.sort_uniq compare (List.map (fun w -> w / words_per_line) ws) in
  List.iter
    (fun l ->
      if m.line_dirty.(l) then begin
        let lo = l * words_per_line in
        let hi = min (lo + words_per_line) (Array.length m.view) in
        for w = lo to hi - 1 do
          if m.view.(w) <> m.durable.(w) then Hashtbl.replace m.wpq w m.view.(w)
          else Hashtbl.remove m.wpq w
        done;
        m.line_dirty.(l) <- false
      end)
    lines

let fence m =
  Hashtbl.iter (fun w v -> m.durable.(w) <- v) m.wpq;
  Hashtbl.reset m.wpq

let wpq_words m =
  List.sort compare (Hashtbl.fold (fun w _ acc -> w :: acc) m.wpq [])

let max_branch_words = 16

let crash_state m ~mask : state =
  let d = Array.copy m.durable in
  List.iteri
    (fun i w -> if mask land (1 lsl i) <> 0 then d.(w) <- Hashtbl.find m.wpq w)
    (wpq_words m);
  d

let snapshot_durable m : state = Array.copy m.durable
let equal_state (a : state) (b : state) = a = b

let pp_state ppf (s : state) =
  Array.iteri
    (fun w v ->
      if v <> Int 0 then
        Format.fprintf ppf "  %-16s = %a@." (word_name w) pp_value v)
    s

(* {1 Programs} *)

type op = Pub of int | Alloc of int | Free of int | Set_root of int
type tx = { ops : op list }

type program = {
  descr : string;
  init_live : bool array;
  init_root : int;
  txs : tx list;
}

let op_name = function
  | Pub b -> "pub " ^ block_name b
  | Alloc b -> "alloc " ^ block_name b
  | Free b -> "free " ^ block_name b
  | Set_root p -> "set-root " ^ ptr_name p

let tx_name t =
  Printf.sprintf "{%s}" (String.concat "; " (List.map op_name t.ops))

(* Every committing transaction shape the engine produces: in-place
   update (Publish), alloc+write (+swap), frees (Gen_only/Swap/Publish),
   a publish dropped into a same-tx-freed block, the intent-less bare
   swap, and pairs exercising generation chaining, unfenced-tail
   draining, old-root retirement, and free-then-realloc intent-cell
   reuse. *)
let programs : program list =
  let mk descr init_live init_root txs = { descr; init_live; init_root; txs } in
  let t ops = { ops } in
  [
    mk "update" [| true; false |] 1 [ t [ Pub 0 ] ];
    mk "update-two-words" [| true; true |] 1 [ t [ Pub 0; Pub 1 ] ];
    mk "alloc+write+swap" [| true; false |] 1 [ t [ Alloc 1; Set_root 2 ] ];
    mk "alloc+pub" [| true; false |] 1 [ t [ Alloc 1; Pub 0 ] ];
    mk "free" [| true; true |] 1 [ t [ Free 1 ] ];
    mk "pub+free" [| true; true |] 1 [ t [ Pub 0; Free 1 ] ];
    mk "pub-into-freed" [| true; true |] 1 [ t [ Pub 1; Free 1 ] ];
    mk "bare-swap" [| true; true |] 1 [ t [ Set_root 2 ] ];
    mk "swap+free-old" [| true; true |] 2 [ t [ Set_root 1; Free 1 ] ];
    mk "update;update" [| true; false |] 1 [ t [ Pub 0 ]; t [ Pub 0 ] ];
    mk "update;bare-swap" [| true; true |] 1 [ t [ Pub 0 ]; t [ Set_root 2 ] ];
    mk "alloc+swap;free-old" [| true; false |] 1
      [ t [ Alloc 1; Set_root 2 ]; t [ Free 0 ] ];
    mk "free;realloc" [| true; true |] 1
      [ t [ Free 1 ]; t [ Alloc 1; Pub 0 ] ];
    mk "update;alloc+pub" [| true; false |] 1
      [ t [ Pub 0 ]; t [ Alloc 1; Pub 0 ] ];
    mk "bare-swap;bare-swap" [| true; true |] 1
      [ t [ Set_root 2 ]; t [ Set_root 1 ] ];
  ]

(* {1 Schedule steps} *)

type marker = M_start of int | M_commit_point of int | M_retired of int

type act = St of int * value | Fl of int list | Fence | Mark of marker
type step = { act : act; lbl : string }

let is_persist_point s =
  match s.act with Fl _ | Fence -> true | St _ | Mark _ -> false

let pp_step ppf s =
  (match s.act with
  | St (w, v) ->
      Format.fprintf ppf "st   %-16s <- %a" (word_name w) pp_value v
  | Fl ws ->
      Format.fprintf ppf "fl   %s" (String.concat "," (List.map word_name ws))
  | Fence -> Format.fprintf ppf "fence"
  | Mark (M_start u) -> Format.fprintf ppf "-- tx%d begins" u
  | Mark (M_commit_point u) -> Format.fprintf ppf "-- tx%d commit point" u
  | Mark (M_retired u) -> Format.fprintf ppf "-- tx%d retired" u);
  if s.lbl <> "" then Format.fprintf ppf "   [%s]" s.lbl

(* {1 Expansion}

   Mirrors [Mod_engine.commit] phase for phase, driving the tail from
   the very same {!Pjournal.Protocol.cow_commit_plan} the engine
   interprets.  A transaction's retirement (unambiguously applied) is
   marked at the first fence issued anywhere AFTER its root-swap flush
   — the buffered-durability window every plan closes with its next
   fence. *)

type gctx = {
  variant : Mvariant.t;
  mutable wid : int;
  mutable gen : int;
  mutable ptr : int;
  gens : int array;
  mutable awaiting : int list; (* uids whose swap flush awaits a fence *)
}

let fresh_wid ctx =
  ctx.wid <- ctx.wid + 1;
  ctx.wid

let push buf ?(lbl = "") act = buf := { act; lbl } :: !buf

(* A fence drains the WPQ: every transaction whose commit word was
   already flushed becomes unambiguously durable. *)
let fence_step ctx buf ~lbl =
  push buf ~lbl Fence;
  List.iter (fun u -> push buf (Mark (M_retired u))) (List.rev ctx.awaiting);
  ctx.awaiting <- []

let gen_tx ctx buf ~uid tx =
  push buf (Mark (M_start uid));
  (* classify ops volatilely, exactly like the engine's write-set *)
  let allocs = ref [] and frees = ref [] and pubs = ref [] in
  let pending_root = ref None in
  List.iter
    (fun op ->
      match op with
      | Alloc b ->
          allocs := b :: !allocs;
          (* the alloc+write shape: a shadow store into the fresh block *)
          push buf
            ~lbl:(Printf.sprintf "shadow store %s" (block_name b))
            (St (heap_w b, Gen uid))
      | Pub b -> if not (List.mem b !pubs) then pubs := b :: !pubs
      | Free b -> frees := b :: !frees
      | Set_root p -> pending_root := Some p)
    tx.ops;
  let allocs = List.rev !allocs and frees = List.rev !frees in
  let new_ptr = match !pending_root with Some p -> p | None -> ctx.ptr in
  (* publishes into same-tx-freed blocks are dropped, like the engine *)
  let pubs =
    List.filter_map
      (fun b ->
        if List.mem b frees then None
        else Some (heap_w b, Gen ctx.gens.(b), Gen uid))
      (List.rev !pubs)
  in
  let has_allocs = allocs <> [] and has_frees = frees <> [] in
  let has_shadow = allocs <> [] || pubs <> [] in
  let igen = ctx.gen + 1 in
  let shadow_words = List.map heap_w allocs in
  if not (has_allocs || has_frees || has_shadow) then begin
    match !pending_root with
    | None -> () (* read-only: nothing durable, no crash point *)
    | Some _ ->
        (* the intent-less bare swap: fence (drain any predecessor's
           unfenced tail), then the self-committing w0 store+flush *)
        fence_step ctx buf ~lbl:"bare-swap fence";
        push buf (Mark (M_commit_point uid));
        push buf ~lbl:"bare swap"
          (St (root_w, Root { ptr = new_ptr; gen = igen }));
        push buf ~lbl:"bare swap" (Fl [ root_w ]);
        ctx.awaiting <- uid :: ctx.awaiting;
        ctx.ptr <- new_ptr;
        ctx.gen <- igen
  end
  else begin
    let kind =
      match pubs with
      | [] -> if new_ptr = 0 then K_gen else K_swap new_ptr
      | _ -> K_pub new_ptr
    in
    let slot = slot_of_igen igen in
    let body =
      List.mapi
        (fun i (w, oldv, newv) ->
          (ibody_w slot + i,
           Ibody { wid = fresh_wid ctx; pay = P_pub { w; oldv; newv } }))
        pubs
      @ List.mapi
          (fun i b ->
            (ibody_w slot + List.length pubs + i,
             Ibody { wid = fresh_wid ctx; pay = P_alloc b }))
          allocs
      @ List.mapi
          (fun i b ->
            (ibody_w slot + List.length pubs + List.length allocs + i,
             Ibody { wid = fresh_wid ctx; pay = P_free b }))
          frees
    in
    assert (List.length body <= words_per_line - 1);
    let intent_words = ihdr_w slot :: List.map fst body in
    let need_intent = has_allocs || has_frees || pubs <> [] in
    let sealed = ref false in
    let seal ~lbl =
      List.iter (fun (w, v) -> push buf ~lbl (St (w, v))) body;
      push buf ~lbl (St (ihdr_w slot, Ihdr { igen; kind; body }));
      push buf ~lbl (Fl intent_words);
      sealed := true
    in
    let fenced = ref false and committed = ref false in
    let commit_point () =
      committed := true;
      push buf (Mark (M_commit_point uid))
    in
    let swap ~lbl =
      push buf ~lbl (St (root_w, Root { ptr = new_ptr; gen = igen }));
      push buf ~lbl (Fl [ root_w ])
    in
    let plan =
      Pt.cow_commit_plan ~allocs:has_allocs ~frees:has_frees ~shadow:has_shadow
    in
    List.iter
      (fun ph ->
        match ph with
        | Pt.Seal_intent ->
            seal ~lbl:"seal intent";
            fence_step ctx buf ~lbl:"seal fence";
            fenced := true
        | Pt.Shadow_flush ->
            (* the seeded Swap_before_flush bug: the root word is
               published before the data it points at is durable *)
            if ctx.variant = Mvariant.Swap_before_flush then
              swap ~lbl:"PREMATURE root swap";
            if need_intent && not !sealed then seal ~lbl:"seal (rides batch)";
            let marks =
              List.map
                (fun b ->
                  push buf
                    ~lbl:(Printf.sprintf "mark %s" (block_name b))
                    (St (table_w b, Tab (order_of_block b + 1)));
                  table_w b)
                allocs
            in
            if shadow_words @ marks <> [] then
              push buf ~lbl:"shadow flush" (Fl (shadow_words @ marks))
        | Pt.Commit_fence ->
            fence_step ctx buf ~lbl:"commit fence";
            fenced := true;
            commit_point ()
        | Pt.Root_swap ->
            if not !fenced then begin
              fence_step ctx buf ~lbl:"swap fence";
              fenced := true
            end;
            if not !committed then commit_point ();
            if pubs <> [] then begin
              List.iter
                (fun (w, _old, newv) ->
                  push buf ~lbl:"publish" (St (w, newv)))
                pubs;
              push buf ~lbl:"publish flush" (Fl (List.map (fun (w, _, _) -> w) pubs))
            end;
            if ctx.variant <> Mvariant.Swap_before_flush then
              swap ~lbl:"root swap";
            ctx.awaiting <- uid :: ctx.awaiting
        | Pt.Retire_old ->
            fence_step ctx buf ~lbl:"retire fence";
            let clears =
              List.map
                (fun b ->
                  push buf
                    ~lbl:(Printf.sprintf "retire %s" (block_name b))
                    (St (table_w b, Tab 0));
                  table_w b)
                frees
            in
            push buf ~lbl:"retire flush" (Fl clears)
        | _ -> assert false)
      plan;
    List.iter (fun (w, _, _) -> ctx.gens.((w - heap_w 0) / words_per_line) <- uid) pubs;
    List.iter (fun b -> ctx.gens.(b) <- uid) allocs;
    ctx.ptr <- new_ptr;
    ctx.gen <- igen
  end

let schedule variant (p : program) : step list =
  let ctx =
    {
      variant;
      wid = 0;
      gen = 0;
      ptr = p.init_root;
      gens = Array.make nblocks 0;
      awaiting = [];
    }
  in
  let buf = ref [] in
  List.iteri (fun i tx -> gen_tx ctx buf ~uid:(i + 1) tx) p.txs;
  List.rev !buf

(* {1 Modeled recovery — a mirror of Cow_root.recover} *)

type clock = { mutable points : int; mutable stop_at : int }

exception Crash_now

let no_crash () = { points = 0; stop_at = -1 }
let crash_at k = { points = 0; stop_at = k }

let tick c =
  if c.stop_at >= 0 && c.points = c.stop_at then raise Crash_now;
  c.points <- c.points + 1

let read_root m =
  match read m root_w with
  | Root { ptr; gen } -> (ptr, gen)
  | _ -> (0, 0)

(* CRC verification, structurally: the header's recorded body words must
   all read back identically. *)
let read_intent m s =
  match read m (ihdr_w s) with
  | Ihdr { igen; kind; body }
    when List.for_all (fun (w, v) -> read m w = v) body ->
      Some (igen, kind, body)
  | _ -> None

let read_intents m =
  List.filter_map
    (fun s -> Option.map (fun r -> (s, r)) (read_intent m s))
    (List.init nslots Fun.id)

let persist_word clk m w =
  tick clk;
  flush_words m [ w ];
  tick clk;
  fence m

let ensure_word clk m w v =
  if read m w <> v then begin
    store m w v;
    persist_word clk m w
  end

let tab_code m b = match read m (table_w b) with Tab c -> c | _ -> -1

let ensure_marked clk m b =
  if tab_code m b <> order_of_block b + 1 then begin
    store m (table_w b) (Tab (order_of_block b + 1));
    persist_word clk m (table_w b)
  end

let ensure_cleared clk m b =
  if tab_code m b <> 0 then begin
    store m (table_w b) (Tab 0);
    persist_word clk m (table_w b)
  end

let invalidate_intent clk m s =
  store m (ihdr_w s) (Int 0);
  persist_word clk m (ihdr_w s)

let body_effects body =
  List.fold_left
    (fun (pubs, allocs, frees) (_, v) ->
      match v with
      | Ibody { pay = P_pub p; _ } -> (p :: pubs, allocs, frees)
      | Ibody { pay = P_alloc b; _ } -> (pubs, b :: allocs, frees)
      | Ibody { pay = P_free b; _ } -> (pubs, allocs, b :: frees)
      | _ -> (pubs, allocs, frees))
    ([], [], []) (List.rev body)

let roll_forward clk m body =
  let pubs, allocs, frees = body_effects body in
  List.iter (fun { w; newv; _ } -> ensure_word clk m w newv) (List.rev pubs);
  List.iter (ensure_marked clk m) (List.rev allocs);
  List.iter (ensure_cleared clk m) (List.rev frees)

let roll_back clk m s body =
  let pubs, allocs, _frees = body_effects body in
  List.iter (fun { w; oldv; _ } -> ensure_word clk m w oldv) (List.rev pubs);
  List.iter (ensure_cleared clk m) (List.rev allocs);
  invalidate_intent clk m s

(* Mirror of [Cow_root.recover_cell]: stale records retired first, then
   the consumed slot rolled forward (its transaction is logically
   earlier), then the pending slot judged by its commit word. *)
let recover clk m =
  let _ptr, gen = read_root m in
  let recs = read_intents m in
  let pending (igen, _, _) = igen = gen + 1 in
  let consumed (igen, _, _) = igen = gen && gen <> 0 in
  List.iter
    (fun (s, r) ->
      (* stale generation: the transaction is gone either way *)
      if not (pending r || consumed r) then invalidate_intent clk m s)
    recs;
  List.iter
    (fun (s, ((_, _, body) as r)) ->
      if consumed r then begin
        roll_forward clk m body;
        invalidate_intent clk m s
      end)
    recs;
  List.iter
    (fun (s, ((igen, kind, body) as r)) ->
      if pending r then begin
        let committed =
          match kind with
          | K_gen | K_swap _ -> false
          | K_pub _ -> (
              let pubs, _, _ = body_effects body in
              match List.rev pubs with
              | { w; newv; _ } :: _ -> read m w = newv
              | [] -> false)
        in
        if committed then begin
          roll_forward clk m body;
          let ptr =
            match kind with
            | K_pub p -> p
            | K_gen | K_swap _ -> fst (read_root m)
          in
          store m root_w (Root { ptr; gen = igen });
          persist_word clk m root_w;
          invalidate_intent clk m s
        end
        else roll_back clk m s body
      end)
    recs

(* {1 The oracle} *)

type status = NotStarted | InFlight | Window | Retired

let status_name = function
  | NotStarted -> "not-started"
  | InFlight -> "in-flight"
  | Window -> "committed-unacknowledged"
  | Retired -> "retired"

let _ = status_name

type outcome = Applied | Rolled_back

let allowed_outcomes st =
  match st with
  | NotStarted | InFlight -> [ Rolled_back ]
  | Window -> [ Rolled_back; Applied ]
  | Retired -> [ Applied ]

(* Replay a composition: per-block generation and table code, the root
   pointer, and the root generation (each applied transaction advances
   it by exactly one — the igen chain). *)
let expected prog sigma =
  let gens = Array.make nblocks 0 in
  let codes =
    Array.init nblocks (fun b ->
        if prog.init_live.(b) then order_of_block b + 1 else 0)
  in
  let rptr = ref prog.init_root and rgen = ref 0 in
  List.iteri
    (fun i tx ->
      if sigma.(i) = Applied then begin
        let uid = i + 1 in
        let frees =
          List.filter_map (function Free b -> Some b | _ -> None) tx.ops
        in
        List.iter
          (fun op ->
            match op with
            | Pub b -> if not (List.mem b frees) then gens.(b) <- uid
            | Alloc b ->
                codes.(b) <- order_of_block b + 1;
                gens.(b) <- uid
            | Free b -> codes.(b) <- 0
            | Set_root p -> rptr := p)
          tx.ops;
        incr rgen
      end)
    prog.txs;
  (gens, codes, !rptr, !rgen)

(* Free blocks hold dead bytes — only live blocks' generations count. *)
let state_matches (st : state) (gens, codes, rptr, rgen) ~heap_only =
  let ok = ref true in
  for b = 0 to nblocks - 1 do
    if codes.(b) > 0 && st.(heap_w b) <> Gen gens.(b) then ok := false;
    if (not heap_only) && st.(table_w b) <> Tab codes.(b) then ok := false
  done;
  if (not heap_only) && st.(root_w) <> Root { ptr = rptr; gen = rgen } then
    ok := false;
  !ok

let compositions choices_of txs statuses =
  let rec go i acc =
    if i < 0 then acc
    else
      go (i - 1)
        (List.concat_map
           (fun o -> List.map (fun tl -> o :: tl) acc)
           (choices_of (List.nth txs i) statuses.(i)))
  in
  List.map Array.of_list (go (List.length txs - 1) [ [] ])

let pp_outcomes ppf sigma =
  Array.iteri
    (fun i o ->
      Format.fprintf ppf "%stx%d:%s"
        (if i > 0 then " " else "")
        (i + 1)
        (match o with Applied -> "applied" | Rolled_back -> "rolled-back"))
    sigma

let check_recovered prog (statuses : status array) (st : state) =
  let legal =
    compositions (fun _ s -> allowed_outcomes s) prog.txs statuses
  in
  match
    List.find_opt
      (fun s -> state_matches st (expected prog s) ~heap_only:false)
      legal
  with
  | Some _ -> (
      (* legal composition; the intent cell must be quiescent and
         recovery idempotent *)
      let m = boot st in
      if read_intents m <> [] then
        Error ("I-QUIESCENT-INTENT", "a readable intent survived recovery")
      else begin
        let m2 = boot st in
        recover (no_crash ()) m2;
        if not (equal_state (snapshot_durable m2) st) then
          Error
            ( "I-IDEMPOTENT-RECOVERY",
              "re-running recovery changed the durable image" )
        else Ok ()
      end)
  | None -> (
      let relaxed =
        compositions (fun _ _ -> [ Applied; Rolled_back ]) prog.txs statuses
      in
      let detail_of sigma =
        Format.asprintf "state realizes [%a] which the statuses forbid"
          pp_outcomes sigma
      in
      match
        List.find_opt
          (fun s -> state_matches st (expected prog s) ~heap_only:false)
          relaxed
      with
      | Some sigma ->
          let forced = ref false in
          Array.iteri
            (fun i o ->
              if o = Applied && allowed_outcomes statuses.(i) = [ Rolled_back ]
              then forced := true)
            sigma;
          if !forced then Error ("I-UNCOMMITTED-ROLLED-BACK", detail_of sigma)
          else Error ("I-COMMITTED-DURABLE", detail_of sigma)
      | None ->
          if
            List.exists
              (fun s -> state_matches st (expected prog s) ~heap_only:true)
              relaxed
          then
            Error
              ( "I-TABLE-LIVENESS",
                "heap matches a composition but table/root words match none" )
          else
            Error
              ( "I-ATOMIC",
                "state matches no transactional composition (partial effects)"
              ))

(* {1 Schedule execution, counterexamples, statistics} *)

type run = {
  m : mem;
  statuses : status array;
  crashed : bool;
  points : int;
}

let exec_schedule ~init_live ~init_root ~ntxs sched ~stop_at =
  let m = boot (initial_state ~init_live ~init_root) in
  let statuses = Array.make ntxs NotStarted in
  let points = ref 0 in
  let rec go = function
    | [] -> false
    | s :: tl ->
        if is_persist_point s && !points = stop_at then true
        else begin
          if is_persist_point s then incr points;
          (match s.act with
          | St (w, v) -> store m w v
          | Fl ws -> flush_words m ws
          | Fence -> fence m
          | Mark (M_start u) -> statuses.(u - 1) <- InFlight
          | Mark (M_commit_point u) -> statuses.(u - 1) <- Window
          | Mark (M_retired u) -> statuses.(u - 1) <- Retired);
          go tl
        end
  in
  let crashed = go sched in
  { m; statuses; crashed; points = !points }

type cex = {
  variant : Mvariant.t;
  pidx : int;
  prog : program;
  point : int;
  mask : int;
  rpoint : int option;
  rmask : int option;
  invariant : string;
  detail : string;
  crash : state;
  recovered : state;
}

type stats = {
  mutable programs : int;
  mutable crash_points : int;
  mutable crash_branches : int;
  mutable distinct_states : int;
  mutable recovery_runs : int;
  mutable nested_points : int;
  mutable nested_branches : int;
}

let fresh_stats () =
  {
    programs = 0;
    crash_points = 0;
    crash_branches = 0;
    distinct_states = 0;
    recovery_runs = 0;
    nested_points = 0;
    nested_branches = 0;
  }

let stats_fields s =
  [
    ("programs", s.programs);
    ("crash_points", s.crash_points);
    ("crash_branches", s.crash_branches);
    ("distinct_states", s.distinct_states);
    ("recovery_runs", s.recovery_runs);
    ("nested_points", s.nested_points);
    ("nested_branches", s.nested_branches);
  ]

exception Found of cex

let recover_and_check stats variant pidx prog statuses st ~point ~mask ~rpoint
    ~rmask =
  let rm = boot st in
  recover (no_crash ()) rm;
  stats.recovery_runs <- stats.recovery_runs + 1;
  let final = snapshot_durable rm in
  match check_recovered prog statuses final with
  | Ok () -> ()
  | Error (invariant, detail) ->
      raise
        (Found
           {
             variant;
             pidx;
             prog;
             point;
             mask;
             rpoint;
             rmask;
             invariant;
             detail;
             crash = st;
             recovered = final;
           })

let seen_key st statuses = Marshal.to_string (st, statuses) []

let check_program stats variant pidx prog ~nested =
  let sched = schedule variant prog in
  let ntxs = List.length prog.txs in
  stats.programs <- stats.programs + 1;
  let full =
    exec_schedule ~init_live:prog.init_live ~init_root:prog.init_root ~ntxs
      sched ~stop_at:(-1)
  in
  assert (not full.crashed);
  (* the crash-free end state, run through recovery (the unfenced tail
     of the last transaction is legitimately still in flight) *)
  recover_and_check stats variant pidx prog full.statuses
    (snapshot_durable full.m) ~point:(-1) ~mask:0 ~rpoint:None ~rmask:None;
  let seen = Hashtbl.create 1024 in
  for k = 0 to full.points - 1 do
    let r =
      exec_schedule ~init_live:prog.init_live ~init_root:prog.init_root ~ntxs
        sched ~stop_at:k
    in
    assert r.crashed;
    stats.crash_points <- stats.crash_points + 1;
    let n = List.length (wpq_words r.m) in
    assert (n <= max_branch_words);
    for mask = 0 to (1 lsl n) - 1 do
      stats.crash_branches <- stats.crash_branches + 1;
      let st = crash_state r.m ~mask in
      let key = seen_key st r.statuses in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        stats.distinct_states <- stats.distinct_states + 1;
        recover_and_check stats variant pidx prog r.statuses st ~point:k ~mask
          ~rpoint:None ~rmask:None;
        if nested then begin
          let dry = boot st in
          let dclk = no_crash () in
          recover dclk dry;
          stats.recovery_runs <- stats.recovery_runs + 1;
          for rk = 0 to dclk.points - 1 do
            stats.nested_points <- stats.nested_points + 1;
            let rm = boot st in
            let clk = crash_at rk in
            (try
               recover clk rm;
               assert false
             with Crash_now -> ());
            let rn = List.length (wpq_words rm) in
            assert (rn <= max_branch_words);
            for rmask = 0 to (1 lsl rn) - 1 do
              stats.nested_branches <- stats.nested_branches + 1;
              let st2 = crash_state rm ~mask:rmask in
              let key2 = seen_key st2 r.statuses in
              if not (Hashtbl.mem seen key2) then begin
                Hashtbl.add seen key2 ();
                stats.distinct_states <- stats.distinct_states + 1;
                recover_and_check stats variant pidx prog r.statuses st2
                  ~point:k ~mask ~rpoint:(Some rk) ~rmask:(Some rmask)
              end
            done
          done
        end
      end
    done
  done

type report = { variant : Mvariant.t; stats : stats; cex : cex option }

let run ?(nested = true) variant =
  let stats = fresh_stats () in
  try
    List.iteri
      (fun pidx prog -> check_program stats variant pidx prog ~nested)
      programs;
    { variant; stats; cex = None }
  with Found c -> { variant; stats; cex = Some c }

(* {1 Counterexample printing and replay} *)

let pp_schedule ppf sched =
  let pt = ref 0 in
  List.iter
    (fun s ->
      if is_persist_point s then begin
        Format.fprintf ppf "  p%-3d %a@." !pt pp_step s;
        incr pt
      end
      else Format.fprintf ppf "       %a@." pp_step s)
    sched

(* Specs carry a "cow" family tag so pmodel_check can route them:
   VARIANT:cow:PROG:POINT:MASK[:RPOINT:RMASK] *)
let repro_string (c : cex) =
  let base =
    Printf.sprintf "%s:cow:%d:%d:%d" (Mvariant.name c.variant) c.pidx c.point
      c.mask
  in
  match (c.rpoint, c.rmask) with
  | Some rk, Some rm -> Printf.sprintf "%s:%d:%d" base rk rm
  | _ -> base

let pp_cex ppf (c : cex) =
  Format.fprintf ppf "counterexample (CoW family, variant %s):@."
    (Mvariant.name c.variant);
  Format.fprintf ppf "  program   %s@." c.prog.descr;
  if c.point < 0 then Format.fprintf ppf "  crash     none (crash-free run)@."
  else
    Format.fprintf ppf
      "  crash     before writer persist point p%d, landed-word mask 0x%x@."
      c.point c.mask;
  (match (c.rpoint, c.rmask) with
  | Some rk, Some rm ->
      Format.fprintf ppf
        "  nested    recovery crashed before its persist point %d, mask 0x%x@."
        rk rm
  | _ -> ());
  Format.fprintf ppf "  violates  %s: %s@." c.invariant c.detail;
  Format.fprintf ppf "  tx status %s@."
    (String.concat ", "
       (List.mapi
          (fun i tx -> Printf.sprintf "tx%d %s" (i + 1) (tx_name tx))
          c.prog.txs));
  Format.fprintf ppf "  replay    --repro '%s'@." (repro_string c);
  Format.fprintf ppf "  crash image:@.%a" pp_state c.crash;
  Format.fprintf ppf "  recovered image:@.%a" pp_state c.recovered;
  Format.fprintf ppf "  persist schedule:@.%a" pp_schedule
    (schedule c.variant c.prog)

let replay spec =
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  match String.split_on_char ':' spec with
  | vname :: "cow" :: pidx :: point :: mask :: rest -> (
      let ints =
        try
          Some
            ( int_of_string pidx,
              int_of_string point,
              int_of_string mask,
              match rest with
              | [] -> None
              | [ rk; rm ] -> Some (int_of_string rk, int_of_string rm)
              | _ -> raise Exit )
        with _ -> None
      in
      match (Mvariant.of_name vname, ints) with
      | None, _ -> fail "unknown variant %S" vname
      | _, None -> fail "malformed repro spec %S" spec
      | Some variant, Some (pidx, point, mask, nested) -> (
          if pidx < 0 || pidx >= List.length programs then
            fail "program index %d out of range" pidx
          else
            let prog = List.nth programs pidx in
            let sched = schedule variant prog in
            let ntxs = List.length prog.txs in
            let r =
              exec_schedule ~init_live:prog.init_live ~init_root:prog.init_root
                ~ntxs sched ~stop_at:point
            in
            if not r.crashed then fail "persist point %d out of range" point
            else
              let st = crash_state r.m ~mask in
              let st =
                match nested with
                | None -> Ok st
                | Some (rk, rmask) -> (
                    let rm = boot st in
                    let clk = crash_at rk in
                    match recover clk rm with
                    | () -> fail "recovery point %d out of range" rk
                    | exception Crash_now -> Ok (crash_state rm ~mask:rmask))
              in
              match st with
              | Error _ as e -> e
              | Ok st -> (
                  let stats = fresh_stats () in
                  let rpoint, rmask =
                    match nested with
                    | Some (rk, rm) -> (Some rk, Some rm)
                    | None -> (None, None)
                  in
                  match
                    recover_and_check stats variant pidx prog r.statuses st
                      ~point ~mask ~rpoint ~rmask
                  with
                  | () -> Ok None
                  | exception Found c -> Ok (Some c))))
  | _ -> fail "malformed CoW repro spec %S (want VARIANT:cow:PROG:POINT:MASK)" spec
