(* The writer side of the model: tiny transaction programs and their
   expansion into persist-granular step schedules.

   The expansion mirrors {!Pjournal.Journal_impl} operation by
   operation, and — crucially — drives the commit/abort/truncate tails
   from the very same {!Pjournal.Protocol} plans the implementation
   interprets, so a protocol reordering changes the checked schedule and
   the executed one together. *)

module Ms = Mstate
module Pt = Pjournal.Protocol

(* {1 Programs} *)

type op = Set of int | Alloc of int | Free of int
type txk = Commit | Abort

type tx = { ops : op list; k : txk }

type shape =
  | Seq  (* transactions run back to back on slot 0 *)
  | Interleaved
      (* exactly two transactions on disjoint blocks: tx1 runs entirely
         inside tx0's logging window, each on its own slot (two domains) *)
  | Grouped
      (* exactly two committing transactions on disjoint blocks, each on
         its own slot, committing through the group-commit epoch
         combiner: one merged flush + ONE shared fence (both commit
         points), then each member's drops and truncate.  A crash before
         the shared fence is the leader dying mid-epoch — both slots
         must roll back independently. *)

type program = {
  descr : string;
  init_live : bool array;  (* per block: allocated before the program *)
  txs : tx list;
  shape : shape;
}

let op_name = function
  | Set b -> "set " ^ Ms.block_name b
  | Alloc b -> "alloc " ^ Ms.block_name b
  | Free b -> "free " ^ Ms.block_name b

let tx_name t =
  Printf.sprintf "{%s}:%s"
    (String.concat "; " (List.map op_name t.ops))
    (match t.k with Commit -> "commit" | Abort -> "abort")

let describe p =
  let init =
    String.concat ""
      (List.filteri (fun b _ -> p.init_live.(b)) [ "A"; "B" ])
  in
  Printf.sprintf "init[%s]%s %s" init
    (match p.shape with
    | Seq -> ""
    | Interleaved -> " interleaved"
    | Grouped -> " grouped")
    (String.concat " " (List.map tx_name p.txs))

(* {1 Schedule steps} *)

type marker = M_start of int | M_commit_point of int | M_retired of int

type act =
  | St of int * Ms.value
  | Fl of int list  (* line-granular flush (the real primitive) *)
  | Flw of int list  (* word-granular flush (fault variants only) *)
  | Fence
  | Mark of marker

type step = { act : act; lbl : string }

let is_persist_point s =
  match s.act with Fl _ | Flw _ | Fence -> true | St _ | Mark _ -> false

let pp_step cfg ppf s =
  (match s.act with
  | St (w, v) ->
      Format.fprintf ppf "st   %-18s <- %a" (Ms.word_name cfg w) Ms.pp_value v
  | Fl ws ->
      Format.fprintf ppf "fl   %s"
        (String.concat "," (List.map (Ms.word_name cfg) ws))
  | Flw ws ->
      Format.fprintf ppf "flw  %s"
        (String.concat "," (List.map (Ms.word_name cfg) ws))
  | Fence -> Format.fprintf ppf "fence"
  | Mark (M_start u) -> Format.fprintf ppf "-- tx%d begins" u
  | Mark (M_commit_point u) -> Format.fprintf ppf "-- tx%d commit point" u
  | Mark (M_retired u) -> Format.fprintf ppf "-- tx%d retired" u);
  if s.lbl <> "" then Format.fprintf ppf "   [%s]" s.lbl

(* {1 Expansion} *)

type gctx = {
  cfg : Ms.cfg;
  variant : Mvariant.t;
  mutable wid : int;
  gen : int array;  (* volatile heap generation per block *)
  code : int array;  (* volatile table code per block (0 / order+1) *)
  held : bool array;  (* block owned by the buddy (not reusable) *)
}

type slot_shadow = {
  s : int;
  mutable epoch : int;
  mutable cursor : int;
  mutable count : int;
  mutable ndrops : int;
  mutable drops : (int * int) list;  (* (blk, order), newest first *)
  mutable entries : sentry list;  (* newest first *)
  mutable marks : int list;
  mutable targets : int list;
  mutable logged : int list;
  mutable alloced : int list;
}

and sentry =
  | E_data of { blk : int; old_gen : int }
  | E_alloc of { blk : int; order : int }

let fresh_wid ctx =
  ctx.wid <- ctx.wid + 1;
  ctx.wid

let tab_value cfg code w =
  if cfg.Ms.table_split then Ms.Tab (code.(w - Ms.table_base_w cfg), 0)
  else Ms.Tab (code.(0), code.(1))

let new_shadow cfg s =
  {
    s;
    epoch = 0;
    cursor = Ms.entry_base cfg s;
    count = 0;
    ndrops = 0;
    drops = [];
    entries = [];
    marks = [];
    targets = [];
    logged = [];
    alloced = [];
  }

let reset_tx_shadow cfg sh =
  sh.cursor <- Ms.entry_base cfg sh.s;
  sh.count <- 0;
  sh.ndrops <- 0;
  sh.drops <- [];
  sh.entries <- [];
  sh.marks <- [];
  sh.targets <- [];
  sh.logged <- [];
  sh.alloced <- []

(* Seal an entry: body stores, header store, terminator store, then one
   flush + fence over entry and terminator together (the checksummed
   tail).  The Term_before_body variant narrows the flush to header and
   terminator only. *)
let seal ctx buf sh ~lbl words ~term_w =
  let push act = buf := { act; lbl } :: !buf in
  let hdr_w = fst (List.hd words) in
  List.iter (fun (w, v) -> push (St (w, v))) (List.tl words);
  push (St (fst (List.hd words), snd (List.hd words)));
  push (St (term_w, Int 0));
  (match ctx.variant with
  | Mvariant.Term_before_body -> push (Flw [ hdr_w; term_w ])
  | _ -> push (Fl (List.map fst words @ [ term_w ])));
  push Fence;
  sh.count <- sh.count + 1

let gen_op ctx buf sh ~uid op =
  let cfg = ctx.cfg in
  let push ?(lbl = "") act = buf := { act; lbl } :: !buf in
  match op with
  | Set blk ->
      let covered = List.mem blk sh.logged || List.mem blk sh.alloced in
      if not covered then begin
        let c = sh.cursor in
        assert (c + 3 < Ms.entry_limit cfg sh.s);
        let old_gen = ctx.gen.(blk) in
        let b1 = Ms.Eword { wid = fresh_wid ctx; pay = Ms.Undo { blk; old_gen } } in
        let b2 = Ms.Eword { wid = fresh_wid ctx; pay = Ms.Pad 0 } in
        let hdr =
          Ms.Ehdr
            {
              kind = Ms.K_data;
              epoch = sh.epoch;
              body = [ (c + 1, b1); (c + 2, b2) ];
            }
        in
        seal ctx buf sh
          ~lbl:(Printf.sprintf "seal data %s" (Ms.block_name blk))
          [ (c, hdr); (c + 1, b1); (c + 2, b2) ]
          ~term_w:(c + 3);
        sh.cursor <- c + 3;
        sh.entries <- E_data { blk; old_gen } :: sh.entries;
        sh.logged <- blk :: sh.logged
      end;
      push ~lbl:(Printf.sprintf "store %s" (Ms.block_name blk))
        (St (Ms.heap_w cfg blk, Ms.Gen uid));
      if not (List.mem (Ms.heap_w cfg blk) sh.targets) then
        sh.targets <- Ms.heap_w cfg blk :: sh.targets;
      ctx.gen.(blk) <- uid
  | Alloc blk ->
      assert (not ctx.held.(blk));
      let order = Ms.order_of_block blk in
      let c = sh.cursor in
      assert (c + 2 < Ms.entry_limit cfg sh.s);
      let b1 = Ms.Eword { wid = fresh_wid ctx; pay = Ms.Alloc_of { blk; order } } in
      let hdr =
        Ms.Ehdr { kind = Ms.K_alloc; epoch = sh.epoch; body = [ (c + 1, b1) ] }
      in
      seal ctx buf sh
        ~lbl:(Printf.sprintf "seal alloc %s" (Ms.block_name blk))
        [ (c, hdr); (c + 1, b1) ]
        ~term_w:(c + 2);
      sh.cursor <- c + 2;
      sh.entries <- E_alloc { blk; order } :: sh.entries;
      sh.alloced <- blk :: sh.alloced;
      (* mark-after-seal: the dirty table mark, durable only under the
         commit fence *)
      ctx.held.(blk) <- true;
      ctx.code.(blk) <- order + 1;
      push ~lbl:(Printf.sprintf "mark %s" (Ms.block_name blk))
        (St (Ms.table_w cfg blk, tab_value cfg ctx.code (Ms.table_w cfg blk)));
      if not (List.mem (Ms.table_w cfg blk) sh.marks) then
        sh.marks <- Ms.table_w cfg blk :: sh.marks
  | Free blk ->
      let order = Ms.order_of_block blk in
      let d = sh.ndrops + 1 in
      assert (d <= Ms.drop_capacity);
      let bw = Ms.drop_body_w cfg sh.s d and hw = Ms.drop_hdr_w cfg sh.s d in
      let body = Ms.Eword { wid = fresh_wid ctx; pay = Ms.Drop_of { blk; order } } in
      let lbl = Printf.sprintf "drop %s" (Ms.block_name blk) in
      push ~lbl (St (bw, body));
      push ~lbl
        (St (hw, Ms.Ehdr { kind = Ms.K_drop; epoch = sh.epoch; body = [ (bw, body) ] }));
      sh.ndrops <- d;
      sh.drops <- (blk, order) :: sh.drops

(* The truncate tail, from {!Pjournal.Protocol.truncate_plan} — except
   under Truncate_before_clears, which swaps the header persist in front
   of the clear persist (the bug the plan's ordering exists to rule
   out). *)
let truncate_steps ctx buf sh ~clears ~retired =
  let cfg = ctx.cfg in
  let push ?(lbl = "") act = buf := { act; lbl } :: !buf in
  let plan =
    match ctx.variant with
    | Mvariant.Truncate_before_clears when clears <> [] ->
        [ Pt.Reset_header; Pt.Persist_clears ]
    | _ -> Pt.truncate_plan ~spills:false ~clears:(clears <> [])
  in
  List.iter
    (fun ph ->
      match ph with
      | Pt.Persist_clears ->
          push ~lbl:"persist clears" (Fl (List.sort_uniq compare clears));
          push ~lbl:"persist clears" Fence
      | Pt.Reset_header ->
          sh.epoch <- sh.epoch + 1;
          let lbl = "truncate" in
          push ~lbl (St (Ms.count_w cfg sh.s, Int 0));
          push ~lbl (St (Ms.drops_w cfg sh.s, Int 0));
          push ~lbl (St (Ms.spill_w cfg sh.s, Int 0));
          push ~lbl (St (Ms.epoch_w cfg sh.s, Int sh.epoch));
          push ~lbl (St (Ms.entry_base cfg sh.s, Int 0));
          push ~lbl (St (Ms.phase_w cfg sh.s, Int 0));
          push ~lbl (Fl [ Ms.phase_w cfg sh.s; Ms.entry_base cfg sh.s ]);
          push ~lbl Fence;
          (match retired with
          | Some uid -> push (Mark (M_retired uid))
          | None -> ())
      | _ -> assert false)
    plan

let commit_steps ctx buf sh ~uid =
  let cfg = ctx.cfg in
  let push ?(lbl = "") act = buf := { act; lbl } :: !buf in
  if sh.count = 0 && sh.ndrops = 0 then begin
    (* nothing durable to do; the journal short-circuits *)
    push (Mark (M_commit_point uid));
    push (Mark (M_retired uid))
  end
  else begin
    let clears = ref [] in
    List.iter
      (fun ph ->
        match ph with
        | Pt.Flush_targets ->
            if sh.targets <> [] then
              push ~lbl:"flush targets" (Fl (List.sort_uniq compare sh.targets))
        | Pt.Flush_marks ->
            if sh.marks <> [] then
              push ~lbl:"flush marks" (Fl (List.sort_uniq compare sh.marks))
        | Pt.Persist_drop_area ->
            (* drop records only — the advisory header counts stay
               volatile (zeroed durably at truncation), exactly like the
               implementation *)
            let ws = ref [] in
            for d = 1 to sh.ndrops do
              ws := Ms.drop_hdr_w cfg sh.s d :: Ms.drop_body_w cfg sh.s d :: !ws
            done;
            push ~lbl:"flush drop area" (Fl (List.sort compare !ws))
        | Pt.Commit_fence ->
            push ~lbl:"commit fence" Fence;
            push (Mark (M_commit_point uid))
        | Pt.Apply_drops ->
            List.iter
              (fun (blk, _order) ->
                ctx.code.(blk) <- 0;
                ctx.held.(blk) <- false;
                push ~lbl:(Printf.sprintf "apply drop %s" (Ms.block_name blk))
                  (St
                     ( Ms.table_w cfg blk,
                       tab_value cfg ctx.code (Ms.table_w cfg blk) ));
                clears := Ms.table_w cfg blk :: !clears)
              (List.rev sh.drops)
        | _ -> assert false)
      (Pt.commit_plan ~ndrops:sh.ndrops);
    truncate_steps ctx buf sh ~clears:!clears ~retired:(Some uid)
  end;
  reset_tx_shadow cfg sh

(* Group commit, from {!Pjournal.Protocol.group_commit_plan}: the epoch
   leader's merged flush covers every member's targets, marks and drop
   records, one shared fence is every member's commit point, then each
   member applies its drops and truncates its own slot.  The completion
   steps serialize what runs concurrently on the real pool, but every
   persist still crashes word-granularly, and a crash before the shared
   fence is exactly the leader dying mid-epoch.  The Partial_merge fault
   variant drops the second member's words from the merged flush — the
   combiner bug the epoch batch exists to rule out. *)
let group_commit_steps ctx buf shs =
  let cfg = ctx.cfg in
  let push ?(lbl = "") act = buf := { act; lbl } :: !buf in
  let clears = Array.make (List.length shs) [] in
  List.iter
    (fun ph ->
      match ph with
      | Pt.Merge_runs ->
          let words (sh, _uid) =
            let ws = ref (sh.targets @ sh.marks) in
            for d = 1 to sh.ndrops do
              ws := Ms.drop_hdr_w cfg sh.s d :: Ms.drop_body_w cfg sh.s d :: !ws
            done;
            !ws
          in
          let merged =
            match ctx.variant with
            | Mvariant.Partial_merge -> words (List.hd shs)
            | _ -> List.concat_map words shs
          in
          if merged <> [] then
            push ~lbl:"merge runs" (Fl (List.sort_uniq compare merged))
      | Pt.Epoch_fence ->
          push ~lbl:"epoch fence" Fence;
          List.iter (fun (_sh, uid) -> push (Mark (M_commit_point uid))) shs
      | Pt.Apply_drops ->
          List.iteri
            (fun i (sh, _uid) ->
              List.iter
                (fun (blk, _order) ->
                  ctx.code.(blk) <- 0;
                  ctx.held.(blk) <- false;
                  push
                    ~lbl:(Printf.sprintf "apply drop %s" (Ms.block_name blk))
                    (St
                       ( Ms.table_w cfg blk,
                         tab_value cfg ctx.code (Ms.table_w cfg blk) ));
                  clears.(i) <- Ms.table_w cfg blk :: clears.(i))
                (List.rev sh.drops))
            shs
      | _ -> assert false)
    Pt.group_commit_plan;
  List.iteri
    (fun i (sh, uid) ->
      truncate_steps ctx buf sh ~clears:clears.(i) ~retired:(Some uid);
      reset_tx_shadow cfg sh)
    shs

let abort_steps ctx buf sh =
  let cfg = ctx.cfg in
  let push ?(lbl = "") act = buf := { act; lbl } :: !buf in
  if sh.count = 0 then truncate_steps ctx buf sh ~clears:[] ~retired:None
  else begin
    let clears = ref [] in
    List.iter
      (fun ph ->
        match ph with
        | Pt.Restore_data ->
            List.iter
              (fun e ->
                match e with
                | E_data { blk; old_gen } ->
                    push
                      ~lbl:(Printf.sprintf "restore %s" (Ms.block_name blk))
                      (St (Ms.heap_w cfg blk, Ms.Gen old_gen));
                    push
                      ~lbl:(Printf.sprintf "restore %s" (Ms.block_name blk))
                      (Fl [ Ms.heap_w cfg blk ]);
                    ctx.gen.(blk) <- old_gen
                | E_alloc _ -> ())
              sh.entries
        | Pt.Restore_fence -> push ~lbl:"restore fence" Fence
        | Pt.Revert_allocs ->
            List.iter
              (fun e ->
                match e with
                | E_alloc { blk; order = _ } ->
                    ctx.code.(blk) <- 0;
                    ctx.held.(blk) <- false;
                    push
                      ~lbl:(Printf.sprintf "revert alloc %s" (Ms.block_name blk))
                      (St
                         ( Ms.table_w cfg blk,
                           tab_value cfg ctx.code (Ms.table_w cfg blk) ));
                    clears := Ms.table_w cfg blk :: !clears
                | E_data _ -> ())
              sh.entries
        | _ -> assert false)
      (Pt.abort_plan ~entries:sh.count);
    truncate_steps ctx buf sh ~clears:!clears ~retired:None
  end;
  reset_tx_shadow cfg sh

(* Expand one transaction into (logging steps, completion steps). *)
let gen_tx_parts ctx sh ~uid tx =
  let buf = ref [] in
  buf := { act = Mark (M_start uid); lbl = "" } :: !buf;
  List.iter (gen_op ctx buf sh ~uid) tx.ops;
  let logging = List.rev !buf in
  let buf = ref [] in
  (match tx.k with
  | Commit -> commit_steps ctx buf sh ~uid
  | Abort -> abort_steps ctx buf sh);
  (logging, List.rev !buf)

let schedule cfg variant (p : program) : step list =
  let ctx =
    {
      cfg;
      variant;
      wid = 0;
      gen = Array.make Ms.nblocks 0;
      code =
        Array.init Ms.nblocks (fun b ->
            if p.init_live.(b) then Ms.order_of_block b + 1 else 0);
      held = Array.copy p.init_live;
    }
  in
  match p.shape with
  | Seq ->
      let sh = new_shadow cfg 0 in
      List.concat
        (List.mapi
           (fun i tx ->
             let l, e = gen_tx_parts ctx sh ~uid:(i + 1) tx in
             l @ e)
           p.txs)
  | Interleaved -> (
      match p.txs with
      | [ t0; t1 ] ->
          assert (cfg.Ms.nslots >= 2);
          let sh0 = new_shadow cfg 0 and sh1 = new_shadow cfg 1 in
          let l0, e0 = gen_tx_parts ctx sh0 ~uid:1 t0 in
          let l1, e1 = gen_tx_parts ctx sh1 ~uid:2 t1 in
          l0 @ l1 @ e1 @ e0
      | _ -> invalid_arg "Mjournal.schedule: interleaved needs two txs")
  | Grouped -> (
      match p.txs with
      | [ t0; t1 ] ->
          assert (cfg.Ms.nslots >= 2);
          assert (t0.k = Commit && t1.k = Commit);
          let sh0 = new_shadow cfg 0 and sh1 = new_shadow cfg 1 in
          let log sh uid tx =
            let buf = ref [ { act = Mark (M_start uid); lbl = "" } ] in
            List.iter (gen_op ctx buf sh ~uid) tx.ops;
            List.rev !buf
          in
          let l0 = log sh0 1 t0 in
          let l1 = log sh1 2 t1 in
          let buf = ref [] in
          group_commit_steps ctx buf [ (sh0, 1); (sh1, 2) ];
          l0 @ l1 @ List.rev !buf
      | _ -> invalid_arg "Mjournal.schedule: grouped needs two txs")

(* {1 Program enumeration} *)

(* Valid op sequences of length <= [maxlen] from a given initial
   liveness: a block can be written or freed while live-and-not-freed,
   and allocated only while the buddy does not hold it (a block freed in
   the same transaction stays held until commit). *)
let valid_seqs ~init_live ~maxlen =
  let rec go live held freed len =
    if len = 0 then [ [] ]
    else
      let choices = ref [] in
      for b = Ms.nblocks - 1 downto 0 do
        if live.(b) && not freed.(b) then begin
          choices := (Set b, `Same) :: !choices;
          choices := (Free b, `Freed b) :: !choices
        end;
        if not held.(b) then choices := (Alloc b, `Alloced b) :: !choices
      done;
      [] :: (* stopping here is a valid (shorter) sequence *)
      List.concat_map
        (fun (op, eff) ->
          let live = Array.copy live
          and held = Array.copy held
          and freed = Array.copy freed in
          (match eff with
          | `Same -> ()
          | `Freed b -> freed.(b) <- true
          | `Alloced b ->
              live.(b) <- true;
              held.(b) <- true);
          List.map (fun rest -> op :: rest) (go live held freed (len - 1)))
        !choices
  in
  List.filter (fun s -> s <> []) (go init_live (Array.copy init_live) (Array.make Ms.nblocks false) maxlen)

let seq_programs () =
  let inits = [ [| true; false |]; [| true; true |] ] in
  let singles =
    List.concat_map
      (fun init_live ->
        List.concat_map
          (fun ops ->
            List.map
              (fun k ->
                let p = { descr = ""; init_live; txs = [ { ops; k } ]; shape = Seq } in
                { p with descr = describe p })
              [ Commit; Abort ])
          (valid_seqs ~init_live ~maxlen:2))
      inits
  in
  (* Two sequential transactions: a notable first tx, then every
     single-op continuation — this is what exercises slot reuse across
     an epoch bump (stale sealed bytes beyond the new terminator). *)
  let init_live = [| true; false |] in
  let firsts =
    [
      { ops = [ Set 0 ]; k = Commit };
      { ops = [ Alloc 1 ]; k = Commit };
      { ops = [ Free 0 ]; k = Commit };
      { ops = [ Set 0 ]; k = Abort };
    ]
  in
  let pairs =
    List.concat_map
      (fun t0 ->
        (* liveness after t0 *)
        let live = Array.copy init_live in
        (match t0.k with
        | Commit ->
            List.iter
              (function
                | Alloc b -> live.(b) <- true
                | Free b -> live.(b) <- false
                | Set _ -> ())
              t0.ops
        | Abort -> ());
        List.concat_map
          (fun ops ->
            List.map
              (fun k ->
                let p =
                  {
                    descr = "";
                    init_live;
                    txs = [ t0; { ops; k } ];
                    shape = Seq;
                  }
                in
                { p with descr = describe p })
              [ Commit; Abort ])
          (valid_seqs ~init_live:live ~maxlen:1))
      firsts
  in
  singles @ pairs

let interleaved_programs () =
  let mk init_live t0 t1 =
    let p = { descr = ""; init_live; txs = [ t0; t1 ]; shape = Interleaved } in
    { p with descr = describe p }
  in
  [
    mk [| true; true |] { ops = [ Set 0 ]; k = Commit } { ops = [ Set 1 ]; k = Commit };
    mk [| true; true |] { ops = [ Set 0 ]; k = Abort } { ops = [ Free 1 ]; k = Commit };
    mk [| true; false |] { ops = [ Set 0 ]; k = Commit } { ops = [ Alloc 1 ]; k = Commit };
    mk [| true; true |] { ops = [ Free 0 ]; k = Commit } { ops = [ Free 1 ]; k = Commit };
  ]

(* Two transactions committing through the epoch combiner, on disjoint
   blocks (one slot each).  The pairs cover merged flushes of targets
   only, targets + drop records, drops on both sides, mark-after-seal
   under the shared fence, and the fresh-allocation optimization whose
   target rides the merged run unlogged. *)
let grouped_programs () =
  let mk init_live ops0 ops1 =
    let p =
      {
        descr = "";
        init_live;
        txs = [ { ops = ops0; k = Commit }; { ops = ops1; k = Commit } ];
        shape = Grouped;
      }
    in
    { p with descr = describe p }
  in
  [
    mk [| true; true |] [ Set 0 ] [ Set 1 ];
    mk [| true; true |] [ Set 0 ] [ Free 1 ];
    mk [| true; true |] [ Free 0 ] [ Free 1 ];
    mk [| true; false |] [ Set 0 ] [ Alloc 1 ];
    mk [| true; false |] [ Alloc 1; Set 1 ] [ Free 0 ];
  ]

let programs cfg =
  if cfg.Ms.nslots >= 2 then interleaved_programs () @ grouped_programs ()
  else seq_programs ()
