(* Modeled recovery: a step-for-step mirror of {!Pjournal.Recovery}
   over the abstract machine, instrumented with a crash clock so the
   checker can also crash recovery at each of ITS persist points
   (depth-1 nesting) and re-run it.

   Every flush and every fence ticks the clock first — exactly the
   device's crash points.  Checksum verification is structural: an entry
   header is valid iff its recorded epoch equals the slot's durable
   epoch word and every recorded body word reads back identically
   (what an epoch-salted CRC certifies). *)

module Ms = Mstate

(* {1 Crash clock} *)

type clock = { mutable points : int; mutable stop_at : int }

exception Crash_now

let no_crash () = { points = 0; stop_at = -1 }
let crash_at k = { points = 0; stop_at = k }

let tick c =
  if c.stop_at >= 0 && c.points = c.stop_at then raise Crash_now;
  c.points <- c.points + 1

(* {1 Reading the image} *)

let as_int = function Ms.Int n -> n | _ -> -1

type entry =
  | R_data of { blk : int; old_gen : int }
  | R_alloc of { blk : int; order : int }

(* Walk the sealed entries to the tail terminator; returns the visited
   prefix (oldest first) and whether the stop was torn (anything but a
   clean terminator). *)
let walk m cfg s ~epoch =
  let limit = Ms.entry_limit cfg s in
  let rec go c acc =
    if c >= limit then (List.rev acc, true)
    else
      match Ms.read m c with
      | Ms.Int 0 -> (List.rev acc, false)
      | Ms.Ehdr { kind = (Ms.K_data | Ms.K_alloc) as kind; epoch = e; body }
        when e = epoch && List.for_all (fun (w, v) -> Ms.read m w = v) body -> (
          let entry =
            match (kind, body) with
            | Ms.K_data, (_, Ms.Eword { pay = Ms.Undo { blk; old_gen }; _ }) :: _
              ->
                Some (R_data { blk; old_gen })
            | Ms.K_alloc, [ (_, Ms.Eword { pay = Ms.Alloc_of { blk; order }; _ }) ]
              ->
                Some (R_alloc { blk; order })
            | _ -> None
          in
          match entry with
          | Some en -> go (c + 1 + List.length body) (en :: acc)
          | None -> (List.rev acc, true))
      | _ -> (List.rev acc, true)
  in
  go (Ms.entry_base cfg s) []

let read_drop m cfg s ~epoch d =
  match Ms.read m (Ms.drop_hdr_w cfg s d) with
  | Ms.Ehdr { kind = Ms.K_drop; epoch = e; body = [ (bw, bv) ] }
    when e = epoch && Ms.read m bw = bv -> (
      match bv with
      | Ms.Eword { pay = Ms.Drop_of { blk; order }; _ } -> Some (blk, order)
      | _ -> None)
  | _ -> None

(* Drop slots consed downward; the scan stops at the first slot that is
   not a verifying drop.  The advisory count is never consulted. *)
let scan_drops m cfg s ~epoch =
  let rec go d acc =
    if d > Ms.drop_capacity then List.rev acc
    else
      match read_drop m cfg s ~epoch d with
      | Some p -> go (d + 1) (p :: acc)
      | None -> List.rev acc
  in
  go 1 []

(* {1 One-shot table persists} *)

let table_code m cfg blk =
  Ms.tab_get (Ms.read m (Ms.table_w cfg blk)) (Ms.table_sub cfg blk)

let set_table clock m cfg blk code =
  let w = Ms.table_w cfg blk in
  Ms.store m w (Ms.tab_set (Ms.read m w) (Ms.table_sub cfg blk) code);
  tick clock;
  Ms.flush_words m [ w ];
  tick clock;
  Ms.fence m

let clear_if_live clock m cfg blk =
  if table_code m cfg blk > 0 then begin
    set_table clock m cfg blk 0;
    true
  end
  else false

(* Mirror of {!Pjournal.Recovery.remark_drops}: re-mark cleared drop
   targets when rolling back, or when the clears only partially landed
   (mixed live/cleared evidence of an interrupted clear flush);
   all-cleared with no walkable entries keeps the committed outcome. *)
let remark_drops clock m cfg ~slots ~rollback =
  let cleared = List.filter (fun (blk, _) -> table_code m cfg blk = 0) slots in
  let any_live = List.length cleared < List.length slots in
  if cleared = [] || not (rollback || any_live) then 0
  else begin
    List.iter
      (fun (blk, order) -> set_table clock m cfg blk (order + 1))
      cleared;
    List.length cleared
  end

(* {1 Truncate} *)

(* Mirror of {!Pjournal.Recovery.truncate}: zero the bookkeeping fields,
   bump the epoch, rewrite the terminator; one batched flush+fence.
   From phase [Committing] ([ordered]) the log invalidation is persisted
   strictly before the phase word returns to 0. *)
let truncate ?(ordered = false) clock m cfg s =
  let epoch = as_int (Ms.read m (Ms.epoch_w cfg s)) in
  Ms.store m (Ms.count_w cfg s) (Ms.Int 0);
  Ms.store m (Ms.drops_w cfg s) (Ms.Int 0);
  Ms.store m (Ms.spill_w cfg s) (Ms.Int 0);
  Ms.store m (Ms.epoch_w cfg s) (Ms.Int (epoch + 1));
  Ms.store m (Ms.entry_base cfg s) (Ms.Int 0);
  if ordered then begin
    tick clock;
    Ms.flush_words m [ Ms.count_w cfg s; Ms.entry_base cfg s ];
    tick clock;
    Ms.fence m;
    Ms.store m (Ms.phase_w cfg s) (Ms.Int 0);
    tick clock;
    Ms.flush_words m [ Ms.phase_w cfg s ];
    tick clock;
    Ms.fence m
  end
  else begin
    Ms.store m (Ms.phase_w cfg s) (Ms.Int 0);
    tick clock;
    Ms.flush_words m [ Ms.phase_w cfg s; Ms.entry_base cfg s ];
    tick clock;
    Ms.fence m
  end

(* {1 Slot recovery} *)

let rec firstn n = function
  | x :: tl when n > 0 -> x :: firstn (n - 1) tl
  | _ -> []

let recover_slot ?(variant = Mvariant.Correct) clock m s =
  let cfg = m.Ms.cfg in
  let phase = as_int (Ms.read m (Ms.phase_w cfg s)) in
  let advisory = as_int (Ms.read m (Ms.count_w cfg s)) in
  let ndrops_f = as_int (Ms.read m (Ms.drops_w cfg s)) in
  let epoch = as_int (Ms.read m (Ms.epoch_w cfg s)) in
  if phase = 1 then begin
    (* durably committed: finish the deferred frees, then retire *)
    for d = 1 to ndrops_f do
      match read_drop m cfg s ~epoch d with
      | Some (blk, _) -> ignore (clear_if_live clock m cfg blk)
      | None -> ()
    done;
    truncate ~ordered:true clock m cfg s
  end
  else begin
    let entries, torn = walk m cfg s ~epoch in
    let undo =
      match variant with
      | Mvariant.Trust_advisory ->
          (* the bug under test: believe the advisory count *)
          firstn (max 0 advisory) entries
      | _ -> entries
    in
    if undo <> [] then begin
      (* in-flight transaction: roll back newest-first *)
      ignore
        (remark_drops clock m cfg ~slots:(scan_drops m cfg s ~epoch)
           ~rollback:true);
      let newest_first = List.rev undo in
      List.iter
        (fun e ->
          match e with
          | R_data { blk; old_gen } ->
              Ms.store m (Ms.heap_w cfg blk) (Ms.Gen old_gen);
              tick clock;
              Ms.flush_words m [ Ms.heap_w cfg blk ]
          | R_alloc _ -> ())
        newest_first;
      tick clock;
      Ms.fence m;
      List.iter
        (fun e ->
          match e with
          | R_alloc { blk; order = _ } ->
              ignore (clear_if_live clock m cfg blk)
          | R_data _ -> ())
        newest_first;
      truncate clock m cfg s
    end
    else begin
      (* no durable entries: scrub residue *)
      let drops = scan_drops m cfg s ~epoch in
      ignore (remark_drops clock m cfg ~slots:drops ~rollback:false);
      if
        torn || phase <> 0 || advisory <> 0 || ndrops_f <> 0 || drops <> []
        || (variant = Mvariant.Trust_advisory && entries <> [])
      then truncate clock m cfg s
    end
  end

let recover ?variant clock m =
  for s = 0 to m.Ms.cfg.Ms.nslots - 1 do
    recover_slot ?variant clock m s
  done
