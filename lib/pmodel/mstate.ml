(* Abstract machine state for the crash model checker.

   Memory is an array of WORDS (one word = one 8-byte atomic unit of the
   media), grouped into LINES of 8 words (one line = one 64-byte flush
   unit).  The machine mirrors {!Pmem.Device} exactly at that
   granularity:

   - a store updates the volatile [view] and dirties its line;
   - a flush snapshots every changed word of a dirty line into the
     write-pending queue [wpq];
   - a fence drains the whole [wpq] to [durable];
   - a crash keeps [durable] plus an arbitrary SUBSET of the pending
     words — each 8-byte word of an in-flight line lands independently
     (this is the union of the device's per-line survival and per-word
     torn-write outcomes, i.e. every torn-word outcome of the in-flight
     line set).

   Words hold structured values rather than bytes, so checksums need no
   bit-level model: a sealed entry header records the exact body words
   its CRC covered, and verification is "every recorded word still reads
   back identically" — precisely what an epoch-salted CRC certifies
   (modulo collisions, which the model ignores by construction). *)

type cfg = { nslots : int; table_split : bool }
(* [table_split]: the two heap blocks' allocation-table bytes live in
   different 8-byte words (they tear independently) or share one word
   (they land atomically together).  Both geometries occur in a real
   pool; the checker enumerates both. *)

let words_per_line = 8
let slot_words = 32 (* 4 lines: header / entries / entries / drop area *)
let nblocks = 2

(* Block identities: 0 = "A", 1 = "B".  Fixed buddy orders so table
   marks are distinguishable. *)
let order_of_block b = 3 - b
let block_name = function 0 -> "A" | 1 -> "B" | _ -> "?"

(* {1 Word layout} *)

let slot_base cfg i =
  assert (i >= 0 && i < cfg.nslots);
  i * slot_words

let phase_w cfg s = slot_base cfg s
let count_w cfg s = slot_base cfg s + 1
let drops_w cfg s = slot_base cfg s + 2
let spill_w cfg s = slot_base cfg s + 3
let epoch_w cfg s = slot_base cfg s + 4
let entry_base cfg s = slot_base cfg s + 8
let entry_limit cfg s = slot_base cfg s + 24
let drop_capacity = 2

(* Drop slot [d] (1-based) is consed downward from the slot end, two
   words each: header then body. *)
let drop_hdr_w cfg s d = slot_base cfg s + slot_words - (2 * d)
let drop_body_w cfg s d = drop_hdr_w cfg s d + 1
let table_base_w cfg = cfg.nslots * slot_words

let table_w cfg b =
  table_base_w cfg + if cfg.table_split then b else 0

let table_sub cfg b = if cfg.table_split then 0 else b
let heap_base_w cfg = table_base_w cfg + words_per_line
let heap_w cfg b = heap_base_w cfg + (words_per_line * b)
let nwords cfg = heap_base_w cfg + (words_per_line * nblocks)

let word_name cfg w =
  if w >= heap_base_w cfg then
    let b = (w - heap_base_w cfg) / words_per_line in
    if w = heap_w cfg b then Printf.sprintf "heap.%s" (block_name b)
    else Printf.sprintf "heap.pad%d" w
  else if w >= table_base_w cfg then
    Printf.sprintf "table[%d]" (w - table_base_w cfg)
  else
    let s = w / slot_words and o = w mod slot_words in
    match o with
    | 0 -> Printf.sprintf "slot%d.phase" s
    | 1 -> Printf.sprintf "slot%d.count" s
    | 2 -> Printf.sprintf "slot%d.drops" s
    | 3 -> Printf.sprintf "slot%d.spill" s
    | 4 -> Printf.sprintf "slot%d.epoch" s
    | o when o >= 8 && o < 24 -> Printf.sprintf "slot%d.entry[%d]" s (o - 8)
    | o when o >= 24 -> Printf.sprintf "slot%d.droparea[%d]" s (o - 24)
    | o -> Printf.sprintf "slot%d.hdr[%d]" s o

(* {1 Values} *)

type kind = K_data | K_alloc | K_drop

type payload =
  | Undo of { blk : int; old_gen : int }  (* data entry: pre-image *)
  | Pad of int  (* second body word of a data entry (torn-body probe) *)
  | Alloc_of of { blk : int; order : int }
  | Drop_of of { blk : int; order : int }

type value =
  | Int of int
  | Gen of int  (* heap word: data generation (0 = initial contents) *)
  | Tab of int * int  (* table word: per-sub-slot 0 = free, order+1 = live *)
  | Ehdr of { kind : kind; epoch : int; body : (int * value) list }
      (* sealed entry header; [body] records (word, value) pairs the
         checksum covered — verification re-reads them *)
  | Eword of { wid : int; pay : payload }
      (* entry body word; [wid] is a globally unique write id, so two
         seals of the same logical content never alias *)

let kind_name = function
  | K_data -> "data"
  | K_alloc -> "alloc"
  | K_drop -> "drop"

let pp_value ppf = function
  | Int n -> Format.fprintf ppf "%d" n
  | Gen g -> Format.fprintf ppf "gen:%d" g
  | Tab (a, b) -> Format.fprintf ppf "tab(%d,%d)" a b
  | Ehdr { kind; epoch; body } ->
      Format.fprintf ppf "hdr(%s,e%d,%dw)" (kind_name kind) epoch
        (List.length body)
  | Eword { wid; pay = _ } -> Format.fprintf ppf "body#%d" wid

let tab_get v sub =
  match v with
  | Tab (a, b) -> if sub = 0 then a else b
  | Int 0 -> 0 (* formatted-but-never-marked table word *)
  | _ -> -1 (* not a table value: structurally corrupt *)

let tab_set v sub code =
  let a, b = match v with Tab (a, b) -> (a, b) | _ -> (0, 0) in
  if sub = 0 then Tab (code, b) else Tab (a, code)

(* {1 The machine} *)

type mem = {
  cfg : cfg;
  durable : value array;
  view : value array;  (* what reads observe (durable + cached stores) *)
  line_dirty : bool array;
  wpq : (int, value) Hashtbl.t;  (* word -> flushed-but-unfenced snapshot *)
}

type state = value array
(* A durable image — the unit of crash-branch deduplication. *)

let initial_state cfg ~init_live =
  let d = Array.make (nwords cfg) (Int 0) in
  for b = 0 to nblocks - 1 do
    d.(heap_w cfg b) <- Gen 0;
    if init_live.(b) then
      d.(table_w cfg b) <-
        tab_set d.(table_w cfg b) (table_sub cfg b) (order_of_block b + 1)
  done;
  (* make every table word a [Tab] so stores compose predictably *)
  for b = 0 to nblocks - 1 do
    (match d.(table_w cfg b) with
    | Tab _ -> ()
    | v -> d.(table_w cfg b) <- tab_set v (table_sub cfg b) (tab_get v (table_sub cfg b)))
  done;
  d

let boot cfg (s : state) =
  {
    cfg;
    durable = Array.copy s;
    view = Array.copy s;
    line_dirty = Array.make ((nwords cfg + words_per_line - 1) / words_per_line) false;
    wpq = Hashtbl.create 16;
  }

let read m w = m.view.(w)

let store m w v =
  m.view.(w) <- v;
  m.line_dirty.(w / words_per_line) <- true

(* Flush the lines containing [ws]: whole-line capture, exactly like the
   device — every word of a dirty line is snapshotted, including words
   the caller did not mean to persist yet.  Words whose view equals
   durable are dropped from the queue (landing them is a no-op). *)
let flush_words m ws =
  let lines = List.sort_uniq compare (List.map (fun w -> w / words_per_line) ws) in
  List.iter
    (fun l ->
      if m.line_dirty.(l) then begin
        let lo = l * words_per_line in
        let hi = min (lo + words_per_line) (Array.length m.view) in
        for w = lo to hi - 1 do
          if m.view.(w) <> m.durable.(w) then Hashtbl.replace m.wpq w m.view.(w)
          else Hashtbl.remove m.wpq w
        done;
        m.line_dirty.(l) <- false
      end)
    lines

(* Word-granular flush: capture ONLY the listed words, leaving the rest
   of their (still dirty) lines out of the queue.  Never used by the
   correct protocol — this is how the Term_before_body fault variant
   models an entry whose body lines are missing from the seal's flush
   range (the tiny geometry packs what would be distinct lines of a real
   slot into one). *)
let flush_words_only m ws =
  List.iter
    (fun w ->
      if m.view.(w) <> m.durable.(w) then Hashtbl.replace m.wpq w m.view.(w)
      else Hashtbl.remove m.wpq w)
    ws

let fence m =
  Hashtbl.iter (fun w v -> m.durable.(w) <- v) m.wpq;
  Hashtbl.reset m.wpq

(* {1 Crash outcomes} *)

let wpq_words m =
  List.sort compare (Hashtbl.fold (fun w _ acc -> w :: acc) m.wpq [])

let max_branch_words = 16

(* The durable image if the crash lands exactly the words selected by
   [mask] (bit i = i-th word of [wpq_words], ascending). *)
let crash_state m ~mask : state =
  let d = Array.copy m.durable in
  List.iteri
    (fun i w -> if mask land (1 lsl i) <> 0 then d.(w) <- Hashtbl.find m.wpq w)
    (wpq_words m);
  d

let snapshot_durable m : state = Array.copy m.durable

let equal_state (a : state) (b : state) = a = b

let pp_state cfg ppf (s : state) =
  Array.iteri
    (fun w v ->
      if v <> Int 0 then
        Format.fprintf ppf "  %-18s = %a@." (word_name cfg w) pp_value v)
    s
