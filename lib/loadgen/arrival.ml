type kind = Fixed of float | Poisson of float

type t = {
  kind : kind;
  rng : Rng.t;
  mutable clock_ns : float; (* last arrival handed out *)
  mutable n : int; (* arrivals handed out so far *)
  start_ns : float;
}

let rate = function Fixed r | Poisson r -> r

let create ?(seed = 1) ?(start_ns = 0.0) kind =
  if rate kind <= 0.0 then invalid_arg "Arrival.create: rate must be positive";
  { kind; rng = Rng.create seed; clock_ns = start_ns; n = 0; start_ns }

let next t =
  let gap_ns = 1e9 /. rate t.kind in
  let ts =
    match t.kind with
    | Fixed _ ->
        (* Computed from the index, not accumulated, so a long run
           doesn't drift by repeated float addition. *)
        t.start_ns +. (float_of_int t.n *. gap_ns)
    | Poisson _ ->
        (* Inverse-transform exponential; [1 - u] keeps the log away
           from zero. *)
        t.clock_ns +. (gap_ns *. -.log (1.0 -. Rng.float t.rng))
  in
  t.clock_ns <- ts;
  t.n <- t.n + 1;
  ts
