module Rng = Rng
module Arrival = Arrival
module Zipf = Zipf
module Hdr = Ptelemetry.Hdr
module Json = Ptelemetry.Json

type op = Read of int | Update of int | Insert of int | Delete of int

let op_key = function Read k | Update k | Insert k | Delete k -> k

type mix = { read : float; update : float; insert : float; delete : float }

let default_mix = { read = 0.50; update = 0.30; insert = 0.15; delete = 0.05 }
let read_only_mix = { read = 1.0; update = 0.0; insert = 0.0; delete = 0.0 }
let update_only_mix = { read = 0.0; update = 1.0; insert = 0.0; delete = 0.0 }

type spec = {
  arrivals : Arrival.kind;
  ops : int;
  keyspace : int;
  theta : float;
  mix : mix;
  seed : int;
}

let default_spec =
  {
    arrivals = Arrival.Fixed 1e6;
    ops = 10_000;
    keyspace = 1024;
    theta = 0.99;
    mix = default_mix;
    seed = 42;
  }

type report = {
  ops : int;
  first_arrival_ns : float;
  last_end_ns : float;
  busy_ns : float;
  max_backlog_ns : float;
  response : Hdr.t;
  service : Hdr.t;
}

let empty_report () =
  {
    ops = 0;
    first_arrival_ns = 0.0;
    last_end_ns = 0.0;
    busy_ns = 0.0;
    max_backlog_ns = 0.0;
    response = Hdr.create ();
    service = Hdr.create ();
  }

let throughput r =
  let span = r.last_end_ns -. r.first_arrival_ns in
  if span <= 0.0 then 0.0 else float_of_int r.ops /. span *. 1e9

let pick_op mix keys key_rng mix_rng =
  let total = mix.read +. mix.update +. mix.insert +. mix.delete in
  if total <= 0.0 then invalid_arg "Loadgen: op mix has no positive weight";
  let key = Zipf.next keys key_rng in
  let u = Rng.float mix_rng *. total in
  if u < mix.read then Read key
  else if u < mix.read +. mix.update then Update key
  else if u < mix.read +. mix.update +. mix.insert then Insert key
  else Delete key

let run ?progress ?(progress_every = 1024) (spec : spec) ~service =
  if spec.ops <= 0 then invalid_arg "Loadgen.run: ops must be positive";
  let root = Rng.create spec.seed in
  (* Independent derived streams: changing the op mix must not perturb
     which keys are drawn, and vice versa. *)
  let key_rng = Rng.split root in
  let mix_rng = Rng.split root in
  let arrivals =
    Arrival.create ~seed:(Rng.next root land 0x3FFFFFFF) spec.arrivals
  in
  let keys = Zipf.create ~theta:spec.theta spec.keyspace in
  let r = ref (empty_report ()) in
  let prev_end = ref 0.0 in
  for k = 0 to spec.ops - 1 do
    let arrival = Arrival.next arrivals in
    if k = 0 then r := { !r with first_arrival_ns = arrival };
    let op = pick_op spec.mix keys key_rng mix_rng in
    (* Open loop: the start never precedes the arrival, and a backlog
       (prev_end > arrival) is charged to response time, not hidden by
       delaying the schedule. *)
    let start = Float.max arrival !prev_end in
    let dur = service op in
    if dur < 0.0 then invalid_arg "Loadgen.run: negative service time";
    let end_ = start +. dur in
    prev_end := end_;
    let cur = !r in
    Hdr.record cur.response (int_of_float (Float.round (end_ -. arrival)));
    Hdr.record cur.service (int_of_float (Float.round dur));
    r :=
      {
        cur with
        ops = cur.ops + 1;
        last_end_ns = end_;
        busy_ns = cur.busy_ns +. dur;
        max_backlog_ns = Float.max cur.max_backlog_ns (start -. arrival);
      };
    match progress with
    | Some f when (k + 1) mod progress_every = 0 || k + 1 = spec.ops ->
        f ~done_ops:(k + 1) !r
    | _ -> ()
  done;
  !r

let merge_reports = function
  | [] -> empty_report ()
  | first :: _ as rs ->
      let response = Hdr.merge (List.map (fun r -> r.response) rs) in
      let service = Hdr.merge (List.map (fun r -> r.service) rs) in
      List.fold_left
        (fun acc r ->
          {
            acc with
            ops = acc.ops + r.ops;
            first_arrival_ns = Float.min acc.first_arrival_ns r.first_arrival_ns;
            last_end_ns = Float.max acc.last_end_ns r.last_end_ns;
            busy_ns = acc.busy_ns +. r.busy_ns;
            max_backlog_ns = Float.max acc.max_backlog_ns r.max_backlog_ns;
          })
        { (empty_report ()) with
          response;
          service;
          first_arrival_ns = first.first_arrival_ns;
        }
        rs

let report_json ?(label = "openloop") r =
  Json.Obj
    [
      ("schema", Json.Str "corundum-openloop-v1");
      ("label", Json.Str label);
      ("ops", Json.Num (float_of_int r.ops));
      ("duration_ns", Json.Num (r.last_end_ns -. r.first_arrival_ns));
      ("throughput_ops_per_s", Json.Num (throughput r));
      ("busy_ns", Json.Num r.busy_ns);
      ("max_backlog_ns", Json.Num r.max_backlog_ns);
      ("response", Hdr.to_json (Hdr.snapshot r.response));
      ("service", Hdr.to_json (Hdr.snapshot r.service));
    ]
