(* Bounded zipfian generator, after Gray et al. "Quickly generating
   billion-record synthetic databases" — the algorithm YCSB's
   ZipfianGenerator implements.  [create] precomputes zeta(n, theta);
   each draw is O(1). *)

type t = {
  n : int;
  theta : float;
  alpha : float;
  zetan : float;
  eta : float;
}

let zeta n theta =
  let z = ref 0.0 in
  for i = 1 to n do
    z := !z +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !z

let create ?(theta = 0.99) n =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then
    invalid_arg "Zipf.create: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let zeta2 = zeta 2 theta in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
    /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha; zetan; eta }

let n t = t.n
let theta t = t.theta

let rank t rng =
  let u = Rng.float rng in
  let uz = u *. t.zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. Float.pow 0.5 t.theta then 1
  else
    let r =
      float_of_int t.n
      *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha
    in
    min (t.n - 1) (int_of_float r)

(* Fibonacci-hash scatter so rank 0 isn't always key 0 — hot keys land
   all over the keyspace, as YCSB's scrambled variant arranges. *)
let scatter = 0x9E3779B97F4A7C15L

let next t rng =
  let r = rank t rng in
  let h =
    Int64.to_int
      (Int64.shift_right_logical (Int64.mul (Int64.of_int (r + 1)) scatter) 2)
  in
  h mod t.n
