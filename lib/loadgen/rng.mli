(** Deterministic pseudo-random stream (splitmix64).

    Every loadgen component draws from an explicit stream so a workload
    is a pure function of its seeds: same seed, same arrivals, same
    keys, same op mix — on any host, under any domain interleaving.
    Streams are not thread-safe; give each domain its own. *)

type t

val create : int -> t
(** A stream seeded by [seed].  Distinct seeds give independent
    streams (splitmix64 is the stream-splitting function of JDK's
    [SplittableRandom]). *)

val split : t -> t
(** A fresh stream derived from (and advancing) [t] — use to hand each
    domain or component its own independent stream from one root
    seed. *)

val next : t -> int
(** Uniform in [0, 2^62): the raw positive-int draw. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  [bound] must be
    positive. *)

val float : t -> float
(** Uniform in [0, 1). *)
