(** Arrival schedules for open-loop load generation.

    An arrival schedule decides {e when} requests enter the system, in
    simulated nanoseconds, independent of when earlier requests
    complete — the defining property of an open-loop workload.  A
    closed-loop driver (issue, wait, issue again) silently stretches
    its schedule whenever the system stalls, hiding exactly the
    latency spikes an evaluation cares about (coordinated omission);
    these schedules never stretch. *)

type kind =
  | Fixed of float
      (** [Fixed rate]: one arrival every [1e9 /. rate] simulated ns —
          a deterministic, evenly spaced schedule.  [rate] is in
          operations per simulated second. *)
  | Poisson of float
      (** [Poisson rate]: exponentially distributed inter-arrival gaps
          with mean [1e9 /. rate] simulated ns — memoryless arrivals,
          the standard open-system model.  Deterministic given the
          seed. *)

type t

val create : ?seed:int -> ?start_ns:float -> kind -> t
(** A schedule starting at [start_ns] (default 0).  [seed] (default 1)
    feeds the Poisson draw and is ignored for [Fixed]. *)

val next : t -> float
(** The next arrival timestamp in simulated ns.  Monotone
    non-decreasing across calls. *)

val rate : kind -> float
(** The schedule's nominal rate in ops per simulated second. *)
