(** Open-loop workload driver.

    Runs a stream of operations against a service callback under an
    {!Arrival} schedule, in simulated time, and separates the two
    latencies an open-system evaluation must not conflate:

    - {e service time} — how long the operation itself took once it
      started executing;
    - {e response time} — service time {e plus} the queueing delay
      between the operation's scheduled arrival and when the system got
      to it.

    Operation [k] starts at [max arrival_k prev_end]: arrivals never
    wait for completions (open loop), so when the system falls behind
    the schedule, the backlog shows up as response time.  A closed-loop
    driver measures only service time and silently stretches its
    schedule under stalls — the coordinated-omission mistake this
    module exists to avoid.

    Latencies are recorded into {!Ptelemetry.Hdr} histograms, so
    per-domain reports merge into fleet-wide percentiles with bounded
    relative error. *)

(** The library's building blocks, re-exported ([Loadgen] is the
    library's main module, so these would otherwise be hidden). *)

module Rng = Rng
module Arrival = Arrival
module Zipf = Zipf

type op = Read of int | Update of int | Insert of int | Delete of int
(** One keyed operation.  The driver picks keys and kinds; the service
    callback interprets them. *)

val op_key : op -> int

type mix = { read : float; update : float; insert : float; delete : float }
(** Operation-kind weights; need not sum to 1 (they are normalized). *)

val default_mix : mix
(** YCSB-workload-A-flavoured: 50% read / 30% update / 15% insert /
    5% delete. *)

val read_only_mix : mix
val update_only_mix : mix

type spec = {
  arrivals : Arrival.kind;  (** when operations enter the system *)
  ops : int;  (** how many operations to run *)
  keyspace : int;  (** keys are drawn from [0, keyspace) *)
  theta : float;  (** zipfian skew; 0 = uniform *)
  mix : mix;
  seed : int;  (** root seed: arrivals, keys and mix all derive *)
}

val default_spec : spec
(** 10_000 ops, Fixed 1e6 ops/s, 1024 keys, theta 0.99, {!default_mix},
    seed 42. *)

type report = {
  ops : int;
  first_arrival_ns : float;
  last_end_ns : float;
  busy_ns : float;  (** total service time *)
  max_backlog_ns : float;
      (** worst queueing delay (start - arrival) seen by any op *)
  response : Ptelemetry.Hdr.t;  (** end - arrival, per op, in sim ns *)
  service : Ptelemetry.Hdr.t;  (** end - start, per op, in sim ns *)
}

val throughput : report -> float
(** Achieved ops per simulated second over [first_arrival .. last_end]. *)

val run :
  ?progress:(done_ops:int -> report -> unit) ->
  ?progress_every:int ->
  spec ->
  service:(op -> float) ->
  report
(** Drive [spec.ops] operations.  [service op] executes one operation
    and returns its service time in simulated ns (e.g. the device's
    [simulated_ns] delta around the engine call); it must be
    non-negative.  [progress] (default none) is called every
    [progress_every] ops (default 1024) with the report so far. *)

val merge_reports : report list -> report
(** Combine per-domain reports: ops/busy sum, arrival/end envelope,
    histograms {!Ptelemetry.Hdr.merge}d.  Commutative and associative
    up to histogram exactness, like the underlying merge. *)

val report_json : ?label:string -> report -> Ptelemetry.Json.t
(** [{"schema": "corundum-openloop-v1", "label", "ops", "duration_ns",
    "throughput_ops_per_s", "busy_ns", "max_backlog_ns", "response":
    <Hdr.to_json>, "service": <Hdr.to_json>}]. *)
