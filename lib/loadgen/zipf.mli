(** Zipfian key selection (YCSB's bounded generator).

    Draws keys in [0, n) with popularity following a zipf distribution
    of exponent [theta]: key rank r is drawn proportionally to
    [1 / (r+1)^theta].  This is the skewed-access pattern persistent
    key-value evaluations use (YCSB's default theta 0.99 gives the
    classic "hot keys dominate" shape); theta 0 degenerates to
    uniform.

    The generator itself is stateless after [create] (the zeta
    normalizer is precomputed, O(n) once); each draw takes the caller's
    {!Rng.t}, so domains can share one generator while drawing from
    private streams. *)

type t

val create : ?theta:float -> int -> t
(** [create ?theta n] prepares draws over [0, n).  [theta] defaults to
    0.99 and must be in [0, 1); [n] must be positive. *)

val n : t -> int
val theta : t -> float

val next : t -> Rng.t -> int
(** One key.  Rank 0 (the hottest key) is scattered over the keyspace
    by a fixed multiplicative hash, as in YCSB, so hot keys don't
    cluster at one end. *)

val rank : t -> Rng.t -> int
(** Like {!next} but without the scattering hash: returns the
    popularity rank itself (0 = most popular).  Useful for asserting
    the distribution's shape in tests. *)
