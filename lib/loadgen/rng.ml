(* splitmix64 (Steele, Lea & Flood) over Int64, surfaced as OCaml ints.
   Chosen over [Random.State] because its sequence is specified by the
   algorithm, not the stdlib version — captured baselines stay valid
   across compiler upgrades. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next64 t }

(* Top 62 bits: always fits a non-negative OCaml int. *)
let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to stay exactly uniform. *)
  let limit = (1 lsl 62) - ((1 lsl 62) mod bound) in
  let rec go () =
    let v = next t in
    if v < limit then v mod bound else go ()
  in
  go ()

let float t =
  (* 53 uniform bits, as the standard double in [0,1). *)
  Int64.to_float (Int64.shift_right_logical (next64 t) 11)
  *. (1.0 /. 9007199254740992.0)
