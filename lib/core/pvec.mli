(** [Pvec] — persistent growable vector.

    A two-block structure: a small header ([length | capacity | data
    pointer]) plus a data block of fixed-footprint elements.  Growth
    doubles the data block transactionally (allocate, copy, persist,
    deferred-free the old block), so a crash mid-growth can never lose or
    duplicate elements.

    Popping moves ownership of the element to the caller; if the element
    type owns pointers the caller must eventually [drop] them through the
    element's own API. *)

type ('a, 'p) t

val make : ty:('a, 'p) Ptype.t -> ?capacity:int -> 'p Journal.t -> ('a, 'p) t
val length : ('a, 'p) t -> int
val capacity : ('a, 'p) t -> int
val is_empty : ('a, 'p) t -> bool
val get : ('a, 'p) t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : ('a, 'p) t -> int -> 'a -> 'p Journal.t -> unit
(** Replace an element, releasing what the old element owned. *)

val push : ('a, 'p) t -> 'a -> 'p Journal.t -> unit
val pop : ('a, 'p) t -> 'p Journal.t -> 'a option

val insert_at : ('a, 'p) t -> int -> 'a -> 'p Journal.t -> unit
(** Insert before position [i] (so [insert_at v (length v) x] appends),
    shifting the tail; O(n). *)

val remove_at : ('a, 'p) t -> int -> 'p Journal.t -> 'a
(** Remove and return the element at [i], shifting the tail down;
    ownership moves to the caller (like {!pop}). *)

val iter : ('a, 'p) t -> ('a -> unit) -> unit
val fold : ('a, 'p) t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
val to_list : ('a, 'p) t -> 'a list
val clear : ('a, 'p) t -> 'p Journal.t -> unit
(** Drop every element and reset the length to zero. *)

val drop : ('a, 'p) t -> 'p Journal.t -> unit
(** Drop all elements and free both blocks. *)

val off : ('a, 'p) t -> int
val ptype : ('a, 'p) Ptype.t -> ((('a, 'p) t), 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> ((('a, 'p) t), 'p) Ptype.t
