module D = Pmem.Device

(* Header block: [root u64 | size u64].
   Node: meta u64 (leaf flag lor count lsl 1) | keys[7] at +8;
   leaf:     values (7 x vsize) at +64, next-leaf u64 after them;
   internal: children[8] at +64. *)
let hdr_size = 16
let fanout = 8
let max_keys = fanout - 1
let min_keys = 3

type ('a, 'p) t = { hdr : int; pool : Pool_impl.t; vty : ('a, 'p) Ptype.t }

let off t = t.hdr
let dev pool = Pool_impl.device pool
let vsize t = max 8 (Ptype.size t.vty)
let leaf_size t = 64 + (max_keys * vsize t) + 8
let internal_size = 128
let read_root t = Int64.to_int (D.read_u64 (dev t.pool) t.hdr)
let read_size t = Int64.to_int (D.read_u64 (dev t.pool) (t.hdr + 8))

let length t =
  Pool_impl.check_open t.pool;
  read_size t

let is_empty t = length t = 0

(* --- node accessors (logged writes, exact 8-byte or value ranges) ------ *)

let meta t n = Int64.to_int (D.read_u64 (dev t.pool) n)
let is_leaf t n = meta t n land 1 = 1
let count t n = meta t n lsr 1

let setf t tx off v =
  Pool_impl.tx_log tx ~off ~len:8;
  D.write_u64 (dev t.pool) off (Int64.of_int v)

let set_root t tx v = setf t tx t.hdr v
let set_size t tx v = setf t tx (t.hdr + 8) v

let set_meta t tx n ~leaf ~count =
  setf t tx n ((count lsl 1) lor if leaf then 1 else 0)

let key t n i = Int64.to_int (D.read_u64 (dev t.pool) (n + 8 + (i * 8)))
let set_key t tx n i v = setf t tx (n + 8 + (i * 8)) v
let value_off t n i = n + 64 + (i * vsize t)
let child t n i = Int64.to_int (D.read_u64 (dev t.pool) (n + 64 + (i * 8)))
let set_child t tx n i c = setf t tx (n + 64 + (i * 8)) c
let next_off t n = n + 64 + (max_keys * vsize t)
let next_leaf t n = Int64.to_int (D.read_u64 (dev t.pool) (next_off t n))
let set_next_leaf t tx n c = setf t tx (next_off t n) c

let read_value t n i = Ptype.read t.vty t.pool (value_off t n i)

(* Store a value with logging; drops nothing (insertion into a dead or
   freshly vacated slot). *)
let put_value t tx n i v =
  Pool_impl.tx_log tx ~off:(value_off t n i) ~len:(vsize t);
  Ptype.write t.vty t.pool (value_off t n i) v

(* Move a value's bytes between slots: ownership transfers, counts are
   untouched, the source slot becomes dead. *)
let move_value t tx ~src_node ~src_i ~dst_node ~dst_i =
  let src = value_off t src_node src_i and dst = value_off t dst_node dst_i in
  Pool_impl.tx_log tx ~off:dst ~len:(vsize t);
  D.copy_within (dev t.pool) ~src ~dst ~len:(vsize t)

let new_node t tx ~leaf =
  let size = if leaf then leaf_size t else internal_size in
  let n = Pool_impl.tx_alloc tx size in
  D.fill (dev t.pool) n size '\000';
  D.write_u64 (dev t.pool) n (Int64.of_int (if leaf then 1 else 0));
  D.persist (dev t.pool) n size;
  n

let make ~vty j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  D.write_u64 (dev pool) hdr 0L;
  D.write_u64 (dev pool) (hdr + 8) 0L;
  D.persist (dev pool) hdr hdr_size;
  { hdr; pool; vty }

(* Index of the child to descend into: first separator > key, else the
   rightmost child. *)
let descend_index t n k =
  let c = count t n in
  let rec go i = if i >= c then i else if k < key t n i then i else go (i + 1) in
  go 0

let leaf_search t n k =
  let c = count t n in
  let rec go i =
    if i >= c then `Insert_at i
    else
      let ki = key t n i in
      if k = ki then `Found i else if k < ki then `Insert_at i else go (i + 1)
  in
  go 0

(* --- lookup ------------------------------------------------------------- *)

let find_leaf t k =
  let rec go n =
    if n = 0 then 0
    else if is_leaf t n then n
    else go (child t n (descend_index t n k))
  in
  go (read_root t)

let find t k =
  Pool_impl.check_open t.pool;
  let n = find_leaf t k in
  if n = 0 then None
  else
    match leaf_search t n k with
    | `Found i -> Some (read_value t n i)
    | `Insert_at _ -> None

let mem t k = find t k <> None

(* --- insert -------------------------------------------------------------- *)

let split_child t tx parent i =
  let c = child t parent i in
  let leaf = is_leaf t c in
  let right = new_node t tx ~leaf in
  let sep =
    if leaf then begin
      (* left keeps 0..2, right takes 3..6 *)
      for k = 3 to 6 do
        set_key t tx right (k - 3) (key t c k);
        move_value t tx ~src_node:c ~src_i:k ~dst_node:right ~dst_i:(k - 3)
      done;
      set_meta t tx right ~leaf:true ~count:4;
      set_next_leaf t tx right (next_leaf t c);
      set_next_leaf t tx c right;
      set_meta t tx c ~leaf:true ~count:3;
      key t right 0
    end
    else begin
      for k = 4 to 6 do
        set_key t tx right (k - 4) (key t c k)
      done;
      for k = 4 to 7 do
        set_child t tx right (k - 4) (child t c k)
      done;
      set_meta t tx right ~leaf:false ~count:3;
      let sep = key t c 3 in
      set_meta t tx c ~leaf:false ~count:3;
      sep
    end
  in
  let pc = count t parent in
  for k = pc - 1 downto i do
    set_key t tx parent (k + 1) (key t parent k)
  done;
  for k = pc downto i + 1 do
    set_child t tx parent (k + 1) (child t parent k)
  done;
  set_key t tx parent i sep;
  set_child t tx parent (i + 1) right;
  set_meta t tx parent ~leaf:false ~count:(pc + 1)

let rec insert_nonfull t tx n k v added =
  if is_leaf t n then begin
    match leaf_search t n k with
    | `Found i ->
        (* replace: release the old value *)
        Pool_impl.tx_log tx ~off:(value_off t n i) ~len:(vsize t);
        Ptype.drop t.vty tx (value_off t n i);
        Ptype.write t.vty t.pool (value_off t n i) v
    | `Insert_at i ->
        added := true;
        let c = count t n in
        for m = c - 1 downto i do
          set_key t tx n (m + 1) (key t n m);
          move_value t tx ~src_node:n ~src_i:m ~dst_node:n ~dst_i:(m + 1)
        done;
        set_key t tx n i k;
        put_value t tx n i v;
        set_meta t tx n ~leaf:true ~count:(c + 1)
  end
  else begin
    let i = descend_index t n k in
    let c = child t n i in
    if count t c = max_keys then begin
      split_child t tx n i;
      let i = descend_index t n k in
      insert_nonfull t tx (child t n i) k v added
    end
    else insert_nonfull t tx c k v added
  end

let add t ~key:k v j =
  let tx = Journal.tx j in
  let added = ref false in
  let root = read_root t in
  if root = 0 then begin
    let leaf = new_node t tx ~leaf:true in
    set_key t tx leaf 0 k;
    put_value t tx leaf 0 v;
    set_meta t tx leaf ~leaf:true ~count:1;
    set_root t tx leaf;
    added := true
  end
  else begin
    let root =
      if count t root = max_keys then begin
        let nroot = new_node t tx ~leaf:false in
        set_child t tx nroot 0 root;
        set_meta t tx nroot ~leaf:false ~count:0;
        split_child t tx nroot 0;
        set_root t tx nroot;
        nroot
      end
      else root
    in
    insert_nonfull t tx root k v added
  end;
  if !added then set_size t tx (read_size t + 1)

(* --- delete -------------------------------------------------------------- *)

let remove_from_leaf t tx n i =
  let c = count t n in
  for m = i to c - 2 do
    set_key t tx n m (key t n (m + 1));
    move_value t tx ~src_node:n ~src_i:(m + 1) ~dst_node:n ~dst_i:m
  done;
  set_meta t tx n ~leaf:true ~count:(c - 1)

let borrow_from_left t tx parent i =
  let c = child t parent i and l = child t parent (i - 1) in
  let lc = count t l and cc = count t c in
  if is_leaf t c then begin
    for m = cc - 1 downto 0 do
      set_key t tx c (m + 1) (key t c m);
      move_value t tx ~src_node:c ~src_i:m ~dst_node:c ~dst_i:(m + 1)
    done;
    set_key t tx c 0 (key t l (lc - 1));
    move_value t tx ~src_node:l ~src_i:(lc - 1) ~dst_node:c ~dst_i:0;
    set_meta t tx c ~leaf:true ~count:(cc + 1);
    set_meta t tx l ~leaf:true ~count:(lc - 1);
    set_key t tx parent (i - 1) (key t c 0)
  end
  else begin
    for m = cc - 1 downto 0 do
      set_key t tx c (m + 1) (key t c m)
    done;
    for m = cc downto 0 do
      set_child t tx c (m + 1) (child t c m)
    done;
    set_key t tx c 0 (key t parent (i - 1));
    set_child t tx c 0 (child t l lc);
    set_meta t tx c ~leaf:false ~count:(cc + 1);
    set_key t tx parent (i - 1) (key t l (lc - 1));
    set_meta t tx l ~leaf:false ~count:(lc - 1)
  end

let borrow_from_right t tx parent i =
  let c = child t parent i and r = child t parent (i + 1) in
  let rc = count t r and cc = count t c in
  if is_leaf t c then begin
    set_key t tx c cc (key t r 0);
    move_value t tx ~src_node:r ~src_i:0 ~dst_node:c ~dst_i:cc;
    set_meta t tx c ~leaf:true ~count:(cc + 1);
    for m = 0 to rc - 2 do
      set_key t tx r m (key t r (m + 1));
      move_value t tx ~src_node:r ~src_i:(m + 1) ~dst_node:r ~dst_i:m
    done;
    set_meta t tx r ~leaf:true ~count:(rc - 1);
    set_key t tx parent i (key t r 0)
  end
  else begin
    set_key t tx c cc (key t parent i);
    set_child t tx c (cc + 1) (child t r 0);
    set_meta t tx c ~leaf:false ~count:(cc + 1);
    set_key t tx parent i (key t r 0);
    for m = 0 to rc - 2 do
      set_key t tx r m (key t r (m + 1))
    done;
    for m = 0 to rc - 1 do
      set_child t tx r m (child t r (m + 1))
    done;
    set_meta t tx r ~leaf:false ~count:(rc - 1)
  end

let merge_children t tx parent i =
  let l = child t parent i and r = child t parent (i + 1) in
  let lc = count t l and rc = count t r in
  if is_leaf t l then begin
    for m = 0 to rc - 1 do
      set_key t tx l (lc + m) (key t r m);
      move_value t tx ~src_node:r ~src_i:m ~dst_node:l ~dst_i:(lc + m)
    done;
    set_meta t tx l ~leaf:true ~count:(lc + rc);
    set_next_leaf t tx l (next_leaf t r)
  end
  else begin
    set_key t tx l lc (key t parent i);
    for m = 0 to rc - 1 do
      set_key t tx l (lc + 1 + m) (key t r m)
    done;
    for m = 0 to rc do
      set_child t tx l (lc + 1 + m) (child t r m)
    done;
    set_meta t tx l ~leaf:false ~count:(lc + rc + 1)
  end;
  let pc = count t parent in
  for m = i to pc - 2 do
    set_key t tx parent m (key t parent (m + 1))
  done;
  for m = i + 1 to pc - 1 do
    set_child t tx parent m (child t parent (m + 1))
  done;
  set_meta t tx parent ~leaf:false ~count:(pc - 1);
  Pool_impl.tx_free tx r

let fix_child t tx parent i =
  let c = child t parent i in
  if count t c > min_keys then ()
  else if i > 0 && count t (child t parent (i - 1)) > min_keys then
    borrow_from_left t tx parent i
  else if i < count t parent && count t (child t parent (i + 1)) > min_keys
  then borrow_from_right t tx parent i
  else if i > 0 then merge_children t tx parent (i - 1)
  else merge_children t tx parent i

let rec remove_rec t tx n k =
  if is_leaf t n then
    match leaf_search t n k with
    | `Found i ->
        Ptype.drop t.vty tx (value_off t n i);
        remove_from_leaf t tx n i;
        true
    | `Insert_at _ -> false
  else begin
    let i = descend_index t n k in
    fix_child t tx n i;
    let i = descend_index t n k in
    remove_rec t tx (child t n i) k
  end

let remove t k j =
  let tx = Journal.tx j in
  let root = read_root t in
  if root = 0 then false
  else begin
    let r = remove_rec t tx root k in
    let root = read_root t in
    if (not (is_leaf t root)) && count t root = 0 then begin
      set_root t tx (child t root 0);
      Pool_impl.tx_free tx root
    end
    else if is_leaf t root && count t root = 0 then begin
      set_root t tx 0;
      Pool_impl.tx_free tx root
    end;
    if r then set_size t tx (read_size t - 1);
    r
  end

(* --- scans ---------------------------------------------------------------- *)

let leftmost_leaf t n =
  let rec go n = if is_leaf t n then n else go (child t n 0) in
  go n

let fold t ~init ~f =
  Pool_impl.check_open t.pool;
  let root = read_root t in
  if root = 0 then init
  else begin
    let acc = ref init in
    let leaf = ref (leftmost_leaf t root) in
    while !leaf <> 0 do
      for i = 0 to count t !leaf - 1 do
        acc := f !acc (key t !leaf i) (read_value t !leaf i)
      done;
      leaf := next_leaf t !leaf
    done;
    !acc
  end

let iter t f = fold t ~init:() ~f:(fun () k v -> f k v)
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let fold_range t ~lo ~hi ~init ~f =
  Pool_impl.check_open t.pool;
  let start = find_leaf t lo in
  if start = 0 then init
  else begin
    let acc = ref init in
    let leaf = ref start and continue = ref true in
    while !leaf <> 0 && !continue do
      for i = 0 to count t !leaf - 1 do
        let k = key t !leaf i in
        if k > hi then continue := false
        else if k >= lo then acc := f !acc k (read_value t !leaf i)
      done;
      leaf := next_leaf t !leaf
    done;
    !acc
  end

let min_binding t =
  Pool_impl.check_open t.pool;
  let root = read_root t in
  if root = 0 then None
  else
    let l = leftmost_leaf t root in
    Some (key t l 0, read_value t l 0)

let max_binding t =
  Pool_impl.check_open t.pool;
  let rec go n =
    if is_leaf t n then
      let c = count t n in
      Some (key t n (c - 1), read_value t n (c - 1))
    else go (child t n (count t n))
  in
  let root = read_root t in
  if root = 0 then None else go root

(* --- teardown --------------------------------------------------------------*)

let rec drop_subtree t tx n =
  if n <> 0 then
    if is_leaf t n then begin
      for i = 0 to count t n - 1 do
        Ptype.drop t.vty tx (value_off t n i)
      done;
      Pool_impl.tx_free tx n
    end
    else begin
      for i = 0 to count t n do
        drop_subtree t tx (child t n i)
      done;
      Pool_impl.tx_free tx n
    end

let clear t j =
  let tx = Journal.tx j in
  drop_subtree t tx (read_root t);
  set_root t tx 0;
  set_size t tx 0

let drop t j =
  let tx = Journal.tx j in
  drop_subtree t tx (read_root t);
  Pool_impl.tx_free tx t.hdr

(* --- invariants -------------------------------------------------------------*)

exception Violation of string

let check t =
  Pool_impl.check_open t.pool;
  let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt in
  let entries = ref 0 in
  let rec go n ~lo ~hi ~is_root =
    let c = count t n in
    if (not is_root) && c < min_keys then fail "node %d underfull (%d)" n c;
    if c > max_keys then fail "node %d overfull (%d)" n c;
    for i = 0 to c - 1 do
      let k = key t n i in
      (match lo with
      | Some l when k < l -> fail "key %d below bound in %d" k n
      | _ -> ());
      (match hi with
      | Some h when k >= h -> fail "key %d above bound in %d" k n
      | _ -> ());
      if i > 0 && key t n (i - 1) >= k then fail "keys unsorted in %d" n
    done;
    if is_leaf t n then begin
      entries := !entries + c;
      1
    end
    else begin
      let depths =
        List.init (c + 1) (fun i ->
            let lo' = if i = 0 then lo else Some (key t n (i - 1)) in
            let hi' = if i = c then hi else Some (key t n i) in
            go (child t n i) ~lo:lo' ~hi:hi' ~is_root:false)
      in
      match depths with
      | d :: rest ->
          if List.exists (fun d' -> d' <> d) rest then fail "ragged depth under %d" n;
          d + 1
      | [] -> fail "internal node %d without children" n
    end
  in
  let root = read_root t in
  if root = 0 then
    if read_size t = 0 then Ok () else Error "empty tree with non-zero size"
  else
    match go root ~lo:None ~hi:None ~is_root:true with
    | _ ->
        if !entries <> read_size t then
          Error
            (Printf.sprintf "size %d but %d leaf entries" (read_size t) !entries)
        else Ok ()
    | exception Violation msg -> Error msg

(* --- container descriptor ----------------------------------------------------*)

let make_ptype inner_of =
  Ptype.make ~name:"pbtree" ~size:8
    ~read:(fun pool off ->
      {
        hdr = Int64.to_int (D.read_u64 (dev pool) off);
        pool;
        vty = inner_of ();
      })
    ~write:(fun pool off t -> D.write_u64 (dev pool) off (Int64.of_int t.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then
        drop { hdr; pool; vty = inner_of () } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let t = { hdr; pool = p; vty = inner_of () } in
                let rec nodes acc n =
                  if n = 0 then acc
                  else if is_leaf t n then
                    {
                      Ptype.block = n;
                      follow =
                        (fun p2 ->
                          let t2 = { t with pool = p2 } in
                          List.concat
                            (List.init (count t2 n) (fun i ->
                                 Ptype.reach t2.vty p2 (value_off t2 n i))));
                    }
                    :: acc
                  else begin
                    let acc =
                      { Ptype.block = n; follow = (fun _ -> []) } :: acc
                    in
                    let acc = ref acc in
                    for i = 0 to count t n do
                      acc := nodes !acc (child t n i)
                    done;
                    !acc
                  end
                in
                nodes [] (read_root t));
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make
    ~name:(Printf.sprintf "%s pbtree" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
