module D = Pmem.Device

type slot_state = Idle | Active of int | Committing of int

type info = {
  magic_ok : bool;
  version : int;
  generation : int;
  root_off : int;
  root_ty_hash : int;
  nslots : int;
  slot_size : int;
  journal_base : int;
  table_base : int;
  heap_base : int;
  heap_len : int;
  device_size : int;
  slots : slot_state list;
  slot_epochs : int list;
  live_blocks : int;
  live_bytes : int;
  largest_block : int;
  lifetime_tx : int;
  lifetime_aborts : int;
  cow_cells : Cow_root.cell_info list;
      (** every root cell the mod engine's CoW commits use; all-zero
          cells on pools that never ran it *)
}

(* Header field offsets mirror Pool_impl's layout; kept in sync by the
   roundtrip test in test_corundum. *)
let magic = "CORUNDUM-POOL-01"
let header_size = 4096

(* A slot is classified the way recovery sees it: walk the checksummed
   entry stream to its tail.  The advisory header count is never trusted
   (and since commits stopped persisting it for drop-free transactions,
   an in-flight crash image usually has count=0 beside a walkable log);
   phase [Committing] only appears on legacy images. *)
let read_slot dev ~base ~size =
  let phase = D.read_u64 dev base in
  let count = Int64.to_int (D.read_u64 dev (base + 8)) in
  let epoch = Int64.to_int (D.read_u64 dev (base + 32)) in
  if phase = 1L then (Committing count, epoch)
  else begin
    let salt = Pjournal.Log_entry.salt ~slot_base:base ~epoch in
    let visited, _, _ =
      Pjournal.Log_entry.walk_to_tail dev ~slot_base:base ~slot_size:size
        ~salt
        (fun _ -> ())
    in
    ((if visited > 0 then Active visited else Idle), epoch)
  end

let inspect_device dev =
  let u64 off = Int64.to_int (D.read_u64 dev off) in
  let magic_ok =
    D.size dev >= header_size
    && String.equal (D.read_string dev 0 (String.length magic)) magic
  in
  let nslots = if magic_ok then u64 48 else 0 in
  let slot_size = if magic_ok then u64 56 else 0 in
  let heap_len = if magic_ok then u64 64 else 0 in
  let table_base = if magic_ok then u64 72 else 0 in
  let heap_base = if magic_ok then u64 80 else 0 in
  let slot_pairs =
    List.init nslots (fun i ->
        read_slot dev ~base:(header_size + (i * slot_size)) ~size:slot_size)
  in
  let slots = List.map fst slot_pairs in
  let slot_epochs = List.map snd slot_pairs in
  let live_blocks = ref 0 and live_bytes = ref 0 and largest = ref 0 in
  if magic_ok && heap_len > 0 then begin
    let table =
      Palloc.Alloc_table.attach dev ~table_base ~heap_base ~heap_len
    in
    Palloc.Alloc_table.iter_allocated table (fun ~idx:_ ~order ->
        incr live_blocks;
        let size = Palloc.Buddy.size_of_order order in
        live_bytes := !live_bytes + size;
        if size > !largest then largest := size)
  end;
  {
    magic_ok;
    version = (if magic_ok then u64 16 else 0);
    generation = (if magic_ok then u64 24 else 0);
    root_off = (if magic_ok then u64 32 else 0);
    root_ty_hash = (if magic_ok then u64 40 else 0);
    nslots;
    slot_size;
    journal_base = header_size;
    table_base;
    heap_base;
    heap_len;
    device_size = D.size dev;
    slots;
    slot_epochs;
    live_blocks = !live_blocks;
    live_bytes = !live_bytes;
    largest_block = !largest;
    lifetime_tx = (if magic_ok then u64 96 else 0);
    lifetime_aborts = (if magic_ok then u64 104 else 0);
    cow_cells = (if magic_ok then Cow_root.inspect dev else []);
  }

let inspect_file path = inspect_device (D.load path)

let pp ppf i =
  let open Format in
  if not i.magic_ok then fprintf ppf "not a Corundum pool image@."
  else begin
    fprintf ppf "Corundum pool (version %d)@." i.version;
    fprintf ppf "  device size   : %d bytes@." i.device_size;
    fprintf ppf "  generation    : %d (times opened)@." i.generation;
    fprintf ppf "  root          : %s@."
      (if i.root_off = 0 then "(uninitialized)"
       else Printf.sprintf "offset %d, type hash %#x" i.root_off i.root_ty_hash);
    fprintf ppf "  layout        : journals @%d (%d x %d B), table @%d, heap @%d (+%d B)@."
      i.journal_base i.nslots i.slot_size i.table_base i.heap_base i.heap_len;
    fprintf ppf "  heap          : %d live blocks, %d bytes used (largest %d), %d free@."
      i.live_blocks i.live_bytes i.largest_block (i.heap_len - i.live_bytes);
    fprintf ppf "  transactions  : %d committed, %d aborted (lifetime, as of last save)@."
      i.lifetime_tx i.lifetime_aborts;
    (* Per-slot epoch/phase: on a shared pool each registered domain
       owns one slot, so the epochs show how commits were distributed
       across domains; an idle slot's epoch counts the logs it has
       retired. *)
    List.iteri
      (fun n (s, e) ->
        match s with
        | Idle ->
            if e > 0 then
              fprintf ppf "  journal %d     : idle, epoch %d (logs retired)@."
                n e
        | Active c ->
            fprintf ppf
              "  journal %d     : ACTIVE, %d undo entries, epoch %d (will \
               roll back on open)@."
              n c e
        | Committing c ->
            fprintf ppf
              "  journal %d     : COMMITTING, %d entries, epoch %d (will \
               complete on open)@."
              n c e)
      (List.combine i.slots i.slot_epochs);
    if List.for_all (fun s -> s = Idle) i.slots then
      fprintf ppf "  journals      : all %d slots idle (clean shutdown)@." i.nslots;
    (* CoW root cells: only pools that ran the mod engine have non-zero
       cells; a valid intent on an image is a commit whose unfenced tail
       recovery will roll forward or back at the next open. *)
    List.iter
      (fun (ci : Cow_root.cell_info) ->
        if ci.ci_ptr <> 0 || ci.ci_gen <> 0 || ci.ci_intents <> [] then begin
          fprintf ppf "  cow cell %d    : gen %d, active %s%s@." ci.ci_cell
            ci.ci_gen
            (if ci.ci_ptr = 0 then "(none)"
             else Printf.sprintf "@%d" ci.ci_ptr)
            (match ci.ci_pair with
            | None -> ""
            | Some (base, half) ->
                Printf.sprintf ", pair @%d halves %d B" base half);
          List.iter
            (fun (s, (it : Cow_root.intent)) ->
              let state =
                if it.igen = (ci.ci_gen + 1) land Cow_root.gen_mask then
                  "PENDING, resolves on open"
                else if it.igen = ci.ci_gen then "consumed"
                else "stale"
              in
              fprintf ppf
                "    intent s%d   : gen %d %s, %d allocs, %d retires (%s)@." s
                it.igen
                (match it.kind with
                | Cow_root.Gen_only -> "gen-only"
                | Cow_root.Swap p -> Printf.sprintf "swap -> %d" p
                | Cow_root.Publish (p, pubs) ->
                    Printf.sprintf "publish x%d -> %d" (List.length pubs) p)
                (List.length it.allocs) (List.length it.frees) state)
            ci.ci_intents
        end)
      i.cow_cells
  end
