module D = Pmem.Device

let placed what c =
  let c = Pcell.unsafe_expose c in
  match (Cell_core.placed_off c, Cell_core.pool c) with
  | Some off, Some pool -> (off, pool)
  | _ -> invalid_arg (Printf.sprintf "Punsafe.%s: cell is not in a pool" what)

let unlogged_set c v j =
  let tx = Journal.tx j in
  let off, pool = placed "unlogged_set" c in
  ignore tx;
  Ptype.write (Cell_core.ty (Pcell.unsafe_expose c)) pool off v

let flush c j =
  let tx = Journal.tx j in
  let off, pool = placed "flush" c in
  ignore tx;
  D.flush (Pool_impl.device pool) off
    (max 8 (Ptype.size (Cell_core.ty (Pcell.unsafe_expose c))))

let fence j =
  let pool = Journal.pool j in
  D.fence (Pool_impl.device pool)

let persist c j =
  flush c j;
  fence j

let atomic_set c v j =
  let ty = Cell_core.ty (Pcell.unsafe_expose c) in
  if Ptype.size ty > 8 then
    invalid_arg
      (Printf.sprintf "Punsafe.atomic_set: %s is wider than 8 bytes"
         (Ptype.name ty));
  unlogged_set c v j;
  persist c j
