(** [Pbytes] — mutable persistent byte buffer.

    Where {!Pstring} is an immutable blob, a [Pbytes] supports in-place
    logged sub-range writes and transactional resizing — the building
    block for file-like data.  Layout mirrors {!Pvec}: a small header
    ([length | capacity | data pointer]) plus a data block that doubles
    on demand. *)

type 'p t

val make : ?capacity:int -> 'p Journal.t -> 'p t
(** An empty buffer. *)

val of_string : string -> 'p Journal.t -> 'p t
val length : 'p t -> int
val capacity : 'p t -> int

val get : 'p t -> int -> char
val read : 'p t -> pos:int -> len:int -> string
(** Raises [Invalid_argument] when the range leaves the buffer. *)

val to_string : 'p t -> string

val set : 'p t -> int -> char -> 'p Journal.t -> unit
val write : 'p t -> pos:int -> string -> 'p Journal.t -> unit
(** Overwrite [pos, pos + length s); must lie inside the buffer. *)

val append : 'p t -> string -> 'p Journal.t -> unit
(** Extend at the end, growing the data block as needed. *)

val truncate : 'p t -> int -> 'p Journal.t -> unit
(** Shorten to the given length (raises if longer than the contents). *)

val drop : 'p t -> 'p Journal.t -> unit
val off : 'p t -> int
val ptype : unit -> ('p t, 'p) Ptype.t
