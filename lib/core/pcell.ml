type ('a, 'p) t = ('a, 'p) Cell_core.t

let make = Cell_core.make
let get = Cell_core.read
let set c v j = Cell_core.write c (Journal.tx j) v

let replace c v j = Cell_core.replace c (Journal.tx j) v

let update c j f = set c (f (get c)) j
let unsafe_expose c = c
let off = Cell_core.placed_off

let ptype inner =
  Cell_core.ptype ~name:(Printf.sprintf "%s pcell" (Ptype.name inner)) inner
