(** Pool image verification — the [pmempool check]-style fsck.

    Validates, read-only and without running recovery:

    - the header (magic, version, layout arithmetic, in-device bounds);
    - every journal slot (counts within the slot, entries parse, their
      target offsets land inside the pool, drop areas are well formed);
    - the allocation table (orders valid, heads aligned to their order,
      blocks inside the heap);
    - heap tiling (the free space derived from the table plus the
      allocated blocks must cover the heap exactly);
    - the root pointer (must be the head of a live block when set).

    A pool that crashed mid-transaction is still {e consistent} here —
    an [Active] journal is well-formed state that recovery will resolve —
    so this checker passes on crash images; it fails only on genuine
    corruption (torn metadata, wild offsets, overlapping blocks). *)

type finding = { where : string; problem : string }

type report = {
  findings : finding list;
  slots_checked : int;
  entries_checked : int;
  blocks_checked : int;
}

val ok : report -> bool

val check_device : Pmem.Device.t -> report
val check_file : string -> report
val pp : Format.formatter -> report -> unit
