(** Pool image verification — the [pmempool check]-style fsck.

    Validates, read-only and without running recovery:

    - the header (magic, version, layout arithmetic, in-device bounds);
    - every journal slot (counts within the slot, entries parse, their
      target offsets land inside the pool, drop areas are well formed);
    - the allocation table (orders valid, heads aligned to their order,
      blocks inside the heap);
    - heap tiling (the free space derived from the table plus the
      allocated blocks must cover the heap exactly);
    - the root pointer (must be the head of a live block when set).

    A pool that crashed mid-transaction is still {e consistent} here —
    an [Active] journal is well-formed state that recovery will resolve —
    so this checker passes on crash images; it fails only on genuine
    corruption (torn metadata, wild offsets, overlapping blocks). *)

type finding = { where : string; problem : string }

type report = {
  findings : finding list;
  slots_checked : int;
  entries_checked : int;
  blocks_checked : int;
}

val ok : report -> bool

val check_device : Pmem.Device.t -> report
val check_file : string -> report
val pp : Format.formatter -> report -> unit

(** {1 Repair}

    The repairing pass restores structural consistency without touching
    committed data:

    - re-seals a stale header checksum when the layout fields are sane;
    - truncates a journal slot's undo log to its checksum-verified prefix
      (the same "treat a torn entry as never written" rule recovery
      applies) and resets slots whose own header fields are implausible;
    - quarantines allocation-table bytes claiming impossible blocks
      (bogus order, misalignment, heap overflow, phantom heads inside a
      live extent) by clearing them back to free space;
    - does {e not} repair a wild root pointer — the data it named is
      gone; it is reported in [unrepairable] and the pool remains
      openable only with [~mode:Read_only].

    Every write is persisted and idempotent, so a crash mid-repair is
    answered by running repair again. *)

type repair_action = { where : string; action : string }

type repair_report = {
  actions : repair_action list;  (** what was fixed, in order *)
  entries_truncated : int;  (** undo entries dropped from journal slots *)
  drops_truncated : int;  (** drop records removed from drop areas *)
  blocks_quarantined : int;  (** alloc-table bytes cleared *)
  unrepairable : finding list;  (** damage detected but not fixable *)
  post : report;  (** [check_device] re-run after the repairs *)
}

val repair : Pmem.Device.t -> repair_report

val repaired : repair_report -> bool
(** No unrepairable findings and the post-repair check is clean. *)

val pp_repair : Format.formatter -> repair_report -> unit
