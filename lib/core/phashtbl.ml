module D = Pmem.Device

(* Header block: [count u64 | nbuckets u64 | dir u64].
   Directory:    nbuckets chain-head pointers.
   Entry block:  [key i64 | next u64 | value]. *)
let hdr_size = 24
let entry_meta = 16

type ('a, 'p) t = { hdr : int; pool : Pool_impl.t; vty : ('a, 'p) Ptype.t }

let off h = h.hdr
let dev pool = Pool_impl.device pool
let vsize h = max 8 (Ptype.size h.vty)
let entry_size h = entry_meta + vsize h
let read_count h = Int64.to_int (D.read_u64 (dev h.pool) h.hdr)
let read_nbuckets h = Int64.to_int (D.read_u64 (dev h.pool) (h.hdr + 8))
let read_dir h = Int64.to_int (D.read_u64 (dev h.pool) (h.hdr + 16))
let ekey h e = Int64.to_int (D.read_u64 (dev h.pool) e)
let enext h e = Int64.to_int (D.read_u64 (dev h.pool) (e + 8))
let evalue_off e = e + entry_meta

let setf h tx off v =
  Pool_impl.tx_log tx ~off ~len:8;
  D.write_u64 (dev h.pool) off (Int64.of_int v)

let set_count h tx v = setf h tx h.hdr v
let set_enext h tx e v = setf h tx (e + 8) v

let length h =
  Pool_impl.check_open h.pool;
  read_count h

let buckets h =
  Pool_impl.check_open h.pool;
  read_nbuckets h

let is_empty h = length h = 0

(* Fibonacci hashing spreads adversarial integer keys. *)
let bucket_of h k =
  let nb = read_nbuckets h in
  Int64.to_int
    (Int64.unsigned_rem (Int64.mul (Int64.of_int k) 0x9E3779B97F4A7C15L)
       (Int64.of_int nb))

let head_addr h b = read_dir h + (b * 8)
let head h b = Int64.to_int (D.read_u64 (dev h.pool) (head_addr h b))

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let make ~vty ?(nbuckets = 16) j =
  if nbuckets <= 0 then invalid_arg "Phashtbl.make: nbuckets must be positive";
  let nbuckets = pow2_at_least nbuckets 1 in
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  let dir = Pool_impl.tx_alloc tx (nbuckets * 8) in
  D.fill (dev pool) dir (nbuckets * 8) '\000';
  D.write_u64 (dev pool) hdr 0L;
  D.write_u64 (dev pool) (hdr + 8) (Int64.of_int nbuckets);
  D.write_u64 (dev pool) (hdr + 16) (Int64.of_int dir);
  D.persist (dev pool) hdr hdr_size;
  D.persist (dev pool) dir (nbuckets * 8);
  { hdr; pool; vty }

let find h k =
  Pool_impl.check_open h.pool;
  let rec go e =
    if e = 0 then None
    else if ekey h e = k then Some (Ptype.read h.vty h.pool (evalue_off e))
    else go (enext h e)
  in
  go (head h (bucket_of h k))

let mem h k = find h k <> None

(* Double the directory and relink every entry.  Entries move between
   chains by pointer surgery only (their blocks stay put); all the
   touched words are undo-logged, so the whole rehash rolls back as a
   unit. *)
let grow h tx =
  let old_nb = read_nbuckets h and old_dir = read_dir h in
  let nb = old_nb * 2 in
  let dir = Pool_impl.tx_alloc tx (nb * 8) in
  D.fill (dev h.pool) dir (nb * 8) '\000';
  Pool_impl.tx_add_target tx ~off:dir ~len:(nb * 8);
  (* swap the directory in first so bucket_of uses the new geometry *)
  Pool_impl.tx_log tx ~off:(h.hdr + 8) ~len:16;
  D.write_u64 (dev h.pool) (h.hdr + 8) (Int64.of_int nb);
  D.write_u64 (dev h.pool) (h.hdr + 16) (Int64.of_int dir);
  for b = 0 to old_nb - 1 do
    let rec relink e =
      if e <> 0 then begin
        let next = enext h e in
        let nb' = bucket_of h (ekey h e) in
        set_enext h tx e (head h nb');
        setf h tx (head_addr h nb') e;
        relink next
      end
    in
    relink (Int64.to_int (D.read_u64 (dev h.pool) (old_dir + (b * 8))))
  done;
  Pool_impl.tx_free tx old_dir

let add h ~key:k v j =
  let tx = Journal.tx j in
  let rec find_entry e =
    if e = 0 then None else if ekey h e = k then Some e else find_entry (enext h e)
  in
  match find_entry (head h (bucket_of h k)) with
  | Some e ->
      Pool_impl.tx_log tx ~off:(evalue_off e) ~len:(vsize h);
      Ptype.drop h.vty tx (evalue_off e);
      Ptype.write h.vty h.pool (evalue_off e) v
  | None ->
      if read_count h >= 2 * read_nbuckets h then grow h tx;
      let b = bucket_of h k in
      let e = Pool_impl.tx_alloc tx (entry_size h) in
      D.write_u64 (dev h.pool) e (Int64.of_int k);
      D.write_u64 (dev h.pool) (e + 8) (Int64.of_int (head h b));
      Ptype.write h.vty h.pool (evalue_off e) v;
      D.persist (dev h.pool) e (entry_size h);
      setf h tx (head_addr h b) e;
      set_count h tx (read_count h + 1)

let remove h k j =
  let tx = Journal.tx j in
  let rec unlink prev_addr e =
    if e = 0 then false
    else if ekey h e = k then begin
      setf h tx prev_addr (enext h e);
      Ptype.drop h.vty tx (evalue_off e);
      Pool_impl.tx_free tx e;
      set_count h tx (read_count h - 1);
      true
    end
    else unlink (e + 8) (enext h e)
  in
  let b = bucket_of h k in
  unlink (head_addr h b) (head h b)

let fold h ~init ~f =
  Pool_impl.check_open h.pool;
  let acc = ref init in
  for b = 0 to read_nbuckets h - 1 do
    let rec go e =
      if e <> 0 then begin
        acc := f !acc (ekey h e) (Ptype.read h.vty h.pool (evalue_off e));
        go (enext h e)
      end
    in
    go (head h b)
  done;
  !acc

let iter h f = fold h ~init:() ~f:(fun () k v -> f k v)

let to_list h =
  List.sort compare (fold h ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let clear h j =
  let tx = Journal.tx j in
  for b = 0 to read_nbuckets h - 1 do
    let rec drop_chain e =
      if e <> 0 then begin
        let next = enext h e in
        Ptype.drop h.vty tx (evalue_off e);
        Pool_impl.tx_free tx e;
        drop_chain next
      end
    in
    drop_chain (head h b);
    setf h tx (head_addr h b) 0
  done;
  set_count h tx 0

let drop h j =
  let tx = Journal.tx j in
  for b = 0 to read_nbuckets h - 1 do
    let rec drop_chain e =
      if e <> 0 then begin
        let next = enext h e in
        Ptype.drop h.vty tx (evalue_off e);
        Pool_impl.tx_free tx e;
        drop_chain next
      end
    in
    drop_chain (head h b)
  done;
  Pool_impl.tx_free tx (read_dir h);
  Pool_impl.tx_free tx h.hdr

let check h =
  Pool_impl.check_open h.pool;
  let n = read_count h and nb = read_nbuckets h in
  let seen = ref 0 in
  let rec go b e steps =
    if e <> 0 then
      if steps > n then Error "chain cycle suspected"
      else if bucket_of h (ekey h e) <> b then
        Error (Printf.sprintf "key %d in wrong bucket %d" (ekey h e) b)
      else begin
        incr seen;
        go b (enext h e) (steps + 1)
      end
    else Ok ()
  in
  let rec buckets b =
    if b >= nb then Ok ()
    else match go b (head h b) 0 with Ok () -> buckets (b + 1) | e -> e
  in
  match buckets 0 with
  | Error _ as e -> e
  | Ok () ->
      if !seen <> n then
        Error (Printf.sprintf "count %d but %d entries" n !seen)
      else Ok ()

let make_ptype inner_of =
  Ptype.make ~name:"phashtbl" ~size:8
    ~read:(fun pool off ->
      {
        hdr = Int64.to_int (D.read_u64 (dev pool) off);
        pool;
        vty = inner_of ();
      })
    ~write:(fun pool off h -> D.write_u64 (dev pool) off (Int64.of_int h.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then
        drop { hdr; pool; vty = inner_of () } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let h = { hdr; pool = p; vty = inner_of () } in
                [
                  {
                    Ptype.block = read_dir h;
                    follow =
                      (fun p2 ->
                        let h2 = { h with pool = p2 } in
                        let edges = ref [] in
                        for b = 0 to read_nbuckets h2 - 1 do
                          let rec chain e =
                            if e <> 0 then begin
                              edges :=
                                {
                                  Ptype.block = e;
                                  follow =
                                    (fun p3 ->
                                      Ptype.reach (inner_of ()) p3
                                        (evalue_off e));
                                }
                                :: !edges;
                              chain (enext h2 e)
                            end
                          in
                          chain (head h2 b)
                        done;
                        !edges);
                  };
                ]);
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make
    ~name:(Printf.sprintf "%s phashtbl" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
