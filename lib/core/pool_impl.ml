exception Pool_closed
exception Tx_escape
exception Borrow_error of string
exception Recovery_needed of string
exception Read_only_pool

module D = Pmem.Device
module B = Palloc.Buddy
module T = Palloc.Alloc_table
module J = Pjournal.Journal_impl
module GC = Pjournal.Group_commit
module R = Pjournal.Recovery
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics
module Pr = Ptelemetry.Probe

let m_tx = Mx.counter "tx.count"
let m_aborts = Mx.counter "tx.aborts"
let m_recoveries = Mx.counter "recovery.count"
let m_rolled_back = Mx.counter "recovery.rolled_back"
let m_completed = Mx.counter "recovery.completed"
let h_recovery_latency = Mx.histogram "recovery.latency_ns"
let h_recovery_phase name = Mx.histogram ("recovery.phase." ^ name ^ "_ns")
let h_tx_latency = Mx.histogram "tx.latency_ns"
let h_tx_logged = Mx.histogram "tx.logged_bytes"
let h_tx_flushes = Mx.histogram "tx.flushes"
let h_tx_fences = Mx.histogram "tx.fences"
let h_tx_undo = Mx.histogram "tx.undo_depth"

(* On-media header layout. *)
let header_size = 4096
let magic = "CORUNDUM-POOL-01"
let version = 1
let hdr_version = 16
let hdr_generation = 24
let hdr_root = 32 (* root_off u64 then root_ty_hash u64 *)
let hdr_root_hash = 40
let hdr_nslots = 48
let hdr_slot_size = 56
let hdr_heap_len = 64
let hdr_table_base = 72
let hdr_heap_base = 80
let hdr_csum = 88 (* CRC-32 of the immutable layout fields *)
let hdr_tx_total = 96 (* lifetime committed transactions, folded at save *)
let hdr_abort_total = 104 (* lifetime aborted transactions, folded at save *)

(* The header checksum covers the fields that never change after format:
   version, nslots, slot size, heap length, table base, heap base.  The
   generation counter and the root words are deliberately excluded — they
   are updated through their own atomic, journal-protected protocols. *)
let header_crc dev =
  let buf = Bytes.create 48 in
  List.iteri
    (fun i off -> Bytes.set_int64_le buf (i * 8) (D.read_u64 dev off))
    [ hdr_version; hdr_nslots; hdr_slot_size; hdr_heap_len; hdr_table_base;
      hdr_heap_base ];
  Pmem.Crc32.bytes buf

let stored_header_crc dev = Int64.to_int (D.read_u64 dev hdr_csum)
let header_crc_ok dev = stored_header_crc dev = header_crc dev

let write_header_crc dev =
  D.write_u64 dev hdr_csum (Int64.of_int (header_crc dev));
  D.persist dev hdr_csum 8

type open_mode = Read_write | Read_only

type config = { size : int; nslots : int; slot_size : int }

let default_config = { size = 64 * 1024 * 1024; nslots = 8; slot_size = 256 * 1024 }

type lock_entry = {
  mutex : Mutex.t;
  mutable owner : int option; (* owning domain id *)
  mutable lock_depth : int;
}

type t = {
  dev : D.t;
  buddy : B.t;
  uid : int;
  mutable open_ : bool;
  read_only : bool;
  nslots : int;
  slot_size : int;
  journal_base : int;
  table_base : int;
  heap_base : int;
  heap_len : int;
  slots : J.t array;
  slot_free : bool array;
  slot_lock : Mutex.t;
  slot_cond : Condition.t;
  (* Shared-pool domain binding: a registered domain owns one dedicated
     journal slot (and with it that slot's allocator stripe) for its
     whole registration, so its transactions never contend on slot
     acquisition.  Guarded by [slot_lock]. *)
  bound_slots : (int, int) Hashtbl.t; (* domain id -> dedicated slot *)
  (* Cross-transaction group-commit combiner: when set, every commit on
     this pool publishes its line set to the epoch combiner instead of
     flushing and fencing privately.  Volatile — rebuilt fresh on every
     open, never reused across a power cycle. *)
  mutable combiner : GC.t option;
  txs : (int, tx) Hashtbl.t; (* domain id -> active transaction *)
  txs_lock : Mutex.t;
  locks : (int, lock_entry) Hashtbl.t;
  locks_lock : Mutex.t;
  borrows : (int, unit) Hashtbl.t;
  borrows_lock : Mutex.t;
  births : (int, int) Hashtbl.t;
  births_lock : Mutex.t;
  recovery : R.stats;
  (* Volatile statistics counters.  Atomic because transactions on a
     shared pool bump them from several domains concurrently; plain
     mutable ints would lose increments under contention. *)
  n_tx : int Atomic.t;
  n_abort : int Atomic.t;
  n_logs : int Atomic.t;
  n_allocs : int Atomic.t;
  n_frees : int Atomic.t;
  n_logged_bytes : int Atomic.t;
  (* Lifetime totals read from the header at open; the volatile [n_tx] /
     [n_abort] deltas are folded back into the header only at {!save} and
     {!close}, so steady-state commits add no persist points. *)
  lifetime_tx0 : int;
  lifetime_abort0 : int;
}

and tx = {
  pool : t;
  jrnl : J.t;
  slot_idx : int;
  bound : bool; (* slot owned by a registered domain: not released at end *)
  domain : int;
  mutable depth : int;
  valid : bool ref;
  mutable held : lock_entry list;
  mutable borrowed : int list;
}

let next_uid = Atomic.make 1

let check_open t = if not t.open_ then raise Pool_closed
let is_open t = t.open_
let is_read_only t = t.read_only
let check_writable t = if t.read_only then raise Read_only_pool
let uid t = t.uid
let device t = t.dev
let buddy t = t.buddy
let recovery_stats t = t.recovery
let generation t = Int64.to_int (D.read_u64 t.dev hdr_generation)
let root_off t = Int64.to_int (D.read_u64 t.dev hdr_root)
let root_ty_hash t = Int64.to_int (D.read_u64 t.dev hdr_root_hash)

(* Compute the media layout for a device of [size] bytes. *)
let layout ~size ~nslots ~slot_size =
  let table_base = header_size + (nslots * slot_size) in
  if table_base >= size then invalid_arg "Pool_impl: pool too small for journals";
  (* heap + table share the rest; the table is 1/64 of the heap *)
  let budget = size - table_base in
  let heap_len = ref (budget * 64 / 65 / 64 * 64) in
  let heap_base_of len = (table_base + T.table_bytes ~heap_len:len + 63) / 64 * 64 in
  while !heap_len > 0 && heap_base_of !heap_len + !heap_len > size do
    heap_len := !heap_len - 64
  done;
  if !heap_len <= 0 then invalid_arg "Pool_impl: pool too small for a heap";
  (table_base, heap_base_of !heap_len, !heap_len)

let build ?(read_only = false) dev ~buddy ~nslots ~slot_size ~table_base
    ~heap_base ~heap_len ~recovery =
  let slots =
    Array.init nslots (fun i ->
        (* each slot prefers its own allocator stripe *)
        J.attach ~alloc_hint:i dev buddy
          ~base:(header_size + (i * slot_size))
          ~size:slot_size)
  in
  if Pr.on () then begin
    Pr.emit (Pr.Pool_attach { dev = D.id dev; heap_base; heap_len });
    Pr.emit
      (Pr.Pool_layout
         {
           dev = D.id dev;
           journal_base = header_size;
           slot_size;
           nslots;
           table_base;
           heap_base;
           heap_len;
           cow_base = Cow_root.base;
           cow_len = Cow_root.region_len;
         })
  end;
  {
    dev;
    buddy;
    uid = Atomic.fetch_and_add next_uid 1;
    open_ = true;
    read_only;
    nslots;
    slot_size;
    journal_base = header_size;
    table_base;
    heap_base;
    heap_len;
    slots;
    slot_free = Array.make nslots true;
    slot_lock = Mutex.create ();
    slot_cond = Condition.create ();
    bound_slots = Hashtbl.create 8;
    combiner = None;
    txs = Hashtbl.create 8;
    txs_lock = Mutex.create ();
    locks = Hashtbl.create 64;
    locks_lock = Mutex.create ();
    borrows = Hashtbl.create 64;
    borrows_lock = Mutex.create ();
    births = Hashtbl.create 64;
    births_lock = Mutex.create ();
    recovery;
    n_tx = Atomic.make 0;
    n_abort = Atomic.make 0;
    n_logs = Atomic.make 0;
    n_allocs = Atomic.make 0;
    n_frees = Atomic.make 0;
    n_logged_bytes = Atomic.make 0;
    lifetime_tx0 = Int64.to_int (D.read_u64 dev hdr_tx_total);
    lifetime_abort0 = Int64.to_int (D.read_u64 dev hdr_abort_total);
  }

let bump_generation dev =
  let g = D.read_u64 dev hdr_generation in
  D.write_u64 dev hdr_generation (Int64.add g 1L);
  D.persist dev hdr_generation 8

let create ?(config = default_config) ?latency ?path () =
  let { size; nslots; slot_size } = config in
  let dev = D.create ?latency ?path ~size () in
  let table_base, heap_base, heap_len = layout ~size ~nslots ~slot_size in
  (* Format: header, journal slots, allocation table. *)
  D.write_string dev 0 magic;
  D.write_u64 dev hdr_version (Int64.of_int version);
  D.write_u64 dev hdr_generation 1L;
  D.write_u64 dev hdr_root 0L;
  D.write_u64 dev hdr_root_hash 0L;
  D.write_u64 dev hdr_nslots (Int64.of_int nslots);
  D.write_u64 dev hdr_slot_size (Int64.of_int slot_size);
  D.write_u64 dev hdr_heap_len (Int64.of_int heap_len);
  D.write_u64 dev hdr_table_base (Int64.of_int table_base);
  D.write_u64 dev hdr_heap_base (Int64.of_int heap_base);
  D.write_u64 dev hdr_csum (Int64.of_int (header_crc dev));
  D.persist dev 0 header_size;
  for i = 0 to nslots - 1 do
    J.format dev ~base:(header_size + (i * slot_size)) ~size:slot_size
  done;
  let buddy = B.create ~stripes:nslots dev ~table_base ~heap_base ~heap_len in
  build dev ~buddy ~nslots ~slot_size ~table_base ~heap_base ~heap_len
    ~recovery:R.empty_stats

(* Attach to formatted media: verify the header, run recovery, rebuild.
   In [Read_only] mode nothing is written — recovery and the generation
   bump are skipped — so a damaged-but-readable pool can still be
   salvaged; reads may then observe uncommitted in-flight data. *)
let attach ?(mode = Read_write) dev =
  let m = D.read_string dev 0 (String.length magic) in
  if not (String.equal m magic) then
    raise (Recovery_needed "bad magic: not a Corundum pool");
  let v = Int64.to_int (D.read_u64 dev hdr_version) in
  if v <> version then
    raise (Recovery_needed (Printf.sprintf "unsupported pool version %d" v));
  if mode = Read_write && not (header_crc_ok dev) then
    raise
      (Recovery_needed
         "pool header checksum mismatch (run fsck, or open read-only)");
  let nslots = Int64.to_int (D.read_u64 dev hdr_nslots) in
  let slot_size = Int64.to_int (D.read_u64 dev hdr_slot_size) in
  let heap_len = Int64.to_int (D.read_u64 dev hdr_heap_len) in
  let table_base = Int64.to_int (D.read_u64 dev hdr_table_base) in
  let heap_base = Int64.to_int (D.read_u64 dev hdr_heap_base) in
  let recovery =
    match mode with
    | Read_only -> R.empty_stats
    | Read_write ->
        let table = T.attach dev ~table_base ~heap_base ~heap_len in
        let t0 = if Tr.on () then D.simulated_ns dev else 0.0 in
        (* Recovery restores logged heap state outside any transaction —
           that is the protocol, not a violation, so the audit window is
           bracketed as exempt. *)
        if Pr.on () then Pr.emit (Pr.Exempt_push { dev = D.id dev });
        let r =
          Fun.protect
            ~finally:(fun () ->
              if Pr.on () then Pr.emit (Pr.Exempt_pop { dev = D.id dev }))
            (fun () ->
              R.recover dev table ~journal_base:header_size ~slot_size ~nslots)
        in
        if Tr.on () then begin
          Mx.incr m_recoveries;
          Mx.incr ~by:r.R.rolled_back m_rolled_back;
          Mx.incr ~by:r.R.completed m_completed;
          List.iter
            (fun (name, dur) ->
              Mx.observe (h_recovery_phase name) (int_of_float dur))
            r.R.phase_ns;
          Tr.emit
            ~args:
              [
                ("slots", string_of_int r.R.slots_scanned);
                ("rolled_back", string_of_int r.R.rolled_back);
                ("completed", string_of_int r.R.completed);
                ("entries_skipped", string_of_int r.R.entries_skipped);
              ]
            ~cat:"pool" ~name:"recovery"
            ~ph:(Tr.X (D.simulated_ns dev -. t0))
            ~ts_ns:t0 ()
        end;
        r
  in
  (* The buddy attach rescans the whole allocation table to rebuild its
     volatile free lists — the O(pool size) component of recovery
     latency, timed as its own phase. *)
  let ts0 = D.simulated_ns dev in
  let buddy = B.attach ~stripes:nslots dev ~table_base ~heap_base ~heap_len in
  let recovery =
    if mode <> Read_write then recovery
    else begin
      let ts1 = D.simulated_ns dev in
      if Pr.on () then
        Pr.emit
          (Pr.Recovery_phase
             {
               dev = D.id dev;
               phase = "table_scan";
               ns = ts1;
               dur_ns = ts1 -. ts0;
             });
      if Tr.on () then begin
        Mx.observe (h_recovery_phase "table_scan") (int_of_float (ts1 -. ts0));
        (* Total open-time recovery latency: journal recovery (walk,
           rollback, drops, remark, truncate across all slots) plus the
           table rescan. *)
        let journal_ns =
          List.fold_left (fun a (_, d) -> a +. d) 0.0 recovery.R.phase_ns
        in
        Mx.observe h_recovery_latency
          (int_of_float (journal_ns +. (ts1 -. ts0)))
      end;
      {
        recovery with
        R.phase_ns =
          R.add_phase "table_scan" (ts1 -. ts0) recovery.R.phase_ns;
      }
    end
  in
  (* CoW root cells: resolve any pending intent (roll the interrupted
     mod-engine transaction forward or back).  Runs after the buddy
     attach because a rollback edits allocation-table bytes, which then
     invalidates the freshly rebuilt free lists. *)
  let recovery =
    if mode <> Read_write then recovery
    else begin
      let cs0 = D.simulated_ns dev in
      let cst = Cow_root.recover dev (B.table buddy) in
      if cst.Cow_root.table_edited then B.rebuild buddy;
      let cs1 = D.simulated_ns dev in
      if Pr.on () && (cst.Cow_root.rolled_forward > 0 || cst.Cow_root.rolled_back > 0)
      then
        Pr.emit
          (Pr.Recovery_phase
             { dev = D.id dev; phase = "cow"; ns = cs1; dur_ns = cs1 -. cs0 });
      if cs1 > cs0 then
        { recovery with R.phase_ns = R.add_phase "cow" (cs1 -. cs0) recovery.R.phase_ns }
      else recovery
    end
  in
  if mode = Read_write then bump_generation dev;
  build ~read_only:(mode = Read_only) dev ~buddy ~nslots ~slot_size ~table_base
    ~heap_base ~heap_len ~recovery

let open_file ?(mode = Read_write) ?latency path =
  attach ~mode (D.load ?latency path)

let reopen t =
  t.open_ <- false;
  D.power_cycle t.dev;
  attach t.dev

(* Fold the volatile transaction totals into the header.  Called only at
   save/close so ordinary commits stay free of extra persist points; a
   crash loses at most the counts since the last save (the counters are
   statistics, not correctness state). *)
let persist_lifetime_totals t =
  if not (D.is_crashed t.dev) then begin
    D.write_u64 t.dev hdr_tx_total
      (Int64.of_int (t.lifetime_tx0 + Atomic.get t.n_tx));
    D.write_u64 t.dev hdr_abort_total
      (Int64.of_int (t.lifetime_abort0 + Atomic.get t.n_abort));
    D.persist t.dev hdr_tx_total 16
  end

let save t =
  check_open t;
  check_writable t;
  persist_lifetime_totals t;
  D.save t.dev

let close t =
  check_open t;
  Mutex.lock t.txs_lock;
  let busy = Hashtbl.length t.txs > 0 in
  Mutex.unlock t.txs_lock;
  if busy then invalid_arg "Pool_impl.close: transactions in progress";
  if not t.read_only then begin
    persist_lifetime_totals t;
    if D.path t.dev <> None then D.save t.dev
  end;
  t.open_ <- false

(* {1 Transaction engine} *)

let tx_pool tx = tx.pool
let tx_valid tx = !(tx.valid)
let tx_validity tx = tx.valid
let tx_journal tx = if !(tx.valid) then tx.jrnl else raise Tx_escape

let in_transaction t =
  let did = (Domain.self () :> int) in
  Mutex.lock t.txs_lock;
  let r = Hashtbl.mem t.txs did in
  Mutex.unlock t.txs_lock;
  r

let acquire_slot t =
  Mutex.lock t.slot_lock;
  let rec find i =
    if i >= t.nslots then None
    else if t.slot_free.(i) then Some i
    else find (i + 1)
  in
  let rec wait () =
    match find 0 with
    | Some i ->
        t.slot_free.(i) <- false;
        Mutex.unlock t.slot_lock;
        i
    | None ->
        Condition.wait t.slot_cond t.slot_lock;
        wait ()
  in
  wait ()

let release_slot t i =
  Mutex.lock t.slot_lock;
  t.slot_free.(i) <- true;
  Condition.signal t.slot_cond;
  Mutex.unlock t.slot_lock

(* {1 Shared-pool domain binding and group commit}

   A worker domain on a shared pool registers once up front and owns a
   dedicated journal slot — and, through the slot's [alloc_hint], its own
   allocator stripe — until it unregisters.  Its transactions then skip
   slot acquisition entirely: no contention on [slot_lock] waiting, no
   slot migration between transactions, and the slot index doubles as a
   stable per-domain identity for inspection. *)

let register_domain t =
  check_open t;
  let did = (Domain.self () :> int) in
  Mutex.lock t.slot_lock;
  let slot =
    match Hashtbl.find_opt t.bound_slots did with
    | Some i -> i (* idempotent: already bound *)
    | None ->
        let rec find i =
          if i >= t.nslots then None
          else if t.slot_free.(i) then Some i
          else find (i + 1)
        in
        (match find 0 with
        | Some i ->
            t.slot_free.(i) <- false;
            Hashtbl.replace t.bound_slots did i;
            i
        | None ->
            Mutex.unlock t.slot_lock;
            invalid_arg
              "Pool_impl.register_domain: no free journal slot (raise nslots)")
  in
  Mutex.unlock t.slot_lock;
  slot

let unregister_domain t =
  let did = (Domain.self () :> int) in
  Mutex.lock t.txs_lock;
  let busy = Hashtbl.mem t.txs did in
  Mutex.unlock t.txs_lock;
  if busy then
    invalid_arg "Pool_impl.unregister_domain: transaction in progress";
  Mutex.lock t.slot_lock;
  (match Hashtbl.find_opt t.bound_slots did with
  | Some i ->
      Hashtbl.remove t.bound_slots did;
      t.slot_free.(i) <- true;
      Condition.signal t.slot_cond
  | None -> ());
  Mutex.unlock t.slot_lock

let slot_of_domain t =
  let did = (Domain.self () :> int) in
  Mutex.lock t.slot_lock;
  let r = Hashtbl.find_opt t.bound_slots did in
  Mutex.unlock t.slot_lock;
  r

(* The default leader linger (batch-until-quiet spin rounds).  Sized so
   a leader waits tens of microseconds of wall time for concurrent
   committers — enough for domains in a commit storm to pile into one
   epoch (measured mean occupancy ~3 of 4 committing domains), invisible
   to the simulated clock, and self-limiting when solo (the budget runs
   out quietly). *)
let default_linger = 4096

let set_group_commit ?(linger = default_linger) t enabled =
  check_open t;
  t.combiner <- (if enabled then Some (GC.create ~linger t.dev) else None)

let group_commit_stats t = Option.map GC.stats t.combiner

let release_locks tx =
  List.iter
    (fun e ->
      e.owner <- None;
      e.lock_depth <- 0;
      Mutex.unlock e.mutex)
    tx.held;
  tx.held <- []

let clear_borrows tx =
  let t = tx.pool in
  Mutex.lock t.borrows_lock;
  List.iter (fun off -> Hashtbl.remove t.borrows off) tx.borrowed;
  Mutex.unlock t.borrows_lock;
  tx.borrowed <- []

let unregister tx =
  let t = tx.pool in
  tx.valid := false;
  Mutex.lock t.txs_lock;
  Hashtbl.remove t.txs tx.domain;
  Mutex.unlock t.txs_lock;
  if not tx.bound then release_slot t tx.slot_idx

let finish_commit tx =
  J.commit ?group:tx.pool.combiner tx.jrnl;
  release_locks tx;
  clear_borrows tx;
  unregister tx;
  Atomic.incr tx.pool.n_tx;
  ignore
    (Atomic.fetch_and_add tx.pool.n_logged_bytes (J.tx_logged_bytes tx.jrnl))

let finish_abort tx =
  J.abort tx.jrnl;
  release_locks tx;
  clear_borrows tx;
  unregister tx;
  Atomic.incr tx.pool.n_abort;
  ignore
    (Atomic.fetch_and_add tx.pool.n_logged_bytes (J.tx_logged_bytes tx.jrnl))

(* A simulated power failure: the media is frozen, so neither commit nor
   abort may run; drop the volatile transaction state and propagate. *)
let finish_crashed tx =
  release_locks tx;
  clear_borrows tx;
  unregister tx;
  tx.pool.open_ <- false

let transaction t f =
  check_open t;
  check_writable t;
  let did = (Domain.self () :> int) in
  Mutex.lock t.txs_lock;
  let existing = Hashtbl.find_opt t.txs did in
  Mutex.unlock t.txs_lock;
  match existing with
  | Some tx ->
      (* Nested transaction: flatten onto the enclosing one. *)
      tx.depth <- tx.depth + 1;
      Fun.protect ~finally:(fun () -> tx.depth <- tx.depth - 1) (fun () -> f tx)
  | None ->
      let slot_idx, bound =
        match slot_of_domain t with
        | Some i -> (i, true) (* registered domain: its dedicated slot *)
        | None -> (acquire_slot t, false)
      in
      let jrnl = t.slots.(slot_idx) in
      (match J.begin_tx jrnl with
      | () -> ()
      | exception e ->
          if not bound then release_slot t slot_idx;
          raise e);
      let tx =
        {
          pool = t;
          jrnl;
          slot_idx;
          bound;
          domain = did;
          depth = 0;
          valid = ref true;
          held = [];
          borrowed = [];
        }
      in
      Mutex.lock t.txs_lock;
      Hashtbl.replace t.txs did tx;
      Mutex.unlock t.txs_lock;
      if Pr.on () then
        Pr.emit (Pr.Tx_begin { dev = D.id t.dev; ns = D.simulated_ns t.dev });
      (* The probe outcome event after each finisher; [simulated_ns] is a
         pure counter fold, safe even on a crashed device. *)
      let probe_end outcome =
        if Pr.on () then
          Pr.emit
            (Pr.Tx_end { dev = D.id t.dev; outcome; ns = D.simulated_ns t.dev })
      in
      (* Telemetry brackets the outermost transaction: an instant at
         begin and one complete ("X") span at the end whose args carry
         the per-transaction flush/fence/logging attribution, derived
         from device-counter deltas so tracing itself never perturbs the
         simulated clock. *)
      let tr = Tr.on () in
      let t0 = if tr then D.simulated_ns t.dev else 0.0 in
      let s0 = if tr then Some (D.stats t.dev) else None in
      if tr then
        Tr.emit
          ~args:[ ("slot", string_of_int slot_idx) ]
          ~cat:"pool" ~name:"tx_begin" ~ph:Tr.I ~ts_ns:t0 ();
      let note outcome ~undo_depth =
        if tr then begin
          let t1 = D.simulated_ns t.dev in
          let s1 = D.stats t.dev and s0 = Option.get s0 in
          let flushes = s1.D.flush_calls - s0.D.flush_calls in
          let fences = s1.D.fences - s0.D.fences in
          let logged = J.tx_logged_bytes jrnl in
          Mx.incr m_tx;
          if outcome = "abort" then Mx.incr m_aborts;
          if outcome <> "crash" then begin
            Mx.observe h_tx_latency (int_of_float (t1 -. t0));
            Mx.observe h_tx_logged logged;
            Mx.observe h_tx_flushes flushes;
            Mx.observe h_tx_fences fences;
            Mx.observe h_tx_undo undo_depth
          end;
          Tr.emit
            ~args:
              [
                ("outcome", outcome);
                ("flushes", string_of_int flushes);
                ("fences", string_of_int fences);
                ("logged_bytes", string_of_int logged);
                ("undo_depth", string_of_int undo_depth);
              ]
            ~cat:"pool" ~name:"tx"
            ~ph:(Tr.X (t1 -. t0))
            ~ts_ns:t0 ()
        end
      in
      (match f tx with
      | result ->
          let undo_depth = J.entry_count jrnl in
          finish_commit tx;
          probe_end Pr.Commit;
          note "commit" ~undo_depth;
          result
      | exception D.Crashed ->
          finish_crashed tx;
          probe_end Pr.Crash;
          note "crash" ~undo_depth:(J.entry_count jrnl);
          raise D.Crashed
      | exception e ->
          let undo_depth = J.entry_count jrnl in
          (match finish_abort tx with
          | () -> ()
          | exception D.Crashed ->
              finish_crashed tx;
              probe_end Pr.Crash;
              note "crash" ~undo_depth;
              raise D.Crashed);
          probe_end Pr.Abort;
          note "abort" ~undo_depth;
          raise e)

(* {1 Logged heap operations} *)

let live_tx tx = if not !(tx.valid) then raise Tx_escape

let tx_alloc tx size =
  live_tx tx;
  let off = J.alloc tx.jrnl size in
  let t = tx.pool in
  Atomic.incr t.n_allocs;
  Mutex.lock t.births_lock;
  Hashtbl.replace t.births off
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.births off));
  Mutex.unlock t.births_lock;
  off

let tx_free tx off =
  live_tx tx;
  Atomic.incr tx.pool.n_frees;
  J.free tx.jrnl off

let tx_log tx ~off ~len =
  live_tx tx;
  Atomic.incr tx.pool.n_logs;
  J.data_log tx.jrnl ~off ~len

let tx_log_nodedup tx ~off ~len =
  live_tx tx;
  Atomic.incr tx.pool.n_logs;
  J.data_log_nodedup tx.jrnl ~off ~len

let tx_add_target tx ~off ~len =
  live_tx tx;
  J.add_target tx.jrnl ~off ~len

let tx_set_root tx ~off ~ty_hash =
  live_tx tx;
  J.data_log tx.jrnl ~off:hdr_root ~len:16;
  D.write_u64 tx.pool.dev hdr_root (Int64.of_int off);
  D.write_u64 tx.pool.dev hdr_root_hash (Int64.of_int ty_hash)

(* {1 Volatile side tables} *)

let tx_lock tx off =
  live_tx tx;
  let t = tx.pool in
  Mutex.lock t.locks_lock;
  let entry =
    match Hashtbl.find_opt t.locks off with
    | Some e -> e
    | None ->
        let e = { mutex = Mutex.create (); owner = None; lock_depth = 0 } in
        Hashtbl.add t.locks off e;
        e
  in
  Mutex.unlock t.locks_lock;
  if entry.owner = Some tx.domain then entry.lock_depth <- entry.lock_depth + 1
  else begin
    Mutex.lock entry.mutex;
    entry.owner <- Some tx.domain;
    entry.lock_depth <- 1;
    tx.held <- entry :: tx.held
  end

let borrow_mut_flag tx off =
  live_tx tx;
  let t = tx.pool in
  Mutex.lock t.borrows_lock;
  let dup = Hashtbl.mem t.borrows off in
  if not dup then Hashtbl.add t.borrows off ();
  Mutex.unlock t.borrows_lock;
  if dup then
    raise
      (Borrow_error
         (Printf.sprintf "cell at %d is already mutably borrowed" off));
  tx.borrowed <- off :: tx.borrowed

let release_borrow_flag t off =
  Mutex.lock t.borrows_lock;
  Hashtbl.remove t.borrows off;
  Mutex.unlock t.borrows_lock

let is_borrowed t off =
  Mutex.lock t.borrows_lock;
  let r = Hashtbl.mem t.borrows off in
  Mutex.unlock t.borrows_lock;
  r

let birth t off =
  Mutex.lock t.births_lock;
  let r = Option.value ~default:0 (Hashtbl.find_opt t.births off) in
  Mutex.unlock t.births_lock;
  r

let bump_birth t off =
  Mutex.lock t.births_lock;
  Hashtbl.replace t.births off
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.births off));
  Mutex.unlock t.births_lock

(* {1 Accounting} *)

type pool_stats = {
  heap_capacity : int;
  heap_used : int;
  live_blocks : int;
  transactions : int;
  aborts : int;
  log_requests : int;
  allocations : int;
  frees : int;
  logged_bytes : int;
  lifetime_transactions : int;
  lifetime_aborts : int;
}

let stats t =
  {
    heap_capacity = B.capacity t.buddy;
    heap_used = B.used_bytes t.buddy;
    live_blocks = Palloc.Heap_walk.live_count t.buddy;
    transactions = Atomic.get t.n_tx;
    aborts = Atomic.get t.n_abort;
    log_requests = Atomic.get t.n_logs;
    allocations = Atomic.get t.n_allocs;
    frees = Atomic.get t.n_frees;
    logged_bytes = Atomic.get t.n_logged_bytes;
    lifetime_transactions = t.lifetime_tx0 + Atomic.get t.n_tx;
    lifetime_aborts = t.lifetime_abort0 + Atomic.get t.n_abort;
  }
