module D = Pmem.Device

(* Header block: [root u64 | size u64].
   Node block:   [key i64 | height u64 | left u64 | right u64 | value]. *)
let hdr_size = 16
let node_meta = 32

type ('a, 'p) t = { hdr : int; pool : Pool_impl.t; vty : ('a, 'p) Ptype.t }

let off m = m.hdr
let dev pool = Pool_impl.device pool
let vsize m = max 8 (Ptype.size m.vty)
let node_size m = node_meta + vsize m
let read_root m = Int64.to_int (D.read_u64 (dev m.pool) m.hdr)
let read_size m = Int64.to_int (D.read_u64 (dev m.pool) (m.hdr + 8))
let key m n = Int64.to_int (D.read_u64 (dev m.pool) n)
let hgt m n = Int64.to_int (D.read_u64 (dev m.pool) (n + 8))
let left m n = Int64.to_int (D.read_u64 (dev m.pool) (n + 16))
let right m n = Int64.to_int (D.read_u64 (dev m.pool) (n + 24))
let value_off n = n + node_meta

(* Logged field writes (8-byte exact ranges; dedup makes repeats free). *)
let setf m tx off v =
  Pool_impl.tx_log tx ~off ~len:8;
  D.write_u64 (dev m.pool) off (Int64.of_int v)

let set_root m tx v = setf m tx m.hdr v
let set_size m tx v = setf m tx (m.hdr + 8) v
let set_hgt m tx n v = setf m tx (n + 8) v
let set_left m tx n v = setf m tx (n + 16) v
let set_right m tx n v = setf m tx (n + 24) v

let length m =
  Pool_impl.check_open m.pool;
  read_size m

let is_empty m = length m = 0

let height m =
  Pool_impl.check_open m.pool;
  let r = read_root m in
  if r = 0 then 0 else hgt m r

let make ~vty j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  D.write_u64 (dev pool) hdr 0L;
  D.write_u64 (dev pool) (hdr + 8) 0L;
  D.persist (dev pool) hdr hdr_size;
  { hdr; pool; vty }

(* --- balance machinery ------------------------------------------------- *)

let node_height m n = if n = 0 then 0 else hgt m n
let balance_of m n = node_height m (left m n) - node_height m (right m n)

let fix_height m tx n =
  let h = 1 + max (node_height m (left m n)) (node_height m (right m n)) in
  if hgt m n <> h then set_hgt m tx n h

(* Classic rotations; return the subtree's new root. *)
let rotate_right m tx n =
  let l = left m n in
  set_left m tx n (right m l);
  set_right m tx l n;
  fix_height m tx n;
  fix_height m tx l;
  l

let rotate_left m tx n =
  let r = right m n in
  set_right m tx n (left m r);
  set_left m tx r n;
  fix_height m tx n;
  fix_height m tx r;
  r

let rebalance m tx n =
  fix_height m tx n;
  let bf = balance_of m n in
  if bf > 1 then begin
    if balance_of m (left m n) < 0 then set_left m tx n (rotate_left m tx (left m n));
    rotate_right m tx n
  end
  else if bf < -1 then begin
    if balance_of m (right m n) > 0 then
      set_right m tx n (rotate_right m tx (right m n));
    rotate_left m tx n
  end
  else n

(* --- insert ------------------------------------------------------------ *)

let new_node m tx k v =
  let n = Pool_impl.tx_alloc tx (node_size m) in
  D.write_u64 (dev m.pool) n (Int64.of_int k);
  D.write_u64 (dev m.pool) (n + 8) 1L;
  D.write_u64 (dev m.pool) (n + 16) 0L;
  D.write_u64 (dev m.pool) (n + 24) 0L;
  Ptype.write m.vty m.pool (value_off n) v;
  D.persist (dev m.pool) n (node_size m);
  n

let add m ~key:k v j =
  let tx = Journal.tx j in
  let added = ref false in
  let rec ins n =
    if n = 0 then begin
      added := true;
      new_node m tx k v
    end
    else if k < key m n then begin
      set_left m tx n (ins (left m n));
      rebalance m tx n
    end
    else if k > key m n then begin
      set_right m tx n (ins (right m n));
      rebalance m tx n
    end
    else begin
      (* replace: release the old value, write the new one *)
      Pool_impl.tx_log tx ~off:(value_off n) ~len:(vsize m);
      Ptype.drop m.vty tx (value_off n);
      Ptype.write m.vty m.pool (value_off n) v;
      n
    end
  in
  let nroot = ins (read_root m) in
  if nroot <> read_root m then set_root m tx nroot;
  if !added then set_size m tx (read_size m + 1)

(* --- find -------------------------------------------------------------- *)

let find m k =
  Pool_impl.check_open m.pool;
  let rec go n =
    if n = 0 then None
    else if k < key m n then go (left m n)
    else if k > key m n then go (right m n)
    else Some (Ptype.read m.vty m.pool (value_off n))
  in
  go (read_root m)

let mem m k = find m k <> None

(* --- remove ------------------------------------------------------------ *)

let remove m k j =
  let tx = Journal.tx j in
  let removed = ref false in
  (* Remove the minimum node of subtree [n]; [kept] receives its offset
     (the node is unlinked, not freed — the caller grafts or harvests). *)
  let rec take_min n kept =
    if left m n = 0 then begin
      kept := n;
      right m n
    end
    else begin
      set_left m tx n (take_min (left m n) kept);
      rebalance m tx n
    end
  in
  let rec del n =
    if n = 0 then 0
    else if k < key m n then begin
      set_left m tx n (del (left m n));
      rebalance m tx n
    end
    else if k > key m n then begin
      set_right m tx n (del (right m n));
      rebalance m tx n
    end
    else begin
      removed := true;
      (* release this node's value and free the node; the successor (if
         any) is unlinked from the right subtree and grafted in place. *)
      Ptype.drop m.vty tx (value_off n);
      let l = left m n and r = right m n in
      Pool_impl.tx_free tx n;
      if r = 0 then l
      else if l = 0 then r
      else begin
        let succ = ref 0 in
        let r' = take_min r succ in
        let s = !succ in
        set_left m tx s l;
        set_right m tx s r';
        rebalance m tx s
      end
    end
  in
  let nroot = del (read_root m) in
  if nroot <> read_root m then set_root m tx nroot;
  if !removed then set_size m tx (read_size m - 1);
  !removed

(* --- iteration ---------------------------------------------------------- *)

let fold m ~init ~f =
  Pool_impl.check_open m.pool;
  let rec go acc n =
    if n = 0 then acc
    else
      let acc = go acc (left m n) in
      let acc = f acc (key m n) (Ptype.read m.vty m.pool (value_off n)) in
      go acc (right m n)
  in
  go init (read_root m)

let iter m f = fold m ~init:() ~f:(fun () k v -> f k v)

(* Pruned in-order descent over keys in [lo, hi] (inclusive). *)
let fold_range m ~lo ~hi ~init ~f =
  Pool_impl.check_open m.pool;
  let rec go acc n =
    if n = 0 then acc
    else
      let k = key m n in
      let acc = if k > lo then go acc (left m n) else acc in
      let acc =
        if k >= lo && k <= hi then
          f acc k (Ptype.read m.vty m.pool (value_off n))
        else acc
      in
      if k < hi then go acc (right m n) else acc
  in
  go init (read_root m)
let to_list m = List.rev (fold m ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let min_binding m =
  Pool_impl.check_open m.pool;
  let rec go n =
    if n = 0 then None
    else if left m n = 0 then Some (key m n, Ptype.read m.vty m.pool (value_off n))
    else go (left m n)
  in
  go (read_root m)

let max_binding m =
  Pool_impl.check_open m.pool;
  let rec go n =
    if n = 0 then None
    else if right m n = 0 then Some (key m n, Ptype.read m.vty m.pool (value_off n))
    else go (right m n)
  in
  go (read_root m)

(* --- teardown ----------------------------------------------------------- *)

let rec drop_subtree m tx n =
  if n <> 0 then begin
    drop_subtree m tx (left m n);
    drop_subtree m tx (right m n);
    Ptype.drop m.vty tx (value_off n);
    Pool_impl.tx_free tx n
  end

let clear m j =
  let tx = Journal.tx j in
  drop_subtree m tx (read_root m);
  set_root m tx 0;
  set_size m tx 0

let drop m j =
  let tx = Journal.tx j in
  drop_subtree m tx (read_root m);
  Pool_impl.tx_free tx m.hdr

(* --- invariants ---------------------------------------------------------- *)

exception Violation of string

let check m =
  Pool_impl.check_open m.pool;
  let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt in
  let count = ref 0 in
  let rec go n lo hi =
    if n = 0 then 0
    else begin
      incr count;
      let k = key m n in
      (match lo with Some l when k <= l -> fail "key %d out of order" k | _ -> ());
      (match hi with Some h when k >= h -> fail "key %d out of order" k | _ -> ());
      let hl = go (left m n) lo (Some k) in
      let hr = go (right m n) (Some k) hi in
      if abs (hl - hr) > 1 then fail "unbalanced at key %d (%d vs %d)" k hl hr;
      let h = 1 + max hl hr in
      if hgt m n <> h then fail "stale height at key %d" k;
      h
    end
  in
  match go (read_root m) None None with
  | _ ->
      if !count <> read_size m then
        Error (Printf.sprintf "size %d but %d nodes" (read_size m) !count)
      else Ok ()
  | exception Violation msg -> Error msg

(* --- container descriptor ------------------------------------------------ *)

let make_ptype inner_of =
  Ptype.make ~name:"pmap" ~size:8
    ~read:(fun pool off ->
      {
        hdr = Int64.to_int (D.read_u64 (dev pool) off);
        pool;
        vty = inner_of ();
      })
    ~write:(fun pool off m -> D.write_u64 (dev pool) off (Int64.of_int m.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then
        drop { hdr; pool; vty = inner_of () } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let m = { hdr; pool = p; vty = inner_of () } in
                let rec nodes acc n =
                  if n = 0 then acc
                  else
                    let edge =
                      {
                        Ptype.block = n;
                        follow =
                          (fun p2 ->
                            let m2 = { m with pool = p2 } in
                            Ptype.reach m2.vty p2 (value_off n));
                      }
                    in
                    nodes (nodes (edge :: acc) (left m n)) (right m n)
                in
                nodes [] (read_root m));
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make
    ~name:(Printf.sprintf "%s pmap" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
