type 'p t = Pool_impl.tx

let unsafe_of_tx tx = tx
let tx j = if Pool_impl.tx_valid j then j else raise Pool_impl.Tx_escape
let pool j = Pool_impl.tx_pool j
let valid j = Pool_impl.tx_valid j
