(** [Pmutex] — thread-safe interior mutability ([PMutex] in the paper).

    [lock] acquires a pool-level lock keyed by the cell's slot and returns
    a guard; the lock is held until the enclosing transaction ends, which
    is what gives transactions isolation (design goal {e Tx-Are-Isolated}):
    no other thread can observe the guarded data until the transaction
    that modified it has committed.

    Locking is reentrant within one transaction (a divergence from Rust's
    [Mutex], where re-locking would deadlock; reentrancy is strictly safer
    here and keeps recursive data-structure code natural).  Deadlock
    between transactions acquiring multiple mutexes in different orders is
    possible, exactly as the paper concedes. *)

type ('a, 'p) t
type ('a, 'p) guard
(** Stranded: usable only until the transaction that created it ends. *)

val make : ty:('a, 'p) Ptype.t -> 'a -> ('a, 'p) t

val lock : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) guard
(** Blocks until the lock is available; released at transaction end. *)

val deref : ('a, 'p) guard -> 'a
val deref_set : ('a, 'p) guard -> 'a -> unit
val deref_update : ('a, 'p) guard -> ('a -> 'a) -> unit

val with_lock : ('a, 'p) t -> 'p Journal.t -> ('a -> 'a) -> unit
(** Lock, replace the value, keep the lock until the transaction ends. *)

val off : ('a, 'p) t -> int option
val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
