(** Detectably-recoverable Treiber stack (checkpointed recoverable-CAS).

    A lock-free LIFO whose push/pop are single CASes on the head word,
    made crash-recoverable in the Memento style: the operation's full
    description is sealed into a checksummed checkpoint record {e before}
    the CAS is issued, so recovery can decide from the durable head alone
    whether the CAS landed, finish or undo its allocator side effects,
    and report the verdict to the caller — detectability, not just
    consistency.  One fence per operation; the CAS and its table mark
    ride unfenced behind the next fence, covered by the checkpoint.

    Two checkpoint slots alternate by sequence parity so sealing a new
    record never overwrites the one covering an operation whose tail is
    still write-pending — the same double-buffering {!Cow_root} uses for
    its commit intents, and for the same WPQ-reuse hazard.

    Operations take a journal brand only as proof a transaction is open;
    like {!Punsafe} they bypass the undo log, so an enclosing abort does
    {e not} roll them back, and crash recovery is {!recover}'s job, not
    the journal's.  Call {!recover} after every reopen before mutating.
    Crash detectability assumes a single mutator per stack. *)

type ('a, 'p) t

val make : ty:('a, 'p) Ptype.t -> 'p Journal.t -> ('a, 'p) t
(** Allocate an empty stack (transactional).  The element type must fit
    one 8-byte word ([Ptype.size ty <= 8], e.g. [Ptype.int] or a box). *)

val push : ('a, 'p) t -> 'a -> 'p Journal.t -> unit
(** Link a fresh node at the head.  One fence; durable (modulo the
    unfenced tail) when the next fence on the device executes. *)

val pop : ('a, 'p) t -> 'p Journal.t -> 'a option
(** Unlink and return the head node, or [None] when empty. *)

val peek : ('a, 'p) t -> 'a option
val is_empty : ('a, 'p) t -> bool
val length : ('a, 'p) t -> int
val iter : ('a, 'p) t -> ('a -> unit) -> unit
val to_list : ('a, 'p) t -> 'a list
(** Top-first snapshot of the chain. *)

(** {1 Recovery} *)

(** What recovery determined about a checkpointed operation: it either
    completed (the head CAS landed) or rolled back (it did not).  A
    completed pop also reports the popped value's raw 8-byte image —
    taken from the checkpoint, not the node, which may already be
    unreadable. *)
type outcome =
  | Push_completed of int  (** sequence number *)
  | Push_rolled_back of int
  | Pop_completed of int * int64
  | Pop_rolled_back of int

val seq_of_outcome : outcome -> int

val recover : ('a, 'p) t -> outcome list
(** Resolve both checkpoint slots in ascending sequence order: re-derive
    or undo each operation's unfenced tail (head swing + allocator mark),
    then invalidate the records.  Idempotent — safe to crash inside and
    re-run.  Returns the verdicts, oldest first ([[]] after a clean
    shutdown). *)

val drop : ('a, 'p) t -> 'p Journal.t -> unit
(** Transactionally free every node and the header block. *)

(** {1 Ptype} *)

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
