type ('a, 'p) place =
  | Seed of { mutable pending : 'a }
  | Placed of { off : int; pool : Pool_impl.t }

type ('a, 'p) t = { cty : ('a, 'p) Ptype.t; place : ('a, 'p) place }

let make ~ty v = { cty = ty; place = Seed { pending = v } }
let ty c = c.cty

let read c =
  match c.place with
  | Seed s -> s.pending
  | Placed { off; pool } ->
      Pool_impl.check_open pool;
      Ptype.read c.cty pool off

let write c tx v =
  match c.place with
  | Seed s -> s.pending <- v
  | Placed { off; pool } ->
      Pool_impl.tx_log tx ~off ~len:(max 8 (Ptype.size c.cty));
      Ptype.drop c.cty tx off;
      Ptype.write c.cty pool off v

(* Move semantics: the old value's ownership transfers to the returned
   copy instead of being released — the Rust [mem::replace] of this API,
   needed to re-link nodes without cascading drops. *)
let replace c tx v =
  match c.place with
  | Seed s ->
      let old = s.pending in
      s.pending <- v;
      old
  | Placed { off; pool } ->
      let old = Ptype.read c.cty pool off in
      Pool_impl.tx_log tx ~off ~len:(max 8 (Ptype.size c.cty));
      Ptype.write c.cty pool off v;
      old

let placed_off c =
  match c.place with Seed _ -> None | Placed { off; _ } -> Some off

let pool c =
  match c.place with Seed _ -> None | Placed { pool; _ } -> Some pool

let ptype ~name inner =
  Ptype.make ~name ~size:(Ptype.size inner)
    ~read:(fun pool off -> { cty = inner; place = Placed { off; pool } })
    ~write:(fun pool off c ->
      match c.place with
      | Seed s -> Ptype.write inner pool off s.pending
      | Placed src ->
          (* Re-writing a value into its own slot (e.g. a containing box's
             [set]) is a no-op; copying a placed cell elsewhere would
             duplicate ownership of what it contains. *)
          if src.off <> off then
            invalid_arg
              (Printf.sprintf
                 "%s: a placed cell cannot be copied to another slot; \
                  construct a fresh cell instead"
                 name))
    ~drop:(fun tx off -> Ptype.drop inner tx off)
    ~reach:(fun pool off -> Ptype.reach inner pool off)
