(** Typed, branded persistent memory pools.

    Each application of {!Make} mints a fresh abstract [brand]; every
    persistent pointer and journal of that pool carries the brand in its
    type, so assigning a pointer from one pool into another — or logging
    against the wrong pool's journal — fails to type-check.  This is the
    OCaml rendering of Corundum binding "each persistent object to its
    pool" via the pool type parameter (paper, §3.2), and it is what makes
    inter-pool pointers impossible statically (Listing 4 of the paper).

    A pool module is a singleton binding: at most one pool is open through
    it at a time, mirroring "only one open pool is bound to P".

    {[
      module P = Corundum.Pool.Make ()

      let () = P.create ~path:"list.pool" ()
      let root = P.root ~ty:Ptype.int ~init:(fun _j -> 0) ()
      let () = P.transaction (fun j -> Pbox.set root 42 j)
    ]} *)

exception Root_type_mismatch of { expected : string; found_hash : int }
(** The pool was previously initialized with a root of a different type. *)

module type S = sig
  type brand
  (** The phantom brand of this pool.  Never instantiated. *)

  type journal = brand Journal.t

  (** {1 Lifecycle} *)

  val create :
    ?config:Pool_impl.config ->
    ?latency:Pmem.Latency.t ->
    ?path:string ->
    unit ->
    unit
  (** Format and open a fresh pool.  Raises [Invalid_argument] if one is
      already open through this module. *)

  val open_file :
    ?mode:Pool_impl.open_mode -> ?latency:Pmem.Latency.t -> string -> unit
  (** Open an existing pool image (runs crash recovery).  With
      [~mode:Read_only] nothing is written: recovery is skipped,
      transactions raise {!Pool_impl.Read_only_pool}, and reads may
      observe uncommitted in-flight data — the degraded mode for pools
      whose damage is detectable but not repairable. *)

  val load_or_create :
    ?config:Pool_impl.config ->
    ?latency:Pmem.Latency.t ->
    string ->
    unit
  (** [open_file] when the file exists, [create ~path] otherwise. *)

  val close : unit -> unit
  (** Close (and save to the backing file, if any). *)

  val save : unit -> unit
  (** Checkpoint the durable image to the backing file without closing
      (only what has been fenced reaches the file, exactly like a power
      cut at this instant). *)

  val is_open : unit -> bool

  val is_read_only : unit -> bool
  (** Whether the currently open pool was opened with [~mode:Read_only]. *)

  val crash_and_reopen : unit -> unit
  (** Test support: simulate a power failure on the open pool's media and
      reopen it (recovery included).  All outstanding handles become
      invalid. *)

  (** {1 Transactions} *)

  val transaction : (journal -> 'a) -> 'a
  (** Run the body atomically: on normal return the transaction commits;
      on exception it rolls back and the exception is re-raised.  Nested
      calls on the same domain flatten into the outermost transaction
      (paper §3.3). *)

  val register_domain : unit -> int
  (** Bind the calling domain to a dedicated journal slot (and allocator
      stripe) of the open pool; see {!Pool_impl.register_domain}. *)

  val unregister_domain : unit -> unit

  val set_group_commit : bool -> unit
  (** Enable/disable the cross-transaction group-commit epoch combiner
      ({!Pjournal.Group_commit}) for the open pool. *)

  (** {1 Root object} *)

  val root : ty:('a, brand) Ptype.t -> init:(journal -> 'a) -> unit -> ('a, brand) Pbox.t
  (** The pool's root object.  On first use the root is created atomically
      by running [init] inside a transaction; afterwards the stored root
      is returned, after verifying that its type matches [ty] (raises
      {!Root_type_mismatch} otherwise). *)

  val migrate_root :
    from_ty:('old, brand) Ptype.t ->
    to_ty:('new_, brand) Ptype.t ->
    f:('old -> journal -> 'new_) ->
    unit ->
    ('new_, brand) Pbox.t
  (** Schema migration: atomically replace a root of type [from_ty] with
      one of type [to_ty], computed by [f] from the old value inside one
      transaction.  If the stored root already has [to_ty]'s type, it is
      returned unchanged; any other type raises {!Root_type_mismatch}.

      Ownership: [f] receives the old root {e by move} — every pointer it
      does not carry into the new value must be dropped inside [f], or it
      will be reported by the leak checker.  The old root block itself is
      released automatically (shallowly). *)

  (** {1 Introspection} *)

  val impl : unit -> Pool_impl.t
  (** The untyped runtime (tooling, tests, crash harness). *)

  val stats : unit -> Pool_impl.pool_stats
  val recovery_stats : unit -> Pjournal.Recovery.stats
end

module Make () : S
