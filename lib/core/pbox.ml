module D = Pmem.Device

type ('a, 'p) t = { off : int; pool : Pool_impl.t; ty : ('a, 'p) Ptype.t }

let unsafe_handle pool off ty = { off; pool; ty }
let off b = b.off
let equal a b = a.off = b.off

let make ~ty v j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let size = max 8 (Ptype.size ty) in
  let off = Pool_impl.tx_alloc tx size in
  Ptype.write ty pool off v;
  (* AtomicInit: fresh blocks are not undo-logged (rollback frees them),
     so their initial contents must be persisted eagerly. *)
  D.persist (Pool_impl.device pool) off (Ptype.size ty);
  { off; pool; ty }

let get b =
  Pool_impl.check_open b.pool;
  Ptype.read b.ty b.pool b.off

let set b v j =
  let tx = Journal.tx j in
  Pool_impl.tx_log tx ~off:b.off ~len:(max 8 (Ptype.size b.ty));
  Ptype.drop b.ty tx b.off;
  Ptype.write b.ty b.pool b.off v

let modify b j f = set b (f (get b)) j

let pclone b j = make ~ty:b.ty (get b) j

let drop b j =
  let tx = Journal.tx j in
  Ptype.drop b.ty tx b.off;
  Pool_impl.tx_free tx b.off

let make_ptype inner_of =
  Ptype.make ~name:"pbox" ~size:8
    ~read:(fun pool off ->
      {
        off = Int64.to_int (D.read_u64 (Pool_impl.device pool) off);
        pool;
        ty = inner_of ();
      })
    ~write:(fun pool off b ->
      D.write_u64 (Pool_impl.device pool) off (Int64.of_int b.off))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let target = Int64.to_int (D.read_u64 (Pool_impl.device pool) off) in
      if target <> 0 then begin
        Ptype.drop (inner_of ()) tx target;
        Pool_impl.tx_free tx target
      end)
    ~reach:(fun pool off ->
      let target = Int64.to_int (D.read_u64 (Pool_impl.device pool) off) in
      if target = 0 then []
      else
        [
          {
            Ptype.block = target;
            follow = (fun p -> Ptype.reach (inner_of ()) p target);
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make ~name:(Printf.sprintf "%s pbox" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
