(** Untyped persistent-memory pool runtime.

    This module owns everything below the typed API: the on-media layout
    (header, journal slots, allocation table, heap), open/create/recovery,
    journal-slot assignment, the flat transaction engine with per-domain
    nesting, the volatile lock and borrow tables backing [Pmutex] and
    [Prefcell], and the volatile birth-counter table backing [Vweak]
    promotion safety.

    The typed layer ({!Pool}, {!Pbox}, …) adds pool branding on top; no
    user-facing code should call this module directly. *)

exception Pool_closed
(** An operation touched a pool that has been closed (or superseded by a
    {!reopen}). *)

exception Tx_escape
(** A journal or guard object was used after its transaction ended — the
    dynamic analogue of Rust's [TxOutSafe]/lifetime enforcement. *)

exception Borrow_error of string
(** A [Prefcell] mutable-borrow rule was violated. *)

exception Recovery_needed of string
(** Internal corruption was detected at open time. *)

exception Read_only_pool
(** A mutating operation (transaction, save) touched a pool opened in
    {!Read_only} mode. *)

type t

type open_mode =
  | Read_write  (** Normal open: run recovery, bump the generation. *)
  | Read_only
      (** Degraded open for damaged media: nothing is written — recovery
          and the generation bump are skipped, transactions raise
          {!Read_only_pool}.  Reads may observe uncommitted in-flight
          data from an unrecovered journal; the mode exists to salvage
          pools whose damage is detectable but not repairable. *)

type config = {
  size : int;  (** total device bytes *)
  nslots : int;  (** journal slots = max concurrent transactions *)
  slot_size : int;  (** bytes per journal slot *)
}

val default_config : config
(** 64 MiB, 8 slots of 256 KiB. *)

(** {1 Lifecycle} *)

val create :
  ?config:config -> ?latency:Pmem.Latency.t -> ?path:string -> unit -> t
(** Create and format a fresh pool (in memory; backed by [path] only when
    {!close} or {!save} writes it out). *)

val attach : ?mode:open_mode -> Pmem.Device.t -> t
(** Attach to an already-formatted device: verify the header, run journal
    recovery (unless [mode] is {!Read_only}), and build a handle.  Lets a
    tool operate on an in-memory copy of an image without ever writing
    the file back.  Raises {!Recovery_needed} on a bad magic/version, or
    — in [Read_write] mode — on a header checksum mismatch. *)

val open_file : ?mode:open_mode -> ?latency:Pmem.Latency.t -> string -> t
(** [attach (Device.load path)]: load a pool image saved by
    {!close}/{!save} and attach to it. *)

val reopen : t -> t
(** Simulate a restart on the same media: power-cycle the device (losing
    volatile state, applying WPQ-survival semantics), run recovery, and
    return a fresh handle.  The old handle becomes {!Pool_closed}.  This is
    the crash-test entry point. *)

val close : t -> unit
(** Close the pool: forbid new transactions, save to the backing file if
    any, and invalidate the handle. *)

val save : t -> unit
(** Persist the durable image to the backing file without closing. *)

val is_open : t -> bool
val is_read_only : t -> bool
val uid : t -> int
(** Unique id of this open instance (changes on every open/reopen). *)

val generation : t -> int
(** Durable generation counter, bumped at every open. *)

val recovery_stats : t -> Pjournal.Recovery.stats
(** What recovery did when this handle was opened. *)

(** {1 Media access} *)

val device : t -> Pmem.Device.t
val buddy : t -> Palloc.Buddy.t
val check_open : t -> unit

(** {1 Header checksum}

    The pool header carries a CRC-32 of its immutable layout fields
    (version, nslots, slot size, heap length, table base, heap base);
    the generation counter and root words are excluded — they have their
    own atomic, journal-protected update protocols.  Verified at every
    read-write open; repaired by {!Pool_check.repair} when the layout
    itself is still sane. *)

val header_crc : Pmem.Device.t -> int
(** Checksum recomputed from the layout fields currently on media. *)

val stored_header_crc : Pmem.Device.t -> int
val header_crc_ok : Pmem.Device.t -> bool

val write_header_crc : Pmem.Device.t -> unit
(** Recompute and durably (re)write the header checksum. *)

(** {1 Root object} *)

val root_off : t -> int
(** Offset of the root block, or 0 when the root is not yet initialized. *)

val root_ty_hash : t -> int

(** {1 Transactions}

    The engine hands the body a [tx] context; nesting within one domain is
    flattened onto the same context.  On normal return the outermost level
    commits; on exception it aborts and re-raises; on {!Pmem.Device.Crashed}
    it re-raises without touching the media. *)

type tx

val transaction : t -> (tx -> 'a) -> 'a

val tx_pool : tx -> t
val tx_journal : tx -> Pjournal.Journal_impl.t
(** Raises {!Tx_escape} if the transaction has ended. *)

val tx_valid : tx -> bool
val tx_validity : tx -> bool ref
(** Shared flag that guards created inside the transaction capture; it
    flips to [false] when the transaction ends. *)

val in_transaction : t -> bool
(** Whether the calling domain currently runs a transaction on this pool. *)

(** {1 Shared-pool domain binding and group commit}

    Several domains may share one pool handle.  A worker that will issue
    many transactions registers once: it is bound to a dedicated journal
    slot (and that slot's allocator stripe) until it unregisters, so its
    transactions skip slot acquisition and never migrate between stripes.
    Unregistered domains still work — they fall back to the shared
    acquire/release slot pool.

    Orthogonally, {!set_group_commit} installs a cross-transaction epoch
    combiner ({!Pjournal.Group_commit}): commits publish their line sets
    to the current epoch, whose leader issues one merged flush run and a
    single fence for every member — K concurrent commits cost one fence
    epoch instead of K fences.  A solo committer pays exactly the
    private cost.  The combiner is volatile and rebuilt per open. *)

val register_domain : t -> int
(** Bind the calling domain to a dedicated journal slot and return its
    index.  Idempotent.  Raises [Invalid_argument] when every slot is
    taken — registration never blocks. *)

val unregister_domain : t -> unit
(** Release the calling domain's dedicated slot (no-op if unbound).
    Raises [Invalid_argument] if the domain has a transaction open. *)

val slot_of_domain : t -> int option
(** The calling domain's bound slot, if registered. *)

val set_group_commit : ?linger:int -> t -> bool -> unit
(** Enable (with a fresh combiner) or disable cross-transaction group
    commit for this pool.  [linger] is the leader's batch-until-quiet
    spin budget (see {!Pjournal.Group_commit.create}); the default is a
    few microseconds' worth. *)

val group_commit_stats : t -> Pjournal.Group_commit.stats option
(** Epoch/occupancy counters of the active combiner, if any. *)

(** {1 Logged heap operations (journal-capability level)} *)

val tx_alloc : tx -> int -> int
val tx_free : tx -> int -> unit
val tx_log : tx -> off:int -> len:int -> unit
val tx_log_nodedup : tx -> off:int -> len:int -> unit

val tx_add_target : tx -> off:int -> len:int -> unit
(** Register a range for commit-time persistence without undo logging —
    only sound for ranges inside blocks allocated by this transaction. *)

val tx_set_root : tx -> off:int -> ty_hash:int -> unit

(** {1 Volatile side tables} *)

val tx_lock : tx -> int -> unit
(** Acquire the pool-level lock keyed by a block offset; held until the
    outermost transaction ends; reentrant within one transaction. *)

val borrow_mut_flag : tx -> int -> unit
(** Mark a cell offset mutably borrowed for the rest of the transaction.
    Raises {!Borrow_error} if it already is. *)

val release_borrow_flag : t -> int -> unit
(** End a mutable borrow early (guard released before transaction end). *)

val is_borrowed : t -> int -> bool

val birth : t -> int -> int
(** Volatile birth counter for a block offset: bumped every time the
    offset is (re)allocated during this open; lets volatile weak pointers
    detect block reuse. *)

val bump_birth : t -> int -> unit

(** {1 Accounting} *)

type pool_stats = {
  heap_capacity : int;
  heap_used : int;
  live_blocks : int;
  transactions : int;  (** committed *)
  aborts : int;
  log_requests : int;  (** [tx_log]/[tx_log_nodedup] calls (pre-dedup) *)
  allocations : int;
  frees : int;
  logged_bytes : int;  (** undo-entry bytes sealed since open *)
  lifetime_transactions : int;
  (** committed across the pool's whole life: a persistent counter folded
      into the header at {!save}/{!close} plus this open's volatile count
      — deliberately {e not} persisted per transaction, so commits carry
      no extra persist points.  A crash loses the unfolded tail. *)
  lifetime_aborts : int;
}

val stats : t -> pool_stats
