type ('a, 'p) t = ('a, 'p) Rc_core.rc
type ('a, 'p) weak = ('a, 'p) Rc_core.pweak
type ('a, 'p) vweak = ('a, 'p) Rc_core.vweak

let atomic = false
let make ~ty v j = Rc_core.make ~atomic ~ty v j
let get = Rc_core.get
let pclone = Rc_core.pclone
let drop = Rc_core.drop
let try_unwrap = Rc_core.try_unwrap
let strong_count = Rc_core.strong_count
let weak_count = Rc_core.weak_count
let equal = Rc_core.equal
let off = Rc_core.ctrl
let downgrade = Rc_core.downgrade
let upgrade = Rc_core.upgrade
let weak_drop = Rc_core.weak_drop
let demote = Rc_core.demote
let promote = Rc_core.promote

let ptype inner =
  Rc_core.rc_ptype ~atomic
    ~name:(Printf.sprintf "%s prc" (Ptype.name inner))
    (fun () -> inner)

let ptype_rec inner = Rc_core.rc_ptype ~atomic ~name:"prc" (fun () -> Lazy.force inner)

let weak_ptype inner =
  Rc_core.pweak_ptype ~atomic
    ~name:(Printf.sprintf "%s pweak" (Ptype.name inner))
    (fun () -> inner)

let weak_ptype_rec inner =
  Rc_core.pweak_ptype ~atomic ~name:"pweak" (fun () -> Lazy.force inner)
