(** [Pstring] — heap-allocated persistent string.

    Variable-length strings cannot live inline in fixed-footprint slots
    (use {!Ptype.fixed_string} for bounded inline text); a [Pstring] is an
    owned pointer to a length-prefixed byte block, with the same atomic
    initialization and explicit-drop discipline as {!Pbox}. *)

type +'p t

val make : string -> 'p Journal.t -> 'p t
val get : 'p t -> string
val length : 'p t -> int
val equal : 'p t -> 'p t -> bool
(** Content equality. *)

val sub : 'p t -> pos:int -> len:int -> 'p Journal.t -> 'p t
(** A fresh string holding the given slice. *)

val concat : 'p t -> 'p t -> 'p Journal.t -> 'p t
(** A fresh string holding the concatenation; the inputs are untouched. *)

val drop : 'p t -> 'p Journal.t -> unit
val off : 'p t -> int
val ptype : unit -> ('p t, 'p) Ptype.t
