(** [Prc] — persistent reference counting without thread safety.

    The persistent counterpart of Rust's [Rc<T>]: shared ownership of a
    pool-resident value, freed when the last strong reference is dropped.
    Like the paper's [Prc], it must not be shared across threads (Rust
    enforces this with [!Send]; here it is a documented obligation checked
    by the data-race–free usage of examples and tests).

    Counter updates are undo-logged with per-transaction deduplication,
    which is why repeated [pclone]/[drop] inside one transaction is almost
    free (Table 5).  The payload is immutable through a [Prc]; mutate by
    storing a {!Prefcell} or {!Pcell} inside it. *)

type ('a, 'p) t
type ('a, 'p) weak
(** Persistent weak reference ([PWeak] in the paper). *)

type ('a, 'p) vweak
(** Volatile weak reference ([VWeak]): the only pointer from volatile
    memory into a pool. *)

val make : ty:('a, 'p) Ptype.t -> 'a -> 'p Journal.t -> ('a, 'p) t
val get : ('a, 'p) t -> 'a
val pclone : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) t
val drop : ('a, 'p) t -> 'p Journal.t -> unit

val try_unwrap : ('a, 'p) t -> 'p Journal.t -> 'a option
(** Take the payload out if this is the only strong reference (Rust's
    [Rc::try_unwrap]); [None] when shared. *)

val strong_count : ('a, 'p) t -> int
val weak_count : ('a, 'p) t -> int
val equal : ('a, 'p) t -> ('a, 'p) t -> bool
val off : ('a, 'p) t -> int

val downgrade : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) weak
val upgrade : ('a, 'p) weak -> 'p Journal.t -> ('a, 'p) t option
val weak_drop : ('a, 'p) weak -> 'p Journal.t -> unit

val demote : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) vweak
val promote : ('a, 'p) vweak -> 'p Journal.t -> ('a, 'p) t option
(** [None] when the pool instance has been closed/reopened, the block was
    freed (and possibly reused), or no strong reference remains. *)

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
val weak_ptype : ('a, 'p) Ptype.t -> (('a, 'p) weak, 'p) Ptype.t
val weak_ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) weak, 'p) Ptype.t
