(** [Prefcell] — interior mutability with dynamic borrow checking
    ([PRefCell] in the paper).

    Reading ([borrow]) copies the value out and needs no journal.  Mutable
    access requires a journal and is mediated by a {!refmut} guard, which
    enforces the mutability invariant dynamically: at most one mutable
    borrow of a cell may exist, and it lives until the enclosing
    transaction ends (guards are {e stranded} — using one after commit or
    abort raises {!Pool_impl.Tx_escape}).

    The first write through a guard pays for an undo-log entry; subsequent
    writes to the same cell in the same transaction are deduplicated —
    exactly the paper's [DerefMut] first/rest asymmetry. *)

type ('a, 'p) t
type ('a, 'p) refmut
(** The stranded mutable-reference object ([PRefMut]). *)

val make : ty:('a, 'p) Ptype.t -> 'a -> ('a, 'p) t

val borrow : ('a, 'p) t -> 'a
(** Immutable access by copy.  Raises {!Pool_impl.Borrow_error} if the
    cell is currently mutably borrowed. *)

val borrow_mut : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) refmut
(** Take the unique mutable borrow for the rest of the transaction.
    Raises {!Pool_impl.Borrow_error} if one already exists. *)

val deref : ('a, 'p) refmut -> 'a
val deref_set : ('a, 'p) refmut -> 'a -> unit
val deref_update : ('a, 'p) refmut -> ('a -> 'a) -> unit

val release : ('a, 'p) refmut -> unit
(** End the borrow early (the analogue of the guard going out of scope in
    Rust).  Guards not released explicitly are released when the
    transaction ends; a released or ended guard raises
    {!Pool_impl.Tx_escape} on use. *)

val with_mut : ('a, 'p) t -> 'p Journal.t -> ('a -> 'a) -> unit
(** [with_mut cell j f] borrows mutably, replaces the value by [f value],
    and releases the borrow (scope-style). *)

val set : ('a, 'p) t -> 'a -> 'p Journal.t -> unit
(** Borrow mutably, store [v] (releasing what the old value owned),
    release the borrow. *)

val replace : ('a, 'p) t -> 'a -> 'p Journal.t -> 'a
(** Move semantics: like {!set} but the old value is returned and not
    released — the way to re-link nodes in pointer structures without
    cascading drops (Rust's [mem::replace]). *)

val off : ('a, 'p) t -> int option
val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
