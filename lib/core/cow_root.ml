(* CoW root cells: the persistent commit word of the minimally-ordered
   (mod) engine.

   Each cell lives in the reserved space of the pool header page and is
   five 64-byte lines:

   - line 0, word 0 ([w0]): the packed (block-index | generation) root
     word — the ONE 8-byte store whose landing is the commit point of a
     CoW transaction.  Words 1 and 2 of the same line hold the logical
     root-pair base and half-length; they are written once when a root
     is promoted and never change, so the swap store stays a single
     media-atomic word.
   - lines 1..2 (slot 0) and lines 3..4 (slot 1): two intent record
     slots, used alternately (slot = igen land 1).  Each record holds
     the generation, commit-word kind, the new root pointer, publish
     words (address, old, new), the transaction's allocated and retired
     blocks, all under an igen-and-slot-salted CRC.  A transaction too
     large for the inline record spills the lists to a transient heap
     block ([Spill] tag) whose content is covered by its own CRC in the
     intent.

   Why two slots: a commit's tail (publish words, the w0 swap, retire
   clears) is deliberately left unfenced — the next fence from any
   transaction completes it.  With a single slot the successor's seal
   would overwrite the only record that can re-derive that in-flight
   tail; a crash landing the predecessor's swap word while tearing the
   slot would leave a committed generation whose effects never landed
   and no intent to roll forward (found by the {!Pmodel.Mcow} crash
   checker).  Alternating slots keeps the predecessor's record intact
   until at least one fence — the successor's own seal or commit fence
   — has drained its tail, at zero extra ordering cost.

   The intent is sealed (flushed + fenced) BEFORE any mark or shadow
   line of the transaction is even flushed, so a durable mark implies a
   durable intent; recovery reads both slots and compares each intent
   generation against the w0 generation: a consumed record (igen = gen)
   is rolled forward first, then a pending one (igen = gen + 1) is
   rolled forward or back depending on whether its commit word landed,
   and stale records are retired.  Every recovery action is an
   idempotent durable store, so recovery may itself crash at any
   persist point and re-run.  See DESIGN.md §14. *)

module D = Pmem.Device
module T = Palloc.Alloc_table
module Pr = Ptelemetry.Probe

let cells = 4
let slots = 2
let slot_bytes = 128
let cell_bytes = 64 + (slots * slot_bytes)
let base = 1024
let region_len = cells * cell_bytes

(* {1 The packed root word} *)

(* Generation in the low 24 bits (wrapping), block index (offset / 64)
   above it: 64 MiB pools need 20 index bits, so the word never
   overflows 62 bits. *)
let gen_bits = 24
let gen_mask = (1 lsl gen_bits) - 1

let pack ~ptr ~gen =
  Int64.of_int (((ptr lsr 6) lsl gen_bits) lor (gen land gen_mask))

let unpack w =
  let v = Int64.to_int w in
  ((v lsr gen_bits) lsl 6, v land gen_mask)

let cell_off c = base + (c * cell_bytes)
let intent_off c s = cell_off c + 64 + (s * slot_bytes)
let slot_of_igen igen = igen land 1

let read c dev =
  let ptr, gen = unpack (D.read_u64 dev (cell_off c)) in
  (ptr, gen)

let pair c dev =
  let b = Int64.to_int (D.read_u64 dev (cell_off c + 8)) in
  let half = Int64.to_int (D.read_u64 dev (cell_off c + 16)) in
  if b = 0 then None else Some (b, half)

(* Write the swap word (dirty-only).  The caller owns flush order: this
   is the Root_swap phase's store. *)
let store_swap c dev ~ptr ~gen = D.write_u64 dev (cell_off c) (pack ~ptr ~gen)

let flush_swap c dev = D.flush dev (cell_off c) 8

(* Promote: record the immutable pair geometry beside the swap word.
   Dirty-only; rides the cell flush of the promoting transaction's
   intent seal. *)
let store_pair c dev ~pair_base ~half =
  D.write_u64 dev (cell_off c + 8) (Int64.of_int pair_base);
  D.write_u64 dev (cell_off c + 16) (Int64.of_int half)

(* {1 Intent records} *)

type kind =
  | Gen_only  (** commit word is the w0 generation bump alone *)
  | Swap of int  (** w0 repointed at [ptr] (packed with igen) *)
  | Publish of int * (int * int64 * int64) list
      (** in-place 8-byte publishes (address, old value, new value) plus
          the new active pointer the w0 store carries.  The FIRST
          publish word is the commit point; recovery redoes or undoes
          the whole set from the intent, so the words need not land
          atomically together. *)

type intent = {
  igen : int;
  kind : kind;
  allocs : (int * int) list;  (** (heap offset, buddy order) *)
  frees : (int * int) list;
}

let max_blocks = 3
let max_publish = 2

(* Inline intent layout (byte offsets relative to [intent_off]):
   +0 igen, +8 kind tag (1 Gen_only / 2 Swap / 3 Publish / 4 Spill),
   +16 npub, +24 nallocs, +32 nfrees, +40 new root pointer,
   +48..+95 two publish slots (addr, old, new),
   +96..+119 three packed block records ((off/64) lsl 8 | order),
   +120 salted CRC of bytes 0..119.

   A [Spill] record replaces the publish/block area with the spill
   block's geometry and content CRC:
   +48 spill offset, +56 spill order, +64 content CRC.
   The spill block holds npub publish triples followed by the packed
   block records.  The block is transient and never marked: recovery
   only reads it, and only before any user transaction could recycle
   it. *)
let intent_bytes = 120

let kind_tag = function Gen_only -> 1 | Swap _ -> 2 | Publish _ -> 3

let ptr_of_kind = function Gen_only -> 0 | Swap p -> p | Publish (p, _) -> p

let nblocks it = List.length it.allocs + List.length it.frees

let inline_ok it =
  nblocks it <= max_blocks
  && match it.kind with
     | Gen_only | Swap _ -> true
     | Publish (_, pubs) -> List.length pubs <= max_publish

let intent_crc ~cell ~slot ~igen buf =
  let crc = Pmem.Crc32.bytes buf in
  crc
  lxor (igen land 0xFFFF_FFFF)
  lxor (((cell * slots) + slot) * 0x9E37_79B9)
  land 0x7FFF_FFFF_FFFF

(* The spill content uses a distinct salt so a stale intent record can
   never validate against an unrelated block's bytes. *)
let spill_salt = 0x5BD1_E995

let spill_crc ~cell ~slot ~igen buf =
  intent_crc ~cell ~slot ~igen buf lxor spill_salt

let pack_block (off, order) = Int64.of_int (((off lsr 6) lsl 8) lor order)

let unpack_block v =
  let v = Int64.to_int v in
  ((v lsr 8) lsl 6, v land 0xFF)

let pubs_of = function Publish (_, pubs) -> pubs | Gen_only | Swap _ -> []

let write_intent c dev it =
  let s = slot_of_igen it.igen in
  let buf = Bytes.make intent_bytes '\000' in
  let set i v = Bytes.set_int64_le buf i v in
  let pubs = pubs_of it.kind in
  set 0 (Int64.of_int it.igen);
  set 8 (Int64.of_int (kind_tag it.kind));
  set 16 (Int64.of_int (List.length pubs));
  set 24 (Int64.of_int (List.length it.allocs));
  set 32 (Int64.of_int (List.length it.frees));
  set 40 (Int64.of_int (ptr_of_kind it.kind));
  List.iteri
    (fun i (addr, oldv, newv) ->
      let b = 48 + (i * 24) in
      set b (Int64.of_int addr);
      set (b + 8) oldv;
      set (b + 16) newv)
    pubs;
  List.iteri
    (fun i b -> set (96 + (i * 8)) (pack_block b))
    (it.allocs @ it.frees);
  D.write_bytes dev (intent_off c s) buf;
  D.write_u64 dev
    (intent_off c s + intent_bytes)
    (Int64.of_int (intent_crc ~cell:c ~slot:s ~igen:it.igen buf))

let spill_bytes it = (List.length (pubs_of it.kind) * 24) + (nblocks it * 8)

(* Serialize the oversized intent's lists into the (reserved, unmarked)
   spill block at [off].  Dirty-only; the caller flushes the range and
   orders it before the intent seal fence. *)
let write_spill c dev ~off it =
  let pubs = pubs_of it.kind in
  let n = spill_bytes it in
  let buf = Bytes.make n '\000' in
  let set i v = Bytes.set_int64_le buf i v in
  List.iteri
    (fun i (addr, oldv, newv) ->
      let b = i * 24 in
      set b (Int64.of_int addr);
      set (b + 8) oldv;
      set (b + 16) newv)
    pubs;
  let blocks0 = List.length pubs * 24 in
  List.iteri
    (fun i b -> set (blocks0 + (i * 8)) (pack_block b))
    (it.allocs @ it.frees);
  D.write_bytes dev off buf;
  spill_crc ~cell:c ~slot:(slot_of_igen it.igen) ~igen:it.igen buf

let write_intent_spilled c dev ~spill_off ~spill_order ~content_crc it =
  let s = slot_of_igen it.igen in
  let buf = Bytes.make intent_bytes '\000' in
  let set i v = Bytes.set_int64_le buf i v in
  set 0 (Int64.of_int it.igen);
  set 8 4L;
  set 16 (Int64.of_int (List.length (pubs_of it.kind)));
  set 24 (Int64.of_int (List.length it.allocs));
  set 32 (Int64.of_int (List.length it.frees));
  set 40 (Int64.of_int (ptr_of_kind it.kind));
  set 48 (Int64.of_int spill_off);
  set 56 (Int64.of_int spill_order);
  set 64 (Int64.of_int content_crc);
  D.write_bytes dev (intent_off c s) buf;
  D.write_u64 dev
    (intent_off c s + intent_bytes)
    (Int64.of_int (intent_crc ~cell:c ~slot:s ~igen:it.igen buf))

let flush_intent c s dev = D.flush dev (intent_off c s) (intent_bytes + 8)

let read_intent c s dev =
  let buf = D.read_bytes dev (intent_off c s) intent_bytes in
  let get i = Bytes.get_int64_le buf i in
  let igen = Int64.to_int (get 0) in
  let stored = Int64.to_int (D.read_u64 dev (intent_off c s + intent_bytes)) in
  if stored <> intent_crc ~cell:c ~slot:s ~igen buf then None
  else
    let npub = Int64.to_int (get 16) in
    let nallocs = Int64.to_int (get 24) and nfrees = Int64.to_int (get 32) in
    let ptr = Int64.to_int (get 40) in
    if nallocs < 0 || nfrees < 0 || npub < 0 || igen = 0 then None
    else
      let finish kind allocs frees = Some { igen; kind; allocs; frees } in
      let kind_of ~pubs =
        match Int64.to_int (get 8) with
        | 1 when pubs = [] -> Some Gen_only
        | 2 when pubs = [] -> Some (Swap ptr)
        | 3 | 4 when pubs <> [] -> Some (Publish (ptr, pubs))
        | 4 -> Some (if ptr = 0 then Gen_only else Swap ptr)
        | _ -> None
      in
      match Int64.to_int (get 8) with
      | (1 | 2 | 3) as tag ->
          if nallocs + nfrees > max_blocks || npub > max_publish then None
          else if tag <> 3 && npub > 0 then None
          else
            let pubs =
              List.init npub (fun i ->
                  let b = 48 + (i * 24) in
                  (Int64.to_int (get b), get (b + 8), get (b + 16)))
            in
            let blocks n from =
              List.init n (fun i -> unpack_block (get (from + (i * 8))))
            in
            let allocs = blocks nallocs 96
            and frees = blocks nfrees (96 + (nallocs * 8)) in
            Option.bind (kind_of ~pubs) (fun k -> finish k allocs frees)
      | 4 ->
          (* Spilled: the lists live in a transient heap block.  A torn
             spill means the seal fence never completed, so nothing of
             the transaction (marks, publishes, commit word) can have
             landed and ignoring the intent is safe. *)
          let spill_off = Int64.to_int (get 48) in
          let n = (npub * 24) + ((nallocs + nfrees) * 8) in
          if spill_off <= 0 || n <= 0 || n > 1 lsl 20 then None
          else begin
            match D.read_bytes dev spill_off n with
            | exception _ -> None
            | content ->
                if Int64.to_int (get 64) <> spill_crc ~cell:c ~slot:s ~igen content
                then None
                else
                  let sget i = Bytes.get_int64_le content i in
                  let pubs =
                    List.init npub (fun i ->
                        let b = i * 24 in
                        (Int64.to_int (sget b), sget (b + 8), sget (b + 16)))
                  in
                  let blocks0 = npub * 24 in
                  let allocs =
                    List.init nallocs (fun i ->
                        unpack_block (sget (blocks0 + (i * 8))))
                  and frees =
                    List.init nfrees (fun i ->
                        unpack_block (sget (blocks0 + ((nallocs + i) * 8))))
                  in
                  Option.bind (kind_of ~pubs) (fun k -> finish k allocs frees)
          end
      | _ -> None

(* Retire a consumed or rolled-back intent: breaking the CRC word alone
   is enough (single durable store, idempotent). *)
let invalidate_intent c s dev =
  D.write_u64 dev (intent_off c s + intent_bytes) 0L;
  D.persist dev (intent_off c s + intent_bytes) 8

(* {1 Recovery} *)

type stats = {
  mutable rolled_forward : int;
  mutable rolled_back : int;
  mutable table_edited : bool;
}

(* Idempotent durable table edits keyed off the intent's block list.
   The table bytes are below the heap, so no undo coverage applies. *)
let ensure_marked table (off, order) =
  let idx = T.index_of_offset table off in
  if T.order_at table ~idx <> Some order then begin
    T.mark_durable table ~idx ~order;
    true
  end
  else false

let ensure_cleared table (off, _order) =
  let idx = T.index_of_offset table off in
  if T.order_at table ~idx <> None then begin
    T.clear_durable table ~idx;
    true
  end
  else false

let ensure_word dev addr v =
  if D.read_u64 dev addr <> v then begin
    D.write_u64 dev addr v;
    D.persist dev addr 8
  end

(* Roll the committed transaction's post-swap effects forward: redo the
   publish words, re-assert the marks (they were durable before the
   commit word could land, but recovery may re-crash mid-forward), and
   apply the retire clears the crash may have dropped. *)
let roll_forward dev table st it =
  List.iter
    (fun (addr, _old, newv) -> ensure_word dev addr newv)
    (pubs_of it.kind);
  List.iter (fun b -> if ensure_marked table b then st.table_edited <- true) it.allocs;
  List.iter (fun b -> if ensure_cleared table b then st.table_edited <- true) it.frees;
  st.rolled_forward <- st.rolled_forward + 1

(* Roll back: the commit word never landed, so the allocation marks are
   the only effect that may have — clear them and retire the intent.
   Publish words cannot have landed as a set (they are stored strictly
   after the commit fence), but a lone straggler can: re-assert their
   old values, free when they already match. *)
let roll_back c s dev table st it =
  List.iter
    (fun (addr, oldv, _new) -> ensure_word dev addr oldv)
    (pubs_of it.kind);
  List.iter (fun b -> if ensure_cleared table b then st.table_edited <- true) it.allocs;
  invalidate_intent c s dev;
  st.rolled_back <- st.rolled_back + 1

let recover_cell c dev table st =
  let _ptr, gen = read c dev in
  let recs =
    List.filter_map
      (fun s -> Option.map (fun it -> (s, it)) (read_intent c s dev))
      (List.init slots Fun.id)
  in
  let pending it = (it.igen - gen) land gen_mask = 1 in
  let consumed it = it.igen = gen && gen <> 0 in
  (* Stale first: a record whose generation is neither pending (gen+1)
     nor consumed (gen) belongs to a transaction the durable generation
     already jumped past — or fell short of by more than one — because
     an unfenced root swap was lost to the crash while this seal
     survived.  Its transaction is gone either way; retire the record
     so a later generation re-alignment (intent-less swaps advance w0
     without touching the slots) can never resurrect it. *)
  List.iter
    (fun (s, it) ->
      if not (pending it || consumed it) then invalidate_intent c s dev)
    recs;
  (* Consumed next: its commit word landed, so its transaction is
     logically EARLIER than any pending record's (generations are
     consecutive across the two slots) and its unfenced post-swap
     stores (publish words, retire clears) must be re-derived before
     the pending transaction is judged.  Then retire the record: a
     spilled intent must not be readable once its transient block can
     be recycled. *)
  List.iter
    (fun (s, it) ->
      if consumed it then begin
        roll_forward dev table st it;
        invalidate_intent c s dev
      end)
    recs;
  (* Pending last: did its commit word land?  The w0 generation is
     still [gen], so for [Gen_only]/[Swap] the answer is no.  For
     [Publish] the first publish word is its own commit point — and if
     the consumed pass above re-asserted that word (the two
     transactions touched the same address), the pending one reads as
     uncommitted and is rolled back: it sits in the
     committed-unacknowledged window where either outcome is legal,
     and the earlier transaction's effects win. *)
  List.iter
    (fun (s, it) ->
      if pending it then begin
        let committed =
          match it.kind with
          | Gen_only | Swap _ -> false
          | Publish (_, (addr, _old, newv) :: _) -> D.read_u64 dev addr = newv
          | Publish (_, []) -> false
        in
        if committed then begin
          roll_forward dev table st it;
          (* finish the root swap and generation bump the crash dropped;
             the intent records the pointer the w0 store carried *)
          let ptr =
            match it.kind with
            | Publish (p, _) -> p
            | Gen_only | Swap _ -> fst (read c dev)
          in
          D.write_u64 dev (cell_off c) (pack ~ptr ~gen:it.igen);
          D.persist dev (cell_off c) 8;
          invalidate_intent c s dev
        end
        else roll_back c s dev table st it
      end)
    recs

let recover dev table =
  let st = { rolled_forward = 0; rolled_back = 0; table_edited = false } in
  if Pr.on () then Pr.emit (Pr.Exempt_push { dev = D.id dev });
  Fun.protect
    ~finally:(fun () ->
      if Pr.on () then Pr.emit (Pr.Exempt_pop { dev = D.id dev }))
    (fun () ->
      for c = 0 to cells - 1 do
        recover_cell c dev table st
      done);
  st

(* {1 Inspection (pool_info / fsck)} *)

type cell_info = {
  ci_cell : int;
  ci_ptr : int;
  ci_gen : int;
  ci_pair : (int * int) option;
  ci_intents : (int * intent) list;  (** valid records, (slot, record) *)
  ci_pending : bool;  (** some intent generation is one ahead of w0 *)
}

let inspect dev =
  List.init cells (fun c ->
      let ptr, gen = read c dev in
      let its =
        List.filter_map
          (fun s -> Option.map (fun it -> (s, it)) (read_intent c s dev))
          (List.init slots Fun.id)
      in
      {
        ci_cell = c;
        ci_ptr = ptr;
        ci_gen = gen;
        ci_pair = pair c dev;
        ci_intents = its;
        ci_pending =
          List.exists (fun (_, it) -> (it.igen - gen) land gen_mask = 1) its;
      })
