(** Brand-indexed persistent type descriptors — the [PSafe] witness.

    A [('a, 'p) Ptype.t] is evidence that values of OCaml type ['a] may be
    stored in pools of brand ['p], together with the machinery to do so:
    a fixed byte footprint, serialization, ownership release ([drop]) and
    reference enumeration ([reach], used by the heap reachability checker).

    The descriptor plays the role of Rust's [PSafe] auto trait: OCaml
    values for which no descriptor can be built (closures, file handles,
    mutable volatile structures, pointers into other pools) simply cannot
    enter a pool.  Pointer descriptors ({!Pbox.ptype}, {!Prc.ptype}, …)
    force the inner brand to equal the outer pool's brand, which is what
    makes cross-pool pointers a compile-time type error.

    All footprints are multiples of 8 bytes so fields stay aligned. *)

type ('a, +'p) t

type edge = { block : int; follow : Pool_impl.t -> edge list }
(** One owned or weak reference out of a stored value: the referenced
    block's offset and a continuation enumerating that block's own
    outgoing references. *)

(** {1 Descriptor fields} *)

val name : ('a, 'p) t -> string
val size : ('a, 'p) t -> int
val hash : ('a, 'p) t -> int
(** Stable hash of the structural name; stored in the pool header to
    detect root-type mismatches across reopens. *)

val read : ('a, 'p) t -> Pool_impl.t -> int -> 'a
val write : ('a, 'p) t -> Pool_impl.t -> int -> 'a -> unit
(** Raw serialization.  Logging is the caller's responsibility; every
    mutator in the typed API logs before calling [write]. *)

val drop : ('a, 'p) t -> Pool_impl.tx -> int -> unit
(** Release everything the stored value owns (recursively), inside a
    transaction. *)

val reach : ('a, 'p) t -> Pool_impl.t -> int -> edge list

(** {1 Scalars} *)

val unit : (unit, 'p) t
val int : (int, 'p) t
val int64 : (int64, 'p) t
val bool : (bool, 'p) t
val char : (char, 'p) t
val float : (float, 'p) t

(** {1 Combinators} *)

val pair : ('a, 'p) t -> ('b, 'p) t -> ('a * 'b, 'p) t
val triple : ('a, 'p) t -> ('b, 'p) t -> ('c, 'p) t -> ('a * 'b * 'c, 'p) t
val option : ('a, 'p) t -> ('a option, 'p) t
(** Tagged: 8-byte tag + payload; [None] zeroes the payload so dead
    pointers cannot linger. *)

val either : ('a, 'p) t -> ('b, 'p) t -> (('a, 'b) Either.t, 'p) t
(** Binary sum: 8-byte tag + the larger payload, with the unused tail
    zeroed on writes.  The building block for persisting variant types
    (compose with {!map} for richer sums). *)

val fixed_string : int -> (string, 'p) t
(** Inline string of at most [n] bytes (length-prefixed, padded). *)

val array : int -> ('a, 'p) t -> ('a array, 'p) t
(** Inline fixed-length array; reading yields exactly [n] elements and
    writing requires exactly [n]. *)

val map : ?name:string -> to_:('a -> 'b) -> of_:('b -> 'a) -> ('a, 'p) t -> ('b, 'p) t
(** Isomorphism lifting, for mapping tuples onto user records. *)

val record2 :
  name:string ->
  inj:('a -> 'b -> 'r) ->
  proj:('r -> 'a * 'b) ->
  ('a, 'p) t ->
  ('b, 'p) t ->
  ('r, 'p) t

val record3 :
  name:string ->
  inj:('a -> 'b -> 'c -> 'r) ->
  proj:('r -> 'a * 'b * 'c) ->
  ('a, 'p) t ->
  ('b, 'p) t ->
  ('c, 'p) t ->
  ('r, 'p) t

val record4 :
  name:string ->
  inj:('a -> 'b -> 'c -> 'd -> 'r) ->
  proj:('r -> 'a * 'b * 'c * 'd) ->
  ('a, 'p) t ->
  ('b, 'p) t ->
  ('c, 'p) t ->
  ('d, 'p) t ->
  ('r, 'p) t

val record5 :
  name:string ->
  inj:('a -> 'b -> 'c -> 'd -> 'e -> 'r) ->
  proj:('r -> 'a * 'b * 'c * 'd * 'e) ->
  ('a, 'p) t ->
  ('b, 'p) t ->
  ('c, 'p) t ->
  ('d, 'p) t ->
  ('e, 'p) t ->
  ('r, 'p) t

val record6 :
  name:string ->
  inj:('a -> 'b -> 'c -> 'd -> 'e -> 'f -> 'r) ->
  proj:('r -> 'a * 'b * 'c * 'd * 'e * 'f) ->
  ('a, 'p) t ->
  ('b, 'p) t ->
  ('c, 'p) t ->
  ('d, 'p) t ->
  ('e, 'p) t ->
  ('f, 'p) t ->
  ('r, 'p) t

(** {1 Building new descriptors (pointer libraries only)} *)

val make :
  name:string ->
  size:int ->
  read:(Pool_impl.t -> int -> 'a) ->
  write:(Pool_impl.t -> int -> 'a -> unit) ->
  drop:(Pool_impl.tx -> int -> unit) ->
  reach:(Pool_impl.t -> int -> edge list) ->
  ('a, 'p) t
(** Escape hatch used by {!Pbox}, {!Prc}, {!Parc}, {!Pstring}, {!Pvec},
    and the wrapper types to define their own layouts.  [size] must be a
    multiple of 8. *)

val field_offsets : ('a, 'p) t list -> int list
(** Cumulative offsets of consecutive fields (test support). *)
