module D = Pmem.Device

type edge = { block : int; follow : Pool_impl.t -> edge list }

type ('a, 'p) t = {
  name : string;
  size : int;
  read : Pool_impl.t -> int -> 'a;
  write : Pool_impl.t -> int -> 'a -> unit;
  drop : Pool_impl.tx -> int -> unit;
  reach : Pool_impl.t -> int -> edge list;
}

let name t = t.name
let size t = t.size
let read t = t.read
let write t = t.write
let drop t = t.drop
let reach t = t.reach

(* A stable (non-randomized) string hash, so root-type hashes stored in
   pool files keep their meaning across runs. *)
let hash t =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) t.name;
  !h

let no_drop (_ : Pool_impl.tx) (_ : int) = ()
let no_reach (_ : Pool_impl.t) (_ : int) = []

let make ~name ~size ~read ~write ~drop ~reach =
  if size < 0 || size mod 8 <> 0 then
    invalid_arg (Printf.sprintf "Ptype.make %s: size %d not a multiple of 8" name size);
  { name; size; read; write; drop; reach }

let dev p = Pool_impl.device p

let scalar name rd wr =
  { name; size = 8; read = rd; write = wr; drop = no_drop; reach = no_reach }

let unit =
  {
    name = "unit";
    size = 0;
    read = (fun _ _ -> ());
    write = (fun _ _ () -> ());
    drop = no_drop;
    reach = no_reach;
  }

let int =
  scalar "int"
    (fun p off -> Int64.to_int (D.read_u64 (dev p) off))
    (fun p off v -> D.write_u64 (dev p) off (Int64.of_int v))

let int64 =
  scalar "int64"
    (fun p off -> D.read_u64 (dev p) off)
    (fun p off v -> D.write_u64 (dev p) off v)

let bool =
  scalar "bool"
    (fun p off -> D.read_u64 (dev p) off <> 0L)
    (fun p off v -> D.write_u64 (dev p) off (if v then 1L else 0L))

let char =
  scalar "char"
    (fun p off -> Char.chr (Int64.to_int (D.read_u64 (dev p) off) land 0xFF))
    (fun p off v -> D.write_u64 (dev p) off (Int64.of_int (Char.code v)))

let float =
  scalar "float"
    (fun p off -> Int64.float_of_bits (D.read_u64 (dev p) off))
    (fun p off v -> D.write_u64 (dev p) off (Int64.bits_of_float v))

let pair a b =
  {
    name = Printf.sprintf "(%s * %s)" a.name b.name;
    size = a.size + b.size;
    read = (fun p off -> (a.read p off, b.read p (off + a.size)));
    write =
      (fun p off (x, y) ->
        a.write p off x;
        b.write p (off + a.size) y);
    drop =
      (fun tx off ->
        a.drop tx off;
        b.drop tx (off + a.size));
    reach = (fun p off -> a.reach p off @ b.reach p (off + a.size));
  }

let triple a b c =
  let abc = pair a (pair b c) in
  {
    abc with
    name = Printf.sprintf "(%s * %s * %s)" a.name b.name c.name;
    read = (fun p off -> let x, (y, z) = abc.read p off in (x, y, z));
    write = (fun p off (x, y, z) -> abc.write p off (x, (y, z)));
  }

let option a =
  {
    name = Printf.sprintf "%s option" a.name;
    size = 8 + a.size;
    read =
      (fun p off ->
        if D.read_u64 (dev p) off = 0L then None
        else Some (a.read p (off + 8)));
    write =
      (fun p off v ->
        match v with
        | None ->
            D.write_u64 (dev p) off 0L;
            if a.size > 0 then D.fill (dev p) (off + 8) a.size '\000'
        | Some x ->
            D.write_u64 (dev p) off 1L;
            a.write p (off + 8) x);
    drop =
      (fun tx off ->
        let p = Pool_impl.tx_pool tx in
        if D.read_u64 (dev p) off <> 0L then a.drop tx (off + 8));
    reach =
      (fun p off ->
        if D.read_u64 (dev p) off <> 0L then a.reach p (off + 8) else []);
  }

let either a b =
  let payload = max a.size b.size in
  let zero_tail p off used =
    if payload > used then D.fill (dev p) (off + 8 + used) (payload - used) '\000'
  in
  {
    name = Printf.sprintf "(%s, %s) either" a.name b.name;
    size = 8 + payload;
    read =
      (fun p off ->
        if D.read_u64 (dev p) off = 0L then Either.Left (a.read p (off + 8))
        else Either.Right (b.read p (off + 8)));
    write =
      (fun p off v ->
        match v with
        | Either.Left x ->
            D.write_u64 (dev p) off 0L;
            a.write p (off + 8) x;
            zero_tail p off a.size
        | Either.Right y ->
            D.write_u64 (dev p) off 1L;
            b.write p (off + 8) y;
            zero_tail p off b.size);
    drop =
      (fun tx off ->
        let p = Pool_impl.tx_pool tx in
        if D.read_u64 (dev p) off = 0L then a.drop tx (off + 8)
        else b.drop tx (off + 8));
    reach =
      (fun p off ->
        if D.read_u64 (dev p) off = 0L then a.reach p (off + 8)
        else b.reach p (off + 8));
  }

let pad8 n = (n + 7) land lnot 7

let fixed_string n =
  if n < 0 then invalid_arg "Ptype.fixed_string: negative capacity";
  {
    name = Printf.sprintf "string[%d]" n;
    size = 8 + pad8 n;
    read =
      (fun p off ->
        let len = Int64.to_int (D.read_u64 (dev p) off) in
        D.read_string (dev p) (off + 8) len);
    write =
      (fun p off s ->
        let len = String.length s in
        if len > n then
          invalid_arg
            (Printf.sprintf "fixed_string[%d]: value of length %d" n len);
        D.write_u64 (dev p) off (Int64.of_int len);
        if len > 0 then D.write_string (dev p) (off + 8) s);
    drop = no_drop;
    reach = no_reach;
  }

let array n a =
  if n < 0 then invalid_arg "Ptype.array: negative length";
  {
    name = Printf.sprintf "%s[%d]" a.name n;
    size = n * a.size;
    read = (fun p off -> Array.init n (fun i -> a.read p (off + (i * a.size))));
    write =
      (fun p off v ->
        if Array.length v <> n then
          invalid_arg
            (Printf.sprintf "array[%d]: value of length %d" n (Array.length v));
        Array.iteri (fun i x -> a.write p (off + (i * a.size)) x) v);
    drop =
      (fun tx off ->
        for i = 0 to n - 1 do
          a.drop tx (off + (i * a.size))
        done);
    reach =
      (fun p off ->
        List.concat (List.init n (fun i -> a.reach p (off + (i * a.size)))));
  }

let map ?name:n ~to_ ~of_ a =
  {
    a with
    name = Option.value ~default:a.name n;
    read = (fun p off -> to_ (a.read p off));
    write = (fun p off v -> a.write p off (of_ v));
  }

let record2 ~name ~inj ~proj a b =
  map ~name ~to_:(fun (x, y) -> inj x y) ~of_:proj (pair a b)

let record3 ~name ~inj ~proj a b c =
  map ~name
    ~to_:(fun (x, (y, z)) -> inj x y z)
    ~of_:(fun r ->
      let x, y, z = proj r in
      (x, (y, z)))
    (pair a (pair b c))

let record4 ~name ~inj ~proj a b c d =
  map ~name
    ~to_:(fun (x, (y, (z, w))) -> inj x y z w)
    ~of_:(fun r ->
      let x, y, z, w = proj r in
      (x, (y, (z, w))))
    (pair a (pair b (pair c d)))

let record5 ~name ~inj ~proj a b c d e =
  map ~name
    ~to_:(fun (x, (y, (z, (w, v)))) -> inj x y z w v)
    ~of_:(fun r ->
      let x, y, z, w, v = proj r in
      (x, (y, (z, (w, v)))))
    (pair a (pair b (pair c (pair d e))))

let record6 ~name ~inj ~proj a b c d e g =
  map ~name
    ~to_:(fun (x, (y, (z, (w, (v, u))))) -> inj x y z w v u)
    ~of_:(fun r ->
      let x, y, z, w, v, u = proj r in
      (x, (y, (z, (w, (v, u))))))
    (pair a (pair b (pair c (pair d (pair e g)))))

let field_offsets tys =
  let rec go acc off = function
    | [] -> List.rev acc
    | ty :: rest -> go (off :: acc) (off + ty.size) rest
  in
  go [] 0 tys
