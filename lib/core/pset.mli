(** [Pset] — persistent sorted set of integers (a {!Pmap} with unit
    payloads).  O(log n) membership, ordered iteration, crash-atomic
    updates. *)

type 'p t

val make : 'p Journal.t -> 'p t
val cardinal : 'p t -> int
val is_empty : 'p t -> bool

val add : 'p t -> int -> 'p Journal.t -> unit
val mem : 'p t -> int -> bool
val remove : 'p t -> int -> 'p Journal.t -> bool
val min_elt : 'p t -> int option
val max_elt : 'p t -> int option
val fold : 'p t -> init:'b -> f:('b -> int -> 'b) -> 'b
val iter : 'p t -> (int -> unit) -> unit
val to_list : 'p t -> int list
val range : 'p t -> lo:int -> hi:int -> int list
(** Elements within [lo, hi], ascending (pruned descent). *)

val clear : 'p t -> 'p Journal.t -> unit
val drop : 'p t -> 'p Journal.t -> unit
val check : 'p t -> (unit, string) result
val ptype : unit -> ('p t, 'p) Ptype.t
