type 'p t = (unit, 'p) Pmap.t

let make j = Pmap.make ~vty:Ptype.unit j
let cardinal = Pmap.length
let is_empty = Pmap.is_empty
let add s k j = Pmap.add s ~key:k () j
let mem = Pmap.mem
let remove = Pmap.remove
let min_elt s = Option.map fst (Pmap.min_binding s)
let max_elt s = Option.map fst (Pmap.max_binding s)
let fold s ~init ~f = Pmap.fold s ~init ~f:(fun acc k () -> f acc k)
let iter s f = Pmap.iter s (fun k () -> f k)
let to_list s = List.map fst (Pmap.to_list s)
let clear = Pmap.clear
let drop = Pmap.drop
let check = Pmap.check
let ptype () = Pmap.ptype Ptype.unit

let range s ~lo ~hi =
  List.rev (Pmap.fold_range s ~lo ~hi ~init:[] ~f:(fun acc k () -> k :: acc))
