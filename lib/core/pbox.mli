(** [Pbox] — exclusively-owned pointer to persistent memory.

    The persistent counterpart of Rust's [Box<T>], bound to a pool brand:
    a [('a, 'p) Pbox.t] can only point into the pool of brand ['p], and
    {!ptype} forces the brand of the pointee descriptor to match the brand
    of the pool it is stored in — a cross-pool pointer does not type-check.

    Construction is failure-atomic ([AtomicInit] in the paper): the block
    is allocated through the journal and its initial contents are persisted
    before the constructor returns, so a crash either rolls the allocation
    back entirely or finds the box fully initialized.

    OCaml has no deterministic scope exit, so dropping is explicit:
    {!drop} releases the pointee (recursively) inside a transaction.  The
    heap reachability checker (see [Crashtest.Leak_check]) verifies that
    this discipline leaks nothing. *)

type ('a, 'p) t

val make : ty:('a, 'p) Ptype.t -> 'a -> 'p Journal.t -> ('a, 'p) t
(** Allocate in the journal's pool and initialize atomically. *)

val get : ('a, 'p) t -> 'a
(** Dereference (copy out).  Needs no journal — reading persistent state
    is always safe while the pool is open. *)

val set : ('a, 'p) t -> 'a -> 'p Journal.t -> unit
(** Replace the contents: undo-logs the block, releases whatever the old
    value owned, writes the new value.  The first [set] in a transaction
    pays for the log; later ones are cheap (the paper's [DerefMut]). *)

val modify : ('a, 'p) t -> 'p Journal.t -> ('a -> 'a) -> unit

val pclone : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) t
(** Deep-copy the box: a fresh allocation initialized with the current
    value ([Pbox::pclone] in the paper — allocation plus copy). *)

val drop : ('a, 'p) t -> 'p Journal.t -> unit
(** Release the pointee's own references and free the block (deferred to
    commit, rolled back on abort). *)

val off : ('a, 'p) t -> int
(** Block offset (identity; test and tooling support). *)

val equal : ('a, 'p) t -> ('a, 'p) t -> bool

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
(** Store boxes inside other persistent structures.  Writing a box value
    into a slot transfers ownership of the pointee to that slot. *)

val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
(** Like {!ptype} for recursive types: the pointee descriptor may refer
    back to the structure under construction.  Pointers have a fixed
    8-byte footprint, so the inner descriptor is only forced at runtime. *)

val unsafe_handle : Pool_impl.t -> int -> ('a, 'p) Ptype.t -> ('a, 'p) t
(** Rebuild a handle from a raw offset.  Library-internal (used by
    {!Pool} for the root object). *)
