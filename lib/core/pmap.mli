(** [Pmap] — persistent sorted map (AVL tree) with integer keys.

    A self-balancing search tree whose nodes live in the pool; lookups
    are O(log n) and iteration is in key order.  All structural updates
    (links, heights, rotations) are undo-logged through the journal, so
    any crash rolls back to the pre-transaction tree; the structural
    invariants (ordering, balance, height bookkeeping) are
    machine-checked by {!check} and exercised by the failure injector.

    Values are any persistable type; replacing or removing an entry
    releases what the old value owned (like {!Pcell.set}), and {!clear} /
    {!drop} cascade. *)

type ('a, 'p) t

val make : vty:('a, 'p) Ptype.t -> 'p Journal.t -> ('a, 'p) t
val length : ('a, 'p) t -> int
val is_empty : ('a, 'p) t -> bool

val add : ('a, 'p) t -> key:int -> 'a -> 'p Journal.t -> unit
(** Insert, or replace (releasing the old value). *)

val find : ('a, 'p) t -> int -> 'a option
val mem : ('a, 'p) t -> int -> bool

val remove : ('a, 'p) t -> int -> 'p Journal.t -> bool
(** Delete; returns whether the key was present.  The stored value is
    released. *)

val min_binding : ('a, 'p) t -> (int * 'a) option
val max_binding : ('a, 'p) t -> (int * 'a) option
val fold : ('a, 'p) t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Ascending key order. *)

val iter : ('a, 'p) t -> (int -> 'a -> unit) -> unit

val fold_range :
  ('a, 'p) t -> lo:int -> hi:int -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Ascending fold over the keys in [lo, hi] (inclusive); prunes subtrees
    outside the range, so the cost is O(log n + matches). *)

val to_list : ('a, 'p) t -> (int * 'a) list
val height : ('a, 'p) t -> int
val clear : ('a, 'p) t -> 'p Journal.t -> unit
val drop : ('a, 'p) t -> 'p Journal.t -> unit
val off : ('a, 'p) t -> int

val check : ('a, 'p) t -> (unit, string) result
(** Structural invariants: key order, AVL balance (|bf| <= 1), recorded
    heights, and the stored size. *)

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
