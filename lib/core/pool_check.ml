module D = Pmem.Device

type finding = { where : string; problem : string }

type report = {
  findings : finding list;
  slots_checked : int;
  entries_checked : int;
  blocks_checked : int;
}

let ok r = r.findings = []

let header_size = 4096
let magic = "CORUNDUM-POOL-01"

(* Slot header field offsets (mirroring Journal_impl).  [hdr_count] is
   advisory: the durable tail of a slot's log is its terminator word, and
   fsck cross-checks the advisory count against the walked tail. *)
let hdr_phase = 0
let hdr_count = 8
let hdr_drops = 16
let hdr_spill = 24
let hdr_epoch = 32
let hdr_size = 64

type layout = {
  nslots : int;
  slot_size : int;
  heap_len : int;
  table_base : int;
  heap_base : int;
  root_off : int;
}

let read_layout dev =
  let u64 off = Int64.to_int (D.read_u64 dev off) in
  {
    nslots = u64 48;
    slot_size = u64 56;
    heap_len = u64 64;
    table_base = u64 72;
    heap_base = u64 80;
    root_off = u64 32;
  }

let layout_sane dev l =
  l.nslots > 0 && l.nslots < 1024
  && l.slot_size > 0
  && header_size + (l.nslots * l.slot_size) <= l.table_base
  && l.table_base + (l.heap_len / 64) <= l.heap_base
  && l.heap_base + l.heap_len <= D.size dev
  && l.heap_len mod 64 = 0

let check_device dev =
  let findings = ref [] in
  let note where fmt =
    Printf.ksprintf (fun problem -> findings := { where; problem } :: !findings) fmt
  in
  let u64 off = Int64.to_int (D.read_u64 dev off) in
  let size = D.size dev in
  let entries_checked = ref 0 and blocks_checked = ref 0 in
  let slots_checked = ref 0 in
  (* --- header ---------------------------------------------------------- *)
  if size < header_size then note "header" "device smaller than a pool header"
  else if not (String.equal (D.read_string dev 0 (String.length magic)) magic)
  then note "header" "bad magic: not a Corundum pool"
  else begin
    let version = u64 16 in
    if version <> 1 then note "header" "unsupported version %d" version;
    let ({ nslots; slot_size; heap_len; table_base; heap_base; root_off } as l) =
      read_layout dev
    in
    if not (layout_sane dev l) then note "header" "layout fields are inconsistent"
    else begin
      if not (Pool_impl.header_crc_ok dev) then
        note "header" "layout checksum mismatch (stored %#x, computed %#x)"
          (Pool_impl.stored_header_crc dev)
          (Pool_impl.header_crc dev);
      (* --- journal slots ------------------------------------------------ *)
      for i = 0 to nslots - 1 do
        incr slots_checked;
        let base = header_size + (i * slot_size) in
        let where = Printf.sprintf "journal slot %d" i in
        let phase = u64 (base + hdr_phase)
        and advisory = u64 (base + hdr_count)
        and drops = u64 (base + hdr_drops)
        and epoch = u64 (base + hdr_epoch) in
        let salt = Pjournal.Log_entry.salt ~slot_base:base ~epoch in
        if phase <> 0 && phase <> 1 then note where "bad phase %d" phase;
        if advisory < 0 || advisory * 16 > 64 * slot_size then
          note where "implausible entry count %d" advisory
        else begin
          (* the spill chain must point at live heap blocks *)
          (match Pjournal.Log_entry.spill_chain dev ~slot_base:base with
          | spills ->
              List.iter
                (fun off ->
                  if off < heap_base || off >= heap_base + heap_len then
                    note where "spill region outside the heap"
                  else if (off - heap_base) mod 64 <> 0 then
                    note where "spill region misaligned")
                spills
          | exception Invalid_argument m -> note where "corrupt spill chain: %s" m);
          (* walk the undo entries to the tail terminator (spill-chain
             aware, checksum-verified) and cross-check the advisory count *)
          (try
             let visited, _cursor, reason =
               Pjournal.Log_entry.walk_to_tail dev ~slot_base:base ~slot_size
                 ~salt (fun e ->
                   incr entries_checked;
                   match e with
                   | Pjournal.Log_entry.Data { off; len; _ } ->
                       if len <= 0 || off < 0 || off + len > size then
                         failwith "data entry targets outside the pool"
                   | Pjournal.Log_entry.Alloc { off; order } ->
                       if off < heap_base || off >= heap_base + heap_len then
                         failwith "alloc entry outside the heap";
                       if order < 0 || order > 40 then failwith "alloc order bogus"
                   | Pjournal.Log_entry.Drop { off; order = _ } ->
                       if off < heap_base || off >= heap_base + heap_len then
                         failwith "drop entry outside the heap")
             in
             (match reason with
             | Pjournal.Log_entry.Terminator -> ()
             | Pjournal.Log_entry.Bad_entry m -> note where "torn log tail: %s" m
             | Pjournal.Log_entry.Chain_end m ->
                 note where "log chain ends without a terminator (%s)" m);
             (* advisory = 0 with a walked tail is a normal in-flight
                transaction (the count persists only at commit); a
                non-zero advisory must agree with the walk *)
             if advisory <> 0 && advisory <> visited then
               note where
                 "advisory entry count %d disagrees with walked tail (%d sealed entries)"
                 advisory visited
           with Failure m -> note where "%s" m)
        end;
        if drops < 0 || drops * 16 > slot_size then
          note where "implausible drop count %d" drops
        else
          for d = 1 to drops do
            let at = base + slot_size - (d * 16) in
            match Pjournal.Log_entry.read dev ~salt ~at with
            | Pjournal.Log_entry.Drop { off; order = _ }, _ ->
                if off < heap_base || off >= heap_base + heap_len then
                  note where "drop area entry outside the heap"
            | _ -> note where "non-drop entry in drop area"
            | exception Invalid_argument _ -> note where "torn drop entry"
          done
      done;
      (* --- allocation table & heap tiling -------------------------------- *)
      let nblocks = heap_len / 64 in
      let idx = ref 0 in
      (try
         while !idx < nblocks do
           let b = D.read_u8 dev (table_base + !idx) in
           if b = 0 then incr idx
           else begin
             incr blocks_checked;
             let order = b - 1 in
             let len = 1 lsl order in
             if order > 40 || !idx + len > nblocks then begin
               note "alloc table" "block %d (order %d) overflows the heap" !idx order;
               raise Exit
             end;
             if !idx land (len - 1) <> 0 then begin
               note "alloc table" "block %d misaligned for order %d" !idx order;
               raise Exit
             end;
             (* interior bytes of an allocated extent must stay zero, or a
                phantom head surfaces when the covering block is freed *)
             for j = !idx + 1 to !idx + len - 1 do
               if D.read_u8 dev (table_base + j) <> 0 then
                 note "alloc table" "phantom head at index %d inside block %d" j
                   !idx
             done;
             idx := !idx + len
           end
         done
       with Exit -> ());
      (* tiling via the buddy's own integrity check *)
      (if !findings = [] then
         let buddy = Palloc.Buddy.attach dev ~table_base ~heap_base ~heap_len in
         match Palloc.Heap_walk.check buddy with
         | Ok () -> ()
         | Error m -> note "heap" "%s" m);
      (* --- root ----------------------------------------------------------- *)
      if root_off <> 0 then
        if root_off < heap_base || root_off >= heap_base + heap_len then
          note "root" "root offset %d outside the heap" root_off
        else if (root_off - heap_base) mod 64 <> 0 then
          note "root" "root offset %d misaligned" root_off
        else begin
          let bidx = (root_off - heap_base) / 64 in
          if D.read_u8 dev (table_base + bidx) = 0 then
            note "root" "root points at a free block"
        end;
      (* --- CoW root cells ------------------------------------------------- *)
      (* Is [off] inside some live allocated extent?  Scan back from its
         index: interior bytes of an extent are zero, so the first
         non-zero byte at or before it is the only candidate head. *)
      let covered off =
        if
          off < heap_base
          || off >= heap_base + heap_len
          || (off - heap_base) mod 64 <> 0
        then `Outside
        else begin
          let target = (off - heap_base) / 64 in
          let rec back j =
            if j < 0 then `Free
            else
              let b = D.read_u8 dev (table_base + j) in
              if b = 0 then back (j - 1)
              else if j + (1 lsl (b - 1)) > target then `Live
              else `Free
          in
          back target
        end
      in
      List.iter
        (fun (ci : Cow_root.cell_info) ->
          let where = Printf.sprintf "cow cell %d" ci.ci_cell in
          (match ci.ci_pair with
          | Some (pb, half) ->
              (if covered pb <> `Live then
                 note where "root pair base %d is not a live block" pb);
              if half <= 0 || half mod 64 <> 0 then
                note where "root pair half size %d implausible" half
              else if
                ci.ci_ptr <> 0 && ci.ci_ptr <> pb && ci.ci_ptr <> pb + half
              then
                note where
                  "active pointer %d names neither pair half (torn root-swap \
                   image)"
                  ci.ci_ptr
          | None -> (
              if ci.ci_ptr <> 0 then
                match covered ci.ci_ptr with
                | `Live -> ()
                | `Outside ->
                    note where "active pointer %d outside the heap" ci.ci_ptr
                | `Free ->
                    note where "active pointer %d dangles into free space"
                      ci.ci_ptr));
          List.iter
            (fun (s, (it : Cow_root.intent)) ->
              let bad_block what (boff, order) =
                if
                  boff < heap_base
                  || boff >= heap_base + heap_len
                  || (boff - heap_base) mod 64 <> 0
                  || order < 0 || order > 40
                then
                  note where
                    "intent slot %d: %s block record (%d, order %d) implausible"
                    s what boff order
              in
              List.iter (bad_block "alloc") it.allocs;
              List.iter (bad_block "retire") it.frees;
              match it.kind with
              | Cow_root.Publish (_, pubs) ->
                  List.iter
                    (fun (a, _, _) ->
                      if a < header_size || a + 8 > size then
                        note where
                          "intent slot %d: publish word at %d outside the pool"
                          s a)
                    pubs
              | Cow_root.Gen_only | Cow_root.Swap _ -> ())
            ci.ci_intents;
          (* pending = a sealed commit whose tail never resolved: normal
             on a raw crash image (recovery resolves it at open), a bug
             on anything claiming to be recovered *)
          if ci.ci_pending then
            note where
              "pending commit intent (gen %d -> %d): image predates recovery \
               or resolution failed"
              ci.ci_gen
              ((ci.ci_gen + 1) land Cow_root.gen_mask))
        (Cow_root.inspect dev)
    end
  end;
  {
    findings = List.rev !findings;
    slots_checked = !slots_checked;
    entries_checked = !entries_checked;
    blocks_checked = !blocks_checked;
  }

let check_file path = check_device (D.load path)

let pp ppf r =
  if ok r then
    Format.fprintf ppf
      "pool is consistent (%d journal slots, %d log entries, %d live blocks checked)@."
      r.slots_checked r.entries_checked r.blocks_checked
  else begin
    Format.fprintf ppf "pool has %d problem(s):@." (List.length r.findings);
    List.iter
      (fun f -> Format.fprintf ppf "  [%s] %s@." f.where f.problem)
      r.findings
  end

(* {1 Repair} *)

type repair_action = { where : string; action : string }

type repair_report = {
  actions : repair_action list;
  entries_truncated : int;
  drops_truncated : int;
  blocks_quarantined : int;
  unrepairable : finding list;
  post : report;
}

let repaired r = r.unrepairable = [] && ok r.post

(* The repairing fsck.  Runs on a raw image before recovery and restores
   structural consistency without touching committed data:

   - a header whose layout fields are sane but whose checksum is stale is
     re-sealed;
   - a journal slot with a torn log tail (a word after the last sealed
     entry failing verification) gets a fresh terminator sealed over it —
     the same "treat as never written" rule recovery applies — and its
     advisory entry count is reconciled with the walked tail; a slot
     whose header fields are implausible or whose spill chain is broken
     is reset outright (terminator rewritten, epoch bumped);
   - allocation-table bytes that claim impossible blocks (bogus order,
     misalignment, heap overflow, phantom heads inside a live extent) are
     quarantined: cleared, so the extent returns to the free space that
     tiling can account for;
   - a wild root pointer is NOT repaired (the data it named is gone);
     it is reported as unrepairable and the pool remains openable only
     in [Read_only] mode.

   Every write is persisted, so a crash mid-repair just means running
   repair again; all actions are idempotent. *)
let repair dev =
  let actions = ref [] and unrepairable = ref [] in
  let act where fmt =
    Printf.ksprintf (fun action -> actions := { where; action } :: !actions) fmt
  in
  let lost where fmt =
    Printf.ksprintf
      (fun problem -> unrepairable := { where; problem } :: !unrepairable)
      fmt
  in
  let entries_truncated = ref 0
  and drops_truncated = ref 0
  and quarantined = ref 0 in
  let size = D.size dev in
  if size < header_size then lost "header" "device smaller than a pool header"
  else if not (String.equal (D.read_string dev 0 (String.length magic)) magic)
  then lost "header" "bad magic: not a Corundum pool"
  else begin
    let version = Int64.to_int (D.read_u64 dev 16) in
    let ({ nslots; slot_size; heap_len; table_base; heap_base; root_off } as l) =
      read_layout dev
    in
    if version <> 1 then lost "header" "unsupported version %d" version
    else if not (layout_sane dev l) then
      lost "header" "layout fields are inconsistent; nothing can be trusted"
    else begin
      if not (Pool_impl.header_crc_ok dev) then begin
        Pool_impl.write_header_crc dev;
        act "header" "re-sealed layout checksum"
      end;
      (* --- journal slots ------------------------------------------------ *)
      let write_field base off v =
        D.write_u64 dev (base + off) (Int64.of_int v);
        D.persist dev (base + off) 8
      in
      let reset_slot base why =
        (* a batched header persist, like a runtime truncate: terminator
           back at the head of the entry area and the epoch bumped, so
           whatever sealed bytes remain can never verify again *)
        let epoch = D.read_u64 dev (base + hdr_epoch) in
        D.write_u64 dev (base + hdr_phase) 0L;
        D.write_u64 dev (base + hdr_count) 0L;
        D.write_u64 dev (base + hdr_drops) 0L;
        D.write_u64 dev (base + hdr_spill) 0L;
        D.write_u64 dev (base + hdr_epoch) (Int64.add epoch 1L);
        D.write_u64 dev (base + hdr_size) 0L;
        D.persist dev base (hdr_size + 8);
        act (Printf.sprintf "journal slot %d" (base / slot_size)) "reset slot: %s"
          why
      in
      for i = 0 to nslots - 1 do
        let base = header_size + (i * slot_size) in
        let where = Printf.sprintf "journal slot %d" i in
        let phase = Int64.to_int (D.read_u64 dev (base + hdr_phase))
        and advisory = Int64.to_int (D.read_u64 dev (base + hdr_count))
        and drops = Int64.to_int (D.read_u64 dev (base + hdr_drops))
        and epoch = Int64.to_int (D.read_u64 dev (base + hdr_epoch)) in
        let salt = Pjournal.Log_entry.salt ~slot_base:base ~epoch in
        if phase <> 0 && phase <> 1 then
          reset_slot base (Printf.sprintf "bad phase %d" phase)
        else if advisory < 0 || advisory * 16 > 64 * slot_size then
          reset_slot base (Printf.sprintf "implausible entry count %d" advisory)
        else begin
          let chain =
            match Pjournal.Log_entry.spill_chain dev ~slot_base:base with
            | spills ->
                if
                  List.for_all
                    (fun off ->
                      off >= heap_base
                      && off < heap_base + heap_len
                      && (off - heap_base) mod 64 = 0)
                    spills
                then Some spills
                else None
            | exception Invalid_argument _ -> None
          in
          match chain with
          | None ->
              entries_truncated := !entries_truncated + max 0 advisory;
              reset_slot base "corrupt spill chain"
          | Some spills ->
            let visited, cursor, reason =
              Pjournal.Log_entry.walk_to_tail dev ~slot_base:base ~slot_size
                ~salt
                (fun _ -> ())
            in
            (* can a terminator word at [cursor] stay inside its region? *)
            let term_fits =
              let inside rbase rlimit =
                cursor >= rbase && cursor + 8 <= min rlimit (D.size dev)
              in
              inside (base + hdr_size)
                (Pjournal.Log_entry.main_entry_limit ~slot_base:base ~slot_size)
              || List.exists
                   (fun off ->
                     inside
                       (off + Pjournal.Log_entry.spill_header)
                       (off + Int64.to_int (D.read_u64 dev (off + 8))))
                   spills
            in
            let torn =
              match reason with
              | Pjournal.Log_entry.Terminator -> false
              | Pjournal.Log_entry.Bad_entry _ | Pjournal.Log_entry.Chain_end _
                ->
                  true
            in
            if torn && not term_fits then begin
              (* only hand-damaged images reach here: the writer always
                 reserves terminator room, so there is no prefix worth
                 preserving that a fresh terminator could seal *)
              entries_truncated := !entries_truncated + max visited (max 0 advisory);
              reset_slot base "log tail cannot be sealed in place"
            end
            else begin
              (match reason with
              | Pjournal.Log_entry.Terminator -> ()
              | Pjournal.Log_entry.Bad_entry m | Pjournal.Log_entry.Chain_end m
                ->
                  (* seal the verified prefix: the torn tail becomes the
                     terminator, the same "never written" rule recovery
                     applies *)
                  D.write_u64 dev cursor 0L;
                  D.persist dev cursor 8;
                  act where "sealed torn log tail at %d (%s)" cursor m);
              entries_truncated :=
                !entries_truncated
                + max
                    (if advisory <> 0 then advisory - visited else 0)
                    (if torn then 1 else 0);
              if advisory <> 0 && advisory <> visited then begin
                write_field base hdr_count visited;
                act where "reconciled advisory entry count %d -> %d walked entries"
                  advisory visited
              end;
            if drops < 0 || drops * 16 > slot_size then begin
              write_field base hdr_drops 0;
              drops_truncated := !drops_truncated + max 0 drops;
              act where "cleared implausible drop count %d" drops
            end
            else begin
              let valid_drops = ref drops in
              (try
                 for d = 1 to drops do
                   let at = base + slot_size - (d * 16) in
                   match Pjournal.Log_entry.read dev ~salt ~at with
                   | Pjournal.Log_entry.Drop { off; order = _ }, _
                     when off >= heap_base && off < heap_base + heap_len ->
                       ()
                   | _ ->
                       valid_drops := d - 1;
                       raise Exit
                   | exception Invalid_argument _ ->
                       valid_drops := d - 1;
                       raise Exit
                 done
               with Exit -> ());
              if !valid_drops < drops then begin
                write_field base hdr_drops !valid_drops;
                drops_truncated := !drops_truncated + (drops - !valid_drops);
                act where "truncated %d corrupt drop entries" (drops - !valid_drops)
              end
            end
          end
        end
      done;
      (* --- allocation table: quarantine impossible claims ---------------- *)
      let nblocks = heap_len / 64 in
      let clear j why =
        D.write_u8 dev (table_base + j) 0;
        D.persist dev (table_base + j) 1;
        incr quarantined;
        act "alloc table" "quarantined block %d: %s" j why
      in
      let idx = ref 0 in
      while !idx < nblocks do
        let b = D.read_u8 dev (table_base + !idx) in
        if b = 0 then incr idx
        else begin
          let order = b - 1 in
          let len = 1 lsl order in
          if order > 40 || !idx + len > nblocks then begin
            clear !idx (Printf.sprintf "order %d overflows the heap" order);
            incr idx
          end
          else if !idx land (len - 1) <> 0 then begin
            clear !idx (Printf.sprintf "misaligned for order %d" order);
            incr idx
          end
          else begin
            (* phantom heads inside a live extent: rot below the head *)
            for j = !idx + 1 to !idx + len - 1 do
              if D.read_u8 dev (table_base + j) <> 0 then
                clear j
                  (Printf.sprintf "phantom head inside block %d (order %d)" !idx
                     order)
            done;
            idx := !idx + len
          end
        end
      done;
      (* --- CoW commit intents: run the cell resolution ------------------- *)
      (* Surviving intent records (pending, consumed or stale) are what
         pool recovery resolves at attach; repair applies the same
         idempotent resolution so the repaired image opens clean.  This
         runs after table quarantine — resolution trusts table bytes. *)
      (if
         List.exists
           (fun (ci : Cow_root.cell_info) -> ci.ci_intents <> [])
           (Cow_root.inspect dev)
       then
         let tbl =
           Palloc.Alloc_table.attach dev ~table_base ~heap_base ~heap_len
         in
         let st = Cow_root.recover dev tbl in
         act "cow cells"
           "resolved commit intents: %d rolled forward, %d rolled back"
           st.Cow_root.rolled_forward st.Cow_root.rolled_back);
      (* --- root: detectable, not repairable ------------------------------ *)
      if root_off <> 0 then
        if root_off < heap_base || root_off >= heap_base + heap_len then
          lost "root" "root offset %d outside the heap (open read-only)" root_off
        else if (root_off - heap_base) mod 64 <> 0 then
          lost "root" "root offset %d misaligned (open read-only)" root_off
        else if D.read_u8 dev (table_base + ((root_off - heap_base) / 64)) = 0
        then lost "root" "root points at a free block (open read-only)"
    end
  end;
  {
    actions = List.rev !actions;
    entries_truncated = !entries_truncated;
    drops_truncated = !drops_truncated;
    blocks_quarantined = !quarantined;
    unrepairable = List.rev !unrepairable;
    post = check_device dev;
  }

let pp_repair ppf r =
  List.iter (fun a -> Format.fprintf ppf "repair [%s] %s@." a.where a.action) r.actions;
  List.iter
    (fun (f : finding) ->
      Format.fprintf ppf "UNREPAIRABLE [%s] %s@." f.where f.problem)
    r.unrepairable;
  Format.fprintf ppf
    "repair: %d actions, %d undo entries truncated, %d drops truncated, %d blocks quarantined@."
    (List.length r.actions) r.entries_truncated r.drops_truncated
    r.blocks_quarantined;
  pp ppf r.post
