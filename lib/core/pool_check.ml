module D = Pmem.Device

type finding = { where : string; problem : string }

type report = {
  findings : finding list;
  slots_checked : int;
  entries_checked : int;
  blocks_checked : int;
}

let ok r = r.findings = []

let header_size = 4096
let magic = "CORUNDUM-POOL-01"

let check_device dev =
  let findings = ref [] in
  let note where fmt =
    Printf.ksprintf (fun problem -> findings := { where; problem } :: !findings) fmt
  in
  let u64 off = Int64.to_int (D.read_u64 dev off) in
  let size = D.size dev in
  let entries_checked = ref 0 and blocks_checked = ref 0 in
  let slots_checked = ref 0 in
  (* --- header ---------------------------------------------------------- *)
  if size < header_size then note "header" "device smaller than a pool header"
  else if not (String.equal (D.read_string dev 0 (String.length magic)) magic)
  then note "header" "bad magic: not a Corundum pool"
  else begin
    let version = u64 16 in
    if version <> 1 then note "header" "unsupported version %d" version;
    let nslots = u64 48
    and slot_size = u64 56
    and heap_len = u64 64
    and table_base = u64 72
    and heap_base = u64 80
    and root_off = u64 32 in
    let sane =
      nslots > 0 && nslots < 1024
      && slot_size > 0
      && header_size + (nslots * slot_size) <= table_base
      && table_base + (heap_len / 64) <= heap_base
      && heap_base + heap_len <= size
      && heap_len mod 64 = 0
    in
    if not sane then note "header" "layout fields are inconsistent"
    else begin
      (* --- journal slots ------------------------------------------------ *)
      for i = 0 to nslots - 1 do
        incr slots_checked;
        let base = header_size + (i * slot_size) in
        let where = Printf.sprintf "journal slot %d" i in
        let phase = u64 base
        and count = u64 (base + 8)
        and drops = u64 (base + 16) in
        if phase <> 0 && phase <> 1 then note where "bad phase %d" phase;
        if count < 0 || count * 16 > 64 * slot_size then
          note where "implausible entry count %d" count
        else begin
          (* the spill chain must point at live heap blocks *)
          let spills = Pjournal.Log_entry.spill_chain dev ~slot_base:base in
          List.iter
            (fun off ->
              if off < heap_base || off >= heap_base + heap_len then
                note where "spill region outside the heap"
              else if (off - heap_base) mod 64 <> 0 then
                note where "spill region misaligned")
            spills;
          (* walk the undo entries (spill-chain aware) *)
          (try
             Pjournal.Log_entry.walk dev ~slot_base:base ~slot_size ~count
               (fun e ->
                 incr entries_checked;
                 match e with
                 | Pjournal.Log_entry.Data { off; len; _ } ->
                     if len <= 0 || off < 0 || off + len > size then
                       failwith "data entry targets outside the pool"
                 | Pjournal.Log_entry.Alloc { off; order } ->
                     if off < heap_base || off >= heap_base + heap_len then
                       failwith "alloc entry outside the heap";
                     if order < 0 || order > 40 then failwith "alloc order bogus"
                 | Pjournal.Log_entry.Drop { off } ->
                     if off < heap_base || off >= heap_base + heap_len then
                       failwith "drop entry outside the heap")
           with
          | Failure m -> note where "%s" m
          | Invalid_argument m -> note where "torn entry: %s" m)
        end;
        if drops < 0 || drops * 16 > slot_size then
          note where "implausible drop count %d" drops
        else
          for d = 1 to drops do
            let at = base + slot_size - (d * 16) in
            match Pjournal.Log_entry.read dev ~at with
            | Pjournal.Log_entry.Drop { off }, _ ->
                if off < heap_base || off >= heap_base + heap_len then
                  note where "drop area entry outside the heap"
            | _ -> note where "non-drop entry in drop area"
            | exception Invalid_argument _ -> note where "torn drop entry"
          done
      done;
      (* --- allocation table & heap tiling -------------------------------- *)
      let nblocks = heap_len / 64 in
      let idx = ref 0 in
      (try
         while !idx < nblocks do
           let b = D.read_u8 dev (table_base + !idx) in
           if b = 0 then incr idx
           else begin
             incr blocks_checked;
             let order = b - 1 in
             let len = 1 lsl order in
             if order > 40 || !idx + len > nblocks then begin
               note "alloc table" "block %d (order %d) overflows the heap" !idx order;
               raise Exit
             end;
             if !idx land (len - 1) <> 0 then begin
               note "alloc table" "block %d misaligned for order %d" !idx order;
               raise Exit
             end;
             idx := !idx + len
           end
         done
       with Exit -> ());
      (* tiling via the buddy's own integrity check *)
      (if !findings = [] then
         let buddy = Palloc.Buddy.attach dev ~table_base ~heap_base ~heap_len in
         match Palloc.Heap_walk.check buddy with
         | Ok () -> ()
         | Error m -> note "heap" "%s" m);
      (* --- root ----------------------------------------------------------- *)
      if root_off <> 0 then
        if root_off < heap_base || root_off >= heap_base + heap_len then
          note "root" "root offset %d outside the heap" root_off
        else if (root_off - heap_base) mod 64 <> 0 then
          note "root" "root offset %d misaligned" root_off
        else begin
          let bidx = (root_off - heap_base) / 64 in
          if D.read_u8 dev (table_base + bidx) = 0 then
            note "root" "root points at a free block"
        end
    end
  end;
  {
    findings = List.rev !findings;
    slots_checked = !slots_checked;
    entries_checked = !entries_checked;
    blocks_checked = !blocks_checked;
  }

let check_file path = check_device (D.load path)

let pp ppf r =
  if ok r then
    Format.fprintf ppf
      "pool is consistent (%d journal slots, %d log entries, %d live blocks checked)@."
      r.slots_checked r.entries_checked r.blocks_checked
  else begin
    Format.fprintf ppf "pool has %d problem(s):@." (List.length r.findings);
    List.iter
      (fun f -> Format.fprintf ppf "  [%s] %s@." f.where f.problem)
      r.findings
  end
