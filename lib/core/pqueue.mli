(** [Pqueue] — persistent FIFO queue (growable ring buffer).

    Two blocks, like {!Pvec}: a header [length | capacity | head index |
    data pointer] and a power-of-two data block indexed modulo the
    capacity.  Enqueue and dequeue are O(1); growth doubles and
    linearizes the ring transactionally.

    Dequeued elements transfer ownership to the caller (see {!Pvec.pop}
    for the discipline). *)

type ('a, 'p) t

val make : ty:('a, 'p) Ptype.t -> ?capacity:int -> 'p Journal.t -> ('a, 'p) t
val length : ('a, 'p) t -> int
val capacity : ('a, 'p) t -> int
val is_empty : ('a, 'p) t -> bool

val push : ('a, 'p) t -> 'a -> 'p Journal.t -> unit
(** Enqueue at the back. *)

val pop : ('a, 'p) t -> 'p Journal.t -> 'a option
(** Dequeue from the front. *)

val peek : ('a, 'p) t -> 'a option
(** Front element without removing it (no journal needed). *)

val iter : ('a, 'p) t -> ('a -> unit) -> unit
(** Front to back. *)

val fold : ('a, 'p) t -> init:'b -> f:('b -> 'a -> 'b) -> 'b
val to_list : ('a, 'p) t -> 'a list
val clear : ('a, 'p) t -> 'p Journal.t -> unit
val drop : ('a, 'p) t -> 'p Journal.t -> unit
val off : ('a, 'p) t -> int
val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
