(** [Plog] — append-only record log.

    The classic PM structure the journal itself is built from, exposed as
    a user-level container: records are appended durably and never
    modified, iteration is oldest-first, and truncation discards the
    whole history.  Records are variable-length strings; each append is
    one failure-atomic step of the enclosing transaction.

    Layout: a {!Pbytes} buffer of length-prefixed records plus a record
    count. *)

type 'p t

val make : ?capacity:int -> 'p Journal.t -> 'p t
val records : 'p t -> int
val is_empty : 'p t -> bool
val size_bytes : 'p t -> int

val append : 'p t -> string -> 'p Journal.t -> unit
val iter : 'p t -> (string -> unit) -> unit
(** Oldest first. *)

val fold : 'p t -> init:'b -> f:('b -> string -> 'b) -> 'b
val to_list : 'p t -> string list
val nth : 'p t -> int -> string option
(** O(n); logs are for scanning, not random access. *)

val truncate : 'p t -> 'p Journal.t -> unit
(** Discard every record. *)

val drop : 'p t -> 'p Journal.t -> unit
val off : 'p t -> int
val ptype : unit -> ('p t, 'p) Ptype.t
