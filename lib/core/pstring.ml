module D = Pmem.Device

type 'p t = { off : int; pool : Pool_impl.t }

let off s = s.off
let dev pool = Pool_impl.device pool

let make str j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let len = String.length str in
  let off = Pool_impl.tx_alloc tx (8 + len) in
  D.write_u64 (dev pool) off (Int64.of_int len);
  if len > 0 then D.write_string (dev pool) (off + 8) str;
  D.persist (dev pool) off (8 + len);
  { off; pool }

let length s =
  Pool_impl.check_open s.pool;
  Int64.to_int (D.read_u64 (dev s.pool) s.off)

let get s =
  Pool_impl.check_open s.pool;
  let len = Int64.to_int (D.read_u64 (dev s.pool) s.off) in
  D.read_string (dev s.pool) (s.off + 8) len

let equal a b = a.off = b.off || String.equal (get a) (get b)

let sub s ~pos ~len j =
  let full = get s in
  if pos < 0 || len < 0 || pos + len > String.length full then
    invalid_arg
      (Printf.sprintf "Pstring.sub: range [%d, %d) outside [0, %d)" pos
         (pos + len) (String.length full));
  make (String.sub full pos len) j

let concat a b j = make (get a ^ get b) j

let drop s j =
  let tx = Journal.tx j in
  Pool_impl.tx_free tx s.off

let ptype () =
  Ptype.make ~name:"pstring" ~size:8
    ~read:(fun pool off ->
      { off = Int64.to_int (D.read_u64 (dev pool) off); pool })
    ~write:(fun pool off s ->
      D.write_u64 (dev pool) off (Int64.of_int s.off))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let target = Int64.to_int (D.read_u64 (dev pool) off) in
      if target <> 0 then Pool_impl.tx_free tx target)
    ~reach:(fun pool off ->
      let target = Int64.to_int (D.read_u64 (dev pool) off) in
      if target = 0 then []
      else [ { Ptype.block = target; follow = (fun _ -> []) } ])
