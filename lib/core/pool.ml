exception Root_type_mismatch of { expected : string; found_hash : int }

module type S = sig
  type brand
  type journal = brand Journal.t

  val create :
    ?config:Pool_impl.config ->
    ?latency:Pmem.Latency.t ->
    ?path:string ->
    unit ->
    unit

  val open_file :
    ?mode:Pool_impl.open_mode -> ?latency:Pmem.Latency.t -> string -> unit

  val load_or_create :
    ?config:Pool_impl.config -> ?latency:Pmem.Latency.t -> string -> unit

  val close : unit -> unit
  val save : unit -> unit
  val is_open : unit -> bool
  val is_read_only : unit -> bool
  val crash_and_reopen : unit -> unit
  val transaction : (journal -> 'a) -> 'a
  val register_domain : unit -> int
  val unregister_domain : unit -> unit
  val set_group_commit : bool -> unit

  val root :
    ty:('a, brand) Ptype.t -> init:(journal -> 'a) -> unit -> ('a, brand) Pbox.t

  val migrate_root :
    from_ty:('old, brand) Ptype.t ->
    to_ty:('new_, brand) Ptype.t ->
    f:('old -> journal -> 'new_) ->
    unit ->
    ('new_, brand) Pbox.t

  val impl : unit -> Pool_impl.t
  val stats : unit -> Pool_impl.pool_stats
  val recovery_stats : unit -> Pjournal.Recovery.stats
end

module Make () : S = struct
  type brand
  type journal = brand Journal.t

  let current : Pool_impl.t option ref = ref None

  let impl () =
    match !current with
    | Some p when Pool_impl.is_open p -> p
    | _ -> raise Pool_impl.Pool_closed

  let is_open () =
    match !current with Some p -> Pool_impl.is_open p | None -> false

  let is_read_only () =
    match !current with
    | Some p -> Pool_impl.is_open p && Pool_impl.is_read_only p
    | None -> false

  let require_closed () =
    if is_open () then
      invalid_arg "Pool: a pool is already open through this module"

  let create ?config ?latency ?path () =
    require_closed ();
    current := Some (Pool_impl.create ?config ?latency ?path ())

  let open_file ?mode ?latency path =
    require_closed ();
    current := Some (Pool_impl.open_file ?mode ?latency path)

  let load_or_create ?config ?latency path =
    if Sys.file_exists path then open_file ?latency path
    else create ?config ?latency ~path ()

  let close () = Pool_impl.close (impl ())
  let save () = Pool_impl.save (impl ())

  let crash_and_reopen () =
    (* Works on a crashed pool too: the handle is closed but the media is
       still there. *)
    match !current with
    | None -> raise Pool_impl.Pool_closed
    | Some p -> current := Some (Pool_impl.reopen p)

  let transaction f =
    Pool_impl.transaction (impl ()) (fun tx -> f (Journal.unsafe_of_tx tx))

  let register_domain () = Pool_impl.register_domain (impl ())
  let unregister_domain () = Pool_impl.unregister_domain (impl ())
  let set_group_commit enabled = Pool_impl.set_group_commit (impl ()) enabled

  let root ~ty ~init () =
    let p = impl () in
    let off = Pool_impl.root_off p in
    if off <> 0 then begin
      let stored = Pool_impl.root_ty_hash p in
      if stored <> Ptype.hash ty then
        raise (Root_type_mismatch { expected = Ptype.name ty; found_hash = stored });
      Pbox.unsafe_handle p off ty
    end
    else
      transaction (fun j ->
          let box = Pbox.make ~ty (init j) j in
          Pool_impl.tx_set_root (Journal.tx j) ~off:(Pbox.off box)
            ~ty_hash:(Ptype.hash ty);
          box)

  let migrate_root ~from_ty ~to_ty ~f () =
    let p = impl () in
    let off = Pool_impl.root_off p in
    if off = 0 then raise Pool_impl.Pool_closed
    else begin
      let stored = Pool_impl.root_ty_hash p in
      if stored = Ptype.hash to_ty then Pbox.unsafe_handle p off to_ty
      else if stored <> Ptype.hash from_ty then
        raise
          (Root_type_mismatch { expected = Ptype.name from_ty; found_hash = stored })
      else
        transaction (fun j ->
            (* move the old value out, build the new root, free the old
               block shallowly (ownership of the contents moved into [f]) *)
            let old_value = Ptype.read from_ty p off in
            let fresh = f old_value j in
            let box = Pbox.make ~ty:to_ty fresh j in
            Pool_impl.tx_set_root (Journal.tx j) ~off:(Pbox.off box)
              ~ty_hash:(Ptype.hash to_ty);
            Pool_impl.tx_free (Journal.tx j) off;
            box)
    end

  let stats () = Pool_impl.stats (impl ())
  let recovery_stats () = Pool_impl.recovery_stats (impl ())
end
