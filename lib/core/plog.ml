module D = Pmem.Device

(* Header block: [records u64 | bytes pointer (Pbytes header)].
   Record wire format inside the buffer: [len u32 | bytes]. *)
let hdr_size = 16

type 'p t = { hdr : int; pool : Pool_impl.t }

let off l = l.hdr
let dev pool = Pool_impl.device pool
let read_records l = Int64.to_int (D.read_u64 (dev l.pool) l.hdr)

let buffer l : 'p Pbytes.t =
  Ptype.read (Pbytes.ptype ()) l.pool (l.hdr + 8)

let records l =
  Pool_impl.check_open l.pool;
  read_records l

let is_empty l = records l = 0
let size_bytes l = Pbytes.length (buffer l)

let make ?(capacity = 256) j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  let buf = Pbytes.make ~capacity j in
  D.write_u64 (dev pool) hdr 0L;
  Ptype.write (Pbytes.ptype ()) pool (hdr + 8) buf;
  D.persist (dev pool) hdr hdr_size;
  { hdr; pool }

let append l record j =
  let tx = Journal.tx j in
  let len = String.length record in
  let prefix = Bytes.create 4 in
  Bytes.set_int32_le prefix 0 (Int32.of_int len);
  let buf = buffer l in
  Pbytes.append buf (Bytes.to_string prefix) j;
  if len > 0 then Pbytes.append buf record j;
  Pool_impl.tx_log tx ~off:l.hdr ~len:8;
  D.write_u64 (dev l.pool) l.hdr (Int64.of_int (read_records l + 1))

let fold l ~init ~f =
  Pool_impl.check_open l.pool;
  let buf = buffer l in
  let n = read_records l in
  let acc = ref init and pos = ref 0 in
  for _ = 1 to n do
    let len =
      Int32.to_int (Bytes.get_int32_le (Bytes.of_string (Pbytes.read buf ~pos:!pos ~len:4)) 0)
    in
    acc := f !acc (Pbytes.read buf ~pos:(!pos + 4) ~len);
    pos := !pos + 4 + len
  done;
  !acc

let iter l f = fold l ~init:() ~f:(fun () r -> f r)
let to_list l = List.rev (fold l ~init:[] ~f:(fun acc r -> r :: acc))

let nth l i =
  if i < 0 then None
  else
    let k = ref 0 and found = ref None in
    iter l (fun r ->
        if !k = i then found := Some r;
        incr k);
    !found

let truncate l j =
  let tx = Journal.tx j in
  Pbytes.truncate (buffer l) 0 j;
  Pool_impl.tx_log tx ~off:l.hdr ~len:8;
  D.write_u64 (dev l.pool) l.hdr 0L

let drop l j =
  let tx = Journal.tx j in
  Pbytes.drop (buffer l) j;
  Pool_impl.tx_free tx l.hdr

let ptype () =
  Ptype.make ~name:"plog" ~size:8
    ~read:(fun pool off ->
      { hdr = Int64.to_int (D.read_u64 (dev pool) off); pool })
    ~write:(fun pool off l -> D.write_u64 (dev pool) off (Int64.of_int l.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then drop { hdr; pool } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p -> Ptype.reach (Pbytes.ptype ()) p (hdr + 8));
          };
        ])
