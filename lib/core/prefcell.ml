type ('a, 'p) t = ('a, 'p) Cell_core.t

type ('a, 'p) refmut = {
  cell : ('a, 'p) t;
  tx : Pool_impl.tx;
  validity : bool ref;
  mutable released : bool;
}

let make = Cell_core.make

let borrow c =
  (match (Cell_core.pool c, Cell_core.placed_off c) with
  | Some pool, Some off ->
      if Pool_impl.is_borrowed pool off then
        raise
          (Pool_impl.Borrow_error
             (Printf.sprintf "cell at %d is mutably borrowed" off))
  | _ -> ());
  Cell_core.read c

let borrow_mut c j =
  let tx = Journal.tx j in
  (match Cell_core.placed_off c with
  | Some off -> Pool_impl.borrow_mut_flag tx off
  | None -> () (* seeds are thread-private initializers *));
  { cell = c; tx; validity = Pool_impl.tx_validity tx; released = false }

let live r =
  if r.released || not !(r.validity) then raise Pool_impl.Tx_escape

let deref r =
  live r;
  Cell_core.read r.cell

let deref_set r v =
  live r;
  Cell_core.write r.cell r.tx v

let deref_update r f = deref_set r (f (deref r))

let release r =
  if not r.released then begin
    r.released <- true;
    if !(r.validity) then
      match (Cell_core.pool r.cell, Cell_core.placed_off r.cell) with
      | Some pool, Some off -> Pool_impl.release_borrow_flag pool off
      | _ -> ()
  end

let with_mut c j f =
  let r = borrow_mut c j in
  Fun.protect ~finally:(fun () -> release r) (fun () -> deref_update r f)

let set c v j =
  let r = borrow_mut c j in
  Fun.protect ~finally:(fun () -> release r) (fun () -> deref_set r v)

let replace c v j =
  let r = borrow_mut c j in
  Fun.protect
    ~finally:(fun () -> release r)
    (fun () ->
      live r;
      Cell_core.replace r.cell r.tx v)

let off = Cell_core.placed_off

let ptype inner =
  Cell_core.ptype ~name:(Printf.sprintf "%s prefcell" (Ptype.name inner)) inner
