type ('a, 'p) t = ('a, 'p) Cell_core.t

type ('a, 'p) guard = {
  cell : ('a, 'p) t;
  tx : Pool_impl.tx;
  validity : bool ref;
}

let make = Cell_core.make

let lock c j =
  let tx = Journal.tx j in
  (match Cell_core.placed_off c with
  | Some off -> Pool_impl.tx_lock tx off
  | None -> () (* seeds are thread-private *));
  { cell = c; tx; validity = Pool_impl.tx_validity tx }

let live g = if not !(g.validity) then raise Pool_impl.Tx_escape

let deref g =
  live g;
  Cell_core.read g.cell

let deref_set g v =
  live g;
  Cell_core.write g.cell g.tx v

let deref_update g f = deref_set g (f (deref g))

let with_lock c j f =
  let g = lock c j in
  deref_update g f

let off = Cell_core.placed_off

let ptype inner =
  Cell_core.ptype ~name:(Printf.sprintf "%s pmutex" (Ptype.name inner)) inner
