(** [Parc] — persistent atomic reference counting.

    The persistent counterpart of Rust's [Arc<T>]: shared ownership that
    is safe to touch from multiple domains.  The control block is guarded
    by a pool lock held until the owning transaction ends, and every
    counter update appends its own undo entry (no deduplication), which
    keeps concurrently updated counts recoverable after a crash — and
    makes [Parc] operations markedly slower than {!Prc} ones, exactly the
    asymmetry Table 5 of the paper reports.

    Like the paper's [Parc] (which is [!Send]), a [Parc] handle must not
    itself be smuggled to another thread to sidestep transactions: pass a
    {!vweak} (obtained from {!demote}) to the other thread and {!promote}
    it there, inside a transaction. *)

type ('a, 'p) t
type ('a, 'p) weak
type ('a, 'p) vweak

val make : ty:('a, 'p) Ptype.t -> 'a -> 'p Journal.t -> ('a, 'p) t
val get : ('a, 'p) t -> 'a
val pclone : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) t
val drop : ('a, 'p) t -> 'p Journal.t -> unit

val try_unwrap : ('a, 'p) t -> 'p Journal.t -> 'a option
(** Take the payload out if this is the only strong reference (Rust's
    [Rc::try_unwrap]); [None] when shared. *)

val strong_count : ('a, 'p) t -> int
val weak_count : ('a, 'p) t -> int
val equal : ('a, 'p) t -> ('a, 'p) t -> bool
val off : ('a, 'p) t -> int

val downgrade : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) weak
val upgrade : ('a, 'p) weak -> 'p Journal.t -> ('a, 'p) t option
val weak_drop : ('a, 'p) weak -> 'p Journal.t -> unit

val demote : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) vweak
val promote : ('a, 'p) vweak -> 'p Journal.t -> ('a, 'p) t option

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
val weak_ptype : ('a, 'p) Ptype.t -> (('a, 'p) weak, 'p) Ptype.t
val weak_ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) weak, 'p) Ptype.t
