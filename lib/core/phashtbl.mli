(** [Phashtbl] — persistent hash table with integer keys and amortized
    O(1) operations.

    A directory of chain heads plus one block per entry; the directory
    doubles (with a full transactional rehash) when the load factor
    exceeds 2, so chains stay short.  The rehash happens inside the
    caller's transaction — the journal's spill chaining makes arbitrarily
    large rehash logs safe — and is therefore failure-atomic like every
    other update.

    Use {!Pmap} instead when ordered iteration or range queries matter. *)

type ('a, 'p) t

val make : vty:('a, 'p) Ptype.t -> ?nbuckets:int -> 'p Journal.t -> ('a, 'p) t
val length : ('a, 'p) t -> int
val buckets : ('a, 'p) t -> int
val is_empty : ('a, 'p) t -> bool

val add : ('a, 'p) t -> key:int -> 'a -> 'p Journal.t -> unit
(** Insert, or replace (releasing the old value). *)

val find : ('a, 'p) t -> int -> 'a option
val mem : ('a, 'p) t -> int -> bool

val remove : ('a, 'p) t -> int -> 'p Journal.t -> bool
(** Delete; returns whether the key was present. *)

val fold : ('a, 'p) t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Unspecified order. *)

val iter : ('a, 'p) t -> (int -> 'a -> unit) -> unit
val to_list : ('a, 'p) t -> (int * 'a) list
(** Sorted by key (for test determinism). *)

val clear : ('a, 'p) t -> 'p Journal.t -> unit
val drop : ('a, 'p) t -> 'p Journal.t -> unit
val off : ('a, 'p) t -> int

val check : ('a, 'p) t -> (unit, string) result
(** Every entry hashes to the chain that holds it; the stored count
    matches; no chain cycles. *)

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
