(* Detectably-recoverable Treiber stack (checkpointed recoverable-CAS).

   Every operation is a single CAS on the header's head word, made
   crash-recoverable by sealing a checkpoint record *before* the CAS is
   issued.  The checkpoint describes the operation precisely enough for
   recovery to decide, from the durable head alone, whether the CAS
   landed — the Memento-style "detectable" property: after a crash the
   caller learns not just a consistent stack but *which* operation
   completed or rolled back, exactly once.

   Persist schedule (one fence per operation — the fence floor):

     push:  reserve node (volatile) ; write [value|next] ; seal ckpt
            ; flush node line + ckpt line ; FENCE
            ; CAS head := node ; commit mark
            ; flush mark line + head line   (unfenced tail)

     pop:   seal ckpt (node = head, exp = node.next, val = node.value)
            ; flush ckpt line ; FENCE
            ; CAS head := exp ; clear mark (dirty-only)
            ; flush mark line + head line   (unfenced tail)

   The unfenced tail is the whole point: the CAS's durability rides on
   whatever fence comes next (the successor's seal, the enclosing
   transaction's commit, or recovery).  A crash can therefore land any
   subset of {head swing, table mark} — the checkpoint is what lets
   recovery finish or undo the pair atomically.

   Two checkpoint slots, selected by sequence parity, for the same
   reason {!Cow_root} double-buffers its intent records: operation N+1's
   seal overwrites a slot while operation N's tail words may still sit
   unfenced in the WPQ.  With one slot a crash could tear the record
   covering the very operation whose tail is in flight.  With two, the
   slot being overwritten belongs to operation N-1, whose tail was
   drained by operation N's own seal fence.  Each record carries a mixed
   checksum so a torn overwrite reads as "no record", never as garbage.

   Recovery resolves both valid slots in ascending sequence order.  The
   older record is normally fully drained and resolves as a no-op, but a
   crash can land the younger checkpoint from the WPQ while dropping the
   older operation's head swing — ascending order re-derives the older
   tail first.  Mark edits are guarded twice: a clear only fires when
   the block's content still matches the checkpoint (a reused block
   fails the match and is left alone) and the block is unreachable from
   the durable head chain.

   Concurrency: the CAS is linearizable by construction; this simulation
   serialises it under a global mutex.  Crash detectability assumes a
   single mutator per stack, as in Memento's per-thread checkpoints.

   Operations take a journal brand only to prove a transaction is open
   (pool lifetime); like {!Punsafe} they bypass the undo log entirely,
   so an enclosing abort does NOT roll them back. *)

module D = Pmem.Device
module B = Palloc.Buddy
module T = Palloc.Alloc_table
module Pr = Ptelemetry.Probe

(* Every operation runs inside a sanitizer-visible privileged window:
   the checkpointed-CAS protocol stores raw words by design, exactly
   like the recovery code paths psan brackets with [Exempt_push].  The
   bracket is per-operation, so everything outside it is still audited. *)
let privileged d f =
  let dev = D.id d in
  if Pr.on () then Pr.emit (Pr.Exempt_push { dev });
  Fun.protect
    ~finally:(fun () -> if Pr.on () then Pr.emit (Pr.Exempt_pop { dev }))
    f

type ('a, 'p) t = { hdr : int; pool : Pool_impl.t; ty : ('a, 'p) Ptype.t }

(* Header block: two lines.
   Line 0: [head u64 | pad u64 | slot0: seq,kind,node,exp,val,sum]
   Line 1: [slot1: seq,kind,node,exp,val,sum | pad 16B]            *)
let hdr_size = 128
let node_size = 16 (* [value u64 | next u64] *)
let slots = 2
let slot_off t s = t.hdr + 16 + (s * 48)
let slot_of_seq seq = seq land 1

let k_none = 0
let k_push = 1
let k_pop = 2

type ckpt = { seq : int; kind : int; node : int; exp : int; v64 : int64 }

(* Multiplicative mixing over the record words: any torn old/new word
   mix fails the check w.h.p. (a plain XOR fold would let two
   compensating words cancel). *)
let mix acc v = (acc lxor v) * 0x9E3779B97F4A7C1 land max_int

let sum_of c =
  List.fold_left mix 0x5DEECE66D
    [ c.seq; c.kind; c.node; c.exp; Int64.to_int c.v64 land max_int ]

let dev t = Pool_impl.device t.pool
let read_head t = Int64.to_int (D.read_u64 (dev t) t.hdr)

let write_ckpt t c =
  let o = slot_off t (slot_of_seq c.seq) in
  D.write_u64 (dev t) o (Int64.of_int c.seq);
  D.write_u64 (dev t) (o + 8) (Int64.of_int c.kind);
  D.write_u64 (dev t) (o + 16) (Int64.of_int c.node);
  D.write_u64 (dev t) (o + 24) (Int64.of_int c.exp);
  D.write_u64 (dev t) (o + 32) c.v64;
  D.write_u64 (dev t) (o + 40) (Int64.of_int (sum_of c))

let read_ckpt t s =
  let o = slot_off t s in
  let w i = Int64.to_int (D.read_u64 (dev t) (o + (i * 8))) in
  let c =
    { seq = w 0; kind = w 1; node = w 2; exp = w 3; v64 = D.read_u64 (dev t) (o + 32) }
  in
  if
    (c.kind = k_push || c.kind = k_pop)
    && c.seq > 0
    && w 5 = sum_of c
  then Some c
  else None

(* Next sequence number: successor of the newest valid record, so the
   seal lands in the slot NOT covering the previous operation. *)
let next_seq t =
  let newest =
    List.fold_left
      (fun acc s -> match read_ckpt t s with Some c -> max acc c.seq | None -> acc)
      0
      (List.init slots Fun.id)
  in
  newest + 1

let flush_slot t seq = D.flush (dev t) (slot_off t (slot_of_seq seq)) 48
let flush_head t = D.flush (dev t) t.hdr 8

(* The simulation's stand-in for an atomic CAS on a device word. *)
let cas_mutex = Mutex.create ()

let cas d off ~expect ~nv =
  Mutex.lock cas_mutex;
  (* crash injection raises from device accesses: never leak the lock *)
  Fun.protect
    ~finally:(fun () -> Mutex.unlock cas_mutex)
    (fun () ->
      let ok = D.read_u64 d off = Int64.of_int expect in
      if ok then D.write_u64 d off (Int64.of_int nv);
      ok)

let make ~ty j =
  if Ptype.size ty > 8 then
    invalid_arg "Pstack.make: element type must fit one word";
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  let d = Pool_impl.device pool in
  D.fill d hdr hdr_size '\000';
  D.persist d hdr hdr_size;
  { hdr; pool; ty }

let rec push_loop t x j =
  let d = dev t and b = Pool_impl.buddy t.pool in
  let r = B.reserve b node_size in
  let node = B.offset_of_reservation b r in
  Ptype.write t.ty t.pool node x;
  let v64 = D.read_u64 d node in
  let cur = read_head t in
  D.write_u64 d (node + 8) (Int64.of_int cur);
  let c = { seq = next_seq t; kind = k_push; node; exp = cur; v64 } in
  write_ckpt t c;
  D.flush d node node_size;
  flush_slot t c.seq;
  D.fence d;
  if cas d t.hdr ~expect:cur ~nv:node then begin
    B.commit b r;
    D.flush d (B.mark_line b r * D.line_size) D.line_size;
    flush_head t
  end
  else begin
    (* lost the race: return the block and retry with a fresh snapshot *)
    B.cancel b r;
    push_loop t x j
  end

let push t x j =
  let _tx = Journal.tx j in
  Pool_impl.check_open t.pool;
  privileged (dev t) (fun () -> push_loop t x j)

let rec pop_loop t j =
  let d = dev t and b = Pool_impl.buddy t.pool in
  let cur = read_head t in
  if cur = 0 then None
  else begin
    let v64 = D.read_u64 d cur in
    let nxt = Int64.to_int (D.read_u64 d (cur + 8)) in
    let x = Ptype.read t.ty t.pool cur in
    let c = { seq = next_seq t; kind = k_pop; node = cur; exp = nxt; v64 } in
    write_ckpt t c;
    flush_slot t c.seq;
    D.fence d;
    if cas d t.hdr ~expect:cur ~nv:nxt then begin
      B.dealloc ~durable:false b cur;
      D.flush d (B.line_of_offset b cur * D.line_size) D.line_size;
      flush_head t;
      Some x
    end
    else pop_loop t j
  end

let pop t j =
  let _tx = Journal.tx j in
  Pool_impl.check_open t.pool;
  privileged (dev t) (fun () -> pop_loop t j)

(* --- Recovery --------------------------------------------------------- *)

type outcome =
  | Push_completed of int
  | Push_rolled_back of int
  | Pop_completed of int * int64
  | Pop_rolled_back of int

let seq_of_outcome = function
  | Push_completed s | Push_rolled_back s | Pop_completed (s, _) | Pop_rolled_back s
    -> s

(* Durable head chain, cycle-guarded (a crash cannot create a cycle —
   next words are written once before their node is linked — but fsck
   after a hostile torn write should not hang the walk). *)
let chain t =
  let limit = D.size (dev t) / T.min_block in
  let rec go acc n off =
    if off = 0 || n > limit then acc
    else go (off :: acc) (n + 1) (Int64.to_int (D.read_u64 (dev t) (off + 8)))
  in
  go [] 0 (read_head t)

let content_matches t c =
  D.read_u64 (dev t) c.node = c.v64
  && D.read_u64 (dev t) (c.node + 8) = Int64.of_int c.exp

(* Clear the node's table mark iff it is provably dead: still holding
   the checkpointed image (not reused) and unreachable from the durable
   head.  Marking is unconditional — the node IS the head (or in the
   chain), so it is live by construction. *)
let resolve t reachable c =
  let b = Pool_impl.buddy t.pool in
  let tbl = B.table b in
  let idx = T.index_of_offset tbl c.node in
  let marked = T.order_at tbl ~idx <> None in
  let edited = ref false in
  let ensure_marked () =
    if not marked then begin
      T.mark_durable tbl ~idx ~order:(B.order_of_size node_size);
      edited := true
    end
  in
  let ensure_cleared () =
    if marked && content_matches t c && not (List.mem c.node reachable) then begin
      T.clear_durable tbl ~idx;
      edited := true
    end
  in
  let outcome =
    if c.kind = k_push then
      if read_head t = c.node then begin
        (* swing landed; the mark may not have *)
        ensure_marked ();
        Push_completed c.seq
      end
      else begin
        ensure_cleared ();
        Push_rolled_back c.seq
      end
    else if read_head t = c.node then begin
      (* swing lost: the node is still the live head; the dirty-only
         clear must not survive it *)
      ensure_marked ();
      Pop_rolled_back c.seq
    end
    else begin
      ensure_cleared ();
      Pop_completed (c.seq, c.v64)
    end
  in
  (outcome, !edited)

let invalidate_slot t s =
  let o = slot_off t s in
  D.write_u64 (dev t) (o + 8) (Int64.of_int k_none);
  D.write_u64 (dev t) (o + 40) 0L;
  D.persist (dev t) o 48

let recover t =
  Pool_impl.check_open t.pool;
  privileged (dev t) @@ fun () ->
  let recs =
    List.filter_map (fun s -> read_ckpt t s) (List.init slots Fun.id)
    |> List.sort (fun a b -> compare a.seq b.seq)
  in
  let reachable = chain t in
  let edited = ref false in
  let outcomes =
    List.map
      (fun c ->
        let o, e = resolve t reachable c in
        if e then edited := true;
        invalidate_slot t (slot_of_seq c.seq);
        o)
      recs
  in
  if !edited then B.rebuild (Pool_impl.buddy t.pool);
  D.fence (dev t);
  outcomes

(* --- Read-side -------------------------------------------------------- *)

let iter t f =
  Pool_impl.check_open t.pool;
  let rec go off =
    if off <> 0 then begin
      f (Ptype.read t.ty t.pool off);
      go (Int64.to_int (D.read_u64 (dev t) (off + 8)))
    end
  in
  go (read_head t)

let to_list t =
  let acc = ref [] in
  iter t (fun x -> acc := x :: !acc);
  List.rev !acc

let length t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

let is_empty t = read_head t = 0

let peek t =
  Pool_impl.check_open t.pool;
  let h = read_head t in
  if h = 0 then None else Some (Ptype.read t.ty t.pool h)

let drop t j =
  let tx = Journal.tx j in
  let rec go off =
    if off <> 0 then begin
      let nxt = Int64.to_int (D.read_u64 (dev t) (off + 8)) in
      Ptype.drop t.ty tx off;
      Pool_impl.tx_free tx off;
      go nxt
    end
  in
  go (read_head t);
  Pool_impl.tx_free tx t.hdr

(* --- Ptype ------------------------------------------------------------ *)

let make_ptype inner_of =
  Ptype.make ~name:"pstack" ~size:8
    ~read:(fun pool off ->
      {
        hdr = Int64.to_int (D.read_u64 (Pool_impl.device pool) off);
        pool;
        ty = inner_of ();
      })
    ~write:(fun pool off q ->
      D.write_u64 (Pool_impl.device pool) off (Int64.of_int q.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (Pool_impl.device pool) off) in
      if hdr <> 0 then
        drop { hdr; pool; ty = inner_of () } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (Pool_impl.device pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let t = { hdr; pool = p; ty = inner_of () } in
                let rec links off =
                  if off = 0 then []
                  else
                    {
                      Ptype.block = off;
                      follow =
                        (fun p2 ->
                          let t2 = { t with pool = p2 } in
                          Ptype.reach t2.ty p2 off
                          @ links
                              (Int64.to_int
                                 (D.read_u64 (Pool_impl.device p2) (off + 8))));
                    }
                    :: []
                in
                links (read_head t));
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make
    ~name:(Printf.sprintf "%s pstack" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
