(** Shared placement machinery for the interior-mutability wrappers.

    A wrapper value is either a {e seed} — a volatile initializer that has
    not been stored in a pool yet — or {e placed} — a handle onto the slot
    inside a pool allocation where the wrapped value lives.  Constructors
    ({!make}) build seeds; reading a wrapper field out of persistent
    memory yields placed handles.  A seed is a single-use initializer:
    once written into the pool it does not alias the persistent slot.

    This mirrors how Rust constructs a [PRefCell] by value and then moves
    it into place; OCaml cannot express the move, so the seed/placed
    distinction makes it explicit. *)

type ('a, 'p) t

val make : ty:('a, 'p) Ptype.t -> 'a -> ('a, 'p) t
(** A seed holding the initial value. *)

val ty : ('a, 'p) t -> ('a, 'p) Ptype.t

val read : ('a, 'p) t -> 'a
(** Copy the current value out (no journal; reads are always safe). *)

val write : ('a, 'p) t -> Pool_impl.tx -> 'a -> unit
(** Replace the value: undo-log the slot, release what the old value
    owned, store the new value.  On a seed, simply replaces the pending
    initializer. *)

val replace : ('a, 'p) t -> Pool_impl.tx -> 'a -> 'a
(** Like {!write} but with move semantics: the old value is returned and
    {e not} released — ownership of whatever it points to transfers to
    the caller (Rust's [mem::replace]).  Essential for re-linking
    pointer-based structures without cascading drops. *)

val placed_off : ('a, 'p) t -> int option
(** Slot offset when placed; [None] for seeds. *)

val pool : ('a, 'p) t -> Pool_impl.t option

val ptype : name:string -> ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
(** Placement descriptor shared by [Pcell]/[Prefcell]/[Pmutex]: the
    wrapper occupies exactly the wrapped value's footprint.  Recursive
    structures need no special variant here because recursion must pass
    through a pointer type ({!Pbox.ptype_rec} and friends), which fixes
    the inline footprint at 8 bytes. *)
