module D = Pmem.Device

(* Header block: [len u64 | cap u64 | data u64]. *)
let hdr_size = 24

type 'p t = { hdr : int; pool : Pool_impl.t }

let off b = b.hdr
let dev pool = Pool_impl.device pool
let read_len b = Int64.to_int (D.read_u64 (dev b.pool) b.hdr)
let read_cap b = Int64.to_int (D.read_u64 (dev b.pool) (b.hdr + 8))
let read_data b = Int64.to_int (D.read_u64 (dev b.pool) (b.hdr + 16))

let length b =
  Pool_impl.check_open b.pool;
  read_len b

let capacity b =
  Pool_impl.check_open b.pool;
  read_cap b

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let make ?(capacity = 64) j =
  if capacity <= 0 then invalid_arg "Pbytes.make: capacity must be positive";
  let capacity = pow2_at_least capacity 64 in
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  let data = Pool_impl.tx_alloc tx capacity in
  D.write_u64 (dev pool) hdr 0L;
  D.write_u64 (dev pool) (hdr + 8) (Int64.of_int capacity);
  D.write_u64 (dev pool) (hdr + 16) (Int64.of_int data);
  D.persist (dev pool) hdr hdr_size;
  { hdr; pool }

let bounds b ~pos ~len what =
  if pos < 0 || len < 0 || pos + len > read_len b then
    invalid_arg
      (Printf.sprintf "Pbytes.%s: range [%d, %d) outside [0, %d)" what pos
         (pos + len) (read_len b))

let get b i =
  Pool_impl.check_open b.pool;
  bounds b ~pos:i ~len:1 "get";
  Char.chr (D.read_u8 (dev b.pool) (read_data b + i))

let read b ~pos ~len =
  Pool_impl.check_open b.pool;
  bounds b ~pos ~len "read";
  D.read_string (dev b.pool) (read_data b + pos) len

let to_string b = read b ~pos:0 ~len:(length b)

let write b ~pos s j =
  let tx = Journal.tx j in
  let len = String.length s in
  bounds b ~pos ~len "write";
  if len > 0 then begin
    let at = read_data b + pos in
    Pool_impl.tx_log tx ~off:at ~len;
    D.write_string (dev b.pool) at s
  end

let set b i c j = write b ~pos:i (String.make 1 c) j

(* Ensure room for [extra] more bytes, doubling the data block if
   needed (fresh block: copy + eager persist, old block deferred-freed). *)
let reserve b tx extra =
  let len = read_len b and cap = read_cap b in
  if len + extra > cap then begin
    let ncap = pow2_at_least (len + extra) (cap * 2) in
    let data = read_data b in
    let ndata = Pool_impl.tx_alloc tx ncap in
    if len > 0 then begin
      D.copy_within (dev b.pool) ~src:data ~dst:ndata ~len;
      D.persist (dev b.pool) ndata len
    end;
    Pool_impl.tx_log tx ~off:(b.hdr + 8) ~len:16;
    D.write_u64 (dev b.pool) (b.hdr + 8) (Int64.of_int ncap);
    D.write_u64 (dev b.pool) (b.hdr + 16) (Int64.of_int ndata);
    Pool_impl.tx_free tx data
  end

let append b s j =
  let tx = Journal.tx j in
  let extra = String.length s in
  if extra > 0 then begin
    reserve b tx extra;
    let len = read_len b in
    let at = read_data b + len in
    (* the tail beyond [len] is semantically dead: no undo needed, only
       durability at commit *)
    D.write_string (dev b.pool) at s;
    Pool_impl.tx_add_target tx ~off:at ~len:extra;
    Pool_impl.tx_log tx ~off:b.hdr ~len:8;
    D.write_u64 (dev b.pool) b.hdr (Int64.of_int (len + extra))
  end

let of_string s j =
  let b = make ~capacity:(max 64 (String.length s)) j in
  append b s j;
  b

let truncate b n j =
  let tx = Journal.tx j in
  if n < 0 || n > read_len b then
    invalid_arg (Printf.sprintf "Pbytes.truncate: %d outside [0, %d]" n (read_len b));
  Pool_impl.tx_log tx ~off:b.hdr ~len:8;
  D.write_u64 (dev b.pool) b.hdr (Int64.of_int n)

let drop b j =
  let tx = Journal.tx j in
  Pool_impl.tx_free tx (read_data b);
  Pool_impl.tx_free tx b.hdr

let ptype () =
  Ptype.make ~name:"pbytes" ~size:8
    ~read:(fun pool off ->
      { hdr = Int64.to_int (D.read_u64 (dev pool) off); pool })
    ~write:(fun pool off b -> D.write_u64 (dev pool) off (Int64.of_int b.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then drop { hdr; pool } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let b = { hdr; pool = p } in
                [ { Ptype.block = read_data b; follow = (fun _ -> []) } ]);
          };
        ])
