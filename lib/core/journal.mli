(** The branded journal capability.

    A ['p Journal.t] is the proof that the caller is inside a transaction
    on the pool of brand ['p].  Every constructor and mutator of the
    persistent pointer types demands one, which is how the library makes
    unlogged modification of persistent state impossible (the paper's
    invariant {e Mutable-In-Tx-Only}).

    Mirroring the paper's invariant {e TX-Journal-Only}, the only safe way
    to obtain a journal is as the argument that [P.transaction] passes to
    its body.  {!unsafe_of_tx} is the analogue of Rust's [unsafe] journal
    constructor: calling it yourself voids the library's guarantees.

    Journals are epoch-checked: using one after its transaction has ended
    raises {!Pool_impl.Tx_escape} (the dynamic stand-in for Rust's
    [TxOutSafe]/lifetime enforcement, see DESIGN.md). *)

type 'p t

val unsafe_of_tx : Pool_impl.tx -> 'p t
(** Brand-launder a raw transaction context.  Library-internal. *)

val tx : 'p t -> Pool_impl.tx
(** The underlying context.  Raises {!Pool_impl.Tx_escape} if the
    transaction has ended. *)

val pool : 'p t -> Pool_impl.t
val valid : 'p t -> bool
