(** [Pstrmap] — persistent hash map with string keys.

    The string-keyed sibling of {!Phashtbl}: keys live in owned
    {!Pstring} blocks, chains compare the stored hash first and the full
    key bytes only on a hash hit, and the directory doubles with a
    transactional rehash at load factor 2. *)

type ('a, 'p) t

val make : vty:('a, 'p) Ptype.t -> ?nbuckets:int -> 'p Journal.t -> ('a, 'p) t
val length : ('a, 'p) t -> int
val buckets : ('a, 'p) t -> int
val is_empty : ('a, 'p) t -> bool

val add : ('a, 'p) t -> key:string -> 'a -> 'p Journal.t -> unit
(** Insert, or replace (releasing the old value; the stored key block is
    reused). *)

val find : ('a, 'p) t -> string -> 'a option
val mem : ('a, 'p) t -> string -> bool

val remove : ('a, 'p) t -> string -> 'p Journal.t -> bool
(** Delete; releases the key block and the value. *)

val fold : ('a, 'p) t -> init:'b -> f:('b -> string -> 'a -> 'b) -> 'b
val iter : ('a, 'p) t -> (string -> 'a -> unit) -> unit
val keys : ('a, 'p) t -> string list
val to_list : ('a, 'p) t -> (string * 'a) list
(** Sorted by key. *)

val clear : ('a, 'p) t -> 'p Journal.t -> unit
val drop : ('a, 'p) t -> 'p Journal.t -> unit
val off : ('a, 'p) t -> int

val check : ('a, 'p) t -> (unit, string) result

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
