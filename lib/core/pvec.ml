module D = Pmem.Device

(* Header block: [len u64 | cap u64 | data u64]. *)
let hdr_size = 24

type ('a, 'p) t = { hdr : int; pool : Pool_impl.t; ty : ('a, 'p) Ptype.t }

let off v = v.hdr
let dev pool = Pool_impl.device pool
let esize v = max 8 (Ptype.size v.ty)
let read_len v = Int64.to_int (D.read_u64 (dev v.pool) v.hdr)
let read_cap v = Int64.to_int (D.read_u64 (dev v.pool) (v.hdr + 8))
let read_data v = Int64.to_int (D.read_u64 (dev v.pool) (v.hdr + 16))

let length v =
  Pool_impl.check_open v.pool;
  read_len v

let capacity v =
  Pool_impl.check_open v.pool;
  read_cap v

let is_empty v = length v = 0

let make ~ty ?(capacity = 8) j =
  if capacity <= 0 then invalid_arg "Pvec.make: capacity must be positive";
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let es = max 8 (Ptype.size ty) in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  let data = Pool_impl.tx_alloc tx (capacity * es) in
  D.write_u64 (dev pool) hdr 0L;
  D.write_u64 (dev pool) (hdr + 8) (Int64.of_int capacity);
  D.write_u64 (dev pool) (hdr + 16) (Int64.of_int data);
  D.persist (dev pool) hdr hdr_size;
  { hdr; pool; ty }

let slot v i = read_data v + (i * esize v)

let check_bounds v i what =
  let len = read_len v in
  if i < 0 || i >= len then
    invalid_arg (Printf.sprintf "Pvec.%s: index %d out of bounds [0, %d)" what i len)

let get v i =
  Pool_impl.check_open v.pool;
  check_bounds v i "get";
  Ptype.read v.ty v.pool (slot v i)

let set v i x j =
  let tx = Journal.tx j in
  check_bounds v i "set";
  let s = slot v i in
  Pool_impl.tx_log tx ~off:s ~len:(esize v);
  Ptype.drop v.ty tx s;
  Ptype.write v.ty v.pool s x

(* Double the data block: fresh allocation, raw copy, eager persist (the
   new block is not undo-logged; rollback frees it). *)
let grow v tx =
  let es = esize v in
  let len = read_len v and cap = read_cap v and data = read_data v in
  let ncap = cap * 2 in
  let ndata = Pool_impl.tx_alloc tx (ncap * es) in
  if len > 0 then begin
    D.copy_within (dev v.pool) ~src:data ~dst:ndata ~len:(len * es);
    D.persist (dev v.pool) ndata (len * es)
  end;
  Pool_impl.tx_log tx ~off:(v.hdr + 8) ~len:16;
  D.write_u64 (dev v.pool) (v.hdr + 8) (Int64.of_int ncap);
  D.write_u64 (dev v.pool) (v.hdr + 16) (Int64.of_int ndata);
  Pool_impl.tx_free tx data

let push v x j =
  let tx = Journal.tx j in
  let len = read_len v in
  if len = read_cap v then grow v tx;
  let s = slot v len in
  Pool_impl.tx_log tx ~off:s ~len:(esize v);
  Ptype.write v.ty v.pool s x;
  Pool_impl.tx_log tx ~off:v.hdr ~len:8;
  D.write_u64 (dev v.pool) v.hdr (Int64.of_int (len + 1))

(* Shift-based editing; O(n) like Array-backed vectors everywhere. *)
let insert_at v i x j =
  let tx = Journal.tx j in
  let len = read_len v in
  if i < 0 || i > len then
    invalid_arg (Printf.sprintf "Pvec.insert_at: index %d outside [0, %d]" i len);
  if len = read_cap v then grow v tx;
  let es = esize v in
  (* log the shifted region as one range, then move it up *)
  if len > i then begin
    Pool_impl.tx_log tx ~off:(slot v i) ~len:((len - i + 1) * es);
    D.copy_within (dev v.pool) ~src:(slot v i) ~dst:(slot v (i + 1))
      ~len:((len - i) * es)
  end
  else Pool_impl.tx_log tx ~off:(slot v i) ~len:es;
  Ptype.write v.ty v.pool (slot v i) x;
  Pool_impl.tx_log tx ~off:v.hdr ~len:8;
  D.write_u64 (dev v.pool) v.hdr (Int64.of_int (len + 1))

let remove_at v i j =
  let tx = Journal.tx j in
  check_bounds v i "remove_at";
  let len = read_len v in
  let es = esize v in
  let x = Ptype.read v.ty v.pool (slot v i) in
  if len - 1 > i then begin
    Pool_impl.tx_log tx ~off:(slot v i) ~len:((len - i) * es);
    D.copy_within (dev v.pool) ~src:(slot v (i + 1)) ~dst:(slot v i)
      ~len:((len - 1 - i) * es)
  end;
  Pool_impl.tx_log tx ~off:v.hdr ~len:8;
  D.write_u64 (dev v.pool) v.hdr (Int64.of_int (len - 1));
  x

let pop v j =
  let tx = Journal.tx j in
  let len = read_len v in
  if len = 0 then None
  else begin
    let x = Ptype.read v.ty v.pool (slot v (len - 1)) in
    Pool_impl.tx_log tx ~off:v.hdr ~len:8;
    D.write_u64 (dev v.pool) v.hdr (Int64.of_int (len - 1));
    Some x
  end

let iter v f =
  Pool_impl.check_open v.pool;
  for i = 0 to read_len v - 1 do
    f (Ptype.read v.ty v.pool (slot v i))
  done

let fold v ~init ~f =
  let acc = ref init in
  iter v (fun x -> acc := f !acc x);
  !acc

let to_list v = List.rev (fold v ~init:[] ~f:(fun acc x -> x :: acc))

let clear v j =
  let tx = Journal.tx j in
  let len = read_len v in
  for i = 0 to len - 1 do
    Ptype.drop v.ty tx (slot v i)
  done;
  Pool_impl.tx_log tx ~off:v.hdr ~len:8;
  D.write_u64 (dev v.pool) v.hdr 0L

let drop v j =
  let tx = Journal.tx j in
  let len = read_len v in
  for i = 0 to len - 1 do
    Ptype.drop v.ty tx (slot v i)
  done;
  Pool_impl.tx_free tx (read_data v);
  Pool_impl.tx_free tx v.hdr

let make_ptype inner_of =
  Ptype.make ~name:"pvec" ~size:8
    ~read:(fun pool off ->
      {
        hdr = Int64.to_int (D.read_u64 (dev pool) off);
        pool;
        ty = inner_of ();
      })
    ~write:(fun pool off v ->
      D.write_u64 (dev pool) off (Int64.of_int v.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then
        drop { hdr; pool; ty = inner_of () } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let v = { hdr; pool = p; ty = inner_of () } in
                let data = read_data v in
                [
                  {
                    Ptype.block = data;
                    follow =
                      (fun p2 ->
                        let v2 = { hdr; pool = p2; ty = inner_of () } in
                        let len = read_len v2 in
                        List.concat
                          (List.init len (fun i ->
                               Ptype.reach v2.ty p2 (slot v2 i))));
                  };
                ]);
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make
    ~name:(Printf.sprintf "%s pvec" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
