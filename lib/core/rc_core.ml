exception Dangling of int

module D = Pmem.Device

type ('a, 'p) rc = {
  ctrl : int;
  pool : Pool_impl.t;
  ty : ('a, 'p) Ptype.t;
  atomic : bool;
}

type ('a, 'p) pweak = {
  w_ctrl : int;
  w_pool : Pool_impl.t;
  w_ty : ('a, 'p) Ptype.t;
  w_atomic : bool;
}

type ('a, 'p) vweak = {
  v_ctrl : int;
  v_uid : int;
  v_birth : int;
  v_ty : ('a, 'p) Ptype.t;
  v_atomic : bool;
}

let header = 16
let ctrl rc = rc.ctrl
let equal a b = a.ctrl = b.ctrl
let dev pool = Pool_impl.device pool
let read_strong pool c = Int64.to_int (D.read_u64 (dev pool) c)
let read_weak pool c = Int64.to_int (D.read_u64 (dev pool) (c + 8))
let write_strong pool c v = D.write_u64 (dev pool) c (Int64.of_int v)
let write_weak pool c v = D.write_u64 (dev pool) (c + 8) (Int64.of_int v)

let strong_count rc =
  Pool_impl.check_open rc.pool;
  read_strong rc.pool rc.ctrl

let weak_count rc =
  Pool_impl.check_open rc.pool;
  (* hide the implicit weak held by the strong references *)
  let w = read_weak rc.pool rc.ctrl in
  if read_strong rc.pool rc.ctrl > 0 then w - 1 else w

(* Guard and log a control block's counter words.  Atomic blocks take the
   pool lock (held to transaction end) and log every update; non-atomic
   blocks rely on single-threaded use and deduplicated logging. *)
let log_counts tx ~atomic c =
  if atomic then begin
    Pool_impl.tx_lock tx c;
    Pool_impl.tx_log_nodedup tx ~off:c ~len:header
  end
  else Pool_impl.tx_log tx ~off:c ~len:header

let make ~atomic ~ty v j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let size = header + max 8 (Ptype.size ty) in
  let c = Pool_impl.tx_alloc tx size in
  write_strong pool c 1;
  (* the strong references collectively hold one implicit weak, so a
     weak_drop reached from inside the payload's own teardown can never
     free the block out from under it (Rust's Rc uses the same trick) *)
  write_weak pool c 1;
  Ptype.write ty pool (c + header) v;
  D.persist (dev pool) c (header + Ptype.size ty);
  (* Counters are born crash-consistent: their journal entry makes the
     initialization independently recoverable (the paper's pricier
     [Prc]/[Parc] AtomicInit).  Logged without dedup so that the first
     in-transaction [pclone] still pays its own entry. *)
  Pool_impl.tx_log_nodedup tx ~off:c ~len:header;
  if atomic then begin
    (* Arc-style: the contended counter line is persisted on its own. *)
    Pool_impl.tx_lock tx c;
    D.persist (dev pool) c header
  end;
  { ctrl = c; pool; ty; atomic }

let get rc =
  Pool_impl.check_open rc.pool;
  if read_strong rc.pool rc.ctrl = 0 then raise (Dangling rc.ctrl);
  Ptype.read rc.ty rc.pool (rc.ctrl + header)

let pclone rc j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let s = read_strong pool rc.ctrl in
  if s = 0 then raise (Dangling rc.ctrl);
  log_counts tx ~atomic:rc.atomic rc.ctrl;
  write_strong pool rc.ctrl (s + 1);
  rc

(* Decrement a strong count at [c]; at zero, drop the payload and then
   release the implicit weak — freeing the block only when no other weak
   references remain.  The payload drop may itself drop weak references
   to [c]; the implicit weak keeps the block alive throughout. *)
let drop_strong_at tx ~atomic ~ty c =
  let pool = Pool_impl.tx_pool tx in
  let s = read_strong pool c in
  if s = 0 then raise (Dangling c);
  log_counts tx ~atomic c;
  write_strong pool c (s - 1);
  if s = 1 then begin
    Ptype.drop ty tx (c + header);
    (* release the implicit weak (re-read: the payload drop may have
       changed the count) *)
    let w = read_weak pool c in
    write_weak pool c (w - 1);
    if w = 1 then Pool_impl.tx_free tx c
  end

let drop rc j = drop_strong_at (Journal.tx j) ~atomic:rc.atomic ~ty:rc.ty rc.ctrl

(* Take the payload out when we are the only strong owner (Rust's
   Rc::try_unwrap): the value is read out by copy (ownership of what it
   references moves with it), the slot is NOT dropped, and the block is
   released through the ordinary weak accounting. *)
let try_unwrap rc j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let s = read_strong pool rc.ctrl in
  if s = 0 then raise (Dangling rc.ctrl);
  if s <> 1 then None
  else begin
    let v = Ptype.read rc.ty pool (rc.ctrl + header) in
    log_counts tx ~atomic:rc.atomic rc.ctrl;
    write_strong pool rc.ctrl 0;
    let w = read_weak pool rc.ctrl in
    write_weak pool rc.ctrl (w - 1);
    if w = 1 then Pool_impl.tx_free tx rc.ctrl;
    Some v
  end

let downgrade rc j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  if read_strong pool rc.ctrl = 0 then raise (Dangling rc.ctrl);
  log_counts tx ~atomic:rc.atomic rc.ctrl;
  write_weak pool rc.ctrl (read_weak pool rc.ctrl + 1);
  { w_ctrl = rc.ctrl; w_pool = rc.pool; w_ty = rc.ty; w_atomic = rc.atomic }

let weak_drop_at tx ~atomic c =
  let pool = Pool_impl.tx_pool tx in
  let w = read_weak pool c in
  if w = 0 then raise (Dangling c);
  log_counts tx ~atomic c;
  write_weak pool c (w - 1);
  if w = 1 && read_strong pool c = 0 then Pool_impl.tx_free tx c

let weak_drop w j = weak_drop_at (Journal.tx j) ~atomic:w.w_atomic w.w_ctrl

let upgrade w j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let s = read_strong pool w.w_ctrl in
  if s = 0 then None
  else begin
    log_counts tx ~atomic:w.w_atomic w.w_ctrl;
    write_strong pool w.w_ctrl (s + 1);
    Some { ctrl = w.w_ctrl; pool = w.w_pool; ty = w.w_ty; atomic = w.w_atomic }
  end

let demote rc j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  if read_strong pool rc.ctrl = 0 then raise (Dangling rc.ctrl);
  (* The paper's demote maintains a per-object reference list; the birth
     table plays that role here and its bookkeeping is charged to the
     simulated clock (Parc's is costlier: the list is shared). *)
  D.charge_ns (dev pool) (if rc.atomic then 75 else 40);
  {
    v_ctrl = rc.ctrl;
    v_uid = Pool_impl.uid pool;
    v_birth = Pool_impl.birth pool rc.ctrl;
    v_ty = rc.ty;
    v_atomic = rc.atomic;
  }

let promote vw j =
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  (* Valid only against the same open pool instance, and only if the block
     has not been freed and reused since the vweak was created. *)
  if Pool_impl.uid pool <> vw.v_uid then None
  else if Pool_impl.birth pool vw.v_ctrl <> vw.v_birth then None
  else
    let s = read_strong pool vw.v_ctrl in
    if s = 0 then None
    else begin
      log_counts tx ~atomic:vw.v_atomic vw.v_ctrl;
      write_strong pool vw.v_ctrl (s + 1);
      Some { ctrl = vw.v_ctrl; pool; ty = vw.v_ty; atomic = vw.v_atomic }
    end

let read_ptr pool off = Int64.to_int (D.read_u64 (dev pool) off)

let rc_ptype ~atomic ~name inner_of =
  Ptype.make ~name ~size:8
    ~read:(fun pool off ->
      { ctrl = read_ptr pool off; pool; ty = inner_of (); atomic })
    ~write:(fun pool off rc ->
      D.write_u64 (dev pool) off (Int64.of_int rc.ctrl))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let c = read_ptr pool off in
      if c <> 0 then drop_strong_at tx ~atomic ~ty:(inner_of ()) c)
    ~reach:(fun pool off ->
      let c = read_ptr pool off in
      if c = 0 then []
      else
        [
          {
            Ptype.block = c;
            follow =
              (fun p ->
                if read_strong p c > 0 then
                  Ptype.reach (inner_of ()) p (c + header)
                else []);
          };
        ])

let pweak_ptype ~atomic ~name inner_of =
  Ptype.make ~name ~size:8
    ~read:(fun pool off ->
      {
        w_ctrl = read_ptr pool off;
        w_pool = pool;
        w_ty = inner_of ();
        w_atomic = atomic;
      })
    ~write:(fun pool off w ->
      D.write_u64 (dev pool) off (Int64.of_int w.w_ctrl))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let c = read_ptr pool off in
      if c <> 0 then weak_drop_at tx ~atomic c)
    ~reach:(fun pool off ->
      let c = read_ptr pool off in
      if c = 0 then []
      else [ { Ptype.block = c; follow = (fun _ -> []) } ])
