module D = Pmem.Device

(* Header block: [len u64 | cap u64 | head u64 | data u64]. *)
let hdr_size = 32

type ('a, 'p) t = { hdr : int; pool : Pool_impl.t; ty : ('a, 'p) Ptype.t }

let off q = q.hdr
let dev pool = Pool_impl.device pool
let esize q = max 8 (Ptype.size q.ty)
let read_len q = Int64.to_int (D.read_u64 (dev q.pool) q.hdr)
let read_cap q = Int64.to_int (D.read_u64 (dev q.pool) (q.hdr + 8))
let read_head q = Int64.to_int (D.read_u64 (dev q.pool) (q.hdr + 16))
let read_data q = Int64.to_int (D.read_u64 (dev q.pool) (q.hdr + 24))

let length q =
  Pool_impl.check_open q.pool;
  read_len q

let capacity q =
  Pool_impl.check_open q.pool;
  read_cap q

let is_empty q = length q = 0

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (k * 2)

let make ~ty ?(capacity = 8) j =
  if capacity <= 0 then invalid_arg "Pqueue.make: capacity must be positive";
  let capacity = pow2_at_least capacity 1 in
  let tx = Journal.tx j in
  let pool = Pool_impl.tx_pool tx in
  let es = max 8 (Ptype.size ty) in
  let hdr = Pool_impl.tx_alloc tx hdr_size in
  let data = Pool_impl.tx_alloc tx (capacity * es) in
  D.write_u64 (dev pool) hdr 0L;
  D.write_u64 (dev pool) (hdr + 8) (Int64.of_int capacity);
  D.write_u64 (dev pool) (hdr + 16) 0L;
  D.write_u64 (dev pool) (hdr + 24) (Int64.of_int data);
  D.persist (dev pool) hdr hdr_size;
  { hdr; pool; ty }

let slot q i =
  (* i counts from the front; physical index wraps modulo capacity *)
  let cap = read_cap q in
  read_data q + (((read_head q + i) land (cap - 1)) * esize q)

(* Double the ring, linearizing front-to-back into the new block. *)
let grow q tx =
  let es = esize q in
  let len = read_len q and cap = read_cap q in
  let ncap = cap * 2 in
  let ndata = Pool_impl.tx_alloc tx (ncap * es) in
  for i = 0 to len - 1 do
    D.copy_within (dev q.pool) ~src:(slot q i) ~dst:(ndata + (i * es)) ~len:es
  done;
  if len > 0 then D.persist (dev q.pool) ndata (len * es);
  Pool_impl.tx_log tx ~off:(q.hdr + 8) ~len:24;
  D.write_u64 (dev q.pool) (q.hdr + 8) (Int64.of_int ncap);
  D.write_u64 (dev q.pool) (q.hdr + 16) 0L;
  let old = read_data q in
  D.write_u64 (dev q.pool) (q.hdr + 24) (Int64.of_int ndata);
  Pool_impl.tx_free tx old

let push q x j =
  let tx = Journal.tx j in
  let len = read_len q in
  if len = read_cap q then grow q tx;
  let len = read_len q in
  let s = slot q len in
  Pool_impl.tx_log tx ~off:s ~len:(esize q);
  Ptype.write q.ty q.pool s x;
  Pool_impl.tx_log tx ~off:q.hdr ~len:8;
  D.write_u64 (dev q.pool) q.hdr (Int64.of_int (len + 1))

let pop q j =
  let tx = Journal.tx j in
  let len = read_len q in
  if len = 0 then None
  else begin
    let x = Ptype.read q.ty q.pool (slot q 0) in
    let cap = read_cap q and head = read_head q in
    Pool_impl.tx_log tx ~off:q.hdr ~len:24;
    D.write_u64 (dev q.pool) q.hdr (Int64.of_int (len - 1));
    D.write_u64 (dev q.pool) (q.hdr + 16)
      (Int64.of_int ((head + 1) land (cap - 1)));
    Some x
  end

let peek q =
  Pool_impl.check_open q.pool;
  if read_len q = 0 then None else Some (Ptype.read q.ty q.pool (slot q 0))

let iter q f =
  Pool_impl.check_open q.pool;
  for i = 0 to read_len q - 1 do
    f (Ptype.read q.ty q.pool (slot q i))
  done

let fold q ~init ~f =
  let acc = ref init in
  iter q (fun x -> acc := f !acc x);
  !acc

let to_list q = List.rev (fold q ~init:[] ~f:(fun acc x -> x :: acc))

let clear q j =
  let tx = Journal.tx j in
  let len = read_len q in
  for i = 0 to len - 1 do
    Ptype.drop q.ty tx (slot q i)
  done;
  Pool_impl.tx_log tx ~off:q.hdr ~len:24;
  D.write_u64 (dev q.pool) q.hdr 0L;
  D.write_u64 (dev q.pool) (q.hdr + 16) 0L

let drop q j =
  let tx = Journal.tx j in
  let len = read_len q in
  for i = 0 to len - 1 do
    Ptype.drop q.ty tx (slot q i)
  done;
  Pool_impl.tx_free tx (read_data q);
  Pool_impl.tx_free tx q.hdr

let make_ptype inner_of =
  Ptype.make ~name:"pqueue" ~size:8
    ~read:(fun pool off ->
      {
        hdr = Int64.to_int (D.read_u64 (dev pool) off);
        pool;
        ty = inner_of ();
      })
    ~write:(fun pool off q -> D.write_u64 (dev pool) off (Int64.of_int q.hdr))
    ~drop:(fun tx off ->
      let pool = Pool_impl.tx_pool tx in
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr <> 0 then
        drop { hdr; pool; ty = inner_of () } (Journal.unsafe_of_tx tx))
    ~reach:(fun pool off ->
      let hdr = Int64.to_int (D.read_u64 (dev pool) off) in
      if hdr = 0 then []
      else
        [
          {
            Ptype.block = hdr;
            follow =
              (fun p ->
                let q = { hdr; pool = p; ty = inner_of () } in
                [
                  {
                    Ptype.block = read_data q;
                    follow =
                      (fun p2 ->
                        let q2 = { hdr; pool = p2; ty = inner_of () } in
                        List.concat
                          (List.init (read_len q2) (fun i ->
                               Ptype.reach q2.ty p2 (slot q2 i))));
                  };
                ]);
          };
        ])

let ptype inner =
  let t = make_ptype (fun () -> inner) in
  Ptype.make
    ~name:(Printf.sprintf "%s pqueue" (Ptype.name inner))
    ~size:(Ptype.size t) ~read:(Ptype.read t) ~write:(Ptype.write t)
    ~drop:(Ptype.drop t) ~reach:(Ptype.reach t)

let ptype_rec inner = make_ptype (fun () -> Lazy.force inner)
