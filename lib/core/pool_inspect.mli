(** Read-only pool introspection — the [pmempool info]-style tooling.

    Everything here reads the media without attaching, recovering, or
    bumping the generation, so inspecting a pool image (e.g. one captured
    after a crash, before recovery has run) does not disturb it. *)

type slot_state = Idle | Active of int | Committing of int
(** Journal slot as found on media; the payload counts entries. *)

type info = {
  magic_ok : bool;
  version : int;
  generation : int;
  root_off : int;
  root_ty_hash : int;
  nslots : int;
  slot_size : int;
  journal_base : int;
  table_base : int;
  heap_base : int;
  heap_len : int;
  device_size : int;
  slots : slot_state list;
  slot_epochs : int list;
  (** Per-slot persisted epoch counter (logs retired through the slot).
      On a shared pool each registered domain owns one slot, so the
      epochs show how commits were distributed across domains. *)
  live_blocks : int;
  live_bytes : int;
  largest_block : int;
  lifetime_tx : int;  (** committed transactions folded at last save *)
  lifetime_aborts : int;
  cow_cells : Cow_root.cell_info list;
      (** CoW root cells ({!Cow_root.inspect}): generation, active
          pointer and surviving intent records per cell — a pending
          intent on an image is a half-committed swap recovery will
          resolve at the next open *)
}

val inspect_device : Pmem.Device.t -> info
(** Read the header, journal slot states and allocation table. *)

val inspect_file : string -> info
(** Load a pool image read-only and inspect it. *)

val pp : Format.formatter -> info -> unit
(** Human-readable rendering (used by [bin/pool_info.exe]). *)
