module type RC = sig
  type ('a, 'p) t
  type ('a, 'p) vweak

  val demote : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) vweak
  val promote : ('a, 'p) vweak -> 'p Journal.t -> ('a, 'p) t option
  val drop : ('a, 'p) t -> 'p Journal.t -> unit
end

module type S = sig
  type ('a, 'p) rc
  type ('k, 'a, 'p) t

  val create : ?size:int -> unit -> ('k, 'a, 'p) t
  val add : ('k, 'a, 'p) t -> 'k -> ('a, 'p) rc -> 'p Journal.t -> unit
  val find : ('k, 'a, 'p) t -> 'k -> 'p Journal.t -> ('a, 'p) rc option

  val find_or :
    ('k, 'a, 'p) t ->
    'k ->
    'p Journal.t ->
    load:(unit -> ('a, 'p) rc option) ->
    ('a, 'p) rc option

  val remove : ('k, 'a, 'p) t -> 'k -> unit
  val length : ('k, 'a, 'p) t -> int
  val evict_dead : ('k, 'a, 'p) t -> 'p Journal.t -> int
end

module Make (R : RC) = struct
  type ('k, 'a, 'p) t = ('k, ('a, 'p) R.vweak) Hashtbl.t

  let create ?(size = 64) () = Hashtbl.create size
  let add t k rc j = Hashtbl.replace t k (R.demote rc j)

  let find t k j =
    match Hashtbl.find_opt t k with
    | None -> None
    | Some vw -> (
        match R.promote vw j with
        | Some rc -> Some rc
        | None ->
            (* the object died since it was indexed; self-clean *)
            Hashtbl.remove t k;
            None)

  let find_or t k j ~load =
    match find t k j with
    | Some rc -> Some rc
    | None -> (
        match load () with
        | Some rc ->
            add t k rc j;
            Some rc
        | None -> None)

  let remove = Hashtbl.remove
  let length = Hashtbl.length

  let evict_dead t j =
    let dead =
      Hashtbl.fold
        (fun k vw acc ->
          match R.promote vw j with
          | Some rc ->
              (* promote bumped the count; release it again *)
              R.drop rc j;
              acc
          | None -> k :: acc)
        t []
    in
    List.iter (Hashtbl.remove t) dead;
    List.length dead
end

include Make (Prc)
module Arc = Make (Parc)
