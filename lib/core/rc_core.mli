(** Shared implementation of persistent reference counting.

    Control-block layout: [strong u64 | weak u64 | payload].  The payload
    is dropped when the strong count reaches zero; the block itself is
    freed only when both counts are zero, so weak pointers can never
    observe reused memory.

    Two flavours share this code (the paper's [Prc] and [Parc]):

    - non-atomic ([atomic = false]): counter updates are undo-logged with
      per-transaction deduplication — the first bump in a transaction pays
      for a log entry, later ones are nearly free (Table 5's fast
      [Prc::pclone]);
    - atomic ([atomic = true]): the control block is guarded by a pool
      lock held until the transaction ends, and every update appends its
      own undo entry (no dedup), keeping concurrent counters recoverable —
      and correspondingly slower (Table 5's [Parc] rows).

    Volatile weak pointers ([vweak]) are the only way to refer to
    persistent data from volatile memory: they hold no counts and validate
    at promotion time that the pool instance is still open and the block
    was not freed and reused (per-offset birth counters). *)

exception Dangling of int
(** A strong operation touched a control block whose payload is gone —
    the dynamic stand-in for what Rust rules out statically. *)

type ('a, 'p) rc
type ('a, 'p) pweak
type ('a, 'p) vweak

val make : atomic:bool -> ty:('a, 'p) Ptype.t -> 'a -> 'p Journal.t -> ('a, 'p) rc
val get : ('a, 'p) rc -> 'a
val ctrl : ('a, 'p) rc -> int
val equal : ('a, 'p) rc -> ('a, 'p) rc -> bool
val strong_count : ('a, 'p) rc -> int
val weak_count : ('a, 'p) rc -> int
val pclone : ('a, 'p) rc -> 'p Journal.t -> ('a, 'p) rc
val drop : ('a, 'p) rc -> 'p Journal.t -> unit

val try_unwrap : ('a, 'p) rc -> 'p Journal.t -> 'a option
(** Take the payload out if this is the only strong reference (ownership
    of what the value references moves to the caller; the block is
    released).  [None] when other strong owners exist. *)

val downgrade : ('a, 'p) rc -> 'p Journal.t -> ('a, 'p) pweak
val demote : ('a, 'p) rc -> 'p Journal.t -> ('a, 'p) vweak
val upgrade : ('a, 'p) pweak -> 'p Journal.t -> ('a, 'p) rc option
val weak_drop : ('a, 'p) pweak -> 'p Journal.t -> unit
val promote : ('a, 'p) vweak -> 'p Journal.t -> ('a, 'p) rc option

val rc_ptype :
  atomic:bool -> name:string -> (unit -> ('a, 'p) Ptype.t) ->
  (('a, 'p) rc, 'p) Ptype.t
(** Descriptor for storing a strong reference in a pool slot.  Writing
    moves ownership of one strong count into the slot. *)

val pweak_ptype :
  atomic:bool -> name:string -> (unit -> ('a, 'p) Ptype.t) ->
  (('a, 'p) pweak, 'p) Ptype.t
