(** CoW root cells: the persistent commit word of the mod engine.

    A cell is five 64-byte lines in the pool header page's reserved
    space: the packed (block-index | generation) root word [w0] plus
    the immutable root-pair geometry on line 0, and two CRC-protected
    intent record slots (commit-word kind, publish words,
    allocated/retired blocks), used alternately by generation parity
    (slot = igen land 1).  Two slots because a commit's unfenced tail
    (publish words, the w0 swap, retire clears) stays replayable only
    while its intent record survives — a successor sealing over a
    single slot could destroy the one record able to roll that
    in-flight tail forward.  The intent is sealed under its own fence
    before any mark or shadow line of a CoW transaction is flushed;
    the single 8-byte [w0] store (or the first publish word) is the
    commit point.  {!recover} reads both slots and rolls each record
    forward or back by comparing its generation against [w0]'s —
    every action is an idempotent durable store, so recovery survives
    its own crashes.  See DESIGN.md §14 for the ordering argument. *)

val cells : int
(** Number of root cells in the region (4). *)

val slots : int
(** Intent record slots per cell (2, alternated by igen parity). *)

val slot_bytes : int
val cell_bytes : int

val base : int
(** Byte offset of the cell region inside the header page. *)

val region_len : int

val gen_mask : int
(** Generation wrap mask (generations live in the low 24 bits of w0). *)

val pack : ptr:int -> gen:int -> int64
val unpack : int64 -> int * int

val cell_off : int -> int
(** Device offset of cell [c]'s w0 line. *)

val intent_off : int -> int -> int
(** [intent_off c s]: device offset of cell [c]'s slot [s] record. *)

val slot_of_igen : int -> int
(** The slot an intent of generation [igen] seals into. *)

val read : int -> Pmem.Device.t -> int * int
(** [(active pointer, generation)] of cell [c]. *)

val pair : int -> Pmem.Device.t -> (int * int) option
(** The promoted root pair's [(base, half_len)], if any. *)

val store_swap : int -> Pmem.Device.t -> ptr:int -> gen:int -> unit
(** Dirty-only store of the packed root word (the Root_swap store). *)

val flush_swap : int -> Pmem.Device.t -> unit

val store_pair : int -> Pmem.Device.t -> pair_base:int -> half:int -> unit
(** Record the immutable pair geometry (dirty-only, promoted once). *)

type kind =
  | Gen_only
  | Swap of int
  | Publish of int * (int * int64 * int64) list
      (** The new active pointer the w0 store carries, plus the
          (address, old, new) publish words — redone or undone as a set
          from the intent, so the words need not land atomically
          together. *)

type intent = {
  igen : int;
  kind : kind;
  allocs : (int * int) list;
  frees : (int * int) list;
}

val max_blocks : int
(** Inline capacity of the intent's block list (allocs + frees). *)

val max_publish : int

val inline_ok : intent -> bool
(** Whether the intent fits the inline record; otherwise the caller
    must spill it ({!write_spill} + {!write_intent_spilled}). *)

val spill_bytes : intent -> int
(** Serialized size of the intent's lists in a spill block. *)

val write_spill : int -> Pmem.Device.t -> off:int -> intent -> int
(** Serialize the oversized intent's lists into the transient spill
    block at [off] (dirty-only) and return the content CRC.  The caller
    flushes the range before the intent seal fence. *)

val write_intent_spilled :
  int ->
  Pmem.Device.t ->
  spill_off:int ->
  spill_order:int ->
  content_crc:int ->
  intent ->
  unit
(** Write the spill-kind intent record referencing the block written by
    {!write_spill}.  A torn spill is safe to ignore: the seal fence
    never completed, so no mark or commit word of the transaction can
    have landed. *)

val write_intent : int -> Pmem.Device.t -> intent -> unit
(** Dirty-only; seal with {!flush_intent} + a fence (Seal_intent).
    Requires {!inline_ok}. *)

val flush_intent : int -> int -> Pmem.Device.t -> unit
(** [flush_intent c s dev]: flush slot [s]'s record (the seal flush). *)

val read_intent : int -> int -> Pmem.Device.t -> intent option
val invalidate_intent : int -> int -> Pmem.Device.t -> unit

type stats = {
  mutable rolled_forward : int;
  mutable rolled_back : int;
  mutable table_edited : bool;
      (** allocation-table bytes were edited: the caller must rebuild
          the buddy's volatile free lists *)
}

val recover : Pmem.Device.t -> Palloc.Alloc_table.t -> stats
(** Resolve every cell's intent records — consumed ones rolled forward
    first, then the pending one forward or back — called at pool
    attach, inside the recovery exempt window it pushes itself. *)

type cell_info = {
  ci_cell : int;
  ci_ptr : int;
  ci_gen : int;
  ci_pair : (int * int) option;
  ci_intents : (int * intent) list;
      (** valid records, (slot, record) — at most one can be pending *)
  ci_pending : bool;
}

val inspect : Pmem.Device.t -> cell_info list
(** Snapshot of every cell for [pool_info info] / fsck — a pending
    intent is a half-committed swap visible during triage. *)
