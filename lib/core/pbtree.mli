(** [Pbtree] — persistent B+tree with 8-way fanout (the paper's
    "optimized, balanced B+Tree", Table 4) in the typed API.

    Values live only in leaves, which are chained for ordered scans;
    internal nodes hold separator keys.  Insertion splits full nodes on
    the way down; deletion rebalances proactively (borrow from a sibling,
    else merge).  Compared to {!Pmap} (an AVL tree), nodes are wide and
    shallow — fewer pointer hops per lookup, more bytes logged per
    structural change — the classic PM trade-off the paper benchmarks.

    Values are any persistable type: replacing or removing an entry
    releases what the old value owned; moving entries between nodes
    during splits/merges transfers ownership without touching counts. *)

type ('a, 'p) t

val fanout : int
(** 8: at most 7 keys per node. *)

val make : vty:('a, 'p) Ptype.t -> 'p Journal.t -> ('a, 'p) t
val length : ('a, 'p) t -> int
val is_empty : ('a, 'p) t -> bool

val add : ('a, 'p) t -> key:int -> 'a -> 'p Journal.t -> unit
val find : ('a, 'p) t -> int -> 'a option
val mem : ('a, 'p) t -> int -> bool
val remove : ('a, 'p) t -> int -> 'p Journal.t -> bool

val min_binding : ('a, 'p) t -> (int * 'a) option
val max_binding : ('a, 'p) t -> (int * 'a) option

val fold : ('a, 'p) t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Ascending, via the leaf chain. *)

val iter : ('a, 'p) t -> (int -> 'a -> unit) -> unit
val to_list : ('a, 'p) t -> (int * 'a) list

val fold_range :
  ('a, 'p) t -> lo:int -> hi:int -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b
(** Descend to [lo]'s leaf, then scan the chain to [hi] (inclusive). *)

val clear : ('a, 'p) t -> 'p Journal.t -> unit
val drop : ('a, 'p) t -> 'p Journal.t -> unit
val off : ('a, 'p) t -> int

val check : ('a, 'p) t -> (unit, string) result
(** Key order and bounds, node occupancy, uniform depth, leaf-chain
    completeness, and the stored size. *)

val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
val ptype_rec : ('a, 'p) Ptype.t Lazy.t -> (('a, 'p) t, 'p) Ptype.t
