(** Log-free programming — the unsafe escape hatch the paper lists as a
    desirable extension (§3.9, "Log-Free Programming").

    High-performance PM data structures often avoid logging entirely and
    rely on carefully-ordered 8-byte atomic updates for crash consistency.
    These operations bypass the undo journal: an enclosing transaction's
    abort or a crash rollback will {e not} restore what they wrote.  Like
    Rust's [unsafe] blocks, using them transfers the burden of proof to
    the caller: every intermediate state the ordering exposes must be a
    valid state of the data structure.

    They still demand a journal — the brand and the in-transaction
    obligation remain — only the logging is waived. *)

val atomic_set : ('a, 'p) Pcell.t -> 'a -> 'p Journal.t -> unit
(** Write a value whose footprint is at most 8 bytes and persist it
    immediately (store + flush + fence): crash-atomic by hardware
    word-atomicity, but invisible to rollback.  Raises [Invalid_argument]
    on wider types or on an unplaced (seed) cell. *)

val unlogged_set : ('a, 'p) Pcell.t -> 'a -> 'p Journal.t -> unit
(** Write without logging {e and without persisting} — the raw store of a
    carefully-ordered algorithm.  Pair with {!flush} and {!fence}. *)

val flush : ('a, 'p) Pcell.t -> 'p Journal.t -> unit
(** Write back the cell's lines ([clflushopt]); unordered until {!fence}. *)

val fence : 'p Journal.t -> unit
(** Order previously flushed lines ([sfence]). *)

val persist : ('a, 'p) Pcell.t -> 'p Journal.t -> unit
(** {!flush} + {!fence}. *)
