(** [Pcell] — interior mutability by copy ([PCell] in the paper).

    A cell embedded in a persistent structure whose value is read and
    replaced wholesale, like Rust's [Cell<T>].  [get] needs no journal;
    [set] requires one, so mutation is only possible inside a transaction
    and is always undo-logged. *)

type ('a, 'p) t

val make : ty:('a, 'p) Ptype.t -> 'a -> ('a, 'p) t
(** A fresh cell (a single-use initializer until stored in a pool). *)

val get : ('a, 'p) t -> 'a
val set : ('a, 'p) t -> 'a -> 'p Journal.t -> unit
val replace : ('a, 'p) t -> 'a -> 'p Journal.t -> 'a
(** Move semantics: store the new value and return the old one {e without}
    releasing it — ownership of what the old value referenced passes to
    the caller.  Contrast {!set}, which drops the old value. *)

val update : ('a, 'p) t -> 'p Journal.t -> ('a -> 'a) -> unit

val unsafe_expose : ('a, 'p) t -> ('a, 'p) Cell_core.t
(** The underlying placement, for the log-free operations in [Punsafe].
    Unsafe in the same sense as that module. *)

val off : ('a, 'p) t -> int option
val ptype : ('a, 'p) Ptype.t -> (('a, 'p) t, 'p) Ptype.t
