(** [Vindex] — a volatile index over persistent objects.

    The paper motivates [VWeak] with exactly this structure: "imagine a
    volatile index that stores pointers to persistent objects" (§3.9).  A
    [Vindex] is an ordinary in-memory hash table whose values are volatile
    weak pointers into a pool.  It accelerates lookups without affecting
    reference counts, and because every dereference goes through
    [promote], a lookup can never observe a freed, reused, or
    closed-pool object — it simply misses.

    The index is volatile: it dies with the process and is rebuilt on
    demand (see {!find_or}), which is the correct lifecycle for a cache
    over persistent truth.

    The top-level operations index {!Prc} objects; {!Arc} is the same
    structure over {!Parc} (both are instances of {!Make}). *)

(** What the index needs from a reference-counted pointer family. *)
module type RC = sig
  type ('a, 'p) t
  type ('a, 'p) vweak

  val demote : ('a, 'p) t -> 'p Journal.t -> ('a, 'p) vweak
  val promote : ('a, 'p) vweak -> 'p Journal.t -> ('a, 'p) t option
  val drop : ('a, 'p) t -> 'p Journal.t -> unit
end

module type S = sig
  type ('a, 'p) rc
  type ('k, 'a, 'p) t

  val create : ?size:int -> unit -> ('k, 'a, 'p) t

  val add : ('k, 'a, 'p) t -> 'k -> ('a, 'p) rc -> 'p Journal.t -> unit
  (** Index an object under a key ([demote]s it; no count change). *)

  val find : ('k, 'a, 'p) t -> 'k -> 'p Journal.t -> ('a, 'p) rc option
  (** Promote the cached pointer.  [None] when the key was never indexed
      {e or} the object is gone (freed, block reused, pool reopened) —
      dead entries are evicted on the way.  A successful promotion
      transfers a strong count to the caller, who must eventually drop
      it. *)

  val find_or :
    ('k, 'a, 'p) t ->
    'k ->
    'p Journal.t ->
    load:(unit -> ('a, 'p) rc option) ->
    ('a, 'p) rc option
  (** {!find}, falling back to [load] (e.g. a walk of the persistent
      structure) and re-indexing its result. *)

  val remove : ('k, 'a, 'p) t -> 'k -> unit

  val length : ('k, 'a, 'p) t -> int
  (** Entries held, including ones that may have silently died. *)

  val evict_dead : ('k, 'a, 'p) t -> 'p Journal.t -> int
  (** Drop every entry that no longer promotes; returns how many went. *)
end

module Make (R : RC) : S with type ('a, 'p) rc := ('a, 'p) R.t

(** {1 The standard instances} *)

include S with type ('a, 'p) rc := ('a, 'p) Prc.t

module Arc : S with type ('a, 'p) rc := ('a, 'p) Parc.t
