(** Whole-heap introspection: live-block enumeration and integrity checks.

    Used by the leak checker ({!Crashtest.Leak_check}) to compare the
    allocator's notion of live blocks against the set of blocks reachable
    from a pool's root object, and by tests to validate that the volatile
    free lists and the persistent allocation table tile the heap exactly. *)

type block = { off : int; size : int }

val live_blocks : Buddy.t -> block list
(** Every allocated block, in address order. *)

val live_count : Buddy.t -> int
val live_bytes : Buddy.t -> int

type report = {
  blocks : int;
  bytes_used : int;
  bytes_free : int;
  largest_free : int;  (** size of the largest free block *)
  fragmentation : float;
      (** 1 - largest_free/bytes_free; 0 when the free space is one block *)
}

val report : Buddy.t -> report

val check : Buddy.t -> (unit, string) result
(** Structural integrity: free-list blocks must be aligned, in range,
    disjoint from each other and from allocated blocks, and together with
    the allocated blocks must tile the heap exactly.  Returns [Error msg]
    describing the first violation. *)
