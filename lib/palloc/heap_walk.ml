type block = { off : int; size : int }

let live_blocks buddy =
  let table = Buddy.table buddy in
  let acc = ref [] in
  Alloc_table.iter_allocated table (fun ~idx ~order ->
      acc :=
        {
          off = Alloc_table.offset_of_index table idx;
          size = Buddy.size_of_order order;
        }
        :: !acc);
  List.rev !acc

let live_count buddy =
  let n = ref 0 in
  Alloc_table.iter_allocated (Buddy.table buddy) (fun ~idx:_ ~order:_ -> incr n);
  !n

let live_bytes buddy =
  let n = ref 0 in
  Alloc_table.iter_allocated (Buddy.table buddy) (fun ~idx:_ ~order ->
      n := !n + Buddy.size_of_order order);
  !n

type report = {
  blocks : int;
  bytes_used : int;
  bytes_free : int;
  largest_free : int;
  fragmentation : float;
}

let report buddy =
  let largest =
    Buddy.fold_free buddy ~init:0 ~f:(fun acc ~idx:_ ~order ->
        max acc (Buddy.size_of_order order))
  in
  let free = Buddy.free_bytes buddy in
  {
    blocks = live_count buddy;
    bytes_used = Buddy.used_bytes buddy;
    bytes_free = free;
    largest_free = largest;
    fragmentation =
      (if free = 0 then 0.0 else 1.0 -. (float_of_int largest /. float_of_int free));
  }

let check buddy =
  let table = Buddy.table buddy in
  let nblocks = Alloc_table.nblocks table in
  (* 0 = unseen, 1 = free-list, 2 = allocated *)
  let cover = Bytes.make nblocks '\000' in
  let claim tag idx order =
    let len = 1 lsl order in
    if idx land (len - 1) <> 0 then
      Error (Printf.sprintf "block %d at order %d is misaligned" idx order)
    else if idx + len > nblocks then
      Error (Printf.sprintf "block %d at order %d overflows the heap" idx order)
    else begin
      let clash = ref None in
      for i = idx to idx + len - 1 do
        if !clash = None && Bytes.get cover i <> '\000' then clash := Some i;
        Bytes.set cover i tag
      done;
      match !clash with
      | Some i -> Error (Printf.sprintf "blocks overlap at index %d" i)
      | None -> Ok ()
    end
  in
  let result = ref (Ok ()) in
  let claim_checked tag ~idx ~order =
    match !result with
    | Error _ -> ()
    | Ok () -> result := claim tag idx order
  in
  Alloc_table.iter_allocated table (fun ~idx ~order ->
      claim_checked '\002' ~idx ~order);
  ignore
    (Buddy.fold_free buddy ~init:() ~f:(fun () ~idx ~order ->
         claim_checked '\001' ~idx ~order));
  match !result with
  | Error _ as e -> e
  | Ok () ->
      let hole = Bytes.index_opt cover '\000' in
      (match hole with
      | Some i -> Error (Printf.sprintf "index %d is neither free nor allocated" i)
      | None -> Ok ())
