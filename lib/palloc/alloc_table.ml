type t = {
  dev : Pmem.Device.t;
  table_base : int;
  heap_base : int;
  heap_len : int;
  nblocks : int;
}

let min_block = 64
let min_block_shift = 6
let table_bytes ~heap_len = heap_len / min_block

let make dev ~table_base ~heap_base ~heap_len =
  if heap_len mod min_block <> 0 then
    invalid_arg "Alloc_table: heap_len must be a multiple of min_block";
  if heap_len <= 0 then invalid_arg "Alloc_table: empty heap";
  { dev; table_base; heap_base; heap_len; nblocks = heap_len / min_block }

let create dev ~table_base ~heap_base ~heap_len =
  let t = make dev ~table_base ~heap_base ~heap_len in
  Pmem.Device.fill dev table_base t.nblocks '\000';
  Pmem.Device.persist dev table_base t.nblocks;
  t

let attach dev ~table_base ~heap_base ~heap_len =
  make dev ~table_base ~heap_base ~heap_len

let nblocks t = t.nblocks
let heap_base t = t.heap_base
let heap_len t = t.heap_len
let device t = t.dev

let index_of_offset t off =
  let rel = off - t.heap_base in
  if rel < 0 || rel >= t.heap_len then
    invalid_arg (Printf.sprintf "Alloc_table: offset %d outside heap" off);
  if rel land (min_block - 1) <> 0 then
    invalid_arg (Printf.sprintf "Alloc_table: offset %d not block-aligned" off);
  rel lsr min_block_shift

let offset_of_index t idx =
  if idx < 0 || idx >= t.nblocks then
    invalid_arg (Printf.sprintf "Alloc_table: index %d out of range" idx);
  t.heap_base + (idx lsl min_block_shift)

let entry_addr t idx = t.table_base + idx
let entry_line t idx = (t.table_base + idx) lsr 6

let mark t ~idx ~order =
  Pmem.Device.write_u8 t.dev (entry_addr t idx) (order + 1)

let clear t ~idx = Pmem.Device.write_u8 t.dev (entry_addr t idx) 0

let mark_durable t ~idx ~order =
  let addr = entry_addr t idx in
  Pmem.Device.write_u8 t.dev addr (order + 1);
  Pmem.Device.persist t.dev addr 1

let clear_durable t ~idx =
  let addr = entry_addr t idx in
  Pmem.Device.write_u8 t.dev addr 0;
  Pmem.Device.persist t.dev addr 1

let order_at t ~idx =
  match Pmem.Device.read_u8 t.dev (entry_addr t idx) with
  | 0 -> None
  | b -> Some (b - 1)

let iter_allocated t f =
  let rec go idx =
    if idx < t.nblocks then
      match order_at t ~idx with
      | Some order ->
          f ~idx ~order;
          go (idx + (1 lsl order))
      | None -> go (idx + 1)
  in
  go 0
