exception Out_of_pmem
exception Invalid_free of int

module ISet = Set.Make (Int)
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics

let m_allocs = Mx.counter "alloc.count"
let m_frees = Mx.counter "free.count"
let h_alloc_size = Mx.histogram "alloc.size"
let h_free_size = Mx.histogram "free.size"

type reservation = { r_idx : int; r_order : int }

(* A stripe is an independently locked region of the heap with its own
   volatile free lists — the paper's per-thread allocator.  Stripe
   boundaries sit on power-of-two block indices, so buddy pairs never
   cross a stripe and merging stays local. *)
type stripe = {
  lock : Mutex.t;
  mutable free : ISet.t array; (* index: order; elements: block indices *)
  mutable free_bytes : int;
  lo : int; (* first block index (inclusive) *)
  hi : int; (* last block index (exclusive) *)
}

type t = {
  table : Alloc_table.t;
  stripes : stripe array;
  span : int; (* blocks per stripe (power of two); last stripe may be larger *)
  max_order : int; (* largest order any stripe can hand out *)
}

let min_block = Alloc_table.min_block

let log2_floor n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let order_of_size size =
  if size <= 0 then invalid_arg "Buddy.order_of_size: non-positive size";
  let rec go order blocksz =
    if blocksz >= size then order else go (order + 1) (blocksz * 2)
  in
  go 0 min_block

let size_of_order order = min_block lsl order
let table t = t.table
let max_order t = t.max_order
let stripes t = Array.length t.stripes
let capacity t = Alloc_table.heap_len t.table

let free_bytes t =
  Array.fold_left (fun acc s -> acc + s.free_bytes) 0 t.stripes

let used_bytes t = capacity t - free_bytes t

let locked s f =
  Mutex.lock s.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let dev t = Alloc_table.device t.table

let stripe_of t idx =
  min (idx / t.span) (Array.length t.stripes - 1)

let add_free s order idx =
  s.free.(order) <- ISet.add idx s.free.(order);
  s.free_bytes <- s.free_bytes + size_of_order order

let remove_free s order idx =
  s.free.(order) <- ISet.remove idx s.free.(order);
  s.free_bytes <- s.free_bytes - size_of_order order

(* Carve the free index range [lo, hi) into maximal aligned blocks no
   larger than the global max order. *)
let carve t s lo hi =
  let rec go lo =
    if lo < hi then begin
      let by_align = if lo = 0 then t.max_order else log2_floor (lo land -lo) in
      let by_len = log2_floor (hi - lo) in
      let order = min t.max_order (min by_align by_len) in
      add_free s order lo;
      go (lo + (1 lsl order))
    end
  in
  go lo

(* Insert a block into its stripe's free lists, merging with its buddy
   while the buddy is wholly free at the same order and inside the
   stripe. *)
let rec insert_merged t s idx order =
  let buddy = idx lxor (1 lsl order) in
  if
    order < t.max_order
    && buddy >= s.lo
    && buddy + (1 lsl order) <= s.hi
    && ISet.mem buddy s.free.(order)
  then begin
    remove_free s order buddy;
    Pmem.Device.charge_alloc_steps (dev t) 1;
    insert_merged t s (min idx buddy) (order + 1)
  end
  else add_free s order idx

let rebuild_locked t =
  Array.iter
    (fun s ->
      s.free <- Array.make (t.max_order + 1) ISet.empty;
      s.free_bytes <- 0)
    t.stripes;
  (* walk the table once, carving free gaps into the owning stripes *)
  let nblocks = Alloc_table.nblocks t.table in
  let carve_range lo hi =
    (* split the range at stripe boundaries *)
    let rec go lo =
      if lo < hi then begin
        let s = t.stripes.(stripe_of t lo) in
        let stop = min hi s.hi in
        carve t s lo stop;
        go stop
      end
    in
    go lo
  in
  let cursor = ref 0 in
  Alloc_table.iter_allocated t.table (fun ~idx ~order ->
      if !cursor < idx then carve_range !cursor idx;
      cursor := idx + (1 lsl order));
  if !cursor < nblocks then carve_range !cursor nblocks

let make dev ~table_base ~heap_base ~heap_len ~stripes ~fresh =
  if stripes <= 0 then invalid_arg "Buddy: stripe count must be positive";
  let table =
    if fresh then Alloc_table.create dev ~table_base ~heap_base ~heap_len
    else Alloc_table.attach dev ~table_base ~heap_base ~heap_len
  in
  let nblocks = Alloc_table.nblocks table in
  let span =
    if stripes = 1 then nblocks
    else begin
      let s = 1 lsl log2_floor (nblocks / stripes) in
      if s = 0 then invalid_arg "Buddy: heap too small for that many stripes";
      s
    end
  in
  let max_order = log2_floor span in
  let nstripes = if stripes = 1 then 1 else stripes in
  let mk i =
    let lo = i * span in
    let hi = if i = nstripes - 1 then nblocks else (i + 1) * span in
    {
      lock = Mutex.create ();
      free = Array.make (max_order + 1) ISet.empty;
      free_bytes = 0;
      lo;
      hi;
    }
  in
  let t =
    {
      table;
      stripes = Array.init nstripes mk;
      span;
      max_order;
    }
  in
  rebuild_locked t;
  t

let create ?(stripes = 1) dev ~table_base ~heap_base ~heap_len =
  make dev ~table_base ~heap_base ~heap_len ~stripes ~fresh:true

let attach ?(stripes = 1) dev ~table_base ~heap_base ~heap_len =
  make dev ~table_base ~heap_base ~heap_len ~stripes ~fresh:false

let rebuild t = rebuild_locked t

(* Reserve within one stripe; returns None when it cannot satisfy. *)
let reserve_in t s order =
  locked s (fun () ->
      let rec find j =
        if j > t.max_order then None
        else if ISet.is_empty s.free.(j) then find (j + 1)
        else Some j
      in
      match find order with
      | None -> None
      | Some j ->
          let idx = ISet.min_elt s.free.(j) in
          remove_free s j idx;
          (* Split down to the requested order, releasing upper halves. *)
          let rec split k =
            if k > order then begin
              let k = k - 1 in
              add_free s k (idx + (1 lsl k));
              Pmem.Device.charge_alloc_steps (dev t) 1;
              split k
            end
          in
          split j;
          (* Metadata traffic grows with block size (headers, class lists
             in a real buddy); charged per order so large allocations cost
             more, matching the paper's Alloc(4 kB) > Alloc(8 B) shape. *)
          Pmem.Device.charge_alloc_steps (dev t) (order + 1);
          Some { r_idx = idx; r_order = order })

let reserve ?(hint = 0) t size =
  let order = order_of_size size in
  if order > t.max_order then raise Out_of_pmem;
  let n = Array.length t.stripes in
  let rec try_stripe i =
    if i >= n then raise Out_of_pmem
    else
      match reserve_in t t.stripes.((hint + i) mod n) order with
      | Some r -> r
      | None -> try_stripe (i + 1)
  in
  try_stripe 0

let cancel t r =
  let s = t.stripes.(stripe_of t r.r_idx) in
  locked s (fun () -> insert_merged t s r.r_idx r.r_order)

(* One instant event per committed allocation / completed free; metric
   sizes are the rounded block sizes the heap actually loses or regains. *)
let note t name ~off ~bytes =
  let counter, histo =
    if name = "alloc" then (m_allocs, h_alloc_size) else (m_frees, h_free_size)
  in
  Mx.incr counter;
  Mx.observe histo bytes;
  Tr.emit
    ~args:[ ("off", string_of_int off); ("bytes", string_of_int bytes) ]
    ~cat:"palloc" ~name ~ph:Tr.I
    ~ts_ns:(Pmem.Device.simulated_ns (dev t)) ()

let commit t r =
  Alloc_table.mark t.table ~idx:r.r_idx ~order:r.r_order;
  if Tr.on () then
    note t "alloc"
      ~off:(Alloc_table.offset_of_index t.table r.r_idx)
      ~bytes:(size_of_order r.r_order)
let offset_of_reservation t r = Alloc_table.offset_of_index t.table r.r_idx

let alloc ?hint t size =
  let r = reserve ?hint t size in
  commit t r;
  offset_of_reservation t r

let dealloc t off =
  let idx = Alloc_table.index_of_offset t.table off in
  match Alloc_table.order_at t.table ~idx with
  | None -> raise (Invalid_free off)
  | Some order ->
      Alloc_table.clear t.table ~idx;
      let s = t.stripes.(stripe_of t idx) in
      locked s (fun () -> insert_merged t s idx order);
      if Tr.on () then note t "free" ~off ~bytes:(size_of_order order)

let dealloc_if_live t off =
  let idx = Alloc_table.index_of_offset t.table off in
  match Alloc_table.order_at t.table ~idx with
  | None -> ()
  | Some order ->
      Alloc_table.clear t.table ~idx;
      let s = t.stripes.(stripe_of t idx) in
      locked s (fun () -> insert_merged t s idx order);
      if Tr.on () then note t "free" ~off ~bytes:(size_of_order order)

let block_size t off =
  let idx = Alloc_table.index_of_offset t.table off in
  Option.map size_of_order (Alloc_table.order_at t.table ~idx)

let fold_free t ~init ~f =
  Array.fold_left
    (fun acc s ->
      locked s (fun () ->
          let acc = ref acc in
          Array.iteri
            (fun order set -> ISet.iter (fun idx -> acc := f !acc ~idx ~order) set)
            s.free;
          !acc))
    init t.stripes
