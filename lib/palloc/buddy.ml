exception Out_of_pmem
exception Invalid_free of int

module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics

let m_allocs = Mx.counter "alloc.count"
let m_frees = Mx.counter "free.count"
let m_steals = Mx.counter "alloc.steals"
let m_contended = Mx.counter "stripe.contended"
let h_alloc_size = Mx.histogram "alloc.size"
let h_free_size = Mx.histogram "free.size"

type reservation = { r_idx : int; r_order : int }

(* A stripe is an independently locked region of the heap with its own
   volatile free lists — the paper's per-thread allocator.  Stripe
   boundaries sit on power-of-two block indices, so buddy pairs never
   cross a stripe and merging stays local.

   Free space is tracked in intrusive, array-backed structures sized to
   the stripe, making every list operation O(1):

   - [stacks.(o)] / [tops.(o)]: a LIFO of free block indices per order;
     push and pop are O(1), and popping the most-recently-freed block
     keeps the working set cache-warm.
   - [forder]: one byte per block, [order+1] when the block currently
     heads a free list (0 otherwise) — the buddy-membership test that
     replaces [Set.mem].
   - [slot]: each free block's position inside its stack, so a buddy can
     be unlinked in O(1) by swapping the stack's last element into its
     place.
   - [nonempty]: a bitmask over orders with a non-empty stack; the
     smallest adequate order is found with mask arithmetic instead of a
     per-order scan. *)
type stripe = {
  lock : Mutex.t;
  mutable stacks : int array array; (* index: order; LIFO of block indices *)
  tops : int array; (* live depth of stacks.(order) *)
  mutable nonempty : int; (* bitmask: order o set iff tops.(o) > 0 *)
  forder : Bytes.t; (* (idx - lo) -> order + 1 when free head, else 0 *)
  slot : int array; (* (idx - lo) -> position within stacks.(order) *)
  mutable free_bytes : int;
  steals : int Atomic.t; (* reserves served here for another stripe's hint *)
  contended : int Atomic.t; (* lock acquisitions that found it held *)
  lo : int; (* first block index (inclusive) *)
  hi : int; (* last block index (exclusive) *)
}

type t = {
  table : Alloc_table.t;
  stripes : stripe array;
  span : int; (* blocks per stripe (power of two); last stripe may be larger *)
  max_order : int; (* largest order any stripe can hand out *)
}

type stripe_stats = {
  ss_lo : int; (* heap byte offset of the stripe's first block *)
  ss_hi : int; (* heap byte offset one past the stripe's last block *)
  ss_free_bytes : int;
  ss_depths : int array; (* free-list depth per order *)
  ss_steals : int;
  ss_contended : int;
}

let min_block = Alloc_table.min_block

let log2_floor n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let order_of_size size =
  if size <= 0 then invalid_arg "Buddy.order_of_size: non-positive size";
  let rec go order blocksz =
    if blocksz >= size then order else go (order + 1) (blocksz * 2)
  in
  go 0 min_block

let size_of_order order = min_block lsl order
let table t = t.table
let max_order t = t.max_order
let stripes t = Array.length t.stripes
let capacity t = Alloc_table.heap_len t.table

let free_bytes t =
  Array.fold_left (fun acc s -> acc + s.free_bytes) 0 t.stripes

let used_bytes t = capacity t - free_bytes t

let locked s f =
  if not (Mutex.try_lock s.lock) then begin
    Atomic.incr s.contended;
    Mx.incr m_contended;
    Mutex.lock s.lock
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.lock) f

let dev t = Alloc_table.device t.table

let stripe_of t idx =
  min (idx / t.span) (Array.length t.stripes - 1)

(* {2 O(1) free-list primitives (stripe lock held)} *)

let add_free s order idx =
  let top = s.tops.(order) in
  let st = s.stacks.(order) in
  let st =
    if top = Array.length st then begin
      let st' = Array.make (max 16 (2 * top)) 0 in
      Array.blit st 0 st' 0 top;
      s.stacks.(order) <- st';
      st'
    end
    else st
  in
  st.(top) <- idx;
  s.tops.(order) <- top + 1;
  s.slot.(idx - s.lo) <- top;
  Bytes.unsafe_set s.forder (idx - s.lo) (Char.unsafe_chr (order + 1));
  s.nonempty <- s.nonempty lor (1 lsl order);
  s.free_bytes <- s.free_bytes + size_of_order order

(* Pop the most recently freed block of [order]; caller ensures nonempty. *)
let pop_free s order =
  let top = s.tops.(order) - 1 in
  let idx = s.stacks.(order).(top) in
  s.tops.(order) <- top;
  if top = 0 then s.nonempty <- s.nonempty land lnot (1 lsl order);
  Bytes.unsafe_set s.forder (idx - s.lo) '\000';
  s.free_bytes <- s.free_bytes - size_of_order order;
  idx

(* Unlink a specific free block (the buddy during a merge): swap the
   stack's last element into its slot and shrink. *)
let remove_free s order idx =
  let top = s.tops.(order) - 1 in
  let st = s.stacks.(order) in
  let p = s.slot.(idx - s.lo) in
  if p <> top then begin
    let moved = st.(top) in
    st.(p) <- moved;
    s.slot.(moved - s.lo) <- p
  end;
  s.tops.(order) <- top;
  if top = 0 then s.nonempty <- s.nonempty land lnot (1 lsl order);
  Bytes.unsafe_set s.forder (idx - s.lo) '\000';
  s.free_bytes <- s.free_bytes - size_of_order order

let is_free_at s idx order =
  Bytes.unsafe_get s.forder (idx - s.lo) = Char.unsafe_chr (order + 1)

(* Smallest order >= [k] with a non-empty list, or -1. *)
let find_order s k =
  let mask = s.nonempty land ((-1) lsl k) in
  if mask = 0 then -1 else log2_floor (mask land -mask)

(* Carve the free index range [lo, hi) into maximal aligned blocks no
   larger than the global max order. *)
let carve t s lo hi =
  let rec go lo =
    if lo < hi then begin
      let by_align = if lo = 0 then t.max_order else log2_floor (lo land -lo) in
      let by_len = log2_floor (hi - lo) in
      let order = min t.max_order (min by_align by_len) in
      add_free s order lo;
      go (lo + (1 lsl order))
    end
  in
  go lo

(* Insert a block into its stripe's free lists, merging with its buddy
   while the buddy is wholly free at the same order and inside the
   stripe. *)
let rec insert_merged t s idx order =
  let buddy = idx lxor (1 lsl order) in
  if
    order < t.max_order
    && buddy >= s.lo
    && buddy + (1 lsl order) <= s.hi
    && is_free_at s buddy order
  then begin
    remove_free s order buddy;
    Pmem.Device.charge_alloc_steps (dev t) 1;
    insert_merged t s (min idx buddy) (order + 1)
  end
  else add_free s order idx

let reset_stripe max_order s =
  s.stacks <- Array.make (max_order + 1) [||];
  Array.fill s.tops 0 (max_order + 1) 0;
  s.nonempty <- 0;
  Bytes.fill s.forder 0 (Bytes.length s.forder) '\000';
  s.free_bytes <- 0

(* One pass over the table: free gaps between allocated heads are carved
   into the owning stripes.  [iter_allocated] already skips allocation
   interiors, so the rebuild is a single linear scan. *)
let rebuild_locked t =
  Array.iter (reset_stripe t.max_order) t.stripes;
  let nblocks = Alloc_table.nblocks t.table in
  let carve_range lo hi =
    (* split the range at stripe boundaries *)
    let rec go lo =
      if lo < hi then begin
        let s = t.stripes.(stripe_of t lo) in
        let stop = min hi s.hi in
        carve t s lo stop;
        go stop
      end
    in
    go lo
  in
  let cursor = ref 0 in
  Alloc_table.iter_allocated t.table (fun ~idx ~order ->
      if !cursor < idx then carve_range !cursor idx;
      cursor := idx + (1 lsl order));
  if !cursor < nblocks then carve_range !cursor nblocks

let make dev ~table_base ~heap_base ~heap_len ~stripes ~fresh =
  if stripes <= 0 then invalid_arg "Buddy: stripe count must be positive";
  let table =
    if fresh then Alloc_table.create dev ~table_base ~heap_base ~heap_len
    else Alloc_table.attach dev ~table_base ~heap_base ~heap_len
  in
  let nblocks = Alloc_table.nblocks table in
  let span =
    if stripes = 1 then nblocks
    else begin
      let s = 1 lsl log2_floor (nblocks / stripes) in
      if s = 0 then invalid_arg "Buddy: heap too small for that many stripes";
      s
    end
  in
  let max_order = log2_floor span in
  let nstripes = if stripes = 1 then 1 else stripes in
  let mk i =
    let lo = i * span in
    let hi = if i = nstripes - 1 then nblocks else (i + 1) * span in
    {
      lock = Mutex.create ();
      stacks = Array.make (max_order + 1) [||];
      tops = Array.make (max_order + 1) 0;
      nonempty = 0;
      forder = Bytes.make (hi - lo) '\000';
      slot = Array.make (hi - lo) 0;
      free_bytes = 0;
      steals = Atomic.make 0;
      contended = Atomic.make 0;
      lo;
      hi;
    }
  in
  let t =
    {
      table;
      stripes = Array.init nstripes mk;
      span;
      max_order;
    }
  in
  rebuild_locked t;
  t

let create ?(stripes = 1) dev ~table_base ~heap_base ~heap_len =
  make dev ~table_base ~heap_base ~heap_len ~stripes ~fresh:true

let attach ?(stripes = 1) dev ~table_base ~heap_base ~heap_len =
  make dev ~table_base ~heap_base ~heap_len ~stripes ~fresh:false

let rebuild t = rebuild_locked t

(* Reserve within one stripe; returns None when it cannot satisfy. *)
let reserve_in t s order =
  locked s (fun () ->
      match find_order s order with
      | -1 -> None
      | j ->
          let idx = pop_free s j in
          (* Split down to the requested order, releasing upper halves. *)
          let rec split k =
            if k > order then begin
              let k = k - 1 in
              add_free s k (idx + (1 lsl k));
              Pmem.Device.charge_alloc_steps (dev t) 1;
              split k
            end
          in
          split j;
          (* Metadata traffic grows with block size (headers, class lists
             in a real buddy); charged per order so large allocations cost
             more, matching the paper's Alloc(4 kB) > Alloc(8 B) shape. *)
          Pmem.Device.charge_alloc_steps (dev t) (order + 1);
          Some { r_idx = idx; r_order = order })

let reserve ?(hint = 0) t size =
  let order = order_of_size size in
  if order > t.max_order then raise Out_of_pmem;
  let n = Array.length t.stripes in
  let rec try_stripe i =
    if i >= n then raise Out_of_pmem
    else begin
      let s = t.stripes.((hint + i) mod n) in
      match reserve_in t s order with
      | Some r ->
          if i > 0 then begin
            Atomic.incr s.steals;
            Mx.incr m_steals
          end;
          r
      | None -> try_stripe (i + 1)
    end
  in
  try_stripe 0

let cancel t r =
  let s = t.stripes.(stripe_of t r.r_idx) in
  locked s (fun () -> insert_merged t s r.r_idx r.r_order)

type op = Alloc | Free

(* One instant event per committed allocation / completed free; metric
   sizes are the rounded block sizes the heap actually loses or regains. *)
let note t op ~off ~bytes =
  let counter, histo, name =
    match op with
    | Alloc -> (m_allocs, h_alloc_size, "alloc")
    | Free -> (m_frees, h_free_size, "free")
  in
  Mx.incr counter;
  Mx.observe histo bytes;
  Tr.emit
    ~args:[ ("off", string_of_int off); ("bytes", string_of_int bytes) ]
    ~cat:"palloc" ~name ~ph:Tr.I
    ~ts_ns:(Pmem.Device.simulated_ns (dev t)) ()

let commit t r =
  Alloc_table.mark t.table ~idx:r.r_idx ~order:r.r_order;
  if Tr.on () then
    note t Alloc
      ~off:(Alloc_table.offset_of_index t.table r.r_idx)
      ~bytes:(size_of_order r.r_order)

let commit_durable t r =
  Alloc_table.mark_durable t.table ~idx:r.r_idx ~order:r.r_order;
  if Tr.on () then
    note t Alloc
      ~off:(Alloc_table.offset_of_index t.table r.r_idx)
      ~bytes:(size_of_order r.r_order)

let offset_of_reservation t r = Alloc_table.offset_of_index t.table r.r_idx
let mark_line t r = Alloc_table.entry_line t.table r.r_idx

let line_of_offset t off =
  Alloc_table.entry_line t.table (Alloc_table.index_of_offset t.table off)

let alloc ?hint t size =
  let r = reserve ?hint t size in
  commit_durable t r;
  offset_of_reservation t r

(* The shared body of every free path.  [missing_ok] distinguishes the
   strict one-shot free (wild/double frees raise) from the idempotent
   recovery form; [durable] selects a one-shot persisted table clear or a
   dirty-only clear whose line the caller batches (the journal's deferred
   drops). *)
let release t off ~missing_ok ~durable =
  let idx = Alloc_table.index_of_offset t.table off in
  match Alloc_table.order_at t.table ~idx with
  | None -> if not missing_ok then raise (Invalid_free off)
  | Some order ->
      if durable then Alloc_table.clear_durable t.table ~idx
      else Alloc_table.clear t.table ~idx;
      let s = t.stripes.(stripe_of t idx) in
      locked s (fun () -> insert_merged t s idx order);
      if Tr.on () then note t Free ~off ~bytes:(size_of_order order)

let dealloc ?(durable = true) t off = release t off ~missing_ok:false ~durable

let dealloc_if_live ?(durable = true) t off =
  release t off ~missing_ok:true ~durable

let block_size t off =
  let idx = Alloc_table.index_of_offset t.table off in
  Option.map size_of_order (Alloc_table.order_at t.table ~idx)

let fold_free t ~init ~f =
  Array.fold_left
    (fun acc s ->
      locked s (fun () ->
          let acc = ref acc in
          Array.iteri
            (fun order st ->
              for p = 0 to s.tops.(order) - 1 do
                acc := f !acc ~idx:st.(p) ~order
              done)
            s.stacks;
          !acc))
    init t.stripes

let stripe_stats t =
  Array.map
    (fun s ->
      locked s (fun () ->
          {
            ss_lo = Alloc_table.offset_of_index t.table s.lo;
            ss_hi =
              Alloc_table.heap_base t.table
              + (s.hi lsl Alloc_table.min_block_shift);
            ss_free_bytes = s.free_bytes;
            ss_depths = Array.copy s.tops;
            ss_steals = Atomic.get s.steals;
            ss_contended = Atomic.get s.contended;
          }))
    t.stripes
