(** Crash-consistent buddy allocator over a {!Pmem.Device} heap region.

    Durable state is the {!Alloc_table}; free space is tracked in volatile
    per-stripe free lists rebuilt from the table at {!attach} time, so the
    allocator itself never needs multi-word atomic updates.  The volatile
    side is O(1) per operation: intrusive array-backed LIFO stacks per
    order, a per-block free-order byte for buddy-membership tests, and a
    non-empty-order bitmask, so reserve/insert/merge never scan and
    {!rebuild} is a single table walk.

    Transactional allocation uses a three-step protocol driven by the
    journal layer:

    + {!reserve} removes a block from the volatile free lists (no durable
      effect — a crash here loses nothing);
    + the journal durably records the allocation intent (seals the undo
      entry);
    + {!commit} marks the table byte {e dirty-only}; the journal collects
      the mark's 64-byte table line (see {!mark_line}) and flushes all
      collected lines in coalesced runs under its commit fence.

    The mark-after-seal order is the safety invariant: a mark can only
    become durable after its undo entry is sealed, so recovery frees any
    block whose mark persisted without a committed transaction, and a mark
    that failed to persist is indistinguishable from a rolled-back
    reservation.

    If the transaction aborts, {!cancel} (before commit) or a journal-driven
    {!dealloc} (after commit) undoes the allocation.  Frees inside a
    transaction are deferred by the journal and applied at commit via
    {!dealloc}, which is idempotent at the table level. *)

exception Out_of_pmem
(** No stripe can satisfy the request. *)

exception Invalid_free of int
(** Raised by {!dealloc} when the offset is not the head of a live block
    (double free or wild free). *)

type t

type reservation = private { r_idx : int; r_order : int }

val create :
  ?stripes:int -> Pmem.Device.t -> table_base:int -> heap_base:int -> heap_len:int -> t
(** Format a fresh heap (zeroes the allocation table).  [stripes]
    (default 1) partitions the heap into independently locked arenas —
    the paper's per-thread allocators; allocations prefer the caller's
    {e hint} stripe and steal from others under pressure.  Stripe
    boundaries sit on power-of-two block indices, so buddies never cross
    them; with [n] stripes the largest allocatable block is roughly
    [heap/n]. *)

val attach :
  ?stripes:int -> Pmem.Device.t -> table_base:int -> heap_base:int -> heap_len:int -> t
(** Bind to an existing heap and rebuild the free lists from the table.
    The striping is volatile policy, not media format: any [stripes]
    value may be used on any heap. *)

val table : t -> Alloc_table.t
val max_order : t -> int
val stripes : t -> int
val order_of_size : int -> int
(** Smallest order whose block size is >= the given byte size. *)

val size_of_order : int -> int

(** {1 Reservation protocol} *)

val reserve : ?hint:int -> t -> int -> reservation
(** [reserve t size] claims a block of at least [size] bytes from the
    volatile free lists, preferring stripe [hint mod stripes].  Raises
    {!Out_of_pmem}. *)

val cancel : t -> reservation -> unit
(** Return an uncommitted reservation to the free lists. *)

val commit : t -> reservation -> unit
(** Mark the reservation allocated in the table, dirty-only.  The caller
    owns durability: collect {!mark_line} and flush it (batched) before
    the transaction's commit fence. *)

val commit_durable : t -> reservation -> unit
(** [commit] + persist of the table byte, for non-transactional callers. *)

val offset_of_reservation : t -> reservation -> int

val mark_line : t -> reservation -> int
(** Device line number of the table byte {!commit} dirties — the unit the
    journal collects for coalesced flushing. *)

val line_of_offset : t -> int -> int
(** Device line number of the table byte for the block headed at a heap
    offset (the clear line of a deferred free). *)

(** {1 One-shot interface (non-transactional callers and recovery)} *)

val alloc : ?hint:int -> t -> int -> int
(** [reserve] + [commit_durable]; returns the block's byte offset. *)

val dealloc : ?durable:bool -> t -> int -> unit
(** Free the block headed at the given offset and merge buddies in the
    volatile lists.  With [durable] (default [true]) the table clear is
    persisted immediately; [~durable:false] leaves it dirty for a caller
    that batches table lines (see {!line_of_offset}).  Raises
    {!Invalid_free}. *)

val dealloc_if_live : ?durable:bool -> t -> int -> unit
(** Like {!dealloc} but a no-op when the block is already free — the
    idempotent form used when re-applying drop logs during recovery. *)

val rebuild : t -> unit
(** Drop and re-derive the volatile free lists from the table (used after
    recovery has edited table bytes directly). *)

(** {1 Introspection} *)

val block_size : t -> int -> int option
(** Size of the live block headed at the offset, if any. *)

val capacity : t -> int
val free_bytes : t -> int
val used_bytes : t -> int
val fold_free : t -> init:'a -> f:('a -> idx:int -> order:int -> 'a) -> 'a
(** Fold over every block in the volatile free lists (test support). *)

type stripe_stats = {
  ss_lo : int;  (** heap byte offset of the stripe's first block *)
  ss_hi : int;  (** heap byte offset one past the stripe's last block *)
  ss_free_bytes : int;
  ss_depths : int array;  (** free-list depth per order *)
  ss_steals : int;
      (** reservations this stripe served for another stripe's hint *)
  ss_contended : int;  (** lock acquisitions that found the stripe busy *)
}

val stripe_stats : t -> stripe_stats array
(** Per-stripe snapshot for [pool_info heap] and the alloc-scale bench;
    steal/contention totals are also exported as the [alloc.steals] and
    [stripe.contended] telemetry counters. *)
