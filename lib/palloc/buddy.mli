(** Crash-consistent buddy allocator over a {!Pmem.Device} heap region.

    Durable state is the {!Alloc_table}; free space is tracked in volatile
    per-order free sets rebuilt from the table at {!attach} time, so the
    allocator itself never needs multi-word atomic updates.

    Transactional allocation uses a three-step protocol driven by the
    journal layer:

    + {!reserve} removes a block from the volatile free lists (no durable
      effect — a crash here loses nothing);
    + the journal durably records the allocation intent;
    + {!commit} durably marks the table byte.

    If the transaction aborts, {!cancel} (before commit) or a journal-driven
    {!dealloc} (after commit) undoes the allocation.  Frees inside a
    transaction are deferred by the journal and applied at commit via
    {!dealloc}, which is idempotent at the table level. *)

exception Out_of_pmem
(** No stripe can satisfy the request. *)

exception Invalid_free of int
(** Raised by {!dealloc} when the offset is not the head of a live block
    (double free or wild free). *)

type t

type reservation = private { r_idx : int; r_order : int }

val create :
  ?stripes:int -> Pmem.Device.t -> table_base:int -> heap_base:int -> heap_len:int -> t
(** Format a fresh heap (zeroes the allocation table).  [stripes]
    (default 1) partitions the heap into independently locked arenas —
    the paper's per-thread allocators; allocations prefer the caller's
    {e hint} stripe and steal from others under pressure.  Stripe
    boundaries sit on power-of-two block indices, so buddies never cross
    them; with [n] stripes the largest allocatable block is roughly
    [heap/n]. *)

val attach :
  ?stripes:int -> Pmem.Device.t -> table_base:int -> heap_base:int -> heap_len:int -> t
(** Bind to an existing heap and rebuild the free lists from the table.
    The striping is volatile policy, not media format: any [stripes]
    value may be used on any heap. *)

val table : t -> Alloc_table.t
val max_order : t -> int
val stripes : t -> int
val order_of_size : int -> int
(** Smallest order whose block size is >= the given byte size. *)

val size_of_order : int -> int

(** {1 Reservation protocol} *)

val reserve : ?hint:int -> t -> int -> reservation
(** [reserve t size] claims a block of at least [size] bytes from the
    volatile free lists, preferring stripe [hint mod stripes].  Raises
    {!Out_of_pmem}. *)

val cancel : t -> reservation -> unit
(** Return an uncommitted reservation to the free lists. *)

val commit : t -> reservation -> unit
(** Durably mark the reservation allocated in the table. *)

val offset_of_reservation : t -> reservation -> int

(** {1 One-shot interface (non-transactional callers and recovery)} *)

val alloc : ?hint:int -> t -> int -> int
(** [reserve] + [commit]; returns the block's byte offset. *)

val dealloc : t -> int -> unit
(** Durably free the block headed at the given offset and merge buddies in
    the volatile lists.  Raises {!Invalid_free}. *)

val dealloc_if_live : t -> int -> unit
(** Like {!dealloc} but a no-op when the block is already free — the
    idempotent form used when re-applying drop logs during recovery. *)

val rebuild : t -> unit
(** Drop and re-derive the volatile free lists from the table (used after
    recovery has edited table bytes directly). *)

(** {1 Introspection} *)

val block_size : t -> int -> int option
(** Size of the live block headed at the offset, if any. *)

val capacity : t -> int
val free_bytes : t -> int
val used_bytes : t -> int
val fold_free : t -> init:'a -> f:('a -> idx:int -> order:int -> 'a) -> 'a
(** Fold over every block in the volatile free lists (test support). *)
