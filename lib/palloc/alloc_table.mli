(** Persistent allocation table: the durable truth of the buddy allocator.

    One byte per minimum-order (64 B) block of the heap: [0] means the block
    is free or the interior of a larger allocation; [k+1] means the block is
    the head of an allocated block of order [k].  A single-byte store is
    atomic on every platform and idempotent, so marking and unmarking need
    no logging of their own — transactional rollback/redo simply rewrites
    the byte (see DESIGN.md, "Crash-consistency protocols"). *)

type t

val min_block : int
(** Minimum allocation granule in bytes (64, one cache line). *)

val min_block_shift : int

val create : Pmem.Device.t -> table_base:int -> heap_base:int -> heap_len:int -> t
(** Format a fresh table: zero it and persist.  [heap_len] must be a
    multiple of {!min_block}; the table occupies [heap_len / min_block]
    bytes at [table_base]. *)

val attach : Pmem.Device.t -> table_base:int -> heap_base:int -> heap_len:int -> t
(** Bind to an existing (already formatted) table without touching it. *)

val table_bytes : heap_len:int -> int
(** Size of the table needed for a heap of [heap_len] bytes. *)

val nblocks : t -> int
val heap_base : t -> int
val heap_len : t -> int
val device : t -> Pmem.Device.t

val index_of_offset : t -> int -> int
(** Block index of a heap byte offset.  Raises [Invalid_argument] if the
    offset is outside the heap or not block-aligned. *)

val offset_of_index : t -> int -> int

val mark : t -> idx:int -> order:int -> unit
(** Mark block [idx] as the allocated head of an order-[order] block.
    Dirty-only: the store stays in the cache until the caller flushes the
    owning table line (see {!entry_line}).  Transactions collect the lines
    touched by their marks/clears and flush them in coalesced runs under
    the commit fence, instead of paying one persist per table byte. *)

val clear : t -> idx:int -> unit
(** Mark block [idx] free.  Dirty-only and idempotent; durability is the
    caller's responsibility, as with {!mark}. *)

val mark_durable : t -> idx:int -> order:int -> unit
(** One-shot [mark] + persist, for non-transactional callers (recovery,
    fsck repair, benchmarks) that manage no line set of their own. *)

val clear_durable : t -> idx:int -> unit
(** One-shot [clear] + persist. *)

val entry_line : t -> int -> int
(** Device line number (offset / 64) of the table byte for block [idx] —
    the unit a transaction collects for coalesced flushing. *)

val order_at : t -> idx:int -> int option
(** [Some order] if [idx] is an allocated head, [None] if the byte is 0. *)

val iter_allocated : t -> (idx:int -> order:int -> unit) -> unit
(** Visit every allocated head in index order; the iteration skips the
    interior blocks of each allocation. *)
