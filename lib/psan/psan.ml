module Pr = Ptelemetry.Probe
module Tr = Ptelemetry.Trace
module Json = Ptelemetry.Json

type violation_class = V1 | V2 | V3 | V4 | V5 | W1 | W2

let class_name = function
  | V1 -> "V1"
  | V2 -> "V2"
  | V3 -> "V3"
  | V4 -> "V4"
  | V5 -> "V5"
  | W1 -> "W1"
  | W2 -> "W2"

let class_title = function
  | V1 -> "unlogged in-place store in transaction"
  | V2 -> "store still dirty at commit (missing flush)"
  | V3 -> "store write-pending at commit (missing fence)"
  | V4 -> "store to pool data outside any transaction"
  | V5 -> "store to a block retired by a committed root swap"
  | W1 -> "redundant flush (no dirty line in range)"
  | W2 -> "redundant fence (write-pending queue empty)"

let is_warning = function W1 | W2 -> true | V1 | V2 | V3 | V4 | V5 -> false

type finding = {
  cls : violation_class;
  dev : int;
  off : int;
  len : int;
  tx : int option;
  ns : float;
  detail : string;
}

(* The device's line geometry, mirrored (psan depends only on
   ptelemetry, so it cannot read Pmem.Device.line_size). *)
let line_size = 64
let line_shift = 6

(* Shadow of one device's cache: absent lines are Clean. *)
type line_state = Dirty | Wpq | Wpq_dirty

(* A line's shadow also remembers WHO wrote it.  On a shared pool a
   commit judges only the committing domain's own stores: a line another
   domain dirtied between this member's epoch fence and its commit point
   must not read as this member's missing flush.  [dirty_owners] are the
   domains with stores not yet written back; [wpq_owners] those whose
   stores sit in the write-pending queue.  Flushes are line-granular, so
   a flush moves every dirty owner to the WPQ set at once; a fence
   empties the WPQ set.  Single-domain behavior is unchanged. *)
type line = {
  mutable st : line_state;
  mutable dirty_owners : int list;
  mutable wpq_owners : int list;
}

type dev_state = {
  mutable heap : (int * int) option; (* from Pool_attach *)
  lines : (int, line) Hashtbl.t; (* line number -> shadow *)
  mutable wpq : int; (* lines currently write-pending *)
  dyn_exempt : (int, int) Hashtbl.t; (* live spill regions: off -> len *)
  retired : (int, int) Hashtbl.t; (* CoW-retired blocks: off -> len *)
  mutable exempt_depth : int; (* recovery bracket nesting *)
  mutable last_fence_empty : bool; (* previous fence drained nothing *)
}

(* One open outermost transaction, keyed by (domain, device). *)
type tx_state = {
  tx_id : int;
  mutable covered : (int * int) list; (* logged ranges ∪ fresh allocs *)
  mutable stored : (int * int) list; (* heap, non-exempt stores *)
  mutable commit_seen : bool;
}

let lock = Mutex.create ()
let devs : (int, dev_state) Hashtbl.t = Hashtbl.create 8
let txs : (int * int, tx_state) Hashtbl.t = Hashtbl.create 8
let user_exempt : (int, (int * int) list ref) Hashtbl.t = Hashtbl.create 8
let next_tx = ref 0
let found : finding list ref = ref [] (* newest first *)
let seen : (string * int * int, unit) Hashtbl.t = Hashtbl.create 64
let active = ref false

let dev_state dev =
  match Hashtbl.find_opt devs dev with
  | Some ds -> ds
  | None ->
      let ds =
        {
          heap = None;
          lines = Hashtbl.create 256;
          wpq = 0;
          dyn_exempt = Hashtbl.create 8;
          retired = Hashtbl.create 8;
          exempt_depth = 0;
          last_fence_empty = false;
        }
      in
      Hashtbl.add devs dev ds;
      ds

(* {1 Interval arithmetic}

   Ranges are (off, len) lists, unordered and possibly overlapping;
   coverage checks subtract covering intervals from the query segment
   and look at what survives.  Lists are per-transaction and small. *)

let subtract segs (o, l) =
  let e = o + l in
  List.concat_map
    (fun (so, sl) ->
      let se = so + sl in
      if e <= so || o >= se then [ (so, sl) ]
      else
        (if o > so then [ (so, o - so) ] else [])
        @ if e < se then [ (e, se - e) ] else [])
    segs

let remaining segs cover = List.fold_left subtract segs cover

let exempt_ranges dev ds =
  let user =
    match Hashtbl.find_opt user_exempt dev with Some r -> !r | None -> []
  in
  Hashtbl.fold (fun o l acc -> (o, l) :: acc) ds.dyn_exempt user

(* Clip a store range to the device's heap; [] when no pool is attached
   or the range is pure metadata. *)
let heap_clip ds ~off ~len =
  match ds.heap with
  | None -> []
  | Some (hb, hl) ->
      let lo = max off hb and hi = min (off + len) (hb + hl) in
      if hi > lo then [ (lo, hi - lo) ] else []

(* {1 Findings} *)

let record cls ~dev ~off ~len ~tx ~ns ~detail =
  let key = (class_name cls, dev, off lsr line_shift) in
  if not (Hashtbl.mem seen key) then begin
    Hashtbl.add seen key ();
    found := { cls; dev; off; len; tx; ns; detail } :: !found;
    (* Surface the finding in the trace too, so it lands inside the tx
       span it belongs to when a ring or JSONL sink is attached. *)
    if Tr.on () then
      Tr.emit
        ~args:
          ([
             ("class", class_name cls);
             ("title", class_title cls);
             ("dev", string_of_int dev);
             ("off", string_of_int off);
             ("len", string_of_int len);
             ("detail", detail);
           ]
          @ match tx with Some i -> [ ("tx", string_of_int i) ] | None -> [])
        ~cat:"psan"
        ~name:("psan." ^ class_name cls)
        ~ph:Tr.I ~ts_ns:ns ()
  end

let tx_of dev = Hashtbl.find_opt txs ((Domain.self () :> int), dev)
let tx_id_of dev = Option.map (fun t -> t.tx_id) (tx_of dev)

(* {1 The shadow machine} *)

let add_owner d owners = if List.mem d owners then owners else d :: owners

let mark_store ds ~who off len =
  let first = off lsr line_shift and last = (off + len - 1) lsr line_shift in
  for l = first to last do
    match Hashtbl.find_opt ds.lines l with
    | None ->
        Hashtbl.replace ds.lines l
          { st = Dirty; dirty_owners = [ who ]; wpq_owners = [] }
    | Some ln ->
        (match ln.st with Wpq -> ln.st <- Wpq_dirty | Dirty | Wpq_dirty -> ());
        ln.dirty_owners <- add_owner who ln.dirty_owners
  done

let on_store ~dev ~off ~len ~ns =
  let ds = dev_state dev in
  (* Probe handlers run synchronously on the emitting thread, so
     [Domain.self] here is the storing domain. *)
  mark_store ds ~who:(Domain.self () :> int) off len;
  if ds.exempt_depth = 0 then begin
    (* Use-after-retire: no store may land in a retired block until the
       allocator reissues it, no matter how well-covered the tx is. *)
    Hashtbl.iter
      (fun o l ->
        let lo = max off o and hi = min (off + len) (o + l) in
        if hi > lo then
          record V5 ~dev ~off:lo ~len:(hi - lo) ~tx:(tx_id_of dev) ~ns
            ~detail:"block was retired by a root swap and not reissued")
      ds.retired;
    match heap_clip ds ~off ~len with
    | [] -> ()
    | segs -> (
        match remaining segs (exempt_ranges dev ds) with
        | [] -> ()
        | segs -> (
            match tx_of dev with
            | None ->
                List.iter
                  (fun (o, l) ->
                    record V4 ~dev ~off:o ~len:l ~tx:None ~ns
                      ~detail:"heap store with no open transaction")
                  segs
            | Some tx ->
                tx.stored <- segs @ tx.stored;
                List.iter
                  (fun (o, l) ->
                    record V1 ~dev ~off:o ~len:l ~tx:(Some tx.tx_id) ~ns
                      ~detail:
                        "no covering undo-log entry or same-tx allocation")
                  (remaining segs tx.covered)))
  end

let on_flush ~dev ~off ~len ~ns =
  let ds = dev_state dev in
  let first = off lsr line_shift and last = (off + len - 1) lsr line_shift in
  let useful = ref false in
  for l = first to last do
    match Hashtbl.find_opt ds.lines l with
    | Some ({ st = Dirty; _ } as ln) ->
        useful := true;
        ln.st <- Wpq;
        ln.wpq_owners <-
          List.fold_left (fun acc d -> add_owner d acc) ln.wpq_owners
            ln.dirty_owners;
        ln.dirty_owners <- [];
        ds.wpq <- ds.wpq + 1
    | Some ({ st = Wpq_dirty; _ } as ln) ->
        useful := true;
        ln.st <- Wpq;
        ln.wpq_owners <-
          List.fold_left (fun acc d -> add_owner d acc) ln.wpq_owners
            ln.dirty_owners;
        ln.dirty_owners <- []
    | Some { st = Wpq; _ } | None -> ()
  done;
  if (not !useful) && ds.exempt_depth = 0 then
    record W1 ~dev ~off ~len ~tx:(tx_id_of dev) ~ns
      ~detail:"flushed lines held no unwritten-back data"

let on_fence ~dev ~ns =
  let ds = dev_state dev in
  let empty = ds.wpq = 0 in
  if empty && ds.last_fence_empty && ds.exempt_depth = 0 then
    record W2 ~dev ~off:0 ~len:0 ~tx:(tx_id_of dev) ~ns
      ~detail:"consecutive fences with an empty write-pending queue";
  let pending =
    Hashtbl.fold
      (fun l ln acc ->
        match ln.st with Wpq | Wpq_dirty -> (l, ln) :: acc | Dirty -> acc)
      ds.lines []
  in
  List.iter
    (fun (l, ln) ->
      match ln.st with
      | Wpq -> Hashtbl.remove ds.lines l
      | Wpq_dirty ->
          ln.st <- Dirty;
          ln.wpq_owners <- []
      | Dirty -> ())
    pending;
  ds.wpq <- 0;
  ds.last_fence_empty <- empty

(* At the commit point every range the transaction stored must already
   be durable: dirty means the flush is missing, write-pending means
   the fence is.  Judged here — before the journal truncates — because
   truncation's own persists drain the WPQ and would mask both.  Only
   the committing domain's own residue counts: on a shared pool another
   domain may have re-dirtied one of these lines between this member's
   epoch fence and its commit point, and that is its transaction's
   problem, not this one's. *)
let check_commit ds tx ~who ~dev ~ns =
  tx.commit_seen <- true;
  List.iter
    (fun (o, l) ->
      let first = o lsr line_shift and last = (o + l - 1) lsr line_shift in
      for ln = first to last do
        match Hashtbl.find_opt ds.lines ln with
        | Some sh when List.mem who sh.dirty_owners ->
            record V2 ~dev ~off:(ln lsl line_shift) ~len:line_size
              ~tx:(Some tx.tx_id) ~ns
              ~detail:"line still dirty at commit point (missing flush)"
        | Some sh when List.mem who sh.wpq_owners ->
            record V3 ~dev ~off:(ln lsl line_shift) ~len:line_size
              ~tx:(Some tx.tx_id) ~ns
              ~detail:
                "line write-pending at commit point (flush without fence)"
        | Some _ | None -> ()
      done)
    tx.stored

let on_event ev =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match ev with
      | Pr.Store { dev; off; len; ns } -> on_store ~dev ~off ~len ~ns
      | Pr.Flush { dev; off; len; ns } -> on_flush ~dev ~off ~len ~ns
      | Pr.Fence { dev; ns } -> on_fence ~dev ~ns
      | Pr.Power_cycle { dev } ->
          (* All cache state is gone; in-flight spills roll back at
             recovery, so their exemptions die with them.  User
             exemptions are statements about regions and survive. *)
          let ds = dev_state dev in
          Hashtbl.reset ds.lines;
          Hashtbl.reset ds.dyn_exempt;
          Hashtbl.reset ds.retired;
          ds.wpq <- 0;
          ds.exempt_depth <- 0;
          ds.last_fence_empty <- false;
          Hashtbl.filter_map_inplace
            (fun (_, d) tx -> if d = dev then None else Some tx)
            txs
      | Pr.Pool_attach { dev; heap_base; heap_len } ->
          (dev_state dev).heap <- Some (heap_base, heap_len)
      | Pr.Tx_begin { dev; ns = _ } ->
          incr next_tx;
          Hashtbl.replace txs
            ((Domain.self () :> int), dev)
            { tx_id = !next_tx; covered = []; stored = []; commit_seen = false }
      | Pr.Tx_end { dev; outcome; ns } ->
          let key = ((Domain.self () :> int), dev) in
          (match (outcome, Hashtbl.find_opt txs key) with
          | Pr.Commit, Some tx when not tx.commit_seen ->
              (* The journal had nothing to commit, so no commit point
                 was emitted (nor any fence run) — judge here. *)
              check_commit (dev_state dev) tx ~who:(fst key) ~dev ~ns
          | _ -> ());
          Hashtbl.remove txs key
      | Pr.Log { dev; off; len } -> (
          match tx_of dev with
          | Some tx -> tx.covered <- (off, len) :: tx.covered
          | None -> ())
      | Pr.Alloc { dev; off; len } | Pr.Cow_shadow { dev; off; len } ->
          (* Shadow state is unreachable until the root swap publishes
             it, so it is rollback-safe exactly like a fresh alloc; a
             reissued block is no longer retired. *)
          let ds = dev_state dev in
          Hashtbl.filter_map_inplace
            (fun o l -> if max off o < min (off + len) (o + l) then None else Some l)
            ds.retired;
          (match tx_of dev with
          | Some tx -> tx.covered <- (off, len) :: tx.covered
          | None -> ())
      | Pr.Cow_retire { dev; off; len } ->
          Hashtbl.replace (dev_state dev).retired off len
      | Pr.Commit_point { dev; ns } -> (
          match tx_of dev with
          | Some tx ->
              check_commit (dev_state dev) tx
                ~who:(Domain.self () :> int)
                ~dev ~ns
          | None -> ())
      | Pr.Region_reserve { dev; off; len } ->
          Hashtbl.replace (dev_state dev).dyn_exempt off len
      | Pr.Region_release { dev; off } ->
          Hashtbl.remove (dev_state dev).dyn_exempt off
      | Pr.Exempt_push { dev } ->
          let ds = dev_state dev in
          ds.exempt_depth <- ds.exempt_depth + 1
      | Pr.Exempt_pop { dev } ->
          let ds = dev_state dev in
          ds.exempt_depth <- max 0 (ds.exempt_depth - 1)
      | Pr.Pool_layout _ | Pr.Journal_truncate _ | Pr.Drop_apply _
      | Pr.Recovery_phase _ ->
          (* Geometry and protocol-progress events for the conformance
             checker; the sanitizer's rules key off the coarser events. *)
          ())

(* {1 Lifecycle} *)

let reset_state () =
  Hashtbl.reset devs;
  Hashtbl.reset txs;
  Hashtbl.reset seen;
  found := [];
  next_tx := 0

let reset () =
  Mutex.lock lock;
  reset_state ();
  Mutex.unlock lock

let enable () =
  Mutex.lock lock;
  reset_state ();
  active := true;
  Mutex.unlock lock;
  Pr.install on_event

let disable () =
  Mutex.lock lock;
  active := false;
  Mutex.unlock lock;
  Pr.uninstall ()

let enabled () = !active

(* {1 Exemptions} *)

let exempt ~dev ~off ~len =
  Mutex.lock lock;
  (match Hashtbl.find_opt user_exempt dev with
  | Some r -> r := (off, len) :: !r
  | None -> Hashtbl.add user_exempt dev (ref [ (off, len) ]));
  Mutex.unlock lock

let unexempt ~dev ~off ~len =
  Mutex.lock lock;
  (match Hashtbl.find_opt user_exempt dev with
  | Some r -> r := List.filter (fun x -> x <> (off, len)) !r
  | None -> ());
  Mutex.unlock lock

(* {1 Findings and reports} *)

let all_findings () =
  Mutex.lock lock;
  let r = List.rev !found in
  Mutex.unlock lock;
  r

let violations () = List.filter (fun f -> not (is_warning f.cls)) (all_findings ())
let warnings () = List.filter (fun f -> is_warning f.cls) (all_findings ())
let violation_count () = List.length (violations ())
let warning_count () = List.length (warnings ())
let clean () = violation_count () = 0

let finding_text f =
  Printf.sprintf "psan: %s %s: dev=%d off=%d len=%d%s ns=%.0f — %s [%s]"
    (if is_warning f.cls then "warning" else "violation")
    (class_name f.cls) f.dev f.off f.len
    (match f.tx with Some i -> Printf.sprintf " tx=%d" i | None -> "")
    f.ns (class_title f.cls) f.detail

let counts_by_class fs =
  List.map
    (fun c -> (c, List.length (List.filter (fun f -> f.cls = c) fs)))
    [ V1; V2; V3; V4; V5; W1; W2 ]

(* Violations are always printed in full; warning lines are capped so a
   long sweep (hundreds of short-lived devices, each re-reporting the
   same benign redundant flush) stays readable.  The JSON report and
   [warnings ()] are never truncated. *)
let max_warning_lines = 20

let report_text () =
  let fs = all_findings () in
  let b = Buffer.create 256 in
  let printed_warnings = ref 0 in
  List.iter
    (fun f ->
      if not (is_warning f.cls) then begin
        Buffer.add_string b (finding_text f);
        Buffer.add_char b '\n'
      end
      else begin
        incr printed_warnings;
        if !printed_warnings <= max_warning_lines then begin
          Buffer.add_string b (finding_text f);
          Buffer.add_char b '\n'
        end
      end)
    fs;
  if !printed_warnings > max_warning_lines then
    Buffer.add_string b
      (Printf.sprintf "psan: ... %d more warning(s) not shown\n"
         (!printed_warnings - max_warning_lines));
  let vs = List.filter (fun f -> not (is_warning f.cls)) fs in
  let ws = List.filter (fun f -> is_warning f.cls) fs in
  if vs = [] then
    Buffer.add_string b
      (Printf.sprintf "psan: clean (%d warning%s)\n" (List.length ws)
         (if List.length ws = 1 then "" else "s"))
  else begin
    Buffer.add_string b
      (Printf.sprintf "psan: %d violation(s), %d warning(s):" (List.length vs)
         (List.length ws));
    List.iter
      (fun (c, n) ->
        if n > 0 then
          Buffer.add_string b (Printf.sprintf " %s=%d" (class_name c) n))
      (counts_by_class fs);
    Buffer.add_char b '\n'
  end;
  Buffer.contents b

let finding_json f =
  Json.Obj
    ([
       ("class", Json.Str (class_name f.cls));
       ("title", Json.Str (class_title f.cls));
       ("dev", Json.Num (float_of_int f.dev));
       ("off", Json.Num (float_of_int f.off));
       ("len", Json.Num (float_of_int f.len));
     ]
    @ (match f.tx with
      | Some i -> [ ("tx", Json.Num (float_of_int i)) ]
      | None -> [])
    @ [ ("ns", Json.Num f.ns); ("detail", Json.Str f.detail) ])

let report_json () =
  let fs = all_findings () in
  let vs = List.filter (fun f -> not (is_warning f.cls)) fs in
  let ws = List.filter (fun f -> is_warning f.cls) fs in
  Json.to_string
    (Json.Obj
       [
         ("violations", Json.List (List.map finding_json vs));
         ("warnings", Json.List (List.map finding_json ws));
         ( "summary",
           Json.Obj
             (List.map
                (fun (c, n) -> (class_name c, Json.Num (float_of_int n)))
                (counts_by_class fs)
             @ [ ("clean", Json.Bool (vs = [])) ]) );
       ])
