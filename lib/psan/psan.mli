(** Online persist-ordering and logging sanitizer.

    Psan subscribes to the {!Ptelemetry.Probe} bus and replays every
    store, flush and fence through a shadow state machine per 64-byte
    line (Clean → Dirty → write-pending → durable), tracking in
    parallel which heap ranges the open transaction has undo-logged or
    freshly allocated.  It judges the event stream online and reports
    each violation with the offset, the line's shadow state, the owning
    transaction, and the simulated time — Corundum's static guarantees,
    checked dynamically against the actual event order (DESIGN.md §10).

    {2 Violation classes}

    - {b V1} [unlogged-store]: in-place store inside a transaction to
      heap data with no covering undo-log entry or same-transaction
      allocation.  Rollback would not restore it.
    - {b V2} [missing-flush]: a range stored by the transaction is
      still dirty (never flushed) at the commit point.  A crash after
      commit loses supposedly-committed data.
    - {b V3} [missing-fence]: a range stored by the transaction was
      flushed but sits in the write-pending queue at the commit point —
      no fence ordered it before commit, so it may still be lost.
    - {b V4} [store-outside-tx]: store to pool heap data outside any
      transaction (no rollback protocol is in effect at all).
    - {b V5} [use-after-retire]: store into a block a committed CoW
      root swap retired ({!Ptelemetry.Probe.Cow_retire}) before the
      allocator reissued it.  The old version is gone from the object
      graph; the store can corrupt a block the allocator may hand out
      concurrently.

    {2 Warnings} (waste, not corruption)

    - {b W1} [redundant-flush]: a flush over lines none of which held
      unwritten-back data.
    - {b W2} [redundant-fence]: back-to-back fences with an empty
      write-pending queue.

    Journal slots, the allocation table and the pool header are
    protocol regions and statically exempt (everything below the heap);
    journal spill regions inside the heap are exempted dynamically for
    their lifetime, and recovery's out-of-transaction restores are
    exempt inside the [Exempt_push]/[Exempt_pop] bracket.  User escape
    hatches ({!Punsafe}) are accommodated with {!exempt}.

    Findings are deduplicated per (class, device, line). *)

type violation_class = V1 | V2 | V3 | V4 | V5 | W1 | W2

val class_name : violation_class -> string
(** ["V1"] … ["W2"]. *)

val class_title : violation_class -> string
(** Short human label, e.g. ["unlogged in-place store in transaction"]. *)

val is_warning : violation_class -> bool
(** True for W1/W2. *)

type finding = {
  cls : violation_class;
  dev : int;  (** {!Pmem.Device.id} of the offending device *)
  off : int;  (** byte offset of the offending range (line-clipped) *)
  len : int;
  tx : int option;  (** psan's id of the owning transaction, if any *)
  ns : float;  (** simulated time of the judgement *)
  detail : string;  (** line shadow state and what was expected *)
}

(** {1 Lifecycle} *)

val enable : unit -> unit
(** Reset all shadow state and findings, then subscribe to the probe
    bus (replacing any other subscriber).  User exemptions registered
    with {!exempt} survive.

    Enable {e before} creating or attaching pools: psan learns each
    device's heap bounds from its [Pool_attach] event, and stores on a
    device attached while psan was off are not monitored. *)

val disable : unit -> unit
(** Unsubscribe.  Findings remain readable until the next {!enable} or
    {!reset}. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Clear shadow state and findings (keeps the subscription and the
    user exemptions). *)

(** {1 Exemptions} *)

val exempt : dev:int -> off:int -> len:int -> unit
(** Declare [off, off+len) on device [dev] as deliberately outside the
    transactional protocol (a {!Punsafe} region).  Stores there raise
    no V1/V4 and are not checked at commit.  May be called before the
    pool is attached or psan is enabled; survives {!reset} and power
    cycles. *)

val unexempt : dev:int -> off:int -> len:int -> unit
(** Remove an exact range previously passed to {!exempt}. *)

(** {1 Findings} *)

val violations : unit -> finding list
(** V1–V5 findings, oldest first. *)

val warnings : unit -> finding list
(** W1/W2 findings, oldest first. *)

val violation_count : unit -> int
val warning_count : unit -> int

val clean : unit -> bool
(** [violation_count () = 0] — warnings do not spoil cleanliness. *)

(** {1 Reports} *)

val report_text : unit -> string
(** Human-readable report: one line per finding plus a summary.  Ends
    with ["psan: clean"] when there are no violations. *)

val report_json : unit -> string
(** [{"violations": […], "warnings": […], "summary": {…}}] with
    per-class counts and a ["clean"] flag in the summary. *)
