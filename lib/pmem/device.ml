exception Crashed

let line_size = 64
let line_shift = 6

(* Per-line cache state, stored one byte per line. *)
let st_clean = '\000'
let st_dirty = '\001'
let st_flushed = '\002' (* snapshot in WPQ, no store since the flush *)
let st_flushed_dirty = '\003' (* snapshot in WPQ, line re-dirtied since *)

type t = {
  id : int; (* process-unique; lets subscribers key state per device *)
  size : int;
  nlines : int;
  latency : Latency.t;
  path : string option;
  durable : Bytes.t; (* what survives a power failure *)
  view : Bytes.t; (* what loads observe (durable + cached stores) *)
  state : Bytes.t; (* one state byte per line *)
  wpq : (int, Bytes.t) Hashtbl.t; (* line number -> 64-byte snapshot *)
  lock : Mutex.t; (* protects wpq, state transitions in flush/fence *)
  mutable rng : Random.State.t;
  mutable crashed : bool;
  mutable crash_countdown : int; (* <= 0 means disabled *)
  mutable torn_write_prob : float; (* chance a failing WPQ line lands torn *)
  persist_pts : int Atomic.t;
  loads : int Atomic.t;
  stores : int Atomic.t;
  flushes : int Atomic.t;
  flush_calls : int Atomic.t;
  fences : int Atomic.t;
  fence_lines : int Atomic.t;
  alloc_steps : int Atomic.t;
  extra_ns : int Atomic.t;
  torn_lines : int Atomic.t;
  corrupted_lines : int Atomic.t;
}

type stats = {
  loads : int;
  stores : int;
  flushes : int;
  flush_calls : int;
  fences : int;
  fence_lines : int;
  alloc_steps : int;
  extra_ns : int;
  torn_lines : int;
  corrupted_lines : int;
}

let round_up_lines size = (size + line_size - 1) / line_size * line_size

let next_id = Atomic.make 0

let create ?(latency = Latency.zero) ?(seed = 0xC0FFEE) ?path ~size () =
  if size <= 0 then invalid_arg "Device.create: size must be positive";
  let size = round_up_lines size in
  {
    id = Atomic.fetch_and_add next_id 1;
    size;
    nlines = size / line_size;
    latency;
    path;
    durable = Bytes.make size '\000';
    view = Bytes.make size '\000';
    state = Bytes.make (size / line_size) st_clean;
    wpq = Hashtbl.create 256;
    lock = Mutex.create ();
    rng = Random.State.make [| seed |];
    crashed = false;
    crash_countdown = 0;
    torn_write_prob = 0.0;
    persist_pts = Atomic.make 0;
    loads = Atomic.make 0;
    stores = Atomic.make 0;
    flushes = Atomic.make 0;
    flush_calls = Atomic.make 0;
    fences = Atomic.make 0;
    fence_lines = Atomic.make 0;
    alloc_steps = Atomic.make 0;
    extra_ns = Atomic.make 0;
    torn_lines = Atomic.make 0;
    corrupted_lines = Atomic.make 0;
  }

let id t = t.id
let size t = t.size
let latency t = t.latency
let path t = t.path
let is_crashed t = t.crashed

let check_alive t = if t.crashed then raise Crashed

let check_range t off len what =
  if off < 0 || len < 0 || off + len > t.size then
    invalid_arg
      (Printf.sprintf "Device.%s: range [%d, %d) outside [0, %d)" what off
         (off + len) t.size)

(* {1 Accounting} *)

let stats (t : t) =
  {
    loads = Atomic.get t.loads;
    stores = Atomic.get t.stores;
    flushes = Atomic.get t.flushes;
    flush_calls = Atomic.get t.flush_calls;
    fences = Atomic.get t.fences;
    fence_lines = Atomic.get t.fence_lines;
    alloc_steps = Atomic.get t.alloc_steps;
    extra_ns = Atomic.get t.extra_ns;
    torn_lines = Atomic.get t.torn_lines;
    corrupted_lines = Atomic.get t.corrupted_lines;
  }

let reset_stats (t : t) =
  Atomic.set t.loads 0;
  Atomic.set t.stores 0;
  Atomic.set t.flushes 0;
  Atomic.set t.flush_calls 0;
  Atomic.set t.fences 0;
  Atomic.set t.fence_lines 0;
  Atomic.set t.alloc_steps 0;
  Atomic.set t.extra_ns 0;
  Atomic.set t.torn_lines 0;
  Atomic.set t.corrupted_lines 0

let simulated_ns (t : t) =
  let s = stats t and m = t.latency in
  (float_of_int s.loads *. m.Latency.read_ns)
  +. (float_of_int s.stores *. m.Latency.write_ns)
  +. (float_of_int s.flush_calls *. m.Latency.flush_ns)
  +. (float_of_int (max 0 (s.flushes - s.flush_calls)) *. m.Latency.flush_bulk_ns)
  +. (float_of_int s.fences *. m.Latency.fence_base_ns)
  +. (float_of_int s.fence_lines *. m.Latency.fence_per_line_ns)
  +. (float_of_int s.alloc_steps *. m.Latency.alloc_step_ns)
  +. float_of_int s.extra_ns

let charge_ns (t : t) n = ignore (Atomic.fetch_and_add t.extra_ns n)
let charge_alloc_steps (t : t) n = ignore (Atomic.fetch_and_add t.alloc_steps n)

(* {1 Telemetry}

   Emission sites fire only when a trace subscriber is installed
   (one atomic load + branch otherwise) and never touch the stat
   counters, so instrumentation cannot move the simulated clock. *)

module Tr = Ptelemetry.Trace
module Pr = Ptelemetry.Probe

(* Semantic probe for online auditors (psan): same gate discipline as
   [Tr] — one atomic load and no event construction when nothing is
   subscribed.  [simulated_ns] is a pure fold over the stat counters,
   so reading it for the event payload cannot move the clock. *)
let probe_store t off len =
  Pr.emit (Pr.Store { dev = t.id; off; len; ns = simulated_ns t })

(* Per-access events are behind the [`All] detail level — they flood. *)
let emit_access t name off len =
  Tr.emit
    ~args:[ ("off", string_of_int off); ("len", string_of_int len) ]
    ~cat:"device" ~name ~ph:Tr.I ~ts_ns:(simulated_ns t) ()

(* Mark every line intersecting [off, off+len) as dirtied by a store. *)
let mark_dirty t off len =
  let first = off lsr line_shift and last = (off + len - 1) lsr line_shift in
  for l = first to last do
    match Bytes.unsafe_get t.state l with
    | c when c = st_clean -> Bytes.unsafe_set t.state l st_dirty
    | c when c = st_flushed -> Bytes.unsafe_set t.state l st_flushed_dirty
    | _ -> ()
  done

(* {1 Loads} *)

let read_u8 t off =
  check_alive t;
  check_range t off 1 "read_u8";
  Atomic.incr t.loads;
  if Tr.verbose () then emit_access t "load" off 1;
  Char.code (Bytes.unsafe_get t.view off)

let read_u32 t off =
  check_alive t;
  check_range t off 4 "read_u32";
  Atomic.incr t.loads;
  if Tr.verbose () then emit_access t "load" off 4;
  Int32.to_int (Bytes.get_int32_le t.view off) land 0xFFFFFFFF

let read_u64 t off =
  check_alive t;
  check_range t off 8 "read_u64";
  Atomic.incr t.loads;
  if Tr.verbose () then emit_access t "load" off 8;
  Bytes.get_int64_le t.view off

let read_bytes t off len =
  check_alive t;
  check_range t off len "read_bytes";
  Atomic.incr t.loads;
  if Tr.verbose () then emit_access t "load" off len;
  Bytes.sub t.view off len

let read_string t off len = Bytes.unsafe_to_string (read_bytes t off len)

(* {1 Stores} *)

let write_u8 t off v =
  check_alive t;
  check_range t off 1 "write_u8";
  Atomic.incr t.stores;
  Bytes.unsafe_set t.view off (Char.unsafe_chr (v land 0xFF));
  mark_dirty t off 1;
  if Pr.on () then probe_store t off 1;
  if Tr.verbose () then emit_access t "store" off 1

let write_u32 t off v =
  check_alive t;
  check_range t off 4 "write_u32";
  Atomic.incr t.stores;
  Bytes.set_int32_le t.view off (Int32.of_int v);
  mark_dirty t off 4;
  if Pr.on () then probe_store t off 4;
  if Tr.verbose () then emit_access t "store" off 4

let write_u64 t off v =
  check_alive t;
  check_range t off 8 "write_u64";
  Atomic.incr t.stores;
  Bytes.set_int64_le t.view off v;
  mark_dirty t off 8;
  if Pr.on () then probe_store t off 8;
  if Tr.verbose () then emit_access t "store" off 8

let write_bytes t off b =
  check_alive t;
  let len = Bytes.length b in
  check_range t off len "write_bytes";
  if len > 0 then begin
    Atomic.incr t.stores;
    Bytes.blit b 0 t.view off len;
    mark_dirty t off len;
    if Pr.on () then probe_store t off len;
    if Tr.verbose () then emit_access t "store" off len
  end

let write_string t off s =
  check_alive t;
  let len = String.length s in
  check_range t off len "write_string";
  if len > 0 then begin
    Atomic.incr t.stores;
    Bytes.blit_string s 0 t.view off len;
    mark_dirty t off len;
    if Pr.on () then probe_store t off len;
    if Tr.verbose () then emit_access t "store" off len
  end

let fill t off len c =
  check_alive t;
  check_range t off len "fill";
  if len > 0 then begin
    Atomic.incr t.stores;
    Bytes.fill t.view off len c;
    mark_dirty t off len;
    if Pr.on () then probe_store t off len;
    if Tr.verbose () then emit_access t "store" off len
  end

let copy_within t ~src ~dst ~len =
  check_alive t;
  check_range t src len "copy_within(src)";
  check_range t dst len "copy_within(dst)";
  if len > 0 then begin
    Atomic.incr t.loads;
    Atomic.incr t.stores;
    Bytes.blit t.view src t.view dst len;
    mark_dirty t dst len;
    if Pr.on () then probe_store t dst len;
    if Tr.verbose () then emit_access t "copy" dst len
  end

(* {1 Persist points and crash scheduling} *)

(* Replace the survival RNG; used by the failure injector to sample
   several WPQ-survival outcomes at the same crash point. *)
let reseed t seed =
  Mutex.lock t.lock;
  t.rng <- Random.State.make [| seed |];
  Mutex.unlock t.lock

let set_crash_countdown t n =
  Mutex.lock t.lock;
  t.crash_countdown <- n;
  Mutex.unlock t.lock

let set_torn_write_prob t p =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg "Device.set_torn_write_prob: probability outside [0, 1]";
  Mutex.lock t.lock;
  t.torn_write_prob <- p;
  Mutex.unlock t.lock

let torn_write_prob t = t.torn_write_prob

let persist_points t = Atomic.get t.persist_pts

(* Must be called with [t.lock] held.  Counts a persist point and raises
   if the scheduled crash lands on it; the caller's operation must not have
   taken effect yet. *)
let persist_point_locked t =
  Atomic.incr t.persist_pts;
  if t.crash_countdown > 0 then begin
    t.crash_countdown <- t.crash_countdown - 1;
    if t.crash_countdown = 0 then begin
      t.crashed <- true;
      Mutex.unlock t.lock;
      raise Crashed
    end
  end

let snapshot_line t l =
  let off = l lsl line_shift in
  Bytes.sub t.view off (min line_size (t.size - off))

let flush t off len =
  check_alive t;
  check_range t off len "flush";
  if len > 0 then begin
    Mutex.lock t.lock;
    persist_point_locked t;
    Atomic.incr t.flush_calls;
    let first = off lsr line_shift and last = (off + len - 1) lsr line_shift in
    for l = first to last do
      Atomic.incr t.flushes;
      match Bytes.unsafe_get t.state l with
      | c when c = st_dirty || c = st_flushed_dirty ->
          Hashtbl.replace t.wpq l (snapshot_line t l);
          Bytes.unsafe_set t.state l st_flushed
      | _ -> ()
    done;
    Mutex.unlock t.lock;
    if Pr.on () then Pr.emit (Pr.Flush { dev = t.id; off; len; ns = simulated_ns t });
    if Tr.on () then begin
      let lines = last - first + 1 and m = t.latency in
      let dur =
        m.Latency.flush_ns
        +. (float_of_int (lines - 1) *. m.Latency.flush_bulk_ns)
      in
      Tr.emit
        ~args:[ ("off", string_of_int off); ("lines", string_of_int lines) ]
        ~cat:"device" ~name:"flush" ~ph:(Tr.X dur)
        ~ts_ns:(simulated_ns t -. dur) ()
    end
  end

(* WPQ entries in ascending line order.  Draining through a sorted list
   (rather than [Hashtbl.iter], whose order depends on hashing history)
   makes fence semantics and — more importantly — the RNG consumption of
   [power_cycle] deterministic for a given seed, so torn-write injection
   sweeps are bit-reproducible across runs. *)
let wpq_sorted t =
  let entries = Hashtbl.fold (fun l snap acc -> (l, snap) :: acc) t.wpq [] in
  List.sort (fun (a, _) (b, _) -> compare a b) entries

let fence t =
  check_alive t;
  Mutex.lock t.lock;
  persist_point_locked t;
  Atomic.incr t.fences;
  let drained = ref 0 in
  let drain (l, snap) =
    Atomic.incr t.fence_lines;
    incr drained;
    Bytes.blit snap 0 t.durable (l lsl line_shift) (Bytes.length snap);
    match Bytes.unsafe_get t.state l with
    | c when c = st_flushed -> Bytes.unsafe_set t.state l st_clean
    | c when c = st_flushed_dirty -> Bytes.unsafe_set t.state l st_dirty
    | _ -> ()
  in
  List.iter drain (wpq_sorted t);
  Hashtbl.reset t.wpq;
  Mutex.unlock t.lock;
  if Pr.on () then Pr.emit (Pr.Fence { dev = t.id; ns = simulated_ns t });
  if Tr.on () then begin
    let m = t.latency in
    let dur =
      m.Latency.fence_base_ns
      +. (float_of_int !drained *. m.Latency.fence_per_line_ns)
    in
    Tr.emit
      ~args:[ ("lines", string_of_int !drained) ]
      ~cat:"device" ~name:"fence" ~ph:(Tr.X dur)
      ~ts_ns:(simulated_ns t -. dur) ()
  end

let persist t off len =
  flush t off len;
  fence t

let power_cycle t =
  Mutex.lock t.lock;
  (* Lines sitting in the WPQ at power failure may or may not have reached
     media; decide each one independently.  With a torn-write probability
     set, a line's write-back can additionally be interrupted mid-line:
     media guarantees 8-byte atomicity only, so each u64 word of the line
     independently lands new or stays old. *)
  let maybe_drain (l, snap) =
    let off = l lsl line_shift in
    let len = Bytes.length snap in
    if t.torn_write_prob > 0.0 && Random.State.float t.rng 1.0 < t.torn_write_prob
    then begin
      Atomic.incr t.torn_lines;
      let w = ref 0 in
      while !w < len do
        let n = min 8 (len - !w) in
        if Random.State.bool t.rng then Bytes.blit snap !w t.durable (off + !w) n;
        w := !w + 8
      done
    end
    else if Random.State.bool t.rng then Bytes.blit snap 0 t.durable off len
  in
  List.iter maybe_drain (wpq_sorted t);
  Hashtbl.reset t.wpq;
  Bytes.blit t.durable 0 t.view 0 t.size;
  Bytes.fill t.state 0 t.nlines st_clean;
  t.crashed <- false;
  (* The crash countdown is a harness injection knob, not device state:
     it survives the power cycle so a test can arm a crash that fires
     inside the recovery the cycle triggers.  (After a fired crash it is
     already 0, so ordinary crash-and-reopen sequences are unaffected.) *)
  Mutex.unlock t.lock;
  if Pr.on () then Pr.emit (Pr.Power_cycle { dev = t.id })

(* {1 Media corruption (bit rot)} *)

(* Flip one RNG-chosen bit of the durable byte at [off] — a scrub-visible
   media fault, below the cache.  The volatile view only reflects the rot
   when the containing line holds no cached store (a dirty or write-pending
   line masks the media until its next write-back). *)
let corrupt_line t off =
  check_range t off 1 "corrupt_line";
  Mutex.lock t.lock;
  let bit = 1 lsl Random.State.int t.rng 8 in
  let flipped = Char.chr (Char.code (Bytes.get t.durable off) lxor bit) in
  Bytes.set t.durable off flipped;
  let line = off lsr line_shift in
  if Bytes.get t.state line = st_clean && not (Hashtbl.mem t.wpq line) then
    Bytes.set t.view off flipped;
  Atomic.incr t.corrupted_lines;
  Mutex.unlock t.lock

(* {1 File backing} *)

let magic = "CORUNDUM-PMEM-V1"

let save t =
  match t.path with
  | None -> invalid_arg "Device.save: device has no backing path"
  | Some path ->
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc magic;
          let hdr = Bytes.create 8 in
          Bytes.set_int64_le hdr 0 (Int64.of_int t.size);
          output_bytes oc hdr;
          output_bytes oc t.durable)

let load ?(latency = Latency.zero) ?(seed = 0xC0FFEE) path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if not (String.equal m magic) then
        invalid_arg (Printf.sprintf "Device.load: %s is not a pmem image" path);
      let hdr = Bytes.create 8 in
      really_input ic hdr 0 8;
      let size = Int64.to_int (Bytes.get_int64_le hdr 0) in
      let t = create ~latency ~seed ~path ~size () in
      really_input ic t.durable 0 size;
      Bytes.blit t.durable 0 t.view 0 size;
      t)
