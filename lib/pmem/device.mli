(** Simulated byte-addressable persistent-memory device.

    The device models the part of the memory hierarchy that matters for
    crash consistency on real PM hardware:

    - stores land in a volatile {e line cache} (the CPU cache);
    - {!flush} writes a 64-byte line back into a {e write-pending queue}
      (the behaviour of [clflushopt] without an ordering fence);
    - {!fence} drains the write-pending queue to durable media ([sfence]);
    - a power failure ({!power_cycle} after a scheduled {!Crashed}) keeps
      durable media, keeps a {e random subset} of the write-pending queue
      (lines flushed but not yet fenced may or may not have reached media),
      and discards everything else.

    Durable contents can be saved to / loaded from a backing file so that
    pools survive process restarts, mirroring DAX-mmap files.

    Time is simulated analytically: every operation bumps a counter and
    {!simulated_ns} folds the counters through a {!Latency.t} model, so
    microbenchmark results are deterministic and hardware-independent. *)

exception Crashed
(** Raised at a persist point when the scheduled crash countdown reaches
    zero.  After it is raised every subsequent access raises {!Crashed}
    again until {!power_cycle} is called, so no code can "survive" the
    simulated power failure by catching the exception. *)

type t

val line_size : int
(** Cache-line size in bytes (64). *)

val create : ?latency:Latency.t -> ?seed:int -> ?path:string -> size:int -> unit -> t
(** [create ~size ()] makes a device of [size] bytes (rounded up to a whole
    number of lines), zero-filled and durable.  [latency] defaults to
    {!Latency.zero}.  [path] names an optional backing file used by
    {!save} and {!load}. *)

val id : t -> int
(** Process-unique device id, assigned at {!create} (and therefore also
    by {!load}).  Carried by {!Ptelemetry.Probe} events so auditors can
    key shadow state per device without holding the device itself. *)

val size : t -> int
val latency : t -> Latency.t
val path : t -> string option

(** {1 Loads and stores}

    All offsets are byte offsets from the start of the device.  Loads read
    the volatile view (cache); stores dirty the affected lines.  Out-of-range
    accesses raise [Invalid_argument]. *)

val read_u8 : t -> int -> int
val read_u32 : t -> int -> int
val read_u64 : t -> int -> int64
val read_bytes : t -> int -> int -> Bytes.t
val read_string : t -> int -> int -> string
val write_u8 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit
val write_u64 : t -> int -> int64 -> unit
val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit
val fill : t -> int -> int -> char -> unit
val copy_within : t -> src:int -> dst:int -> len:int -> unit
(** [copy_within t ~src ~dst ~len] reads [len] bytes at [src] and stores
    them at [dst] (a load followed by a store; both sides are cache ops). *)

(** {1 Persistence primitives} *)

val flush : t -> int -> int -> unit
(** [flush t off len] writes back every line intersecting [off, off+len)
    into the write-pending queue ([clflushopt]). *)

val fence : t -> unit
(** Drain the write-pending queue to durable media ([sfence]). *)

val persist : t -> int -> int -> unit
(** [persist t off len] = [flush t off len; fence t]. *)

(** {1 Crash injection} *)

val set_crash_countdown : t -> int -> unit
(** [set_crash_countdown t n] schedules {!Crashed} to be raised at the
    [n]-th subsequent persist point (a {!flush} or {!fence} call); [n <= 0]
    disables the schedule.  Crashing {e at} a persist point means the
    point's effect does not happen.  An armed countdown survives
    {!power_cycle}, so a crash can be scheduled to fire inside the
    recovery that follows a power cycle (nested recovery crashes). *)

val persist_points : t -> int
(** Number of persist points executed so far; drives exhaustive crash
    enumeration in the failure-injection harness. *)

val is_crashed : t -> bool

val reseed : t -> int -> unit
(** Replace the RNG that decides which write-pending lines survive a
    power failure — the failure injector uses it to sample several
    survival outcomes at the same crash point. *)

val power_cycle : t -> unit
(** Apply power-failure semantics: each write-pending line independently
    survives with probability 1/2 (device RNG); dirty lines are lost; the
    volatile view is re-read from durable media; the device becomes usable
    again.  Idempotent on a non-crashed device (it simply drops volatile
    state, which also models a restart without a crash).

    With a nonzero {!set_torn_write_prob}, a write-pending line's
    write-back can additionally be {e torn} by the failure: media
    guarantees 8-byte atomicity only, so each u64 word of the line
    independently lands new or stays old. *)

(** {1 Media faults} *)

val set_torn_write_prob : t -> float -> unit
(** Probability, per write-pending line at a power failure, that the
    line's write-back is torn at 8-byte granularity instead of landing or
    failing whole.  0 (the default) restores the all-or-nothing model.
    Raises [Invalid_argument] outside [0, 1]. *)

val torn_write_prob : t -> float

val corrupt_line : t -> int -> unit
(** [corrupt_line t off] flips one RNG-chosen bit of the durable byte at
    [off] — simulated media bit rot, below the cache.  The volatile view
    reflects the rot only when the containing line holds no cached store
    (a dirty or write-pending line masks the media until its next
    write-back).  Works on crashed devices (rot needs no power). *)

(** {1 Durability across processes} *)

val save : t -> unit
(** Write durable media to the backing file.  Raises [Invalid_argument] if
    the device has no [path]. *)

val load : ?latency:Latency.t -> ?seed:int -> string -> t
(** [load path] recreates a device from a file written by {!save}. *)

(** {1 Accounting} *)

type stats = {
  loads : int;
  stores : int;
  flushes : int;  (** line write-backs *)
  flush_calls : int;  (** flush invocations (bulk-discount accounting) *)
  fences : int;
  fence_lines : int;  (** lines drained by fences *)
  alloc_steps : int;  (** buddy split/merge steps charged by the allocator *)
  extra_ns : int;  (** ad-hoc charges *)
  torn_lines : int;  (** WPQ lines torn at power failures *)
  corrupted_lines : int;  (** bit-rot faults injected via {!corrupt_line} *)
}

val stats : t -> stats

val reset_stats : t -> unit
(** Zero {e every} field of {!stats} — traffic counters, latency
    charges, and the media-fault counters ([torn_lines],
    [corrupted_lines]) alike — so a benchmark window opened after a
    fault-injection phase starts clean.  Two things deliberately
    survive a reset: {!persist_points} (it sequences crash scheduling,
    not accounting, and resetting it would silently shift a pending
    {!set_crash_countdown}), and the media state itself (resetting
    counters does not un-tear or un-rot any line).  {!simulated_ns}
    restarts from zero since it is derived from the counters. *)

val simulated_ns : t -> float
(** Simulated elapsed time under the device's latency model. *)

val charge_ns : t -> int -> unit
(** Add an ad-hoc simulated cost (used sparingly; see DESIGN.md). *)

val charge_alloc_steps : t -> int -> unit
(** Charge [n] buddy split/merge steps. *)
