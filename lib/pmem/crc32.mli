(** CRC-32 (IEEE 802.3) checksums for on-media metadata.

    A checksum always fits in the low 32 bits of an OCaml [int], so
    values can be packed into spare halves of u64 metadata words. *)

val bytes : ?off:int -> ?len:int -> Bytes.t -> int
(** Checksum of [len] bytes starting at [off] (defaults: the whole
    buffer).  Raises [Invalid_argument] on an out-of-range slice. *)

val string : ?off:int -> ?len:int -> string -> int

(** {1 Incremental interface} *)

val seed : int
(** Initial accumulator. *)

val update : int -> int -> int
(** [update acc byte] folds one byte (0..255) into the accumulator. *)

val finish : int -> int
(** Finalize an accumulator into the checksum value. *)
