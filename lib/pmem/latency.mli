(** Latency models for the simulated persistent-memory device.

    The device does not sleep; it accounts simulated time analytically from
    operation counts (see {!Device.simulated_ns}).  The presets are
    calibrated so that the microbenchmark harness reproduces the relative
    shape of Table 5 of the Corundum paper (ASPLOS '21): Optane is slower
    than battery-backed DRAM for media writes, cached loads are sub-ns, and
    a flush+fence pair dominates small persists. *)

type t = {
  name : string;  (** preset name, e.g. ["optane"] *)
  read_ns : float;  (** cost of one load (cache hit assumed) *)
  write_ns : float;  (** cost of one store into the cache *)
  flush_ns : float;  (** cost of the first line write-back in a flush call *)
  flush_bulk_ns : float;
      (** cost of each additional line in the same flush call — pipelined
          [clflushopt]s overlap, so bulk write-back is much cheaper per
          line than an isolated one *)
  fence_base_ns : float;  (** fixed cost of an [sfence] *)
  fence_per_line_ns : float;
      (** additional fence cost per write-pending-queue line drained; models
          the media write bandwidth difference between Optane and DRAM *)
  alloc_step_ns : float;
      (** cost charged per buddy split/merge step; models allocator metadata
          traffic that the byte-table design elides (see DESIGN.md sec. 4) *)
}

val optane : t
(** Calibrated against Intel Optane DC numbers in Table 5. *)

val dram : t
(** Calibrated against the battery-backed DRAM column of Table 5. *)

val zero : t
(** Free operations; useful for functional tests where time is irrelevant. *)

val by_name : string -> t option
(** [by_name "optane"] returns the preset of that name. *)

val all : t list
