type t = {
  name : string;
  read_ns : float;
  write_ns : float;
  flush_ns : float;
  flush_bulk_ns : float;
  fence_base_ns : float;
  fence_per_line_ns : float;
  alloc_step_ns : float;
}

(* Calibration notes.  Table 5 of the paper reports (Optane / DRAM):
   Deref 0.9/1.0 ns, DerefMut-1st 467/235 ns, Alloc(8B) 734/241 ns,
   TxNop 198/198 ns, DataLog(8B) 574/253 ns.  A first-time DerefMut is
   one data log: allocate log space, copy old bytes, then seal with a
   single persist covering the entry and its tail terminator (the header
   entry count is advisory and only written at commit).  With
   flush+fence ~ (flush_ns + fence_base + per_line) per persist and one
   persist per log entry, the per-persist charge stays ~180 ns on Optane
   and ~90 ns on DRAM; the sealing persist now simply covers one more
   word, and the count's share of the paper's DataLog figure moved into
   the commit-time advisory write.  TxNop is pure volatile bookkeeping
   in the paper (pre-allocated journals); we charge the fixed
   transaction entry/exit cost in the journal layer instead.

   Steady-state per-transaction persist budget (corundum engine), after
   coalescing the allocation-table lines into the commit fence and
   skipping the advisory drop count when a transaction frees nothing:
   update = 3 flushes / 3 fences (seal, commit targets, truncate);
   alloc+write = 4 / 3 (one extra mark-line flush rides the commit
   fence); free = 4 / 3 (drop-area flush rides the commit fence, the
   clear-line flush rides the truncate fence).  Table marks and clears
   are dirty-only at mutation time — they only become durable under a
   commit or truncate fence — so the allocator adds flushes, never
   fences, to a transaction. *)

let optane =
  {
    name = "optane";
    read_ns = 0.9;
    write_ns = 1.0;
    flush_ns = 100.0;
    flush_bulk_ns = 20.0;
    fence_base_ns = 80.0;
    fence_per_line_ns = 30.0;
    alloc_step_ns = 55.0;
  }

let dram =
  {
    name = "dram";
    read_ns = 1.0;
    write_ns = 1.0;
    flush_ns = 50.0;
    flush_bulk_ns = 8.0;
    fence_base_ns = 40.0;
    fence_per_line_ns = 12.0;
    alloc_step_ns = 20.0;
  }

let zero =
  {
    name = "zero";
    read_ns = 0.0;
    write_ns = 0.0;
    flush_ns = 0.0;
    flush_bulk_ns = 0.0;
    fence_base_ns = 0.0;
    fence_per_line_ns = 0.0;
    alloc_step_ns = 0.0;
  }

let all = [ optane; dram; zero ]
let by_name n = List.find_opt (fun m -> String.equal m.name n) all
