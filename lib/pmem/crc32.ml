(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), table-driven.  Used to
   guard on-media metadata (journal entries, pool header) against torn
   writes and bit rot.  Plain OCaml ints: a CRC always fits in 32 bits. *)

let polynomial = 0xEDB88320

(* Eager, not [lazy]: the table is forced from every domain that
   persists metadata, and concurrently forcing a shared lazy raises
   CamlinternalLazy.Undefined under OCaml 5.  256 iterations at module
   init is cheaper than any synchronization on the hot path. *)
let table =
  Array.init 256 (fun n ->
      let c = ref n in
      for _ = 0 to 7 do
        c := if !c land 1 = 1 then polynomial lxor (!c lsr 1) else !c lsr 1
      done;
      !c)

let update crc byte =
  Array.unsafe_get table ((crc lxor byte) land 0xFF) lxor (crc lsr 8)

let seed = 0xFFFFFFFF
let finish crc = crc lxor 0xFFFFFFFF

let bytes ?(off = 0) ?len b =
  let len = match len with Some l -> l | None -> Bytes.length b - off in
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Crc32.bytes: range outside the buffer";
  let crc = ref seed in
  for i = off to off + len - 1 do
    crc := update !crc (Char.code (Bytes.unsafe_get b i))
  done;
  finish !crc

let string ?off ?len s = bytes ?off ?len (Bytes.unsafe_of_string s)
