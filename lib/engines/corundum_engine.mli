(** The Corundum strategy: cell-granularity deduplicated undo logging
    with deferred frees.  The typed API logs a whole [PRefCell] on first
    mutable deref; for the raw-heap workloads (whose nodes are one or two
    cache lines) the containing line is the faithful granularity.
    Deduplication is a per-transaction hash table — nearly free, unlike
    PMDK's range tree.  Stores into a block allocated by the current
    transaction need no undo entry at all (the fresh-allocation
    optimization behind [AtomicInit]). *)

include Engine_sig.S
