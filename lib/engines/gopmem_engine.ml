(** The go-pmem strategy: undo logging (as in its [txn] package) plus the
    Go runtime's costs — a write barrier on every store into the
    persistent heap, and a periodic stop-the-world garbage-collection
    sweep whose length grows with the number of live persistent objects
    (go-pmem extends Go's GC to scan the persistent heap). *)

module P = Corundum.Pool_impl
module D = Pmem.Device

let name = "go-pmem"

let write_barrier_ns = 18
let sweep_period = 512 (* allocations between emulated GC cycles *)
let sweep_ns_per_block = 35

type t = { p : P.t; mutable allocs_since_gc : int }
type tx = { ptx : P.tx; eng : t }

let create ?latency ?size () =
  { p = Engine_common.create_pool ?latency ?size (); allocs_since_gc = 0 }

let of_pool p = { p; allocs_since_gc = 0 }
let pool t = t.p

let transaction t f = P.transaction t.p (fun ptx -> f { ptx; eng = t })

let alloc tx n =
  let eng = tx.eng in
  eng.allocs_since_gc <- eng.allocs_since_gc + 1;
  if eng.allocs_since_gc >= sweep_period then begin
    eng.allocs_since_gc <- 0;
    let live = Palloc.Heap_walk.live_count (P.buddy eng.p) in
    D.charge_ns (P.device eng.p) (live * sweep_ns_per_block)
  end;
  Engine_common.alloc tx.ptx n

let free tx off = Engine_common.free tx.ptx off
let read tx off = Engine_common.read tx.ptx off

let write tx off v =
  D.charge_ns (P.device (P.tx_pool tx.ptx)) write_barrier_ns;
  Engine_common.line_log tx.ptx off;
  Engine_common.raw_write tx.ptx off v

let root tx = Engine_common.root tx.ptx
let set_root tx off = Engine_common.set_root tx.ptx off

let lock tx off = Engine_common.lock tx.ptx off
