module Pr = Ptelemetry.Probe
module Json = Ptelemetry.Json

type op_waste = {
  op : string;
  ops : int;
  events : Pr.event list;
  report : Pprof.report;
}

(* The same windows as [Attribution.measure], run under a probe capture.
   Each window is analyzed alone; everything before it (pool creation,
   the root transaction, earlier windows) is prelude — it evolves the
   analyzer's shadow state but is neither counted nor attributed. *)
let measure_capture ?(size = 16 * 1024 * 1024) ?(ops = 64)
    (module E : Engine_sig.S) =
  Pprof.Capture.start ();
  Fun.protect
    ~finally:(fun () -> if Pprof.Capture.active () then ignore (Pprof.Capture.stop ()))
    (fun () ->
      let t = E.create ~size () in
      let root =
        E.transaction t (fun tx ->
            let r = E.alloc tx 64 in
            E.set_root tx r;
            r)
      in
      let prelude = ref (Pprof.Capture.cut ()) in
      let window op f =
        for i = 1 to ops do
          f i
        done;
        let events = Pprof.Capture.cut () in
        let report = Pprof.analyze ~label:op ~prelude:!prelude events in
        prelude := !prelude @ events;
        { op; ops; events; report }
      in
      let update =
        window "update" (fun i ->
            E.transaction t (fun tx -> E.write tx root (Int64.of_int i)))
      in
      let blocks = Array.make ops 0 in
      let alloc =
        window "alloc+write" (fun i ->
            E.transaction t (fun tx ->
                let b = E.alloc tx 64 in
                E.write tx b (Int64.of_int i);
                blocks.(i - 1) <- b))
      in
      let free =
        window "free" (fun i ->
            E.transaction t (fun tx -> E.free tx blocks.(i - 1)))
      in
      (* After the last window [prelude] has accumulated the whole run
         in order — a self-contained stream a saved capture can replay
         without the live pool. *)
      (!prelude, [ update; alloc; free ]))

let measure ?size ?ops e = snd (measure_capture ?size ?ops e)

let class_summary r =
  let parts =
    List.filter_map
      (fun (cls, fl, fe) ->
        if fl = 0 && fe = 0 then None
        else
          let counts =
            List.filter_map Fun.id
              [
                (if fl > 0 then Some (Printf.sprintf "%df" fl) else None);
                (if fe > 0 then Some (Printf.sprintf "%dF" fe) else None);
              ]
          in
          Some
            (Printf.sprintf "%s:%s" (Pprof.class_name cls)
               (String.concat "+" counts)))
      (Pprof.waste_by_class r.report)
  in
  if parts = [] then "-" else String.concat " " parts

let table columns =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-12s %17s %17s %11s  %s\n" "engine" "op"
       "flushes/op (min)" "fences/op (min)" "waste/op" "classes");
  Buffer.add_string buf (String.make 78 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (engine, rows) ->
      List.iter
        (fun w ->
          let per x = float_of_int x /. float_of_int (max 1 w.ops) in
          let r = w.report in
          Buffer.add_string buf
            (Printf.sprintf "%-12s %-12s %9.2f (%5.2f) %9.2f (%5.2f) %5.2ff %4.2fF  %s\n"
               engine w.op
               (per r.Pprof.actual_flushes)
               (per r.Pprof.min_flushes)
               (per r.Pprof.actual_fences)
               (per r.Pprof.min_fences)
               (per (Pprof.waste_flushes r))
               (per (Pprof.waste_fences r))
               (class_summary w)))
        rows)
    columns;
  Buffer.contents buf

let waste_json columns =
  let num i = Json.Num (float_of_int i) in
  let row w =
    let r = w.report in
    let per x = float_of_int x /. float_of_int (max 1 w.ops) in
    let by_class =
      List.filter_map
        (fun (cls, fl, fe) ->
          if fl = 0 && fe = 0 then None
          else Some (Pprof.class_name cls, Json.List [ num fl; num fe ]))
        (Pprof.waste_by_class r)
    in
    Json.Obj
      [
        ("op", Json.Str w.op);
        ("ops", num w.ops);
        ("txs", num r.Pprof.txs);
        ("actual_flushes", num r.Pprof.actual_flushes);
        ("min_flushes", num r.Pprof.min_flushes);
        ("waste_flushes", num (Pprof.waste_flushes r));
        ("actual_fences", num r.Pprof.actual_fences);
        ("min_fences", num r.Pprof.min_fences);
        ("waste_fences", num (Pprof.waste_fences r));
        ("waste_flushes_per_op", Json.Num (per (Pprof.waste_flushes r)));
        ("waste_fences_per_op", Json.Num (per (Pprof.waste_fences r)));
        ("by_class", Json.Obj by_class);
      ]
  in
  Json.Obj
    [
      ("schema", Json.Str "corundum-waste-v1");
      ( "engines",
        Json.Obj
          (List.map
             (fun (engine, rows) -> (engine, Json.List (List.map row rows)))
             columns) );
    ]
