(** The PMDK ([libpmemobj]) strategy: [TX_ADD]-style undo snapshots at
    cache-line granularity.  Deduplication and range tracking go through
    pmemobj's balanced range tree, paid on {e every} store ([TX_ADD] is
    called before each write), which is where Corundum's hash-table dedup
    pulls ahead.  Memory returned by [pmemobj_tx_alloc] needs no snapshot,
    so fresh blocks skip logging here too. *)

include Engine_sig.S
