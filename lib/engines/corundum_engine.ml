(** The Corundum strategy: cell-granularity deduplicated undo logging
    with deferred frees.  The typed API logs a whole [PRefCell] on first
    mutable deref; for the raw-heap workloads (whose nodes are one or two
    cache lines) the containing line is the faithful granularity.
    Deduplication is a per-transaction hash table — nearly free, unlike
    PMDK's range tree.  Stores into a block allocated by the current
    transaction need no undo entry at all (the fresh-allocation
    optimization behind [AtomicInit]). *)

module P = Corundum.Pool_impl

let name = "corundum"

type t = P.t

type tx = { ptx : P.tx; mutable fresh : (int * int) list (* start, size *) }

let create ?latency ?size () = Engine_common.create_pool ?latency ?size ()
let of_pool p = p
let pool t = t
let transaction t f = P.transaction t (fun ptx -> f { ptx; fresh = [] })

let alloc tx n =
  let off = Engine_common.alloc tx.ptx n in
  tx.fresh <- (off, n) :: tx.fresh;
  off

let free tx off = Engine_common.free tx.ptx off
let read tx off = Engine_common.read tx.ptx off

let in_fresh tx off =
  List.exists (fun (start, size) -> off >= start && off < start + size) tx.fresh

let write tx off v =
  (if Engine_common.Fault_profile.get () = Engine_common.Fault_profile.Missing_log
   then
     (* buggy variant: treat every store as fresh — no undo entry ever *)
     P.tx_add_target tx.ptx ~off ~len:8
   else if in_fresh tx off then
     (* fresh block: no undo needed, just make it durable at commit *)
     P.tx_add_target tx.ptx ~off ~len:8
   else Engine_common.line_log tx.ptx off);
  Engine_common.raw_write tx.ptx off v

let root tx = Engine_common.root tx.ptx
let set_root tx off = Engine_common.set_root tx.ptx off

let lock tx off = Engine_common.lock tx.ptx off
