(** The PMDK ([libpmemobj]) strategy: [TX_ADD]-style undo snapshots at
    cache-line granularity.  Deduplication and range tracking go through
    pmemobj's balanced range tree, paid on {e every} store ([TX_ADD] is
    called before each write), which is where Corundum's hash-table dedup
    pulls ahead.  Memory returned by [pmemobj_tx_alloc] needs no snapshot,
    so fresh blocks skip logging here too. *)

module P = Corundum.Pool_impl
module D = Pmem.Device

let name = "pmdk"

(* Cost of one pmemobj_tx_add_range call: range-tree lookup/insert. *)
let tx_add_overhead_ns = 90

type t = P.t
type tx = { ptx : P.tx; mutable fresh : (int * int) list }

let create ?latency ?size () = Engine_common.create_pool ?latency ?size ()
let of_pool p = p
let pool t = t
let transaction t f = P.transaction t (fun ptx -> f { ptx; fresh = [] })

let alloc tx n =
  let off = Engine_common.alloc tx.ptx n in
  tx.fresh <- (off, n) :: tx.fresh;
  off

let free tx off = Engine_common.free tx.ptx off
let read tx off = Engine_common.read tx.ptx off

let in_fresh tx off =
  List.exists (fun (start, size) -> off >= start && off < start + size) tx.fresh

let write tx off v =
  if in_fresh tx off then P.tx_add_target tx.ptx ~off ~len:8
  else begin
    D.charge_ns (P.device (P.tx_pool tx.ptx)) tx_add_overhead_ns;
    Engine_common.line_log tx.ptx off
  end;
  Engine_common.raw_write tx.ptx off v

let root tx = Engine_common.root tx.ptx
let set_root tx off = Engine_common.set_root tx.ptx off

let lock tx off = Engine_common.lock tx.ptx off
