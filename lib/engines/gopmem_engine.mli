(** The go-pmem strategy: undo logging (as in its [txn] package) plus the
    Go runtime's costs — a write barrier on every store into the
    persistent heap, and a periodic stop-the-world garbage-collection
    sweep whose length grows with the number of live persistent objects
    (go-pmem extends Go's GC to scan the persistent heap). *)

include Engine_sig.S
