(** Per-engine persist-waste measurement: {!Attribution}'s canonical
    operation windows, profiled through {!Pprof} instead of raw counter
    deltas.

    Where {!Attribution.measure} reports what each operation {e cost},
    this module reports how much of that cost the minimal crash-safe
    schedule actually {e required} — the [actual / minimum / waste]
    triple per engine and operation, with every excess persist carrying
    a stable elision class (E1–E4).  The windows are byte-identical to
    attribution's (same pool size, same 64 single-op transactions per
    window: root update, 64-byte alloc+initialise, free), so the two
    tables line up row for row.

    Capturing installs the probe subscriber for the duration
    ({!Pprof.Capture}), so don't call this with {!Psan} enabled; replay
    the captured [events] into psan afterwards if both views are
    wanted. *)

type op_waste = {
  op : string;  (** window label: ["update"], ["alloc+write"], ["free"] *)
  ops : int;  (** transactions in the window *)
  events : Ptelemetry.Probe.event list;  (** the window's captured stream *)
  report : Pprof.report;  (** analysis of exactly this window *)
}

val measure_capture :
  ?size:int ->
  ?ops:int ->
  Engine_sig.engine ->
  Ptelemetry.Probe.event list * op_waste list
(** Like {!measure}, additionally returning the {e whole} captured
    stream in order — pool creation and root transaction included — so
    it can be saved as a self-contained [corundum-probe-v1] capture
    and re-analyzed offline ([pprof_cli report/replay]). *)

val measure : ?size:int -> ?ops:int -> Engine_sig.engine -> op_waste list
(** [measure e] runs the attribution windows on a fresh pool (default
    16 MiB, 64 ops/window) under a probe capture and analyzes each
    window against the minimal schedule.  Pool creation and the
    root-allocation transaction feed the analyzer as prelude (shadow
    state only, not counted), as does each earlier window for the
    later ones. *)

val table : (string * op_waste list) list -> string
(** Render engine columns into a per-operation text table of actual,
    minimal and wasted flushes/fences per op, with a by-class summary
    of the waste. *)

val waste_json : (string * op_waste list) list -> Ptelemetry.Json.t
(** [{"schema": "corundum-waste-v1", "engines": {name: [{op, ops,
    actual_flushes, min_flushes, waste_flushes, actual_fences,
    min_fences, waste_fences, waste_flushes_per_op,
    waste_fences_per_op, by_class: {E1: [f, F], …}}, …]}}] — the shape
    the bench baseline gate compares. *)
