(** The raw persistent-heap interface shared by all comparator engines.

    The paper's Figure 1 compares the same data-structure algorithms
    implemented against PMDK, Atlas, Mnemosyne, go-pmem and Corundum.  We
    mirror that methodology: the workloads ({!Workloads.Bst},
    {!Workloads.Kvstore}, {!Workloads.Bptree}) are functors over this
    signature, and each engine implements the signature with that
    library's {e logging strategy}:

    - {!Corundum_engine}: exact-range undo logging with per-transaction
      deduplication; deferred frees (this library's own journal).
    - {!Pmdk_engine}: [libpmemobj]-style [TX_ADD] — undo snapshots at
      cache-line granularity (coarser log traffic than Corundum's exact
      ranges).
    - {!Atlas_engine}: failure-atomic sections — one synchronously
      persisted undo entry {e and} a synchronous write-back per store.
    - {!Mnemosyne_engine}: write-aside redo logging — stores go to a log
      and a volatile write-set; loads pay read-indirection; the write-set
      is applied to home locations at commit.
    - {!Gopmem_engine}: undo logging plus Go runtime costs — a write
      barrier per store and periodic stop-the-world GC sweeps proportional
      to the live heap.

    All engines run on the same simulated device, allocator and journal
    substrate, so measured differences come from the strategy, not from
    incidental implementation quality.  Timings are read from the
    device's calibrated simulated clock. *)

module type S = sig
  val name : string

  type t
  type tx

  val create : ?latency:Pmem.Latency.t -> ?size:int -> unit -> t
  (** A fresh in-memory pool (default 64 MiB, Optane latency model). *)

  val of_pool : Corundum.Pool_impl.t -> t
  (** Wrap an existing pool — e.g. one reopened after a crash. *)

  val pool : t -> Corundum.Pool_impl.t
  val transaction : t -> (tx -> 'a) -> 'a
  val alloc : tx -> int -> int
  val free : tx -> int -> unit
  val read : tx -> int -> int64
  val write : tx -> int -> int64 -> unit
  val root : tx -> int
  (** Offset of the workload's root block (0 when unset). *)

  val set_root : tx -> int -> unit

  val lock : tx -> int -> unit
  (** Acquire the pool-level volatile lock keyed by an offset, held until
      the outermost transaction ends (reentrant within one transaction).
      Purely volatile — no persist cost — so single-domain runs are
      byte-for-byte unchanged; shared-pool workloads use it to keep
      concurrent transactions off the same structure region. *)
end

type engine = (module S)
