(** The Mnemosyne strategy: write-aside (redo) logging.  A store appends a
    persistent log record and lands in a volatile write-set; the home
    location is untouched until commit.  Loads must consult the write-set
    first (read indirection).  At commit the write-set is applied to the
    home locations and persisted.

    The log record is modelled by an undo entry of equal size on the same
    journal substrate (identical media traffic); the write-set and its
    commit-time application are real. *)

include Engine_sig.S
