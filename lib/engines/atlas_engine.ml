(** The Atlas strategy: lock-based failure-atomic sections.  Atlas
    publishes an undo entry synchronously for {e every} store (no
    deduplication — its log is keyed by program point, not by address)
    and writes the store itself back synchronously so the log's
    happens-before graph stays recoverable.  That is one logged entry
    plus one extra flush+fence per store. *)

module P = Corundum.Pool_impl
module D = Pmem.Device

let name = "atlas"

(* Per-store cost of Atlas's FASE machinery beyond the log write itself:
   happens-before tracking and the log-structure maintenance its
   helper thread must prune later. *)
let fase_overhead_ns = 150

type t = P.t
type tx = P.tx

let create ?latency ?size () = Engine_common.create_pool ?latency ?size ()
let of_pool p = p
let pool t = t
let transaction = Engine_common.transaction
let alloc = Engine_common.alloc
let free = Engine_common.free
let read = Engine_common.read

let write tx off v =
  D.charge_ns (P.device (P.tx_pool tx)) fase_overhead_ns;
  P.tx_log_nodedup tx ~off ~len:8;
  Engine_common.raw_write tx off v;
  (* Synchronous write-back of the store (Atlas's eager durability). *)
  D.persist (P.device (P.tx_pool tx)) off 8

let root = Engine_common.root
let set_root = Engine_common.set_root

let lock = Engine_common.lock
