(** The Atlas strategy: lock-based failure-atomic sections.  Atlas
    publishes an undo entry synchronously for {e every} store (no
    deduplication — its log is keyed by program point, not by address)
    and writes the store itself back synchronously so the log's
    happens-before graph stays recoverable.  That is one logged entry
    plus one extra flush+fence per store. *)

include Engine_sig.S
