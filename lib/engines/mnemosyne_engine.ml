(** The Mnemosyne strategy: write-aside (redo) logging.  A store appends a
    persistent log record and lands in a volatile write-set; the home
    location is untouched until commit.  Loads must consult the write-set
    first (read indirection).  At commit the write-set is applied to the
    home locations and persisted.

    The log record is modelled by an undo entry of equal size on the same
    journal substrate (identical media traffic); the write-set and its
    commit-time application are real. *)

module P = Corundum.Pool_impl
module D = Pmem.Device

let name = "mnemosyne"

(* Write-set costs beyond media traffic: every load checks the write-set
   (read indirection), every store maintains it and the torn-bit encoding
   of Mnemosyne's raw word log. *)
let read_indirection_ns = 20
let log_append_ns = 60

type t = P.t

type tx = { ptx : P.tx; wset : (int, int64) Hashtbl.t }

let create ?latency ?size () = Engine_common.create_pool ?latency ?size ()
let of_pool p = p
let pool t = t

let transaction t f =
  P.transaction t (fun ptx ->
      (* Redo logging never needs a per-record seal fence: home stores
         stay volatile until commit, so every entry seal of this
         transaction collapses into one log-tail flush+fence right
         before the commit plan (see {!Journal_impl.set_defer_seals}).
         This removes the E1 write-back waste the persist profiler
         used to classify on the alloc+write path. *)
      Pjournal.Journal_impl.set_defer_seals (P.tx_journal ptx) true;
      let tx = { ptx; wset = Hashtbl.create 64 } in
      let result = f tx in
      (* Commit: apply the write-set to home locations.  The locations
         were logged at store time, so the substrate commit will flush
         them. *)
      Hashtbl.iter
        (fun off v -> D.write_u64 (P.device (P.tx_pool ptx)) off v)
        tx.wset;
      result)

let alloc tx n = Engine_common.alloc tx.ptx n
let free tx off = Engine_common.free tx.ptx off

let read tx off =
  D.charge_ns (P.device (P.tx_pool tx.ptx)) read_indirection_ns;
  match Hashtbl.find_opt tx.wset off with
  | Some v -> v
  | None -> Engine_common.read tx.ptx off

let write tx off v =
  (* One persistent log record per store; home location deferred. *)
  D.charge_ns (P.device (P.tx_pool tx.ptx)) log_append_ns;
  P.tx_log_nodedup tx.ptx ~off ~len:8;
  Hashtbl.replace tx.wset off v

let root tx = Engine_common.root tx.ptx
let set_root tx off = Engine_common.set_root tx.ptx off

let lock tx off = Engine_common.lock tx.ptx off
