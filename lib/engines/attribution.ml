module P = Corundum.Pool_impl
module D = Pmem.Device

type row = {
  op : string;
  ops : int;
  flushes : int;
  fences : int;
  logged_bytes : int;
  sim_ns : float;
}

let measure ?(size = 16 * 1024 * 1024) ?(ops = 64) (module E : Engine_sig.S) =
  let t = E.create ~size () in
  let pool = E.pool t in
  let dev = P.device pool in
  let root =
    E.transaction t (fun tx ->
        let r = E.alloc tx 64 in
        E.set_root tx r;
        r)
  in
  let window op f =
    let s0 = D.stats dev in
    let ns0 = D.simulated_ns dev in
    let lb0 = (P.stats pool).P.logged_bytes in
    for i = 1 to ops do
      f i
    done;
    let s1 = D.stats dev in
    {
      op;
      ops;
      flushes = s1.D.flush_calls - s0.D.flush_calls;
      fences = s1.D.fences - s0.D.fences;
      logged_bytes = (P.stats pool).P.logged_bytes - lb0;
      sim_ns = D.simulated_ns dev -. ns0;
    }
  in
  let update =
    window "update" (fun i ->
        E.transaction t (fun tx -> E.write tx root (Int64.of_int i)))
  in
  let blocks = Array.make ops 0 in
  let alloc =
    window "alloc+write" (fun i ->
        E.transaction t (fun tx ->
            let b = E.alloc tx 64 in
            E.write tx b (Int64.of_int i);
            blocks.(i - 1) <- b))
  in
  let free =
    window "free" (fun i ->
        E.transaction t (fun tx -> E.free tx blocks.(i - 1)))
  in
  [ update; alloc; free ]

(* The canonical raw-pool probe mix: every transaction performs one
   logged 64-byte update of a scratch block; every fourth additionally
   allocates and initialises a fresh 64-byte block (the fresh-allocation
   path); the scratch block is freed in a final transaction.  Shared by
   [pool_info top] and [perf --attr] so both surfaces measure the same
   workload. *)
let probe_pool ?(probes = 32) pool =
  let d = P.device pool in
  let scratch = P.transaction pool (fun tx -> P.tx_alloc tx 256) in
  for i = 1 to probes do
    P.transaction pool (fun tx ->
        P.tx_log tx ~off:scratch ~len:64;
        D.write_u64 d scratch (Int64.of_int i);
        if i mod 4 = 0 then begin
          let b = P.tx_alloc tx 64 in
          D.write_u64 d b (Int64.of_int i);
          P.tx_add_target tx ~off:b ~len:8
        end)
  done;
  P.transaction pool (fun tx -> P.tx_free tx scratch)

type probe_summary = {
  probe_txs : int;
  flushes_per_tx : float;
  fences_per_tx : float;
  logged_per_tx : float;
}

let probe_summary ?probes pool =
  let d = P.device pool in
  let s0 = D.stats d in
  let p0 = P.stats pool in
  probe_pool ?probes pool;
  let s1 = D.stats d in
  let p1 = P.stats pool in
  let txs =
    p1.P.transactions + p1.P.aborts - p0.P.transactions - p0.P.aborts
  in
  let per v = float_of_int v /. float_of_int (max 1 txs) in
  {
    probe_txs = txs;
    flushes_per_tx = per (s1.D.flush_calls - s0.D.flush_calls);
    fences_per_tx = per (s1.D.fences - s0.D.fences);
    logged_per_tx = per (p1.P.logged_bytes - p0.P.logged_bytes);
  }

let table columns =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%-12s %-12s %11s %10s %13s %12s\n" "engine" "op"
       "flushes/op" "fences/op" "logged B/op" "sim ns/op");
  Buffer.add_string buf (String.make 74 '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun (engine, rows) ->
      List.iter
        (fun r ->
          let per x = float_of_int x /. float_of_int (max 1 r.ops) in
          Buffer.add_string buf
            (Printf.sprintf "%-12s %-12s %11.2f %10.2f %13.1f %12.1f\n" engine
               r.op (per r.flushes) (per r.fences) (per r.logged_bytes)
               (r.sim_ns /. float_of_int (max 1 r.ops))))
        rows)
    columns;
  Buffer.contents buf
