(** All comparator engines, in the order Figure 1 of the paper lists
    them. *)

let all : (string * Engine_sig.engine) list =
  [
    (Pmdk_engine.name, (module Pmdk_engine : Engine_sig.S));
    (Atlas_engine.name, (module Atlas_engine : Engine_sig.S));
    (Mnemosyne_engine.name, (module Mnemosyne_engine : Engine_sig.S));
    (Gopmem_engine.name, (module Gopmem_engine : Engine_sig.S));
    (Corundum_engine.name, (module Corundum_engine : Engine_sig.S));
    (Mod_engine.name, (module Mod_engine : Engine_sig.S));
  ]

let find name = List.assoc_opt name all
