(** The minimally-ordered CoW strategy (the "mod" engine): no undo log
    on the hot path.

    Every store is classified once, volatilely:

    - into a block this transaction reserved → a {e shadow} store,
      written in place immediately (the block is unreachable until
      commit, so it needs no coverage beyond its allocation);
    - anywhere else → a {e publish}: the 8-byte word is recorded
      (address, old, new) in a volatile write-set and applied to its
      home location only {e after} the commit fence, redo-covered by
      the sealed intent record.

    Commit interprets {!Pjournal.Protocol.cow_commit_plan}: the intent
    record (allocated/retired blocks, publish words, the new root
    pointer) is sealed under its own fence {e first} — so a durable
    allocation mark implies a durable intent.  The seal alternates
    between the cell's two record slots (generation parity), so the
    predecessor's intent survives until a fence has drained its
    unfenced commit tail — overwriting a single slot could destroy the
    only record able to roll that tail forward.  Then shadow lines and
    table marks are flushed as coalesced runs under the single commit
    fence, then the publish words and the packed root word land
    unfenced (buffered durability: the next fence from any transaction,
    or recovery's roll-forward, completes them).  Retired blocks add a
    trailing fence ordering the swap before their table clears.

    Per-op persist cost at the fence floor: an in-place update is
    3 flushes / 1 fence (intent, publish word, root word — the commit
    fence doubles as the seal); alloc+write is 4 flushes / 2 fences;
    free is 3 flushes / 2 fences.  There is no per-store logging, no
    log truncation, and no undo restore on any path.

    Recovery ({!Corundum.Cow_root.recover}, run at pool attach)
    compares the intent generation against the root word's and rolls
    the transaction forward (commit word or first publish word landed)
    or back (orphaned marks cleared) with idempotent durable stores.

    The root word holds the root block's {e actual} offset — the root
    is never relocated, so its address may be captured freely inside
    the structure (a B+-tree demoting its root to an interior node is
    sound).  Writers serialize on one engine-level mutex; {!lock} is
    therefore a no-op.  The generation wraps at 2^24: a crash landing
    exactly on a wrapping transaction rolls it back silently — noted,
    not defended. *)

module P = Corundum.Pool_impl
module R = Corundum.Cow_root
module B = Palloc.Buddy
module D = Pmem.Device
module Pr = Ptelemetry.Probe
module Proto = Pjournal.Protocol

let name = "mod"
let cell = 0

(* The volatile write-set of one open transaction. *)
type pending = {
  mutable resvs : (B.reservation * int * int) list;  (* res, off, size *)
  mutable frees : (int * int * int) list;  (* off, order, size *)
  mutable pub_order : int list;  (* publish addresses, newest first *)
  pub_old : (int, int64) Hashtbl.t;
  pub_new : (int, int64) Hashtbl.t;  (* read-own-writes view *)
  shadow_lines : (int, unit) Hashtbl.t;  (* device line numbers to flush *)
  mutable pending_root : int option;
  mutable marked : bool;  (* reservations committed to the table *)
  mutable spill : B.reservation option;  (* this commit's spill block *)
}

type t = {
  pool : P.t;
  mutable ptr : int;  (* root block offset, 0 = unset *)
  mutable gen : int;
  prev_spill : B.reservation option array;
      (* per intent slot: the last sealed record's spill block, held
         un-reusable until the next seal overwrites that slot —
         recovery may still need to read it *)
  mu : Mutex.t;
  open_txs : (int, pending) Hashtbl.t;  (* domain id -> open tx *)
}

type tx = { eng : t; px : pending }

let of_pool pool =
  let ptr, gen = R.read cell (P.device pool) in
  {
    pool;
    ptr;
    gen;
    prev_spill = Array.make R.slots None;
    mu = Mutex.create ();
    open_txs = Hashtbl.create 4;
  }

let create ?latency ?size () =
  of_pool (Engine_common.create_pool ?latency ?size ())

let pool t = t.pool

let fresh_pending () =
  {
    resvs = [];
    frees = [];
    pub_order = [];
    pub_old = Hashtbl.create 8;
    pub_new = Hashtbl.create 8;
    shadow_lines = Hashtbl.create 8;
    pending_root = None;
    marked = false;
    spill = None;
  }

(* {1 The write-set} *)

let read tx off =
  match Hashtbl.find_opt tx.px.pub_new off with
  | Some v -> v
  | None -> D.read_u64 (P.device tx.eng.pool) off

let in_resv px off =
  List.exists (fun (_, o, s) -> off >= o && off < o + s) px.resvs

let write tx off v =
  let px = tx.px in
  let dev = P.device tx.eng.pool in
  if in_resv px off then begin
    D.write_u64 dev off v;
    Hashtbl.replace px.shadow_lines (off lsr 6) ()
  end
  else begin
    if not (Hashtbl.mem px.pub_old off) then begin
      px.pub_order <- off :: px.pub_order;
      Hashtbl.replace px.pub_old off (D.read_u64 dev off)
    end;
    Hashtbl.replace px.pub_new off v
  end

let alloc tx n =
  let b = P.buddy tx.eng.pool in
  let r = B.reserve b n in
  let off = B.offset_of_reservation b r in
  let size = B.size_of_order r.B.r_order in
  tx.px.resvs <- (r, off, size) :: tx.px.resvs;
  if Pr.on () then
    Pr.emit (Pr.Alloc { dev = D.id (P.device tx.eng.pool); off; len = size });
  off

let free tx off =
  let px = tx.px in
  let b = P.buddy tx.eng.pool in
  match List.partition (fun (_, o, _) -> o = off) px.resvs with
  | (r, o, s) :: _, rest ->
      (* own-transaction allocation: unwind it volatilely *)
      px.resvs <- rest;
      for l = o lsr 6 to (o + s - 1) lsr 6 do
        Hashtbl.remove px.shadow_lines l
      done;
      B.cancel b r
  | [], _ -> (
      match B.block_size b off with
      | None -> raise (B.Invalid_free off)
      | Some s -> px.frees <- (off, B.order_of_size s, s) :: px.frees)

let root tx =
  match tx.px.pending_root with Some o -> o | None -> tx.eng.ptr

let set_root tx off = tx.px.pending_root <- Some off

let lock _tx _off = ()  (* writers serialize on the engine mutex *)

(* {1 Commit: the cow_commit_plan, interpreted} *)

let commit t px =
  let dev = P.device t.pool and b = P.buddy t.pool in
  let devid = D.id dev in
  let new_ptr = match px.pending_root with Some o -> o | None -> t.ptr in
  (* Coalesced publish set, oldest-first.  No-op publishes are dropped —
     the first publish word doubles as the commit indicator, so it must
     actually change — and so are publishes into blocks this transaction
     retires (their home stores would land in freed memory). *)
  let pubs =
    List.fold_left
      (fun acc addr ->
        let oldv = Hashtbl.find px.pub_old addr
        and newv = Hashtbl.find px.pub_new addr in
        if oldv = newv then acc
        else if List.exists (fun (o, _, s) -> addr >= o && addr < o + s) px.frees
        then acc
        else (addr, oldv, newv) :: acc)
      [] px.pub_order
  in
  let has_allocs = px.resvs <> [] and has_frees = px.frees <> [] in
  let has_shadow = Hashtbl.length px.shadow_lines > 0 || pubs <> [] in
  if has_allocs || has_frees || has_shadow || px.pending_root <> None then begin
    let igen = (t.gen + 1) land R.gen_mask in
    let kind =
      match pubs with
      | [] -> if new_ptr = 0 then R.Gen_only else R.Swap new_ptr
      | ps -> R.Publish (new_ptr, ps)
    in
    let it =
      {
        R.igen;
        kind;
        allocs = List.map (fun (r, o, _) -> (o, r.B.r_order)) px.resvs;
        frees = List.map (fun (o, ord, _) -> (o, ord)) px.frees;
      }
    in
    let need_intent = has_allocs || has_frees || pubs <> [] in
    let slot = R.slot_of_igen igen in
    let sealed = ref false in
    let seal () =
      (* Redo coverage for the publish home stores, declared before the
         commit point (they land after it, replayable from the intent). *)
      if Pr.on () then
        List.iter
          (fun (addr, _, _) -> Pr.emit (Pr.Log { dev = devid; off = addr; len = 8 }))
          pubs;
      (if R.inline_ok it then R.write_intent cell dev it
       else begin
         let sr = B.reserve b (R.spill_bytes it) in
         px.spill <- Some sr;
         let soff = B.offset_of_reservation b sr in
         let crc = R.write_spill cell dev ~off:soff it in
         D.flush dev soff (R.spill_bytes it);
         R.write_intent_spilled cell dev ~spill_off:soff
           ~spill_order:sr.B.r_order ~content_crc:crc it
       end);
      R.flush_intent cell slot dev;
      (* this slot no longer references its previous spill block *)
      (match t.prev_spill.(slot) with Some r -> B.cancel b r | None -> ());
      t.prev_spill.(slot) <- None;
      sealed := true
    in
    let fenced = ref false and committed = ref false in
    let commit_point () =
      committed := true;
      if Pr.on () then
        Pr.emit (Pr.Commit_point { dev = devid; ns = D.simulated_ns dev })
    in
    let plan =
      Proto.cow_commit_plan ~allocs:has_allocs ~frees:has_frees
        ~shadow:has_shadow
    in
    List.iter
      (function
        | Proto.Seal_intent ->
            seal ();
            D.fence dev;
            fenced := true
        | Proto.Shadow_flush ->
            (* a publish-only transaction seals here: its intent rides
               the one flush batch under the commit fence *)
            if need_intent && not !sealed then seal ();
            List.iter
              (fun (r, _, _) ->
                B.commit b r;
                Hashtbl.replace px.shadow_lines (B.mark_line b r) ())
              px.resvs;
            px.marked <- true;
            Pjournal.Group_commit.flush_lines dev px.shadow_lines
        | Proto.Commit_fence ->
            D.fence dev;
            fenced := true;
            commit_point ()
        | Proto.Root_swap ->
            (* An intent-less bare swap (plan = [Root_swap] alone) still
               fences first: its w0 store is its own commit word, and
               without the fence that word shares the write-pending
               queue with the predecessor's unfenced tail — a crash
               could land this commit while dropping the predecessor's,
               breaking the monotone prefix order every other plan gets
               from its seal or commit fence. *)
            if not !fenced then begin
              D.fence dev;
              fenced := true
            end;
            if not !committed then commit_point ();
            if pubs <> [] then begin
              let publines = Hashtbl.create 8 in
              List.iter
                (fun (addr, _, v) ->
                  D.write_u64 dev addr v;
                  Hashtbl.replace publines (addr lsr 6) ())
                pubs;
              Pjournal.Group_commit.flush_lines dev publines
            end;
            R.store_swap cell dev ~ptr:new_ptr ~gen:igen;
            R.flush_swap cell dev
        | Proto.Retire_old ->
            D.fence dev;
            let clears = Hashtbl.create 4 in
            List.iter
              (fun (o, _, s) ->
                if Pr.on () then
                  Pr.emit (Pr.Cow_retire { dev = devid; off = o; len = s });
                B.dealloc ~durable:false b o;
                Hashtbl.replace clears (B.line_of_offset b o) ())
              px.frees;
            Pjournal.Group_commit.flush_lines dev clears
        | _ -> assert false)
      plan;
    t.prev_spill.(slot) <- px.spill;
    px.spill <- None;
    t.ptr <- new_ptr;
    t.gen <- igen
  end

(* Abort is purely volatile: nothing of an uncommitted transaction is
   reachable or durable, so unwinding the reservations is the whole
   job.  (If the failure struck after the marks were committed, the
   table bytes are deallocated instead — the sealed intent makes either
   state recoverable.) *)
let abort t px =
  let b = P.buddy t.pool in
  List.iter
    (fun (r, o, _) ->
      if px.marked then B.dealloc b o else B.cancel b r)
    px.resvs;
  match px.spill with Some r -> B.cancel b r | None -> ()

let transaction t f =
  P.check_open t.pool;
  let dom = (Domain.self () :> int) in
  match Hashtbl.find_opt t.open_txs dom with
  | Some px -> f { eng = t; px }  (* nesting flattens onto the outer tx *)
  | None ->
      Mutex.lock t.mu;
      let px = fresh_pending () in
      Hashtbl.replace t.open_txs dom px;
      let dev = P.device t.pool in
      let devid = D.id dev in
      if Pr.on () then
        Pr.emit (Pr.Tx_begin { dev = devid; ns = D.simulated_ns dev });
      let finish outcome =
        Hashtbl.remove t.open_txs dom;
        if Pr.on () then
          Pr.emit
            (Pr.Tx_end { dev = devid; outcome; ns = D.simulated_ns dev });
        Mutex.unlock t.mu
      in
      (match
         let v = f { eng = t; px } in
         commit t px;
         v
       with
      | v ->
          finish Pr.Commit;
          v
      | exception D.Crashed ->
          (* the media is gone; no volatile unwind matters *)
          finish Pr.Crash;
          raise D.Crashed
      | exception e ->
          (match abort t px with
          | () -> ()
          | exception D.Crashed ->
              finish Pr.Crash;
              raise D.Crashed);
          finish Pr.Abort;
          raise e)
