(** Per-engine flush/fence attribution.

    Runs a small canonical mix of transactions against an engine and
    charges the device traffic to the operation that caused it, using
    device-counter deltas around each window — the measurement mirrors
    the paper's Table 5 decomposition (how many flushes, fences and
    logged bytes one basic operation costs under each logging strategy).

    Everything is read from existing counters; no telemetry subscriber
    is required and the windows themselves add no device traffic. *)

type row = {
  op : string;  (** window label: ["update"], ["alloc+write"], ["free"] *)
  ops : int;  (** transactions in the window *)
  flushes : int;  (** {!Pmem.Device} flush calls charged to the window *)
  fences : int;
  logged_bytes : int;  (** journal entry bytes sealed in the window *)
  sim_ns : float;  (** simulated time spent in the window *)
}

val measure : ?size:int -> ?ops:int -> Engine_sig.engine -> row list
(** [measure e] runs [ops] (default 64) single-op transactions per
    window on a fresh pool (default 16 MiB): an 8-byte root update, a
    64-byte alloc-plus-initialise, and a free of those blocks. *)

val table : (string * row list) list -> string
(** Render engine columns into a per-operation text table of
    flushes/op, fences/op, logged bytes/op and simulated ns/op. *)

(** {1 Raw-pool probe workload}

    The canonical probe mix run directly against a {!Corundum.Pool_impl}
    pool — one logged 64-byte update per transaction, a fresh 64-byte
    allocation every fourth, a final free.  [pool_info top] and
    [perf --attr] both measure this same workload, so the two surfaces
    cannot drift apart. *)

val probe_pool : ?probes:int -> Corundum.Pool_impl.t -> unit
(** Run the probe mix ([probes] transactions, default 32) plus the
    scratch alloc/free bracketing transactions. *)

type probe_summary = {
  probe_txs : int;  (** transactions the probe ran *)
  flushes_per_tx : float;
  fences_per_tx : float;
  logged_per_tx : float;  (** journal entry bytes per transaction *)
}

val probe_summary : ?probes:int -> Corundum.Pool_impl.t -> probe_summary
(** {!probe_pool} bracketed by device/pool counter deltas. *)
