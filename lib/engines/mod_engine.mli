(** The minimally-ordered CoW engine ("mod"): shadow stores into
    own-transaction blocks, redo-covered 8-byte publishes elsewhere,
    commit by one packed root-word store at the fence floor — in-place
    update 1 fence, alloc+write 2, with no undo log on any path.  See
    {!Corundum.Cow_root} for the persistent commit word and recovery,
    and DESIGN.md §14 for the ordering argument. *)

include Engine_sig.S
