(* Shared plumbing for engines built over the Pool_impl substrate. *)

module P = Corundum.Pool_impl

let default_size = 64 * 1024 * 1024

let create_pool ?(latency = Pmem.Latency.optane) ?(size = default_size) () =
  (* Journals scale with the pool so small test pools stay viable. *)
  let slot_size = max (64 * 1024) (min (1024 * 1024) (size / 32)) in
  P.create ~config:{ P.size; nslots = 8; slot_size } ~latency ()

let transaction = P.transaction
let alloc = P.tx_alloc
let free = P.tx_free
let read tx off = Pmem.Device.read_u64 (P.device (P.tx_pool tx)) off
let raw_write tx off v = Pmem.Device.write_u64 (P.device (P.tx_pool tx)) off v
let root tx = P.root_off (P.tx_pool tx)
let set_root tx off = P.tx_set_root tx ~off ~ty_hash:0

(* Cache-line-granularity logging (PMDK's TX_ADD semantics): snapshot the
   whole 64-byte line containing the store.  Blocks are 64-byte aligned
   powers of two, so a line never crosses an allocation boundary. *)
let line_log tx off = P.tx_log tx ~off:(off land lnot 63) ~len:64

(* Deliberately-buggy engine variants: positive controls for the
   sanitizer, each eliding exactly one leg of the persistence protocol.
   Psan must flag them (V1/V2/V3 respectively) and the crash-injection
   sweep must observe the corruption they cause — the correlation that
   validates the sanitizer's verdicts against real crash outcomes. *)
module Fault_profile = struct
  type t =
    | Clean  (** the shipped protocol, no elision *)
    | Missing_log  (** in-place stores never undo-logged (V1) *)
    | Missing_flush  (** commit skips the data flushes (V2) *)
    | Missing_fence  (** commit skips its ordering fence (V3) *)

  let current = ref Clean

  let set p =
    current := p;
    match p with
    | Clean | Missing_log ->
        Pjournal.Journal_impl.set_fault_elision ~flush:false ~fence:false
    | Missing_flush ->
        Pjournal.Journal_impl.set_fault_elision ~flush:true ~fence:false
    | Missing_fence ->
        Pjournal.Journal_impl.set_fault_elision ~flush:false ~fence:true

  let get () = !current

  let name = function
    | Clean -> "clean"
    | Missing_log -> "missing-log"
    | Missing_flush -> "missing-flush"
    | Missing_fence -> "missing-fence"

  let all = [ Clean; Missing_log; Missing_flush; Missing_fence ]
end
