(* Shared plumbing for engines built over the Pool_impl substrate. *)

module P = Corundum.Pool_impl

let default_size = 64 * 1024 * 1024

let create_pool ?(latency = Pmem.Latency.optane) ?(size = default_size) () =
  (* Journals scale with the pool so small test pools stay viable. *)
  let slot_size = max (64 * 1024) (min (1024 * 1024) (size / 32)) in
  P.create ~config:{ P.size; nslots = 8; slot_size } ~latency ()

let transaction = P.transaction
let alloc = P.tx_alloc
let free = P.tx_free
let read tx off = Pmem.Device.read_u64 (P.device (P.tx_pool tx)) off
let raw_write tx off v = Pmem.Device.write_u64 (P.device (P.tx_pool tx)) off v
let root tx = P.root_off (P.tx_pool tx)
let set_root tx off = P.tx_set_root tx ~off ~ty_hash:0
let lock = P.tx_lock

(* Cache-line-granularity logging (PMDK's TX_ADD semantics): snapshot the
   whole 64-byte line containing the store.  Blocks are 64-byte aligned
   powers of two, so a line never crosses an allocation boundary. *)
let line_log tx off = P.tx_log tx ~off:(off land lnot 63) ~len:64

(* Deliberately-buggy engine variants: positive controls for the
   verification tooling.  The [Missing_*] profiles each elide one leg of
   the persistence protocol — Psan must flag them (V1/V2/V3) and the
   crash-injection sweep must observe the corruption they cause.  The
   [Double_*] profiles are the dual defect for the waste profiler: each
   repeats a persist primitive, staying crash-safe while burning
   flushes/fences the minimal schedule does not need — pprof must report
   the excess with a stable elision class (E2 / E1 respectively). *)
module Fault_profile = struct
  type t =
    | Clean  (** the shipped protocol, no elision *)
    | Missing_log  (** in-place stores never undo-logged (V1) *)
    | Missing_flush  (** commit skips the data flushes (V2) *)
    | Missing_fence  (** commit skips its ordering fence (V3) *)
    | Double_flush  (** commit re-flushes already-queued data (E2 waste) *)
    | Double_fence  (** commit fences thrice, two draining nothing (E1) *)

  let current = ref Clean

  let set p =
    current := p;
    let elide ~flush ~fence = Pjournal.Journal_impl.set_fault_elision ~flush ~fence in
    let dup ~flush ~fence = Pjournal.Journal_impl.set_fault_duplication ~flush ~fence in
    elide ~flush:false ~fence:false;
    dup ~flush:false ~fence:false;
    match p with
    | Clean | Missing_log -> ()
    | Missing_flush -> elide ~flush:true ~fence:false
    | Missing_fence -> elide ~flush:false ~fence:true
    | Double_flush -> dup ~flush:true ~fence:false
    | Double_fence -> dup ~flush:false ~fence:true

  let get () = !current

  let name = function
    | Clean -> "clean"
    | Missing_log -> "missing-log"
    | Missing_flush -> "missing-flush"
    | Missing_fence -> "missing-fence"
    | Double_flush -> "double-flush"
    | Double_fence -> "double-fence"

  (* [all] stays the unsafe set the crash sweep iterates; the wasteful
     profiles are safe by construction and only interest the profiler. *)
  let all = [ Clean; Missing_log; Missing_flush; Missing_fence ]
  let wasteful = [ Double_flush; Double_fence ]
end
