(** Shared plumbing for engines built over the [Pool_impl] substrate:
    pool construction with journals scaled to the pool size, raw word
    access, root management, and the cache-line-granularity logging used
    by the PMDK-style engines. *)

val default_size : int
val create_pool :
  ?latency:Pmem.Latency.t -> ?size:int -> unit -> Corundum.Pool_impl.t

val transaction : Corundum.Pool_impl.t -> (Corundum.Pool_impl.tx -> 'a) -> 'a
val alloc : Corundum.Pool_impl.tx -> int -> int
val free : Corundum.Pool_impl.tx -> int -> unit
val read : Corundum.Pool_impl.tx -> int -> int64
val raw_write : Corundum.Pool_impl.tx -> int -> int64 -> unit
(** Store without logging; the caller has logged (or is writing into a
    fresh block). *)

val root : Corundum.Pool_impl.tx -> int
val set_root : Corundum.Pool_impl.tx -> int -> unit

val line_log : Corundum.Pool_impl.tx -> int -> unit
(** Undo-log the whole 64-byte line containing the offset (deduplicated).
    Blocks are 64-byte-aligned powers of two, so a line never crosses an
    allocation boundary. *)
