(** Shared plumbing for engines built over the [Pool_impl] substrate:
    pool construction with journals scaled to the pool size, raw word
    access, root management, and the cache-line-granularity logging used
    by the PMDK-style engines. *)

val default_size : int
val create_pool :
  ?latency:Pmem.Latency.t -> ?size:int -> unit -> Corundum.Pool_impl.t

val transaction : Corundum.Pool_impl.t -> (Corundum.Pool_impl.tx -> 'a) -> 'a
val alloc : Corundum.Pool_impl.tx -> int -> int
val free : Corundum.Pool_impl.tx -> int -> unit
val read : Corundum.Pool_impl.tx -> int -> int64
val raw_write : Corundum.Pool_impl.tx -> int -> int64 -> unit
(** Store without logging; the caller has logged (or is writing into a
    fresh block). *)

val root : Corundum.Pool_impl.tx -> int
val set_root : Corundum.Pool_impl.tx -> int -> unit

val line_log : Corundum.Pool_impl.tx -> int -> unit
(** Undo-log the whole 64-byte line containing the offset (deduplicated).
    Blocks are 64-byte-aligned powers of two, so a line never crosses an
    allocation boundary. *)

(** Deliberately-buggy engine variants — positive controls for the
    persistency sanitizer.  Each profile elides exactly one leg of the
    persistence protocol: [Missing_log] makes {!Corundum_engine} skip
    undo logging for in-place stores (psan V1), [Missing_flush] and
    [Missing_fence] elide the commit-time data flushes / commit fence
    in the journal (psan V2 / V3).  The knob is global; always reset to
    [Clean] after use. *)
module Fault_profile : sig
  type t = Clean | Missing_log | Missing_flush | Missing_fence

  val set : t -> unit
  (** Select the profile and program the journal's elision switches. *)

  val get : unit -> t

  val name : t -> string
  (** ["clean"], ["missing-log"], ["missing-flush"], ["missing-fence"]. *)

  val all : t list
end
