(** Shared plumbing for engines built over the [Pool_impl] substrate:
    pool construction with journals scaled to the pool size, raw word
    access, root management, and the cache-line-granularity logging used
    by the PMDK-style engines. *)

val default_size : int
val create_pool :
  ?latency:Pmem.Latency.t -> ?size:int -> unit -> Corundum.Pool_impl.t

val transaction : Corundum.Pool_impl.t -> (Corundum.Pool_impl.tx -> 'a) -> 'a
val alloc : Corundum.Pool_impl.tx -> int -> int
val free : Corundum.Pool_impl.tx -> int -> unit
val read : Corundum.Pool_impl.tx -> int -> int64
val raw_write : Corundum.Pool_impl.tx -> int -> int64 -> unit
(** Store without logging; the caller has logged (or is writing into a
    fresh block). *)

val root : Corundum.Pool_impl.tx -> int
val set_root : Corundum.Pool_impl.tx -> int -> unit
val lock : Corundum.Pool_impl.tx -> int -> unit

val line_log : Corundum.Pool_impl.tx -> int -> unit
(** Undo-log the whole 64-byte line containing the offset (deduplicated).
    Blocks are 64-byte-aligned powers of two, so a line never crosses an
    allocation boundary. *)

(** Deliberately-buggy engine variants — positive controls for the
    verification tooling.  The [Missing_*] profiles each elide exactly
    one leg of the persistence protocol: [Missing_log] makes
    {!Corundum_engine} skip undo logging for in-place stores (psan V1),
    [Missing_flush] and [Missing_fence] elide the commit-time data
    flushes / commit fence in the journal (psan V2 / V3).  The
    [Double_*] profiles are the dual, {e wasteful} defect for the
    persist-waste profiler: [Double_flush] re-runs the commit-time data
    flushes after the lines already reached the write-pending queue
    (pure E2 waste, psan W1), [Double_fence] issues two extra commit
    fences that drain an empty queue (E1 waste, psan W2).  Both stay
    crash-consistent.  The knob is global; always reset to [Clean]
    after use. *)
module Fault_profile : sig
  type t =
    | Clean
    | Missing_log
    | Missing_flush
    | Missing_fence
    | Double_flush
    | Double_fence

  val set : t -> unit
  (** Select the profile and program the journal's elision and
      duplication switches (each [set] clears both first). *)

  val get : unit -> t

  val name : t -> string
  (** ["clean"], ["missing-log"], ["missing-flush"], ["missing-fence"],
      ["double-flush"], ["double-fence"]. *)

  val all : t list
  (** The unsafe profiles the crash-injection sweep iterates (the
      wasteful ones are safe by construction and excluded). *)

  val wasteful : t list
  (** [[Double_flush; Double_fence]] — the profiler's positive
      controls. *)
end
