(** All comparator engines, in the order Figure 1 of the paper lists
    them. *)

val all : (string * Engine_sig.engine) list
val find : string -> Engine_sig.engine option
