(** Compile-fail checking: the static half of Table 2's evidence.

    Each snippet in [compile_fail/] attempts a PM bug that the library
    claims is a type error; this module compiles every snippet against
    the built library and reports whether (and why) the compiler rejected
    it.  [control_*.ml] snippets must compile instead — they validate the
    harness's include paths. *)

type outcome = {
  snippet : string;
  must_compile : bool;
      (** [control_*.ml] snippets validate the harness: they must build *)
  rejected : bool;  (** the compiler refused it *)
  type_error : bool;
      (** the rejection is a type error, not e.g. an unbound module
          (which would mean broken paths) *)
  message : string;  (** first error line, for the report *)
}

val run : unit -> (outcome list, string) result
