(** Table 3 of the paper: lines of code added to make a volatile data
    structure persistent, measured by counting source lines (blank and
    comment lines excluded) of the deliberately parallel volatile /
    Corundum implementation pairs in [lib/workloads]. *)

type row = {
  app : string;
  volatile_file : string;
  persistent_file : string;  (** the Corundum (typed) implementation *)
  raw_file : string;  (** the PMDK-style raw-heap implementation *)
}

val rows : row list
(** The three applications of the paper's Table 3. *)

val count_loc : string -> int
(** Source lines of one file (skips blanks and comment-only lines). *)

val find_root : unit -> string option
(** Locate the repository root (walks up to [dune-project]; the
    [CORUNDUM_ROOT] environment variable overrides). *)

type measured = {
  app : string;
  volatile_loc : int;
  persistent_loc : int;
  added : int;
  percent : float;
  raw_loc : int;  (** the PMDK-style implementation, written from scratch *)
}

val measure : unit -> (measured list, string) result
val render : Format.formatter -> measured list -> unit
val to_csv : measured list -> string
