(** Table 3 of the paper: lines of code added to make a volatile data
    structure persistent.  The paper compares Rust-vs-Corundum and
    C++-vs-PMDK; here we compare the volatile OCaml structures against
    their Corundum twins, which are kept deliberately parallel
    (see {!Workloads.Volatile_list} / {!Workloads.Plist} etc.). *)

type row = {
  app : string;
  volatile_file : string;
  persistent_file : string;  (** the Corundum (typed) implementation *)
  raw_file : string;  (** the PMDK-style raw-heap implementation *)
}

let rows =
  [
    {
      app = "Linked List";
      volatile_file = "lib/workloads/volatile_list.ml";
      persistent_file = "lib/workloads/plist.ml";
      raw_file = "lib/workloads/raw_list.ml";
    };
    {
      app = "Binary tree";
      volatile_file = "lib/workloads/volatile_bst.ml";
      persistent_file = "lib/workloads/pbst.ml";
      raw_file = "lib/workloads/bst.ml";
    };
    {
      app = "HashMap";
      volatile_file = "lib/workloads/volatile_hashmap.ml";
      persistent_file = "lib/workloads/phashmap.ml";
      raw_file = "lib/workloads/kvstore.ml";
    };
  ]

(* Count source lines: skip blanks and pure comment lines (the doc
   headers explain methodology, they are not implementation effort). *)
let count_loc path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let loc = ref 0 in
      let in_comment = ref 0 in
      (try
         while true do
           let line = String.trim (input_line ic) in
           let opens =
             let c = ref 0 and i = ref 0 in
             while !i + 1 < String.length line do
               (match (line.[!i], line.[!i + 1]) with
               | '(', '*' -> incr c
               | '*', ')' -> decr c
               | _ -> ());
               incr i
             done;
             !c
           in
           let was_in_comment = !in_comment > 0 in
           in_comment := max 0 (!in_comment + opens);
           let pure_comment =
             was_in_comment
             || String.length line >= 2
                && String.sub line 0 2 = "(*"
           in
           if String.length line > 0 && not pure_comment then incr loc
         done
       with End_of_file -> ());
      !loc)

(* Locate the repository root by walking up to the dune-project file, so
   the executable works from any cwd (including _build sandboxes). *)
let find_root () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  match Sys.getenv_opt "CORUNDUM_ROOT" with
  | Some r -> Some r
  | None -> up (Sys.getcwd ())

type measured = {
  app : string;
  volatile_loc : int;
  persistent_loc : int;
  added : int;
  percent : float;
  raw_loc : int;  (** the PMDK-style implementation, written from scratch *)
}

let measure_row root r =
  let v = count_loc (Filename.concat root r.volatile_file) in
  let p = count_loc (Filename.concat root r.persistent_file) in
  let raw = count_loc (Filename.concat root r.raw_file) in
  {
    app = r.app;
    volatile_loc = v;
    persistent_loc = p;
    added = p - v;
    percent = 100.0 *. float_of_int (p - v) /. float_of_int v;
    raw_loc = raw;
  }

let measure () =
  match find_root () with
  | None -> Error "cannot locate repository root (set CORUNDUM_ROOT)"
  | Some root -> (
      try Ok (List.map (measure_row root) rows) with Sys_error m -> Error m)

let render ppf ms =
  Format.fprintf ppf "%-14s %10s %10s %18s %12s@." "App" "OCaml" "Corundum"
    "added" "raw (PMDK)";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-14s %10d %10d %10d (%4.1f%%) %12d@." m.app
        m.volatile_loc m.persistent_loc m.added m.percent m.raw_loc)
    ms

let to_csv ms =
  let rows =
    List.map
      (fun m ->
        Printf.sprintf "%s,%d,%d,%d,%.1f,%d" m.app m.volatile_loc
          m.persistent_loc m.added m.percent m.raw_loc)
      ms
  in
  String.concat "\n"
    ("app,volatile_loc,corundum_loc,added,percent,raw_pmdk_loc" :: rows)
  ^ "\n"
