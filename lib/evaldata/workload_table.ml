(** Table 4 of the paper: the microbenchmark workloads.  Reproduced as
    data so [bin/tables.exe table4] regenerates the table, each row
    pointing at this repository's implementation. *)

type row = {
  name : string;
  description : string;  (** the paper's wording *)
  implemented_by : string;  (** module(s) in this repository *)
  regenerated_by : string;  (** command reproducing its results *)
}

let rows =
  [
    {
      name = "BST";
      description =
        "A transaction-free (in PMDK and Corundum) and failure-atomic \
         implementation of a Binary Search Tree";
      implemented_by = "Workloads.Bst (engines), Workloads.Pbst (typed)";
      regenerated_by = "dune exec bin/perf.exe";
    };
    {
      name = "KVStore";
      description =
        "A simple Key-Value store data structure using hash map";
      implemented_by =
        "Workloads.Kvstore (engines), Workloads.Phashmap / Corundum.Pstrmap (typed)";
      regenerated_by = "dune exec bin/perf.exe";
    };
    {
      name = "B+Tree";
      description = "An optimized, balanced B+Tree with 8-way fanout";
      implemented_by = "Workloads.Bptree (engines), Corundum.Pbtree (typed)";
      regenerated_by = "dune exec bin/perf.exe";
    };
    {
      name = "wordcount";
      description =
        "Counts the occurrences of each word in a corpus of text using a \
         hashmap and producer/consumer threads";
      implemented_by = "Workloads.Wordcount (domains + DES model)";
      regenerated_by = "dune exec bin/scale.exe";
    };
  ]

let render ppf () =
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %s@.%-10s   implemented by: %s@.%-10s   regenerate:     %s@.@."
        r.name r.description "" r.implemented_by "" r.regenerated_by)
    rows

let to_csv () =
  let header = "workload,description,implemented_by,regenerated_by" in
  let quote s = "\"" ^ String.concat "\"\"" (String.split_on_char '\"' s) ^ "\"" in
  let body =
    List.map
      (fun r ->
        String.concat ","
          [ r.name; quote r.description; quote r.implemented_by; r.regenerated_by ])
      rows
  in
  String.concat "\n" (header :: body) ^ "\n"
