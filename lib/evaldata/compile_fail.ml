(** Compile-fail checking: the static half of Table 2's evidence.

    Each snippet in [compile_fail/] attempts a PM bug that the library
    claims is a type error.  This module compiles every snippet against
    the built library and reports whether the compiler rejected it.  A
    snippet that {e compiles} is a hole in the static story and fails the
    test suite. *)

type outcome = {
  snippet : string;
  must_compile : bool;
      (** [control_*.ml] snippets validate the harness: they must build *)
  rejected : bool;  (** the compiler refused it *)
  type_error : bool;  (** the rejection is a type error, not e.g. an
                          unbound module (which would mean broken paths) *)
  message : string;  (** first error line, for the report *)
}

let snippet_dir root = Filename.concat root "compile_fail"

let include_dirs root =
  List.map
    (fun lib ->
      Filename.concat root
        (Printf.sprintf "_build/default/lib/%s/.%s.objs/byte" lib lib))
    [ "pmem"; "palloc"; "pjournal" ]
  @ [ Filename.concat root "_build/default/lib/core/.corundum.objs/byte" ]

let snippets root =
  Sys.readdir (snippet_dir root)
  |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort compare

(* Compile one snippet in a scratch directory; capture the first error. *)
let try_compile root snippet =
  let tmp = Filename.temp_file "corundum_cf" ".ml" in
  let src = Filename.concat (snippet_dir root) snippet in
  let ic = open_in src and oc = open_out tmp in
  (try
     while true do
       output_string oc (input_line ic);
       output_char oc '\n'
     done
   with End_of_file -> ());
  close_in ic;
  close_out oc;
  let log = Filename.temp_file "corundum_cf" ".log" in
  let includes =
    String.concat " " (List.map (fun d -> "-I " ^ Filename.quote d) (include_dirs root))
  in
  let cmd =
    Printf.sprintf
      "ocamlfind ocamlc -package threads.posix -thread %s -c %s -o %s 2> %s"
      includes (Filename.quote tmp)
      (Filename.quote (Filename.remove_extension tmp ^ ".cmo"))
      (Filename.quote log)
  in
  let status = Sys.command cmd in
  let message =
    let ic = open_in log in
    let rec first_error () =
      match input_line ic with
      | line ->
          if
            String.length line >= 5
            && (String.sub line 0 5 = "Error"
               || (String.length line >= 6 && String.sub line 0 6 = "Error:"))
          then line
          else first_error ()
      | exception End_of_file -> ""
    in
    let m = first_error () in
    close_in ic;
    m
  in
  List.iter
    (fun f -> try Sys.remove f with Sys_error _ -> ())
    [ tmp; log; Filename.remove_extension tmp ^ ".cmo";
      Filename.remove_extension tmp ^ ".cmi" ];
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  {
    snippet;
    must_compile =
      String.length snippet >= 8 && String.sub snippet 0 8 = "control_";
    rejected = status <> 0;
    type_error = contains message "type" || contains message "expression";
    message;
  }

let run () =
  match Loc_count.find_root () with
  | None -> Error "cannot locate repository root"
  | Some root ->
      if not (Sys.file_exists (snippet_dir root)) then
        Error "compile_fail/ directory not found"
      else Ok (List.map (try_compile root) (snippets root))
