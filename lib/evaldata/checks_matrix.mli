(** Table 2 of the paper as data: how each PM library enforces Corundum's
    design goals, plus an honest row for this OCaml port (see
    EXPERIMENTS.md for the S→D rationale). *)

type enforcement =
  | S  (** static: the compiler enforces or rejects *)
  | D  (** dynamic: detected at runtime *)
  | M  (** manual: the programmer's problem *)
  | SD  (** static backbone, dynamic backstop *)
  | SM  (** static and manual facets *)
  | GC  (** leaks handled by garbage collection *)
  | RC  (** leaks handled by reference counting *)
  | RC_D  (** reference counting plus a dynamic checker *)

val to_string : enforcement -> string

type property =
  | Only_p_object
  | Interpool
  | Nv_to_v
  | V_to_nv
  | No_races
  | Tx_atomicity
  | Tx_isolation
  | No_leaks

val properties : (property * string) list
(** Column order of the rendered table. *)

type system = { name : string; cells : (property * enforcement) list }

val paper_systems : system list
(** The eight rows of the paper's Table 2, verbatim. *)

val ocaml_port : system
(** This repository's enforcement levels. *)

val all_systems : system list
val cell : system -> property -> enforcement
val render : Format.formatter -> unit -> unit
val to_csv : unit -> string
