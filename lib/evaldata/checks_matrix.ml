(** Table 2 of the paper: how each PM library enforces Corundum's design
    goals, encoded as data so the table can be regenerated (and so our
    OCaml port's honest enforcement levels sit next to the original's).

    Enforcement legend: [S]tatic (compile-time), [D]ynamic (runtime
    detection), [M]anual (programmer's problem); leak handling is [GC] or
    reference counting ([RC]).  Mixed entries reflect mixed mechanisms. *)

type enforcement = S | D | M | SD | SM | GC | RC | RC_D

let to_string = function
  | S -> "S"
  | D -> "D"
  | M -> "M"
  | SD -> "S/D"
  | SM -> "S/M"
  | GC -> "GC"
  | RC -> "RC"
  | RC_D -> "RC/D"

type property =
  | Only_p_object
  | Interpool
  | Nv_to_v
  | V_to_nv
  | No_races
  | Tx_atomicity
  | Tx_isolation
  | No_leaks

let properties =
  [
    (Only_p_object, "Only-P-Object");
    (Interpool, "Ptrs: interpool");
    (Nv_to_v, "Ptrs: NV-to-V");
    (V_to_nv, "Ptrs: V-to-NV");
    (No_races, "No-Races");
    (Tx_atomicity, "Tx: atomicity");
    (Tx_isolation, "Tx: isolation");
    (No_leaks, "No-Leaks");
  ]

type system = { name : string; cells : (property * enforcement) list }

(* Rows exactly as Table 2 of the paper. *)
let paper_systems =
  [
    {
      name = "NV-Heaps";
      cells =
        [
          (Only_p_object, M); (Interpool, D); (Nv_to_v, S); (V_to_nv, M);
          (No_races, S); (Tx_atomicity, S); (Tx_isolation, M); (No_leaks, RC);
        ];
    };
    {
      name = "Mnemosyne";
      cells =
        [
          (Only_p_object, M); (Interpool, D); (Nv_to_v, S); (V_to_nv, M);
          (No_races, S); (Tx_atomicity, S); (Tx_isolation, M); (No_leaks, M);
        ];
    };
    {
      name = "libpmemobj";
      cells =
        [
          (Only_p_object, M); (Interpool, D); (Nv_to_v, M); (V_to_nv, M);
          (No_races, M); (Tx_atomicity, M); (Tx_isolation, M); (No_leaks, M);
        ];
    };
    {
      name = "libpmemobj++";
      cells =
        [
          (Only_p_object, M); (Interpool, D); (Nv_to_v, M); (V_to_nv, M);
          (No_races, M); (Tx_atomicity, S); (Tx_isolation, M); (No_leaks, M);
        ];
    };
    {
      name = "NVM Direct";
      cells =
        [
          (Only_p_object, D); (Interpool, D); (Nv_to_v, S); (V_to_nv, D);
          (No_races, M); (Tx_atomicity, SM); (Tx_isolation, SM); (No_leaks, M);
        ];
    };
    {
      name = "Atlas";
      cells =
        [
          (Only_p_object, M); (Interpool, M); (Nv_to_v, M); (V_to_nv, M);
          (No_races, M); (Tx_atomicity, S); (Tx_isolation, M); (No_leaks, GC);
        ];
    };
    {
      name = "go-pmem";
      cells =
        [
          (Only_p_object, M); (Interpool, M); (Nv_to_v, M); (V_to_nv, M);
          (No_races, M); (Tx_atomicity, S); (Tx_isolation, M); (No_leaks, GC);
        ];
    };
    {
      name = "Corundum (Rust)";
      cells =
        [
          (Only_p_object, S); (Interpool, SD); (Nv_to_v, S); (V_to_nv, D);
          (No_races, S); (Tx_atomicity, S); (Tx_isolation, S); (No_leaks, RC);
        ];
    };
  ]

(* Our port's honest enforcement: what survived the move from Rust's
   affine types to OCaml's type system + dynamic epochs (DESIGN.md §1). *)
let ocaml_port =
  {
    name = "Corundum-OCaml";
    cells =
      [
        (Only_p_object, S) (* no Ptype witness, no entry into the pool *);
        (Interpool, S) (* generative pool brands *);
        (Nv_to_v, S) (* volatile refs have no descriptor *);
        (V_to_nv, D) (* vweak: uid/birth checks at promote *);
        (No_races, D) (* pool locks at runtime; OCaml has no Send/Sync *);
        (Tx_atomicity, SD) (* journal capability static; escape dynamic *);
        (Tx_isolation, SD) (* lock-till-commit; guard escape dynamic *);
        (No_leaks, RC_D) (* refcounts + reachability checker *);
      ];
  }

let all_systems = paper_systems @ [ ocaml_port ]

let cell system prop = List.assoc prop system.cells

let render ppf () =
  let open Format in
  fprintf ppf "%-16s" "System";
  List.iter (fun (_, label) -> fprintf ppf " %14s" label) properties;
  fprintf ppf "@.";
  List.iter
    (fun sys ->
      fprintf ppf "%-16s" sys.name;
      List.iter
        (fun (p, _) -> fprintf ppf " %14s" (to_string (cell sys p)))
        properties;
      fprintf ppf "@.")
    all_systems

let to_csv () =
  let header =
    "system," ^ String.concat "," (List.map snd properties)
  in
  let rows =
    List.map
      (fun sys ->
        sys.name ^ ","
        ^ String.concat ","
            (List.map (fun (p, _) -> to_string (cell sys p)) properties))
      all_systems
  in
  String.concat "\n" (header :: rows) ^ "\n"
