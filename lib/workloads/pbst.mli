(** Persistent binary search tree — {!Volatile_bst} plus Corundum
    (Table 3's "Binary tree" row). *)

module Make (P : Corundum.Pool.S) : sig
  type node
  type t

  val node_ty : (node, P.brand) Corundum.Ptype.t
  val root_ty :
    ((((node, P.brand) Corundum.Pbox.t option, P.brand) Corundum.Prefcell.t), P.brand) Corundum.Ptype.t

  val root : unit -> t
  val insert : t -> int -> P.brand Corundum.Journal.t -> unit
  val mem : t -> int -> bool
  val size : t -> int
  val to_list : t -> int list
  (** In-order (sorted). *)

  val is_empty : t -> bool
  val fold : t -> init:'b -> f:('b -> int -> 'b) -> 'b
  val iter : t -> (int -> unit) -> unit
  val min_key : t -> int option
  val max_key : t -> int option
  val height : t -> int
  val of_list : int list -> P.brand Corundum.Journal.t -> t
  val range : t -> lo:int -> hi:int -> int list
  val count_if : t -> (int -> bool) -> int
end
