(** Binary search tree over a raw persistent heap (Figure 1's BST).

    Mirrors the PMDK example the paper ports: an unbalanced tree of
    [key | left | right] nodes, inserted with a single pointer link, so
    each insert is one small failure-atomic transaction.

    Node layout (32 bytes): key i64 at +0, left u64 at +8, right u64 at
    +16. *)

module Make (E : Engines.Engine_sig.S) = struct
  type t = E.t

  let node_size = 32
  let key_of tx n = E.read tx n
  let left_of tx n = Int64.to_int (E.read tx (n + 8))
  let right_of tx n = Int64.to_int (E.read tx (n + 16))

  let new_node tx key =
    let n = E.alloc tx node_size in
    E.write tx n key;
    E.write tx (n + 8) 0L;
    E.write tx (n + 16) 0L;
    n

  let insert eng key =
    E.transaction eng (fun tx ->
        let rec place cur =
          let k = key_of tx cur in
          if key = k then () (* duplicate: nothing to do *)
          else if key < k then
            let l = left_of tx cur in
            if l = 0 then E.write tx (cur + 8) (Int64.of_int (new_node tx key))
            else place l
          else
            let r = right_of tx cur in
            if r = 0 then E.write tx (cur + 16) (Int64.of_int (new_node tx key))
            else place r
        in
        let root = E.root tx in
        if root = 0 then E.set_root tx (new_node tx key) else place root)

  let mem eng key =
    E.transaction eng (fun tx ->
        let rec go cur =
          if cur = 0 then false
          else
            let k = key_of tx cur in
            if key = k then true
            else if key < k then go (left_of tx cur)
            else go (right_of tx cur)
        in
        go (E.root tx))

  let size eng =
    E.transaction eng (fun tx ->
        let rec count cur =
          if cur = 0 then 0
          else 1 + count (left_of tx cur) + count (right_of tx cur)
        in
        count (E.root tx))

  (* In-order key list; doubles as a sortedness check in tests. *)
  let to_list eng =
    E.transaction eng (fun tx ->
        let rec go cur acc =
          if cur = 0 then acc
          else go (left_of tx cur) (key_of tx cur :: go (right_of tx cur) acc)
        in
        go (E.root tx) [])
end
