(** Volatile sorted linked list — the "Rust" baseline of Table 3.

    {!Plist} is the same structure with Corundum persistence added; the
    two implementations are kept deliberately parallel so that the
    line-count delta measured by [bin/tables.exe table3] reflects the real
    cost of adding persistence, as in the paper's ease-of-use study. *)

type t

val create : unit -> t
val insert : t -> int -> unit
(** Sorted insert; duplicates are ignored. *)

val remove : t -> int -> bool
val mem : t -> int -> bool
val to_list : t -> int list
val length : t -> int
val is_empty : t -> bool
val fold : t -> init:'b -> f:('b -> int -> 'b) -> 'b
val iter : t -> (int -> unit) -> unit
val min_value : t -> int option
val max_value : t -> int option
val nth : t -> int -> int option
val of_list : int list -> t
val clear : t -> unit
val count_if : t -> (int -> bool) -> int
val equal : t -> t -> bool
