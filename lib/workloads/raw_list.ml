(** Sorted linked list over a raw persistent heap — the "PMDK C++" side
    of Table 3: the same structure as {!Volatile_list}/{!Plist}, written
    the way one writes against [libpmemobj]: manual layout, offsets as
    pointers, explicit transactions around every mutation.

    Node layout (16 bytes): value i64 at +0, next u64 at +8. *)

module Make (E : Engines.Engine_sig.S) = struct
  type t = E.t

  let node_size = 16
  let value_of tx n = Int64.to_int (E.read tx n)
  let next_of tx n = Int64.to_int (E.read tx (n + 8))

  let new_node tx v next =
    let n = E.alloc tx node_size in
    E.write tx n (Int64.of_int v);
    E.write tx (n + 8) (Int64.of_int next);
    n

  let insert eng v =
    E.transaction eng (fun tx ->
        let rec go slot cur =
          if cur = 0 then E.write tx slot (Int64.of_int (new_node tx v 0))
          else
            let cv = value_of tx cur in
            if v = cv then ()
            else if v < cv then E.write tx slot (Int64.of_int (new_node tx v cur))
            else go (cur + 8) (next_of tx cur)
        in
        (* the root word is the head pointer; allocate it on first use *)
        let head_slot =
          match E.root tx with
          | 0 ->
              let s = E.alloc tx 8 in
              E.write tx s 0L;
              E.set_root tx s;
              s
          | s -> s
        in
        go head_slot (Int64.to_int (E.read tx head_slot)))

  let mem eng v =
    E.transaction eng (fun tx ->
        match E.root tx with
        | 0 -> false
        | head_slot ->
            let rec go cur =
              if cur = 0 then false
              else
                let cv = value_of tx cur in
                if v = cv then true else if v < cv then false else go (next_of tx cur)
            in
            go (Int64.to_int (E.read tx head_slot)))

  let remove eng v =
    E.transaction eng (fun tx ->
        match E.root tx with
        | 0 -> false
        | head_slot ->
            let rec go slot cur =
              if cur = 0 then false
              else
                let cv = value_of tx cur in
                if v = cv then begin
                  E.write tx slot (E.read tx (cur + 8));
                  E.free tx cur;
                  true
                end
                else if v < cv then false
                else go (cur + 8) (next_of tx cur)
            in
            go head_slot (Int64.to_int (E.read tx head_slot)))

  let to_list eng =
    E.transaction eng (fun tx ->
        match E.root tx with
        | 0 -> []
        | head_slot ->
            let rec go acc cur =
              if cur = 0 then List.rev acc
              else go (value_of tx cur :: acc) (next_of tx cur)
            in
            go [] (Int64.to_int (E.read tx head_slot)))

  let length eng = List.length (to_list eng)
end
