(** Hash-map key-value store over a raw persistent heap (Figure 1's
    KVStore): a fixed bucket directory of entry chains, with in-place
    update on PUT of an existing key. *)

module Make (E : Engines.Engine_sig.S) : sig
  type t

  val create : ?nbuckets:int -> E.t -> t
  (** Binds to the engine's root directory, formatting it on first use. *)

  val put : t -> int64 -> int64 -> unit
  val get : t -> int64 -> int64 option

  val del : t -> int64 -> bool
  (** Whether the key was present. *)

  val length : t -> int
end
