(** Volatile sorted linked list — the "Rust" baseline of Table 3.

    {!Plist} is the same structure with Corundum persistence added; the
    two files are kept deliberately parallel so that the line-count delta
    measured by [tables.exe table3] reflects the real cost of adding
    persistence, as in the paper's ease-of-use study. *)

type node = { value : int; next : node option ref }
type t = { head : node option ref }

let create () = { head = ref None }

let insert t v =
  let rec go cell =
    match !cell with
    | None -> cell := Some { value = v; next = ref None }
    | Some n when v < n.value -> cell := Some { value = v; next = ref (Some n) }
    | Some n when v = n.value -> ()
    | Some n -> go n.next
  in
  go t.head

let mem t v =
  let rec go = function
    | None -> false
    | Some n -> if n.value = v then true else if v < n.value then false else go !(n.next)
  in
  go !(t.head)

let remove t v =
  let rec go cell =
    match !cell with
    | None -> false
    | Some n when n.value = v ->
        cell := !(n.next);
        true
    | Some n when v < n.value -> false
    | Some n -> go n.next
  in
  go t.head

let to_list t =
  let rec go acc = function
    | None -> List.rev acc
    | Some n -> go (n.value :: acc) !(n.next)
  in
  go [] !(t.head)

let length t = List.length (to_list t)

let is_empty t = !(t.head) = None

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f acc n.value) !(n.next)
  in
  go init !(t.head)

let iter t f = fold t ~init:() ~f:(fun () v -> f v)

let min_value t =
  match !(t.head) with None -> None | Some n -> Some n.value

let max_value t =
  fold t ~init:None ~f:(fun _ v -> Some v)

let nth t i =
  let rec go k = function
    | None -> None
    | Some n -> if k = 0 then Some n.value else go (k - 1) !(n.next)
  in
  if i < 0 then None else go i !(t.head)

let of_list vs =
  let t = create () in
  List.iter (insert t) vs;
  t

let clear t = t.head := None

let count_if t p = fold t ~init:0 ~f:(fun n v -> if p v then n + 1 else n)

let equal a b = to_list a = to_list b
