(** B+tree with 8-way fanout over a raw persistent heap (Figure 1's
    B+Tree).

    Values live only in leaves, which are chained for ordered scans;
    internal nodes hold separator keys.  Insertion splits full nodes on
    the way down; deletion rebalances proactively (borrow from a sibling,
    else merge), keeping every non-root node at least half full — the
    structural invariants are machine-checked by {!Make.check}. *)

module Make (E : Engines.Engine_sig.S) : sig
  type t = E.t

  val fanout : int
  val insert : t -> int64 -> int64 -> unit
  (** Insert or update. *)

  val find : t -> int64 -> int64 option
  val mem : t -> int64 -> bool

  val remove : t -> int64 -> bool
  (** Whether the key was present. *)

  val fold : t -> init:'b -> f:('b -> int64 -> int64 -> 'b) -> 'b
  (** Ordered, via the leaf chain. *)

  val to_list : t -> (int64 * int64) list
  val size : t -> int

  val check : t -> (unit, string) result
  (** Structural invariants: key order and bounds, node occupancy,
      uniform depth. *)
end
