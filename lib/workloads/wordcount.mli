(** Wordcount — the paper's scalability workload (Figure 2).

    One producer pushes text segments onto a persistent, mutex-guarded
    stack; consumer domains pop segments and count word frequencies in
    thread-local volatile tables (the paper deliberately does not merge
    them, to isolate library scalability from reduction cost).

    The corpus is synthetic Zipf-distributed text standing in for the
    Canterbury corpus (DESIGN.md §1).  On hosts without enough cores for
    the paper's 16-thread sweep, {!measure_costs} + {!simulate} replay
    the timeline with a discrete-event schedule; see [bin/scale.exe]. *)

val generate_corpus :
  ?vocabulary:int ->
  segments:int ->
  words_per_segment:int ->
  seed:int ->
  unit ->
  string list
(** Deterministic synthetic corpus. *)

type result = {
  seconds : float;  (** wall-clock duration *)
  total_words : int;  (** words counted across all consumers *)
  distinct : int;  (** distinct words seen *)
}

val run : producers:int -> consumers:int -> corpus:string list -> unit -> result
(** The real multi-domain implementation (its own private pool). *)

val run_seq : corpus:string list -> unit -> result
(** The paper's baseline: produce everything, then consume everything,
    single-threaded. *)

val count_words : (string, int) Hashtbl.t -> string -> int
(** Count one segment into a table; returns the segment's word count
    (exposed for tests and the cost model). *)

(** {1 Scalability model} *)

type cost_model = {
  t_push : float;  (** seconds per push transaction (lock held) *)
  t_pop : float;  (** seconds per pop transaction (lock held) *)
  t_count : float;  (** seconds to count one segment (parallel work) *)
}

val measure_costs :
  ?latency:Pmem.Latency.t -> corpus:string list -> unit -> cost_model
(** Push/pop costs come from the simulated PM clock (they are PM-bound);
    counting is CPU-bound wall time. *)

val simulate : cost_model -> segments:int -> consumers:int -> float
(** Makespan of the producer/consumer timeline with the stack lock as the
    serializing resource (greedy event schedule). *)

val sequential_time : cost_model -> segments:int -> float
