(** Wordcount — the paper's scalability workload (Figure 2).

    A single producer pushes text segments onto a persistent, mutex-
    guarded stack; a pool of consumers pops segments and counts word
    frequencies in thread-local volatile tables (the paper deliberately
    does not merge them, to isolate library scalability from reduction
    cost).  Each persistent operation is its own transaction on a
    per-domain journal, so the library imposes no serialization beyond
    the stack lock itself.

    The corpus is synthetic Zipf-distributed text standing in for the
    Canterbury corpus (see DESIGN.md's substitution table). *)

open Corundum

let generate_corpus ?(vocabulary = 2000) ~segments ~words_per_segment ~seed () =
  let rng = Random.State.make [| seed |] in
  (* Zipf-ish rank choice: rank = floor(V^u) favours small ranks. *)
  let pick () =
    let u = Random.State.float rng 1.0 in
    let r = int_of_float (float_of_int vocabulary ** u) - 1 in
    Printf.sprintf "w%d" (min (vocabulary - 1) r)
  in
  List.init segments (fun _ ->
      String.concat " " (List.init words_per_segment (fun _ -> pick ())))

type result = { seconds : float; total_words : int; distinct : int }

let count_words table segment =
  let n = String.length segment in
  let total = ref 0 in
  let flush start stop =
    if stop > start then begin
      let w = String.sub segment start (stop - start) in
      incr total;
      Hashtbl.replace table w (1 + Option.value ~default:0 (Hashtbl.find_opt table w))
    end
  in
  let start = ref 0 in
  for i = 0 to n - 1 do
    if segment.[i] = ' ' then begin
      flush !start i;
      start := i + 1
    end
  done;
  flush !start n;
  !total

let summarize tables seconds =
  let total = ref 0 and distinct = Hashtbl.create 256 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun w c ->
          total := !total + c;
          Hashtbl.replace distinct w ())
        tbl)
    tables;
  { seconds; total_words = !total; distinct = Hashtbl.length distinct }

(* One run builds a private pool whose journal slots cover every thread. *)
let run ~producers ~consumers ~corpus () =
  let module P = Pool.Make () in
  let corpus_bytes =
    List.fold_left (fun a s -> a + String.length s) 0 corpus
  in
  let nslots = producers + consumers + 2 in
  let size = max (8 * 1024 * 1024) (8 * corpus_bytes) in
  P.create
    ~config:{ Pool_impl.size; nslots; slot_size = 128 * 1024 }
    ~latency:Pmem.Latency.zero ();
  let stack_ty = Pvec.ptype (Pstring.ptype ()) in
  let root =
    P.root
      ~ty:(Pmutex.ptype stack_ty)
      ~init:(fun j ->
        Pmutex.make ~ty:stack_ty (Pvec.make ~ty:(Pstring.ptype ()) ~capacity:64 j))
      ()
  in
  let stack = Pbox.get root in
  let push seg =
    P.transaction (fun j ->
        let g = Pmutex.lock stack j in
        Pvec.push (Pmutex.deref g) (Pstring.make seg j) j)
  in
  (* Pop a segment's contents, releasing its block in the same tx. *)
  let pop () =
    P.transaction (fun j ->
        let g = Pmutex.lock stack j in
        match Pvec.pop (Pmutex.deref g) j with
        | None -> None
        | Some ps ->
            let s = Pstring.get ps in
            Pstring.drop ps j;
            Some s)
  in
  (* Split the corpus round-robin among producers. *)
  let shares = Array.make producers [] in
  List.iteri (fun i seg -> shares.(i mod producers) <- seg :: shares.(i mod producers)) corpus;
  let live_producers = Atomic.make producers in
  let producer share () =
    List.iter push share;
    Atomic.decr live_producers
  in
  let consumer () =
    let table = Hashtbl.create 1024 in
    let rec loop () =
      match pop () with
      | Some seg ->
          ignore (count_words table seg);
          loop ()
      | None -> if Atomic.get live_producers > 0 then loop ()
    in
    loop ();
    table
  in
  let t0 = Unix.gettimeofday () in
  let prods =
    Array.to_list (Array.map (fun sh -> Domain.spawn (producer sh)) shares)
  in
  let cons = List.init consumers (fun _ -> Domain.spawn consumer) in
  List.iter Domain.join prods;
  let tables = List.map Domain.join cons in
  let seconds = Unix.gettimeofday () -. t0 in
  P.close ();
  summarize tables seconds

(* The paper's baseline: one producer then one consumer, sequentially. *)
let run_seq ~corpus () =
  let module P = Pool.Make () in
  let corpus_bytes = List.fold_left (fun a s -> a + String.length s) 0 corpus in
  P.create
    ~config:
      {
        Pool_impl.size = max (8 * 1024 * 1024) (8 * corpus_bytes);
        nslots = 2;
        slot_size = 128 * 1024;
      }
    ~latency:Pmem.Latency.zero ();
  let stack_ty = Pvec.ptype (Pstring.ptype ()) in
  let root =
    P.root
      ~ty:(Pmutex.ptype stack_ty)
      ~init:(fun j ->
        Pmutex.make ~ty:stack_ty (Pvec.make ~ty:(Pstring.ptype ()) ~capacity:64 j))
      ()
  in
  let stack = Pbox.get root in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun seg ->
      P.transaction (fun j ->
          let g = Pmutex.lock stack j in
          Pvec.push (Pmutex.deref g) (Pstring.make seg j) j))
    corpus;
  let table = Hashtbl.create 1024 in
  let rec drain () =
    let popped =
      P.transaction (fun j ->
          let g = Pmutex.lock stack j in
          match Pvec.pop (Pmutex.deref g) j with
          | None -> None
          | Some ps ->
              let s = Pstring.get ps in
              Pstring.drop ps j;
              Some s)
    in
    match popped with
    | Some seg ->
        ignore (count_words table seg);
        drain ()
    | None -> ()
  in
  drain ();
  let seconds = Unix.gettimeofday () -. t0 in
  P.close ();
  summarize [ table ] seconds

(* --- Scalability model ------------------------------------------------- *)

(* Figure 2 needs a machine with many cores; when the host cannot run 16
   hardware threads (the artifact expects a 16-core CPU), we reproduce the
   figure with a discrete-event schedule: the costs of the three primitive
   operations are measured from the real implementation above, and the
   producer/consumer timeline — with the stack lock as the serializing
   resource — is simulated.  The real threaded [run] stays the source of
   truth for correctness (tests) and for wall-clock numbers on big
   machines. *)

type cost_model = {
  t_push : float;  (** seconds per push transaction (lock held) *)
  t_pop : float;  (** seconds per pop transaction (lock held) *)
  t_count : float;  (** seconds to count one segment (parallel work) *)
}

(* Push and pop are PM-bound, so their cost comes from the device's
   calibrated simulated clock (wall time would measure the simulator's
   own bookkeeping); counting is CPU-bound and measured in wall time. *)
let measure_costs ?(latency = Pmem.Latency.dram) ~corpus () =
  let segments = List.length corpus in
  let module P = Pool.Make () in
  let corpus_bytes = List.fold_left (fun a s -> a + String.length s) 0 corpus in
  P.create
    ~config:
      {
        Pool_impl.size = max (8 * 1024 * 1024) (8 * corpus_bytes);
        nslots = 2;
        slot_size = 128 * 1024;
      }
    ~latency ();
  let stack_ty = Pvec.ptype (Pstring.ptype ()) in
  let root =
    P.root
      ~ty:(Pmutex.ptype stack_ty)
      ~init:(fun j ->
        Pmutex.make ~ty:stack_ty (Pvec.make ~ty:(Pstring.ptype ()) ~capacity:64 j))
      ()
  in
  let stack = Pbox.get root in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let sim f =
    let dev = Pool_impl.device (P.impl ()) in
    let t0 = Pmem.Device.simulated_ns dev in
    f ();
    (Pmem.Device.simulated_ns dev -. t0) /. 1e9
  in
  let push_time =
    sim (fun () ->
        List.iter
          (fun seg ->
            P.transaction (fun j ->
                let g = Pmutex.lock stack j in
                Pvec.push (Pmutex.deref g) (Pstring.make seg j) j))
          corpus)
  in
  let popped = ref [] in
  let pop_and_read_time =
    sim (fun () ->
        for _ = 1 to segments do
          P.transaction (fun j ->
              let g = Pmutex.lock stack j in
              match Pvec.pop (Pmutex.deref g) j with
              | None -> ()
              | Some ps ->
                  let s = Pstring.get ps in
                  Pstring.drop ps j;
                  popped := s :: !popped)
        done)
  in
  let count_time =
    time (fun () ->
        let tbl = Hashtbl.create 1024 in
        List.iter (fun s -> ignore (count_words tbl s)) !popped)
  in
  P.close ();
  let s = float_of_int segments in
  { t_push = push_time /. s; t_pop = pop_and_read_time /. s; t_count = count_time /. s }

(* Greedy event schedule: one producer and [consumers] consumers compete
   for the stack lock; counting runs in parallel.  Returns the makespan. *)
let simulate model ~segments ~consumers =
  let lock_free = ref 0.0 in
  let producer_free = ref 0.0 in
  let consumer_free = Array.make (max 1 consumers) 0.0 in
  let available = Queue.create () in
  let pushed = ref 0 and consumed = ref 0 in
  let finish = ref 0.0 in
  while !consumed < segments do
    (* Next lock requester: the producer (if segments remain) or the
       earliest consumer that has a segment to take. *)
    let min_consumer =
      let best = ref 0 in
      Array.iteri (fun i t -> if t < consumer_free.(!best) then best := i) consumer_free;
      !best
    in
    let producer_wants = !pushed < segments in
    let consumer_wants = not (Queue.is_empty available) in
    let pick_producer =
      producer_wants
      && ((not consumer_wants) || !producer_free <= consumer_free.(min_consumer))
    in
    if pick_producer then begin
      let start = Float.max !producer_free !lock_free in
      lock_free := start +. model.t_push;
      producer_free := !lock_free;
      Queue.add !lock_free available;
      incr pushed
    end
    else begin
      let ready = Queue.pop available in
      let i = min_consumer in
      let start = Float.max (Float.max consumer_free.(i) !lock_free) ready in
      lock_free := start +. model.t_pop;
      consumer_free.(i) <- start +. model.t_pop +. model.t_count;
      finish := Float.max !finish consumer_free.(i);
      incr consumed
    end
  done;
  !finish

let sequential_time model ~segments =
  float_of_int segments *. (model.t_push +. model.t_pop +. model.t_count)
