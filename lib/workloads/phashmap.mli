(** Persistent chained hash map — {!Volatile_hashmap} plus Corundum
    (Table 3's "HashMap" row).  Buckets live in a {!Corundum.Pvec};
    values are updated in place through {!Corundum.Pcell}. *)

module Make (P : Corundum.Pool.S) : sig
  type entry
  type t

  val entry_ty : (entry, P.brand) Corundum.Ptype.t

  val root_ty :
    ( (((entry, P.brand) Corundum.Pbox.t option, P.brand) Corundum.Prefcell.t,
        P.brand )
      Corundum.Pvec.t,
      P.brand )
    Corundum.Ptype.t
  (** Descriptor of the bucket vector (what the root box holds and what
      the leak checker walks from). *)

  val root : ?nbuckets:int -> unit -> t
  val put : t -> int -> int -> P.brand Corundum.Journal.t -> unit
  val get : t -> int -> int option
  val del : t -> int -> P.brand Corundum.Journal.t -> bool
  val length : t -> int
  val is_empty : t -> bool
  val fold : t -> init:'b -> f:('b -> int -> int -> 'b) -> 'b
  val iter : t -> (int -> int -> unit) -> unit
  val mem : t -> int -> bool
  val keys : t -> int list
  val values : t -> int list
  val update : t -> int -> (int -> int) -> P.brand Corundum.Journal.t -> unit
  val of_list : (int * int) list -> P.brand Corundum.Journal.t -> t
  val to_list : t -> (int * int) list
  val clear : t -> P.brand Corundum.Journal.t -> unit
end
