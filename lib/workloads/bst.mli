(** Binary search tree over a raw persistent heap (Figure 1's BST).

    Mirrors the PMDK example the paper ports: an unbalanced tree of
    [key | left | right] nodes; each insert is one small failure-atomic
    transaction ending in a single pointer link.  Functorized over the
    engine so the same algorithm runs on every logging strategy. *)

module Make (E : Engines.Engine_sig.S) : sig
  type t = E.t

  val insert : t -> int64 -> unit
  (** Idempotent on duplicates. *)

  val mem : t -> int64 -> bool
  val size : t -> int

  val to_list : t -> int64 list
  (** In-order traversal (sorted; the tests rely on it). *)
end
