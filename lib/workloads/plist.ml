(** Persistent sorted linked list — {!Volatile_list} plus Corundum.

    The structural code matches the volatile version line for line where
    possible; the additions are exactly what the paper's Table 3 counts:
    type descriptors, the journal argument threaded through mutators, and
    transactional construction. *)

open Corundum

module Make (P : Pool.S) = struct
  type node = { value : int; next : (link, P.brand) Prefcell.t }
  and link = (node, P.brand) Pbox.t option

  let rec node_ty_l : (node, P.brand) Ptype.t Lazy.t =
    lazy
      (Ptype.record2 ~name:"plist-node"
         ~inj:(fun value next -> { value; next })
         ~proj:(fun n -> (n.value, n.next))
         Ptype.int
         (Prefcell.ptype (Ptype.option (Pbox.ptype_rec node_ty_l))))

  let node_ty = Lazy.force node_ty_l
  let link_ty = Ptype.option (Pbox.ptype_rec node_ty_l)
  let head_ty = Prefcell.ptype link_ty

  type t = ((link, P.brand) Prefcell.t, P.brand) Pbox.t

  let root () : t =
    P.root ~ty:head_ty ~init:(fun _ -> Prefcell.make ~ty:link_ty None) ()

  let new_node v j =
    Pbox.make ~ty:node_ty { value = v; next = Prefcell.make ~ty:link_ty None } j

  let insert t v j =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> Prefcell.set cell (Some (new_node v j)) j
      | Some b when v < (Pbox.get b).value ->
          let n = new_node v j in
          (* move the old link into the new node's next (no drop) *)
          let old = Prefcell.replace cell (Some n) j in
          Prefcell.set (Pbox.get n).next old j
      | Some b when v = (Pbox.get b).value -> ()
      | Some b -> go (Pbox.get b).next
    in
    go (Pbox.get t)

  let mem t v =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> false
      | Some b ->
          let n = Pbox.get b in
          if n.value = v then true else if v < n.value then false else go n.next
    in
    go (Pbox.get t)

  let remove t v j =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> false
      | Some b when (Pbox.get b).value = v ->
          (* detach the tail, then drop just the removed node *)
          let succ = Prefcell.replace (Pbox.get b).next None j in
          Prefcell.set cell succ j;
          true
      | Some b when v < (Pbox.get b).value -> false
      | Some b -> go (Pbox.get b).next
    in
    go (Pbox.get t)

  let to_list t =
    let rec go acc cell =
      match Prefcell.borrow cell with
      | None -> List.rev acc
      | Some b ->
          let n = Pbox.get b in
          go (n.value :: acc) n.next
    in
    go [] (Pbox.get t)

  let length t = List.length (to_list t)

  let is_empty t = Prefcell.borrow (Pbox.get t) = None

  let fold t ~init ~f =
    let rec go acc cell =
      match Prefcell.borrow cell with
      | None -> acc
      | Some b ->
          let n = Pbox.get b in
          go (f acc n.value) n.next
    in
    go init (Pbox.get t)

  let iter t f = fold t ~init:() ~f:(fun () v -> f v)

  let min_value t =
    match Prefcell.borrow (Pbox.get t) with
    | None -> None
    | Some b -> Some (Pbox.get b).value

  let max_value t = fold t ~init:None ~f:(fun _ v -> Some v)

  let nth t i =
    let rec go k cell =
      match Prefcell.borrow cell with
      | None -> None
      | Some b ->
          let n = Pbox.get b in
          if k = 0 then Some n.value else go (k - 1) n.next
    in
    if i < 0 then None else go i (Pbox.get t)

  let of_list vs j =
    let t = root () in
    List.iter (fun v -> insert t v j) vs;
    t

  let clear t j = Prefcell.set (Pbox.get t) None j

  let count_if t p = fold t ~init:0 ~f:(fun n v -> if p v then n + 1 else n)

  let equal a b = to_list a = to_list b
end
