(** Volatile chained hash map — the "Rust" baseline of Table 3.
    {!Phashmap} is the identical structure with Corundum persistence
    added. *)

type entry = { key : int; mutable value : int; mutable next : entry option }
type t = { buckets : entry option array }

let create ?(nbuckets = 64) () = { buckets = Array.make nbuckets None }
let bucket_of t k = (k * 0x2545F491) land max_int mod Array.length t.buckets

let put t k v =
  let b = bucket_of t k in
  let rec find = function
    | None -> None
    | Some e -> if e.key = k then Some e else find e.next
  in
  match find t.buckets.(b) with
  | Some e -> e.value <- v
  | None -> t.buckets.(b) <- Some { key = k; value = v; next = t.buckets.(b) }

let get t k =
  let rec find = function
    | None -> None
    | Some e -> if e.key = k then Some e.value else find e.next
  in
  find t.buckets.(bucket_of t k)

let del t k =
  let b = bucket_of t k in
  let rec unlink = function
    | None -> (None, false)
    | Some e when e.key = k -> (e.next, true)
    | Some e ->
        let rest, found = unlink e.next in
        e.next <- rest;
        (Some e, found)
  in
  let head, found = unlink t.buckets.(b) in
  t.buckets.(b) <- head;
  found

let length t =
  let n = ref 0 in
  Array.iter
    (fun head ->
      let rec count = function
        | None -> ()
        | Some e ->
            incr n;
            count e.next
      in
      count head)
    t.buckets;
  !n

let is_empty t = length t = 0

let fold t ~init ~f =
  let acc = ref init in
  Array.iter
    (fun head ->
      let rec go = function
        | None -> ()
        | Some e ->
            acc := f !acc e.key e.value;
            go e.next
      in
      go head)
    t.buckets;
  !acc

let iter t f = fold t ~init:() ~f:(fun () k v -> f k v)
let mem t k = get t k <> None
let keys t = fold t ~init:[] ~f:(fun acc k _ -> k :: acc)
let values t = fold t ~init:[] ~f:(fun acc _ v -> v :: acc)

let update t k f =
  match get t k with
  | Some v -> put t k (f v)
  | None -> ()

let of_list kvs =
  let t = create () in
  List.iter (fun (k, v) -> put t k v) kvs;
  t

let to_list t = List.sort compare (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

let clear t = Array.fill t.buckets 0 (Array.length t.buckets) None
