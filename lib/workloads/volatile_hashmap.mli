(** Volatile chained hash map — the "Rust" baseline of Table 3.
    {!Phashmap} is the identical structure with Corundum persistence
    added. *)

type t

val create : ?nbuckets:int -> unit -> t
val put : t -> int -> int -> unit
val get : t -> int -> int option
val del : t -> int -> bool
val length : t -> int
val is_empty : t -> bool
val fold : t -> init:'b -> f:('b -> int -> int -> 'b) -> 'b
val iter : t -> (int -> int -> unit) -> unit
val mem : t -> int -> bool
val keys : t -> int list
val values : t -> int list
val update : t -> int -> (int -> int) -> unit
val of_list : (int * int) list -> t
val to_list : t -> (int * int) list
val clear : t -> unit
