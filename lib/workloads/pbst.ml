(** Persistent binary search tree — {!Volatile_bst} plus Corundum. *)

open Corundum

module Make (P : Pool.S) = struct
  type node = {
    key : int;
    left : (link, P.brand) Prefcell.t;
    right : (link, P.brand) Prefcell.t;
  }

  and link = (node, P.brand) Pbox.t option

  let rec node_ty_l : (node, P.brand) Ptype.t Lazy.t =
    lazy
      (Ptype.record3 ~name:"pbst-node"
         ~inj:(fun key left right -> { key; left; right })
         ~proj:(fun n -> (n.key, n.left, n.right))
         Ptype.int
         (Prefcell.ptype (Ptype.option (Pbox.ptype_rec node_ty_l)))
         (Prefcell.ptype (Ptype.option (Pbox.ptype_rec node_ty_l))))

  let node_ty = Lazy.force node_ty_l
  let link_ty = Ptype.option (Pbox.ptype_rec node_ty_l)
  let root_ty = Prefcell.ptype link_ty

  type t = ((link, P.brand) Prefcell.t, P.brand) Pbox.t

  let root () : t =
    P.root ~ty:root_ty ~init:(fun _ -> Prefcell.make ~ty:link_ty None) ()

  let new_node k j =
    Pbox.make ~ty:node_ty
      {
        key = k;
        left = Prefcell.make ~ty:link_ty None;
        right = Prefcell.make ~ty:link_ty None;
      }
      j

  let insert t k j =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> Prefcell.set cell (Some (new_node k j)) j
      | Some b when k < (Pbox.get b).key -> go (Pbox.get b).left
      | Some b when k > (Pbox.get b).key -> go (Pbox.get b).right
      | Some _ -> ()
    in
    go (Pbox.get t)

  let mem t k =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> false
      | Some b when k < (Pbox.get b).key -> go (Pbox.get b).left
      | Some b when k > (Pbox.get b).key -> go (Pbox.get b).right
      | Some _ -> true
    in
    go (Pbox.get t)

  let size t =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> 0
      | Some b -> 1 + go (Pbox.get b).left + go (Pbox.get b).right
    in
    go (Pbox.get t)

  let to_list t =
    let rec go acc cell =
      match Prefcell.borrow cell with
      | None -> acc
      | Some b ->
          let n = Pbox.get b in
          go (n.key :: go acc n.right) n.left
    in
    go [] (Pbox.get t)

  let is_empty t = Prefcell.borrow (Pbox.get t) = None

  let fold t ~init ~f =
    let rec go acc cell =
      match Prefcell.borrow cell with
      | None -> acc
      | Some b ->
          let n = Pbox.get b in
          go (f (go acc n.left) n.key) n.right
    in
    go init (Pbox.get t)

  let iter t f = fold t ~init:() ~f:(fun () k -> f k)

  let min_key t =
    let rec go best cell =
      match Prefcell.borrow cell with
      | None -> best
      | Some b ->
          let n = Pbox.get b in
          go (Some n.key) n.left
    in
    go None (Pbox.get t)

  let max_key t =
    let rec go best cell =
      match Prefcell.borrow cell with
      | None -> best
      | Some b ->
          let n = Pbox.get b in
          go (Some n.key) n.right
    in
    go None (Pbox.get t)

  let height t =
    let rec go cell =
      match Prefcell.borrow cell with
      | None -> 0
      | Some b ->
          let n = Pbox.get b in
          1 + max (go n.left) (go n.right)
    in
    go (Pbox.get t)

  let of_list ks j =
    let t = root () in
    List.iter (fun k -> insert t k j) ks;
    t

  let range t ~lo ~hi =
    fold t ~init:[] ~f:(fun acc k -> if k >= lo && k <= hi then k :: acc else acc)
    |> List.rev

  let count_if t p = fold t ~init:0 ~f:(fun n k -> if p k then n + 1 else n)
end
