(** Hash-map key-value store over a raw persistent heap (Figure 1's
    KVStore).

    Fixed-size bucket directory of chain heads; entries are
    [key i64 | value i64 | next u64] blocks.  PUT updates in place or
    prepends; GET scans the chain; DEL unlinks. *)

module Make (E : Engines.Engine_sig.S) = struct
  type t = { eng : E.t; nbuckets : int }

  let entry_size = 24

  let create ?(nbuckets = 1024) eng =
    E.transaction eng (fun tx ->
        if E.root tx = 0 then begin
          let dir = E.alloc tx (nbuckets * 8) in
          for i = 0 to nbuckets - 1 do
            E.write tx (dir + (i * 8)) 0L
          done;
          E.set_root tx dir
        end);
    { eng; nbuckets }

  (* Fibonacci hashing keeps adversarial integer keys spread out. *)
  let bucket_of t key =
    Int64.to_int
      (Int64.unsigned_rem
         (Int64.mul key 0x9E3779B97F4A7C15L)
         (Int64.of_int t.nbuckets))

  (* Each operation locks its bucket's head slot for the transaction, so
     concurrent transactions on a shared pool serialize per chain (the
     lock is volatile — single-domain runs see no persist-cost change).
     One bucket lock per transaction, so no lock-order cycles. *)
  let head_slot t tx key =
    let slot = E.root tx + (bucket_of t key * 8) in
    E.lock tx slot;
    slot

  let put t key value =
    E.transaction t.eng (fun tx ->
        let slot = head_slot t tx key in
        let rec find cur =
          if cur = 0 then None
          else if E.read tx cur = key then Some cur
          else find (Int64.to_int (E.read tx (cur + 16)))
        in
        match find (Int64.to_int (E.read tx slot)) with
        | Some e -> E.write tx (e + 8) value
        | None ->
            let e = E.alloc tx entry_size in
            E.write tx e key;
            E.write tx (e + 8) value;
            E.write tx (e + 16) (E.read tx slot);
            E.write tx slot (Int64.of_int e))

  let get t key =
    E.transaction t.eng (fun tx ->
        let rec find cur =
          if cur = 0 then None
          else if E.read tx cur = key then Some (E.read tx (cur + 8))
          else find (Int64.to_int (E.read tx (cur + 16)))
        in
        find (Int64.to_int (E.read tx (head_slot t tx key))))

  let del t key =
    E.transaction t.eng (fun tx ->
        let slot = head_slot t tx key in
        let rec unlink prev_slot cur =
          if cur = 0 then false
          else if E.read tx cur = key then begin
            E.write tx prev_slot (E.read tx (cur + 16));
            E.free tx cur;
            true
          end
          else unlink (cur + 16) (Int64.to_int (E.read tx (cur + 16)))
        in
        unlink slot (Int64.to_int (E.read tx slot)))

  let length t =
    E.transaction t.eng (fun tx ->
        let total = ref 0 in
        for b = 0 to t.nbuckets - 1 do
          let rec count cur =
            if cur <> 0 then begin
              incr total;
              count (Int64.to_int (E.read tx (cur + 16)))
            end
          in
          count (Int64.to_int (E.read tx (E.root tx + (b * 8))))
        done;
        !total)
end
