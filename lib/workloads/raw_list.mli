(** Sorted linked list over a raw persistent heap — the "PMDK C++" side
    of Table 3's ease-of-use comparison.  Unlike {!Plist} (a delta over
    {!Volatile_list}), this is what writing against a [libpmemobj]-style
    API demands: a from-scratch rewrite with manual layout and offsets as
    pointers. *)

module Make (E : Engines.Engine_sig.S) : sig
  type t = E.t

  val insert : t -> int -> unit
  (** Sorted insert; duplicates ignored. *)

  val mem : t -> int -> bool
  val remove : t -> int -> bool
  val to_list : t -> int list
  val length : t -> int
end
