(** Persistent chained hash map — {!Volatile_hashmap} plus Corundum. *)

open Corundum

module Make (P : Pool.S) = struct
  type entry = {
    key : int;
    value : (int, P.brand) Pcell.t;
    next : (link, P.brand) Prefcell.t;
  }

  and link = (entry, P.brand) Pbox.t option

  let rec entry_ty_l : (entry, P.brand) Ptype.t Lazy.t =
    lazy
      (Ptype.record3 ~name:"phashmap-entry"
         ~inj:(fun key value next -> { key; value; next })
         ~proj:(fun e -> (e.key, e.value, e.next))
         Ptype.int
         (Pcell.ptype Ptype.int)
         (Prefcell.ptype (Ptype.option (Pbox.ptype_rec entry_ty_l))))

  let entry_ty = Lazy.force entry_ty_l
  let link_ty = Ptype.option (Pbox.ptype_rec entry_ty_l)
  let bucket_ty = Prefcell.ptype link_ty
  let root_ty = Pvec.ptype bucket_ty

  type t = ((((link, P.brand) Prefcell.t, P.brand) Pvec.t, P.brand) Pbox.t)

  let root ?(nbuckets = 64) () : t =
    P.root ~ty:root_ty
      ~init:(fun j ->
        let v = Pvec.make ~ty:bucket_ty ~capacity:nbuckets j in
        for _ = 1 to nbuckets do
          Pvec.push v (Prefcell.make ~ty:link_ty None) j
        done;
        v)
      ()

  let bucket_of t k =
    let v = Pbox.get t in
    Pvec.get v ((k * 0x2545F491) land max_int mod Pvec.length v)

  let put t k v j =
    let cell = bucket_of t k in
    let rec find link =
      match Prefcell.borrow link with
      | None -> None
      | Some b ->
          let e = Pbox.get b in
          if e.key = k then Some e else find e.next
    in
    match find cell with
    | Some e -> Pcell.set e.value v j
    | None ->
        let entry =
          Pbox.make ~ty:entry_ty
            {
              key = k;
              value = Pcell.make ~ty:Ptype.int v;
              next = Prefcell.make ~ty:link_ty None;
            }
            j
        in
        let old = Prefcell.replace cell (Some entry) j in
        Prefcell.set (Pbox.get entry).next old j

  let get t k =
    let rec find link =
      match Prefcell.borrow link with
      | None -> None
      | Some b ->
          let e = Pbox.get b in
          if e.key = k then Some (Pcell.get e.value) else find e.next
    in
    find (bucket_of t k)

  let del t k j =
    let rec unlink link =
      match Prefcell.borrow link with
      | None -> false
      | Some b when (Pbox.get b).key = k ->
          let succ = Prefcell.replace (Pbox.get b).next None j in
          Prefcell.set link succ j;
          true
      | Some b -> unlink (Pbox.get b).next
    in
    unlink (bucket_of t k)

  let length t =
    let v = Pbox.get t in
    let n = ref 0 in
    Pvec.iter v (fun cell ->
        let rec count link =
          match Prefcell.borrow link with
          | None -> ()
          | Some b ->
              incr n;
              count (Pbox.get b).next
        in
        count cell);
    !n

  let is_empty t = length t = 0

  let fold t ~init ~f =
    let v = Pbox.get t in
    let acc = ref init in
    Pvec.iter v (fun cell ->
        let rec go link =
          match Prefcell.borrow link with
          | None -> ()
          | Some b ->
              let e = Pbox.get b in
              acc := f !acc e.key (Pcell.get e.value);
              go e.next
        in
        go cell);
    !acc

  let iter t f = fold t ~init:() ~f:(fun () k v -> f k v)
  let mem t k = get t k <> None
  let keys t = fold t ~init:[] ~f:(fun acc k _ -> k :: acc)
  let values t = fold t ~init:[] ~f:(fun acc _ v -> v :: acc)

  let update t k f j =
    match get t k with
    | Some v -> put t k (f v) j
    | None -> ()

  let of_list kvs j =
    let t = root () in
    List.iter (fun (k, v) -> put t k v j) kvs;
    t

  let to_list t =
    List.sort compare (fold t ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let clear t j =
    let v = Pbox.get t in
    Pvec.iter v (fun cell -> Prefcell.set cell None j)
end
