(** Volatile binary search tree — the "Rust" baseline of Table 3.
    {!Pbst} is the identical structure with Corundum persistence added. *)

type node = { key : int; left : node option ref; right : node option ref }
type t = { root : node option ref }

let create () = { root = ref None }

let insert t k =
  let rec go cell =
    match !cell with
    | None -> cell := Some { key = k; left = ref None; right = ref None }
    | Some n when k < n.key -> go n.left
    | Some n when k > n.key -> go n.right
    | Some _ -> ()
  in
  go t.root

let mem t k =
  let rec go = function
    | None -> false
    | Some n when k < n.key -> go !(n.left)
    | Some n when k > n.key -> go !(n.right)
    | Some _ -> true
  in
  go !(t.root)

let size t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + go !(n.left) + go !(n.right)
  in
  go !(t.root)

let to_list t =
  let rec go acc = function
    | None -> acc
    | Some n -> go (n.key :: go acc !(n.right)) !(n.left)
  in
  go [] !(t.root)

let is_empty t = !(t.root) = None

let fold t ~init ~f =
  let rec go acc = function
    | None -> acc
    | Some n -> go (f (go acc !(n.left)) n.key) !(n.right)
  in
  go init !(t.root)

let iter t f = fold t ~init:() ~f:(fun () k -> f k)

let min_key t =
  let rec go best = function
    | None -> best
    | Some n -> go (Some n.key) !(n.left)
  in
  go None !(t.root)

let max_key t =
  let rec go best = function
    | None -> best
    | Some n -> go (Some n.key) !(n.right)
  in
  go None !(t.root)

let height t =
  let rec go = function
    | None -> 0
    | Some n -> 1 + max (go !(n.left)) (go !(n.right))
  in
  go !(t.root)

let of_list ks =
  let t = create () in
  List.iter (insert t) ks;
  t

let range t ~lo ~hi =
  fold t ~init:[] ~f:(fun acc k -> if k >= lo && k <= hi then k :: acc else acc)
  |> List.rev

let count_if t p = fold t ~init:0 ~f:(fun n k -> if p k then n + 1 else n)
