(** B+tree with 8-way fanout over a raw persistent heap (Figure 1's
    B+Tree).

    Node layout (128 bytes):
    - meta u64 at +0: bit 0 = leaf flag, bits 1.. = entry count;
    - keys[7] at +8;
    - leaf:     values[7] at +64, next-leaf pointer at +120;
    - internal: children[8] at +64.

    Internal nodes hold [count] separator keys and [count+1] children;
    child [i] covers keys < keys[i] (the rightmost child covers the
    rest).  Values live only in leaves, which are chained for scans.
    Deletion rebalances proactively (borrow from a sibling, else merge),
    keeping every non-root node at least half full. *)

module Make (E : Engines.Engine_sig.S) = struct
  type t = E.t

  let fanout = 8
  let max_keys = fanout - 1 (* 7 *)
  let min_keys = 3
  let node_size = 128

  (* --- node accessors -------------------------------------------------- *)

  let meta tx n = Int64.to_int (E.read tx n)
  let is_leaf tx n = meta tx n land 1 = 1
  let count tx n = meta tx n lsr 1

  let set_meta tx n ~leaf ~count =
    E.write tx n (Int64.of_int ((count lsl 1) lor if leaf then 1 else 0))

  let key tx n i = E.read tx (n + 8 + (i * 8))
  let set_key tx n i v = E.write tx (n + 8 + (i * 8)) v
  let value tx n i = E.read tx (n + 64 + (i * 8))
  let set_value tx n i v = E.write tx (n + 64 + (i * 8)) v
  let child tx n i = Int64.to_int (E.read tx (n + 64 + (i * 8)))
  let set_child tx n i c = E.write tx (n + 64 + (i * 8)) (Int64.of_int c)
  let next_leaf tx n = Int64.to_int (E.read tx (n + 120))
  let set_next_leaf tx n c = E.write tx (n + 120) (Int64.of_int c)

  let new_node tx ~leaf =
    let n = E.alloc tx node_size in
    set_meta tx n ~leaf ~count:0;
    if leaf then set_next_leaf tx n 0;
    n

  (* Index of the child to descend into: the first separator > key, or
     the rightmost child. *)
  let descend_index tx n k =
    let c = count tx n in
    let rec go i = if i >= c then i else if k < key tx n i then i else go (i + 1) in
    go 0

  (* Position of [k] in a leaf, or the insertion point. *)
  let leaf_search tx n k =
    let c = count tx n in
    let rec go i =
      if i >= c then `Insert_at i
      else
        let ki = key tx n i in
        if k = ki then `Found i else if k < ki then `Insert_at i else go (i + 1)
    in
    go 0

  (* --- lookup ----------------------------------------------------------- *)

  let find eng k =
    E.transaction eng (fun tx ->
        let rec go n =
          if n = 0 then None
          else if is_leaf tx n then
            match leaf_search tx n k with
            | `Found i -> Some (value tx n i)
            | `Insert_at _ -> None
          else go (child tx n (descend_index tx n k))
        in
        go (E.root tx))

  let mem eng k = find eng k <> None

  (* --- insert ----------------------------------------------------------- *)

  (* Split the full child at index [i] of internal node [parent].  For a
     leaf the separator is the first key of the new right node (keys stay
     in the leaves); for an internal node the middle key moves up. *)
  let split_child tx parent i =
    let c = child tx parent i in
    let leaf = is_leaf tx c in
    let right = new_node tx ~leaf in
    let sep =
      if leaf then begin
        (* left keeps 0..2 (3 entries), right takes 3..6 (4 entries) *)
        for k = 3 to 6 do
          set_key tx right (k - 3) (key tx c k);
          set_value tx right (k - 3) (value tx c k)
        done;
        set_meta tx right ~leaf:true ~count:4;
        set_next_leaf tx right (next_leaf tx c);
        set_next_leaf tx c right;
        set_meta tx c ~leaf:true ~count:3;
        key tx right 0
      end
      else begin
        (* left keeps keys 0..2 / children 0..3; key 3 moves up; right
           takes keys 4..6 / children 4..7 *)
        for k = 4 to 6 do
          set_key tx right (k - 4) (key tx c k)
        done;
        for k = 4 to 7 do
          set_child tx right (k - 4) (child tx c k)
        done;
        set_meta tx right ~leaf:false ~count:3;
        let sep = key tx c 3 in
        set_meta tx c ~leaf:false ~count:3;
        sep
      end
    in
    (* Shift the parent's keys and children right to make room at [i]. *)
    let pc = count tx parent in
    for k = pc - 1 downto i do
      set_key tx parent (k + 1) (key tx parent k)
    done;
    for k = pc downto i + 1 do
      set_child tx parent (k + 1) (child tx parent k)
    done;
    set_key tx parent i sep;
    set_child tx parent (i + 1) right;
    set_meta tx parent ~leaf:false ~count:(pc + 1)

  let rec insert_nonfull tx n k v =
    if is_leaf tx n then begin
      match leaf_search tx n k with
      | `Found i -> set_value tx n i v
      | `Insert_at i ->
          let c = count tx n in
          for m = c - 1 downto i do
            set_key tx n (m + 1) (key tx n m);
            set_value tx n (m + 1) (value tx n m)
          done;
          set_key tx n i k;
          set_value tx n i v;
          set_meta tx n ~leaf:true ~count:(c + 1)
    end
    else begin
      let i = descend_index tx n k in
      let c = child tx n i in
      if count tx c = max_keys then begin
        split_child tx n i;
        (* the separator changed the geometry: re-pick the child *)
        let i = descend_index tx n k in
        insert_nonfull tx (child tx n i) k v
      end
      else insert_nonfull tx c k v
    end

  let insert eng k v =
    E.transaction eng (fun tx ->
        let root = E.root tx in
        if root = 0 then begin
          let leaf = new_node tx ~leaf:true in
          set_key tx leaf 0 k;
          set_value tx leaf 0 v;
          set_meta tx leaf ~leaf:true ~count:1;
          E.set_root tx leaf
        end
        else if count tx root = max_keys then begin
          let nroot = new_node tx ~leaf:false in
          set_child tx nroot 0 root;
          set_meta tx nroot ~leaf:false ~count:0;
          split_child tx nroot 0;
          E.set_root tx nroot;
          insert_nonfull tx nroot k v
        end
        else insert_nonfull tx root k v)

  (* --- delete ----------------------------------------------------------- *)

  let remove_from_leaf tx n i =
    let c = count tx n in
    for m = i to c - 2 do
      set_key tx n m (key tx n (m + 1));
      set_value tx n m (value tx n (m + 1))
    done;
    set_meta tx n ~leaf:true ~count:(c - 1)

  (* Borrowing and merging around child [i] of [parent]. *)

  let borrow_from_left tx parent i =
    let c = child tx parent i and l = child tx parent (i - 1) in
    let lc = count tx l and cc = count tx c in
    if is_leaf tx c then begin
      for m = cc - 1 downto 0 do
        set_key tx c (m + 1) (key tx c m);
        set_value tx c (m + 1) (value tx c m)
      done;
      set_key tx c 0 (key tx l (lc - 1));
      set_value tx c 0 (value tx l (lc - 1));
      set_meta tx c ~leaf:true ~count:(cc + 1);
      set_meta tx l ~leaf:true ~count:(lc - 1);
      set_key tx parent (i - 1) (key tx c 0)
    end
    else begin
      for m = cc - 1 downto 0 do
        set_key tx c (m + 1) (key tx c m)
      done;
      for m = cc downto 0 do
        set_child tx c (m + 1) (child tx c m)
      done;
      set_key tx c 0 (key tx parent (i - 1));
      set_child tx c 0 (child tx l lc);
      set_meta tx c ~leaf:false ~count:(cc + 1);
      set_key tx parent (i - 1) (key tx l (lc - 1));
      set_meta tx l ~leaf:false ~count:(lc - 1)
    end

  let borrow_from_right tx parent i =
    let c = child tx parent i and r = child tx parent (i + 1) in
    let rc = count tx r and cc = count tx c in
    if is_leaf tx c then begin
      set_key tx c cc (key tx r 0);
      set_value tx c cc (value tx r 0);
      set_meta tx c ~leaf:true ~count:(cc + 1);
      for m = 0 to rc - 2 do
        set_key tx r m (key tx r (m + 1));
        set_value tx r m (value tx r (m + 1))
      done;
      set_meta tx r ~leaf:true ~count:(rc - 1);
      set_key tx parent i (key tx r 0)
    end
    else begin
      set_key tx c cc (key tx parent i);
      set_child tx c (cc + 1) (child tx r 0);
      set_meta tx c ~leaf:false ~count:(cc + 1);
      set_key tx parent i (key tx r 0);
      for m = 0 to rc - 2 do
        set_key tx r m (key tx r (m + 1))
      done;
      for m = 0 to rc - 1 do
        set_child tx r m (child tx r (m + 1))
      done;
      set_meta tx r ~leaf:false ~count:(rc - 1)
    end

  (* Merge child [i+1] into child [i]; removes separator [i] from the
     parent and frees the right node. *)
  let merge_children tx parent i =
    let l = child tx parent i and r = child tx parent (i + 1) in
    let lc = count tx l and rc = count tx r in
    if is_leaf tx l then begin
      for m = 0 to rc - 1 do
        set_key tx l (lc + m) (key tx r m);
        set_value tx l (lc + m) (value tx r m)
      done;
      set_meta tx l ~leaf:true ~count:(lc + rc);
      set_next_leaf tx l (next_leaf tx r)
    end
    else begin
      set_key tx l lc (key tx parent i);
      for m = 0 to rc - 1 do
        set_key tx l (lc + 1 + m) (key tx r m)
      done;
      for m = 0 to rc do
        set_child tx l (lc + 1 + m) (child tx r m)
      done;
      set_meta tx l ~leaf:false ~count:(lc + rc + 1)
    end;
    let pc = count tx parent in
    for m = i to pc - 2 do
      set_key tx parent m (key tx parent (m + 1))
    done;
    for m = i + 1 to pc - 1 do
      set_child tx parent m (child tx parent (m + 1))
    done;
    set_meta tx parent ~leaf:false ~count:(pc - 1);
    E.free tx r

  (* Ensure child [i] of [parent] has more than [min_keys] keys before
     descending into it. *)
  let fix_child tx parent i =
    let c = child tx parent i in
    if count tx c > min_keys then ()
    else if i > 0 && count tx (child tx parent (i - 1)) > min_keys then
      borrow_from_left tx parent i
    else if i < count tx parent && count tx (child tx parent (i + 1)) > min_keys
    then borrow_from_right tx parent i
    else if i > 0 then merge_children tx parent (i - 1)
    else merge_children tx parent i

  let rec remove_rec tx n k =
    if is_leaf tx n then
      match leaf_search tx n k with
      | `Found i ->
          remove_from_leaf tx n i;
          true
      | `Insert_at _ -> false
    else begin
      let i = descend_index tx n k in
      fix_child tx n i;
      (* the fix may have merged the target child away; re-resolve *)
      let i = descend_index tx n k in
      remove_rec tx (child tx n i) k
    end

  let remove eng k =
    E.transaction eng (fun tx ->
        let root = E.root tx in
        if root = 0 then false
        else begin
          let r = remove_rec tx root k in
          (* collapse an empty internal root; free an empty leaf root *)
          let root = E.root tx in
          if (not (is_leaf tx root)) && count tx root = 0 then begin
            E.set_root tx (child tx root 0);
            E.free tx root
          end
          else if is_leaf tx root && count tx root = 0 then begin
            E.set_root tx 0;
            E.free tx root
          end;
          r
        end)

  (* --- scans and checks -------------------------------------------------- *)

  let leftmost_leaf tx n =
    let rec go n = if is_leaf tx n then n else go (child tx n 0) in
    go n

  let fold eng ~init ~f =
    E.transaction eng (fun tx ->
        let root = E.root tx in
        if root = 0 then init
        else begin
          let acc = ref init in
          let leaf = ref (leftmost_leaf tx root) in
          while !leaf <> 0 do
            for i = 0 to count tx !leaf - 1 do
              acc := f !acc (key tx !leaf i) (value tx !leaf i)
            done;
            leaf := next_leaf tx !leaf
          done;
          !acc
        end)

  let to_list eng =
    List.rev (fold eng ~init:[] ~f:(fun acc k v -> (k, v) :: acc))

  let size eng = fold eng ~init:0 ~f:(fun n _ _ -> n + 1)

  exception Violation of string

  (* Structural invariants: key order, occupancy bounds, uniform depth. *)
  let check eng =
    E.transaction eng (fun tx ->
        let fail fmt = Printf.ksprintf (fun s -> raise (Violation s)) fmt in
        let rec go n ~lo ~hi ~is_root =
          let c = count tx n in
          if (not is_root) && c < min_keys && not (is_leaf tx n) then
            fail "internal node %d underfull (%d)" n c;
          if (not is_root) && is_leaf tx n && c < min_keys then
            fail "leaf %d underfull (%d)" n c;
          if c > max_keys then fail "node %d overfull (%d)" n c;
          for i = 0 to c - 1 do
            let k = key tx n i in
            (match lo with
            | Some l when k < l -> fail "key %Ld below bound in %d" k n
            | _ -> ());
            (match hi with
            | Some h when k >= h -> fail "key %Ld above bound in %d" k n
            | _ -> ());
            if i > 0 && key tx n (i - 1) >= k then fail "keys unsorted in %d" n
          done;
          if is_leaf tx n then 1
          else begin
            let depths =
              List.init (c + 1) (fun i ->
                  let lo' = if i = 0 then lo else Some (key tx n (i - 1)) in
                  let hi' = if i = c then hi else Some (key tx n i) in
                  go (child tx n i) ~lo:lo' ~hi:hi' ~is_root:false)
            in
            match depths with
            | d :: rest ->
                if List.exists (fun d' -> d' <> d) rest then
                  fail "ragged depth under %d" n;
                d + 1
            | [] -> fail "internal node %d without children" n
          end
        in
        let root = E.root tx in
        if root = 0 then Ok ()
        else
          match go root ~lo:None ~hi:None ~is_root:true with
          | _depth -> Ok ()
          | exception Violation msg -> Error msg)
end
