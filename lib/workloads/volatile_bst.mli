(** Volatile binary search tree — the "Rust" baseline of Table 3.
    {!Pbst} is the identical structure with Corundum persistence added. *)

type t

val create : unit -> t
val insert : t -> int -> unit
val mem : t -> int -> bool
val size : t -> int
val to_list : t -> int list
(** In-order (sorted). *)

val is_empty : t -> bool
val fold : t -> init:'b -> f:('b -> int -> 'b) -> 'b
val iter : t -> (int -> unit) -> unit
val min_key : t -> int option
val max_key : t -> int option
val height : t -> int
val of_list : int list -> t
val range : t -> lo:int -> hi:int -> int list
val count_if : t -> (int -> bool) -> int
