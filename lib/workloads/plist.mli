(** Persistent sorted linked list — {!Volatile_list} plus Corundum.

    The implementation mirrors the volatile version line for line; the
    Table 3 harness ([bin/tables.exe table3]) counts the two files'
    difference as the cost of adding persistence.  Mutators thread the
    journal; reads are journal-free. *)

module Make (P : Corundum.Pool.S) : sig
  type node
  type t

  val node_ty : (node, P.brand) Corundum.Ptype.t
  val head_ty :
    ((((node, P.brand) Corundum.Pbox.t option, P.brand) Corundum.Prefcell.t), P.brand) Corundum.Ptype.t
  (** Root descriptor (also what the leak checker walks from). *)

  val root : unit -> t
  (** The pool's list head (created on first use). *)

  val insert : t -> int -> P.brand Corundum.Journal.t -> unit
  (** Sorted insert; duplicates are ignored. *)

  val remove : t -> int -> P.brand Corundum.Journal.t -> bool
  val mem : t -> int -> bool
  val to_list : t -> int list
  val length : t -> int
  val is_empty : t -> bool
  val fold : t -> init:'b -> f:('b -> int -> 'b) -> 'b
  val iter : t -> (int -> unit) -> unit
  val min_value : t -> int option
  val max_value : t -> int option
  val nth : t -> int -> int option
  val of_list : int list -> P.brand Corundum.Journal.t -> t
  val clear : t -> P.brand Corundum.Journal.t -> unit
  val count_if : t -> (int -> bool) -> int
  val equal : t -> t -> bool
end
