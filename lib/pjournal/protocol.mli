(** The journal protocol as a typed instruction stream.

    The commit, abort and truncate paths of {!Journal_impl} are each an
    ordered list of persist-granular {!phase}s; the plan functions below
    are the single source of that ordering.  {!Journal_impl} interprets
    the plans against the real device, and the model checker
    ([lib/pmodel]) expands the very same plans into its small-step
    schedule — so the state space the checker certifies is the
    instruction stream the implementation executes. *)

type phase =
  | Flush_targets  (** logged target ranges flushed (coalesced lines) *)
  | Flush_marks  (** batched alloc-table marks flushed (mark-after-seal) *)
  | Persist_drop_area
      (** drop records flushed (header counts stay volatile until the
          truncate resets them — walkers never trust counts) *)
  | Commit_fence  (** the commit point: one fence makes it all durable *)
  | Apply_drops  (** deferred frees applied as dirty table clears *)
  | Merge_runs
      (** group commit: the epoch leader flushes the merged,
          deduplicated union of every member's commit lines *)
  | Epoch_fence
      (** group commit: the single epoch fence, issued once by the
          leader — every member's commit point at once *)
  | Restore_data  (** abort: pre-images copied back, flushed per entry *)
  | Restore_fence  (** abort: one fence covers every restore flush *)
  | Revert_allocs  (** abort: allocations become dirty table clears *)
  | Release_spills  (** truncate: spill chain freed (dirty clears) *)
  | Persist_clears  (** truncate: clear flush + fence before invalidation *)
  | Reset_header
      (** truncate: one batched header persist retires the log (counts
          zeroed, epoch bumped, terminator reset) *)
  | Seal_intent
      (** CoW: the allocation/retire intent record flushed and fenced —
          durable before any mark or shadow line can land *)
  | Shadow_flush
      (** CoW: shadow-node lines and alloc-table mark lines flushed in
          coalesced runs (unreachable until the swap) *)
  | Root_swap
      (** CoW: the commit point — one 8-byte root-pointer/generation
          store plus an unfenced flush of its line *)
  | Retire_old
      (** CoW: one fence orders the swap before the retired blocks'
          table clears, stored and flushed unfenced after it *)

val name : phase -> string

val commit_plan : ndrops:int -> phase list
(** Phases of a commit, excluding the trailing truncate (append
    {!truncate_plan} for the full stream). *)

val group_commit_plan : phase list
(** Phases of a commit through the group-commit epoch combiner
    ({!Group_commit}): the per-transaction flush phases collapse into
    the leader's merged {!Merge_runs}, and the per-transaction
    {!Commit_fence} into the one {!Epoch_fence} shared by every member
    of the epoch.  Makes exactly the same bytes durable at the commit
    point as {!commit_plan}.  The trailing truncate stays per-member
    (append {!truncate_plan}). *)

val abort_plan : entries:int -> phase list
(** Phases of an abort before its truncate; [[]] when no entries were
    sealed. *)

val truncate_plan : spills:bool -> clears:bool -> phase list
(** Phases of a truncate: spill release and pending-clear persist only
    when present, then the header reset.  Releasing spills dirties table
    clears of its own, so [spills] implies {!Persist_clears}.  The clear
    persist is ordered strictly before {!Reset_header} — see
    I-CLEARS-BEFORE-INVALIDATE in [doc/pmodel.mld]. *)

val cow_commit_plan : allocs:bool -> frees:bool -> shadow:bool -> phase list
(** Phases of a minimally-ordered CoW commit (the mod engine), shared
    with the model checker's CoW program family.  [shadow] means the
    transaction wrote shadow lines (a root-copy update or fresh-node
    initialisation); [allocs]/[frees] add the durable intent and the
    retire tail.  Update = [[Shadow_flush; Commit_fence; Root_swap]]
    (2 flushes, 1 fence); alloc+write prepends [Seal_intent] (4/2);
    pure free is [[Seal_intent; Root_swap; Retire_old]] (3/2). *)
