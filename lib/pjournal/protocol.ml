(* The journal's commit/abort/truncate protocol as data.

   Each phase is one persist-granular step of the protocol; the plan
   functions return the exact ordered phase list the implementation
   executes ({!Journal_impl}) and the model checker enumerates crashes
   over ({!Pmodel}).  Keeping the ordering here — in one place, as a
   value — is what lets the checker certify the same instruction stream
   the implementation runs, and what makes a future reordering (group
   commit, fence elision) a one-line change that the checker judges
   before any pool does. *)

type phase =
  (* commit *)
  | Flush_targets
      (* every logged target range flushed, one flush per dirty line *)
  | Flush_marks (* the tx's batched alloc-table marks (mark-after-seal) *)
  | Persist_drop_area (* the drop records flushed (counts stay volatile) *)
  | Commit_fence (* THE commit point: one fence makes all of it durable *)
  | Apply_drops (* deferred frees become dirty table clears *)
  (* group commit *)
  | Merge_runs
      (* the epoch leader flushes the merged, deduplicated union of every
         member's commit lines (targets + marks + drop records) as
         coalesced runs *)
  | Epoch_fence
      (* the single epoch fence, issued once by the leader: every
         member's commit point at once (the WPQ drains whole) *)
  (* abort *)
  | Restore_data (* logged pre-images copied back, flushed per entry *)
  | Restore_fence (* one fence covers every restore flush *)
  | Revert_allocs (* this tx's allocations become dirty table clears *)
  (* truncate *)
  | Release_spills (* spill chain blocks freed (dirty table clears) *)
  | Persist_clears (* batched clear flush + fence, BEFORE invalidation *)
  | Reset_header
      (* one batched header persist: counts zeroed, epoch bumped,
         terminator reset — the log is retired *)
  (* CoW commit (the mod engine: no undo log on the hot path) *)
  | Seal_intent
      (* the allocation/retire intent record written, flushed and fenced
         — durable BEFORE any mark or shadow line can land *)
  | Shadow_flush
      (* shadow-node lines and alloc-table mark lines flushed in
         coalesced runs; nothing here is reachable from the root yet *)
  | Root_swap
      (* THE CoW commit point: one 8-byte store (root-pointer CAS /
         generation bump / link publish) plus an unfenced flush of its
         line — buffered durability, made durable by the next fence or
         left for recovery to roll forward *)
  | Retire_old
      (* one fence orders the swap before the retired blocks' table
         clears, which are then stored and flushed unfenced — a durable
         clear therefore implies a durable commit *)

let name = function
  | Flush_targets -> "flush-targets"
  | Flush_marks -> "flush-marks"
  | Persist_drop_area -> "persist-drop-area"
  | Commit_fence -> "commit-fence"
  | Apply_drops -> "apply-drops"
  | Merge_runs -> "merge-runs"
  | Epoch_fence -> "epoch-fence"
  | Restore_data -> "restore-data"
  | Restore_fence -> "restore-fence"
  | Revert_allocs -> "revert-allocs"
  | Release_spills -> "release-spills"
  | Persist_clears -> "persist-clears"
  | Reset_header -> "reset-header"
  | Seal_intent -> "seal-intent"
  | Shadow_flush -> "shadow-flush"
  | Root_swap -> "root-swap"
  | Retire_old -> "retire-old"

(* Commit: targets, marks and the drop area all become durable under the
   single commit fence; only then do the deferred frees apply.  The
   trailing truncate phases are appended by the caller via
   {!truncate_plan} (they depend on what the commit accumulated). *)
let commit_plan ~ndrops =
  [ Flush_targets; Flush_marks ]
  @ (if ndrops > 0 then [ Persist_drop_area ] else [])
  @ [ Commit_fence; Apply_drops ]

(* Group commit: the per-transaction flush phases collapse into the
   leader's single merged run, and the per-transaction commit fence into
   the one epoch fence.  Everything that [commit_plan] would flush
   (targets, marks, drop records) rides in the merged run, so the two
   plans make exactly the same bytes durable at the commit point — which
   is why the checker can certify them against the same invariants.  The
   trailing truncate stays per-member: its header persist is the
   member's durability acknowledgment. *)
let group_commit_plan = [ Merge_runs; Epoch_fence; Apply_drops ]

(* Abort: restore pre-images newest-first under one fence, then revert
   allocations.  An empty log skips straight to the truncate. *)
let abort_plan ~entries =
  if entries = 0 then [] else [ Restore_data; Restore_fence; Revert_allocs ]

(* Truncate: pending table clears are persisted strictly BEFORE the
   header persist invalidates the log — a durable clear beside a dead
   log would be unrecoverable, while a missed clear is re-derived from
   the still-walkable log.  Releasing spills itself produces clears, so
   [Release_spills] always implies [Persist_clears]. *)
let truncate_plan ~spills ~clears =
  (if spills then [ Release_spills ] else [])
  @ (if clears || spills then [ Persist_clears ] else [])
  @ [ Reset_header ]

(* CoW commit (the mod engine's minimally-ordered protocol).  A
   transaction with neither allocations nor frees needs no intent — its
   shadow lines are unreachable until the swap, so the whole commit is
   one fence: flush shadows, fence, swap.  Allocations and frees add a
   durable intent record sealed under its own fence FIRST (nothing else
   of the transaction is flushed yet, so nothing else can have landed),
   which recovery compares against the root cell's generation to roll
   the transaction forward or back.  Frees append the retire tail: a
   fence ordering the swap before the table clears, then the clears
   flushed unfenced.

   Per-op cost at the fence floor: update [Shadow_flush; Commit_fence;
   Root_swap] = 2 flushes / 1 fence; alloc+write adds [Seal_intent] =
   4/2; free is [Seal_intent; Root_swap; Retire_old] = 3/2 (no shadow
   lines, so the commit fence collapses into the retire fence). *)
let cow_commit_plan ~allocs ~frees ~shadow =
  (if allocs || frees then [ Seal_intent ] else [])
  @ (if shadow || allocs then [ Shadow_flush; Commit_fence ] else [])
  @ [ Root_swap ]
  @ if frees then [ Retire_old ] else []
