module D = Pmem.Device

type stats = {
  slots_scanned : int;
  rolled_back : int;
  completed : int;
  data_restored : int;
  allocs_reverted : int;
  drops_applied : int;
  entries_skipped : int;
  drops_skipped : int;
}

let empty_stats =
  {
    slots_scanned = 0;
    rolled_back = 0;
    completed = 0;
    data_restored = 0;
    allocs_reverted = 0;
    drops_applied = 0;
    entries_skipped = 0;
    drops_skipped = 0;
  }

let add_stats a b =
  {
    slots_scanned = a.slots_scanned + b.slots_scanned;
    rolled_back = a.rolled_back + b.rolled_back;
    completed = a.completed + b.completed;
    data_restored = a.data_restored + b.data_restored;
    allocs_reverted = a.allocs_reverted + b.allocs_reverted;
    drops_applied = a.drops_applied + b.drops_applied;
    entries_skipped = a.entries_skipped + b.entries_skipped;
    drops_skipped = a.drops_skipped + b.drops_skipped;
  }

let drop_slot_bytes = 16
let phase_committing = 1L
let hdr_size = 64

(* Revert an allocation-table byte if it is still set (idempotent). *)
let clear_if_live table off =
  match Palloc.Alloc_table.index_of_offset table off with
  | exception Invalid_argument _ -> false (* wild offset on a corrupt image *)
  | idx -> (
      match Palloc.Alloc_table.order_at table ~idx with
      | Some _ ->
          Palloc.Alloc_table.clear table ~idx;
          true
      | None -> false)

(* A corrupt image can carry a wild or cyclic spill chain; treat it as
   empty — the repairing fsck is the tool that reclaims such wreckage. *)
let spill_chain_or_empty dev ~slot_base =
  match Log_entry.spill_chain dev ~slot_base with
  | chain -> chain
  | exception Invalid_argument _ -> []

(* Mirror of the runtime truncate: release the spill chain (idempotent
   single-byte table clears), then rewrite the terminator, zero the
   header fields and bump the epoch — after which no stale entry bytes
   can verify against this slot's salt.  From phase [Committing]
   ([ordered]), the log invalidation must be durable before the phase
   word returns to 0: the deferred frees were already applied, and a
   torn truncate showing phase=0 beside a still-walkable log would make
   a re-run roll back the committed transaction.  Elsewhere one batched
   persist suffices (the phase word is 0 on both sides).  Re-running
   after a crash mid-recovery always converges. *)
let truncate ?(ordered = false) dev table ~base =
  (match spill_chain_or_empty dev ~slot_base:base with
  | [] -> ()
  | spills -> List.iter (fun off -> ignore (clear_if_live table off)) spills);
  let epoch = D.read_u64 dev (base + 32) in
  D.write_u64 dev (base + 8) 0L (* advisory entry count *);
  D.write_u64 dev (base + 16) 0L (* drop count *);
  D.write_u64 dev (base + 24) 0L (* spill head *);
  D.write_u64 dev (base + 32) (Int64.add epoch 1L);
  D.write_u64 dev (base + hdr_size) 0L (* terminator *);
  if ordered then begin
    D.persist dev (base + 8) (hdr_size + Log_entry.terminator_size - 8);
    D.write_u64 dev (base + 0) 0L (* phase *);
    D.persist dev (base + 0) 8
  end
  else begin
    D.write_u64 dev (base + 0) 0L (* phase *);
    D.persist dev base (hdr_size + Log_entry.terminator_size)
  end

let recover_slot dev table ~base ~size =
  let phase = D.read_u64 dev base in
  let advisory = Int64.to_int (D.read_u64 dev (base + 8)) in
  let ndrops = Int64.to_int (D.read_u64 dev (base + 16)) in
  let epoch = Int64.to_int (D.read_u64 dev (base + 32)) in
  let salt = Log_entry.salt ~slot_base:base ~epoch in
  if phase = phase_committing then begin
    (* The transaction durably committed; finish its deferred frees.  A
       drop entry that fails verification is skipped (frees are
       idempotent and independent); the leak is visible to fsck. *)
    let applied = ref 0 and skipped = ref 0 in
    for i = 1 to ndrops do
      let at = base + size - (i * drop_slot_bytes) in
      match Log_entry.read dev ~salt ~at with
      | Log_entry.Drop { off }, _ -> if clear_if_live table off then incr applied
      | (Log_entry.Data _ | Log_entry.Alloc _), _ -> incr skipped
      | exception Invalid_argument _ -> incr skipped
    done;
    truncate ~ordered:true dev table ~base;
    {
      empty_stats with
      slots_scanned = 1;
      completed = 1;
      drops_applied = !applied;
      drops_skipped = !skipped;
    }
  end
  else begin
    (* Walk the sealed entries to the tail terminator.  A [Bad_entry] or
       [Chain_end] stop is the torn tail write that never durably
       finished — the visited prefix is the whole durable log. *)
    let entries = ref [] in
    let visited, _cursor, reason =
      Log_entry.walk_to_tail dev ~slot_base:base ~slot_size:size ~salt (fun e ->
          entries := e :: !entries)
    in
    let torn = match reason with Log_entry.Terminator -> false | _ -> true in
    if visited > 0 then begin
      (* In-flight transaction: undo newest-first. *)
      let restored = ref 0 and reverted = ref 0 in
      List.iter
        (fun e ->
          match e with
          | Log_entry.Data { off; len; payload } ->
              D.copy_within dev ~src:payload ~dst:off ~len;
              D.flush dev off len;
              incr restored
          | Log_entry.Alloc _ | Log_entry.Drop _ -> ())
        !entries;
      D.fence dev;
      List.iter
        (fun e ->
          match e with
          | Log_entry.Alloc { off; order = _ } ->
              if clear_if_live table off then incr reverted
          | Log_entry.Data _ | Log_entry.Drop _ -> ())
        !entries;
      truncate dev table ~base;
      {
        empty_stats with
        slots_scanned = 1;
        rolled_back = 1;
        data_restored = !restored;
        allocs_reverted = !reverted;
        entries_skipped = (if torn then 1 else 0);
      }
    end
    else begin
      (* No durable entries.  Scrub any residue — a torn tail, a stale
         phase/advisory/drop field, or an orphaned spill chain left by a
         crash mid-seal or mid-truncate. *)
      if
        torn || phase <> 0L || advisory <> 0 || ndrops <> 0
        || spill_chain_or_empty dev ~slot_base:base <> []
      then truncate dev table ~base;
      {
        empty_stats with
        slots_scanned = 1;
        entries_skipped = (if torn then 1 else 0);
      }
    end
  end

let recover dev table ~journal_base ~slot_size ~nslots =
  let acc = ref empty_stats in
  for i = 0 to nslots - 1 do
    let base = journal_base + (i * slot_size) in
    acc := add_stats !acc (recover_slot dev table ~base ~size:slot_size)
  done;
  !acc
