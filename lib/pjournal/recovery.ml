module D = Pmem.Device
module Pr = Ptelemetry.Probe

type stats = {
  slots_scanned : int;
  rolled_back : int;
  completed : int;
  data_restored : int;
  allocs_reverted : int;
  drops_applied : int;
  drops_remarked : int;
  entries_skipped : int;
  drops_skipped : int;
  phase_ns : (string * float) list;
}

let empty_stats =
  {
    slots_scanned = 0;
    rolled_back = 0;
    completed = 0;
    data_restored = 0;
    allocs_reverted = 0;
    drops_applied = 0;
    drops_remarked = 0;
    entries_skipped = 0;
    drops_skipped = 0;
    phase_ns = [];
  }

let add_phase name dur phases =
  match List.assoc_opt name phases with
  | Some d -> (name, d +. dur) :: List.remove_assoc name phases
  | None -> phases @ [ (name, dur) ]

let add_stats a b =
  {
    slots_scanned = a.slots_scanned + b.slots_scanned;
    rolled_back = a.rolled_back + b.rolled_back;
    completed = a.completed + b.completed;
    data_restored = a.data_restored + b.data_restored;
    allocs_reverted = a.allocs_reverted + b.allocs_reverted;
    drops_applied = a.drops_applied + b.drops_applied;
    drops_remarked = a.drops_remarked + b.drops_remarked;
    entries_skipped = a.entries_skipped + b.entries_skipped;
    drops_skipped = a.drops_skipped + b.drops_skipped;
    phase_ns =
      List.fold_left
        (fun acc (name, dur) -> add_phase name dur acc)
        a.phase_ns b.phase_ns;
  }

(* Time one recovery phase on the simulated clock.  [simulated_ns] is a
   pure fold over the device's persist counters, so the timers cannot
   perturb the very latency they measure; the probe emission rides the
   recovery exempt window and is gated like every other site. *)
let timed dev phases name f =
  let t0 = D.simulated_ns dev in
  let r = f () in
  let t1 = D.simulated_ns dev in
  phases := add_phase name (t1 -. t0) !phases;
  if Pr.on () then
    Pr.emit
      (Pr.Recovery_phase
         { dev = D.id dev; phase = name; ns = t1; dur_ns = t1 -. t0 });
  r

let drop_slot_bytes = 16
let phase_committing = 1L
let hdr_size = 64

(* Revert an allocation-table byte if it is still set (idempotent).
   Recovery manages no batched line set, so the clear is persisted
   one-shot. *)
let clear_if_live table off =
  match Palloc.Alloc_table.index_of_offset table off with
  | exception Invalid_argument _ -> false (* wild offset on a corrupt image *)
  | idx -> (
      match Palloc.Alloc_table.order_at table ~idx with
      | Some _ ->
          Palloc.Alloc_table.clear_durable table ~idx;
          true
      | None -> false)

(* Scan the drop area for salt-valid slots.  Slots are consed downward
   from the slot end and each carries the current epoch's checksum, so
   the scan stops at the first word that is not a verifying [Drop].  The
   header drop count is deliberately not trusted: a torn truncate can
   zero it (8-byte store granularity) while salt-valid slots remain, and
   the epoch bump that would invalidate those slots rides in the same
   line and may equally not have landed. *)
let scan_drops dev table ~base ~size ~salt =
  let capacity = size / 4 / drop_slot_bytes in
  let rec go i acc =
    if i > capacity then List.rev acc
    else
      let at = base + size - (i * drop_slot_bytes) in
      match Log_entry.read dev ~salt ~at with
      | Log_entry.Drop { off; order }, _ -> (
          match Palloc.Alloc_table.index_of_offset table off with
          | exception Invalid_argument _ -> List.rev acc
          | idx -> go (i + 1) ((idx, order) :: acc))
      | (Log_entry.Data _ | Log_entry.Alloc _), _ -> List.rev acc
      | exception Invalid_argument _ -> List.rev acc
  in
  go 1 []

(* Roll BACK deferred frees whose batched clear flush partially landed.
   Drop slots become durable at the commit fence, strictly before any
   table clear can, so a salt-valid slot whose table byte is 0 names a
   block the transaction held live at commit; rolling the transaction
   back must re-mark it.  Runs before allocation reverts, so a block
   allocated and freed in the same transaction nets out free.
   Idempotent: only bytes currently 0 are rewritten.

   [rollback] is the caller's verdict on the transaction.  With sealed
   entries still walkable the transaction is being rolled back, so every
   cleared drop is re-marked.  With no walkable entries the table bytes
   themselves are the evidence: a mix of live and cleared bytes can only
   be the interrupted clear flush of a free-only transaction (a
   transaction {e with} entries reaches its truncate — the only thing
   that invalidates the log — strictly after the clear fence), so the
   cleared minority is re-marked; all-cleared means the frees fully
   applied and the committed outcome is kept — re-marking then could
   resurrect the frees of a committed transaction whose truncate tore. *)
let remark_drops table slots ~rollback =
  let cleared =
    List.filter
      (fun (idx, _) -> Palloc.Alloc_table.order_at table ~idx = None)
      slots
  in
  let any_live = List.length cleared < List.length slots in
  if cleared = [] || not (rollback || any_live) then 0
  else begin
    List.iter
      (fun (idx, order) -> Palloc.Alloc_table.mark_durable table ~idx ~order)
      cleared;
    List.length cleared
  end

(* A corrupt image can carry a wild or cyclic spill chain; treat it as
   empty — the repairing fsck is the tool that reclaims such wreckage. *)
let spill_chain_or_empty dev ~slot_base =
  match Log_entry.spill_chain dev ~slot_base with
  | chain -> chain
  | exception Invalid_argument _ -> []

(* Mirror of the runtime truncate: release the spill chain (idempotent
   single-byte table clears), then rewrite the terminator, zero the
   header fields and bump the epoch — after which no stale entry bytes
   can verify against this slot's salt.  From phase [Committing]
   ([ordered]), the log invalidation must be durable before the phase
   word returns to 0: the deferred frees were already applied, and a
   torn truncate showing phase=0 beside a still-walkable log would make
   a re-run roll back the committed transaction.  Elsewhere one batched
   persist suffices (the phase word is 0 on both sides).  Re-running
   after a crash mid-recovery always converges. *)
let truncate ?(ordered = false) dev table ~base =
  (match spill_chain_or_empty dev ~slot_base:base with
  | [] -> ()
  | spills -> List.iter (fun off -> ignore (clear_if_live table off)) spills);
  let epoch = D.read_u64 dev (base + 32) in
  D.write_u64 dev (base + 8) 0L (* advisory entry count *);
  D.write_u64 dev (base + 16) 0L (* drop count *);
  D.write_u64 dev (base + 24) 0L (* spill head *);
  D.write_u64 dev (base + 32) (Int64.add epoch 1L);
  D.write_u64 dev (base + hdr_size) 0L (* terminator *);
  (if ordered then begin
     D.persist dev (base + 8) (hdr_size + Log_entry.terminator_size - 8);
     D.write_u64 dev (base + 0) 0L (* phase *);
     D.persist dev (base + 0) 8
   end
   else begin
     D.write_u64 dev (base + 0) 0L (* phase *);
     D.persist dev base (hdr_size + Log_entry.terminator_size)
   end);
  if Pr.on () then
    Pr.emit
      (Pr.Journal_truncate
         {
           dev = D.id dev;
           slot_base = base;
           epoch = Int64.to_int (Int64.add epoch 1L);
         })

let recover_slot dev table ~base ~size =
  let phase = D.read_u64 dev base in
  let advisory = Int64.to_int (D.read_u64 dev (base + 8)) in
  let ndrops = Int64.to_int (D.read_u64 dev (base + 16)) in
  let epoch = Int64.to_int (D.read_u64 dev (base + 32)) in
  let salt = Log_entry.salt ~slot_base:base ~epoch in
  let phases = ref [] in
  let finish stats = { stats with phase_ns = !phases } in
  if phase = phase_committing then begin
    (* The transaction durably committed; finish its deferred frees.  A
       drop entry that fails verification is skipped (frees are
       idempotent and independent); the leak is visible to fsck. *)
    let applied = ref 0 and skipped = ref 0 in
    timed dev phases "drop_apply" (fun () ->
        for i = 1 to ndrops do
          let at = base + size - (i * drop_slot_bytes) in
          match Log_entry.read dev ~salt ~at with
          | Log_entry.Drop { off; order = _ }, _ ->
              if clear_if_live table off then incr applied
          | (Log_entry.Data _ | Log_entry.Alloc _), _ -> incr skipped
          | exception Invalid_argument _ -> incr skipped
        done);
    timed dev phases "truncate" (fun () ->
        truncate ~ordered:true dev table ~base);
    finish
      {
        empty_stats with
        slots_scanned = 1;
        completed = 1;
        drops_applied = !applied;
        drops_skipped = !skipped;
      }
  end
  else begin
    (* Walk the sealed entries to the tail terminator.  A [Bad_entry] or
       [Chain_end] stop is the torn tail write that never durably
       finished — the visited prefix is the whole durable log. *)
    let entries = ref [] in
    let visited, _cursor, reason =
      timed dev phases "walk" (fun () ->
          Log_entry.walk_to_tail dev ~slot_base:base ~slot_size:size ~salt
            (fun e -> entries := e :: !entries))
    in
    let torn = match reason with Log_entry.Terminator -> false | _ -> true in
    if visited > 0 then begin
      (* In-flight transaction: undo newest-first.  First roll back any
         deferred frees whose batched clear flush partially landed
         (possible only after the commit fence made the drop slots
         durable), so a block allocated and freed in the same
         transaction is live again before the allocation revert frees
         it. *)
      let remarked =
        timed dev phases "remark" (fun () ->
            remark_drops table
              (scan_drops dev table ~base ~size ~salt)
              ~rollback:true)
      in
      let restored = ref 0 and reverted = ref 0 in
      timed dev phases "rollback" (fun () ->
          List.iter
            (fun e ->
              match e with
              | Log_entry.Data { off; len; payload } ->
                  D.copy_within dev ~src:payload ~dst:off ~len;
                  D.flush dev off len;
                  incr restored
              | Log_entry.Alloc _ | Log_entry.Drop _ -> ())
            !entries;
          D.fence dev;
          List.iter
            (fun e ->
              match e with
              | Log_entry.Alloc { off; order = _ } ->
                  if clear_if_live table off then incr reverted
              | Log_entry.Data _ | Log_entry.Drop _ -> ())
            !entries);
      timed dev phases "truncate" (fun () -> truncate dev table ~base);
      finish
        {
          empty_stats with
          slots_scanned = 1;
          rolled_back = 1;
          data_restored = !restored;
          allocs_reverted = !reverted;
          drops_remarked = remarked;
          entries_skipped = (if torn then 1 else 0);
        }
    end
    else begin
      (* No durable entries.  Scrub any residue — a torn tail, a stale
         phase/advisory/drop field, salt-valid drop slots, or an
         orphaned spill chain left by a crash mid-seal or mid-truncate.
         A free-only transaction seals no entries at all, so an
         interrupted clear flush lands in this branch too:
         [remark_drops ~rollback:false] rolls its partial clears back
         and keeps fully-applied ones, and the truncate's epoch bump
         then invalidates the surviving slots. *)
      let drops = scan_drops dev table ~base ~size ~salt in
      let remarked =
        timed dev phases "remark" (fun () ->
            remark_drops table drops ~rollback:false)
      in
      if
        torn || phase <> 0L || advisory <> 0 || ndrops <> 0 || drops <> []
        || spill_chain_or_empty dev ~slot_base:base <> []
      then timed dev phases "truncate" (fun () -> truncate dev table ~base);
      finish
        {
          empty_stats with
          slots_scanned = 1;
          rolled_back = (if remarked > 0 then 1 else 0);
          drops_remarked = remarked;
          entries_skipped = (if torn then 1 else 0);
        }
    end
  end

let recover dev table ~journal_base ~slot_size ~nslots =
  let acc = ref empty_stats in
  for i = 0 to nslots - 1 do
    let base = journal_base + (i * slot_size) in
    acc := add_stats !acc (recover_slot dev table ~base ~size:slot_size)
  done;
  !acc
