(** Runtime undo journal bound to one persistent slot.

    A slot is a fixed region: a 64-byte header ([phase], advisory
    [count], [drop_count], spill head, checksum [epoch]), an undo-entry
    area growing up from the header, and a drop-entry area growing down
    from the end.  The entry stream ends at a checksummed tail: every
    entry is sealed together with the zero terminator word that follows
    it in one persist, and recovery walks to the terminator instead of
    trusting a counter — the header counts are advisory and stay
    volatile until truncation zeroes them (fsck still reconciles
    nonzero counts on legacy images).  Drop entries are
    volatile until {!commit} persists them in one batch (the paper's
    constant-time [DropLog]); a transaction that never commits simply
    discards them.

    Protocols (also in DESIGN.md):

    - [data_log]: save old bytes -> single persist of entry+terminator ->
      caller may now modify the target range;
    - [alloc]: reserve (volatile) -> persist Alloc entry + terminator ->
      dirty-only allocation-table mark, its 64-byte line collected for
      the commit-time batch (mark-after-seal: a mark can only become
      durable under the commit fence, after its undo entry is sealed);
    - [commit]: flush the logged target ranges (one flush per unique
      64-byte line, contiguous lines coalesced) + the batched table mark
      lines + the drop records (only if there are drops; counts stay
      volatile), then ONE fence — the commit point -> apply drops as
      dirty table clears -> truncate.  Under group commit
      ({!Group_commit}) the flushes and the fence are issued by the
      epoch leader for every concurrent committer at once;
    - [abort]: restore data logs in reverse -> revert logged allocations
      as dirty table clears -> truncate;
    - [truncate]: flush the batched clear lines + fence (only when
      clears are pending — their durability must strictly precede log
      invalidation), then one batched persist resets the header,
      rewrites the terminator and bumps the epoch, invalidating stale
      entry bytes.

    Steady-state persist cost: a data-only transaction pays one persist
    per sealed entry plus 2 fences (commit, truncate); allocations add
    one coalesced mark flush under the commit fence; deferred frees add
    the drop-record flush and the clear flush + fence.  Under group
    commit with epoch occupancy k, the commit fence is shared: 1/k of a
    fence per transaction. *)

exception Journal_full
(** The log cannot grow: the heap has no room for another spill region,
    or the drop area (the slot's reserved tail quarter) is exhausted.
    The transaction can still abort cleanly. *)

exception Not_in_transaction
(** A logging operation was invoked on an inactive journal. *)

type t

val format : Pmem.Device.t -> base:int -> size:int -> unit
(** Zero a slot's header and write the empty log's terminator durably
    (pool-creation time). *)

val attach :
  ?alloc_hint:int -> Pmem.Device.t -> Palloc.Buddy.t -> base:int -> size:int -> t
(** Bind to a formatted slot.  The slot must be idle (run {!Recovery}
    first after a crash).  [alloc_hint] names the allocator stripe this
    slot's transactions prefer — pairing each journal with its own arena,
    the paper's per-thread allocator design. *)

val base : t -> int
val size : t -> int
val is_active : t -> bool
val tx_overhead_ns : int
(** Fixed simulated cost charged per outermost transaction (the paper's
    [TxNop], ~198 ns, medium-independent). *)

val begin_tx : t -> unit
(** Start a flat transaction.  Raises [Invalid_argument] if already
    active; nesting is flattened by the layer above. *)

val data_log : t -> off:int -> len:int -> unit
(** Undo-log the current contents of a range.  Exact duplicate ranges
    within one transaction are logged once, and so is any range whose
    every 64-byte line is already fully covered by a single earlier
    entry (line-granularity dedup: the earlier entries already guarantee
    both the undo bytes and the commit flush). *)

val add_target : t -> off:int -> len:int -> unit
(** Register a range to be persisted at commit without logging it — for
    writes into blocks allocated in this same transaction, whose rollback
    is the allocation rollback itself (the fresh-allocation
    optimization). *)

val data_log_nodedup : t -> off:int -> len:int -> unit
(** Like {!data_log} but always appends a fresh entry; used for shared
    counters ([Parc]) whose every update must be individually undoable
    (newest-first replay restores the oldest value). *)

val alloc : t -> int -> int
(** Transactionally allocate: the block is live immediately but rolled
    back if the transaction aborts or the system crashes before commit. *)

val free : t -> int -> unit
(** Defer freeing of a live block until commit.  Raises
    [Palloc.Buddy.Invalid_free] if the offset was already dropped in this
    transaction or is not a live block head. *)

val commit : ?group:Group_commit.t -> t -> unit
(** Commit the transaction.  Without [group], execute
    {!Protocol.commit_plan}: flush the logged targets, table marks and
    drop records, then one commit fence, then apply deferred frees and
    truncate.  With [group], execute {!Protocol.group_commit_plan}
    instead: publish the same line set to the epoch combiner, whose
    leader flushes the merged runs of every concurrent committer and
    issues ONE fence for the whole epoch (a solo member pays exactly
    the private cost).  The trailing truncate is per-member either
    way.  May raise {!Pmem.Device.Crashed} if the device dies under
    the epoch leader. *)

val abort : t -> unit

val set_defer_seals : t -> bool -> unit
(** Collapse per-entry seal persists into a single log-tail flush+fence,
    issued just before the commit plan runs (and whenever a spill moves
    the cursor to a new region).  Entries still get their terminator
    word at append time; only their durability is deferred, so the
    collapsed fence still precedes every target-line and table-mark
    flush — a landed store always has a durable entry behind it, exactly
    as with eager seals.

    {b Sound only for write-aside (redo) use} of the journal, where home
    locations stay unflushed until commit: a deferred entry then never
    races its own target onto media.  Undo-style users, whose home
    stores may be flushed mid-transaction (e.g. by a concurrent group
    leader's merged run), must leave this off — the default.  The flag
    is sticky on the slot until set again. *)

(** {1 Introspection (tests and stats)} *)

val entry_count : t -> int
val drop_count : t -> int

val spill_count : t -> int
(** Heap-allocated overflow regions chained to this transaction's log.
    Slots hold small transactions inline; larger ones spill, so there is
    no fixed bound on transaction size (heap capacity aside). *)

val logged_bytes : t -> int
(** Bytes of undo-entry area consumed in the {e current} region only. *)

val tx_logged_bytes : t -> int
(** Total entry bytes sealed since {!begin_tx}, across every spill region
    — the per-transaction logging volume telemetry attributes to a
    commit.  Stable after {!commit}/{!abort} until the next
    {!begin_tx}. *)

val remaining_bytes : t -> int

(** {1 Fault injection (sanitizer positive controls)} *)

val set_fault_elision : flush:bool -> fence:bool -> unit
(** Globally elide persist primitives at {!commit}: [flush] skips the
    step-1 flushes of the logged target ranges (user data never reaches
    the write-pending queue); [fence] skips the single commit fence
    (flushed data sits in the WPQ at the commit point).  Journal
    bookkeeping persists are never elided.  Both default to [false];
    set through {!Engines.Engine_common.Fault_profile}, and reset with
    [set_fault_elision ~flush:false ~fence:false]. *)

val set_fault_duplication : flush:bool -> fence:bool -> unit
(** Globally {e duplicate} persist primitives at {!commit} — the
    profiler's positive controls, dual to {!set_fault_elision}: still
    crash-safe, deliberately wasteful.  [flush] re-runs the step-1
    target flushes after they already reached the write-pending queue
    (pure E2 write-back waste); [fence] issues two extra commit fences
    after the real one, both draining an empty queue (E1 waste; two in
    a row so {!Psan}'s W2 redundant-fence warning fires as well).  Both
    default to [false]; set through
    {!Engines.Engine_common.Fault_profile}. *)
