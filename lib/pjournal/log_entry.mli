(** Wire format of journal entries.

    Entries live in a journal slot's entry area and are valid iff their
    index is below the slot's persistent entry count; the count is only
    advanced after an entry is durably written, so a torn entry is never
    observed by recovery.

    Layout (all fields little-endian u64):

    - [Data]:  [kind=1 | target offset | length | saved bytes, padded to 8]
    - [Alloc]: [kind=2 | block offset  | order]
    - [Drop]:  [kind=3 | block offset]
*)

type t =
  | Data of { off : int; len : int; payload : int }
      (** Undo record: [len] saved bytes at device offset [payload] must be
          copied back to [off] on abort. *)
  | Alloc of { off : int; order : int }
      (** Allocation intent: block at [off] must be freed on abort. *)
  | Drop of { off : int }
      (** Deferred free: block at [off] must be freed at commit. *)

val kind_data : int
val kind_alloc : int
val kind_drop : int

val kind_jump : int
(** Region-jump sentinel: the log continues in the next spill region. *)

val data_entry_size : int -> int
(** Total bytes a [Data] entry of the given payload length occupies. *)

val alloc_entry_size : int
val drop_entry_size : int

val write_data : Pmem.Device.t -> at:int -> off:int -> len:int -> unit
(** Write a [Data] entry header at [at] and copy the current contents of
    [off, off+len) into its payload.  Does not persist. *)

val write_alloc : Pmem.Device.t -> at:int -> off:int -> order:int -> unit
val write_drop : Pmem.Device.t -> at:int -> off:int -> unit

val write_jump : Pmem.Device.t -> at:int -> unit
(** Durably mark that the log continues in the next region (the writer
    places one whenever at least 8 bytes remain before spilling). *)

val read : Pmem.Device.t -> at:int -> t * int
(** Decode the entry at [at]; also return its total size.  Raises
    [Invalid_argument] on a corrupt kind tag. *)

val peek_size : Pmem.Device.t -> at:int -> int
(** Total size of the entry at [at] without decoding it fully. *)

val spill_header : int
(** Bytes of metadata at the head of a spill region ([next | limit]). *)

val main_entry_limit : slot_base:int -> slot_size:int -> int
(** Absolute end of the slot's own entry region; the tail quarter of the
    slot is reserved for drop entries. *)

val walk :
  Pmem.Device.t -> slot_base:int -> slot_size:int -> count:int -> (t -> unit) -> unit
(** Visit [count] entries of a slot's undo log in write order, following
    the spill chain (slot header word +24) across region boundaries.
    Raises [Invalid_argument] on a torn log. *)

val spill_chain : Pmem.Device.t -> slot_base:int -> int list
(** Offsets of the slot's spill regions, in chain order. *)
