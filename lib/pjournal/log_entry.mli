(** Wire format of journal entries.

    Entries live in a journal slot's entry area; the stream of sealed
    entries ends at a {e terminator} — a full zero word persisted
    together with the entry it follows (a single ordered persist per
    entry).  Validity is checksum-defined: every entry carries a salted
    CRC-32 of its body packed into the high half of its kind word, so a
    torn tail write fails verification and {!walk_to_tail} treats it and
    everything after as never written.  The slot-header entry count is
    advisory only (persisted once at commit, for fsck cross-checks).

    The checksum salt binds an entry to its slot and truncation epoch
    ({!salt}): entries left behind by a truncated transaction — or by
    another slot in a recycled spill region — fail verification instead
    of surviving as plausible stale tails.

    Layout (all fields little-endian u64; word 0 is
    [kind (low 32 bits) | salted body CRC-32 (high 32 bits)]):

    - terminator: [0] (the whole word is zero)
    - [Data]:  [kind=1+crc | target offset | length | saved bytes, padded to 8]
    - [Alloc]: [kind=2+crc | block offset  | order]
    - [Drop]:  [kind=3+crc | block offset, order packed in the top byte]

    The CRC covers the body — everything after the kind word except a
    [Data] entry's padding.
*)

type t =
  | Data of { off : int; len : int; payload : int }
      (** Undo record: [len] saved bytes at device offset [payload] must be
          copied back to [off] on abort. *)
  | Alloc of { off : int; order : int }
      (** Allocation intent: block at [off] must be freed on abort. *)
  | Drop of { off : int; order : int }
      (** Deferred free: the order-[order] block at [off] must be freed at
          commit.  The order lets recovery re-mark the block's table byte
          when a crash interrupted the batched clear flush (images from
          before orders were recorded decode as order 0). *)

val kind_term : int
(** Tail terminator: a full zero word ends the entry stream. *)

val kind_data : int
val kind_alloc : int
val kind_drop : int

val kind_jump : int
(** Region-jump sentinel: the log continues in the next spill region. *)

val data_entry_size : int -> int
(** Total bytes a [Data] entry of the given payload length occupies. *)

val alloc_entry_size : int
val drop_entry_size : int

val terminator_size : int
(** Bytes of the tail terminator word (8); the writer reserves this much
    after every entry so the terminator never crosses a region limit. *)

type salt
(** Checksum salt: the CRC accumulator pre-folded with
    [(epoch, slot_base)].  Sealing and verification must use the same
    salt; entries sealed under another slot or an earlier epoch fail. *)

val salt : slot_base:int -> epoch:int -> salt

val write_data : Pmem.Device.t -> salt:salt -> at:int -> off:int -> len:int -> unit
(** Write a [Data] entry at [at]: copy the current contents of
    [off, off+len) into its payload, then seal the kind word with the
    salted body checksum.  Does not persist. *)

val write_alloc :
  Pmem.Device.t -> salt:salt -> at:int -> off:int -> order:int -> unit

val write_drop :
  Pmem.Device.t -> salt:salt -> at:int -> off:int -> order:int -> unit

val write_jump : Pmem.Device.t -> at:int -> unit
(** Durably mark that the log continues in the next region (the writer
    places one whenever at least 8 bytes remain before spilling). *)

val read : Pmem.Device.t -> salt:salt -> at:int -> t * int
(** Decode and checksum-verify the entry at [at]; also return its total
    size.  Raises [Invalid_argument] on a corrupt kind tag, implausible
    length, or checksum mismatch (including a stale entry sealed under a
    different slot or epoch). *)

val peek_size : Pmem.Device.t -> at:int -> int
(** Total size of the entry at [at] without decoding or verifying it. *)

val spill_header : int
(** Bytes of metadata at the head of a spill region ([next | limit]). *)

val main_entry_limit : slot_base:int -> slot_size:int -> int
(** Absolute end of the slot's own entry region; the tail quarter of the
    slot is reserved for drop entries. *)

type stop_reason =
  | Terminator  (** clean tail: the zero terminator word was found *)
  | Bad_entry of string
      (** torn tail: a word failed verification (checksum mismatch, torn
          terminator, bad kind, wild or cyclic chain) — the write that
          produced it never durably finished *)
  | Chain_end of string
      (** a region ran out with no terminator and no continuation (a
          stale jump whose link was never durably chained, or an
          exhausted region on a damaged image) *)

val walk_to_tail :
  Pmem.Device.t ->
  slot_base:int ->
  slot_size:int ->
  salt:salt ->
  (t -> unit) ->
  int * int * stop_reason
(** Visit the sealed entries of a slot's undo log in write order,
    following the spill chain (slot header word +24) across region
    boundaries, stopping at the tail.  Returns [(visited, stop_cursor,
    reason)]: how many entries verified, the absolute address the walk
    stopped at, and why.  [f] is only called on verified entries, so the
    visited prefix is exactly the log a torn tail write never extended.
    Never raises on corrupt images (corruption is a [Bad_entry] stop). *)

val spill_chain : Pmem.Device.t -> slot_base:int -> int list
(** Offsets of the slot's spill regions, in chain order.  Raises
    [Invalid_argument] on a wild or cyclic chain (corrupt images). *)
