(** Wire format of journal entries.

    Entries live in a journal slot's entry area and are valid iff their
    index is below the slot's persistent entry count; the count is only
    advanced after an entry is durably written, so a torn entry is never
    observed by recovery.  As defense in depth against media faults the
    ordering cannot mask (8-byte-granularity torn writes, bit rot), every
    entry also carries a CRC-32 of its body packed into the high half of
    its kind word; {!read} verifies it, and {!walk_checked} lets recovery
    treat the suffix after the first bad entry as never written.

    Layout (all fields little-endian u64; word 0 is
    [kind (low 32 bits) | body CRC-32 (high 32 bits)]):

    - [Data]:  [kind=1+crc | target offset | length | saved bytes, padded to 8]
    - [Alloc]: [kind=2+crc | block offset  | order]
    - [Drop]:  [kind=3+crc | block offset]

    The CRC covers the body — everything after the kind word except a
    [Data] entry's padding.
*)

type t =
  | Data of { off : int; len : int; payload : int }
      (** Undo record: [len] saved bytes at device offset [payload] must be
          copied back to [off] on abort. *)
  | Alloc of { off : int; order : int }
      (** Allocation intent: block at [off] must be freed on abort. *)
  | Drop of { off : int }
      (** Deferred free: block at [off] must be freed at commit. *)

val kind_data : int
val kind_alloc : int
val kind_drop : int

val kind_jump : int
(** Region-jump sentinel: the log continues in the next spill region. *)

val data_entry_size : int -> int
(** Total bytes a [Data] entry of the given payload length occupies. *)

val alloc_entry_size : int
val drop_entry_size : int

val write_data : Pmem.Device.t -> at:int -> off:int -> len:int -> unit
(** Write a [Data] entry at [at]: copy the current contents of
    [off, off+len) into its payload, then seal the kind word with the
    body checksum.  Does not persist. *)

val write_alloc : Pmem.Device.t -> at:int -> off:int -> order:int -> unit
val write_drop : Pmem.Device.t -> at:int -> off:int -> unit

val write_jump : Pmem.Device.t -> at:int -> unit
(** Durably mark that the log continues in the next region (the writer
    places one whenever at least 8 bytes remain before spilling). *)

val read : Pmem.Device.t -> at:int -> t * int
(** Decode and checksum-verify the entry at [at]; also return its total
    size.  Raises [Invalid_argument] on a corrupt kind tag, implausible
    length, or checksum mismatch. *)

val peek_size : Pmem.Device.t -> at:int -> int
(** Total size of the entry at [at] without decoding or verifying it. *)

val spill_header : int
(** Bytes of metadata at the head of a spill region ([next | limit]). *)

val main_entry_limit : slot_base:int -> slot_size:int -> int
(** Absolute end of the slot's own entry region; the tail quarter of the
    slot is reserved for drop entries. *)

val walk :
  Pmem.Device.t -> slot_base:int -> slot_size:int -> count:int -> (t -> unit) -> unit
(** Visit [count] entries of a slot's undo log in write order, following
    the spill chain (slot header word +24) across region boundaries.
    Raises [Invalid_argument] on a torn or corrupt log. *)

val walk_checked :
  Pmem.Device.t ->
  slot_base:int ->
  slot_size:int ->
  count:int ->
  (t -> unit) ->
  int * string option
(** Like {!walk} but stops at the first entry that fails verification (or
    at a broken spill chain) instead of raising; returns how many entries
    verified and, when short of [count], why the walk stopped.  [f] is
    only called on verified entries, so the visited prefix is exactly the
    log a torn tail write never extended. *)

val spill_chain : Pmem.Device.t -> slot_base:int -> int list
(** Offsets of the slot's spill regions, in chain order.  Raises
    [Invalid_argument] on a wild or cyclic chain (corrupt images). *)
