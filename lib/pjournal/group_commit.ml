(* Cross-transaction group commit: the epoch combiner.

   K transactions committing concurrently into one pool each publish the
   64-byte lines their commit must make durable (logged target ranges,
   batched alloc-table marks, drop records).  The first publisher of an
   epoch becomes its leader; everyone arriving while the previous
   epoch's leader is still at the device joins the open epoch, and when
   the device frees up the leader closes the epoch and issues the
   merged, deduplicated flush runs plus ONE fence on behalf of every
   member.  An sfence drains the whole write-pending queue, so the one
   fence is every member's commit point at once: K concurrent commits
   cost one fence epoch instead of K.

   A solo commit degenerates to today's path with zero extra fences:
   the lone arrival is its own leader, finds no flush in flight, closes
   the epoch immediately and pays exactly its own coalesced flush runs
   plus the single fence.

   Leader failure: if the device crashes under the leader's flush or
   fence, the combiner is poisoned — the crashed flag wakes every
   waiter, and because a failed epoch is never marked complete, every
   member of the unfenced epoch (and every later arrival) observes
   {!Pmem.Device.Crashed} instead of a false commit.
   Durability-wise nothing special is needed: each member's log entries
   were sealed (persisted) before it published, so recovery rolls each
   slot back independently.  A pool reopen builds a fresh combiner. *)

module D = Pmem.Device
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics

let m_epochs = Mx.counter "group_commit.epochs"
let m_group_commits = Mx.counter "group_commit.commits"
let h_occupancy = Mx.histogram "group_commit.occupancy"

(* Flush a set of 64-byte line indexes: one flush call per contiguous
   run.  Runs are never merged across a gap — a clean line between two
   dirty ones must not be flushed (it would be a useless flush, and the
   sanitizer says so).  Shared with the solo commit path in
   {!Journal_impl}. *)
let line = 64

let flush_lines dev lines =
  let sorted =
    List.sort compare (Hashtbl.fold (fun l () acc -> l :: acc) lines [])
  in
  let flush_run first last =
    D.flush dev (first * line) ((last - first + 1) * line)
  in
  match sorted with
  | [] -> ()
  | l0 :: rest ->
      let first = ref l0 and last = ref l0 in
      List.iter
        (fun l ->
          if l = !last + 1 then last := l
          else begin
            flush_run !first !last;
            first := l;
            last := l
          end)
        rest;
      flush_run !first !last

type stats = {
  epochs : int;
  commits : int;
  solo_epochs : int;
  max_occupancy : int;
}

type t = {
  dev : D.t;
  linger : int;
  (* Leader spin budget: after the previous epoch's device work drains,
     the leader holds its epoch open for up to [linger] quiet spin
     rounds, restarting the budget whenever a new member joins
     (batch-until-quiet).  This widens the batching window beyond the
     previous flush's duration — pure wall-clock cost on the leader,
     never a fence and never simulated time, and 0 disables it.  The
     window self-limits: a joined member is blocked until the epoch
     fences, so the batch can never exceed the number of committing
     domains. *)
  lock : Mutex.t;
  cond : Condition.t;
  mutable cur_linger : int;
  (* The adaptive budget actually spent: halved after every solo epoch
     (down to a small floor), restored to [linger] after any grouped
     one.  A steady solo workload decays within ~log2(linger) commits
     to the floor — a microsecond-scale probe window that keeps
     concurrency detectable — while a commit storm keeps the budget
     pinned at full (a single grouped epoch re-arms it, and six
     consecutive solo epochs are needed to halve it below 2% of
     full). *)
  mutable open_epoch : int; (* the epoch currently accepting members *)
  mutable completed : int; (* highest epoch whose fence has been issued *)
  mutable flushing : bool; (* a leader is at the device right now *)
  mutable crashed : bool; (* poisoned: a leader hit Device.Crashed *)
  batch : (int, unit) Hashtbl.t; (* merged line set of the open epoch *)
  mutable members : int; (* commits joined to the open epoch *)
  (* volatile statistics, guarded by [lock] *)
  mutable s_epochs : int;
  mutable s_commits : int;
  mutable s_solo : int;
  mutable s_max_occupancy : int;
}

let create ?(linger = 0) dev =
  {
    dev;
    linger;
    cur_linger = linger;
    lock = Mutex.create ();
    cond = Condition.create ();
    open_epoch = 0;
    completed = -1;
    flushing = false;
    crashed = false;
    batch = Hashtbl.create 64;
    members = 0;
    s_epochs = 0;
    s_commits = 0;
    s_solo = 0;
    s_max_occupancy = 0;
  }

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      epochs = t.s_epochs;
      commits = t.s_commits;
      solo_epochs = t.s_solo;
      max_occupancy = t.s_max_occupancy;
    }
  in
  Mutex.unlock t.lock;
  s

let mean_occupancy s =
  if s.epochs = 0 then 0.0 else float_of_int s.commits /. float_of_int s.epochs

(* Join the open epoch with [lines], the caller's deduplicated commit
   line set.  Returns once the epoch's fence has been issued — by this
   caller if it ended up leading, by the leader otherwise.  Raises
   [D.Crashed] if the device dies before this epoch's fence. *)
let commit t ~lines =
  Mutex.lock t.lock;
  if t.crashed then begin
    Mutex.unlock t.lock;
    raise D.Crashed
  end;
  let e = t.open_epoch in
  Hashtbl.iter (fun l () -> Hashtbl.replace t.batch l ()) lines;
  t.members <- t.members + 1;
  if t.members = 1 then begin
    (* Leader.  Waiting for the previous epoch's device work to finish
       is the batching window: everyone arriving meanwhile joins epoch
       [e] and is fenced below in one go. *)
    while t.flushing && not t.crashed do
      Condition.wait t.cond t.lock
    done;
    if t.crashed then begin
      Mutex.unlock t.lock;
      raise D.Crashed
    end;
    (* Linger: let commits racing in on other domains join this epoch
       before it closes. *)
    if t.cur_linger > 0 then begin
      let budget = ref t.cur_linger and last = ref t.members in
      while !budget > 0 && not t.crashed do
        Mutex.unlock t.lock;
        for _ = 1 to 32 do
          Domain.cpu_relax ()
        done;
        Mutex.lock t.lock;
        if t.members > !last then begin
          last := t.members;
          budget := t.linger
        end
        else decr budget
      done
    end;
    let n = t.members in
    let batch = Hashtbl.copy t.batch in
    Hashtbl.reset t.batch;
    t.members <- 0;
    t.open_epoch <- e + 1;
    t.flushing <- true;
    Mutex.unlock t.lock;
    let failure =
      (* Merge_runs + Epoch_fence, outside the lock: members of the next
         epoch accumulate while the device works. *)
      try
        flush_lines t.dev batch;
        D.fence t.dev;
        None
      with exn -> Some exn
    in
    Mutex.lock t.lock;
    t.s_epochs <- t.s_epochs + 1;
    t.s_commits <- t.s_commits + n;
    if n = 1 then t.s_solo <- t.s_solo + 1;
    if n > t.s_max_occupancy then t.s_max_occupancy <- n;
    if n > 1 then t.cur_linger <- t.linger
    else
      t.cur_linger <-
        max (min t.linger 64) (t.cur_linger - (t.cur_linger / 4));
    (* Advance [completed] ONLY on success: members decide "was my
       epoch fenced?" by [completed >= e], so completing a failed
       epoch would make its members report commit (and truncate their
       logs) for data that was never fenced.  On failure the poisoned
       flag both wakes the waiters and tells them the truth. *)
    t.flushing <- false;
    (match failure with
    | Some _ -> t.crashed <- true
    | None -> t.completed <- e);
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    if Tr.on () then begin
      Mx.incr m_epochs;
      Mx.incr ~by:n m_group_commits;
      Mx.observe h_occupancy n
    end;
    match failure with Some exn -> raise exn | None -> ()
  end
  else begin
    (* Member: wait for this epoch's fence. *)
    while t.completed < e && not t.crashed do
      Condition.wait t.cond t.lock
    done;
    (* Crashed with our epoch fenced means a LATER epoch died — our
       commit point still happened. *)
    let failed = t.completed < e in
    Mutex.unlock t.lock;
    if failed then raise D.Crashed
  end
