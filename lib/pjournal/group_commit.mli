(** Cross-transaction group commit: the epoch combiner.

    Transactions committing concurrently into one shared pool publish
    the 64-byte lines their commit must make durable; one leader per
    epoch issues the merged, deduplicated flush runs and a single fence
    on behalf of every member (an sfence drains the whole write-pending
    queue, so the one fence is every member's commit point at once).
    K concurrent commits cost one fence epoch instead of K; a solo
    commit degenerates to the private path with zero extra fences.

    Interpreted by {!Journal_impl.commit} as the [Merge_runs] and
    [Epoch_fence] phases of {!Protocol.group_commit_plan}; modeled and
    crash-enumerated by [Pmodel].  See DESIGN.md §13. *)

type t

val create : ?linger:int -> Pmem.Device.t -> t
(** A fresh combiner for one device.  Build one per shared pool at
    open/attach time — never reuse a combiner across a power cycle (a
    crash poisons it).  [linger] (default 0: disabled) is the leader's
    batch-until-quiet spin budget: the epoch stays open for up to that
    many quiet spin rounds after the previous epoch's flush drains,
    restarting whenever a commit joins.  Lingering costs wall-clock
    time on the leader only — never a fence, never simulated time — and
    widens the batching window well beyond the previous flush's
    duration.  The budget is adaptive: solo epochs decay it toward a
    microsecond-scale probe floor (a steady solo workload pays almost
    nothing), and any grouped epoch restores it in full. *)

val commit : t -> lines:(int, unit) Hashtbl.t -> unit
(** Join the open epoch, publishing [lines] (the transaction's
    deduplicated commit line set: logged targets, table marks, drop
    records).  Returns once the epoch's single fence has been issued —
    everything published is then durable.  Raises
    {!Pmem.Device.Crashed} if the device dies before this epoch's
    fence (the member's slot is rolled back independently by
    recovery); after that every call raises until a fresh combiner is
    built. *)

type stats = {
  epochs : int;  (** fence epochs issued *)
  commits : int;  (** transactions committed through the combiner *)
  solo_epochs : int;  (** epochs with exactly one member *)
  max_occupancy : int;  (** largest member count of any epoch *)
}

val stats : t -> stats
val mean_occupancy : stats -> float
(** [commits /. epochs]; 0 when no epoch has completed. *)

val flush_lines : Pmem.Device.t -> (int, unit) Hashtbl.t -> unit
(** Flush a set of 64-byte line indexes as coalesced runs: one flush
    call per contiguous run, never merged across a gap.  Shared with
    the solo commit path in {!Journal_impl}. *)
