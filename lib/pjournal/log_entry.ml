type t =
  | Data of { off : int; len : int; payload : int }
  | Alloc of { off : int; order : int }
  | Drop of { off : int }

let kind_data = 1
let kind_alloc = 2
let kind_drop = 3

(* A jump sentinel marks "the log continues in the next region"; the tail
   of a region after it is dead space.  8 bytes, persisted when written. *)
let kind_jump = 4
let pad8 n = (n + 7) land lnot 7
let data_entry_size len = 24 + pad8 len
let alloc_entry_size = 24
let drop_entry_size = 16

module D = Pmem.Device

let write_data dev ~at ~off ~len =
  D.write_u64 dev at (Int64.of_int kind_data);
  D.write_u64 dev (at + 8) (Int64.of_int off);
  D.write_u64 dev (at + 16) (Int64.of_int len);
  D.copy_within dev ~src:off ~dst:(at + 24) ~len

let write_alloc dev ~at ~off ~order =
  D.write_u64 dev at (Int64.of_int kind_alloc);
  D.write_u64 dev (at + 8) (Int64.of_int off);
  D.write_u64 dev (at + 16) (Int64.of_int order)

let write_drop dev ~at ~off =
  D.write_u64 dev at (Int64.of_int kind_drop);
  D.write_u64 dev (at + 8) (Int64.of_int off)

(* Entry size without materializing the entry (for region-boundary
   decisions during walks). *)
let peek_size dev ~at =
  let kind = Int64.to_int (D.read_u64 dev at) in
  if kind = kind_data then
    data_entry_size (Int64.to_int (D.read_u64 dev (at + 16)))
  else if kind = kind_alloc then alloc_entry_size
  else if kind = kind_drop then drop_entry_size
  else invalid_arg (Printf.sprintf "Log_entry.peek: bad kind %d at %d" kind at)

let read dev ~at =
  let kind = Int64.to_int (D.read_u64 dev at) in
  let off = Int64.to_int (D.read_u64 dev (at + 8)) in
  if kind = kind_data then begin
    let len = Int64.to_int (D.read_u64 dev (at + 16)) in
    (Data { off; len; payload = at + 24 }, data_entry_size len)
  end
  else if kind = kind_alloc then begin
    let order = Int64.to_int (D.read_u64 dev (at + 16)) in
    (Alloc { off; order }, alloc_entry_size)
  end
  else if kind = kind_drop then (Drop { off }, drop_entry_size)
  else invalid_arg (Printf.sprintf "Log_entry.read: bad kind %d at %d" kind at)

(* --- walking a (possibly spilled) undo log ----------------------------- *)

(* An undo log is the slot's entry area plus a chain of heap-allocated
   spill regions (slot header word +24 points at the first; each region
   starts with [next u64 | limit u64]).  An entry never crosses a region
   boundary: the writer jumps to the next region when one would, and the
   walker reproduces the same decision from the entry sizes. *)

let spill_header = 16

(* The tail quarter of a slot is reserved for the drop area, so the main
   entry region never collides with it and walkers need no knowledge of
   the (volatile) drop count. *)
let main_entry_limit ~slot_base ~slot_size =
  slot_base + slot_size - (slot_size / 4)

let write_jump dev ~at =
  D.write_u64 dev at (Int64.of_int kind_jump);
  D.persist dev at 8

let walk dev ~slot_base ~slot_size ~count f =
  let next_region base =
    (* region 0 is the slot itself; its chain pointer is in the header *)
    if base = slot_base then Int64.to_int (D.read_u64 dev (slot_base + 24))
    else Int64.to_int (D.read_u64 dev base)
  in
  let region_cursor base =
    if base = slot_base then base + 64 else base + spill_header
  in
  let region_limit base =
    if base = slot_base then main_entry_limit ~slot_base ~slot_size
    else base + Int64.to_int (D.read_u64 dev (base + 8))
  in
  let jump base =
    let nxt = next_region base in
    if nxt = 0 then invalid_arg "Log_entry.walk: count overruns the log";
    nxt
  in
  let rec go remaining base cursor =
    if remaining > 0 then
      let limit = region_limit base in
      (* regions end either by exhaustion or at an explicit jump sentinel *)
      if
        cursor + 8 > limit
        || Int64.to_int (D.read_u64 dev cursor) = kind_jump
      then
        let base = jump base in
        go remaining base (region_cursor base)
      else begin
        let e, sz = read dev ~at:cursor in
        f e;
        go (remaining - 1) base (cursor + sz)
      end
  in
  go count slot_base (region_cursor slot_base)

let spill_chain dev ~slot_base =
  let rec go acc ptr =
    if ptr = 0 then List.rev acc else go (ptr :: acc) (Int64.to_int (D.read_u64 dev ptr))
  in
  go [] (Int64.to_int (D.read_u64 dev (slot_base + 24)))
