type t =
  | Data of { off : int; len : int; payload : int }
  | Alloc of { off : int; order : int }
  | Drop of { off : int }

let kind_data = 1
let kind_alloc = 2
let kind_drop = 3

(* A jump sentinel marks "the log continues in the next region"; the tail
   of a region after it is dead space.  8 bytes, persisted when written. *)
let kind_jump = 4
let pad8 n = (n + 7) land lnot 7
let data_entry_size len = 24 + pad8 len
let alloc_entry_size = 24
let drop_entry_size = 16

module D = Pmem.Device

(* Word 0 of every entry packs the kind (low 32 bits) with a CRC-32 of the
   entry body (high 32 bits).  The body is the meaningful bytes after the
   kind word — for [Data] that includes the saved payload (but not its
   padding) — so a torn or rotted entry fails verification instead of
   being silently applied.  Packing the checksum into the kind word keeps
   every entry size unchanged. *)

let pack_kind ~kind ~crc =
  Int64.logor (Int64.of_int kind) (Int64.shift_left (Int64.of_int crc) 32)

let kind_of_word w = Int64.to_int (Int64.logand w 0xFFFFFFFFL)
let crc_of_word w = Int64.to_int (Int64.shift_right_logical w 32)

(* CRC of [len] device bytes at [off]; reading through the device charges
   the loads the checksum really costs. *)
let crc_of_range dev ~off ~len = Pmem.Crc32.bytes (D.read_bytes dev off len)

let body_len_data len = 16 + len
let body_len_alloc = 16
let body_len_drop = 8

let seal dev ~at ~kind ~body_len =
  let crc = crc_of_range dev ~off:(at + 8) ~len:body_len in
  D.write_u64 dev at (pack_kind ~kind ~crc)

let write_data dev ~at ~off ~len =
  D.write_u64 dev (at + 8) (Int64.of_int off);
  D.write_u64 dev (at + 16) (Int64.of_int len);
  D.copy_within dev ~src:off ~dst:(at + 24) ~len;
  seal dev ~at ~kind:kind_data ~body_len:(body_len_data len)

let write_alloc dev ~at ~off ~order =
  D.write_u64 dev (at + 8) (Int64.of_int off);
  D.write_u64 dev (at + 16) (Int64.of_int order);
  seal dev ~at ~kind:kind_alloc ~body_len:body_len_alloc

let write_drop dev ~at ~off =
  D.write_u64 dev (at + 8) (Int64.of_int off);
  seal dev ~at ~kind:kind_drop ~body_len:body_len_drop

let corrupt ~at fmt =
  Printf.ksprintf
    (fun m -> invalid_arg (Printf.sprintf "Log_entry: %s at %d" m at))
    fmt

(* Entry size without materializing the entry (for region-boundary
   decisions during walks). *)
let peek_size dev ~at =
  let kind = kind_of_word (D.read_u64 dev at) in
  if kind = kind_data then
    data_entry_size (Int64.to_int (D.read_u64 dev (at + 16)))
  else if kind = kind_alloc then alloc_entry_size
  else if kind = kind_drop then drop_entry_size
  else corrupt ~at "bad kind %d" kind

let verify dev ~at ~stored_crc ~body_len =
  if at + 8 + body_len > D.size dev then corrupt ~at "entry overruns the device";
  if crc_of_range dev ~off:(at + 8) ~len:body_len <> stored_crc then
    corrupt ~at "checksum mismatch"

let read dev ~at =
  let w = D.read_u64 dev at in
  let kind = kind_of_word w and stored_crc = crc_of_word w in
  let off = Int64.to_int (D.read_u64 dev (at + 8)) in
  if kind = kind_data then begin
    let len = Int64.to_int (D.read_u64 dev (at + 16)) in
    if len <= 0 || len > D.size dev then corrupt ~at "implausible length %d" len;
    verify dev ~at ~stored_crc ~body_len:(body_len_data len);
    (Data { off; len; payload = at + 24 }, data_entry_size len)
  end
  else if kind = kind_alloc then begin
    verify dev ~at ~stored_crc ~body_len:body_len_alloc;
    let order = Int64.to_int (D.read_u64 dev (at + 16)) in
    (Alloc { off; order }, alloc_entry_size)
  end
  else if kind = kind_drop then begin
    verify dev ~at ~stored_crc ~body_len:body_len_drop;
    (Drop { off }, drop_entry_size)
  end
  else corrupt ~at "bad kind %d" kind

(* --- walking a (possibly spilled) undo log ----------------------------- *)

(* An undo log is the slot's entry area plus a chain of heap-allocated
   spill regions (slot header word +24 points at the first; each region
   starts with [next u64 | limit u64]).  An entry never crosses a region
   boundary: the writer jumps to the next region when one would, and the
   walker reproduces the same decision from the entry sizes. *)

let spill_header = 16

(* The tail quarter of a slot is reserved for the drop area, so the main
   entry region never collides with it and walkers need no knowledge of
   the (volatile) drop count. *)
let main_entry_limit ~slot_base ~slot_size =
  slot_base + slot_size - (slot_size / 4)

let write_jump dev ~at =
  D.write_u64 dev at (pack_kind ~kind:kind_jump ~crc:0);
  D.persist dev at 8

(* The checksum-aware walk: visit entries until [count] is reached or the
   first entry fails verification (torn or rotted metadata); return how
   many verified.  The prefix below the first bad entry is exactly the log
   a torn tail write never produced — recovery treats the rest as
   never-written. *)
let walk_checked dev ~slot_base ~slot_size ~count f =
  let next_region base =
    (* region 0 is the slot itself; its chain pointer is in the header *)
    if base = slot_base then Int64.to_int (D.read_u64 dev (slot_base + 24))
    else Int64.to_int (D.read_u64 dev base)
  in
  let region_cursor base =
    if base = slot_base then base + 64 else base + spill_header
  in
  let region_limit base =
    if base = slot_base then main_entry_limit ~slot_base ~slot_size
    else base + Int64.to_int (D.read_u64 dev (base + 8))
  in
  let rec go visited hops base cursor =
    if visited >= count then (visited, None)
    else
      let limit = region_limit base in
      (* regions end either by exhaustion or at an explicit jump sentinel *)
      if
        cursor + 8 > limit
        || kind_of_word (D.read_u64 dev cursor) = kind_jump
      then begin
        let nxt = next_region base in
        if nxt <= 0 || nxt + spill_header > D.size dev then
          (visited, Some "log chain truncated before the entry count")
        else if hops >= 4096 then (visited, Some "spill chain is cyclic")
        else go visited (hops + 1) nxt (region_cursor nxt)
      end
      else
        match read dev ~at:cursor with
        | e, sz ->
            f e;
            go (visited + 1) hops base (cursor + sz)
        | exception Invalid_argument m -> (visited, Some m)
  in
  go 0 0 slot_base (region_cursor slot_base)

let walk dev ~slot_base ~slot_size ~count f =
  match walk_checked dev ~slot_base ~slot_size ~count f with
  | _, None -> ()
  | visited, Some reason ->
      invalid_arg
        (Printf.sprintf "Log_entry.walk: %s (after %d of %d entries)" reason
           visited count)

let spill_chain dev ~slot_base =
  (* Bounds- and cycle-guarded: this runs on corrupt images too. *)
  let rec go acc hops ptr =
    if ptr = 0 then List.rev acc
    else if ptr < 0 || ptr + spill_header > D.size dev then
      invalid_arg
        (Printf.sprintf "Log_entry.spill_chain: wild link to %d" ptr)
    else if hops >= 4096 then invalid_arg "Log_entry.spill_chain: cyclic chain"
    else go (ptr :: acc) (hops + 1) (Int64.to_int (D.read_u64 dev ptr))
  in
  go [] 0 (Int64.to_int (D.read_u64 dev (slot_base + 24)))
