type t =
  | Data of { off : int; len : int; payload : int }
  | Alloc of { off : int; order : int }
  | Drop of { off : int; order : int }

(* Kind 0 is the tail terminator: a full zero word after the last sealed
   entry.  The writer persists it together with the entry it follows, so
   "walk until the terminator" replaces the persistent entry counter. *)
let kind_term = 0
let kind_data = 1
let kind_alloc = 2
let kind_drop = 3

(* A jump sentinel marks "the log continues in the next region"; the tail
   of a region after it is dead space.  8 bytes, persisted when written. *)
let kind_jump = 4
let pad8 n = (n + 7) land lnot 7
let data_entry_size len = 24 + pad8 len
let alloc_entry_size = 24
let drop_entry_size = 16
let terminator_size = 8

module D = Pmem.Device

(* Word 0 of every entry packs the kind (low 32 bits) with a CRC-32 of the
   entry body (high 32 bits).  The body is the meaningful bytes after the
   kind word — for [Data] that includes the saved payload (but not its
   padding) — so a torn or rotted entry fails verification instead of
   being silently applied.  Packing the checksum into the kind word keeps
   every entry size unchanged. *)

let pack_kind ~kind ~crc =
  Int64.logor (Int64.of_int kind) (Int64.shift_left (Int64.of_int crc) 32)

let kind_of_word w = Int64.to_int (Int64.logand w 0xFFFFFFFFL)
let crc_of_word w = Int64.to_int (Int64.shift_right_logical w 32)

(* The checksum is salted with the slot's identity and truncation epoch:
   a CRC that verifies proves the entry was sealed by THIS slot's current
   log generation.  Without the salt, a truncated-but-not-overwritten
   entry (or a recycled spill region still holding another slot's sealed
   entries) would be CRC-valid stale data that a tail walk could replay.
   The salt is the CRC accumulator after folding 16 bytes
   [epoch (LE u64) | slot_base (LE u64)], so distinct (slot, epoch) pairs
   diverge as thoroughly as CRC-32 itself allows. *)
type salt = int

let fold_u64 acc v =
  let acc = ref acc in
  for i = 0 to 7 do
    acc := Pmem.Crc32.update !acc ((v lsr (8 * i)) land 0xFF)
  done;
  !acc

let salt ~slot_base ~epoch = fold_u64 (fold_u64 Pmem.Crc32.seed epoch) slot_base

(* Salted CRC of [len] device bytes at [off]; reading through the device
   charges the loads the checksum really costs. *)
let crc_of_range dev ~salt ~off ~len =
  let b = D.read_bytes dev off len in
  let acc = ref salt in
  for i = 0 to len - 1 do
    acc := Pmem.Crc32.update !acc (Char.code (Bytes.unsafe_get b i))
  done;
  Pmem.Crc32.finish !acc

let body_len_data len = 16 + len
let body_len_alloc = 16
let body_len_drop = 8

let seal dev ~salt ~at ~kind ~body_len =
  let crc = crc_of_range dev ~salt ~off:(at + 8) ~len:body_len in
  D.write_u64 dev at (pack_kind ~kind ~crc)

let write_data dev ~salt ~at ~off ~len =
  D.write_u64 dev (at + 8) (Int64.of_int off);
  D.write_u64 dev (at + 16) (Int64.of_int len);
  D.copy_within dev ~src:off ~dst:(at + 24) ~len;
  seal dev ~salt ~at ~kind:kind_data ~body_len:(body_len_data len)

let write_alloc dev ~salt ~at ~off ~order =
  D.write_u64 dev (at + 8) (Int64.of_int off);
  D.write_u64 dev (at + 16) (Int64.of_int order);
  seal dev ~salt ~at ~kind:kind_alloc ~body_len:body_len_alloc

(* A drop slot packs the block's order into the top byte of its offset
   word (device offsets are far below 2^56), so recovery can re-mark a
   prematurely cleared table byte without growing the 16-byte slot; the
   CRC covers the packed word, so the order is integrity-checked too.
   Images written before orders were recorded decode as order 0 — only
   ever consumed by the legacy roll-forward path, which ignores it. *)
let drop_order_shift = 56
let drop_off_mask = (1 lsl drop_order_shift) - 1

let write_drop dev ~salt ~at ~off ~order =
  D.write_u64 dev (at + 8)
    (Int64.of_int (off lor (order lsl drop_order_shift)));
  seal dev ~salt ~at ~kind:kind_drop ~body_len:body_len_drop

let corrupt ~at fmt =
  Printf.ksprintf
    (fun m -> invalid_arg (Printf.sprintf "Log_entry: %s at %d" m at))
    fmt

(* Entry size without materializing the entry (for region-boundary
   decisions during walks). *)
let peek_size dev ~at =
  let kind = kind_of_word (D.read_u64 dev at) in
  if kind = kind_data then
    data_entry_size (Int64.to_int (D.read_u64 dev (at + 16)))
  else if kind = kind_alloc then alloc_entry_size
  else if kind = kind_drop then drop_entry_size
  else corrupt ~at "bad kind %d" kind

let verify dev ~salt ~at ~stored_crc ~body_len =
  if at + 8 + body_len > D.size dev then corrupt ~at "entry overruns the device";
  if crc_of_range dev ~salt ~off:(at + 8) ~len:body_len <> stored_crc then
    corrupt ~at "checksum mismatch"

let read dev ~salt ~at =
  let w = D.read_u64 dev at in
  let kind = kind_of_word w and stored_crc = crc_of_word w in
  let off = Int64.to_int (D.read_u64 dev (at + 8)) in
  if kind = kind_data then begin
    let len = Int64.to_int (D.read_u64 dev (at + 16)) in
    if len <= 0 || len > D.size dev then corrupt ~at "implausible length %d" len;
    verify dev ~salt ~at ~stored_crc ~body_len:(body_len_data len);
    (Data { off; len; payload = at + 24 }, data_entry_size len)
  end
  else if kind = kind_alloc then begin
    verify dev ~salt ~at ~stored_crc ~body_len:body_len_alloc;
    let order = Int64.to_int (D.read_u64 dev (at + 16)) in
    (Alloc { off; order }, alloc_entry_size)
  end
  else if kind = kind_drop then begin
    verify dev ~salt ~at ~stored_crc ~body_len:body_len_drop;
    ( Drop
        { off = off land drop_off_mask; order = off lsr drop_order_shift },
      drop_entry_size )
  end
  else corrupt ~at "bad kind %d" kind

(* --- walking a (possibly spilled) undo log ----------------------------- *)

(* An undo log is the slot's entry area plus a chain of heap-allocated
   spill regions (slot header word +24 points at the first; each region
   starts with [next u64 | limit u64]).  An entry never crosses a region
   boundary: the writer jumps to the next region when one would, and the
   walker reproduces the same decision from the entry sizes. *)

let spill_header = 16

(* The tail quarter of a slot is reserved for the drop area, so the main
   entry region never collides with it and walkers need no knowledge of
   the (volatile) drop count. *)
let main_entry_limit ~slot_base ~slot_size =
  slot_base + slot_size - (slot_size / 4)

let write_jump dev ~at =
  D.write_u64 dev at (pack_kind ~kind:kind_jump ~crc:0);
  D.persist dev at 8

type stop_reason = Terminator | Bad_entry of string | Chain_end of string

(* The tail walk: visit sealed entries in write order until the zero
   terminator word, following the spill chain across region boundaries.
   The seal protocol persists every entry together with the terminator
   that follows it, so on a crash-consistent image the walk ends exactly
   at the last durable seal.  [Bad_entry] (torn kind word, checksum
   mismatch, wild chain) means a tail write never durably finished — the
   visited prefix is the whole log; [Chain_end] means a region ran out
   with no terminator (a stale jump word whose continuation was never
   durably linked, or an exhausted region on a hand-damaged image) and is
   equally a tail to stop at.  [f] only sees verified entries. *)
let walk_to_tail dev ~slot_base ~slot_size ~salt f =
  let next_region base =
    (* region 0 is the slot itself; its chain pointer is in the header *)
    if base = slot_base then Int64.to_int (D.read_u64 dev (slot_base + 24))
    else Int64.to_int (D.read_u64 dev base)
  in
  let region_cursor base =
    if base = slot_base then base + 64 else base + spill_header
  in
  let region_limit base =
    if base = slot_base then main_entry_limit ~slot_base ~slot_size
    else base + Int64.to_int (D.read_u64 dev (base + 8))
  in
  let rec go visited hops base cursor =
    let limit = min (region_limit base) (D.size dev) in
    if cursor + 8 > limit then jump visited hops base cursor "region exhausted"
    else
      let w = D.read_u64 dev cursor in
      if w = 0L then (visited, cursor, Terminator)
      else
        let kind = kind_of_word w in
        if kind = kind_term then
          (* zero kind, nonzero checksum half: not a word this log's
             writer ever produced — a torn terminator store *)
          (visited, cursor, Bad_entry "torn terminator word")
        else if kind = kind_jump then jump visited hops base cursor "jump"
        else begin
          match read dev ~salt ~at:cursor with
          | e, sz ->
              if cursor + sz + terminator_size > limit then
                (visited, cursor, Bad_entry "entry overruns its region")
              else begin
                f e;
                go (visited + 1) hops base (cursor + sz)
              end
          | exception Invalid_argument m -> (visited, cursor, Bad_entry m)
        end
  and jump visited hops base cursor why =
    let nxt = next_region base in
    if nxt = 0 then (visited, cursor, Chain_end why)
    else if nxt < 0 || nxt + spill_header > D.size dev then
      (visited, cursor, Bad_entry (Printf.sprintf "wild spill link to %d" nxt))
    else if hops >= 4096 then (visited, cursor, Bad_entry "spill chain is cyclic")
    else go visited (hops + 1) nxt (region_cursor nxt)
  in
  go 0 0 slot_base (region_cursor slot_base)

let spill_chain dev ~slot_base =
  (* Bounds- and cycle-guarded: this runs on corrupt images too. *)
  let rec go acc hops ptr =
    if ptr = 0 then List.rev acc
    else if ptr < 0 || ptr + spill_header > D.size dev then
      invalid_arg
        (Printf.sprintf "Log_entry.spill_chain: wild link to %d" ptr)
    else if hops >= 4096 then invalid_arg "Log_entry.spill_chain: cyclic chain"
    else go (ptr :: acc) (hops + 1) (Int64.to_int (D.read_u64 dev ptr))
  in
  go [] 0 (Int64.to_int (D.read_u64 dev (slot_base + 24)))
