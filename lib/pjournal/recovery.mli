(** Crash recovery for journal slots.

    Runs at pool-open time, after {!Pmem.Device.power_cycle} (or a process
    restart) and {e before} the buddy allocator rebuilds its volatile free
    lists, since recovery edits allocation-table bytes directly.

    Each slot is walked to its checksummed tail
    ({!Log_entry.walk_to_tail}); if any sealed entries are found the
    transaction was in flight: data entries are restored newest-first,
    logged allocations are reverted, and the rollback {e re-marks} any
    drop-record offsets whose table bytes an interrupted batched clear
    already zeroed (the drop records are durable strictly before any
    clear, and each carries the block's order).  A slot with no walkable
    entries but cleared drop-record offsets re-marks only a {e partial}
    clear — that can only be an interrupted free-only truncate, whose
    commit was never acknowledged; an {e all-cleared} drop area belongs
    to a committed transaction whose truncate tore and keeps its
    outcome.  The header entry and drop counts are advisory and never
    trusted — the drop area is scanned until the first non-verifying
    record.  A legacy slot in phase [Committing] (older images only)
    had durably decided to commit: its drops are re-applied (idempotent)
    and the slot is truncated.  Recovery itself is idempotent, so a
    crash during recovery is handled by running it again.

    Media faults: every entry carries a salted checksum ({!Log_entry}).
    A tail word that fails verification ends the valid prefix — it and
    anything after are treated as never written (only the tail write,
    sealed entry plus terminator in one persist, can be torn) — and
    [entries_skipped] records that a torn tail was discarded (1 per
    slot; without a trusted persistent counter the number of lost
    entries is unknowable, and by the seal ordering it is at most 1).  A
    corrupt drop entry is skipped individually (frees are idempotent and
    independent).  Wild or cyclic spill chains are dropped rather than
    followed; the repairing fsck ({!Corundum.Pool_check}) reclaims what
    such wreckage leaks. *)

type stats = {
  slots_scanned : int;
  rolled_back : int;  (** in-flight transactions undone *)
  completed : int;  (** committing transactions finished *)
  data_restored : int;  (** data undo entries applied *)
  allocs_reverted : int;  (** allocations rolled back *)
  drops_applied : int;  (** deferred frees re-applied *)
  drops_remarked : int;
      (** deferred frees rolled back — table bytes re-marked after an
          interrupted batched clear flush *)
  entries_skipped : int;  (** slots whose torn tail write was discarded *)
  drops_skipped : int;  (** drop entries discarded as torn/corrupt *)
  phase_ns : (string * float) list;
      (** simulated nanoseconds per recovery phase ([walk], [rollback],
          [drop_apply], [remark], [truncate]), summed across slots.
          Measured on the simulated clock (a pure counter fold), so the
          timers cannot perturb the latency they report; each phase is
          also published as a {!Ptelemetry.Probe.Recovery_phase} event
          when a probe subscriber is installed. *)
}

val empty_stats : stats
val add_stats : stats -> stats -> stats

val add_phase :
  string -> float -> (string * float) list -> (string * float) list
(** [add_phase name dur phases] sums [dur] into the entry for [name]
    (appending a new entry if absent) — the merge {!add_stats} uses,
    exported so pool attach can fold its table-scan phase into the same
    ledger. *)

val recover_slot :
  Pmem.Device.t -> Palloc.Alloc_table.t -> base:int -> size:int -> stats
(** Recover one slot. *)

val recover :
  Pmem.Device.t ->
  Palloc.Alloc_table.t ->
  journal_base:int ->
  slot_size:int ->
  nslots:int ->
  stats
(** Recover a contiguous array of slots. *)
