exception Journal_full
exception Not_in_transaction

module D = Pmem.Device
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics
module Pr = Ptelemetry.Probe

(* Fault-injection knobs for the sanitizer's positive controls
   (Engines.Engine_common.Fault_profile).  They elide exactly one
   persist primitive each at commit: the step-1 flushes of the logged
   target ranges, or the single commit fence.  Journal bookkeeping
   persists (drop area, truncation) are protocol, not user data, and
   are never elided. *)
let elide_commit_flush = ref false
let elide_commit_fence = ref false

let set_fault_elision ~flush ~fence =
  elide_commit_flush := flush;
  elide_commit_fence := fence

let m_entries = Mx.counter "journal.entries"
let m_spills = Mx.counter "journal.spills"
let h_entry_bytes = Mx.histogram "journal.entry_bytes"

(* Header field offsets within a slot: phase, undo entry count, drop
   count, and the head of the spill chain. *)
let hdr_phase = 0
let hdr_count = 8
let hdr_drops = 16
let hdr_spill = 24
let hdr_size = 64
let phase_normal = 0L
let phase_committing = 1L
let drop_slot_bytes = 16
let tx_overhead_ns = 198
let spill_min = 16 * 1024

type t = {
  dev : D.t;
  buddy : Palloc.Buddy.t;
  base : int;
  size : int;
  alloc_hint : int; (* preferred allocator stripe (the slot's index) *)
  mutable active : bool;
  mutable count : int; (* volatile mirror of persistent entry count *)
  mutable cursor : int; (* absolute address of the next entry byte *)
  mutable cur_limit : int; (* absolute end of the current entry region *)
  mutable last_region : int; (* base of the chain's last region *)
  mutable spills : int list; (* spill block offsets, oldest first *)
  mutable drops : int list; (* drop offsets, newest first *)
  dedup : (int * int, unit) Hashtbl.t; (* (off, len) ranges already logged *)
  dropped : (int, unit) Hashtbl.t;
  mutable targets : (int * int) list; (* data ranges to persist at commit *)
  mutable tx_logged : int; (* entry bytes sealed in the current transaction *)
}

let format dev ~base ~size =
  if size < hdr_size + 256 then invalid_arg "Journal_impl.format: slot too small";
  D.fill dev base hdr_size '\000';
  D.persist dev base hdr_size

let attach ?(alloc_hint = 0) dev buddy ~base ~size =
  {
    dev;
    buddy;
    base;
    size;
    alloc_hint;
    active = false;
    count = 0;
    cursor = base + hdr_size;
    cur_limit = Log_entry.main_entry_limit ~slot_base:base ~slot_size:size;
    last_region = base;
    spills = [];
    drops = [];
    dedup = Hashtbl.create 64;
    dropped = Hashtbl.create 16;
    targets = [];
    tx_logged = 0;
  }

let base t = t.base
let size t = t.size
let is_active t = t.active
let entry_count t = t.count
let drop_count t = List.length t.drops
let spill_count t = List.length t.spills
let logged_bytes t =
  if t.last_region = t.base then t.cursor - t.base - hdr_size
  else t.cursor - t.last_region - Log_entry.spill_header

let tx_logged_bytes t = t.tx_logged

let drop_capacity t = t.size / 4 / drop_slot_bytes
let remaining_bytes t = t.cur_limit - t.cursor

let require_active t = if not t.active then raise Not_in_transaction

let begin_tx t =
  if t.active then invalid_arg "Journal_impl.begin_tx: already in a transaction";
  t.active <- true;
  t.count <- 0;
  t.cursor <- t.base + hdr_size;
  t.cur_limit <- Log_entry.main_entry_limit ~slot_base:t.base ~slot_size:t.size;
  t.last_region <- t.base;
  t.spills <- [];
  t.drops <- [];
  t.targets <- [];
  t.tx_logged <- 0;
  Hashtbl.reset t.dedup;
  Hashtbl.reset t.dropped;
  D.charge_ns t.dev tx_overhead_ns

(* Persist the entry just written at absolute [at] of [len] bytes, then
   advance and persist the entry count.  The two persists are ordered
   (entry first) so a crash can never expose a counted-but-torn entry. *)
let seal_entry t ~kind ~at ~len =
  D.persist t.dev at len;
  t.count <- t.count + 1;
  D.write_u64 t.dev (t.base + hdr_count) (Int64.of_int t.count);
  D.persist t.dev (t.base + hdr_count) 8;
  t.tx_logged <- t.tx_logged + len;
  if Tr.on () then begin
    Mx.incr m_entries;
    Mx.observe h_entry_bytes len;
    Tr.emit
      ~args:[ ("kind", kind); ("at", string_of_int at); ("len", string_of_int len) ]
      ~cat:"journal" ~name:"log_entry" ~ph:Tr.I
      ~ts_ns:(D.simulated_ns t.dev) ()
  end

(* Chain a fresh spill region big enough for [need] entry bytes.  The
   ordering makes every intermediate state recoverable: the region's own
   header becomes durable before the chain points at it, and the chain
   points at it before its allocation-table mark (an unmarked chained
   block is freed as a no-op by recovery's idempotent sweep). *)
let add_spill t need =
  let exact = need + Log_entry.spill_header in
  let r =
    (* prefer a roomy region; fall back to the exact need under pressure *)
    match Palloc.Buddy.reserve ~hint:t.alloc_hint t.buddy (max spill_min exact) with
    | r -> r
    | exception Palloc.Buddy.Out_of_pmem -> (
        try Palloc.Buddy.reserve ~hint:t.alloc_hint t.buddy exact
        with Palloc.Buddy.Out_of_pmem -> raise Journal_full)
  in
  let off = Palloc.Buddy.offset_of_reservation t.buddy r in
  let actual = Palloc.Buddy.size_of_order (r : Palloc.Buddy.reservation).r_order in
  (* Declared before the first header store: from here on, writes into
     [off, off+actual) are journal protocol, not user data. *)
  if Pr.on () then
    Pr.emit (Pr.Region_reserve { dev = D.id t.dev; off; len = actual });
  D.write_u64 t.dev off 0L;
  D.write_u64 t.dev (off + 8) (Int64.of_int actual);
  D.persist t.dev off Log_entry.spill_header;
  let link =
    if t.last_region = t.base then t.base + hdr_spill else t.last_region
  in
  D.write_u64 t.dev link (Int64.of_int off);
  D.persist t.dev link 8;
  Palloc.Buddy.commit t.buddy r;
  t.spills <- t.spills @ [ off ];
  t.last_region <- off;
  t.cursor <- off + Log_entry.spill_header;
  t.cur_limit <- off + actual;
  if Tr.on () then begin
    Mx.incr m_spills;
    Tr.emit
      ~args:[ ("off", string_of_int off); ("bytes", string_of_int actual) ]
      ~cat:"journal" ~name:"spill" ~ph:Tr.I
      ~ts_ns:(D.simulated_ns t.dev) ()
  end

let ensure_room t need =
  if t.cursor + need > t.cur_limit then begin
    (* mark the continuation so walkers stop parsing this region here *)
    if t.cursor + 8 <= t.cur_limit then Log_entry.write_jump t.dev ~at:t.cursor;
    add_spill t need
  end

let append_data t ~off ~len =
  let need = Log_entry.data_entry_size len in
  ensure_room t need;
  let at = t.cursor in
  Log_entry.write_data t.dev ~at ~off ~len;
  t.cursor <- t.cursor + need;
  seal_entry t ~kind:"data" ~at ~len:need;
  t.targets <- (off, len) :: t.targets;
  if Pr.on () then Pr.emit (Pr.Log { dev = D.id t.dev; off; len })

let data_log t ~off ~len =
  require_active t;
  if len <= 0 then invalid_arg "Journal_impl.data_log: non-positive length";
  if not (Hashtbl.mem t.dedup (off, len)) then begin
    append_data t ~off ~len;
    Hashtbl.add t.dedup (off, len) ()
  end

let add_target t ~off ~len =
  require_active t;
  t.targets <- (off, len) :: t.targets

let data_log_nodedup t ~off ~len =
  require_active t;
  if len <= 0 then invalid_arg "Journal_impl.data_log: non-positive length";
  append_data t ~off ~len

let alloc t bytes =
  require_active t;
  let r = Palloc.Buddy.reserve ~hint:t.alloc_hint t.buddy bytes in
  let off = Palloc.Buddy.offset_of_reservation t.buddy r in
  (match
     let need = Log_entry.alloc_entry_size in
     ensure_room t need;
     let at = t.cursor in
     Log_entry.write_alloc t.dev ~at ~off
       ~order:(r : Palloc.Buddy.reservation).r_order;
     t.cursor <- t.cursor + need;
     seal_entry t ~kind:"alloc" ~at ~len:need
   with
  | () -> ()
  | exception e ->
      Palloc.Buddy.cancel t.buddy r;
      raise e);
  Palloc.Buddy.commit t.buddy r;
  if Pr.on () then
    Pr.emit
      (Pr.Alloc
         {
           dev = D.id t.dev;
           off;
           len = Palloc.Buddy.size_of_order (r : Palloc.Buddy.reservation).r_order;
         });
  off

let free t off =
  require_active t;
  if Hashtbl.mem t.dropped off then raise (Palloc.Buddy.Invalid_free off);
  (match Palloc.Buddy.block_size t.buddy off with
  | Some _ -> ()
  | None -> raise (Palloc.Buddy.Invalid_free off));
  if List.length t.drops >= drop_capacity t then raise Journal_full;
  (* Volatile append into the drop area; durable only at commit. *)
  let at = t.base + t.size - ((List.length t.drops + 1) * drop_slot_bytes) in
  Log_entry.write_drop t.dev ~at ~off;
  t.drops <- off :: t.drops;
  Hashtbl.add t.dropped off ()

let write_phase t phase =
  D.write_u64 t.dev (t.base + hdr_phase) phase;
  D.persist t.dev (t.base + hdr_phase) 8

(* Truncate the slot.  Counts go durably to zero first (so a crash cannot
   leave a count that overruns a released spill chain), then the spill
   regions are released and unchained, then the phase resets. *)
let truncate t =
  D.write_u64 t.dev (t.base + hdr_count) 0L;
  D.write_u64 t.dev (t.base + hdr_drops) 0L;
  D.persist t.dev (t.base + hdr_count) 16;
  if t.spills <> [] then begin
    List.iter (fun off -> Palloc.Buddy.dealloc_if_live t.buddy off) t.spills;
    if Pr.on () then
      List.iter
        (fun off -> Pr.emit (Pr.Region_release { dev = D.id t.dev; off }))
        t.spills;
    D.write_u64 t.dev (t.base + hdr_spill) 0L;
    D.persist t.dev (t.base + hdr_spill) 8
  end;
  write_phase t phase_normal;
  t.count <- 0;
  t.cursor <- t.base + hdr_size;
  t.cur_limit <- Log_entry.main_entry_limit ~slot_base:t.base ~slot_size:t.size;
  t.last_region <- t.base;
  t.spills <- [];
  t.drops <- [];
  t.targets <- [];
  Hashtbl.reset t.dedup;
  Hashtbl.reset t.dropped

let commit t =
  require_active t;
  t.active <- false;
  if t.count = 0 && t.drops = [] then ()
  else begin
    (* 1. Make every logged target range durable. *)
    if not !elide_commit_flush then
      List.iter (fun (off, len) -> D.flush t.dev off len) t.targets;
    (* 2. Make the drop area and its count durable, then mark committing. *)
    let ndrops = List.length t.drops in
    if ndrops > 0 then begin
      let area = ndrops * drop_slot_bytes in
      D.flush t.dev (t.base + t.size - area) area;
      D.write_u64 t.dev (t.base + hdr_drops) (Int64.of_int ndrops);
      D.flush t.dev (t.base + hdr_drops) 8
    end;
    if not !elide_commit_fence then D.fence t.dev;
    (* The commit point: everything this transaction stored must be
       durable now.  Emitted before [truncate], whose own persists drain
       the WPQ and would mask an elided or forgotten commit fence. *)
    if Pr.on () then
      Pr.emit (Pr.Commit_point { dev = D.id t.dev; ns = D.simulated_ns t.dev });
    if ndrops > 0 then begin
      write_phase t phase_committing;
      (* 3. Apply deferred frees; idempotent, so recovery may re-run them. *)
      List.iter (fun off -> Palloc.Buddy.dealloc_if_live t.buddy off) t.drops
    end;
    (* 4. Truncate. *)
    truncate t
  end

let abort t =
  require_active t;
  t.active <- false;
  if t.count = 0 then truncate t
  else begin
    (* Collect entries (following any spill chain), then restore data logs
       newest-first. *)
    let entries = ref [] in
    Log_entry.walk t.dev ~slot_base:t.base ~slot_size:t.size ~count:t.count
      (fun e -> entries := e :: !entries);
    (* [entries] is newest-first, which is the order undo must apply. *)
    List.iter
      (fun e ->
        match e with
        | Log_entry.Data { off; len; payload } ->
            D.copy_within t.dev ~src:payload ~dst:off ~len;
            D.flush t.dev off len
        | Log_entry.Alloc _ | Log_entry.Drop _ -> ())
      !entries;
    D.fence t.dev;
    List.iter
      (fun e ->
        match e with
        | Log_entry.Alloc { off; order = _ } ->
            Palloc.Buddy.dealloc_if_live t.buddy off
        | Log_entry.Data _ | Log_entry.Drop _ -> ())
      !entries;
    truncate t
  end
