exception Journal_full
exception Not_in_transaction

module D = Pmem.Device
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics
module Pr = Ptelemetry.Probe

(* Fault-injection knobs for the sanitizer's positive controls
   (Engines.Engine_common.Fault_profile).  They elide exactly one
   persist primitive each at commit: the step-1 flushes of the logged
   target ranges, or the single commit fence.  Journal bookkeeping
   persists (drop area, truncation) are protocol, not user data, and
   are never elided. *)
let elide_commit_flush = ref false
let elide_commit_fence = ref false

let set_fault_elision ~flush ~fence =
  elide_commit_flush := flush;
  elide_commit_fence := fence

(* The profiler's positive controls: the opposite defect.  Instead of
   eliding a persist these repeat one — crash-safe but wasteful, the
   kind of overcaution pprof exists to expose.  [flush] runs the step-1
   target flushes a second time (every line is already in the WPQ, so
   the repeat is pure write-back waste); [fence] issues two extra
   commit fences after the real one (both drain an empty WPQ — two in a
   row so the sanitizer's W2 redundant-fence check fires too). *)
let dup_commit_flush = ref false
let dup_commit_fence = ref false

let set_fault_duplication ~flush ~fence =
  dup_commit_flush := flush;
  dup_commit_fence := fence

let m_entries = Mx.counter "journal.entries"
let m_spills = Mx.counter "journal.spills"
let h_entry_bytes = Mx.histogram "journal.entry_bytes"

(* Header field offsets within a slot: phase, advisory undo entry count,
   drop count, head of the spill chain, and the truncation epoch that
   salts entry checksums.  Of these only [phase], [spill] and [epoch]
   carry recovery semantics; [count] and [drops] are advisory and stay
   volatile for the whole transaction (zeroed durably at truncation, so
   a healthy image always reads 0) — the durable tail of the log is
   defined by the terminator word and the drop area by its salted
   checksums, never by the counts.  Legacy/hand-damaged images with
   nonzero counts are still reconciled by fsck. *)
let hdr_phase = 0
let hdr_count = 8
let hdr_drops = 16
let hdr_spill = 24
let hdr_epoch = 32
let hdr_size = 64
let phase_normal = 0L
let drop_slot_bytes = 16
let tx_overhead_ns = 198
let spill_min = 16 * 1024
let line = 64

type t = {
  dev : D.t;
  buddy : Palloc.Buddy.t;
  base : int;
  size : int;
  alloc_hint : int; (* preferred allocator stripe (the slot's index) *)
  mutable active : bool;
  mutable count : int; (* volatile entry count (advisory once persisted) *)
  mutable cursor : int; (* absolute address of the next entry byte *)
  mutable cur_limit : int; (* absolute end of the current entry region *)
  mutable last_region : int; (* base of the chain's last region *)
  mutable spills : int list; (* spill block offsets, newest first *)
  mutable drops : int list; (* drop offsets, newest first *)
  mutable ndrops : int; (* length of [drops], kept O(1) *)
  mutable epoch : int; (* volatile mirror of the persistent epoch *)
  mutable salt : Log_entry.salt; (* checksum salt for (base, epoch) *)
  dedup : (int * int, unit) Hashtbl.t; (* (off, len) ranges already logged *)
  lines : (int, unit) Hashtbl.t; (* line indexes fully covered by the log *)
  dropped : (int, unit) Hashtbl.t;
  mutable targets : (int * int) list; (* data ranges to persist at commit *)
  mutable tx_logged : int; (* entry bytes sealed in the current transaction *)
  marks : (int, unit) Hashtbl.t;
      (* alloc-table lines dirtied by this tx's allocation marks; flushed
         as coalesced runs under the commit fence (mark-after-seal) *)
  mutable defer_seals : bool;
      (* collapse per-entry seal persists into one log-tail flush+fence
         just before the commit plan runs (redo-style users only) *)
  mutable unsealed : (int * int) option;
      (* [lo, hi) byte range of deferred, not-yet-durable entry bytes;
         always one contiguous run within the current entry region *)
}

let format dev ~base ~size =
  if size < hdr_size + 256 then invalid_arg "Journal_impl.format: slot too small";
  D.fill dev base hdr_size '\000';
  (* terminator: the empty log ends right after the header *)
  D.write_u64 dev (base + hdr_size) 0L;
  D.persist dev base (hdr_size + Log_entry.terminator_size)

let attach ?(alloc_hint = 0) dev buddy ~base ~size =
  let epoch = Int64.to_int (D.read_u64 dev (base + hdr_epoch)) in
  {
    dev;
    buddy;
    base;
    size;
    alloc_hint;
    active = false;
    count = 0;
    cursor = base + hdr_size;
    cur_limit = Log_entry.main_entry_limit ~slot_base:base ~slot_size:size;
    last_region = base;
    spills = [];
    drops = [];
    ndrops = 0;
    epoch;
    salt = Log_entry.salt ~slot_base:base ~epoch;
    dedup = Hashtbl.create 64;
    lines = Hashtbl.create 64;
    dropped = Hashtbl.create 16;
    targets = [];
    tx_logged = 0;
    marks = Hashtbl.create 16;
    defer_seals = false;
    unsealed = None;
  }

let base t = t.base
let size t = t.size
let is_active t = t.active
let entry_count t = t.count
let drop_count t = t.ndrops
let spill_count t = List.length t.spills
let logged_bytes t =
  if t.last_region = t.base then t.cursor - t.base - hdr_size
  else t.cursor - t.last_region - Log_entry.spill_header

let tx_logged_bytes t = t.tx_logged
let set_defer_seals t on = t.defer_seals <- on

let drop_capacity t = t.size / 4 / drop_slot_bytes
let remaining_bytes t = t.cur_limit - t.cursor

let require_active t = if not t.active then raise Not_in_transaction

let begin_tx t =
  if t.active then invalid_arg "Journal_impl.begin_tx: already in a transaction";
  t.active <- true;
  t.count <- 0;
  t.cursor <- t.base + hdr_size;
  t.cur_limit <- Log_entry.main_entry_limit ~slot_base:t.base ~slot_size:t.size;
  t.last_region <- t.base;
  t.spills <- [];
  t.drops <- [];
  t.ndrops <- 0;
  t.targets <- [];
  t.tx_logged <- 0;
  t.unsealed <- None;
  Hashtbl.reset t.dedup;
  Hashtbl.reset t.lines;
  Hashtbl.reset t.dropped;
  Hashtbl.reset t.marks;
  D.charge_ns t.dev tx_overhead_ns

(* Seal the entry just written at absolute [at] of [len] bytes: write the
   zero terminator word right after it and persist entry and terminator
   together — a single flush+fence.  A crash mid-persist leaves either
   the old terminator (entry never happened), a torn entry (checksum
   fails: never happened), or the full entry plus its terminator; the
   tail walk reads back exactly the durable prefix, so no persistent
   counter update is needed.

   With [defer_seals] set the persist is elided and the entry's bytes
   (terminator included) extend a volatile [unsealed] range instead; the
   whole range becomes durable in one flush+fence at commit (or when a
   spill moves the cursor to a new region).  Sound only for redo-style
   use: home locations then stay unflushed until commit, so no store an
   entry covers can reach media before the collapsed seal fence. *)
let extend_unsealed t ~lo ~hi =
  t.unsealed <-
    (match t.unsealed with
    | None -> Some (lo, hi)
    | Some (l, h) -> Some (min l lo, max h hi))

let seal_entry t ~kind ~at ~len =
  D.write_u64 t.dev (at + len) 0L;
  if t.defer_seals then
    extend_unsealed t ~lo:at ~hi:(at + len + Log_entry.terminator_size)
  else D.persist t.dev at (len + Log_entry.terminator_size);
  t.count <- t.count + 1;
  t.tx_logged <- t.tx_logged + len;
  if Tr.on () then begin
    Mx.incr m_entries;
    Mx.observe h_entry_bytes len;
    Tr.emit
      ~args:[ ("kind", kind); ("at", string_of_int at); ("len", string_of_int len) ]
      ~cat:"journal" ~name:"log_entry" ~ph:Tr.I
      ~ts_ns:(D.simulated_ns t.dev) ()
  end

(* Chain a fresh spill region big enough for [need] entry bytes.  The
   ordering makes every intermediate state recoverable: the region's own
   header (and a terminator, so the freshly linked region walks as empty)
   becomes durable before the chain points at it, and the chain points at
   it before its allocation-table mark (an unmarked chained block is
   freed as a no-op by recovery's idempotent sweep). *)
let add_spill t need =
  let exact = need + Log_entry.spill_header in
  let r =
    (* prefer a roomy region; fall back to the exact need under pressure *)
    match Palloc.Buddy.reserve ~hint:t.alloc_hint t.buddy (max spill_min exact) with
    | r -> r
    | exception Palloc.Buddy.Out_of_pmem -> (
        try Palloc.Buddy.reserve ~hint:t.alloc_hint t.buddy exact
        with Palloc.Buddy.Out_of_pmem -> raise Journal_full)
  in
  let off = Palloc.Buddy.offset_of_reservation t.buddy r in
  let actual = Palloc.Buddy.size_of_order (r : Palloc.Buddy.reservation).r_order in
  (* Declared before the first header store: from here on, writes into
     [off, off+actual) are journal protocol, not user data. *)
  if Pr.on () then
    Pr.emit (Pr.Region_reserve { dev = D.id t.dev; off; len = actual });
  D.write_u64 t.dev off 0L;
  D.write_u64 t.dev (off + 8) (Int64.of_int actual);
  D.write_u64 t.dev (off + Log_entry.spill_header) 0L;
  D.persist t.dev off (Log_entry.spill_header + Log_entry.terminator_size);
  let link =
    if t.last_region = t.base then t.base + hdr_spill else t.last_region
  in
  D.write_u64 t.dev link (Int64.of_int off);
  D.persist t.dev link 8;
  Palloc.Buddy.commit t.buddy r;
  t.spills <- off :: t.spills;
  t.last_region <- off;
  t.cursor <- off + Log_entry.spill_header;
  t.cur_limit <- off + actual;
  if Tr.on () then begin
    Mx.incr m_spills;
    Tr.emit
      ~args:[ ("off", string_of_int off); ("bytes", string_of_int actual) ]
      ~cat:"journal" ~name:"spill" ~ph:Tr.I
      ~ts_ns:(D.simulated_ns t.dev) ()
  end

(* Make any deferred entry bytes durable: one flush over the contiguous
   log-tail run, one fence.  No-op unless seals were deferred. *)
let flush_pending_seal t =
  match t.unsealed with
  | None -> ()
  | Some (lo, hi) ->
      D.flush t.dev lo (hi - lo);
      D.fence t.dev;
      t.unsealed <- None

let ensure_room t need =
  (* +terminator: every entry is sealed together with the zero word that
     follows it, so room for that word must exist in the same region *)
  if t.cursor + need + Log_entry.terminator_size > t.cur_limit then begin
    (* mark the continuation so walkers stop parsing this region here *)
    if t.cursor + 8 <= t.cur_limit then begin
      Log_entry.write_jump t.dev ~at:t.cursor;
      if t.defer_seals then extend_unsealed t ~lo:t.cursor ~hi:(t.cursor + 8)
    end;
    (* the deferred tail must stay one contiguous run per region, so seal
       it before the cursor moves into the fresh spill block (the spill's
       own header persists fence anyway) *)
    flush_pending_seal t;
    add_spill t (need + Log_entry.terminator_size)
  end

(* Line-granularity dedup bookkeeping: a 64-byte line is marked once some
   single logged range covers it entirely; a later range whose every line
   is marked needs no new entry (its undo bytes and its commit flush are
   both already guaranteed by the earlier entries). *)
let mark_covered_lines t ~off ~len =
  let first = (off + line - 1) / line and last = ((off + len) / line) - 1 in
  for l = first to last do
    Hashtbl.replace t.lines l ()
  done

let lines_covered t ~off ~len =
  let last = (off + len - 1) / line in
  let rec all l = l > last || (Hashtbl.mem t.lines l && all (l + 1)) in
  all (off / line)

let append_data t ~off ~len =
  let need = Log_entry.data_entry_size len in
  ensure_room t need;
  let at = t.cursor in
  Log_entry.write_data t.dev ~salt:t.salt ~at ~off ~len;
  t.cursor <- t.cursor + need;
  seal_entry t ~kind:"data" ~at ~len:need;
  mark_covered_lines t ~off ~len;
  t.targets <- (off, len) :: t.targets;
  if Pr.on () then Pr.emit (Pr.Log { dev = D.id t.dev; off; len })

let data_log t ~off ~len =
  require_active t;
  if len <= 0 then invalid_arg "Journal_impl.data_log: non-positive length";
  if not (Hashtbl.mem t.dedup (off, len)) && not (lines_covered t ~off ~len)
  then begin
    append_data t ~off ~len;
    Hashtbl.add t.dedup (off, len) ()
  end

let add_target t ~off ~len =
  require_active t;
  t.targets <- (off, len) :: t.targets

let data_log_nodedup t ~off ~len =
  require_active t;
  if len <= 0 then invalid_arg "Journal_impl.data_log: non-positive length";
  append_data t ~off ~len

let alloc t bytes =
  require_active t;
  let r = Palloc.Buddy.reserve ~hint:t.alloc_hint t.buddy bytes in
  let off = Palloc.Buddy.offset_of_reservation t.buddy r in
  (match
     let need = Log_entry.alloc_entry_size in
     ensure_room t need;
     let at = t.cursor in
     Log_entry.write_alloc t.dev ~salt:t.salt ~at ~off
       ~order:(r : Palloc.Buddy.reservation).r_order;
     t.cursor <- t.cursor + need;
     seal_entry t ~kind:"alloc" ~at ~len:need
   with
  | () -> ()
  | exception e ->
      Palloc.Buddy.cancel t.buddy r;
      raise e);
  (* Mark-after-seal: the dirty table mark follows the sealed undo entry
     and only reaches media in the batched mark flush under the commit
     fence, so a durable mark always has a durable entry to revert it. *)
  Palloc.Buddy.commit t.buddy r;
  Hashtbl.replace t.marks (Palloc.Buddy.mark_line t.buddy r) ();
  if Pr.on () then
    Pr.emit
      (Pr.Alloc
         {
           dev = D.id t.dev;
           off;
           len = Palloc.Buddy.size_of_order (r : Palloc.Buddy.reservation).r_order;
         });
  off

let free t off =
  require_active t;
  if Hashtbl.mem t.dropped off then raise (Palloc.Buddy.Invalid_free off);
  let order =
    match Palloc.Buddy.block_size t.buddy off with
    | Some size -> Palloc.Buddy.order_of_size size
    | None -> raise (Palloc.Buddy.Invalid_free off)
  in
  if t.ndrops >= drop_capacity t then raise Journal_full;
  (* Volatile append into the drop area; durable only at commit.  The
     block's order rides in the slot so recovery can re-mark the table
     byte if a crash interrupts the batched clear flush. *)
  let at = t.base + t.size - ((t.ndrops + 1) * drop_slot_bytes) in
  Log_entry.write_drop t.dev ~salt:t.salt ~at ~off ~order;
  t.drops <- off :: t.drops;
  t.ndrops <- t.ndrops + 1;
  Hashtbl.add t.dropped off ()

(* Flush a set of 64-byte line indexes: one flush call per contiguous
   run, never merged across a gap (see {!Group_commit.flush_lines} —
   the same runs the epoch leader issues for a merged batch). *)
let flush_lines = Group_commit.flush_lines

(* Truncate the slot: terminator back at the head of the entry area,
   advisory counts zeroed, spill head unchained, phase reset, and —
   crucially — the epoch bumped, so any sealed entry bytes left beyond
   the terminator (in the slot or in a recycled spill region) can never
   again verify against this slot's salt.

   [pending] carries the alloc-table lines dirtied by clears the caller
   just applied (deferred frees at commit, allocation reverts at abort);
   spill-region releases add their own clear lines to it.  The whole set
   is flushed as coalesced runs and fenced {e before} the header persist
   (I-CLEARS-BEFORE-INVALIDATE): a durable table clear with the log
   already invalidated would be unrecoverable, whereas clears that miss
   the fence are re-derived from the still-walkable log (drop slots
   carry their order for re-marking; alloc entries free idempotently).

   The header persist itself is ONE batched flush+fence: per-u64 tearing
   can only leave the old log intact (rolled back again, idempotently —
   rolling back a committed-but-unacknowledged transaction is already a
   legal outcome of a crash between the commit fence and the truncate)
   or invalidated, and the phase word is 0 on both sides. *)
let exec_truncate_phase t pending = function
  | Protocol.Release_spills ->
      List.iter
        (fun off ->
          Hashtbl.replace pending (Palloc.Buddy.line_of_offset t.buddy off) ();
          Palloc.Buddy.dealloc_if_live ~durable:false t.buddy off)
        t.spills;
      if Pr.on () then
        List.iter
          (fun off -> Pr.emit (Pr.Region_release { dev = D.id t.dev; off }))
          t.spills
  | Protocol.Persist_clears ->
      flush_lines t.dev pending;
      D.fence t.dev
  | Protocol.Reset_header ->
      t.epoch <- t.epoch + 1;
      D.write_u64 t.dev (t.base + hdr_count) 0L;
      D.write_u64 t.dev (t.base + hdr_drops) 0L;
      D.write_u64 t.dev (t.base + hdr_spill) 0L;
      D.write_u64 t.dev (t.base + hdr_epoch) (Int64.of_int t.epoch);
      D.write_u64 t.dev (t.base + hdr_size) 0L;
      D.write_u64 t.dev (t.base + hdr_phase) phase_normal;
      D.persist t.dev t.base (hdr_size + Log_entry.terminator_size);
      if Pr.on () then
        Pr.emit
          (Pr.Journal_truncate
             { dev = D.id t.dev; slot_base = t.base; epoch = t.epoch })
  | _ -> assert false (* not a truncate phase *)

let truncate_pending t pending =
  List.iter
    (exec_truncate_phase t pending)
    (Protocol.truncate_plan ~spills:(t.spills <> [])
       ~clears:(Hashtbl.length pending > 0));
  t.salt <- Log_entry.salt ~slot_base:t.base ~epoch:t.epoch;
  t.count <- 0;
  t.cursor <- t.base + hdr_size;
  t.cur_limit <- Log_entry.main_entry_limit ~slot_base:t.base ~slot_size:t.size;
  t.last_region <- t.base;
  t.spills <- [];
  t.drops <- [];
  t.ndrops <- 0;
  t.targets <- [];
  (* abandoned unsealed bytes are dirty-unflushed lines: they can never
     land, and the header persist above re-epochs the slot anyway *)
  t.unsealed <- None;
  Hashtbl.reset t.dedup;
  Hashtbl.reset t.lines;
  Hashtbl.reset t.dropped;
  Hashtbl.reset t.marks

let truncate t = truncate_pending t (Hashtbl.create 1)

(* Flush the logged target ranges as a set of unique 64-byte lines:
   overlapping and duplicate ranges cost one flush per dirty line, and
   contiguous lines coalesce into a single flush call. *)
let flush_target_lines t =
  let lines = Hashtbl.create 64 in
  List.iter
    (fun (off, len) ->
      for l = off / line to (off + len - 1) / line do
        Hashtbl.replace lines l ()
      done)
    t.targets;
  flush_lines t.dev lines

(* One commit phase of {!Protocol.commit_plan}, interpreted against the
   device.  [pending] accumulates the table-clear lines that the
   trailing truncate persists. *)
let exec_commit_phase t pending = function
  | Protocol.Flush_targets ->
      (* Make every logged target range durable, one flush per unique
         dirty line (contiguous lines coalesce). *)
      if not !elide_commit_flush then begin
        flush_target_lines t;
        if !dup_commit_flush then flush_target_lines t
      end
  | Protocol.Flush_marks ->
      (* The transaction's batched allocation-table marks, flushed as
         coalesced runs under the same fence.  This is journal protocol,
         not user data, so it is never elided: every mark's undo entry
         was sealed before the mark was written (mark-after-seal), so
         the marks may only become durable here, under the commit
         fence. *)
      flush_lines t.dev t.marks
  | Protocol.Persist_drop_area ->
      (* The drop records become durable at the commit point, not
         before.  The header counts stay volatile: recovery scans the
         drop area by salted checksum and walks the log to its
         terminator, so persisting advisory counts here would be pure
         write-back waste (it used to cost every freeing transaction
         one E3 flush).  fsck treats advisory 0 beside a walked tail
         as the normal case. *)
      let area = t.ndrops * drop_slot_bytes in
      D.flush t.dev (t.base + t.size - area) area
  | Protocol.Commit_fence ->
      if not !elide_commit_fence then begin
        D.fence t.dev;
        if !dup_commit_fence then begin
          D.fence t.dev;
          D.fence t.dev
        end
      end;
      (* The commit point: everything this transaction stored must be
         durable now.  Emitted before the truncate, whose own persists
         drain the WPQ and would mask an elided or forgotten commit
         fence. *)
      if Pr.on () then
        Pr.emit
          (Pr.Commit_point { dev = D.id t.dev; ns = D.simulated_ns t.dev })
  | Protocol.Apply_drops ->
      (* Apply deferred frees as dirty table clears; their lines become
         durable in one batched flush+fence inside the truncate,
         strictly before the log is invalidated.  Idempotent: recovery
         re-marks from the drop slots (which became durable at the
         commit fence) if the clear flush is interrupted. *)
      List.iter
        (fun off ->
          Hashtbl.replace pending (Palloc.Buddy.line_of_offset t.buddy off) ();
          Palloc.Buddy.dealloc_if_live ~durable:false t.buddy off;
          if Pr.on () then Pr.emit (Pr.Drop_apply { dev = D.id t.dev; off }))
        t.drops
  | _ -> assert false (* not a commit phase *)

(* The transaction's full commit line set — logged target ranges, the
   batched alloc-table marks, and the drop records — as unique 64-byte
   line indexes.  This is exactly what [commit_plan]'s three flush
   phases would flush; under group commit the whole set is published to
   the epoch combiner and rides in the leader's merged run. *)
let commit_line_set t =
  let lines = Hashtbl.create 64 in
  List.iter
    (fun (off, len) ->
      for l = off / line to (off + len - 1) / line do
        Hashtbl.replace lines l ()
      done)
    t.targets;
  Hashtbl.iter (fun l () -> Hashtbl.replace lines l ()) t.marks;
  if t.ndrops > 0 then begin
    let area = t.ndrops * drop_slot_bytes in
    for l = (t.base + t.size - area) / line to (t.base + t.size - 1) / line do
      Hashtbl.replace lines l ()
    done
  end;
  lines

(* One group-commit phase of {!Protocol.group_commit_plan}.  The fault
   elision/duplication knobs apply to the solo path only (the
   sanitizer's positive controls run private pools). *)
let exec_group_phase t gc pending = function
  | Protocol.Merge_runs ->
      (* Publish our line set and wait out the epoch: the leader (maybe
         us) flushes the merged runs and issues the epoch fence inside
         this call.  Raises [D.Crashed] if the device dies before our
         epoch's fence — the slot rolls back independently at
         recovery. *)
      Group_commit.commit gc ~lines:(commit_line_set t)
  | Protocol.Epoch_fence ->
      (* The fence itself was issued once, by the epoch leader, inside
         [Merge_runs]; observing epoch completion is this member's
         commit point. *)
      if Pr.on () then
        Pr.emit
          (Pr.Commit_point { dev = D.id t.dev; ns = D.simulated_ns t.dev })
  | ph -> exec_commit_phase t pending ph

let commit ?group t =
  require_active t;
  t.active <- false;
  if t.count = 0 && t.ndrops = 0 then ()
  else begin
    (* Deferred entry seals become durable here, under ONE collapsed
       flush+fence, strictly before any target or mark flush: a landed
       target line or table mark must always have a durable entry behind
       it, exactly as with per-entry seals — only the fence count
       changes. *)
    flush_pending_seal t;
    let pending = Hashtbl.create (max 8 t.ndrops) in
    (match group with
    | Some gc ->
        List.iter (exec_group_phase t gc pending) Protocol.group_commit_plan
    | None ->
        List.iter
          (exec_commit_phase t pending)
          (Protocol.commit_plan ~ndrops:t.ndrops));
    (* Truncate: clear flush + fence (when needed), then one batched
       header persist retires the log.  Per-member even under group
       commit: the header persist is this transaction's durability
       acknowledgment. *)
    truncate_pending t pending
  end

(* One abort phase of {!Protocol.abort_plan}.  [entries] is the walked
   durable log, newest-first — the order undo must apply. *)
let exec_abort_phase t entries pending = function
  | Protocol.Restore_data ->
      List.iter
        (fun e ->
          match e with
          | Log_entry.Data { off; len; payload } ->
              D.copy_within t.dev ~src:payload ~dst:off ~len;
              D.flush t.dev off len
          | Log_entry.Alloc _ | Log_entry.Drop _ -> ())
        entries
  | Protocol.Restore_fence -> D.fence t.dev
  | Protocol.Revert_allocs ->
      (* Allocation reverts are dirty clears, made durable in the
         batched clear flush inside the truncate (same ordering as
         commit's deferred frees: clears strictly before log
         invalidation). *)
      List.iter
        (fun e ->
          match e with
          | Log_entry.Alloc { off; order = _ } ->
              Hashtbl.replace pending
                (Palloc.Buddy.line_of_offset t.buddy off) ();
              Palloc.Buddy.dealloc_if_live ~durable:false t.buddy off
          | Log_entry.Data _ | Log_entry.Drop _ -> ())
        entries
  | _ -> assert false (* not an abort phase *)

let abort t =
  require_active t;
  t.active <- false;
  if t.count = 0 then truncate t
  else begin
    (* Collect the sealed entries by walking to the tail terminator
       (following any spill chain).  The walk reads the device's current
       contents, so deferred (not-yet-durable) entries are restored too;
       no seal flush is needed first — under the redo-only constraint
       their home stores were never flushed either, so a crash mid-abort
       leaves the pre-transaction image durable on both sides. *)
    let entries = ref [] in
    let _visited, _cursor, _reason =
      Log_entry.walk_to_tail t.dev ~slot_base:t.base ~slot_size:t.size
        ~salt:t.salt (fun e -> entries := e :: !entries)
    in
    let pending = Hashtbl.create 8 in
    List.iter
      (exec_abort_phase t !entries pending)
      (Protocol.abort_plan ~entries:(List.length !entries));
    truncate_pending t pending
  end
