module D = Pmem.Device

module type INSTANCE = sig
  val setup : unit -> unit
  val run : unit -> unit
  val device : unit -> D.t
  val reopen : unit -> unit
  val verify : outcome:[ `Crashed of int | `Completed ] -> unit
end

(* One fully-determined crash branch: everything needed to replay it. *)
type spec = {
  point : int;  (* primary crash: countdown during [run] *)
  sample : int;  (* WPQ survival-subset sample index *)
  torn_prob : float;
  recovery_point : int option;
      (* nested crash: countdown during the [reopen] that recovers the
         primary crash; recovery is then re-run to completion *)
}

let spec_to_string s =
  let base =
    Printf.sprintf "point=%d sample=%d torn=%g" s.point s.sample s.torn_prob
  in
  match s.recovery_point with
  | Some m -> Printf.sprintf "%s rpoint=%d" base m
  | None -> base

(* Parse "key=value" pairs (whitespace-separated).  Unknown keys are
   ignored so callers can carry extra fields (crash_sweep prefixes
   "scenario=NAME") in the same line. *)
let spec_of_string str =
  let point = ref None
  and sample = ref 1
  and torn = ref 0.0
  and rpoint = ref None in
  let err = ref None in
  List.iter
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> ()
      | Some i -> (
          let k = String.sub tok 0 i
          and v = String.sub tok (i + 1) (String.length tok - i - 1) in
          try
            match k with
            | "point" -> point := Some (int_of_string v)
            | "sample" -> sample := int_of_string v
            | "torn" -> torn := float_of_string v
            | "rpoint" -> rpoint := Some (int_of_string v)
            | _ -> ()
          with _ -> err := Some (Printf.sprintf "bad value in %S" tok)))
    (String.split_on_char ' ' (String.trim str));
  match (!err, !point) with
  | Some e, _ -> Error e
  | None, None -> Error "missing point=N"
  | None, Some point ->
      Ok { point; sample = !sample; torn_prob = !torn; recovery_point = !rpoint }

type result = {
  points : int;
  crashes_injected : int;
  recovery_crashes : int;
  torn_lines : int;
  failures : (spec * string) list;
}

let points_of_dry_run make =
  let module I = (val make () : INSTANCE) in
  I.setup ();
  let before = D.persist_points (I.device ()) in
  I.run ();
  let pts = D.persist_points (I.device ()) - before in
  I.verify ~outcome:`Completed;
  pts

let chosen_points ~points ~limit =
  match limit with
  | Some l when l > 0 && l < points ->
      (* Sample evenly across the range, always including the edges. *)
      List.sort_uniq compare
        (List.init l (fun i -> 1 + (i * (points - 1) / (max 1 (l - 1)))))
  | _ -> List.init points (fun i -> i + 1)

(* Deterministic reseed salts; replay must derive the same values. *)
let primary_seed spec = 0x5EED + (spec.point * 131) + spec.sample
let nested_seed spec m = primary_seed spec + (m * 7919)

(* Verify + structural fsck of a recovered instance; failures are
   recorded against [spec]. *)
let verify_recovered ~fsck (module I : INSTANCE) spec failures =
  (match I.verify ~outcome:(`Crashed spec.point) with
  | () -> ()
  | exception e -> failures := (spec, Printexc.to_string e) :: !failures);
  (* recovery must leave a structurally consistent image: a pool that
     verifies but fails fsck has corruption waiting to bite *)
  if fsck then begin
    let report = Corundum.Pool_check.check_device (I.device ()) in
    if not (Corundum.Pool_check.ok report) then
      failures :=
        (spec, Format.asprintf "post-recovery fsck: %a" Corundum.Pool_check.pp report)
        :: !failures
  end

(* Run one branch on a fresh instance.  Returns [`No_crash] when the
   schedule outlived the run, [`Recovery_done] when [spec.recovery_point]
   exceeded recovery's own persist points (so the nested sweep for this
   primary point is exhausted), and [`Injected] otherwise. *)
let run_branch ~fsck make spec failures torn =
  let module I = (val make () : INSTANCE) in
  I.setup ();
  let dev = I.device () in
  if spec.torn_prob > 0.0 then D.set_torn_write_prob dev spec.torn_prob;
  D.set_crash_countdown dev spec.point;
  match I.run () with
  | () ->
      (* The schedule outlived the run (nondeterministic scenarios). *)
      D.set_crash_countdown dev 0;
      `No_crash
  | exception D.Crashed -> begin
      (* sample a different subset of surviving WPQ lines each time *)
      D.reseed dev (primary_seed spec);
      match spec.recovery_point with
      | None ->
          I.reopen ();
          torn := !torn + (D.stats dev).D.torn_lines;
          verify_recovered ~fsck (module I) spec failures;
          `Injected
      | Some m -> (
          (* crash recovery itself at its [m]-th persist point, then
             recover from THAT crash — recovery must be restartable *)
          D.set_crash_countdown dev m;
          match I.reopen () with
          | () ->
              D.set_crash_countdown dev 0;
              `Recovery_done
          | exception D.Crashed ->
              D.reseed dev (nested_seed spec m);
              D.set_crash_countdown dev 0;
              (match I.reopen () with
              | () ->
                  torn := !torn + (D.stats dev).D.torn_lines;
                  verify_recovered ~fsck (module I) spec failures
              | exception e ->
                  failures :=
                    ( spec,
                      Printf.sprintf "recovery not restartable after nested crash: %s"
                        (Printexc.to_string e) )
                    :: !failures);
              `Injected)
    end
  | exception e ->
      failures :=
        ( spec,
          Printf.sprintf "scenario failed before crash: %s" (Printexc.to_string e) )
        :: !failures;
      `No_crash

(* Safety net: recovery persist points are few; if the nested loop runs
   past this, the countdown is not being honored. *)
let max_recovery_points = 10_000

let sweep ?limit ?(survival_samples = 1) ?(torn_prob = 0.0) ?(fsck = true)
    ?(recovery_crashes = false) make =
  let points = points_of_dry_run make in
  let failures = ref [] in
  let injected = ref 0 in
  let rec_injected = ref 0 in
  let torn = ref 0 in
  List.iter
    (fun k ->
      for sample = 1 to max 1 survival_samples do
        let spec = { point = k; sample; torn_prob; recovery_point = None } in
        (match run_branch ~fsck make spec failures torn with
        | `Injected -> incr injected
        | `No_crash | `Recovery_done -> ());
        if recovery_crashes then begin
          (* sweep the recovery of THIS crash point: crash it at each of
             its own persist points until the countdown outlives it *)
          let m = ref 1 and stop = ref false in
          while (not !stop) && !m <= max_recovery_points do
            let spec = { spec with recovery_point = Some !m } in
            (match run_branch ~fsck make spec failures torn with
            | `Injected -> incr rec_injected
            | `No_crash | `Recovery_done -> stop := true);
            incr m
          done;
          if !m > max_recovery_points then
            failures :=
              ( { spec with recovery_point = Some !m },
                "recovery crash countdown never exhausted" )
              :: !failures
        end
      done)
    (chosen_points ~points ~limit);
  {
    points;
    crashes_injected = !injected;
    recovery_crashes = !rec_injected;
    torn_lines = !torn;
    failures = List.rev !failures;
  }

(* Replay exactly one branch from its spec (same seed derivation as
   {!sweep}); [Ok ()] if it verifies, the failure messages otherwise. *)
let replay ?(fsck = true) make spec =
  let failures = ref [] and torn = ref 0 in
  match run_branch ~fsck make spec failures torn with
  | `No_crash -> Error [ "crash point out of range: the run completed" ]
  | `Recovery_done ->
      Error [ "recovery crash point out of range: recovery completed" ]
  | `Injected -> (
      match !failures with
      | [] -> Ok ()
      | fs -> Error (List.map snd fs))

let is_clean r = r.failures = []

let pp_spec ppf s =
  Format.fprintf ppf "crash@%d" s.point;
  (match s.recovery_point with
  | Some m -> Format.fprintf ppf "/recovery@%d" m
  | None -> ());
  if s.sample <> 1 then Format.fprintf ppf " sample %d" s.sample;
  if s.torn_prob > 0.0 then Format.fprintf ppf " torn %g" s.torn_prob

let pp_result ppf r =
  Format.fprintf ppf
    "%d persist points, %d crashes injected (%d nested in recovery), %d torn \
     lines, %d failures"
    r.points r.crashes_injected r.recovery_crashes r.torn_lines
    (List.length r.failures);
  List.iter
    (fun (s, msg) -> Format.fprintf ppf "@.  %a: %s" pp_spec s msg)
    r.failures
