module D = Pmem.Device

module type INSTANCE = sig
  val setup : unit -> unit
  val run : unit -> unit
  val device : unit -> D.t
  val reopen : unit -> unit
  val verify : outcome:[ `Crashed of int | `Completed ] -> unit
end

type result = {
  points : int;
  crashes_injected : int;
  failures : (int * string) list;
}

let points_of_dry_run make =
  let module I = (val make () : INSTANCE) in
  I.setup ();
  let before = D.persist_points (I.device ()) in
  I.run ();
  let pts = D.persist_points (I.device ()) - before in
  I.verify ~outcome:`Completed;
  pts

let chosen_points ~points ~limit =
  match limit with
  | Some l when l > 0 && l < points ->
      (* Sample evenly across the range, always including the edges. *)
      List.sort_uniq compare
        (List.init l (fun i -> 1 + (i * (points - 1) / (max 1 (l - 1)))))
  | _ -> List.init points (fun i -> i + 1)

let sweep ?limit ?(survival_samples = 1) make =
  let points = points_of_dry_run make in
  let failures = ref [] in
  let injected = ref 0 in
  let try_point k sample =
    let module I = (val make () : INSTANCE) in
    I.setup ();
    D.set_crash_countdown (I.device ()) k;
    match I.run () with
    | () ->
        (* The schedule outlived the run (nondeterministic scenarios). *)
        D.set_crash_countdown (I.device ()) 0
    | exception D.Crashed -> begin
        incr injected;
        (* sample a different subset of surviving WPQ lines each time *)
        D.reseed (I.device ()) (0x5EED + (k * 131) + sample);
        I.reopen ();
        match I.verify ~outcome:(`Crashed k) with
        | () -> ()
        | exception e ->
            failures := (k, Printexc.to_string e) :: !failures
      end
    | exception e ->
        failures :=
          (k, Printf.sprintf "scenario failed before crash: %s" (Printexc.to_string e))
          :: !failures
  in
  List.iter
    (fun k ->
      for sample = 1 to max 1 survival_samples do
        try_point k sample
      done)
    (chosen_points ~points ~limit);
  { points; crashes_injected = !injected; failures = List.rev !failures }

let is_clean r = r.failures = []

let pp_result ppf r =
  Format.fprintf ppf "%d persist points, %d crashes injected, %d failures"
    r.points r.crashes_injected
    (List.length r.failures);
  List.iter
    (fun (k, msg) -> Format.fprintf ppf "@.  crash@%d: %s" k msg)
    r.failures
