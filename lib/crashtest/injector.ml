module D = Pmem.Device

module type INSTANCE = sig
  val setup : unit -> unit
  val run : unit -> unit
  val device : unit -> D.t
  val reopen : unit -> unit
  val verify : outcome:[ `Crashed of int | `Completed ] -> unit
end

type result = {
  points : int;
  crashes_injected : int;
  torn_lines : int;
  failures : (int * string) list;
}

let points_of_dry_run make =
  let module I = (val make () : INSTANCE) in
  I.setup ();
  let before = D.persist_points (I.device ()) in
  I.run ();
  let pts = D.persist_points (I.device ()) - before in
  I.verify ~outcome:`Completed;
  pts

let chosen_points ~points ~limit =
  match limit with
  | Some l when l > 0 && l < points ->
      (* Sample evenly across the range, always including the edges. *)
      List.sort_uniq compare
        (List.init l (fun i -> 1 + (i * (points - 1) / (max 1 (l - 1)))))
  | _ -> List.init points (fun i -> i + 1)

let sweep ?limit ?(survival_samples = 1) ?(torn_prob = 0.0) ?(fsck = true) make
    =
  let points = points_of_dry_run make in
  let failures = ref [] in
  let injected = ref 0 in
  let torn = ref 0 in
  let try_point k sample =
    let module I = (val make () : INSTANCE) in
    I.setup ();
    let dev = I.device () in
    if torn_prob > 0.0 then D.set_torn_write_prob dev torn_prob;
    D.set_crash_countdown dev k;
    match I.run () with
    | () ->
        (* The schedule outlived the run (nondeterministic scenarios). *)
        D.set_crash_countdown dev 0
    | exception D.Crashed -> begin
        incr injected;
        (* sample a different subset of surviving WPQ lines each time *)
        D.reseed dev (0x5EED + (k * 131) + sample);
        I.reopen ();
        torn := !torn + (D.stats dev).D.torn_lines;
        (match I.verify ~outcome:(`Crashed k) with
        | () -> ()
        | exception e ->
            failures := (k, Printexc.to_string e) :: !failures);
        (* recovery must leave a structurally consistent image: a pool
           that verifies but fails fsck has corruption waiting to bite *)
        if fsck then begin
          let report = Corundum.Pool_check.check_device (I.device ()) in
          if not (Corundum.Pool_check.ok report) then
            failures :=
              ( k,
                Format.asprintf "post-recovery fsck: %a" Corundum.Pool_check.pp
                  report )
              :: !failures
        end
      end
    | exception e ->
        failures :=
          (k, Printf.sprintf "scenario failed before crash: %s" (Printexc.to_string e))
          :: !failures
  in
  List.iter
    (fun k ->
      for sample = 1 to max 1 survival_samples do
        try_point k sample
      done)
    (chosen_points ~points ~limit);
  {
    points;
    crashes_injected = !injected;
    torn_lines = !torn;
    failures = List.rev !failures;
  }

let is_clean r = r.failures = []

let pp_result ppf r =
  Format.fprintf ppf
    "%d persist points, %d crashes injected, %d torn lines, %d failures"
    r.points r.crashes_injected r.torn_lines
    (List.length r.failures);
  List.iter
    (fun (k, msg) -> Format.fprintf ppf "@.  crash@%d: %s" k msg)
    r.failures
