module P = Corundum.Pool_impl
module Ptype = Corundum.Ptype
module ISet = Set.Make (Int)

type report = {
  live : int;
  reachable : int;
  leaked : int list;
  dangling : int list;
}

let reachable_set pool ~root_ty =
  let root = P.root_off pool in
  if root = 0 then ISet.empty
  else begin
    let visited = ref (ISet.singleton root) in
    (* Breadth-first through the typed reference graph; [visited] guards
       against cycles (weak back-edges). *)
    let queue = Queue.create () in
    List.iter (fun e -> Queue.add e queue) (Ptype.reach root_ty pool root);
    while not (Queue.is_empty queue) do
      let e = Queue.pop queue in
      if not (ISet.mem e.Ptype.block !visited) then begin
        visited := ISet.add e.Ptype.block !visited;
        List.iter (fun e' -> Queue.add e' queue) (e.Ptype.follow pool)
      end
    done;
    !visited
  end

let analyze pool ~root_ty =
  let live =
    List.fold_left
      (fun acc (b : Palloc.Heap_walk.block) -> ISet.add b.off acc)
      ISet.empty
      (Palloc.Heap_walk.live_blocks (P.buddy pool))
  in
  let reachable = reachable_set pool ~root_ty in
  {
    live = ISet.cardinal live;
    reachable = ISet.cardinal reachable;
    leaked = ISet.elements (ISet.diff live reachable);
    dangling = ISet.elements (ISet.diff reachable live);
  }

let is_clean r = r.leaked = [] && r.dangling = []

let pp ppf r =
  Format.fprintf ppf "live=%d reachable=%d leaked=[%s] dangling=[%s]" r.live
    r.reachable
    (String.concat ";" (List.map string_of_int r.leaked))
    (String.concat ";" (List.map string_of_int r.dangling))

let assert_clean pool ~root_ty =
  let r = analyze pool ~root_ty in
  if not (is_clean r) then
    failwith (Format.asprintf "persistent heap not clean: %a" pp r)
