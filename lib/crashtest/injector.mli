(** Exhaustive failure injection.

    A scenario is instantiated fresh for every crash point: [setup] builds
    committed state, [run] executes the transaction(s) under test, and
    [verify] checks invariants after the crash has been recovered.  The
    injector first dry-runs the scenario to count persist points, then
    replays it once per point with a crash scheduled there, power-cycles
    the media, reopens (recovery), and verifies.

    [verify] receives [`Crashed k] or [`Completed]; invariant checks
    should accept {e either} the pre-transaction or the post-transaction
    state — anything else is an atomicity violation. *)

module type INSTANCE = sig
  val setup : unit -> unit
  (** Build the committed prefix state. *)

  val run : unit -> unit
  (** The work under test; may be interrupted by {!Pmem.Device.Crashed}. *)

  val device : unit -> Pmem.Device.t

  val reopen : unit -> unit
  (** Power-cycle and recover. *)

  val verify : outcome:[ `Crashed of int | `Completed ] -> unit
  (** Raise (any exception) to signal a violated invariant. *)
end

type spec = {
  point : int;  (** primary crash: persist-point countdown during [run] *)
  sample : int;  (** survival-subset sample index (seeds the media RNG) *)
  torn_prob : float;
  recovery_point : int option;
      (** crash recovery itself at this persist point of the [reopen]
          that handles the primary crash, then recover from that crash *)
}
(** One fully-determined crash branch.  A failure's spec plus the
    scenario name is a complete deterministic repro. *)

val spec_to_string : spec -> string
(** ["point=N sample=S torn=P [rpoint=M]"] — the repro line format. *)

val spec_of_string : string -> (spec, string) Stdlib.result
(** Parse {!spec_to_string} output.  Unknown [key=value] tokens are
    ignored, so a line may carry extra fields (e.g. [scenario=NAME]). *)

type result = {
  points : int;  (** persist points in the scenario's [run] *)
  crashes_injected : int;
  recovery_crashes : int;
      (** nested crashes injected inside recovery itself *)
  torn_lines : int;  (** cache lines that landed word-torn at the crash *)
  failures : (spec * string) list;  (** failing branch, violation *)
}

val points_of_dry_run : (unit -> (module INSTANCE)) -> int
(** Instantiate the scenario once without a crash and count the persist
    points its [run] executes (also verifies the crash-free outcome). *)

val sweep :
  ?limit:int ->
  ?survival_samples:int ->
  ?torn_prob:float ->
  ?fsck:bool ->
  ?recovery_crashes:bool ->
  (unit -> (module INSTANCE)) ->
  result
(** Run the full sweep.  [limit] caps the number of injected crashes (the
    points are then sampled evenly); default exhausts every point.
    [survival_samples] (default 1) repeats each crash point with different
    write-pending-queue survival subsets — lines flushed but not fenced at
    the failure may or may not have reached media, and each sample
    explores a different outcome.

    [torn_prob] (default 0) additionally tears surviving write-pending
    lines at that probability: each 8-byte word of a torn line lands
    independently old or new, modeling media whose atomic write unit is
    smaller than a cache line.  Recovery must still restore an
    invariant-respecting state — the journal's sealed-entry ordering and
    checksums are exactly what makes that true.

    [recovery_crashes] (default false) additionally crashes the
    {e recovery} of every injected crash at each of {e its} persist
    points, re-runs recovery from the nested crash state, and verifies —
    exercising the restartability recovery claims ("handled by running
    it again").

    After every recovery the image is additionally checked with
    {!Corundum.Pool_check.check_device} (disable with [~fsck:false]): a
    pool that satisfies the scenario's invariants but is structurally
    corrupt is silent corruption waiting to surface, and counts as a
    failure. *)

val replay :
  ?fsck:bool ->
  (unit -> (module INSTANCE)) ->
  spec ->
  (unit, string list) Stdlib.result
(** Re-run exactly one crash branch, with the same seed derivation the
    sweep used; [Error] carries the verification failures. *)

val pp_spec : Format.formatter -> spec -> unit
val pp_result : Format.formatter -> result -> unit
val is_clean : result -> bool
