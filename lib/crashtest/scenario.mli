(** Canned failure-injection scenarios over the typed Corundum API.

    Each call builds a completely fresh pool (its own brand, its own
    simulated device), so the injector can instantiate one per crash
    point.  Every scenario's [verify] asserts {e atomicity} (the observed
    state is exactly a prefix of committed transactions), {e heap
    integrity} (the buddy free lists and allocation table tile the heap),
    and {e leak freedom} (allocator-live = root-reachable).

    These scenarios are shared between the test suite and the
    [crash_sweep] executable. *)

val small_config : Corundum.Pool_impl.config
(** A 1 MiB pool configuration, cheap enough to rebuild per crash point. *)

val counter : ?increments:int -> unit -> (module Injector.INSTANCE)
(** [increments] separate transactions, each bumping a root counter by 1;
    after a crash the counter must equal the number of committed
    transactions. *)

val list_append : ?nodes:int -> unit -> (module Injector.INSTANCE)
(** One transaction appending [nodes] nodes to a persistent linked list;
    after a crash the list holds either just the sentinel or all nodes. *)

val rc_sharing : unit -> (module Injector.INSTANCE)
(** One transaction allocating a [Prc], storing it in two cells (clone);
    after a crash either both cells are empty or both are set with a
    strong count of two. *)

val vec_ops : ?pushes:int -> unit -> (module Injector.INSTANCE)
(** Pushes in one transaction, pops in a second; the vector length must be
    0, [pushes], or [pushes - 2]. *)

val transfer : ?accounts:int -> ?moves:int -> unit -> (module Injector.INSTANCE)
(** Random transfers between persistent accounts, one per transaction; the
    total balance is invariant across any crash. *)

val queue_ops : ?pushes:int -> unit -> (module Injector.INSTANCE)
(** Pushes (forcing ring growth) in one transaction, two pops in a second;
    the queue must be empty, full, or drained — never torn. *)

val logfree_counter : ?increments:int -> unit -> (module Injector.INSTANCE)
(** Increments through [Punsafe.atomic_set] (no logging): 8-byte atomic
    persists mean any prefix count is a valid state even though the
    journal never sees the writes. *)

val pstack : ?pushes:int -> ?pops:int -> unit -> (module Injector.INSTANCE)
(** Checkpointed recoverable-CAS pushes and pops on a {!Corundum.Pstack}:
    after any crash — including crashes inside the stack's own slot
    resolution and torn checkpoint lines — the recovered stack must be a
    prefix of the operation sequence, the detectability verdicts must be
    well-formed, and no node may leak. *)

val map_rotations : ?keys:int -> unit -> (module Injector.INSTANCE)
(** Ascending [Pmap] inserts (forcing AVL rotations at every level) and a
    delete; after any crash the tree's order, balance and size invariants
    must hold on exactly the before/after contents. *)

val btree_ops : ?keys:int -> unit -> (module Injector.INSTANCE)
(** B+tree inserts (forcing splits) and deletes (forcing merges); after
    any crash the tree invariants must hold on exactly the before/middle/
    after contents. *)

val kvstore : ?ops:int -> unit -> (module Injector.INSTANCE)
(** String-keyed hash-map puts (forcing a rehash) in one transaction and a
    delete in a second, over a committed seed working set; after any crash
    the map's chain invariants hold, the size is exactly one of the three
    committed states, and the seed data is intact. *)

val alloc_churn : ?cells:int -> ?rounds:int -> unit -> (module Injector.INSTANCE)
(** Allocator-heavy churn: every transaction frees a cell's previous
    block and allocates its replacement, so each commit carries both a
    deferred drop and a fresh mark — the batched allocation-table
    protocol (drop-area persist, coalesced mark flush, deferred clear
    flush, re-mark on rollback) is crossed at every persist point the
    injector can reach.  After any crash each cell holds either its old
    or its new box, the heap tiles, and nothing leaks. *)

val group_commit :
  ?workers:int -> ?increments:int -> unit -> (module Injector.INSTANCE)
(** [workers] domains sharing one pool, each registered to its own
    journal slot and committing [increments] transactions through the
    cross-transaction epoch combiner ({!Corundum.Pool_impl.set_group_commit}).
    The global crash countdown lands on whichever domain reaches the
    persist point — including the epoch leader dying between the merged
    flush and the group fence with other members riding on it.  After
    recovery each worker's counter must be a prefix of its own
    increments, independent of the other members' fate.  The
    interleaving is nondeterministic; replays whose schedule outlives
    the run are reported as such by the injector, not failed. *)

val all : (string * (unit -> (module Injector.INSTANCE))) list
(** Name/constructor pairs for every scenario above, with defaults. *)
