(** Persistent-heap reachability checking.

    Corundum's design goal {e No-Acyclic-Leaks} is enforced in the paper
    by Rust's ownership system; OCaml's GC cannot provide the same
    deterministic drops, so this library re-establishes the guarantee
    observationally: after any transaction (and after every injected
    crash), every block the allocator believes is live must be reachable
    from the pool's root object through the {!Corundum.Ptype} reference
    graph, and every reference must point at a live block.

    Blocks can legitimately be {e weak-only} reachable (kept alive purely
    by weak counts); they are reported separately because they are not
    leaks. *)

type report = {
  live : int;  (** blocks the allocator considers allocated *)
  reachable : int;  (** blocks reachable from the root *)
  leaked : int list;  (** live but unreachable block offsets *)
  dangling : int list;  (** reachable but not live block offsets *)
}

val analyze : Corundum.Pool_impl.t -> root_ty:('a, 'p) Corundum.Ptype.t -> report
(** Walk from the pool's root object.  The pool must have a root and
    [root_ty] must be the type it was created with. *)

val is_clean : report -> bool
(** No leaks and no dangling references. *)

val pp : Format.formatter -> report -> unit

val assert_clean : Corundum.Pool_impl.t -> root_ty:('a, 'p) Corundum.Ptype.t -> unit
(** Raises [Failure] with a description when the heap is not clean. *)
