open Corundum

let small_config =
  { Pool_impl.size = 1024 * 1024; nslots = 2; slot_size = 32 * 1024 }

let heap_ok pool =
  match Palloc.Heap_walk.check (Pool_impl.buddy pool) with
  | Ok () -> ()
  | Error m -> failwith ("heap integrity violated: " ^ m)

let fail fmt = Printf.ksprintf failwith fmt

(* Common scaffolding: a fresh branded pool with a captured device. *)
module type FRESH = sig
  module P : Pool.S

  val device : unit -> Pmem.Device.t
  val created : unit -> unit
  val reopen : unit -> unit
end

module Fresh () : FRESH = struct
  module P = Pool.Make ()

  let dev = ref None
  let device () = Option.get !dev

  let created () =
    P.create ~config:small_config ();
    dev := Some (Pool_impl.device (P.impl ()))

  let reopen () = P.crash_and_reopen ()
end

(* --- Counter: n transactions, each +1 ------------------------------- *)

let counter ?(increments = 3) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root () = P.root ~ty:Ptype.int ~init:(fun _ -> 0) ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      for _ = 1 to increments do
        P.transaction (fun j -> Pbox.modify (root ()) j succ)
      done

    let verify ~outcome =
      let v = Pbox.get (root ()) in
      (match outcome with
      | `Completed ->
          if v <> increments then fail "counter: expected %d, got %d" increments v
      | `Crashed k ->
          if v < 0 || v > increments then
            fail "counter: crash@%d left torn value %d" k v);
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty:Ptype.int
  end)

(* --- Linked list: one transaction appending [nodes] nodes ------------ *)

let list_append ?(nodes = 3) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    type node = {
      value : int;
      next : ((node, P.brand) Pbox.t option, P.brand) Prefcell.t;
    }

    let rec node_ty_l : (node, P.brand) Ptype.t Lazy.t =
      lazy
        (Ptype.record2 ~name:"crash-node"
           ~inj:(fun value next -> { value; next })
           ~proj:(fun n -> (n.value, n.next))
           Ptype.int
           (Prefcell.ptype (Ptype.option (Pbox.ptype_rec node_ty_l))))

    let node_ty = Lazy.force node_ty_l
    let link_ty = Ptype.option (Pbox.ptype_rec node_ty_l)

    let root () =
      P.root ~ty:node_ty
        ~init:(fun _ -> { value = 0; next = Prefcell.make ~ty:link_ty None })
        ()

    let setup () =
      created ();
      ignore (root ())

    let rec append n v j =
      match Prefcell.borrow n.next with
      | Some succ -> append (Pbox.get succ) v j
      | None ->
          let fresh =
            Pbox.make ~ty:node_ty
              { value = v; next = Prefcell.make ~ty:link_ty None }
              j
          in
          Prefcell.set n.next (Some fresh) j

    let run () =
      P.transaction (fun j ->
          for v = 1 to nodes do
            append (Pbox.get (root ())) v j
          done)

    let rec to_list n =
      n.value
      ::
      (match Prefcell.borrow n.next with
      | None -> []
      | Some b -> to_list (Pbox.get b))

    let verify ~outcome =
      let l = to_list (Pbox.get (root ())) in
      let full = List.init (nodes + 1) Fun.id in
      (match outcome with
      | `Completed -> if l <> full then fail "list: bad final contents"
      | `Crashed k ->
          if l <> [ 0 ] && l <> full then
            fail "list: crash@%d left a partial list of %d nodes" k
              (List.length l - 1));
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty:node_ty
  end)

(* --- Prc sharing: allocate, store, clone, store ----------------------- *)

let rc_sharing () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let slot_ty = Pcell.ptype (Ptype.option (Prc.ptype Ptype.int))
    let root_ty = Ptype.pair slot_ty slot_ty

    let root () =
      P.root ~ty:root_ty
        ~init:(fun _ ->
          ( Pcell.make ~ty:(Ptype.option (Prc.ptype Ptype.int)) None,
            Pcell.make ~ty:(Ptype.option (Prc.ptype Ptype.int)) None ))
        ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      P.transaction (fun j ->
          let c1, c2 = Pbox.get (root ()) in
          let rc = Prc.make ~ty:Ptype.int 42 j in
          Pcell.set c1 (Some rc) j;
          let rc2 = Prc.pclone rc j in
          Pcell.set c2 (Some rc2) j)

    let verify ~outcome =
      let c1, c2 = Pbox.get (root ()) in
      (match (Pcell.get c1, Pcell.get c2, outcome) with
      | Some a, Some b, _ ->
          if not (Prc.equal a b) then fail "rc: cells disagree";
          if Prc.strong_count a <> 2 then
            fail "rc: strong count %d, expected 2" (Prc.strong_count a);
          if Prc.get a <> 42 then fail "rc: payload corrupted"
      | None, None, `Crashed _ -> ()
      | None, None, `Completed -> fail "rc: completed run left cells empty"
      | _, _, `Crashed k -> fail "rc: crash@%d left cells torn" k
      | _, _, `Completed -> fail "rc: completed run left cells torn");
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Pvec pushes and pops -------------------------------------------- *)

let vec_ops ?(pushes = 5) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pvec.ptype Ptype.int

    let root () =
      P.root ~ty:root_ty
        ~init:(fun j -> Pvec.make ~ty:Ptype.int ~capacity:2 j)
        ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      P.transaction (fun j ->
          let v = Pbox.get (root ()) in
          for i = 1 to pushes do
            Pvec.push v (i * 10) j
          done);
      P.transaction (fun j ->
          let v = Pbox.get (root ()) in
          ignore (Pvec.pop v j);
          ignore (Pvec.pop v j))

    let verify ~outcome =
      let v = Pbox.get (root ()) in
      let len = Pvec.length v in
      let ok_lens =
        match outcome with
        | `Completed -> [ pushes - 2 ]
        | `Crashed _ -> [ 0; pushes; pushes - 2 ]
      in
      if not (List.mem len ok_lens) then fail "vec: torn length %d" len;
      for i = 0 to len - 1 do
        if Pvec.get v i <> (i + 1) * 10 then
          fail "vec: corrupted element %d" i
      done;
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Bank transfers: the sum is invariant ----------------------------- *)

let transfer ?(accounts = 4) ?(moves = 4) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let initial = 100
    let root_ty = Ptype.array accounts Ptype.int

    let root () =
      P.root ~ty:root_ty ~init:(fun _ -> Array.make accounts initial) ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      let rng = Random.State.make [| 7 |] in
      for _ = 1 to moves do
        let src = Random.State.int rng accounts in
        let dst = Random.State.int rng accounts in
        let amt = 1 + Random.State.int rng 50 in
        P.transaction (fun j ->
            Pbox.modify (root ()) j (fun a ->
                let a = Array.copy a in
                a.(src) <- a.(src) - amt;
                a.(dst) <- a.(dst) + amt;
                a))
      done

    let verify ~outcome =
      ignore outcome;
      let a = Pbox.get (root ()) in
      let sum = Array.fold_left ( + ) 0 a in
      if sum <> accounts * initial then
        fail "transfer: money not conserved: sum=%d" sum;
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Pqueue pushes and pops ------------------------------------------- *)

let queue_ops ?(pushes = 6) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pqueue.ptype Ptype.int

    let root () =
      P.root ~ty:root_ty
        ~init:(fun j -> Pqueue.make ~ty:Ptype.int ~capacity:2 j)
        ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      P.transaction (fun j ->
          let q = Pbox.get (root ()) in
          for i = 1 to pushes do
            Pqueue.push q (i * 7) j
          done);
      P.transaction (fun j ->
          let q = Pbox.get (root ()) in
          ignore (Pqueue.pop q j);
          ignore (Pqueue.pop q j))

    let verify ~outcome =
      let q = Pbox.get (root ()) in
      let contents = Pqueue.to_list q in
      let full = List.init pushes (fun i -> (i + 1) * 7) in
      let drained = List.filteri (fun i _ -> i >= 2) full in
      let ok =
        match outcome with
        | `Completed -> contents = drained
        | `Crashed _ -> contents = [] || contents = full || contents = drained
      in
      if not ok then fail "queue: torn contents (%d elements)" (List.length contents);
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Log-free atomic counter (Punsafe) --------------------------------- *)

let logfree_counter ?(increments = 4) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pcell.ptype Ptype.int

    let root () =
      P.root ~ty:root_ty ~init:(fun _ -> Pcell.make ~ty:Ptype.int 0) ()

    let setup () =
      created ();
      ignore (root ());
      (* The Punsafe counter deliberately sits outside the logging
         protocol; declare it to the sanitizer so a [--psan] sweep can
         audit everything else without tripping on the escape hatch. *)
      Psan.exempt
        ~dev:(Pmem.Device.id (device ()))
        ~off:(Pool_impl.root_off (P.impl ()))
        ~len:8

    let run () =
      for _ = 1 to increments do
        P.transaction (fun j ->
            let c = Pbox.get (root ()) in
            Punsafe.atomic_set c (Pcell.get c + 1) j)
      done

    let verify ~outcome =
      let v = Pcell.get (Pbox.get (root ())) in
      (match outcome with
      | `Completed ->
          if v <> increments then fail "logfree: expected %d, got %d" increments v
      | `Crashed k ->
          (* 8-byte atomic stores: any prefix count is valid, nothing torn *)
          if v < 0 || v > increments then
            fail "logfree: crash@%d left torn value %d" k v);
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Pstack: checkpointed recoverable-CAS push/pop --------------------- *)

let pstack ?(pushes = 4) ?(pops = 2) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pstack.ptype Ptype.int
    let value i = i * 11

    let root () =
      P.root ~ty:root_ty ~init:(fun j -> Pstack.make ~ty:Ptype.int j) ()

    (* Every stack state a crash may legally expose: each operation is a
       single recoverable CAS, so recovery must land on some prefix of
       the operation sequence — nothing torn, nothing interleaved. *)
    let steps =
      List.init pushes (fun i -> `Push (value (i + 1)))
      @ List.init pops (fun _ -> `Pop)

    let valid_states =
      List.fold_left
        (fun acc op ->
          let cur = List.hd acc in
          (match (op, cur) with
          | `Push v, st -> v :: st
          | `Pop, _ :: rest -> rest
          | `Pop, [] -> [])
          :: acc)
        [ [] ] steps

    let final_state = List.hd valid_states

    let setup () =
      created ();
      ignore (root ())

    let run () =
      let s = Pbox.get (root ()) in
      List.iter
        (fun op ->
          P.transaction (fun j ->
              match op with
              | `Push v -> Pstack.push s v j
              | `Pop -> ignore (Pstack.pop s j)))
        steps

    (* The stack's own detectable recovery runs after the pool's, inside
       the same crash-injection window — a nested recovery crash can land
       between the two, or mid-way through the slot resolution. *)
    let outcomes = ref []

    let reopen () =
      reopen ();
      outcomes := Pstack.recover (Pbox.get (root ()))

    let show l = "[" ^ String.concat ";" (List.map string_of_int l) ^ "]"

    let verify ~outcome =
      let s = Pbox.get (root ()) in
      let l = Pstack.to_list s in
      (match outcome with
      | `Completed ->
          if l <> final_state then
            fail "pstack: expected %s, got %s" (show final_state) (show l)
      | `Crashed k ->
          if not (List.mem l valid_states) then
            fail "pstack: crash@%d left non-prefix state %s" k (show l);
          (* detectability: recovery reports at most one verdict per
             checkpoint slot, oldest first *)
          let seqs = List.map Pstack.seq_of_outcome !outcomes in
          if List.length seqs > 2 then
            fail "pstack: crash@%d resolved %d checkpoints" k (List.length seqs);
          if List.sort compare seqs <> seqs then
            fail "pstack: crash@%d verdicts out of order" k);
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Pmap: AVL insertions forcing rotations ---------------------------- *)

let map_rotations ?(keys = 7) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pmap.ptype Ptype.int

    let root () =
      P.root ~ty:root_ty ~init:(fun j -> Pmap.make ~vty:Ptype.int j) ()

    let setup () =
      created ();
      ignore (root ());
      (* a committed seed tree so the run's rotations rewrite old nodes *)
      P.transaction (fun j ->
          let m = Pbox.get (root ()) in
          List.iter (fun k -> Pmap.add m ~key:(k * 10) k j) [ 1; 2; 3 ])

    let run () =
      (* ascending inserts force left rotations at every level *)
      P.transaction (fun j ->
          let m = Pbox.get (root ()) in
          for k = 4 to 3 + keys do
            Pmap.add m ~key:(k * 10) k j
          done);
      P.transaction (fun j ->
          let m = Pbox.get (root ()) in
          ignore (Pmap.remove m 20 j))

    let verify ~outcome =
      let m = Pbox.get (root ()) in
      (match Pmap.check m with
      | Ok () -> ()
      | Error e -> fail "map: structure broken after crash: %s" e);
      let len = Pmap.length m in
      let ok =
        match outcome with
        | `Completed -> len = 3 + keys - 1
        | `Crashed _ -> len = 3 || len = 3 + keys || len = 3 + keys - 1
      in
      if not ok then fail "map: torn size %d" len;
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Pbtree: splits and merges under injection ------------------------- *)

let btree_ops ?(keys = 10) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pbtree.ptype Ptype.int

    let root () =
      P.root ~ty:root_ty ~init:(fun j -> Pbtree.make ~vty:Ptype.int j) ()

    let setup () =
      created ();
      ignore (root ());
      P.transaction (fun j ->
          let t = Pbox.get (root ()) in
          for k = 1 to 7 do
            Pbtree.add t ~key:k k j
          done)

    let run () =
      P.transaction (fun j ->
          let t = Pbox.get (root ()) in
          for k = 8 to 7 + keys do
            Pbtree.add t ~key:k k j
          done);
      P.transaction (fun j ->
          let t = Pbox.get (root ()) in
          for k = 1 to 5 do
            ignore (Pbtree.remove t k j)
          done)

    let verify ~outcome =
      let t = Pbox.get (root ()) in
      (match Pbtree.check t with
      | Ok () -> ()
      | Error e -> fail "btree: structure broken after crash: %s" e);
      let len = Pbtree.length t in
      let ok =
        match outcome with
        | `Completed -> len = 7 + keys - 5
        | `Crashed _ -> len = 7 || len = 7 + keys || len = 7 + keys - 5
      in
      if not ok then fail "btree: torn size %d" len;
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Kvstore: string-keyed hash map puts and deletes ------------------- *)

let kvstore ?(ops = 5) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let root_ty = Pstrmap.ptype Ptype.int
    let seed_keys = [ "alpha"; "beta"; "gamma" ]

    let root () =
      P.root ~ty:root_ty ~init:(fun j -> Pstrmap.make ~vty:Ptype.int j) ()

    let setup () =
      created ();
      ignore (root ());
      (* a committed working set the run's rehash/deletes must not lose *)
      P.transaction (fun j ->
          let m = Pbox.get (root ()) in
          List.iteri (fun i k -> Pstrmap.add m ~key:k (i + 1) j) seed_keys)

    let run () =
      P.transaction (fun j ->
          let m = Pbox.get (root ()) in
          for k = 1 to ops do
            Pstrmap.add m ~key:(Printf.sprintf "key-%d" k) (k * 100) j
          done);
      P.transaction (fun j ->
          let m = Pbox.get (root ()) in
          if not (Pstrmap.remove m "beta" j) then fail "kvstore: beta missing")

    let verify ~outcome =
      let m = Pbox.get (root ()) in
      (match Pstrmap.check m with
      | Ok () -> ()
      | Error e -> fail "kvstore: structure broken after crash: %s" e);
      let nseed = List.length seed_keys in
      let len = Pstrmap.length m in
      let ok =
        match outcome with
        | `Completed -> len = nseed + ops - 1
        | `Crashed _ ->
            len = nseed || len = nseed + ops || len = nseed + ops - 1
      in
      if not ok then fail "kvstore: torn size %d" len;
      (* atomicity: either no run keys, or all of them with intact values *)
      if len > nseed then
        for k = 1 to ops do
          match Pstrmap.find m (Printf.sprintf "key-%d" k) with
          | Some v when v = k * 100 -> ()
          | Some v -> fail "kvstore: key-%d corrupted to %d" k v
          | None -> fail "kvstore: key-%d lost" k
        done;
      if Pstrmap.find m "alpha" <> Some 1 || Pstrmap.find m "gamma" <> Some 3
      then fail "kvstore: committed seed data lost";
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Allocator churn: every tx frees an old block and allocates a new
   one, driving the batched mark/clear protocol (drop-area persists,
   coalesced mark flush, deferred clear flush) through every crash
   window the injector can reach. ------------------------------------- *)

let alloc_churn ?(cells = 4) ?(rounds = 6) () : (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let box_ty = Pbox.ptype Ptype.int
    let cell_ty = Pcell.ptype (Ptype.option box_ty)
    let root_ty = Ptype.array cells cell_ty

    let root () =
      P.root ~ty:root_ty
        ~init:(fun _ ->
          Array.init cells (fun _ ->
              Pcell.make ~ty:(Ptype.option box_ty) None))
        ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      for i = 1 to rounds do
        P.transaction (fun j ->
            let c = (Pbox.get (root ())).(i mod cells) in
            (* overwriting the cell transfers ownership: the displaced
               box is dropped (deferred free) in the same transaction
               that allocates its replacement, so the commit carries
               both a drop and a fresh mark — the crash-richest
               allocator path *)
            Pcell.set c (Some (Pbox.make ~ty:Ptype.int (i * 1000) j)) j)
      done

    let verify ~outcome =
      ignore outcome;
      (* Per-transaction atomicity: each cell holds either its old box or
         its replacement, never a dangling or half-written one. *)
      Array.iter
        (fun c ->
          match Pcell.get c with
          | None -> ()
          | Some b ->
              let v = Pbox.get b in
              if v < 1000 || v > rounds * 1000 || v mod 1000 <> 0 then
                fail "alloc_churn: torn box value %d" v)
        (Pbox.get (root ()));
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

(* --- Shared-pool group commit: two domains committing through one
   epoch combiner.  The crash countdown is global, so the sweep lands a
   crash at every persist point of the interleaved run — including the
   epoch leader dying between its merged flush and the group fence,
   with other members' transactions riding on that fence.  Recovery
   must roll each unfenced slot back independently.  The interleaving
   (and hence the persist-point count) is nondeterministic; the
   injector tolerates schedules that outlive a replay. ---------------- *)

let group_commit ?(workers = 2) ?(increments = 3) () :
    (module Injector.INSTANCE) =
  (module struct
    include Fresh ()

    let cell_ty = Pcell.ptype Ptype.int
    let root_ty = Ptype.array workers cell_ty

    let root () =
      P.root ~ty:root_ty
        ~init:(fun _ ->
          Array.init workers (fun _ -> Pcell.make ~ty:Ptype.int 0))
        ()

    let setup () =
      created ();
      ignore (root ())

    let run () =
      P.set_group_commit true;
      let worker w () =
        match
          ignore (P.register_domain ());
          let c = (Pbox.get (root ())).(w) in
          for _ = 1 to increments do
            P.transaction (fun j -> Pcell.set c (Pcell.get c + 1) j)
          done
        with
        | () ->
            P.unregister_domain ();
            false
        | exception Pmem.Device.Crashed -> true
        | exception Pool_impl.Pool_closed ->
            (* a crash in a sibling domain invalidates the shared handle;
               observing the closed handle IS observing the crash *)
            true
      in
      let doms = List.init workers (fun w -> Domain.spawn (worker w)) in
      let crashed = List.map Domain.join doms in
      (* A crash in ANY domain is the run's crash: the injector then
         power-cycles and recovery rolls every unfenced slot back. *)
      if List.exists Fun.id crashed then raise Pmem.Device.Crashed

    let verify ~outcome =
      Array.iteri
        (fun w c ->
          let v = Pcell.get c in
          match outcome with
          | `Completed ->
              if v <> increments then
                fail "group_commit: worker %d expected %d, got %d" w
                  increments v
          | `Crashed k ->
              (* per-transaction atomicity, member by member: any prefix
                 of each worker's increments is valid, independent of
                 what happened to the other epoch members *)
              if v < 0 || v > increments then
                fail "group_commit: crash@%d left worker %d torn at %d" k w v)
        (Pbox.get (root ()));
      heap_ok (P.impl ());
      Leak_check.assert_clean (P.impl ()) ~root_ty
  end)

let all =
  [
    ("counter", fun () -> counter ());
    ("list_append", fun () -> list_append ());
    ("rc_sharing", fun () -> rc_sharing ());
    ("vec_ops", fun () -> vec_ops ());
    ("transfer", fun () -> transfer ());
    ("queue_ops", fun () -> queue_ops ());
    ("logfree_counter", fun () -> logfree_counter ());
    ("pstack", fun () -> pstack ());
    ("map_rotations", fun () -> map_rotations ());
    ("btree_ops", fun () -> btree_ops ());
    ("kvstore", fun () -> kvstore ());
    ("alloc_churn", fun () -> alloc_churn ());
    ("group_commit", fun () -> group_commit ());
  ]
