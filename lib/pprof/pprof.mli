(** Offline persist-waste profiler over probe event streams.

    {!Psan} judges a run {e locally} — a flush with nothing to write
    back, two fences in a row.  This module answers the global question
    ROADMAP item 3 asks: how far above the {e provable minimum} persist
    cost does each engine run?  It replays a probe-captured event stream
    ({!Ptelemetry.Probe}) through a shadow dependency analyzer,
    reconstructs the happens-before ordering DAG that crash consistency
    actually requires, computes the minimal flush/fence schedule for the
    trace, and attributes [actual - minimum] per transaction and per
    emission site, classifying every excess persist into a named
    elision opportunity.

    {2 The minimum}

    For each committed transaction the analyzer derives, from the pool
    geometry ({!Ptelemetry.Probe.Pool_layout}) and the store stream,
    the 64-byte lines that must be durable at each of the protocol's
    ordering barriers (the invariants {!Pmodel} checks):

    - {e seal barrier}: journal-region lines (entries, spill regions,
      drop records) must be durable before any data/mark line may be
      written back — one fence, needed only when both groups are
      non-empty (I-ATOMIC: an undo entry must be durable before the
      store it covers can reach media).
    - {e commit barrier}: every line the transaction stored must be
      durable at the commit point — one fence (C-FENCE-AT-COMMIT).
    - {e clears barrier}: post-commit allocation-table clears must be
      durable strictly before the log invalidation — one fence, needed
      only when the transaction applied drops
      (I-CLEARS-BEFORE-INVALIDATE).
    - {e truncate barrier}: the header reset that retires the log —
      one fence when any post-commit line exists (I-QUIESCENT-LOG).

    The minimal flush-call count is the number of maximal runs of
    contiguous dirty lines per barrier group (the device coalesces a
    contiguous range into one call); the minimal fence count is the
    number of barriers with work.  Journal-slot bytes in
    [[slot+8, slot+24)] (the advisory entry/drop counts, which recovery
    never trusts — I-NO-ADVISORY-TRUST) are not required durable at
    all.  Aborted or crashed transactions, overlapping transactions the
    single-subscriber stream cannot attribute, recovery windows
    ({!Ptelemetry.Probe.Exempt_push}) and out-of-transaction persists
    are scored conservatively: minimum = actual, no waste claimed.

    {2 Elision classes}

    - [E1] — fence collapsible across independent lines (includes
      fences that drained nothing, psan's W2).
    - [E2] — flush of a line re-dirtied before its governing fence, or
      with no newly-dirty line at all (psan's W1).
    - [E3] — deferrable advisory update (the journal header's
      entry/drop counts).
    - [E4] — coalescable adjacent-line flushes under one fence.

    Every psan W1/W2 warning maps to an E2/E1 finding; the converse
    does not hold (e.g. the shipped free path carries one E3 flush psan
    cannot see).  Totals ([actual - minimum]) are authoritative;
    findings explain them. *)

(** {1 Capturing} *)

(** Record the probe stream in memory.  Installs itself as {e the}
    probe subscriber (the bus is single-subscriber, so capturing and
    {!Psan} are mutually exclusive — replay the capture into psan
    afterwards with {!replay} to get both). *)
module Capture : sig
  val start : unit -> unit
  (** Install the recorder and clear the buffer. *)

  val cut : unit -> Ptelemetry.Probe.event list
  (** Return the events recorded since the last [start]/[cut] and keep
      recording — used to split one run into per-operation windows. *)

  val stop : unit -> Ptelemetry.Probe.event list
  (** [cut] then uninstall the recorder. *)

  val active : unit -> bool
end

val replay : Ptelemetry.Probe.event list -> unit
(** Re-emit a captured stream through the probe bus, delivering it to
    whatever subscriber is currently installed (e.g. an enabled
    {!Psan}). *)

(** {1 Analysis} *)

type elision = E1 | E2 | E3 | E4

val class_name : elision -> string
val class_doc : elision -> string

type finding = {
  cls : elision;
  kind : [ `Flush | `Fence ];
  dev : int;
  off : int;  (** anchor byte offset (0 for fences) *)
  len : int;
  ns : float;  (** simulated time of the excess persist *)
  tx : int;  (** analyzer-assigned transaction ordinal *)
  site : string;  (** emission site: journal / table / heap / … *)
  count : int;  (** excess persists this finding explains *)
  detail : string;
}

type report = {
  label : string;
  events : int;
  txs : int;  (** committed transactions analyzed against the minimum *)
  unanalyzed : int;  (** aborted/crashed/overlapping: minimum = actual *)
  actual_flushes : int;  (** flush calls inside transactions *)
  actual_fences : int;
  min_flushes : int;  (** minimal schedule for the same transactions *)
  min_fences : int;
  bg_flushes : int;  (** out-of-transaction persists (min = actual) *)
  bg_fences : int;
  recovery_flushes : int;  (** persists inside exempt windows *)
  recovery_fences : int;
  findings : finding list;  (** oldest first *)
  recovery_phases : (string * float) list;
      (** summed per-phase recovery durations from
          {!Ptelemetry.Probe.Recovery_phase} events, ns *)
}

val analyze :
  ?label:string ->
  ?prelude:Ptelemetry.Probe.event list ->
  Ptelemetry.Probe.event list ->
  report
(** Analyze a captured stream.  [prelude] events (pool creation,
    earlier windows) evolve the shadow state — geometry, line states,
    spill regions — but are not counted or attributed. *)

val waste_flushes : report -> int
val waste_fences : report -> int

val waste_by_class : report -> (elision * int * int) list
(** [(class, flush count, fence count)] summed over findings. *)

val waste_by_site : report -> (string * int * int) list

(** {1 Rendering} *)

val report_text : report -> string
val report_json : report -> Ptelemetry.Json.t
(** [{"schema": "corundum-pprof-v1", …}]. *)

val diff_text : report -> report -> string
(** Waste deltas between two reports of the same shape (A is the
    baseline). *)

(** {1 Persistence} *)

val events_to_json : Ptelemetry.Probe.event list -> Ptelemetry.Json.t
(** [{"schema": "corundum-probe-v1", "events": […]}]. *)

val events_of_json : Ptelemetry.Json.t -> Ptelemetry.Probe.event list
(** Raises [Failure] on an unknown schema or a malformed event. *)

val save_events : string -> Ptelemetry.Probe.event list -> unit
val load_events : string -> Ptelemetry.Probe.event list

(** {1 Chrome-trace annotation} *)

val emit_overlay : report -> unit
(** Emit one [cat:"pprof"] instant per finding into the installed
    {!Ptelemetry.Trace} sink, at the finding's simulated timestamp —
    overlaying waste on an existing trace of the same run. *)

val emit_probe_events : Ptelemetry.Probe.event list -> unit
(** Emit [cat:"probe"] instants for the persist-relevant events of a
    capture (flush/fence/tx/commit-point) into the installed trace
    sink, so a saved capture can be rendered as a Chrome trace without
    re-running the workload. *)
