module Pr = Ptelemetry.Probe
module Tr = Ptelemetry.Trace
module Json = Ptelemetry.Json

let line = 64

(* {1 Capture} *)

module Capture = struct
  let buf : Pr.event list ref = ref [] (* newest first *)
  let running = ref false

  let start () =
    buf := [];
    running := true;
    Pr.install (fun e -> buf := e :: !buf)

  let cut () =
    let evs = List.rev !buf in
    buf := [];
    evs

  let stop () =
    let evs = cut () in
    if !running then begin
      running := false;
      Pr.uninstall ()
    end;
    evs

  let active () = !running
end

let replay events = List.iter Pr.emit events

(* {1 Elision classes} *)

type elision = E1 | E2 | E3 | E4

let class_name = function E1 -> "E1" | E2 -> "E2" | E3 -> "E3" | E4 -> "E4"

let class_doc = function
  | E1 -> "fence collapsible across independent lines"
  | E2 -> "flush of a line re-dirtied before its governing fence"
  | E3 -> "deferrable advisory update"
  | E4 -> "coalescable adjacent-line flush"

type finding = {
  cls : elision;
  kind : [ `Flush | `Fence ];
  dev : int;
  off : int;
  len : int;
  ns : float;
  tx : int;
  site : string;
  count : int;
  detail : string;
}

type report = {
  label : string;
  events : int;
  txs : int;
  unanalyzed : int;
  actual_flushes : int;
  actual_fences : int;
  min_flushes : int;
  min_fences : int;
  bg_flushes : int;
  bg_fences : int;
  recovery_flushes : int;
  recovery_fences : int;
  findings : finding list;
  recovery_phases : (string * float) list;
}

(* {1 Shadow analyzer}

   The shadow machine mirrors the device's persist semantics per
   64-byte line: a store dirties a line, a flush moves it to the
   write-pending queue, a fence drains the queue.  On top of it, each
   open transaction accumulates the line sets the protocol's ordering
   barriers require durable, split by region (journal/spill vs
   data/mark vs post-commit clears vs header reset), from which the
   minimal schedule falls out as contiguous-run counts per barrier. *)

type lstate = Dirty | Wpq | Wpq_dirty

type geom = {
  journal_base : int;
  slot_size : int;
  table_base : int;
  heap_base : int;
  cow_base : int;
  cow_len : int;
}

type region = Header | Cow | Journal | Journal_adv | Table | Heap | Spill

let site_of_region = function
  | Header -> "header"
  | Cow -> "cow-root"
  | Journal -> "journal"
  | Journal_adv -> "journal-advisory"
  | Table -> "table"
  | Heap -> "heap"
  | Spill -> "spill"

(* One flush call awaiting its governing fence (for E2-superseded and
   E4-coalescing attribution). *)
type frec = { fr_off : int; fr_len : int; fr_ns : float; fr_newly : int list }

type txstate = {
  tx_id : int;
  mutable commit_seen : bool;
  mutable poisoned : bool;
  mutable is_cow : bool; (* touched the CoW root-cell region *)
  pre_log : (int, unit) Hashtbl.t; (* journal/spill lines, required *)
  pre_other : (int, unit) Hashtbl.t; (* data/mark/header lines, required *)
  pre_adv : (int, unit) Hashtbl.t; (* advisory-only candidates *)
  pre_cow : (int, unit) Hashtbl.t; (* intent lines sealed under their own fence *)
  post_journal : (int, unit) Hashtbl.t; (* header-reset lines, required *)
  post_table : (int, unit) Hashtbl.t; (* table-clear lines, required *)
  post_adv : (int, unit) Hashtbl.t;
  post_cow : (int, unit) Hashtbl.t; (* the swap word, flushed unfenced *)
  mutable a_fl : int;
  mutable a_fe : int;
  mutable classified_fl : int; (* flush waste already explained *)
  mutable empty_fences : int; (* fence waste already explained *)
  mutable tfind : finding list; (* newest first; dropped if unanalyzed *)
  mutable last_ns : float;
}

type dstate = {
  ddev : int;
  mutable geom : geom option;
  lines : (int, lstate) Hashtbl.t;
  mutable wpq : int; (* lines currently pending (Wpq or Wpq_dirty) *)
  spills : (int, int) Hashtbl.t; (* live spill regions: off -> len *)
  mutable pending : frec list; (* since the last fence, newest first *)
  mutable tx : txstate option;
  mutable tx_overlap : int; (* extra Tx_begins the stream can't attribute *)
  mutable exempt : int;
}

type acc = {
  mutable n_txs : int;
  mutable n_unanalyzed : int;
  mutable t_a_fl : int;
  mutable t_a_fe : int;
  mutable t_m_fl : int;
  mutable t_m_fe : int;
  mutable t_bg_fl : int;
  mutable t_bg_fe : int;
  mutable t_rv_fl : int;
  mutable t_rv_fe : int;
  mutable all_findings : finding list; (* newest first *)
  mutable next_tx : int;
  mutable phases : (string * float) list;
}

let runs_of_sorted = function
  | [] -> 0
  | l0 :: rest ->
      fst
        (List.fold_left
           (fun (r, last) l -> if l <= last + 1 then (r, l) else (r + 1, l))
           (1, l0) rest)

let runs_of_tbl tbl =
  runs_of_sorted
    (List.sort_uniq compare (Hashtbl.fold (fun l () a -> l :: a) tbl []))

let runs_of_list ls = runs_of_sorted (List.sort_uniq compare ls)

let classify g d off len =
  if off < g.journal_base then
    if g.cow_len > 0 && off >= g.cow_base && off < g.cow_base + g.cow_len then
      Cow
    else Header
  else if off < g.table_base then begin
    let rel = (off - g.journal_base) mod g.slot_size in
    (* The slot header line mixes advisory words (entry/drop counts at
       +8/+16) with required ones (phase, spill link, epoch), so
       advisory status is byte-range, not line, granular. *)
    if rel >= 8 && rel + len <= 24 then Journal_adv else Journal
  end
  else if off < g.heap_base then Table
  else if
    Hashtbl.fold
      (fun o l acc -> acc || (off >= o && off < o + l))
      d.spills false
  then Spill
  else Heap

let fresh_tx id =
  {
    tx_id = id;
    commit_seen = false;
    poisoned = false;
    is_cow = false;
    pre_log = Hashtbl.create 16;
    pre_other = Hashtbl.create 16;
    pre_adv = Hashtbl.create 4;
    pre_cow = Hashtbl.create 4;
    post_journal = Hashtbl.create 8;
    post_table = Hashtbl.create 8;
    post_adv = Hashtbl.create 4;
    post_cow = Hashtbl.create 4;
    a_fl = 0;
    a_fe = 0;
    classified_fl = 0;
    empty_fences = 0;
    tfind = [];
    last_ns = 0.0;
  }

let analyze ?(label = "trace") ?(prelude = []) events =
  let devs : (int, dstate) Hashtbl.t = Hashtbl.create 4 in
  let dstate dev =
    match Hashtbl.find_opt devs dev with
    | Some d -> d
    | None ->
        let d =
          {
            ddev = dev;
            geom = None;
            lines = Hashtbl.create 256;
            wpq = 0;
            spills = Hashtbl.create 4;
            pending = [];
            tx = None;
            tx_overlap = 0;
            exempt = 0;
          }
        in
        Hashtbl.add devs dev d;
        d
  in
  let acc =
    {
      n_txs = 0;
      n_unanalyzed = 0;
      t_a_fl = 0;
      t_a_fe = 0;
      t_m_fl = 0;
      t_m_fe = 0;
      t_bg_fl = 0;
      t_bg_fe = 0;
      t_rv_fl = 0;
      t_rv_fe = 0;
      all_findings = [];
      next_tx = 0;
      phases = [];
    }
  in
  let live = ref false in
  let on_store d off len =
    for l = off / line to (off + len - 1) / line do
      match Hashtbl.find_opt d.lines l with
      | Some Wpq -> Hashtbl.replace d.lines l Wpq_dirty
      | Some (Dirty | Wpq_dirty) -> ()
      | None -> Hashtbl.replace d.lines l Dirty
    done;
    if d.exempt = 0 then
      match d.tx with
      | Some tx when not tx.poisoned -> (
          match d.geom with
          | None -> tx.poisoned <- true
          | Some g ->
              let first = off / line and last = (off + len - 1) / line in
              let add tbl =
                for l = first to last do
                  Hashtbl.replace tbl l ()
                done
              in
              if not tx.commit_seen then
                match classify g d off len with
                | Journal | Spill -> add tx.pre_log
                | Journal_adv -> add tx.pre_adv
                | Cow ->
                    tx.is_cow <- true;
                    add tx.pre_cow
                | Table | Heap | Header -> add tx.pre_other
              else
                match classify g d off len with
                | Table -> add tx.post_table
                | Journal_adv -> add tx.post_adv
                | Cow ->
                    tx.is_cow <- true;
                    add tx.post_cow
                | Journal | Spill | Header | Heap -> add tx.post_journal)
      | _ -> ()
  in
  let on_flush d off len ns =
    let newly = ref [] in
    for l = (off + len - 1) / line downto off / line do
      match Hashtbl.find_opt d.lines l with
      | Some Dirty ->
          Hashtbl.replace d.lines l Wpq;
          d.wpq <- d.wpq + 1;
          newly := l :: !newly
      | Some Wpq_dirty ->
          Hashtbl.replace d.lines l Wpq;
          newly := l :: !newly
      | Some Wpq | None -> ()
    done;
    let newly = !newly in
    if !live then begin
      if d.exempt > 0 then acc.t_rv_fl <- acc.t_rv_fl + 1
      else
        match d.tx with
        | None -> acc.t_bg_fl <- acc.t_bg_fl + 1
        | Some tx ->
            tx.a_fl <- tx.a_fl + 1;
            tx.last_ns <- ns;
            if not tx.poisoned then begin
              match d.geom with
              | None -> tx.poisoned <- true
              | Some g ->
                  let req l =
                    if tx.commit_seen then
                      Hashtbl.mem tx.post_table l
                      || Hashtbl.mem tx.post_journal l
                      || Hashtbl.mem tx.post_cow l
                    else
                      Hashtbl.mem tx.pre_log l || Hashtbl.mem tx.pre_other l
                      || Hashtbl.mem tx.pre_cow l
                  in
                  let adv l =
                    if tx.commit_seen then Hashtbl.mem tx.post_adv l
                    else Hashtbl.mem tx.pre_adv l
                  in
                  let site = site_of_region (classify g d off len) in
                  let mk cls count detail =
                    tx.tfind <-
                      {
                        cls;
                        kind = `Flush;
                        dev = d.ddev;
                        off;
                        len;
                        ns;
                        tx = tx.tx_id;
                        site;
                        count;
                        detail;
                      }
                      :: tx.tfind
                  in
                  if newly = [] then begin
                    tx.classified_fl <- tx.classified_fl + 1;
                    mk E2 1 "write-back of a range with no newly-dirty line"
                  end
                  else if List.for_all (fun l -> adv l && not (req l)) newly
                  then begin
                    tx.classified_fl <- tx.classified_fl + 1;
                    mk E3 1
                      "advisory bytes only (never trusted by recovery); \
                       deferrable"
                  end
                  else
                    d.pending <-
                      { fr_off = off; fr_len = len; fr_ns = ns; fr_newly = newly }
                      :: d.pending
            end
    end
  in
  let on_fence d ns =
    let empty = d.wpq = 0 in
    (if !live then
       if d.exempt > 0 then acc.t_rv_fe <- acc.t_rv_fe + 1
       else
         match d.tx with
         | None -> acc.t_bg_fe <- acc.t_bg_fe + 1
         | Some tx ->
             tx.a_fe <- tx.a_fe + 1;
             tx.last_ns <- ns;
             if not tx.poisoned then begin
               let site_of fr =
                 match d.geom with
                 | Some g -> site_of_region (classify g d fr.fr_off fr.fr_len)
                 | None -> "unknown"
               in
               let pend = List.rev d.pending in
               let superseded, effective =
                 List.partition
                   (fun fr ->
                     fr.fr_newly <> []
                     && List.for_all
                          (fun l ->
                            Hashtbl.find_opt d.lines l = Some Wpq_dirty)
                          fr.fr_newly)
                   pend
               in
               List.iter
                 (fun fr ->
                   tx.classified_fl <- tx.classified_fl + 1;
                   tx.tfind <-
                     {
                       cls = E2;
                       kind = `Flush;
                       dev = d.ddev;
                       off = fr.fr_off;
                       len = fr.fr_len;
                       ns = fr.fr_ns;
                       tx = tx.tx_id;
                       site = site_of fr;
                       count = 1;
                       detail =
                         "every line written back was re-dirtied before the \
                          governing fence";
                     }
                     :: tx.tfind)
                 superseded;
               let k = List.length effective in
               (if k > 1 then
                  let r =
                    runs_of_list
                      (List.concat_map (fun fr -> fr.fr_newly) effective)
                  in
                  if k > r then begin
                    tx.classified_fl <- tx.classified_fl + (k - r);
                    tx.tfind <-
                      {
                        cls = E4;
                        kind = `Flush;
                        dev = d.ddev;
                        off =
                          (match effective with
                          | fr :: _ -> fr.fr_off
                          | [] -> 0);
                        len = 0;
                        ns;
                        tx = tx.tx_id;
                        site = "fence-group";
                        count = k - r;
                        detail =
                          Printf.sprintf
                            "%d flush calls cover %d contiguous run(s) under \
                             this fence"
                            k r;
                      }
                      :: tx.tfind
                  end);
               if empty then begin
                 tx.empty_fences <- tx.empty_fences + 1;
                 tx.tfind <-
                   {
                     cls = E1;
                     kind = `Fence;
                     dev = d.ddev;
                     off = 0;
                     len = 0;
                     ns;
                     tx = tx.tx_id;
                     site = "fence";
                     count = 1;
                     detail = "fence drained nothing";
                   }
                   :: tx.tfind
               end
             end);
    d.pending <- [];
    let entries = Hashtbl.fold (fun l st a -> (l, st) :: a) d.lines [] in
    List.iter
      (fun (l, st) ->
        match st with
        | Wpq -> Hashtbl.remove d.lines l
        | Wpq_dirty -> Hashtbl.replace d.lines l Dirty
        | Dirty -> ())
      entries;
    d.wpq <- 0
  in
  let finish_tx d tx ~committed =
    d.tx <- None;
    if !live then begin
      let a_fl = tx.a_fl and a_fe = tx.a_fe in
      let analyzed =
        committed && not tx.poisoned
        && (tx.commit_seen || (a_fl = 0 && a_fe = 0))
      in
      acc.t_a_fl <- acc.t_a_fl + a_fl;
      acc.t_a_fe <- acc.t_a_fe + a_fe;
      if analyzed then begin
        acc.n_txs <- acc.n_txs + 1;
        let g1 = runs_of_tbl tx.pre_log and g2 = runs_of_tbl tx.pre_other in
        let g3 = runs_of_tbl tx.post_table
        and g4 = runs_of_tbl tx.post_journal in
        let c1 = runs_of_tbl tx.pre_cow and c4 = runs_of_tbl tx.post_cow in
        let min_fl, min_fe =
          if tx.is_cow then begin
            (* CoW fence floor: the intent seal (if any) fences alone;
               one commit fence orders every pre-swap line before the
               swap word; the swap word and any publish words are
               flushed unfenced (buffered durability); retire clears
               need one fence ordering them after the swap. *)
            let seal = if c1 > 0 then 1 else 0 in
            let commitf = if g1 + g2 > 0 then 1 else 0 in
            let retire = if g3 > 0 then 1 else 0 in
            (c1 + g1 + g2 + g3 + g4 + c4, seal + commitf + retire)
          end
          else begin
            let seal = if g1 > 0 && g2 > 0 then 1 else 0 in
            let commitf = if g1 > 0 || g2 > 0 then 1 else 0 in
            let clears = if g3 > 0 && g4 > 0 then 1 else 0 in
            let trunc = if g3 > 0 || g4 > 0 then 1 else 0 in
            (g1 + g2 + g3 + g4, seal + commitf + clears + trunc)
          end
        in
        (* A buggy (flush/fence-eliding) trace can undershoot the
           minimum; waste is never negative. *)
        let m_fl = min min_fl a_fl in
        let m_fe = min min_fe a_fe in
        acc.t_m_fl <- acc.t_m_fl + m_fl;
        acc.t_m_fe <- acc.t_m_fe + m_fe;
        let rem_fl = a_fl - m_fl - tx.classified_fl in
        if rem_fl > 0 then
          tx.tfind <-
            {
              cls = E1;
              kind = `Flush;
              dev = d.ddev;
              off = 0;
              len = 0;
              ns = tx.last_ns;
              tx = tx.tx_id;
              site = "journal";
              count = rem_fl;
              detail = "line(s) re-flushed under a collapsible fence";
            }
            :: tx.tfind;
        let rem_fe = a_fe - m_fe - tx.empty_fences in
        if rem_fe > 0 then
          tx.tfind <-
            {
              cls = E1;
              kind = `Fence;
              dev = d.ddev;
              off = 0;
              len = 0;
              ns = tx.last_ns;
              tx = tx.tx_id;
              site = "fence";
              count = rem_fe;
              detail =
                "per-entry seal fences collapsible into one (independent \
                 lines)";
            }
            :: tx.tfind;
        acc.all_findings <- tx.tfind @ acc.all_findings
      end
      else begin
        acc.n_unanalyzed <- acc.n_unanalyzed + 1;
        acc.t_m_fl <- acc.t_m_fl + a_fl;
        acc.t_m_fe <- acc.t_m_fe + a_fe
      end
    end
  in
  let on_event ev =
    match ev with
    | Pr.Store { dev; off; len; ns = _ } -> on_store (dstate dev) off len
    | Pr.Flush { dev; off; len; ns } -> on_flush (dstate dev) off len ns
    | Pr.Fence { dev; ns } -> on_fence (dstate dev) ns
    | Pr.Power_cycle { dev } ->
        let d = dstate dev in
        Hashtbl.reset d.lines;
        d.wpq <- 0;
        d.pending <- []
    | Pr.Pool_layout
        { dev; journal_base; slot_size; nslots = _; table_base; heap_base;
          heap_len = _; cow_base; cow_len } ->
        (dstate dev).geom <-
          Some { journal_base; slot_size; table_base; heap_base; cow_base; cow_len }
    | Pr.Tx_begin { dev; ns = _ } -> (
        let d = dstate dev in
        match d.tx with
        | None -> d.tx <- Some (fresh_tx (acc.next_tx <- acc.next_tx + 1; acc.next_tx))
        | Some tx ->
            (* Two transactions on one device: the stream carries no
               domain id, so neither can be attributed.  Poison. *)
            tx.poisoned <- true;
            d.tx_overlap <- d.tx_overlap + 1)
    | Pr.Tx_end { dev; outcome; ns = _ } -> (
        let d = dstate dev in
        if d.tx_overlap > 0 then d.tx_overlap <- d.tx_overlap - 1
        else
          match d.tx with
          | Some tx -> finish_tx d tx ~committed:(outcome = Pr.Commit)
          | None -> ())
    | Pr.Commit_point { dev; ns = _ } -> (
        match (dstate dev).tx with
        | Some tx -> tx.commit_seen <- true
        | None -> ())
    | Pr.Region_reserve { dev; off; len } ->
        Hashtbl.replace (dstate dev).spills off len
    | Pr.Region_release { dev; off } -> Hashtbl.remove (dstate dev).spills off
    | Pr.Exempt_push { dev } ->
        let d = dstate dev in
        d.exempt <- d.exempt + 1
    | Pr.Exempt_pop { dev } ->
        let d = dstate dev in
        d.exempt <- max 0 (d.exempt - 1)
    | Pr.Recovery_phase { dev = _; phase; ns = _; dur_ns } ->
        if !live then
          acc.phases <-
            (match List.assoc_opt phase acc.phases with
            | Some prev ->
                (phase, prev +. dur_ns) :: List.remove_assoc phase acc.phases
            | None -> acc.phases @ [ (phase, dur_ns) ])
    | Pr.Pool_attach _ | Pr.Log _ | Pr.Alloc _ | Pr.Journal_truncate _
    | Pr.Drop_apply _ | Pr.Cow_shadow _ | Pr.Cow_retire _ ->
        ()
  in
  List.iter on_event prelude;
  (* A transaction spanning the prelude boundary has uncounted persists;
     score it conservatively. *)
  Hashtbl.iter
    (fun _ d -> match d.tx with Some tx -> tx.poisoned <- true | None -> ())
    devs;
  live := true;
  List.iter on_event events;
  Hashtbl.iter
    (fun _ d ->
      match d.tx with Some tx -> finish_tx d tx ~committed:false | None -> ())
    devs;
  {
    label;
    events = List.length events;
    txs = acc.n_txs;
    unanalyzed = acc.n_unanalyzed;
    actual_flushes = acc.t_a_fl;
    actual_fences = acc.t_a_fe;
    min_flushes = acc.t_m_fl;
    min_fences = acc.t_m_fe;
    bg_flushes = acc.t_bg_fl;
    bg_fences = acc.t_bg_fe;
    recovery_flushes = acc.t_rv_fl;
    recovery_fences = acc.t_rv_fe;
    findings = List.rev acc.all_findings;
    recovery_phases = acc.phases;
  }

let waste_flushes r = r.actual_flushes - r.min_flushes
let waste_fences r = r.actual_fences - r.min_fences

let sum_by key r =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun f ->
      let k = key f in
      let fl, fe =
        match Hashtbl.find_opt tbl k with
        | Some v -> v
        | None ->
            order := k :: !order;
            (0, 0)
      in
      let fl, fe =
        match f.kind with
        | `Flush -> (fl + f.count, fe)
        | `Fence -> (fl, fe + f.count)
      in
      Hashtbl.replace tbl k (fl, fe))
    r.findings;
  List.rev_map (fun k -> let fl, fe = Hashtbl.find tbl k in (k, fl, fe)) !order

let waste_by_class r = sum_by (fun f -> f.cls) r
let waste_by_site r = sum_by (fun f -> f.site) r

(* {1 Rendering} *)

let kind_name = function `Flush -> "flush" | `Fence -> "fence"

let report_text r =
  let b = Buffer.create 1024 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  pf "pprof report: %s\n" r.label;
  pf "  events=%d txs=%d unanalyzed=%d\n" r.events r.txs r.unanalyzed;
  pf "  flushes: actual=%d minimum=%d waste=%d\n" r.actual_flushes
    r.min_flushes (waste_flushes r);
  pf "  fences:  actual=%d minimum=%d waste=%d\n" r.actual_fences r.min_fences
    (waste_fences r);
  if r.bg_flushes + r.bg_fences > 0 then
    pf "  out-of-tx (min=actual): flushes=%d fences=%d\n" r.bg_flushes
      r.bg_fences;
  if r.recovery_flushes + r.recovery_fences > 0 then
    pf "  recovery (min=actual): flushes=%d fences=%d\n" r.recovery_flushes
      r.recovery_fences;
  (match waste_by_class r with
  | [] -> ()
  | classes ->
      pf "  waste by elision class:\n";
      List.iter
        (fun (cls, fl, fe) ->
          pf "    %s (%s): flushes=%d fences=%d\n" (class_name cls)
            (class_doc cls) fl fe)
        classes);
  (match r.recovery_phases with
  | [] -> ()
  | phases ->
      pf "  recovery phases (ns):";
      List.iter (fun (name, ns) -> pf " %s=%.0f" name ns) phases;
      pf "\n");
  let shown = ref 0 in
  List.iter
    (fun f ->
      if !shown < 40 then begin
        incr shown;
        pf "  [%s] %s dev=%d off=%d len=%d tx=%d site=%s x%d — %s\n"
          (class_name f.cls) (kind_name f.kind) f.dev f.off f.len f.tx f.site
          f.count f.detail
      end)
    r.findings;
  let total = List.length r.findings in
  if total > !shown then pf "  … %d more finding(s)\n" (total - !shown);
  Buffer.contents b

let num i = Json.Num (float_of_int i)

let finding_json f =
  Json.Obj
    [
      ("class", Json.Str (class_name f.cls));
      ("kind", Json.Str (kind_name f.kind));
      ("dev", num f.dev);
      ("off", num f.off);
      ("len", num f.len);
      ("ns", Json.Num f.ns);
      ("tx", num f.tx);
      ("site", Json.Str f.site);
      ("count", num f.count);
      ("detail", Json.Str f.detail);
    ]

let report_json r =
  Json.Obj
    [
      ("schema", Json.Str "corundum-pprof-v1");
      ("label", Json.Str r.label);
      ("events", num r.events);
      ("txs", num r.txs);
      ("unanalyzed", num r.unanalyzed);
      ( "flushes",
        Json.Obj
          [
            ("actual", num r.actual_flushes);
            ("min", num r.min_flushes);
            ("waste", num (waste_flushes r));
          ] );
      ( "fences",
        Json.Obj
          [
            ("actual", num r.actual_fences);
            ("min", num r.min_fences);
            ("waste", num (waste_fences r));
          ] );
      ( "background",
        Json.Obj [ ("flushes", num r.bg_flushes); ("fences", num r.bg_fences) ]
      );
      ( "recovery",
        Json.Obj
          [
            ("flushes", num r.recovery_flushes);
            ("fences", num r.recovery_fences);
            ( "phases",
              Json.Obj
                (List.map
                   (fun (name, ns) -> (name, Json.Num ns))
                   r.recovery_phases) );
          ] );
      ( "by_class",
        Json.Obj
          (List.map
             (fun (cls, fl, fe) ->
               ( class_name cls,
                 Json.Obj [ ("flushes", num fl); ("fences", num fe) ] ))
             (waste_by_class r)) );
      ("findings", Json.List (List.map finding_json r.findings));
    ]

let diff_text a b =
  let buf = Buffer.create 256 in
  let pf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pf "pprof diff: %s -> %s\n" a.label b.label;
  let row name va vb =
    pf "  %-16s %8d -> %8d  (%+d)\n" name va vb (vb - va)
  in
  row "txs" a.txs b.txs;
  row "actual flushes" a.actual_flushes b.actual_flushes;
  row "actual fences" a.actual_fences b.actual_fences;
  row "min flushes" a.min_flushes b.min_flushes;
  row "min fences" a.min_fences b.min_fences;
  row "waste flushes" (waste_flushes a) (waste_flushes b);
  row "waste fences" (waste_fences a) (waste_fences b);
  Buffer.contents buf

(* {1 Serialization} *)

let schema = "corundum-probe-v1"

let outcome_name = function
  | Pr.Commit -> "commit"
  | Pr.Abort -> "abort"
  | Pr.Crash -> "crash"

let outcome_of_name = function
  | "commit" -> Pr.Commit
  | "abort" -> Pr.Abort
  | "crash" -> Pr.Crash
  | s -> failwith ("Pprof: unknown tx outcome " ^ s)

let event_to_json ev =
  let i n v = (n, num v) in
  let f n v = (n, Json.Num v) in
  let t name fields = Json.Obj (("t", Json.Str name) :: fields) in
  match ev with
  | Pr.Store { dev; off; len; ns } ->
      t "store" [ i "dev" dev; i "off" off; i "len" len; f "ns" ns ]
  | Pr.Flush { dev; off; len; ns } ->
      t "flush" [ i "dev" dev; i "off" off; i "len" len; f "ns" ns ]
  | Pr.Fence { dev; ns } -> t "fence" [ i "dev" dev; f "ns" ns ]
  | Pr.Power_cycle { dev } -> t "power_cycle" [ i "dev" dev ]
  | Pr.Pool_attach { dev; heap_base; heap_len } ->
      t "pool_attach" [ i "dev" dev; i "heap_base" heap_base; i "heap_len" heap_len ]
  | Pr.Tx_begin { dev; ns } -> t "tx_begin" [ i "dev" dev; f "ns" ns ]
  | Pr.Tx_end { dev; outcome; ns } ->
      t "tx_end"
        [ i "dev" dev; ("outcome", Json.Str (outcome_name outcome)); f "ns" ns ]
  | Pr.Log { dev; off; len } -> t "log" [ i "dev" dev; i "off" off; i "len" len ]
  | Pr.Alloc { dev; off; len } ->
      t "alloc" [ i "dev" dev; i "off" off; i "len" len ]
  | Pr.Commit_point { dev; ns } -> t "commit_point" [ i "dev" dev; f "ns" ns ]
  | Pr.Region_reserve { dev; off; len } ->
      t "region_reserve" [ i "dev" dev; i "off" off; i "len" len ]
  | Pr.Region_release { dev; off } ->
      t "region_release" [ i "dev" dev; i "off" off ]
  | Pr.Exempt_push { dev } -> t "exempt_push" [ i "dev" dev ]
  | Pr.Exempt_pop { dev } -> t "exempt_pop" [ i "dev" dev ]
  | Pr.Pool_layout
      { dev; journal_base; slot_size; nslots; table_base; heap_base; heap_len;
        cow_base; cow_len } ->
      t "pool_layout"
        [
          i "dev" dev;
          i "journal_base" journal_base;
          i "slot_size" slot_size;
          i "nslots" nslots;
          i "table_base" table_base;
          i "heap_base" heap_base;
          i "heap_len" heap_len;
          i "cow_base" cow_base;
          i "cow_len" cow_len;
        ]
  | Pr.Journal_truncate { dev; slot_base; epoch } ->
      t "journal_truncate" [ i "dev" dev; i "slot_base" slot_base; i "epoch" epoch ]
  | Pr.Drop_apply { dev; off } -> t "drop_apply" [ i "dev" dev; i "off" off ]
  | Pr.Recovery_phase { dev; phase; ns; dur_ns } ->
      t "recovery_phase"
        [ i "dev" dev; ("phase", Json.Str phase); f "ns" ns; f "dur_ns" dur_ns ]
  | Pr.Cow_shadow { dev; off; len } ->
      t "cow_shadow" [ i "dev" dev; i "off" off; i "len" len ]
  | Pr.Cow_retire { dev; off; len } ->
      t "cow_retire" [ i "dev" dev; i "off" off; i "len" len ]

let events_to_json events =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("events", Json.List (List.map event_to_json events));
    ]

let event_of_json j =
  let geti n =
    match Json.mem n j with
    | Some (Json.Num v) -> int_of_float v
    | _ -> failwith ("Pprof: probe event missing field " ^ n)
  in
  let getf n =
    match Json.mem n j with
    | Some (Json.Num v) -> v
    | _ -> failwith ("Pprof: probe event missing field " ^ n)
  in
  let gets n =
    match Json.mem n j with
    | Some (Json.Str s) -> s
    | _ -> failwith ("Pprof: probe event missing field " ^ n)
  in
  (* absent on captures recorded before the field existed *)
  let geti0 n =
    match Json.mem n j with Some (Json.Num v) -> int_of_float v | _ -> 0
  in
  match Json.mem "t" j with
  | Some (Json.Str tag) -> (
      match tag with
      | "store" ->
          Pr.Store
            { dev = geti "dev"; off = geti "off"; len = geti "len"; ns = getf "ns" }
      | "flush" ->
          Pr.Flush
            { dev = geti "dev"; off = geti "off"; len = geti "len"; ns = getf "ns" }
      | "fence" -> Pr.Fence { dev = geti "dev"; ns = getf "ns" }
      | "power_cycle" -> Pr.Power_cycle { dev = geti "dev" }
      | "pool_attach" ->
          Pr.Pool_attach
            {
              dev = geti "dev";
              heap_base = geti "heap_base";
              heap_len = geti "heap_len";
            }
      | "tx_begin" -> Pr.Tx_begin { dev = geti "dev"; ns = getf "ns" }
      | "tx_end" ->
          Pr.Tx_end
            {
              dev = geti "dev";
              outcome = outcome_of_name (gets "outcome");
              ns = getf "ns";
            }
      | "log" ->
          Pr.Log { dev = geti "dev"; off = geti "off"; len = geti "len" }
      | "alloc" ->
          Pr.Alloc { dev = geti "dev"; off = geti "off"; len = geti "len" }
      | "commit_point" -> Pr.Commit_point { dev = geti "dev"; ns = getf "ns" }
      | "region_reserve" ->
          Pr.Region_reserve
            { dev = geti "dev"; off = geti "off"; len = geti "len" }
      | "region_release" ->
          Pr.Region_release { dev = geti "dev"; off = geti "off" }
      | "exempt_push" -> Pr.Exempt_push { dev = geti "dev" }
      | "exempt_pop" -> Pr.Exempt_pop { dev = geti "dev" }
      | "pool_layout" ->
          Pr.Pool_layout
            {
              dev = geti "dev";
              journal_base = geti "journal_base";
              slot_size = geti "slot_size";
              nslots = geti "nslots";
              table_base = geti "table_base";
              heap_base = geti "heap_base";
              heap_len = geti "heap_len";
              cow_base = geti0 "cow_base";
              cow_len = geti0 "cow_len";
            }
      | "journal_truncate" ->
          Pr.Journal_truncate
            { dev = geti "dev"; slot_base = geti "slot_base"; epoch = geti "epoch" }
      | "drop_apply" -> Pr.Drop_apply { dev = geti "dev"; off = geti "off" }
      | "cow_shadow" ->
          Pr.Cow_shadow { dev = geti "dev"; off = geti "off"; len = geti "len" }
      | "cow_retire" ->
          Pr.Cow_retire { dev = geti "dev"; off = geti "off"; len = geti "len" }
      | "recovery_phase" ->
          Pr.Recovery_phase
            {
              dev = geti "dev";
              phase = gets "phase";
              ns = getf "ns";
              dur_ns = getf "dur_ns";
            }
      | tag -> failwith ("Pprof: unknown probe event tag " ^ tag))
  | _ -> failwith "Pprof: probe event without a tag"

let events_of_json j =
  (match Json.mem "schema" j with
  | Some (Json.Str s) when s = schema -> ()
  | _ -> failwith ("Pprof: expected schema " ^ schema));
  match Json.mem "events" j with
  | Some (Json.List evs) -> List.map event_of_json evs
  | _ -> failwith "Pprof: capture without an events list"

let save_events path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Json.to_string (events_to_json events)))

let load_events path =
  let ic = open_in path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  events_of_json (Json.of_string s)

(* {1 Chrome-trace annotation} *)

let emit_overlay r =
  if Tr.on () then
    List.iter
      (fun f ->
        Tr.emit
          ~args:
            [
              ("class", class_name f.cls);
              ("kind", kind_name f.kind);
              ("site", f.site);
              ("tx", string_of_int f.tx);
              ("count", string_of_int f.count);
              ("detail", f.detail);
            ]
          ~cat:"pprof"
          ~name:("waste." ^ class_name f.cls)
          ~ph:Tr.I ~ts_ns:f.ns ())
      r.findings

let emit_probe_events events =
  if Tr.on () then
    List.iter
      (fun ev ->
        let inst ?(args = []) name ns =
          Tr.emit ~args ~cat:"probe" ~name ~ph:Tr.I ~ts_ns:ns ()
        in
        match ev with
        | Pr.Flush { dev; off; len; ns } ->
            inst
              ~args:
                [
                  ("dev", string_of_int dev);
                  ("off", string_of_int off);
                  ("len", string_of_int len);
                ]
              "flush" ns
        | Pr.Fence { dev; ns } -> inst ~args:[ ("dev", string_of_int dev) ] "fence" ns
        | Pr.Tx_begin { dev; ns } ->
            inst ~args:[ ("dev", string_of_int dev) ] "tx_begin" ns
        | Pr.Tx_end { dev; outcome; ns } ->
            inst
              ~args:
                [
                  ("dev", string_of_int dev);
                  ("outcome", outcome_name outcome);
                ]
              "tx_end" ns
        | Pr.Commit_point { dev; ns } ->
            inst ~args:[ ("dev", string_of_int dev) ] "commit_point" ns
        | Pr.Recovery_phase { dev; phase; ns; dur_ns } ->
            inst
              ~args:
                [
                  ("dev", string_of_int dev);
                  ("phase", phase);
                  ("dur_ns", Printf.sprintf "%.0f" dur_ns);
                ]
              "recovery_phase" ns
        | _ -> ())
      events
