(** Diff two telemetry capture documents.

    Understands three shapes and diffs whichever both documents carry:
    metrics dumps ({!Metrics.dump_json} — counter deltas and histogram
    count/p50/p99/p999 shifts), persist-waste tables ([corundum-waste-v1] —
    per-engine/op waste deltas) and pprof reports ([corundum-pprof-v1]
    — the report's total [actual - minimum] as one waste row).  Pure
    functions over parsed JSON, shared by [trace_check --diff] and the
    canned-capture tests. *)

type entry =
  | Counter of { name : string; a : float; b : float }
  | Histo of {
      name : string;
      a_count : float;
      b_count : float;
      a_p50 : float option;  (** [None] when the capture predates p50 *)
      b_p50 : float option;
      a_p99 : float option;
      b_p99 : float option;
      a_p999 : float option;  (** tail quantile, [None] on old captures *)
      b_p999 : float option;
    }
  | Waste of {
      engine : string;
      op : string;
      a_fl : float;  (** waste flushes (per op for waste-v1 tables) *)
      b_fl : float;
      a_fe : float;
      b_fe : float;
    }

val diff : Json.t -> Json.t -> entry list
(** Changed entries only, A's key order first.  A key present on one
    side only is treated as 0 (counters) or skipped (waste rows need
    both sides to compare). *)

val render : entry list -> string
(** One line per entry; ["no differences\n"] when empty. *)

val waste_regressed : entry list -> bool
(** Whether any waste row grew from A to B (beyond a 0.01 epsilon) —
    the one-directional gate [trace_check --diff] exits non-zero on. *)
