type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* {1 Printing} *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.6g" f)

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* {1 Parsing} — plain recursive descent over the string. *)

type state = { s : string; mutable i : int }

let fail st msg = failwith (Printf.sprintf "Json.of_string: %s at byte %d" msg st.i)
let peek st = if st.i < String.length st.s then Some st.s.[st.i] else None

let skip_ws st =
  while
    st.i < String.length st.s
    && (match st.s.[st.i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.i <- st.i + 1
  done

let expect st c =
  match peek st with
  | Some c' when c' = c -> st.i <- st.i + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if st.i + n <= String.length st.s && String.sub st.s st.i n = word then begin
    st.i <- st.i + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

(* Encode a Unicode scalar (BMP) as UTF-8. *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.i <- st.i + 1
    | Some '\\' ->
        st.i <- st.i + 1;
        (match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.i <- st.i + 1
        | Some '\\' -> Buffer.add_char buf '\\'; st.i <- st.i + 1
        | Some '/' -> Buffer.add_char buf '/'; st.i <- st.i + 1
        | Some 'b' -> Buffer.add_char buf '\b'; st.i <- st.i + 1
        | Some 'f' -> Buffer.add_char buf '\012'; st.i <- st.i + 1
        | Some 'n' -> Buffer.add_char buf '\n'; st.i <- st.i + 1
        | Some 'r' -> Buffer.add_char buf '\r'; st.i <- st.i + 1
        | Some 't' -> Buffer.add_char buf '\t'; st.i <- st.i + 1
        | Some 'u' ->
            st.i <- st.i + 1;
            if st.i + 4 > String.length st.s then fail st "truncated \\u escape";
            let hex = String.sub st.s st.i 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | Some u -> add_utf8 buf u
            | None -> fail st "bad \\u escape");
            st.i <- st.i + 4
        | _ -> fail st "bad escape");
        go ()
    | Some c -> Buffer.add_char buf c; st.i <- st.i + 1; go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.i in
  let num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.i < String.length st.s && num_char st.s.[st.i] do
    st.i <- st.i + 1
  done;
  match float_of_string_opt (String.sub st.s start (st.i - start)) with
  | Some f -> f
  | None -> fail st "bad number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.i <- st.i + 1;
      skip_ws st;
      if peek st = Some '}' then begin st.i <- st.i + 1; Obj [] end
      else begin
        let rec members acc =
          skip_ws st;
          let k = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> st.i <- st.i + 1; members ((k, v) :: acc)
          | Some '}' -> st.i <- st.i + 1; List.rev ((k, v) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (members [])
      end
  | Some '[' ->
      st.i <- st.i + 1;
      skip_ws st;
      if peek st = Some ']' then begin st.i <- st.i + 1; List [] end
      else begin
        let rec elements acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> st.i <- st.i + 1; elements (v :: acc)
          | Some ']' -> st.i <- st.i + 1; List.rev (v :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (elements [])
      end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let of_string s =
  let st = { s; i = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.i <> String.length s then fail st "trailing garbage";
  v

(* {1 Accessors} *)

let mem k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let str = function Str s -> Some s | _ -> None
let num = function Num f -> Some f | _ -> None
let list = function List xs -> Some xs | _ -> None
let obj = function Obj kvs -> Some kvs | _ -> None
