(* Diff two telemetry capture documents: metrics dumps
   ({!Metrics.dump_json}), persist-waste tables (corundum-waste-v1) and
   pprof reports (corundum-pprof-v1).  Pure — takes parsed JSON, returns
   rendered text — so the same code serves [trace_check --diff] and the
   canned-capture tests. *)

module J = Json

type entry =
  | Counter of { name : string; a : float; b : float }
  | Histo of {
      name : string;
      a_count : float;
      b_count : float;
      a_p50 : float option;
      b_p50 : float option;
      a_p99 : float option;
      b_p99 : float option;
      a_p999 : float option;
      b_p999 : float option;
    }
  | Waste of {
      engine : string;
      op : string;
      a_fl : float;
      b_fl : float;
      a_fe : float;
      b_fe : float;
    }

let num k o = Option.bind (J.mem k o) J.num

(* Union of keys, A's order first, then B-only keys in B's order. *)
let key_union a b =
  let a_keys = List.map fst a in
  a_keys @ List.filter (fun k -> not (List.mem k a_keys)) (List.map fst b)

let diff_counters a b =
  match (J.mem "counters" a, J.mem "counters" b) with
  | Some (J.Obj ca), Some (J.Obj cb) ->
      List.filter_map
        (fun name ->
          let va = Option.bind (List.assoc_opt name ca) J.num
          and vb = Option.bind (List.assoc_opt name cb) J.num in
          match (va, vb) with
          | Some va, Some vb when va <> vb ->
              Some (Counter { name; a = va; b = vb })
          | None, Some vb when vb <> 0.0 ->
              Some (Counter { name; a = 0.0; b = vb })
          | Some va, None when va <> 0.0 ->
              Some (Counter { name; a = va; b = 0.0 })
          | _ -> None)
        (key_union ca cb)
  | _ -> []

let diff_histograms a b =
  match (J.mem "histograms" a, J.mem "histograms" b) with
  | Some (J.Obj ha), Some (J.Obj hb) ->
      List.filter_map
        (fun name ->
          let ga = List.assoc_opt name ha and gb = List.assoc_opt name hb in
          let f k g = Option.bind g (num k) in
          let a_count = Option.value ~default:0.0 (f "count" ga)
          and b_count = Option.value ~default:0.0 (f "count" gb) in
          let a_p50 = f "p50" ga and b_p50 = f "p50" gb in
          let a_p99 = f "p99" ga and b_p99 = f "p99" gb in
          let a_p999 = f "p999" ga and b_p999 = f "p999" gb in
          if a_count = b_count && a_p50 = b_p50 && a_p99 = b_p99
             && a_p999 = b_p999
          then None
          else
            Some
              (Histo
                 { name; a_count; b_count; a_p50; b_p50; a_p99; b_p99;
                   a_p999; b_p999 }))
        (key_union ha hb)
  | _ -> []

(* corundum-waste-v1: {"engines": {name: [{op, waste_flushes_per_op,
   waste_fences_per_op, ...}]}}. *)
let waste_rows doc =
  match J.mem "engines" doc with
  | Some (J.Obj engines) ->
      List.concat_map
        (fun (engine, ops) ->
          match ops with
          | J.List ops ->
              List.filter_map
                (fun o ->
                  match
                    ( Option.bind (J.mem "op" o) J.str,
                      num "waste_flushes_per_op" o,
                      num "waste_fences_per_op" o )
                  with
                  | Some op, Some fl, Some fe -> Some ((engine, op), (fl, fe))
                  | _ -> None)
                ops
          | _ -> [])
        engines
  | _ -> []

(* corundum-pprof-v1: one report = one waste row. *)
let pprof_row doc =
  match
    ( num "actual_flushes" doc,
      num "min_flushes" doc,
      num "actual_fences" doc,
      num "min_fences" doc )
  with
  | Some af, Some mf, Some afe, Some mfe ->
      let label =
        Option.value ~default:"trace" (Option.bind (J.mem "label" doc) J.str)
      in
      [ ((label, "total"), (af -. mf, afe -. mfe)) ]
  | _ -> []

let diff_waste a b =
  let rows doc =
    match Option.bind (J.mem "schema" doc) J.str with
    | Some "corundum-waste-v1" -> waste_rows doc
    | Some "corundum-pprof-v1" -> pprof_row doc
    | _ -> []
  in
  let ra = rows a and rb = rows b in
  List.filter_map
    (fun key ->
      let va = List.assoc_opt key ra and vb = List.assoc_opt key rb in
      match (va, vb) with
      | Some (a_fl, a_fe), Some (b_fl, b_fe) ->
          if a_fl = b_fl && a_fe = b_fe then None
          else
            Some
              (Waste { engine = fst key; op = snd key; a_fl; b_fl; a_fe; b_fe })
      | _ -> None)
    (key_union ra rb)

let diff a b = diff_counters a b @ diff_histograms a b @ diff_waste a b

let render_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let render entries =
  let buf = Buffer.create 512 in
  let opt = function None -> "-" | Some v -> render_float v in
  List.iter
    (fun e ->
      match e with
      | Counter { name; a; b } ->
          Buffer.add_string buf
            (Printf.sprintf "counter   %-32s %12s -> %-12s (%+g)\n" name
               (render_float a) (render_float b) (b -. a))
      | Histo
          { name; a_count; b_count; a_p50; b_p50; a_p99; b_p99; a_p999; b_p999 }
        ->
          Buffer.add_string buf
            (Printf.sprintf
               "histogram %-32s count %s -> %s  p50 %s -> %s  p99 %s -> %s  \
                p999 %s -> %s\n"
               name (render_float a_count) (render_float b_count) (opt a_p50)
               (opt b_p50) (opt a_p99) (opt b_p99) (opt a_p999) (opt b_p999))
      | Waste { engine; op; a_fl; b_fl; a_fe; b_fe } ->
          Buffer.add_string buf
            (Printf.sprintf
               "waste     %-20s %-12s %s -> %s flushes, %s -> %s fences\n"
               engine op (render_float a_fl) (render_float b_fl)
               (render_float a_fe) (render_float b_fe)))
    entries;
  if entries = [] then Buffer.add_string buf "no differences\n";
  Buffer.contents buf

(* Did any comparable waste row grow?  Drives [trace_check --diff]'s
   exit code: counter/histogram drift is informational, waste growing
   is a regression. *)
let waste_regressed entries =
  List.exists
    (function
      | Waste { a_fl; b_fl; a_fe; b_fe; _ } ->
          b_fl > a_fl +. 0.01 || b_fe > a_fe +. 0.01
      | _ -> false)
    entries
