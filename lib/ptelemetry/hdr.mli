(** Fixed-precision log-linear histograms (HdrHistogram-style).

    The log2 buckets the registry used historically bound a quantile
    only to within one power of two — up to 100% relative error at the
    tail once the raw-sample window is outgrown.  This module keeps the
    constant memory footprint but splits every power of two into
    {!sub_half} linear sub-buckets, so any reported quantile is within
    {!max_rel_error} (1/32 ≈ 3.1%) of the true sample at {e any}
    population size.

    Layout: values [0, 63] get a unit-width bucket each (exact);
    thereafter the power-of-two decade [[64·2^(b-1), 64·2^b)] is covered
    by 32 sub-buckets of width [2^b].  A sub-bucket's reported value is
    its lower bound, so estimates err low, never high, by at most
    [width/lo <= 1/32].

    Small populations stay {e exact}: the first {!exact_capacity}
    samples are additionally retained verbatim in a preallocated array
    (no allocation on the record path, and the array is never touched
    again once the population outgrows it), and quantiles over a
    retained population are nearest-rank on the raw samples.

    Histograms are {e mergeable}: {!merge_into} folds one histogram
    into another bucket-by-bucket, preserving exactness while the
    combined population still fits the raw window.  Merge is
    associative and commutative up to sample order, which makes
    per-domain recording + merge-on-report safe.

    A histogram is deliberately {e unsynchronized} — one writer at a
    time.  Concurrent writers each record into their own histogram (or
    their own {!Metrics} shard) and merge on snapshot. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample; negative values clamp to 0.  Never allocates. *)

val count : t -> int

val clear : t -> unit

val merge_into : into:t -> t -> unit
(** Fold every sample of the second histogram into [into] (bucket
    counts, sum, min/max, and raw samples while they all still fit the
    exact window). *)

val merge : t list -> t
(** A fresh histogram holding the union of the inputs' samples. *)

(** {1 Bucket geometry} *)

val sub_bits : int
(** log2 of the unit-bucket span (6: values 0–63 are exact). *)

val sub_half : int
(** Linear sub-buckets per power-of-two decade (32). *)

val max_rel_error : float
(** Worst-case relative error of a bucket-estimated quantile:
    [1 /. float sub_half] = 0.03125. *)

val nbuckets : int
(** Total bucket-array length. *)

val index_of : int -> int
(** The bucket a value lands in (values clamp to [0, 2^61]). *)

val bucket_lo : int -> int
(** Smallest value mapping to bucket [i] — the value a quantile
    estimate reports for that bucket. *)

val bucket_width : int -> int
(** Width of bucket [i] ([bucket_lo (i+1) - bucket_lo i]). *)

val exact_capacity : int
(** Raw samples retained per histogram (128): populations at or below
    this report exact nearest-rank quantiles. *)

(** {1 Snapshots} *)

type snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;
      (** (bucket index, samples) for non-empty buckets, ascending. *)
  samples : int list option;
      (** all samples sorted ascending while [count <= exact_capacity] *)
}

val snapshot : t -> snapshot

val exact : snapshot -> bool
(** Whether quantiles are nearest-rank raw samples rather than
    sub-bucket lower bounds.  Empty histograms report exact. *)

val quantile : snapshot -> float -> int
(** [quantile s q], [0 <= q <= 1]: nearest-rank over raw samples when
    {!exact}, otherwise the lower bound of the sub-bucket holding that
    rank — within {!max_rel_error} of the true sample. *)

val mean : snapshot -> float

val to_json : snapshot -> Json.t
(** The registry's histogram schema: [{count, sum, min, max, mean, p50,
    p99, p999, exact, buckets: [[lo, n], …]}] — what {!Metrics.dump_json}
    emits per histogram and {!Capture_diff} reads back. *)
