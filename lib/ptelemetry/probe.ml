type tx_outcome = Commit | Abort | Crash

type event =
  | Store of { dev : int; off : int; len : int; ns : float }
  | Flush of { dev : int; off : int; len : int; ns : float }
  | Fence of { dev : int; ns : float }
  | Power_cycle of { dev : int }
  | Pool_attach of { dev : int; heap_base : int; heap_len : int }
  | Tx_begin of { dev : int; ns : float }
  | Tx_end of { dev : int; outcome : tx_outcome; ns : float }
  | Log of { dev : int; off : int; len : int }
  | Alloc of { dev : int; off : int; len : int }
  | Commit_point of { dev : int; ns : float }
  | Region_reserve of { dev : int; off : int; len : int }
  | Region_release of { dev : int; off : int }
  | Exempt_push of { dev : int }
  | Exempt_pop of { dev : int }
  | Pool_layout of {
      dev : int;
      journal_base : int;
      slot_size : int;
      nslots : int;
      table_base : int;
      heap_base : int;
      heap_len : int;
      cow_base : int; (* CoW root-cell region in the header page; 0 = none *)
      cow_len : int;
    }
  | Journal_truncate of { dev : int; slot_base : int; epoch : int }
  | Drop_apply of { dev : int; off : int }
  | Recovery_phase of { dev : int; phase : string; ns : float; dur_ns : float }
  | Cow_shadow of { dev : int; off : int; len : int }
      (* a CoW transaction's shadow range: exempt from store-before-log
         until the root swap publishes it *)
  | Cow_retire of { dev : int; off : int; len : int }
      (* a block retired by a committed root swap: any later store into
         it (before a re-allocation) is a use-after-retire *)

(* [active] mirrors [handler <> None] so the hot-path guard is one
   atomic load, as in {!Trace}.  The handler itself is responsible for
   its own synchronization; delivery happens on the emitting thread. *)
let active = Atomic.make false
let handler : (event -> unit) option ref = ref None
let lock = Mutex.create ()

let on () = Atomic.get active

let install f =
  Mutex.lock lock;
  handler := Some f;
  Atomic.set active true;
  Mutex.unlock lock

let uninstall () =
  Mutex.lock lock;
  Atomic.set active false;
  handler := None;
  Mutex.unlock lock

let emit ev =
  if Atomic.get active then
    match !handler with Some f -> f ev | None -> ()
