(** Semantic event bus for online auditors.

    {!Trace} records {e what happened when} for humans; this bus carries
    the {e protocol-level} events an online checker needs to judge the
    run: stores, flushes, fences, undo-log coverage, transaction
    boundaries, and region lifetimes.  The persistency sanitizer
    ({!Psan}, [lib/psan]) is the canonical subscriber.

    The discipline is the same as {!Trace}: one global subscriber behind
    one atomic gate.  With no subscriber installed every emission site
    reduces to a single atomic load and a branch, and no event value is
    even constructed — instrumentation cannot perturb the simulated
    clock.  Handlers run synchronously on the emitting thread (so a
    subscriber may consult [Domain.self ()] to attribute events), and
    must not themselves touch the device.

    Devices are identified by {!Pmem.Device.id} — a process-unique
    integer — so this library stays free of any dependency on the
    layers it audits. *)

type tx_outcome = Commit | Abort | Crash

type event =
  | Store of { dev : int; off : int; len : int; ns : float }
      (** A CPU store into the device's volatile view. *)
  | Flush of { dev : int; off : int; len : int; ns : float }
      (** A [clflushopt]-style write-back request over a byte range. *)
  | Fence of { dev : int; ns : float }
      (** An [sfence]: the write-pending queue drains to media. *)
  | Power_cycle of { dev : int }
      (** Power-failure semantics applied; all cache state is gone. *)
  | Pool_attach of { dev : int; heap_base : int; heap_len : int }
      (** A pool is now live on [dev]; data lives in
          [heap_base, heap_base + heap_len) and everything below
          [heap_base] is pool metadata (header, journals, alloc table). *)
  | Tx_begin of { dev : int; ns : float }
      (** Outermost transaction opened on the calling domain. *)
  | Tx_end of { dev : int; outcome : tx_outcome; ns : float }
      (** Outermost transaction finished on the calling domain. *)
  | Log of { dev : int; off : int; len : int }
      (** An undo-log entry now covers [off, off+len): the old contents
          are durably saved, so in-place stores there are rollback-safe. *)
  | Alloc of { dev : int; off : int; len : int }
      (** A block allocated by the current transaction (actual block
          size); stores into it need no undo entry — rollback is the
          allocation rollback itself. *)
  | Commit_point of { dev : int; ns : float }
      (** The commit fence of the calling domain's transaction has
          executed (or, under fault injection, was elided): every range
          the transaction stored must be durable {e now}.  Emitted
          before the journal truncates, whose own persists would mask a
          missing commit fence. *)
  | Region_reserve of { dev : int; off : int; len : int }
      (** The journal reserved [off, off+len) of the heap for its own
          bookkeeping (a spill region); writes there are journal
          protocol, not user data. *)
  | Region_release of { dev : int; off : int }
      (** The spill region starting at [off] was released. *)
  | Exempt_push of { dev : int }
      (** Begin a privileged window (recovery): heap stores are the
          recovery protocol restoring logged state, not user code. *)
  | Exempt_pop of { dev : int }
  | Pool_layout of {
      dev : int;
      journal_base : int;
      slot_size : int;
      nslots : int;
      table_base : int;
      heap_base : int;
      heap_len : int;
      cow_base : int;
      cow_len : int;
    }
      (** Full media geometry of the pool on [dev], emitted at attach
          alongside {!Pool_attach}.  Lets a subscriber classify every
          byte range as header / journal slot (and which) / allocation
          table / heap — the conformance checker ({!Pmodel.Mconform})
          needs the finer split that [Pool_attach] does not carry.
          [cow_base, cow_base + cow_len) is the CoW root-cell region
          inside the header page ([0,0] on captures that predate it). *)
  | Journal_truncate of { dev : int; slot_base : int; epoch : int }
      (** The journal slot at [slot_base] retired its log: terminator
          reset, header fields zeroed and the epoch bumped to [epoch] —
          after this no stale entry can verify against the slot's salt. *)
  | Drop_apply of { dev : int; off : int }
      (** A deferred free (drop record) was applied as an
          allocation-table clear for the block at [off] — only legal
          after the commit point made the drop records durable. *)
  | Recovery_phase of { dev : int; phase : string; ns : float; dur_ns : float }
      (** One recovery phase ([walk], [rollback], [drop_apply],
          [remark], [truncate], [table_scan], [fsck]) finished at
          simulated time [ns] having taken [dur_ns] simulated
          nanoseconds.  Emitted inside the recovery exempt window; lets
          an observer break recovery latency down without touching the
          device. *)
  | Cow_shadow of { dev : int; off : int; len : int }
      (** The current CoW transaction wrote [off, off+len) as shadow
          state (a fresh node or the root block's inactive copy):
          unreachable until the root swap publishes it, so stores there
          need no undo coverage — the CoW analogue of {!Alloc}. *)
  | Cow_retire of { dev : int; off : int; len : int }
      (** A committed root swap retired the block at [off, off+len):
          readers of the pre-swap state may still hold it, but no store
          may land there until the allocator reissues it — a store into
          a retired block is the CoW use-after-retire violation. *)

val install : (event -> unit) -> unit
(** Subscribe [f]; replaces any current subscriber. *)

val uninstall : unit -> unit

val on : unit -> bool
(** Whether a subscriber is installed — the guard every emission site
    checks before constructing an event. *)

val emit : event -> unit
(** Deliver to the subscriber; no-op when {!on} is false.  Emission
    sites should still guard with {!on} so the event value itself is
    never built on the uninstrumented path. *)
