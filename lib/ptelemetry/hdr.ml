(* Log-linear fixed-precision histogram.  See hdr.mli for the bucket
   geometry; the implementation notes here cover only the parts the
   interface can't show. *)

let sub_bits = 6
let sub_count = 1 lsl sub_bits (* 64: unit buckets covering 0..63 *)
let sub_half = sub_count / 2 (* 32 linear sub-buckets per decade *)
let max_rel_error = 1.0 /. float_of_int sub_half
let exact_capacity = 128

(* Values clamp to [0, 2^61): with 61 usable magnitude bits there are
   61 - sub_bits + 1 = 56 decades above the unit span. *)
let max_value = (1 lsl 61) - 1
let ndecades = 61 - sub_bits + 1
let nbuckets = sub_count + (ndecades * sub_half)

let log2_floor n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

let index_of v =
  let v = if v < 0 then 0 else min v max_value in
  if v < sub_count then v
  else
    (* decade b >= 1 covers [64 * 2^(b-1), 64 * 2^b) in slots of 2^b *)
    let b = log2_floor v - (sub_bits - 1) in
    sub_count + ((b - 1) * sub_half) + ((v lsr b) - sub_half)

let bucket_lo i =
  if i < sub_count then i
  else
    let r = i - sub_count in
    let b = (r / sub_half) + 1 in
    let slot = (r mod sub_half) + sub_half in
    slot lsl b

let bucket_width i = if i < sub_count then 1 else 1 lsl ((i - sub_count) / sub_half + 1)

type t = {
  counts : int array; (* length [nbuckets] *)
  mutable count : int;
  mutable sum : int;
  mutable hmin : int;
  mutable hmax : int;
  raw : int array; (* first [min count exact_capacity] slots are live *)
}

let create () =
  {
    counts = Array.make nbuckets 0;
    count = 0;
    sum = 0;
    hmin = 0;
    hmax = 0;
    raw = Array.make exact_capacity 0;
  }

let count t = t.count

let record t v =
  let v = if v < 0 then 0 else min v max_value in
  let i = index_of v in
  t.counts.(i) <- t.counts.(i) + 1;
  if t.count = 0 || v < t.hmin then t.hmin <- v;
  if v > t.hmax then t.hmax <- v;
  (* The raw window is written exactly once per slot and never touched
     again past the threshold — the hot path allocates nothing. *)
  if t.count < exact_capacity then t.raw.(t.count) <- v;
  t.count <- t.count + 1;
  t.sum <- t.sum + v

let clear t =
  Array.fill t.counts 0 nbuckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.hmin <- 0;
  t.hmax <- 0

let merge_into ~into src =
  if src.count > 0 then begin
    (* Raw windows concatenate while every sample still fits; once the
       union spills, exactness is lost (the buckets carry on alone). *)
    if into.count < exact_capacity && src.count <= exact_capacity - into.count
    then Array.blit src.raw 0 into.raw into.count src.count;
    Array.iteri
      (fun i n -> if n > 0 then into.counts.(i) <- into.counts.(i) + n)
      src.counts;
    if into.count = 0 || src.hmin < into.hmin then into.hmin <- src.hmin;
    if src.hmax > into.hmax then into.hmax <- src.hmax;
    into.count <- into.count + src.count;
    into.sum <- into.sum + src.sum
  end

let merge ts =
  let into = create () in
  List.iter (fun t -> merge_into ~into t) ts;
  into

type snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
  samples : int list option;
}

let snapshot t =
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if t.counts.(i) > 0 then buckets := (i, t.counts.(i)) :: !buckets
  done;
  let samples =
    if t.count > 0 && t.count <= exact_capacity then
      Some (List.sort compare (Array.to_list (Array.sub t.raw 0 t.count)))
    else None
  in
  { count = t.count; sum = t.sum; min = t.hmin; max = t.hmax;
    buckets = !buckets; samples }

let exact (s : snapshot) = s.count = 0 || s.samples <> None

let quantile (s : snapshot) q =
  if s.count = 0 then 0
  else begin
    let rank = int_of_float (float_of_int (s.count - 1) *. q) in
    match s.samples with
    | Some sorted -> List.nth sorted rank
    | None ->
        let rec go seen = function
          | [] -> s.max
          | (i, n) :: rest ->
              if seen + n > rank then bucket_lo i else go (seen + n) rest
        in
        go 0 s.buckets
  end

let mean (s : snapshot) =
  if s.count = 0 then 0.0 else float_of_int s.sum /. float_of_int s.count

let to_json (s : snapshot) =
  let n v = Json.Num (float_of_int v) in
  let buckets =
    List.map
      (fun (i, c) -> Json.List [ n (bucket_lo i); n c ])
      s.buckets
  in
  Json.Obj
    [
      ("count", n s.count);
      ("sum", n s.sum);
      ("min", n s.min);
      ("max", n s.max);
      ("mean", Json.Num (mean s));
      ("p50", n (quantile s 0.5));
      ("p99", n (quantile s 0.99));
      ("p999", n (quantile s 0.999));
      ("exact", Json.Bool (exact s));
      ("buckets", Json.List buckets);
    ]
