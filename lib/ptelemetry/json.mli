(** A minimal JSON value type with a printer and a parser.

    Just enough JSON for the telemetry subsystem to emit Chrome
    [trace_event] files and metric dumps, and to read them back for
    validation and round-trip tests — deliberately not a general-purpose
    JSON library (no streaming, no number fidelity beyond [float], BMP
    escapes only), so the stack keeps its zero-dependency property. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering.  Integral floats print without a
    fractional part so counters survive a round-trip textually. *)

val to_buffer : Buffer.t -> t -> unit

val of_string : string -> t
(** Parse a complete JSON document.  Raises [Failure] with a position on
    malformed input or trailing garbage. *)

(** {1 Accessors} (total: return [None] on shape mismatch) *)

val mem : string -> t -> t option
(** [mem k (Obj ...)] is the value bound to [k], if any. *)

val str : t -> string option
val num : t -> float option
val list : t -> t list option
val obj : t -> (string * t) list option
