(** Sharded global registry of named counters and fixed-precision
    histograms.

    The registry backs the per-transaction attribution the evaluation
    needs (flushes/tx, fences/tx, logged bytes/tx — the quantities
    Table 5 of the paper reasons with): instrumentation sites intern a
    metric once and bump it on the hot path, and tooling dumps the whole
    registry as stable text or JSON.

    {b Multicore discipline.}  Every metric is sharded {!nshards} ways
    by the calling domain's id.  A counter bump is one lock-free
    fetch-and-add on the caller's own shard; a histogram observation
    takes a per-shard mutex that is uncontended unless two domains
    collide on a shard index.  Shards are merged on snapshot, so reads
    see a consistent whole-registry view while writers never serialize
    against each other — N domains recording latencies do not queue on
    one registry lock.

    {b Histogram precision.}  Histograms are {!Hdr} log-linear
    histograms: raw samples are retained (preallocated, allocation-free)
    up to {!exact_threshold} per shard-merge and quantiles there are
    exact; past it, quantiles are sub-bucket lower bounds within
    {!Hdr.max_rel_error} (≈3.1%) of the true sample at any population
    size — not the one-power-of-two floors of the old log2 buckets.

    Metric names are dot-separated ([tx.flushes], [alloc.size], …); the
    dumps list them in lexicographic order so diffs between runs are
    meaningful.  All operations are thread-safe.

    Instrumentation sites must guard updates behind {!Trace.on} so an
    uninstrumented run pays only a branch; the registry itself does not
    check the flag. *)

type counter
type histogram

val nshards : int
(** Shards per metric (64).  Domain ids index shards modulo this. *)

val counter : string -> counter
(** Intern (find or create) the counter named [s]. *)

val histogram : string -> histogram
(** Intern the histogram named [s].  Raises [Invalid_argument] if the
    name is already registered as a counter (and vice versa). *)

val incr : ?by:int -> counter -> unit
(** One atomic fetch-and-add on the calling domain's shard. *)

val observe : histogram -> int -> unit
(** Record one sample into the calling domain's shard.  Negative
    samples clamp to 0.  Never allocates. *)

(** {1 Reading} *)

val counter_value : counter -> int
(** Sum over all shards. *)

val find_counter : string -> int option
(** Current value of a counter by name, if registered. *)

type histo_snapshot = Hdr.snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;
      (** ({!Hdr} bucket index, samples) for non-empty buckets,
          ascending. *)
  samples : int list option;
      (** every sample, sorted ascending, while [count <=
          exact_threshold]; [None] once the merged population outgrows
          the retention window (quantiles then fall back to log-linear
          sub-bucket lower bounds). *)
}

val find_histogram : string -> histo_snapshot option
(** Merged snapshot over every shard of the named histogram. *)

val exact_threshold : int
(** = {!Hdr.exact_capacity} (128): raw samples are retained while a
    histogram's merged population is at or below this, and {!quantile}
    is exact there rather than a bounded-error estimate. *)

val exact : histo_snapshot -> bool
(** Whether {!quantile} on this snapshot returns exact nearest-rank
    values (raw samples retained) rather than sub-bucket lower bounds.
    An empty histogram reports exact. *)

val bucket_of : int -> int
(** = {!Hdr.index_of}: the log-linear bucket a sample lands in.
    Values 0–63 get unit buckets; each power-of-two decade above is
    split into {!Hdr.sub_half} linear sub-buckets. *)

val bucket_lo : int -> int
(** = {!Hdr.bucket_lo}: smallest value of bucket [i]. *)

val mean : histo_snapshot -> float

val quantile : histo_snapshot -> float -> int
(** [quantile s q] is the [q]-quantile ([0 <= q <= 1]): the exact
    nearest-rank sample while the raw population is retained
    ([count <= exact_threshold]), otherwise the lower bound of the
    sub-bucket holding that rank — within {!Hdr.max_rel_error} of the
    true sample.  {!exact} tells which path applies. *)

(** {1 Dumps} *)

val dump_text : unit -> string
(** One metric per line: [name value] for counters, [name
    count=… sum=… mean=… p50…  p99… p999… max=…] for histograms ([p50=]
    when the quantile is exact, [p50~] when sub-bucket-estimated). *)

val dump_json : unit -> Json.t
(** [{"counters": {name: value}, "histograms": {name: {count, sum, min,
    max, mean, p50, p99, p999, exact, buckets: [[lo, n], …]}}}].
    Quantiles follow {!quantile}; [exact] says whether they are
    nearest-rank values or sub-bucket lower bounds. *)

val to_json : unit -> Json.t
(** Alias of {!dump_json}. *)

val reset : unit -> unit
(** Zero every registered metric (names stay registered). *)
