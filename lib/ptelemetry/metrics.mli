(** Global registry of named counters and log-scale histograms.

    The registry backs the per-transaction attribution the evaluation
    needs (flushes/tx, fences/tx, logged bytes/tx — the quantities
    Table 5 of the paper reasons with): instrumentation sites intern a
    metric once and bump it on the hot path, and tooling dumps the whole
    registry as stable text or JSON.

    Metric names are dot-separated ([tx.flushes], [alloc.size], …); the
    dumps list them in lexicographic order so diffs between runs are
    meaningful.  All operations are thread-safe.

    Instrumentation sites must guard updates behind {!Trace.on} so an
    uninstrumented run pays only a branch; the registry itself does not
    check the flag. *)

type counter
type histogram

val counter : string -> counter
(** Intern (find or create) the counter named [s]. *)

val histogram : string -> histogram
(** Intern the histogram named [s].  Raises [Invalid_argument] if the
    name is already registered as a counter (and vice versa). *)

val incr : ?by:int -> counter -> unit
val observe : histogram -> int -> unit
(** Record one sample.  Negative samples clamp to bucket 0. *)

(** {1 Reading} *)

val counter_value : counter -> int
val find_counter : string -> int option
(** Current value of a counter by name, if registered. *)

type histo_snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;
      (** (bucket index, samples) for non-empty buckets, ascending. *)
}

val find_histogram : string -> histo_snapshot option

val bucket_of : int -> int
(** The log2 bucket a sample lands in: bucket 0 holds values [<= 0],
    bucket [i >= 1] holds the half-open range [[2^(i-1), 2^i)].  Capped
    at bucket 62. *)

val bucket_lo : int -> int
(** Smallest value of bucket [i] (0 for bucket 0). *)

val mean : histo_snapshot -> float
val quantile : histo_snapshot -> float -> int
(** [quantile s q] estimates the [q]-quantile ([0 <= q <= 1]) as the
    lower bound of the bucket holding that rank — a floor estimate,
    exact to within one power of two. *)

(** {1 Dumps} *)

val dump_text : unit -> string
(** One metric per line: [name value] for counters, [name
    count=… sum=… mean=… p50~… p99~… max=…] for histograms. *)

val dump_json : unit -> Json.t
(** [{"counters": {name: value}, "histograms": {name: {count, sum, min,
    max, mean, buckets: [[lo, n], …]}}}]. *)

val reset : unit -> unit
(** Zero every registered metric (names stay registered). *)
