(** Global registry of named counters and log-scale histograms.

    The registry backs the per-transaction attribution the evaluation
    needs (flushes/tx, fences/tx, logged bytes/tx — the quantities
    Table 5 of the paper reasons with): instrumentation sites intern a
    metric once and bump it on the hot path, and tooling dumps the whole
    registry as stable text or JSON.

    Metric names are dot-separated ([tx.flushes], [alloc.size], …); the
    dumps list them in lexicographic order so diffs between runs are
    meaningful.  All operations are thread-safe.

    Instrumentation sites must guard updates behind {!Trace.on} so an
    uninstrumented run pays only a branch; the registry itself does not
    check the flag. *)

type counter
type histogram

val counter : string -> counter
(** Intern (find or create) the counter named [s]. *)

val histogram : string -> histogram
(** Intern the histogram named [s].  Raises [Invalid_argument] if the
    name is already registered as a counter (and vice versa). *)

val incr : ?by:int -> counter -> unit
val observe : histogram -> int -> unit
(** Record one sample.  Negative samples clamp to bucket 0. *)

(** {1 Reading} *)

val counter_value : counter -> int
val find_counter : string -> int option
(** Current value of a counter by name, if registered. *)

type histo_snapshot = {
  count : int;
  sum : int;
  min : int;  (** 0 when [count = 0] *)
  max : int;
  buckets : (int * int) list;
      (** (bucket index, samples) for non-empty buckets, ascending. *)
  samples : int list option;
      (** every sample, sorted ascending, while [count <=
          exact_threshold]; [None] once the population outgrows the
          retention window (quantiles then fall back to bucket floors). *)
}

val find_histogram : string -> histo_snapshot option

val exact_threshold : int
(** Raw samples are retained until a histogram exceeds this count
    (128); within it, {!quantile} is exact rather than a bucket-floor
    estimate.  Sized for the populations the recovery-latency and bench
    reports aggregate (tens of attach cycles), not hot-path volumes. *)

val exact : histo_snapshot -> bool
(** Whether {!quantile} on this snapshot returns exact nearest-rank
    values (raw samples retained) rather than log2-bucket floors.
    An empty histogram reports exact. *)

val bucket_of : int -> int
(** The log2 bucket a sample lands in: bucket 0 holds values [<= 0],
    bucket [i >= 1] holds the half-open range [[2^(i-1), 2^i)].  Capped
    at bucket 62. *)

val bucket_lo : int -> int
(** Smallest value of bucket [i] (0 for bucket 0). *)

val mean : histo_snapshot -> float
val quantile : histo_snapshot -> float -> int
(** [quantile s q] is the [q]-quantile ([0 <= q <= 1]): the exact
    nearest-rank sample while the raw population is retained
    ([count <= exact_threshold]), otherwise the lower bound of the
    bucket holding that rank — a floor estimate, exact to within one
    power of two.  {!exact} tells which path applies. *)

(** {1 Dumps} *)

val dump_text : unit -> string
(** One metric per line: [name value] for counters, [name
    count=… sum=… mean=… p50…  p99… max=…] for histograms ([p50=] when
    the quantile is exact, [p50~] when bucket-estimated). *)

val dump_json : unit -> Json.t
(** [{"counters": {name: value}, "histograms": {name: {count, sum, min,
    max, mean, p50, p99, exact, buckets: [[lo, n], …]}}}].  [p50]/[p99]
    follow {!quantile}; [exact] says whether they are nearest-rank
    values or bucket floors. *)

val to_json : unit -> Json.t
(** Alias of {!dump_json}. *)

val reset : unit -> unit
(** Zero every registered metric (names stay registered). *)
