(** Event tracing for the PM stack.

    A single global subscriber (bounded in-memory rings, or a JSONL
    stream) receives timestamped events from instrumentation sites in
    the device, journal, allocator and pool layers.  Timestamps are the
    device's {e simulated} nanoseconds, so traces are deterministic and
    reflect PM cost, not host noise.

    With no subscriber installed, {!on} is false and every emission
    site reduces to one atomic load and a branch — the uninstrumented
    hot path stays within noise, and {e zero} events are retained.

    The ring subscriber can be {e sharded per domain}
    ([install_ring ~shards]): each emitting domain appends to its own
    ring under its own lock, so N domains tracing concurrently never
    serialize on one ring mutex; {!events} merges the rings back into
    one stream ordered by simulated time, with [tid] identifying the
    emitting domain — one Chrome trace, one track per domain.

    The rings export Chrome [trace_event] JSON ({!to_chrome_json},
    loadable in [chrome://tracing] / Perfetto) and one-event-per-line
    JSONL.  {!Trace_schema} validates both and parses them back. *)

type phase =
  | B  (** span begin (paired with [E] per thread, LIFO) *)
  | E  (** span end *)
  | I  (** instant *)
  | X of float  (** complete span carrying its duration in ns *)

type event = {
  name : string;
  cat : string;  (** category: [tx], [journal], [device], [alloc], … *)
  ph : phase;
  ts_ns : float;  (** simulated-ns timestamp *)
  tid : int;  (** emitting domain id *)
  args : (string * string) list;
}

(** {1 Subscription} *)

val install_ring : ?capacity:int -> ?shards:int -> unit -> unit
(** Subscribe an in-memory ring keeping the most recent [capacity]
    events {e per shard} (default 65536); older events are overwritten
    and counted in {!dropped}.  [shards] (default 1, rounded up to a
    power of two) shards the ring by emitting domain id: each domain
    appends under its own ring's lock, eliminating cross-domain
    contention on the trace path.  Replaces any current subscriber. *)

val install_jsonl : out_channel -> unit
(** Subscribe a streaming sink: each event is written immediately as
    one JSON object per line.  The channel is flushed on
    {!uninstall}. *)

val install_null : unit -> unit
(** Subscribe a sink that discards every event.  {!on} becomes true, so
    gated side effects that ride the trace gate — notably the
    {!Metrics} registry updates at instrumentation sites — run without
    paying for event retention.  Used by [--metrics] when no [--trace]
    ring is wanted. *)

val uninstall : unit -> unit
(** Remove the subscriber.  {!on} becomes false; a ring's events remain
    readable through {!events} until the next [install_*]. *)

val on : unit -> bool
(** Whether a subscriber is installed — the guard every instrumentation
    site checks before doing any telemetry work. *)

val set_detail : [ `Ordering | `All ] -> unit
(** [`Ordering] (default): the device emits only ordering points
    (flush/fence).  [`All]: individual loads and stores emit instant
    events too — very verbose; for short windows only. *)

val verbose : unit -> bool
(** [on () && detail = `All]. *)

(** {1 Emission} *)

val emit :
  ?args:(string * string) list ->
  ?tid:int ->
  cat:string ->
  name:string ->
  ph:phase ->
  ts_ns:float ->
  unit ->
  unit
(** No-op unless {!on}.  [tid] defaults to the calling domain's id. *)

val begin_span :
  ?args:(string * string) list -> cat:string -> name:string -> ts_ns:float -> unit -> unit

val end_span :
  ?args:(string * string) list -> cat:string -> name:string -> ts_ns:float -> unit -> unit

(** {1 Reading the ring} *)

val events : unit -> event list
(** Events currently retained, oldest first.  With a sharded ring, the
    per-domain rings are merged into one stream ordered by simulated
    timestamp (ties keep each ring's own emission order).  [[]] when
    the subscriber is a JSONL stream or nothing was ever installed. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last install,
    summed over shards. *)

val clear : unit -> unit
(** Empty the ring(s) (keeps the subscription). *)

(** {1 Export} *)

val event_to_json : event -> Json.t
(** One Chrome [trace_event] object; [ts]/[dur] are microseconds. *)

val to_chrome_json : event list -> string
(** A complete [{"traceEvents": […]}] document. *)

val save_chrome : string -> unit
(** Write the ring's current contents as Chrome JSON to a file. *)
