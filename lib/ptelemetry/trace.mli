(** Event tracing for the PM stack.

    A single global subscriber (a bounded in-memory ring, or a JSONL
    stream) receives timestamped events from instrumentation sites in
    the device, journal, allocator and pool layers.  Timestamps are the
    device's {e simulated} nanoseconds, so traces are deterministic and
    reflect PM cost, not host noise.

    With no subscriber installed, {!on} is false and every emission
    site reduces to one atomic load and a branch — the uninstrumented
    hot path stays within noise, and {e zero} events are retained.

    The ring exports Chrome [trace_event] JSON ({!to_chrome_json},
    loadable in [chrome://tracing] / Perfetto) and one-event-per-line
    JSONL.  {!Trace_schema} validates both and parses them back. *)

type phase =
  | B  (** span begin (paired with [E] per thread, LIFO) *)
  | E  (** span end *)
  | I  (** instant *)
  | X of float  (** complete span carrying its duration in ns *)

type event = {
  name : string;
  cat : string;  (** category: [tx], [journal], [device], [alloc], … *)
  ph : phase;
  ts_ns : float;  (** simulated-ns timestamp *)
  tid : int;  (** emitting domain id *)
  args : (string * string) list;
}

(** {1 Subscription} *)

val install_ring : ?capacity:int -> unit -> unit
(** Subscribe an in-memory ring keeping the most recent [capacity]
    events (default 65536); older events are overwritten and counted in
    {!dropped}.  Replaces any current subscriber. *)

val install_jsonl : out_channel -> unit
(** Subscribe a streaming sink: each event is written immediately as
    one JSON object per line.  The channel is flushed on
    {!uninstall}. *)

val install_null : unit -> unit
(** Subscribe a sink that discards every event.  {!on} becomes true, so
    gated side effects that ride the trace gate — notably the
    {!Metrics} registry updates at instrumentation sites — run without
    paying for event retention.  Used by [--metrics] when no [--trace]
    ring is wanted. *)

val uninstall : unit -> unit
(** Remove the subscriber.  {!on} becomes false; a ring's events remain
    readable through {!events} until the next [install_*]. *)

val on : unit -> bool
(** Whether a subscriber is installed — the guard every instrumentation
    site checks before doing any telemetry work. *)

val set_detail : [ `Ordering | `All ] -> unit
(** [`Ordering] (default): the device emits only ordering points
    (flush/fence).  [`All]: individual loads and stores emit instant
    events too — very verbose; for short windows only. *)

val verbose : unit -> bool
(** [on () && detail = `All]. *)

(** {1 Emission} *)

val emit :
  ?args:(string * string) list ->
  ?tid:int ->
  cat:string ->
  name:string ->
  ph:phase ->
  ts_ns:float ->
  unit ->
  unit
(** No-op unless {!on}.  [tid] defaults to the calling domain's id. *)

val begin_span :
  ?args:(string * string) list -> cat:string -> name:string -> ts_ns:float -> unit -> unit

val end_span :
  ?args:(string * string) list -> cat:string -> name:string -> ts_ns:float -> unit -> unit

(** {1 Reading the ring} *)

val events : unit -> event list
(** Events currently retained, oldest first.  [[]] when the subscriber
    is a JSONL stream or nothing was ever installed. *)

val dropped : unit -> int
(** Events overwritten by ring wrap-around since the last install. *)

val clear : unit -> unit
(** Empty the ring (keeps the subscription). *)

(** {1 Export} *)

val event_to_json : event -> Json.t
(** One Chrome [trace_event] object; [ts]/[dur] are microseconds. *)

val to_chrome_json : event list -> string
(** A complete [{"traceEvents": […]}] document. *)

val save_chrome : string -> unit
(** Write the ring's current contents as Chrome JSON to a file. *)
