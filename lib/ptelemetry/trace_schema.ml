type error = { index : int; msg : string }

let err index fmt = Printf.ksprintf (fun msg -> { index; msg }) fmt

let phases = [ "B"; "E"; "i"; "X"; "C"; "M" ]

let event_list = function
  | Json.List evs -> Ok evs
  | Json.Obj _ as doc -> (
      match Json.mem "traceEvents" doc with
      | Some (Json.List evs) -> Ok evs
      | Some _ -> Error "traceEvents is not an array"
      | None -> Error "missing traceEvents")
  | _ -> Error "document is neither an object nor an array"

let check_event i ev errors =
  match ev with
  | Json.Obj _ ->
      let need_str k =
        match Option.bind (Json.mem k ev) Json.str with
        | Some s -> Some s
        | None ->
            errors := err i "missing or non-string %S" k :: !errors;
            None
      in
      let need_num k =
        match Option.bind (Json.mem k ev) Json.num with
        | Some n -> Some n
        | None ->
            errors := err i "missing or non-numeric %S" k :: !errors;
            None
      in
      ignore (need_str "name");
      (match need_str "ph" with
      | None -> ()
      | Some ph ->
          if not (List.mem ph phases) then
            errors := err i "invalid ph %S" ph :: !errors;
          (match Json.mem "dur" ev with
          | Some d -> (
              match Json.num d with
              | Some d when d >= 0.0 -> ()
              | _ -> errors := err i "non-numeric or negative dur" :: !errors)
          | None ->
              if ph = "X" then errors := err i "X event without dur" :: !errors));
      (match need_num "ts" with
      | Some ts when ts < 0.0 -> errors := err i "negative ts" :: !errors
      | _ -> ());
      ignore (need_num "pid");
      ignore (need_num "tid");
      (match Json.mem "args" ev with
      | None -> ()
      | Some (Json.Obj _) -> ()
      | Some _ -> errors := err i "args is not an object" :: !errors)
  | _ -> errors := err i "event is not an object" :: !errors

(* Per-thread B/E stack discipline: every E must close the most recent
   open B of the same name, and nothing may remain open at the end. *)
let check_spans evs errors =
  let stacks : (float * float, (int * string) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iteri
    (fun i ev ->
      let ph = Option.bind (Json.mem "ph" ev) Json.str in
      let name =
        Option.value ~default:"?" (Option.bind (Json.mem "name" ev) Json.str)
      in
      let key =
        ( Option.value ~default:0.0 (Option.bind (Json.mem "pid" ev) Json.num),
          Option.value ~default:0.0 (Option.bind (Json.mem "tid" ev) Json.num) )
      in
      let stack =
        match Hashtbl.find_opt stacks key with
        | Some s -> s
        | None ->
            let s = ref [] in
            Hashtbl.add stacks key s;
            s
      in
      match ph with
      | Some "B" -> stack := (i, name) :: !stack
      | Some "E" -> (
          match !stack with
          | [] -> errors := err i "E %S with no open span" name :: !errors
          | (_, open_name) :: rest ->
              if open_name <> name then
                errors :=
                  err i "E %S closes open span %S" name open_name :: !errors;
              stack := rest)
      | _ -> ())
    evs;
  Hashtbl.iter
    (fun _ stack ->
      List.iter
        (fun (i, name) -> errors := err i "span %S never closed" name :: !errors)
        !stack)
    stacks

let validate doc =
  match event_list doc with
  | Error msg -> [ { index = -1; msg } ]
  | Ok evs ->
      let errors = ref [] in
      List.iteri (fun i ev -> check_event i ev errors) evs;
      check_spans evs errors;
      List.rev !errors

let validate_string s =
  match Json.of_string s with
  | doc -> validate doc
  | exception Failure msg -> [ { index = -1; msg } ]

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let validate_file path =
  let s = read_file path in
  match validate_string s with
  | [] -> (
      match event_list (Json.of_string s) with
      | Ok evs -> Ok (List.length evs)
      | Error msg -> Error [ { index = -1; msg } ])
  | errors -> Error errors

let events_of_json doc =
  match event_list doc with
  | Error msg -> failwith ("Trace_schema.events_of_json: " ^ msg)
  | Ok evs ->
      List.map
        (fun ev ->
          let str k =
            match Option.bind (Json.mem k ev) Json.str with
            | Some s -> s
            | None -> failwith ("events_of_json: missing " ^ k)
          in
          let num k =
            match Option.bind (Json.mem k ev) Json.num with
            | Some n -> n
            | None -> failwith ("events_of_json: missing " ^ k)
          in
          let ph =
            match str "ph" with
            | "B" -> Trace.B
            | "E" -> Trace.E
            | "i" -> Trace.I
            | "X" -> Trace.X (num "dur" *. 1000.0)
            | p -> failwith ("events_of_json: unsupported ph " ^ p)
          in
          let args =
            match Json.mem "args" ev with
            | Some (Json.Obj kvs) ->
                List.map
                  (fun (k, v) ->
                    match Json.str v with
                    | Some s -> (k, s)
                    | None -> failwith "events_of_json: non-string arg")
                  kvs
            | _ -> []
          in
          {
            Trace.name = str "name";
            cat = str "cat";
            ph;
            ts_ns = num "ts" *. 1000.0;
            tid = int_of_float (num "tid");
            args;
          })
        evs
