type phase = B | E | I | X of float

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : float;
  tid : int;
  args : (string * string) list;
}

(* One ring per shard; [seq] is a per-ring emission sequence number used
   to keep the cross-ring merge stable for events sharing a timestamp. *)
type ring = {
  rlock : Mutex.t;
  buf : (event * int) option array;
  mutable next : int; (* slot the next event lands in *)
  mutable total : int; (* events ever emitted into this ring *)
}

type sink = Rings of ring array | Jsonl of out_channel | Null

(* [active] mirrors [sink <> None] so the hot-path guard is one atomic
   load; [lock] serializes sink swaps and JSONL emission.  Ring
   emission takes only the owning ring's lock, so N domains tracing
   concurrently contend only when they collide on a shard. *)
let active = Atomic.make false
let detail_all = Atomic.make false
let sink : sink option ref = ref None
let lock = Mutex.create ()

let on () = Atomic.get active
let verbose () = Atomic.get detail_all && Atomic.get active

let set_detail d =
  Atomic.set detail_all (match d with `All -> true | `Ordering -> false)

let make_ring capacity =
  { rlock = Mutex.create (); buf = Array.make capacity None; next = 0; total = 0 }

let install_ring ?(capacity = 65536) ?(shards = 1) () =
  if capacity <= 0 then invalid_arg "Trace.install_ring: capacity must be positive";
  if shards <= 0 then invalid_arg "Trace.install_ring: shards must be positive";
  (* Round the shard count up to a power of two so the emitting domain
     can pick its ring with one mask. *)
  let shards =
    let rec up n = if n >= shards then n else up (n * 2) in
    up 1
  in
  Mutex.lock lock;
  sink := Some (Rings (Array.init shards (fun _ -> make_ring capacity)));
  Atomic.set active true;
  Mutex.unlock lock

let install_jsonl oc =
  Mutex.lock lock;
  sink := Some (Jsonl oc);
  Atomic.set active true;
  Mutex.unlock lock

let install_null () =
  Mutex.lock lock;
  sink := Some Null;
  Atomic.set active true;
  Mutex.unlock lock

let uninstall () =
  Mutex.lock lock;
  (match !sink with Some (Jsonl oc) -> flush oc | _ -> ());
  Atomic.set active false;
  Mutex.unlock lock

let phase_string = function B -> "B" | E -> "E" | I -> "i" | X _ -> "X"

let event_to_json e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (phase_string e.ph));
      ("ts", Json.Num (e.ts_ns /. 1000.0));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int e.tid));
    ]
  in
  let dur = match e.ph with X d -> [ ("dur", Json.Num (d /. 1000.0)) ] | _ -> [] in
  let args =
    match e.args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  in
  Json.Obj (base @ dur @ args)

let emit ?(args = []) ?tid ~cat ~name ~ph ~ts_ns () =
  if Atomic.get active && (match !sink with Some Null -> false | _ -> true)
  then begin
    let tid = match tid with Some t -> t | None -> (Domain.self () :> int) in
    let e = { name; cat; ph; ts_ns; tid; args } in
    match !sink with
    | None | Some Null -> ()
    | Some (Rings rings) ->
        let r = rings.(tid land (Array.length rings - 1)) in
        Mutex.lock r.rlock;
        r.buf.(r.next) <- Some (e, r.total);
        r.next <- (r.next + 1) mod Array.length r.buf;
        r.total <- r.total + 1;
        Mutex.unlock r.rlock
    | Some (Jsonl oc) ->
        Mutex.lock lock;
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n';
        Mutex.unlock lock
  end

let begin_span ?args ~cat ~name ~ts_ns () = emit ?args ~cat ~name ~ph:B ~ts_ns ()
let end_span ?args ~cat ~name ~ts_ns () = emit ?args ~cat ~name ~ph:E ~ts_ns ()

let ring_events r =
  Mutex.lock r.rlock;
  let cap = Array.length r.buf in
  let n = min r.total cap in
  let first = if r.total <= cap then 0 else r.next in
  let evs =
    List.filter_map
      (fun i -> r.buf.((first + i) mod cap))
      (List.init n Fun.id)
  in
  Mutex.unlock r.rlock;
  evs

let events () =
  Mutex.lock lock;
  let s = !sink in
  Mutex.unlock lock;
  match s with
  | Some (Rings [| r |]) -> List.map fst (ring_events r)
  | Some (Rings rings) ->
      (* Merge the per-domain rings into one stream ordered by simulated
         time; [seq] breaks timestamp ties so each ring's own order is
         preserved. *)
      Array.to_list rings
      |> List.concat_map ring_events
      |> List.stable_sort (fun (a, sa) (b, sb) ->
             match compare a.ts_ns b.ts_ns with 0 -> compare sa sb | c -> c)
      |> List.map fst
  | _ -> []

let dropped () =
  Mutex.lock lock;
  let s = !sink in
  Mutex.unlock lock;
  match s with
  | Some (Rings rings) ->
      Array.fold_left
        (fun acc r ->
          Mutex.lock r.rlock;
          let d = max 0 (r.total - Array.length r.buf) in
          Mutex.unlock r.rlock;
          acc + d)
        0 rings
  | _ -> 0

let clear () =
  Mutex.lock lock;
  (match !sink with
  | Some (Rings rings) ->
      Array.iter
        (fun r ->
          Mutex.lock r.rlock;
          Array.fill r.buf 0 (Array.length r.buf) None;
          r.next <- 0;
          r.total <- 0;
          Mutex.unlock r.rlock)
        rings
  | _ -> ());
  Mutex.unlock lock

let to_chrome_json evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Json.to_buffer buf (event_to_json e))
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let save_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json (events ())))
