type phase = B | E | I | X of float

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_ns : float;
  tid : int;
  args : (string * string) list;
}

type ring = {
  buf : event option array;
  mutable next : int; (* slot the next event lands in *)
  mutable total : int; (* events ever emitted into this ring *)
}

type sink = Ring of ring | Jsonl of out_channel | Null

(* [active] mirrors [sink <> None] so the hot-path guard is one atomic
   load; [lock] serializes emission and sink swaps. *)
let active = Atomic.make false
let detail_all = Atomic.make false
let sink : sink option ref = ref None
let lock = Mutex.create ()

let on () = Atomic.get active
let verbose () = Atomic.get detail_all && Atomic.get active

let set_detail d =
  Atomic.set detail_all (match d with `All -> true | `Ordering -> false)

let install_ring ?(capacity = 65536) () =
  if capacity <= 0 then invalid_arg "Trace.install_ring: capacity must be positive";
  Mutex.lock lock;
  sink := Some (Ring { buf = Array.make capacity None; next = 0; total = 0 });
  Atomic.set active true;
  Mutex.unlock lock

let install_jsonl oc =
  Mutex.lock lock;
  sink := Some (Jsonl oc);
  Atomic.set active true;
  Mutex.unlock lock

let install_null () =
  Mutex.lock lock;
  sink := Some Null;
  Atomic.set active true;
  Mutex.unlock lock

let uninstall () =
  Mutex.lock lock;
  (match !sink with Some (Jsonl oc) -> flush oc | _ -> ());
  Atomic.set active false;
  Mutex.unlock lock

let phase_string = function B -> "B" | E -> "E" | I -> "i" | X _ -> "X"

let event_to_json e =
  let base =
    [
      ("name", Json.Str e.name);
      ("cat", Json.Str e.cat);
      ("ph", Json.Str (phase_string e.ph));
      ("ts", Json.Num (e.ts_ns /. 1000.0));
      ("pid", Json.Num 1.0);
      ("tid", Json.Num (float_of_int e.tid));
    ]
  in
  let dur = match e.ph with X d -> [ ("dur", Json.Num (d /. 1000.0)) ] | _ -> [] in
  let args =
    match e.args with
    | [] -> []
    | kvs -> [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) kvs)) ]
  in
  Json.Obj (base @ dur @ args)

let emit ?(args = []) ?tid ~cat ~name ~ph ~ts_ns () =
  if Atomic.get active && (match !sink with Some Null -> false | _ -> true)
  then begin
    let tid = match tid with Some t -> t | None -> (Domain.self () :> int) in
    let e = { name; cat; ph; ts_ns; tid; args } in
    Mutex.lock lock;
    (match !sink with
    | None | Some Null -> ()
    | Some (Ring r) ->
        r.buf.(r.next) <- Some e;
        r.next <- (r.next + 1) mod Array.length r.buf;
        r.total <- r.total + 1
    | Some (Jsonl oc) ->
        output_string oc (Json.to_string (event_to_json e));
        output_char oc '\n');
    Mutex.unlock lock
  end

let begin_span ?args ~cat ~name ~ts_ns () = emit ?args ~cat ~name ~ph:B ~ts_ns ()
let end_span ?args ~cat ~name ~ts_ns () = emit ?args ~cat ~name ~ph:E ~ts_ns ()

let events () =
  Mutex.lock lock;
  let r =
    match !sink with
    | Some (Ring r) ->
        let cap = Array.length r.buf in
        let n = min r.total cap in
        let first = if r.total <= cap then 0 else r.next in
        List.filter_map
          (fun i -> r.buf.((first + i) mod cap))
          (List.init n Fun.id)
    | _ -> []
  in
  Mutex.unlock lock;
  r

let dropped () =
  Mutex.lock lock;
  let d =
    match !sink with
    | Some (Ring r) -> max 0 (r.total - Array.length r.buf)
    | _ -> 0
  in
  Mutex.unlock lock;
  d

let clear () =
  Mutex.lock lock;
  (match !sink with
  | Some (Ring r) ->
      Array.fill r.buf 0 (Array.length r.buf) None;
      r.next <- 0;
      r.total <- 0
  | _ -> ());
  Mutex.unlock lock

let to_chrome_json evs =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Json.to_buffer buf (event_to_json e))
    evs;
  Buffer.add_string buf "]}";
  Buffer.contents buf

let save_chrome path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json (events ())))
