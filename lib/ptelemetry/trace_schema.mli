(** Structural validation of Chrome [trace_event] documents.

    The CI gate: after a traced benchmark run, the emitted JSON is
    checked against the subset of the Chrome trace-event format this
    library generates — no external schema tooling, no dependencies.

    Checks performed:
    - the document is an object with a [traceEvents] array (or a bare
      array of events);
    - every event has a string [name], a string [cat], a [ph] drawn
      from [B E i X C M], numeric [ts], [pid] and [tid]; [X] events
      additionally carry a numeric [dur]; [args], when present, is an
      object;
    - per [(pid, tid)], [B]/[E] events balance like a stack and each
      [E] closes a [B] of the same name;
    - timestamps are non-negative. *)

type error = { index : int;  (** event index, or -1 for document-level *)
               msg : string }

val validate : Json.t -> error list
(** Empty on success. *)

val validate_string : string -> error list
(** Parse then validate; a parse failure is reported as one
    document-level error. *)

val validate_file : string -> (int, error list) result
(** [Ok n] when the file holds a valid trace of [n] events. *)

val events_of_json : Json.t -> Trace.event list
(** Parse a (valid) Chrome trace document back into events — the
    exporter round-trip used by tests.  Raises [Failure] on events
    outside the generated subset. *)
