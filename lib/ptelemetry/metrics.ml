let nbuckets = 63

(* Raw samples are retained verbatim up to this count, giving exact
   percentiles for the small populations the recovery/bench reports care
   about (a handful of attach cycles, not millions of hot-path samples).
   Past the threshold the raws are discarded and quantiles fall back to
   the log2-bucket floor estimate. *)
let exact_threshold = 128

type counter = { cname : string; value : int Atomic.t }

type histogram = {
  hname : string;
  lock : Mutex.t;
  buckets : int array; (* length [nbuckets] *)
  mutable count : int;
  mutable sum : int;
  mutable hmin : int;
  mutable hmax : int;
  mutable raw : int list; (* newest first; [] once count > exact_threshold *)
}

type metric = C of counter | H of histogram

(* The registry: name -> metric, guarded for interning; individual
   updates use the metric's own synchronization. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let counter name =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (C c) -> Ok c
    | Some (H _) -> Error (name ^ " is already a histogram")
    | None ->
        let c = { cname = name; value = Atomic.make 0 } in
        Hashtbl.add registry name (C c);
        Ok c
  in
  Mutex.unlock registry_lock;
  match r with Ok c -> c | Error m -> invalid_arg ("Metrics.counter: " ^ m)

let histogram name =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (H h) -> Ok h
    | Some (C _) -> Error (name ^ " is already a counter")
    | None ->
        let h =
          {
            hname = name;
            lock = Mutex.create ();
            buckets = Array.make nbuckets 0;
            count = 0;
            sum = 0;
            hmin = 0;
            hmax = 0;
            raw = [];
          }
        in
        Hashtbl.add registry name (H h);
        Ok h
  in
  Mutex.unlock registry_lock;
  match r with Ok h -> h | Error m -> invalid_arg ("Metrics.histogram: " ^ m)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.value by)
let counter_value c = Atomic.get c.value

let log2_floor n =
  let rec go k n = if n <= 1 then k else go (k + 1) (n lsr 1) in
  go 0 n

(* Bucket 0: v <= 0.  Bucket i >= 1: v in [2^(i-1), 2^i). *)
let bucket_of v =
  if v <= 0 then 0 else min (nbuckets - 1) (log2_floor v + 1)

let bucket_lo i = if i <= 0 then 0 else 1 lsl (i - 1)

let observe h v =
  Mutex.lock h.lock;
  h.buckets.(bucket_of v) <- h.buckets.(bucket_of v) + 1;
  if h.count = 0 || v < h.hmin then h.hmin <- max 0 v;
  if v > h.hmax then h.hmax <- v;
  h.count <- h.count + 1;
  h.sum <- h.sum + max 0 v;
  (if h.count <= exact_threshold then h.raw <- max 0 v :: h.raw
   else h.raw <- []);
  Mutex.unlock h.lock

type histo_snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
  samples : int list option;
}

let snapshot h =
  Mutex.lock h.lock;
  let buckets = ref [] in
  for i = nbuckets - 1 downto 0 do
    if h.buckets.(i) > 0 then buckets := (i, h.buckets.(i)) :: !buckets
  done;
  let samples =
    if h.count > 0 && h.count <= exact_threshold then
      Some (List.sort compare h.raw)
    else None
  in
  let s =
    { count = h.count; sum = h.sum; min = h.hmin; max = h.hmax;
      buckets = !buckets; samples }
  in
  Mutex.unlock h.lock;
  s

let find_metric name =
  Mutex.lock registry_lock;
  let m = Hashtbl.find_opt registry name in
  Mutex.unlock registry_lock;
  m

let find_counter name =
  match find_metric name with Some (C c) -> Some (counter_value c) | _ -> None

let find_histogram name =
  match find_metric name with Some (H h) -> Some (snapshot h) | _ -> None

let mean (s : histo_snapshot) =
  if s.count = 0 then 0.0 else float_of_int s.sum /. float_of_int s.count

let exact (s : histo_snapshot) = s.count = 0 || s.samples <> None

let quantile (s : histo_snapshot) q =
  if s.count = 0 then 0
  else begin
    let rank = int_of_float (Float.of_int (s.count - 1) *. q) in
    match s.samples with
    | Some sorted -> List.nth sorted rank
    | None ->
        let rec go seen = function
          | [] -> s.max
          | (i, n) :: rest ->
              if seen + n > rank then bucket_lo i else go (seen + n) rest
        in
        go 0 s.buckets
  end

let sorted_metrics () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let dump_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name (counter_value c))
      | H h ->
          let s = snapshot h in
          let approx = if exact s then "=" else "~" in
          Buffer.add_string buf
            (Printf.sprintf
               "%s count=%d sum=%d mean=%.1f p50%s%d p99%s%d max=%d\n"
               name s.count s.sum (mean s) approx (quantile s 0.5) approx
               (quantile s 0.99) s.max))
    (sorted_metrics ());
  Buffer.contents buf

let dump_json () =
  let counters = ref [] and histos = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> counters := (name, Json.Num (float_of_int (counter_value c))) :: !counters
      | H h ->
          let s = snapshot h in
          let buckets =
            List.map
              (fun (i, n) ->
                Json.List [ Json.Num (float_of_int (bucket_lo i));
                            Json.Num (float_of_int n) ])
              s.buckets
          in
          histos :=
            ( name,
              Json.Obj
                [
                  ("count", Json.Num (float_of_int s.count));
                  ("sum", Json.Num (float_of_int s.sum));
                  ("min", Json.Num (float_of_int s.min));
                  ("max", Json.Num (float_of_int s.max));
                  ("mean", Json.Num (mean s));
                  ("p50", Json.Num (float_of_int (quantile s 0.5)));
                  ("p99", Json.Num (float_of_int (quantile s 0.99)));
                  ("exact", Json.Bool (exact s));
                  ("buckets", Json.List buckets);
                ] )
            :: !histos)
    (sorted_metrics ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("histograms", Json.Obj (List.rev !histos)) ]

let to_json = dump_json

let reset () =
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> Atomic.set c.value 0
      | H h ->
          Mutex.lock h.lock;
          Array.fill h.buckets 0 nbuckets 0;
          h.count <- 0;
          h.sum <- 0;
          h.hmin <- 0;
          h.hmax <- 0;
          h.raw <- [];
          Mutex.unlock h.lock)
    (sorted_metrics ())
