(* Sharded registry of counters and fixed-precision histograms.

   Multicore discipline: every metric is an array of [nshards] shards
   indexed by the calling domain's id, so concurrent domains update
   disjoint memory.  Counter shards are plain atomics (one
   fetch-and-add, no lock, no loop); histogram shards pair an [Hdr.t]
   with a mutex that is uncontended unless two domains collide on the
   same shard index.  Readers merge all shards at snapshot time —
   updates stay O(1) and contention-free, reads pay the merge. *)

(* 64 shards: domain ids are assigned densely from 0, so any realistic
   domain count maps injectively; a collision only costs one shared
   (still atomic / mutex-protected) shard. *)
let nshards = 64

let shard_id () = (Domain.self () :> int) land (nshards - 1)

(* Compatibility re-exports: the registry's bucket geometry is Hdr's. *)
let exact_threshold = Hdr.exact_capacity
let bucket_of = Hdr.index_of
let bucket_lo = Hdr.bucket_lo

type counter = { cname : string; cshards : int Atomic.t array }

type hshard = { hlock : Mutex.t; hdr : Hdr.t }
type histogram = { hname : string; hshards : hshard array }

type metric = C of counter | H of histogram

(* The registry: name -> metric, guarded for interning; individual
   updates use the metric's own synchronization. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let counter name =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (C c) -> Ok c
    | Some (H _) -> Error (name ^ " is already a histogram")
    | None ->
        let c =
          { cname = name; cshards = Array.init nshards (fun _ -> Atomic.make 0) }
        in
        Hashtbl.add registry name (C c);
        Ok c
  in
  Mutex.unlock registry_lock;
  match r with Ok c -> c | Error m -> invalid_arg ("Metrics.counter: " ^ m)

let histogram name =
  Mutex.lock registry_lock;
  let r =
    match Hashtbl.find_opt registry name with
    | Some (H h) -> Ok h
    | Some (C _) -> Error (name ^ " is already a counter")
    | None ->
        let h =
          {
            hname = name;
            hshards =
              Array.init nshards (fun _ ->
                  { hlock = Mutex.create (); hdr = Hdr.create () });
          }
        in
        Hashtbl.add registry name (H h);
        Ok h
  in
  Mutex.unlock registry_lock;
  match r with Ok h -> h | Error m -> invalid_arg ("Metrics.histogram: " ^ m)

let incr ?(by = 1) c =
  ignore (Atomic.fetch_and_add c.cshards.(shard_id ()) by)

let counter_value c =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c.cshards

let observe h v =
  let s = h.hshards.(shard_id ()) in
  Mutex.lock s.hlock;
  Hdr.record s.hdr v;
  Mutex.unlock s.hlock

type histo_snapshot = Hdr.snapshot = {
  count : int;
  sum : int;
  min : int;
  max : int;
  buckets : (int * int) list;
  samples : int list option;
}

let snapshot h =
  (* Merge-on-snapshot: fold every shard into a scratch Hdr under its
     own lock, so a concurrent writer never sees a torn read. *)
  let into = Hdr.create () in
  Array.iter
    (fun s ->
      Mutex.lock s.hlock;
      Hdr.merge_into ~into s.hdr;
      Mutex.unlock s.hlock)
    h.hshards;
  Hdr.snapshot into

let find_metric name =
  Mutex.lock registry_lock;
  let m = Hashtbl.find_opt registry name in
  Mutex.unlock registry_lock;
  m

let find_counter name =
  match find_metric name with Some (C c) -> Some (counter_value c) | _ -> None

let find_histogram name =
  match find_metric name with Some (H h) -> Some (snapshot h) | _ -> None

let mean = Hdr.mean
let exact = Hdr.exact
let quantile = Hdr.quantile

let sorted_metrics () =
  Mutex.lock registry_lock;
  let all = Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let dump_text () =
  let buf = Buffer.create 512 in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name (counter_value c))
      | H h ->
          let s = snapshot h in
          let approx = if exact s then "=" else "~" in
          Buffer.add_string buf
            (Printf.sprintf
               "%s count=%d sum=%d mean=%.1f p50%s%d p99%s%d p999%s%d max=%d\n"
               name s.count s.sum (mean s) approx (quantile s 0.5) approx
               (quantile s 0.99) approx
               (quantile s 0.999) s.max))
    (sorted_metrics ());
  Buffer.contents buf

let dump_json () =
  let counters = ref [] and histos = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | C c -> counters := (name, Json.Num (float_of_int (counter_value c))) :: !counters
      | H h -> histos := (name, Hdr.to_json (snapshot h)) :: !histos)
    (sorted_metrics ());
  Json.Obj
    [ ("counters", Json.Obj (List.rev !counters));
      ("histograms", Json.Obj (List.rev !histos)) ]

let to_json = dump_json

let reset () =
  List.iter
    (fun (_, m) ->
      match m with
      | C c -> Array.iter (fun a -> Atomic.set a 0) c.cshards
      | H h ->
          Array.iter
            (fun s ->
              Mutex.lock s.hlock;
              Hdr.clear s.hdr;
              Mutex.unlock s.hlock)
            h.hshards)
    (sorted_metrics ())
