(* The telemetry subsystem: metrics registry known answers, trace ring
   ordering and span discipline, Chrome exporter round-trips, the
   zero-overhead guarantee with no subscriber, and the exact flush/fence
   attribution of one committed Pbox update. *)

open Corundum
module D = Pmem.Device
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics
module Json = Ptelemetry.Json
module Schema = Ptelemetry.Trace_schema

let small =
  { Pool_impl.size = 4 * 1024 * 1024; nslots = 2; slot_size = 64 * 1024 }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test starts from a clean global telemetry state. *)
let fresh () =
  Tr.uninstall ();
  Tr.clear ();
  Tr.set_detail `Ordering;
  Mx.reset ()

(* --- metrics registry -------------------------------------------------- *)

let test_histogram_buckets () =
  fresh ();
  (* log2 buckets: 0 holds v<=0; bucket i>=1 holds [2^(i-1), 2^i). *)
  List.iter
    (fun (v, b) ->
      check_int (Printf.sprintf "bucket_of %d" v) b (Mx.bucket_of v))
    [ (-3, 0); (0, 0); (1, 1); (2, 2); (3, 2); (4, 3); (7, 3); (8, 4);
      (1023, 10); (1024, 11) ];
  List.iter
    (fun (i, lo) ->
      check_int (Printf.sprintf "bucket_lo %d" i) lo (Mx.bucket_lo i))
    [ (0, 0); (1, 1); (2, 2); (3, 4); (4, 8) ];
  let h = Mx.histogram "test.h" in
  List.iter (Mx.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  let s = Option.get (Mx.find_histogram "test.h") in
  check_int "count" 7 s.Mx.count;
  check_int "sum" 25 s.Mx.sum;
  check_int "min" 0 s.Mx.min;
  check_int "max" 8 s.Mx.max;
  Alcotest.(check (list (pair int int)))
    "buckets are (index, count)"
    [ (0, 1); (1, 1); (2, 2); (3, 2); (4, 1) ]
    s.Mx.buckets;
  (* Seven samples is well under the retention threshold, so quantiles
     are exact nearest-rank values, not bucket floors. *)
  check_bool "small histogram is exact" true (Mx.exact s);
  check_bool "samples retained sorted" true
    (s.Mx.samples = Some [ 0; 1; 2; 3; 4; 7; 8 ]);
  check_int "p50 exact" 3 (Mx.quantile s 0.5);
  check_int "p99 exact" 7 (Mx.quantile s 0.99)

(* Past [exact_threshold] raw retention stops and quantiles degrade to
   the log2-bucket floor estimate — the other half of the contract. *)
let test_histogram_bucket_fallback () =
  fresh ();
  let h = Mx.histogram "test.h.big" in
  for v = 0 to 199 do
    Mx.observe h v
  done;
  let s = Option.get (Mx.find_histogram "test.h.big") in
  check_bool "threshold is in the tested range" true
    (Mx.exact_threshold < 200);
  check_bool "large histogram is estimated" false (Mx.exact s);
  check_bool "raw samples discarded" true (s.Mx.samples = None);
  check_int "count" 200 s.Mx.count;
  (* ranks 99 and 197 land in buckets [64,128) and [128,256). *)
  check_int "p50 floor estimate" 64 (Mx.quantile s 0.5);
  check_int "p99 floor estimate" 128 (Mx.quantile s 0.99)

let test_counters_and_dump () =
  fresh ();
  let c = Mx.counter "test.c" in
  Mx.incr c;
  Mx.incr ~by:41 c;
  check_bool "interned: same name, same counter" true
    (Mx.find_counter "test.c" <> None);
  let contains text needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length text
      && (String.sub text i n = needle || go (i + 1))
    in
    go 0
  in
  check_bool "text dump carries the counter" true
    (contains (Mx.dump_text ()) "test.c 42");
  match Json.of_string (Json.to_string (Mx.dump_json ())) with
  | doc ->
      let counters = Option.get (Json.mem "counters" doc) in
      check_bool "json dump round-trips the counter" true
        (Option.bind (Json.mem "test.c" counters) Json.num = Some 42.0)
  | exception Failure msg -> Alcotest.failf "metrics json unparsable: %s" msg

(* --- trace ring -------------------------------------------------------- *)

let test_span_nesting_and_order () =
  fresh ();
  Tr.install_ring ~capacity:64 ();
  Tr.begin_span ~cat:"t" ~name:"outer" ~ts_ns:10.0 ();
  Tr.begin_span ~cat:"t" ~name:"inner" ~ts_ns:20.0 ();
  Tr.emit ~cat:"t" ~name:"tick" ~ph:Tr.I ~ts_ns:25.0 ();
  Tr.end_span ~cat:"t" ~name:"inner" ~ts_ns:30.0 ();
  Tr.end_span ~cat:"t" ~name:"outer" ~ts_ns:40.0 ();
  let evs = Tr.events () in
  Alcotest.(check (list string))
    "emission order is preserved"
    [ "outer"; "inner"; "tick"; "inner"; "outer" ]
    (List.map (fun e -> e.Tr.name) evs);
  check_int "nothing dropped" 0 (Tr.dropped ());
  (* The exported document passes the schema checker, including the
     B/E stack-balance check. *)
  check_bool "chrome export validates" true
    (Schema.validate_string (Tr.to_chrome_json evs) = []);
  Tr.uninstall ()

let test_ring_wraparound () =
  fresh ();
  Tr.install_ring ~capacity:4 ();
  for i = 1 to 10 do
    Tr.emit ~cat:"t" ~name:(string_of_int i) ~ph:Tr.I
      ~ts_ns:(float_of_int i) ()
  done;
  Alcotest.(check (list string))
    "ring keeps the newest events, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Tr.name) (Tr.events ()));
  check_int "dropped counts overwritten events" 6 (Tr.dropped ());
  Tr.uninstall ()

let test_exporter_roundtrip () =
  fresh ();
  Tr.install_ring ();
  Tr.emit ~args:[ ("k", "v"); ("n", "7") ] ~cat:"c" ~name:"complete"
    ~ph:(Tr.X 1500.0) ~ts_ns:2000.0 ();
  Tr.emit ~cat:"c" ~name:"instant" ~ph:Tr.I ~ts_ns:3000.0 ();
  let evs = Tr.events () in
  let doc = Json.of_string (Tr.to_chrome_json evs) in
  check_bool "schema-clean" true (Schema.validate doc = []);
  let back = Schema.events_of_json doc in
  check_int "event count survives" (List.length evs) (List.length back);
  List.iter2
    (fun a b ->
      check_bool "name survives" true (a.Tr.name = b.Tr.name);
      check_bool "cat survives" true (a.Tr.cat = b.Tr.cat);
      check_bool "args survive" true (a.Tr.args = b.Tr.args);
      check_bool "timestamp survives (us precision)" true
        (Float.abs (a.Tr.ts_ns -. b.Tr.ts_ns) < 1.0);
      match (a.Tr.ph, b.Tr.ph) with
      | Tr.X d1, Tr.X d2 ->
          check_bool "duration survives" true (Float.abs (d1 -. d2) < 1.0)
      | p1, p2 -> check_bool "phase survives" true (p1 = p2))
    evs back;
  Tr.uninstall ()

let test_schema_catches_violations () =
  fresh ();
  (* An E with no open B, and an X without dur. *)
  let bad =
    {|{"traceEvents":[
        {"name":"a","cat":"t","ph":"E","ts":1,"pid":1,"tid":1},
        {"name":"b","cat":"t","ph":"X","ts":2,"pid":1,"tid":1}]}|}
  in
  check_int "both violations reported" 2
    (List.length (Schema.validate_string bad))

(* --- zero-overhead off state ------------------------------------------ *)

(* With no subscriber, a full transactional workload must retain zero
   events, touch no metrics, and leave the simulated clock bit-identical
   to an uninstrumented run — telemetry must never perturb the model. *)
let workload () =
  let module P = Pool.Make () in
  P.create ~config:small ~latency:Pmem.Latency.optane ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  for i = 1 to 20 do
    P.transaction (fun j ->
        Pbox.set root i j;
        if i mod 5 = 0 then begin
          let off = Pool_impl.tx_alloc (Journal.tx j) 128 in
          Pool_impl.tx_free (Journal.tx j) off
        end)
  done;
  D.simulated_ns (Pool_impl.device (P.impl ()))

let test_no_subscriber_zero_events () =
  fresh ();
  let ns_off = workload () in
  check_bool "no events retained" true (Tr.events () = []);
  check_bool "tx counter untouched" true
    (match Mx.find_counter "tx.count" with Some v -> v = 0 | None -> true);
  Tr.install_ring ();
  let ns_on = workload () in
  Tr.uninstall ();
  check_bool "tracing does not move the simulated clock" true
    (ns_off = ns_on);
  check_bool "traced run retained events" true (Tr.events () <> []);
  (* The sanitizer rides the probe bus: enabled, it must observe without
     perturbing; disabled again, the probe path must be fully off. *)
  Psan.enable ();
  let ns_psan = workload () in
  Psan.disable ();
  check_bool "psan does not move the simulated clock" true (ns_off = ns_psan);
  check_bool "workload under psan is clean" true (Psan.clean ());
  let ns_after = workload () in
  check_bool "clock parity restored after psan disable" true
    (ns_off = ns_after)

(* --- flush/fence attribution known answer ----------------------------- *)

(* One warm committed 8-byte Pbox.set under the Corundum engine costs
   exactly (checksummed-tail protocol + coalesced allocator persists):
     seal_entry:  persist(entry + terminator)          = 1 flush,  1 fence
     commit:      flush(target line) ... fence         = 1 flush,  1 fence
                  (no drops: the advisory-count persist is skipped)
     truncate:    persist(header + terminator)         = 1 flush,  1 fence
   The first set in a pool pays the same (dedup tables are per-tx), so a
   warm-up only isolates the root-creation traffic. *)
let test_pbox_update_flush_fence_counts () =
  fresh ();
  let module P = Pool.Make () in
  P.create ~config:small ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  P.transaction (fun j -> Pbox.set root 1 j);
  let dev = Pool_impl.device (P.impl ()) in
  let lb0 = (Pool_impl.stats (P.impl ())).Pool_impl.logged_bytes in
  let s0 = D.stats dev in
  P.transaction (fun j -> Pbox.set root 2 j);
  let s1 = D.stats dev in
  check_int "flush calls for one committed update" 3
    (s1.D.flush_calls - s0.D.flush_calls);
  check_int "fences for one committed update" 3 (s1.D.fences - s0.D.fences);
  check_int "entry bytes logged by one update" 32
    ((Pool_impl.stats (P.impl ())).Pool_impl.logged_bytes - lb0)

(* The same known answer observed through the telemetry layer: the tx
   span's attribution args must agree with the device-counter deltas. *)
let test_tx_span_attribution () =
  fresh ();
  let module P = Pool.Make () in
  P.create ~config:small ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  P.transaction (fun j -> Pbox.set root 1 j);
  Tr.install_ring ();
  P.transaction (fun j -> Pbox.set root 2 j);
  Tr.uninstall ();
  let tx_events =
    List.filter (fun e -> e.Tr.name = "tx") (Tr.events ())
  in
  check_int "one tx span" 1 (List.length tx_events);
  let args = (List.hd tx_events).Tr.args in
  let arg k = List.assoc k args in
  check_bool "committed" true (arg "outcome" = "commit");
  check_int "flushes attributed" 3 (int_of_string (arg "flushes"));
  check_int "fences attributed" 3 (int_of_string (arg "fences"));
  check_int "logged bytes attributed" 32 (int_of_string (arg "logged_bytes"));
  check_int "tx.count metric" 1
    (Option.value ~default:(-1) (Mx.find_counter "tx.count"))

(* --- lifetime counters ------------------------------------------------ *)

let test_lifetime_counters_survive_reattach () =
  fresh ();
  let pool = Pool_impl.create ~config:small () in
  let root_scratch =
    Pool_impl.transaction pool (fun tx -> Pool_impl.tx_alloc tx 64)
  in
  for i = 1 to 5 do
    Pool_impl.transaction pool (fun tx ->
        Pool_impl.tx_log tx ~off:root_scratch ~len:8;
        D.write_u64 (Pool_impl.device pool) root_scratch (Int64.of_int i))
  done;
  (try Pool_impl.transaction pool (fun _ -> failwith "boom")
   with Failure _ -> ());
  let before = Pool_impl.stats pool in
  check_int "six commits this open" 6 before.Pool_impl.transactions;
  check_int "one abort this open" 1 before.Pool_impl.aborts;
  let dev = Pool_impl.device pool in
  Pool_impl.close pool;
  (* close folded the totals into the header; a fresh attach reads them. *)
  let pool2 = Pool_impl.attach dev in
  let after = Pool_impl.stats pool2 in
  check_int "lifetime commits survive reattach" 6
    after.Pool_impl.lifetime_transactions;
  check_int "lifetime aborts survive reattach" 1
    after.Pool_impl.lifetime_aborts;
  check_int "per-open counters restart" 0 after.Pool_impl.transactions;
  let info = Pool_inspect.inspect_device dev in
  check_int "pool_inspect reads the same totals" 6 info.Pool_inspect.lifetime_tx

let () =
  Alcotest.run "corundum telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram bucket fallback" `Quick
            test_histogram_bucket_fallback;
          Alcotest.test_case "counters and dumps" `Quick
            test_counters_and_dump;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and order" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "exporter roundtrip" `Quick
            test_exporter_roundtrip;
          Alcotest.test_case "schema catches violations" `Quick
            test_schema_catches_violations;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "no subscriber, zero events" `Quick
            test_no_subscriber_zero_events;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "pbox update flush/fence known answer" `Quick
            test_pbox_update_flush_fence_counts;
          Alcotest.test_case "tx span attribution args" `Quick
            test_tx_span_attribution;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "counters survive reattach" `Quick
            test_lifetime_counters_survive_reattach;
        ] );
    ]
