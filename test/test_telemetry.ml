(* The telemetry subsystem: metrics registry known answers, trace ring
   ordering and span discipline, Chrome exporter round-trips, the
   zero-overhead guarantee with no subscriber, and the exact flush/fence
   attribution of one committed Pbox update. *)

open Corundum
module D = Pmem.Device
module Tr = Ptelemetry.Trace
module Mx = Ptelemetry.Metrics
module Json = Ptelemetry.Json
module Schema = Ptelemetry.Trace_schema

let small =
  { Pool_impl.size = 4 * 1024 * 1024; nslots = 2; slot_size = 64 * 1024 }

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Every test starts from a clean global telemetry state. *)
let fresh () =
  Tr.uninstall ();
  Tr.clear ();
  Tr.set_detail `Ordering;
  Mx.reset ()

(* --- metrics registry -------------------------------------------------- *)

let test_histogram_buckets () =
  fresh ();
  (* Hdr log-linear buckets: values 0..63 get unit buckets; decade
     b >= 1 covers [64*2^(b-1), 64*2^b) in 32 sub-buckets of 2^b. *)
  List.iter
    (fun (v, b) ->
      check_int (Printf.sprintf "bucket_of %d" v) b (Mx.bucket_of v))
    [ (-3, 0); (0, 0); (1, 1); (7, 7); (63, 63); (64, 64); (127, 95);
      (128, 96); (1023, 191); (1024, 192) ];
  List.iter
    (fun (i, lo) ->
      check_int (Printf.sprintf "bucket_lo %d" i) lo (Mx.bucket_lo i))
    [ (0, 0); (1, 1); (63, 63); (64, 64); (95, 126); (96, 128); (192, 1024) ];
  let h = Mx.histogram "test.h" in
  List.iter (Mx.observe h) [ 0; 1; 2; 3; 4; 7; 8 ];
  let s = Option.get (Mx.find_histogram "test.h") in
  check_int "count" 7 s.Mx.count;
  check_int "sum" 25 s.Mx.sum;
  check_int "min" 0 s.Mx.min;
  check_int "max" 8 s.Mx.max;
  Alcotest.(check (list (pair int int)))
    "buckets are (index, count): unit-exact below 64"
    [ (0, 1); (1, 1); (2, 1); (3, 1); (4, 1); (7, 1); (8, 1) ]
    s.Mx.buckets;
  (* Seven samples is well under the retention threshold, so quantiles
     are exact nearest-rank values, not bucket estimates. *)
  check_bool "small histogram is exact" true (Mx.exact s);
  check_bool "samples retained sorted" true
    (s.Mx.samples = Some [ 0; 1; 2; 3; 4; 7; 8 ]);
  check_int "p50 exact" 3 (Mx.quantile s 0.5);
  check_int "p99 exact" 7 (Mx.quantile s 0.99)

(* Past [exact_threshold] raw retention stops and quantiles degrade to
   the sub-bucket lower bound — within Hdr.max_rel_error (3.125%) of
   the true sample, not the old one-power-of-two floor. *)
let test_histogram_bucket_fallback () =
  fresh ();
  let h = Mx.histogram "test.h.big" in
  for v = 0 to 199 do
    Mx.observe h v
  done;
  let s = Option.get (Mx.find_histogram "test.h.big") in
  check_bool "threshold is in the tested range" true
    (Mx.exact_threshold < 200);
  check_bool "large histogram is estimated" false (Mx.exact s);
  check_bool "raw samples discarded" true (s.Mx.samples = None);
  check_int "count" 200 s.Mx.count;
  (* rank 99 (true value 99) is in sub-bucket [98,100); rank 197 (true
     197) and rank 198 (true 198) in [196,200). *)
  check_int "p50 sub-bucket estimate" 98 (Mx.quantile s 0.5);
  check_int "p99 sub-bucket estimate" 196 (Mx.quantile s 0.99);
  check_int "p999 sub-bucket estimate" 196 (Mx.quantile s 0.999);
  check_bool "estimates stay within the error bound" true
    (float_of_int (99 - 98) /. 99.0 <= Ptelemetry.Hdr.max_rel_error
    && float_of_int (197 - 196) /. 197.0 <= Ptelemetry.Hdr.max_rel_error)

(* Shards are per-domain: concurrent updates from N domains must never
   lose an increment or a sample, and the merged snapshot must see the
   whole population. *)
let test_sharded_metrics_across_domains () =
  fresh ();
  let c = Mx.counter "test.mc" and h = Mx.histogram "test.mh" in
  let worker d () =
    for i = 1 to 1000 do
      Mx.incr c;
      Mx.observe h ((d * 1000) + i)
    done
  in
  List.iter Domain.join
    (List.init 4 (fun d -> Domain.spawn (worker d)));
  check_int "counter sums all domains' shards" 4000 (Mx.counter_value c);
  let s = Option.get (Mx.find_histogram "test.mh") in
  check_int "histogram merges all domains' shards" 4000 s.Mx.count;
  check_int "min crosses shards" 1 s.Mx.min;
  check_int "max crosses shards" 4000 s.Mx.max;
  check_int "sum crosses shards" 8_002_000 s.Mx.sum

let test_counters_and_dump () =
  fresh ();
  let c = Mx.counter "test.c" in
  Mx.incr c;
  Mx.incr ~by:41 c;
  check_bool "interned: same name, same counter" true
    (Mx.find_counter "test.c" <> None);
  let contains text needle =
    let n = String.length needle in
    let rec go i =
      i + n <= String.length text
      && (String.sub text i n = needle || go (i + 1))
    in
    go 0
  in
  check_bool "text dump carries the counter" true
    (contains (Mx.dump_text ()) "test.c 42");
  match Json.of_string (Json.to_string (Mx.dump_json ())) with
  | doc ->
      let counters = Option.get (Json.mem "counters" doc) in
      check_bool "json dump round-trips the counter" true
        (Option.bind (Json.mem "test.c" counters) Json.num = Some 42.0)
  | exception Failure msg -> Alcotest.failf "metrics json unparsable: %s" msg

(* --- trace ring -------------------------------------------------------- *)

let test_span_nesting_and_order () =
  fresh ();
  Tr.install_ring ~capacity:64 ();
  Tr.begin_span ~cat:"t" ~name:"outer" ~ts_ns:10.0 ();
  Tr.begin_span ~cat:"t" ~name:"inner" ~ts_ns:20.0 ();
  Tr.emit ~cat:"t" ~name:"tick" ~ph:Tr.I ~ts_ns:25.0 ();
  Tr.end_span ~cat:"t" ~name:"inner" ~ts_ns:30.0 ();
  Tr.end_span ~cat:"t" ~name:"outer" ~ts_ns:40.0 ();
  let evs = Tr.events () in
  Alcotest.(check (list string))
    "emission order is preserved"
    [ "outer"; "inner"; "tick"; "inner"; "outer" ]
    (List.map (fun e -> e.Tr.name) evs);
  check_int "nothing dropped" 0 (Tr.dropped ());
  (* The exported document passes the schema checker, including the
     B/E stack-balance check. *)
  check_bool "chrome export validates" true
    (Schema.validate_string (Tr.to_chrome_json evs) = []);
  Tr.uninstall ()

let test_ring_wraparound () =
  fresh ();
  Tr.install_ring ~capacity:4 ();
  for i = 1 to 10 do
    Tr.emit ~cat:"t" ~name:(string_of_int i) ~ph:Tr.I
      ~ts_ns:(float_of_int i) ()
  done;
  Alcotest.(check (list string))
    "ring keeps the newest events, oldest first"
    [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Tr.name) (Tr.events ()));
  check_int "dropped counts overwritten events" 6 (Tr.dropped ());
  Tr.uninstall ()

(* Sharded rings: events land in the emitting tid's ring, and events ()
   merges the rings back into one timestamp-ordered stream. *)
let test_sharded_ring_merge () =
  fresh ();
  Tr.install_ring ~capacity:8 ~shards:4 ();
  List.iter
    (fun (tid, ts) ->
      Tr.emit ~tid ~cat:"t"
        ~name:(Printf.sprintf "%d@%.0f" tid ts)
        ~ph:Tr.I ~ts_ns:ts ())
    [ (0, 5.0); (1, 1.0); (2, 3.0); (3, 2.0); (1, 4.0); (0, 6.0) ];
  Alcotest.(check (list string))
    "merge is ordered by simulated time across rings"
    [ "1@1"; "3@2"; "2@3"; "1@4"; "0@5"; "0@6" ]
    (List.map (fun e -> e.Tr.name) (Tr.events ()));
  check_int "nothing dropped" 0 (Tr.dropped ());
  (* Wrap-around is per ring: flooding tid 1 must not evict tid 0. *)
  for i = 1 to 20 do
    Tr.emit ~tid:1 ~cat:"t" ~name:"flood" ~ph:Tr.I
      ~ts_ns:(10.0 +. float_of_int i) ()
  done;
  let evs = Tr.events () in
  check_bool "other rings survive one ring's wrap" true
    (List.exists (fun e -> e.Tr.name = "0@5") evs);
  check_int "dropped sums per-ring overwrites" 14 (Tr.dropped ());
  check_bool "chrome export of the merge validates" true
    (Schema.validate_string (Tr.to_chrome_json evs) = []);
  Tr.uninstall ()

let test_exporter_roundtrip () =
  fresh ();
  Tr.install_ring ();
  Tr.emit ~args:[ ("k", "v"); ("n", "7") ] ~cat:"c" ~name:"complete"
    ~ph:(Tr.X 1500.0) ~ts_ns:2000.0 ();
  Tr.emit ~cat:"c" ~name:"instant" ~ph:Tr.I ~ts_ns:3000.0 ();
  let evs = Tr.events () in
  let doc = Json.of_string (Tr.to_chrome_json evs) in
  check_bool "schema-clean" true (Schema.validate doc = []);
  let back = Schema.events_of_json doc in
  check_int "event count survives" (List.length evs) (List.length back);
  List.iter2
    (fun a b ->
      check_bool "name survives" true (a.Tr.name = b.Tr.name);
      check_bool "cat survives" true (a.Tr.cat = b.Tr.cat);
      check_bool "args survive" true (a.Tr.args = b.Tr.args);
      check_bool "timestamp survives (us precision)" true
        (Float.abs (a.Tr.ts_ns -. b.Tr.ts_ns) < 1.0);
      match (a.Tr.ph, b.Tr.ph) with
      | Tr.X d1, Tr.X d2 ->
          check_bool "duration survives" true (Float.abs (d1 -. d2) < 1.0)
      | p1, p2 -> check_bool "phase survives" true (p1 = p2))
    evs back;
  Tr.uninstall ()

let test_schema_catches_violations () =
  fresh ();
  (* An E with no open B, and an X without dur. *)
  let bad =
    {|{"traceEvents":[
        {"name":"a","cat":"t","ph":"E","ts":1,"pid":1,"tid":1},
        {"name":"b","cat":"t","ph":"X","ts":2,"pid":1,"tid":1}]}|}
  in
  check_int "both violations reported" 2
    (List.length (Schema.validate_string bad))

(* --- zero-overhead off state ------------------------------------------ *)

(* With no subscriber, a full transactional workload must retain zero
   events, touch no metrics, and leave the simulated clock bit-identical
   to an uninstrumented run — telemetry must never perturb the model. *)
let workload () =
  let module P = Pool.Make () in
  P.create ~config:small ~latency:Pmem.Latency.optane ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  for i = 1 to 20 do
    P.transaction (fun j ->
        Pbox.set root i j;
        if i mod 5 = 0 then begin
          let off = Pool_impl.tx_alloc (Journal.tx j) 128 in
          Pool_impl.tx_free (Journal.tx j) off
        end)
  done;
  D.simulated_ns (Pool_impl.device (P.impl ()))

let test_no_subscriber_zero_events () =
  fresh ();
  let ns_off = workload () in
  check_bool "no events retained" true (Tr.events () = []);
  check_bool "tx counter untouched" true
    (match Mx.find_counter "tx.count" with Some v -> v = 0 | None -> true);
  Tr.install_ring ();
  let ns_on = workload () in
  Tr.uninstall ();
  check_bool "tracing does not move the simulated clock" true
    (ns_off = ns_on);
  check_bool "traced run retained events" true (Tr.events () <> []);
  (* The sanitizer rides the probe bus: enabled, it must observe without
     perturbing; disabled again, the probe path must be fully off. *)
  Psan.enable ();
  let ns_psan = workload () in
  Psan.disable ();
  check_bool "psan does not move the simulated clock" true (ns_off = ns_psan);
  check_bool "workload under psan is clean" true (Psan.clean ());
  let ns_after = workload () in
  check_bool "clock parity restored after psan disable" true
    (ns_off = ns_after)

(* The same parity proven under N domains: each domain churns a private
   pool (private device, private clock — first-free journal-slot races
   on a shared pool would make the comparison nondeterministic), and
   the per-domain (simulated ns, flush calls, fences) triples must be
   bit-identical whether the probe subscribers are off, a sharded trace
   ring is on, or the sanitizer is on.  This is what licenses leaving
   telemetry enabled during multi-domain benchmarks. *)
let domain_workload d =
  let module P = Pool.Make () in
  P.create ~config:small ~latency:Pmem.Latency.optane ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  for i = 1 to 20 + d do
    P.transaction (fun j ->
        Pbox.set root (i + d) j;
        if i mod 5 = 0 then begin
          let off = Pool_impl.tx_alloc (Journal.tx j) (64 lsl (d mod 3)) in
          Pool_impl.tx_free (Journal.tx j) off
        end)
  done;
  let dev = Pool_impl.device (P.impl ()) in
  let s = D.stats dev in
  (d, D.simulated_ns dev, s.D.flush_calls, s.D.fences)

let run_domains n =
  List.map Domain.join
    (List.init n (fun d -> Domain.spawn (fun () -> domain_workload d)))

let test_multi_domain_clock_parity () =
  fresh ();
  let domains = 4 in
  let off = run_domains domains in
  check_bool "no events retained with no subscriber" true (Tr.events () = []);
  Tr.install_ring ~capacity:(1 lsl 14) ~shards:domains ();
  let traced = run_domains domains in
  Tr.uninstall ();
  check_bool "sharded tracing does not move any domain's clock" true
    (off = traced);
  let evs = Tr.events () in
  check_bool "traced run retained events" true (evs <> []);
  check_bool "events carry more than one domain id" true
    (List.length
       (List.sort_uniq compare (List.map (fun e -> e.Tr.tid) evs))
    > 1);
  (* Merged stream is one Chrome trace ordered by simulated time. *)
  check_bool "merged trace is time-ordered" true
    (let rec mono = function
       | a :: (b :: _ as rest) -> a.Tr.ts_ns <= b.Tr.ts_ns && mono rest
       | _ -> true
     in
     mono evs);
  Psan.enable ();
  let sanitized = run_domains domains in
  Psan.disable ();
  check_bool "sanitizer does not move any domain's clock" true
    (off = sanitized);
  check_bool "multi-domain run under psan is clean" true (Psan.clean ())

(* --- flush/fence attribution known answer ----------------------------- *)

(* One warm committed 8-byte Pbox.set under the Corundum engine costs
   exactly (checksummed-tail protocol + coalesced allocator persists):
     seal_entry:  persist(entry + terminator)          = 1 flush,  1 fence
     commit:      flush(target line) ... fence         = 1 flush,  1 fence
                  (no drops: the advisory-count persist is skipped)
     truncate:    persist(header + terminator)         = 1 flush,  1 fence
   The first set in a pool pays the same (dedup tables are per-tx), so a
   warm-up only isolates the root-creation traffic. *)
let test_pbox_update_flush_fence_counts () =
  fresh ();
  let module P = Pool.Make () in
  P.create ~config:small ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  P.transaction (fun j -> Pbox.set root 1 j);
  let dev = Pool_impl.device (P.impl ()) in
  let lb0 = (Pool_impl.stats (P.impl ())).Pool_impl.logged_bytes in
  let s0 = D.stats dev in
  P.transaction (fun j -> Pbox.set root 2 j);
  let s1 = D.stats dev in
  check_int "flush calls for one committed update" 3
    (s1.D.flush_calls - s0.D.flush_calls);
  check_int "fences for one committed update" 3 (s1.D.fences - s0.D.fences);
  check_int "entry bytes logged by one update" 32
    ((Pool_impl.stats (P.impl ())).Pool_impl.logged_bytes - lb0)

(* The same known answer observed through the telemetry layer: the tx
   span's attribution args must agree with the device-counter deltas. *)
let test_tx_span_attribution () =
  fresh ();
  let module P = Pool.Make () in
  P.create ~config:small ();
  let root = P.root ~ty:Ptype.int ~init:(fun _ -> 0) () in
  P.transaction (fun j -> Pbox.set root 1 j);
  Tr.install_ring ();
  P.transaction (fun j -> Pbox.set root 2 j);
  Tr.uninstall ();
  let tx_events =
    List.filter (fun e -> e.Tr.name = "tx") (Tr.events ())
  in
  check_int "one tx span" 1 (List.length tx_events);
  let args = (List.hd tx_events).Tr.args in
  let arg k = List.assoc k args in
  check_bool "committed" true (arg "outcome" = "commit");
  check_int "flushes attributed" 3 (int_of_string (arg "flushes"));
  check_int "fences attributed" 3 (int_of_string (arg "fences"));
  check_int "logged bytes attributed" 32 (int_of_string (arg "logged_bytes"));
  check_int "tx.count metric" 1
    (Option.value ~default:(-1) (Mx.find_counter "tx.count"))

(* --- lifetime counters ------------------------------------------------ *)

let test_lifetime_counters_survive_reattach () =
  fresh ();
  let pool = Pool_impl.create ~config:small () in
  let root_scratch =
    Pool_impl.transaction pool (fun tx -> Pool_impl.tx_alloc tx 64)
  in
  for i = 1 to 5 do
    Pool_impl.transaction pool (fun tx ->
        Pool_impl.tx_log tx ~off:root_scratch ~len:8;
        D.write_u64 (Pool_impl.device pool) root_scratch (Int64.of_int i))
  done;
  (try Pool_impl.transaction pool (fun _ -> failwith "boom")
   with Failure _ -> ());
  let before = Pool_impl.stats pool in
  check_int "six commits this open" 6 before.Pool_impl.transactions;
  check_int "one abort this open" 1 before.Pool_impl.aborts;
  let dev = Pool_impl.device pool in
  Pool_impl.close pool;
  (* close folded the totals into the header; a fresh attach reads them. *)
  let pool2 = Pool_impl.attach dev in
  let after = Pool_impl.stats pool2 in
  check_int "lifetime commits survive reattach" 6
    after.Pool_impl.lifetime_transactions;
  check_int "lifetime aborts survive reattach" 1
    after.Pool_impl.lifetime_aborts;
  check_int "per-open counters restart" 0 after.Pool_impl.transactions;
  let info = Pool_inspect.inspect_device dev in
  check_int "pool_inspect reads the same totals" 6 info.Pool_inspect.lifetime_tx

let () =
  Alcotest.run "corundum telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "histogram bucket fallback" `Quick
            test_histogram_bucket_fallback;
          Alcotest.test_case "counters and dumps" `Quick
            test_counters_and_dump;
          Alcotest.test_case "sharded metrics across domains" `Quick
            test_sharded_metrics_across_domains;
        ] );
      ( "trace",
        [
          Alcotest.test_case "span nesting and order" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
          Alcotest.test_case "sharded ring merge" `Quick
            test_sharded_ring_merge;
          Alcotest.test_case "exporter roundtrip" `Quick
            test_exporter_roundtrip;
          Alcotest.test_case "schema catches violations" `Quick
            test_schema_catches_violations;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "no subscriber, zero events" `Quick
            test_no_subscriber_zero_events;
          Alcotest.test_case "multi-domain clock parity" `Quick
            test_multi_domain_clock_parity;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "pbox update flush/fence known answer" `Quick
            test_pbox_update_flush_fence_counts;
          Alcotest.test_case "tx span attribution args" `Quick
            test_tx_span_attribution;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "counters survive reattach" `Quick
            test_lifetime_counters_survive_reattach;
        ] );
    ]
