(* The open-loop load harness: Hdr histogram merge laws and precision
   bounds, deterministic arrival schedules and zipfian key selection,
   and the driver's separation of service time from response time (the
   anti-coordinated-omission property the whole library exists for). *)

module Hdr = Ptelemetry.Hdr
module L = Loadgen

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- Hdr precision ------------------------------------------------------ *)

(* Every value maps into a bucket whose lower bound underestimates it by
   at most max_rel_error — at any magnitude up to the clamp. *)
let qcheck_bounded_relative_error =
  QCheck.Test.make ~name:"bucket lower bound within 3.125% at any magnitude"
    ~count:2000
    QCheck.(pair (int_bound 58) (int_bound 1_000_000))
    (fun (shift, jitter) ->
      (* cover every decade: v uniform-ish within [2^shift, 2^(shift+1)) *)
      let v = (1 lsl shift) + (jitter mod (1 lsl shift)) in
      let i = Hdr.index_of v in
      let lo = Hdr.bucket_lo i and w = Hdr.bucket_width i in
      lo <= v && v < lo + w
      && (v < 64 || float_of_int (v - lo) /. float_of_int v <= Hdr.max_rel_error))

(* Quantiles over a big population agree with the true nearest-rank
   value to within the error bound. *)
let qcheck_quantile_error_bound =
  QCheck.Test.make ~name:"estimated quantiles within 3.125% of true sample"
    ~count:50
    QCheck.(list_of_size Gen.(200 -- 1000) (map abs small_int))
    (fun raw ->
      QCheck.assume (List.length raw > Hdr.exact_capacity);
      let scaled = List.map (fun v -> (v * 97) + 1) raw in
      let h = Hdr.create () in
      List.iter (Hdr.record h) scaled;
      let s = Hdr.snapshot h in
      let sorted = Array.of_list (List.sort compare scaled) in
      List.for_all
        (fun q ->
          let true_v =
            sorted.(int_of_float
                      (float_of_int (Array.length sorted - 1) *. q))
          in
          let est = Hdr.quantile s q in
          est <= true_v
          && float_of_int (true_v - est) /. float_of_int (max true_v 1)
             <= Hdr.max_rel_error)
        [ 0.5; 0.9; 0.99; 0.999 ])

(* While the population fits the raw window, quantiles are exactly the
   nearest-rank values a sorted list would give. *)
let qcheck_exact_agreement =
  QCheck.Test.make ~name:"small populations quantile exactly" ~count:200
    QCheck.(list_of_size Gen.(1 -- Hdr.exact_capacity) (map abs small_int))
    (fun raw ->
      let h = Hdr.create () in
      List.iter (Hdr.record h) raw;
      let s = Hdr.snapshot h in
      let sorted = Array.of_list (List.sort compare raw) in
      Hdr.exact s
      && List.for_all
           (fun q ->
             Hdr.quantile s q
             = sorted.(int_of_float
                         (float_of_int (Array.length sorted - 1) *. q)))
           [ 0.0; 0.25; 0.5; 0.9; 0.99; 1.0 ])

(* --- Hdr merge laws ----------------------------------------------------- *)

let snapshot_key s =
  ( s.Hdr.count,
    s.Hdr.sum,
    s.Hdr.min,
    s.Hdr.max,
    s.Hdr.buckets,
    s.Hdr.samples,
    List.map (Hdr.quantile s) [ 0.5; 0.99; 0.999 ] )

let hdr_of_list vs =
  let h = Hdr.create () in
  List.iter (Hdr.record h) vs;
  h

let qcheck_merge_commutative =
  QCheck.Test.make ~name:"merge is commutative" ~count:200
    QCheck.(pair (list (map abs small_int)) (list (map abs small_int)))
    (fun (a, b) ->
      snapshot_key (Hdr.snapshot (Hdr.merge [ hdr_of_list a; hdr_of_list b ]))
      = snapshot_key (Hdr.snapshot (Hdr.merge [ hdr_of_list b; hdr_of_list a ])))

let qcheck_merge_associative =
  QCheck.Test.make ~name:"merge is associative" ~count:200
    QCheck.(
      triple (list (map abs small_int)) (list (map abs small_int))
        (list (map abs small_int)))
    (fun (a, b, c) ->
      let h = hdr_of_list in
      let ab_c =
        Hdr.merge [ Hdr.merge [ h a; h b ]; h c ] |> Hdr.snapshot
      in
      let a_bc =
        Hdr.merge [ h a; Hdr.merge [ h b; h c ] ] |> Hdr.snapshot
      in
      let flat = Hdr.merge [ h a; h b; h c ] |> Hdr.snapshot in
      snapshot_key ab_c = snapshot_key a_bc
      && snapshot_key ab_c = snapshot_key flat)

(* Merging two exact windows that jointly fit stays exact — per-domain
   reports keep exact percentiles until the union outgrows the window. *)
let test_merge_exactness_window () =
  let a = hdr_of_list (List.init 60 (fun i -> i))
  and b = hdr_of_list (List.init 60 (fun i -> 1000 + i)) in
  let m = Hdr.snapshot (Hdr.merge [ a; b ]) in
  check_bool "union within window stays exact" true (Hdr.exact m);
  check_int "exact p50 of the union" 59 (Hdr.quantile m 0.5);
  let c = hdr_of_list (List.init 100 (fun i -> i)) in
  let m2 = Hdr.snapshot (Hdr.merge [ a; c ]) in
  check_bool "union past the window degrades to bounded-error" false
    (Hdr.exact m2);
  check_int "count still whole" 160 m2.Hdr.count

(* --- arrival schedules -------------------------------------------------- *)

let take n t = List.init n (fun _ -> L.Arrival.next t)

let test_fixed_arrivals () =
  let t = L.Arrival.create (L.Arrival.Fixed 1e6) in
  Alcotest.(check (list (float 1e-6)))
    "fixed 1e6 ops/s = one arrival per 1000 sim ns"
    [ 0.0; 1000.0; 2000.0; 3000.0 ]
    (take 4 t)

let test_poisson_arrivals_deterministic () =
  let a = take 1000 (L.Arrival.create ~seed:7 (L.Arrival.Poisson 1e6))
  and b = take 1000 (L.Arrival.create ~seed:7 (L.Arrival.Poisson 1e6))
  and c = take 1000 (L.Arrival.create ~seed:8 (L.Arrival.Poisson 1e6)) in
  check_bool "same seed, same schedule" true (a = b);
  check_bool "different seed, different schedule" true (a <> c);
  check_bool "monotone" true
    (List.for_all2 (fun x y -> x <= y) a (List.tl a @ [ infinity ]));
  (* 1000 exponential gaps with mean 1000 ns: the sample mean is within
     15% of nominal for any reasonable stream. *)
  let last = List.nth a 999 in
  check_bool "mean inter-arrival near 1/rate" true
    (last /. 999.0 > 850.0 && last /. 999.0 < 1150.0)

(* --- zipfian keys ------------------------------------------------------- *)

let test_zipf_shape () =
  let z = L.Zipf.create ~theta:0.99 1024 in
  let rng = L.Rng.create 11 in
  let draws = 20_000 in
  let counts = Array.make 1024 0 in
  for _ = 1 to draws do
    let r = L.Zipf.rank z rng in
    check_bool "rank in range" true (r >= 0 && r < 1024);
    counts.(r) <- counts.(r) + 1
  done;
  (* theta 0.99 over 1024 keys: rank 0 alone draws ~10%, the top 16
     ranks well over a third — far beyond a uniform share. *)
  check_bool "hottest rank dominates uniform share" true
    (float_of_int counts.(0) /. float_of_int draws > 0.05);
  let top16 = Array.fold_left ( + ) 0 (Array.sub counts 0 16) in
  check_bool "head is heavy" true
    (float_of_int top16 /. float_of_int draws > 0.30);
  (* determinism *)
  let d1 =
    let rng = L.Rng.create 5 in
    List.init 100 (fun _ -> L.Zipf.next z rng)
  and d2 =
    let rng = L.Rng.create 5 in
    List.init 100 (fun _ -> L.Zipf.next z rng)
  in
  check_bool "same seed, same keys" true (d1 = d2);
  check_bool "scattered keys stay in range" true
    (List.for_all (fun k -> k >= 0 && k < 1024) d1)

(* --- the open-loop driver ----------------------------------------------- *)

(* Service faster than the arrival gap: no queue ever forms, so
   response = service for every op. *)
let test_openloop_underload () =
  let spec =
    { L.default_spec with arrivals = L.Arrival.Fixed 1e6; ops = 500 }
  in
  let r = L.run spec ~service:(fun _ -> 400.0) in
  check_int "all ops ran" 500 r.L.ops;
  check_bool "no backlog" true (r.L.max_backlog_ns = 0.0);
  let resp = Hdr.snapshot r.L.response and svc = Hdr.snapshot r.L.service in
  check_int "response p99 = service p99" (Hdr.quantile svc 0.99)
    (Hdr.quantile resp 0.99);
  check_int "service is the constant" 400 (Hdr.quantile svc 0.5)

(* Service slower than the arrival gap: an open-loop driver must show
   the backlog growing linearly in response time while service time
   stays flat — a closed-loop driver would report 1500 ns everywhere
   and hide the collapse (coordinated omission). *)
let test_openloop_overload_shows_queueing () =
  let ops = 200 in
  let spec = { L.default_spec with arrivals = L.Arrival.Fixed 1e6; ops } in
  let r = L.run spec ~service:(fun _ -> 1500.0) in
  let resp = Hdr.snapshot r.L.response and svc = Hdr.snapshot r.L.service in
  (* 200 constant samples outgrow the exact window, so quantiles are
     sub-bucket lower bounds; min/max stay exact. *)
  check_int "service time stays flat (exact min)" 1500 svc.Hdr.min;
  check_int "service time stays flat (exact max)" 1500 svc.Hdr.max;
  check_int "service p999 is the 1500-bucket's lower bound" 1472
    (Hdr.quantile svc 0.999);
  (* op k waits k * (1500 - 1000) ns: the last op's response is service
     plus the full accumulated backlog. *)
  check_int "worst response carries the whole backlog"
    (1500 + ((ops - 1) * 500))
    resp.Hdr.max;
  check_bool "max backlog = (ops-1) * deficit" true
    (r.L.max_backlog_ns = float_of_int ((ops - 1) * 500));
  check_bool "response p50 far above service p50" true
    (Hdr.quantile resp 0.5 > 10 * Hdr.quantile svc 0.5)

let test_openloop_deterministic_and_mergeable () =
  let spec = { L.default_spec with ops = 1000 } in
  let service op =
    match op with
    | L.Read _ -> 300.0
    | L.Update _ -> 900.0
    | L.Insert _ -> 1100.0
    | L.Delete _ -> 700.0
  in
  let a = L.run spec ~service and b = L.run spec ~service in
  check_bool "same spec, same report" true
    (snapshot_key (Hdr.snapshot a.L.response)
     = snapshot_key (Hdr.snapshot b.L.response)
    && a.L.busy_ns = b.L.busy_ns);
  let c = L.run { spec with seed = spec.seed + 1 } ~service in
  check_bool "different seed, different run" true
    (a.L.busy_ns <> c.L.busy_ns);
  let m = L.merge_reports [ a; c ] in
  check_int "merged ops sum" 2000 m.L.ops;
  check_bool "merged busy sums" true (m.L.busy_ns = a.L.busy_ns +. c.L.busy_ns);
  check_int "merged histogram holds both populations" 2000
    (Hdr.count m.L.response);
  check_bool "merge_reports is commutative" true
    (snapshot_key (Hdr.snapshot (L.merge_reports [ c; a ]).L.response)
    = snapshot_key (Hdr.snapshot m.L.response))

let () =
  Alcotest.run "corundum loadgen"
    [
      ( "hdr",
        [
          QCheck_alcotest.to_alcotest qcheck_bounded_relative_error;
          QCheck_alcotest.to_alcotest qcheck_quantile_error_bound;
          QCheck_alcotest.to_alcotest qcheck_exact_agreement;
          QCheck_alcotest.to_alcotest qcheck_merge_commutative;
          QCheck_alcotest.to_alcotest qcheck_merge_associative;
          Alcotest.test_case "merge exactness window" `Quick
            test_merge_exactness_window;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "fixed schedule" `Quick test_fixed_arrivals;
          Alcotest.test_case "poisson determinism and mean" `Quick
            test_poisson_arrivals_deterministic;
        ] );
      ( "zipf",
        [ Alcotest.test_case "shape and determinism" `Quick test_zipf_shape ] );
      ( "driver",
        [
          Alcotest.test_case "underload: response = service" `Quick
            test_openloop_underload;
          Alcotest.test_case "overload: queueing visible" `Quick
            test_openloop_overload_shows_queueing;
          Alcotest.test_case "deterministic and mergeable" `Quick
            test_openloop_deterministic_and_mergeable;
        ] );
    ]
